// Command quickstart shows the minimal AARC flow through the public facade:
// load a built-in workflow, run the AARC search against its SLO, and print
// the per-function decoupled configuration it selects together with the
// search statistics and the final validated execution.
package main

import (
	"context"
	"fmt"
	"log"

	"aarc"
)

func main() {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		log.Fatal(err)
	}

	rec, err := aarc.Configure(context.Background(), spec, aarc.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow   : %s (SLO %.0f s)\n", spec.Name, spec.SLOMS/1000)
	fmt.Printf("samples    : %d\n", rec.Trace.Len())
	fmt.Printf("search time: %.1f s (simulated)\n", rec.Trace.TotalRuntimeMS()/1000)
	fmt.Printf("search cost: %.1fk\n", rec.Trace.TotalCost()/1000)
	fmt.Println("chosen configuration:")
	for _, g := range rec.Assignment.Keys() {
		fmt.Printf("  %-10s %s\n", g, rec.Assignment[g])
	}

	// The recommendation carries the final measured execution of the chosen
	// configuration — no need to re-run the workflow just to report it.
	fmt.Printf("validation : e2e %.1f s (SLO %.0f s, %s), cost %.1fk\n",
		rec.Final.E2EMS/1000, spec.SLOMS/1000, compliance(rec), rec.Final.Cost/1000)
}

func compliance(rec *aarc.Recommendation) string {
	if rec.SLOCompliant() {
		return "compliant"
	}
	return "VIOLATED"
}
