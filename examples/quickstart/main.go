// Command quickstart shows the minimal AARC flow: load a built-in workflow,
// run the AARC search against its SLO, and print the per-function decoupled
// configuration it selects together with the search statistics.
package main

import (
	"fmt"
	"log"

	"aarc/internal/core"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

func main() {
	spec := workloads.Chatbot()
	runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
		HostCores: 96,
		Noise:     true,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	searcher := core.New(core.DefaultOptions())
	outcome, err := searcher.Search(runner, spec.SLOMS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workflow   : %s (SLO %.0f s)\n", spec.Name, spec.SLOMS/1000)
	fmt.Printf("samples    : %d\n", outcome.Trace.Len())
	fmt.Printf("search time: %.1f s (simulated)\n", outcome.Trace.TotalRuntimeMS()/1000)
	fmt.Printf("search cost: %.1fk\n", outcome.Trace.TotalCost()/1000)
	fmt.Println("chosen configuration:")
	for _, g := range outcome.Best.Keys() {
		fmt.Printf("  %-10s %s\n", g, outcome.Best[g])
	}

	// Validate the chosen configuration with a fresh execution.
	res, err := runner.Evaluate(outcome.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validation : e2e %.1f s (SLO %.0f s, %s), cost %.1fk\n",
		res.E2EMS/1000, spec.SLOMS/1000, compliance(res.E2EMS, spec.SLOMS), res.Cost/1000)
}

func compliance(e2e, slo float64) string {
	if e2e <= slo {
		return "compliant"
	}
	return "VIOLATED"
}
