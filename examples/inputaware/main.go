// Command inputaware demonstrates the §IV-D Input-Aware Configuration
// Engine on the Video Analysis workflow, driven entirely through the public
// facade: AARC configures one resource assignment per input-size class
// offline, then serves a mixed request stream, dispatching each request to
// its class's configuration — staying inside the SLO where a single static
// configuration would violate it on heavy inputs.
package main

import (
	"context"
	"fmt"
	"log"

	"aarc"
)

func main() {
	log.SetFlags(0)

	spec, err := aarc.Workload("video-analysis")
	if err != nil {
		log.Fatal(err)
	}
	classes := aarc.DefaultVideoClasses()

	fmt.Printf("configuring %s per input class (SLO %.0f s)...\n", spec.Name, spec.SLOMS/1000)
	engine, err := aarc.ConfigureClasses(context.Background(), spec, classes, aarc.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline configuration time: %.0f s (simulated)\n\n", engine.TotalSearchRuntimeMS()/1000)

	for _, cls := range engine.Classes() {
		cfg, _ := engine.Config(cls.Name)
		fmt.Printf("class %-6s (scale %.1f): %s\n", cls.Name, cls.Scale, cfg)
	}

	// Serve a mixed request stream.
	serving, err := aarc.NewRunner(spec, aarc.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserving mixed traffic:")
	stream := []struct {
		id    int
		scale float64
	}{
		{1, 0.3}, {2, 1.0}, {3, 1.6}, {4, 0.4}, {5, 1.4}, {6, 0.9},
	}
	violations := 0
	for _, req := range stream {
		cls, cfg := engine.Dispatch(aarc.InputRequest{ID: req.id, Scale: req.scale})
		res, err := serving.EvaluateScale(cfg, req.scale)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if res.OOM || res.E2EMS > spec.SLOMS {
			status = "SLO VIOLATED"
			violations++
		}
		fmt.Printf("  request %d scale %.1f -> class %-6s e2e %6.1f s cost %8.1fk  %s\n",
			req.id, req.scale, cls.Name, res.E2EMS/1000, res.Cost/1000, status)
	}
	fmt.Printf("\nSLO violations: %d / %d requests\n", violations, len(stream))
}
