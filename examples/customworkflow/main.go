// Command customworkflow shows how a developer brings their own workflow to
// AARC through the public facade: define the DAG and per-function
// performance profiles in code (or load the same structure from JSON via
// aarc.DecodeSpec), hand it to Configure with an end-to-end SLO, and receive
// a decoupled per-function configuration.
//
// The example models a log-analytics pipeline:
//
//	ingest → parse → {index | aggregate → alert} → publish
//
// where parse fans into an indexing branch and an aggregation branch that
// rejoin at publish.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"aarc"
)

func buildSpec() *aarc.Spec {
	g := aarc.NewGraph()
	for _, id := range []string{"ingest", "parse", "index", "aggregate", "alert", "publish"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("ingest", "parse")
	g.MustAddEdge("parse", "index")
	g.MustAddEdge("parse", "aggregate")
	g.MustAddEdge("aggregate", "alert")
	g.MustAddEdge("index", "publish")
	g.MustAddEdge("alert", "publish")

	profiles := map[string]aarc.Profile{
		"ingest": {Name: "ingest", CPUWorkMS: 2000, ParallelFrac: 0.2, MaxParallel: 2, IOMS: 3000,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: 0.02},
		"parse": {Name: "parse", CPUWorkMS: 15_000, ParallelFrac: 0.7, MaxParallel: 8, IOMS: 1000,
			FootprintMB: 1024, MinMemMB: 512, PressureK: 1.5, NoiseStd: 0.02},
		"index": {Name: "index", CPUWorkMS: 10_000, ParallelFrac: 0.5, MaxParallel: 4, IOMS: 4000,
			FootprintMB: 2048, MinMemMB: 1024, PressureK: 2, NoiseStd: 0.02},
		"aggregate": {Name: "aggregate", CPUWorkMS: 25_000, ParallelFrac: 0.8, MaxParallel: 8, IOMS: 1000,
			FootprintMB: 1024, MinMemMB: 512, PressureK: 1, NoiseStd: 0.02},
		"alert": {Name: "alert", CPUWorkMS: 1000, ParallelFrac: 0, IOMS: 1500,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: 0.02},
		"publish": {Name: "publish", CPUWorkMS: 1500, ParallelFrac: 0, IOMS: 2000,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: 0.02},
	}

	spec := &aarc.Spec{
		Name:     "log-analytics",
		G:        g,
		Profiles: profiles,
		SLOMS:    90_000,
		Limits:   aarc.DefaultLimits(),
	}
	spec.Base = aarc.UniformAssignment(spec.FunctionGroups(), aarc.Config{CPU: 4, MemMB: 4096})
	return spec
}

func main() {
	log.SetFlags(0)
	spec := buildSpec()
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	// The same definition can be shipped as JSON (see -spec in cmd/aarc).
	fmt.Println("JSON form of this workflow (truncated):")
	enc := &truncWriter{limit: 400}
	if err := aarc.EncodeSpec(enc, spec); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s...\n\n", enc.buf)

	runner, err := aarc.NewRunner(spec, aarc.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}
	base, err := runner.Evaluate(spec.Base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base config   : %s everywhere\n", spec.Base[spec.FunctionGroups()[0]])
	fmt.Printf("base execution: e2e %.1f s, cost %.1fk (SLO %.0f s)\n\n",
		base.E2EMS/1000, base.Cost/1000, spec.SLOMS/1000)

	rec, err := aarc.Configure(context.Background(), spec, aarc.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AARC search   : %d samples, %.0f s simulated\n",
		rec.Trace.Len(), rec.Trace.TotalRuntimeMS()/1000)
	for _, g := range rec.Assignment.Keys() {
		fmt.Printf("  %-10s %s\n", g, rec.Assignment[g])
	}

	// The final measured execution ships with the recommendation.
	final := rec.Final
	fmt.Printf("\nconfigured    : e2e %.1f s, cost %.1fk (%.1f%% cheaper than base)\n",
		final.E2EMS/1000, final.Cost/1000, (base.Cost-final.Cost)/base.Cost*100)
	if !rec.SLOCompliant() {
		fmt.Fprintln(os.Stderr, "warning: SLO violated")
		os.Exit(1)
	}
}

// truncWriter captures up to limit bytes and discards the rest.
type truncWriter struct {
	buf   []byte
	limit int
}

func (w *truncWriter) Write(p []byte) (int, error) {
	if room := w.limit - len(w.buf); room > 0 {
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
	}
	return len(p), nil
}
