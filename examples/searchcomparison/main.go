// Command searchcomparison reruns the paper's core comparison on one
// workload: AARC vs Bayesian Optimization vs MAFF, reporting the search
// totals (Fig. 5), the chosen configurations, and the validated runtime and
// cost of each (Table II, at reduced validation count). It drives everything
// through the public aarc facade.
//
//	go run ./examples/searchcomparison            # chatbot
//	go run ./examples/searchcomparison ml-pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"aarc"
)

func main() {
	log.SetFlags(0)

	name := "chatbot"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := aarc.Workload(name)
	if err != nil {
		log.Fatal(err)
	}

	methods := []string{"aarc", "bo", "maff"}

	fmt.Printf("%s — SLO %.0f s, %d configurable functions\n\n",
		spec.Name, spec.SLOMS/1000, len(spec.FunctionGroups()))
	fmt.Printf("%-6s %8s %14s %14s %14s %12s\n",
		"method", "samples", "search_time_s", "search_cost_k", "avg_runtime_s", "avg_cost_k")

	recs := make([]*aarc.Recommendation, 0, len(methods))
	for _, m := range methods {
		// Each method gets an identically-seeded fresh simulator, exactly
		// like the paper's per-method experiment runs.
		rec, err := aarc.Configure(context.Background(), spec,
			aarc.WithMethod(m), aarc.WithSeed(42))
		if err != nil {
			log.Fatal(err)
		}
		recs = append(recs, rec)

		// Validation continues the search's own simulator stream.
		results, err := rec.Validate(20)
		if err != nil {
			log.Fatal(err)
		}
		var e2es, costs []float64
		for _, res := range results {
			e2es = append(e2es, res.E2EMS)
			costs = append(costs, res.Cost)
		}
		fmt.Printf("%-6s %8d %14.0f %14.0f %11.1f±%.1f %12.1f\n",
			rec.Method,
			rec.Trace.Len(),
			rec.Trace.TotalRuntimeMS()/1000,
			rec.Trace.TotalCost()/1000,
			mean(e2es)/1000, stddev(e2es)/1000,
			mean(costs)/1000,
		)
	}

	fmt.Println("\nper-function configurations:")
	for _, rec := range recs {
		fmt.Printf("  %-6s %s\n", rec.Method, rec.Assignment)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
