// Command searchcomparison reruns the paper's core comparison on one
// workload: AARC vs Bayesian Optimization vs MAFF, reporting the search
// totals (Fig. 5), the chosen configurations, and the validated runtime and
// cost of each (Table II, at reduced validation count).
//
//	go run ./examples/searchcomparison            # chatbot
//	go run ./examples/searchcomparison ml-pipeline
package main

import (
	"fmt"
	"log"
	"os"

	"aarc/internal/baselines/bo"
	"aarc/internal/baselines/maff"
	"aarc/internal/core"
	"aarc/internal/search"
	"aarc/internal/stats"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

func main() {
	log.SetFlags(0)

	name := "chatbot"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		log.Fatal(err)
	}

	searchers := []search.Searcher{
		core.New(core.DefaultOptions()),
		bo.New(bo.DefaultOptions()),
		maff.New(maff.DefaultOptions()),
	}

	fmt.Printf("%s — SLO %.0f s, %d configurable functions\n\n",
		spec.Name, spec.SLOMS/1000, len(spec.FunctionGroups()))
	fmt.Printf("%-6s %8s %14s %14s %14s %12s\n",
		"method", "samples", "search_time_s", "search_cost_k", "avg_runtime_s", "avg_cost_k")

	for _, s := range searchers {
		// Each method gets an identically-seeded fresh simulator, exactly
		// like the paper's per-method experiment runs.
		runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
			HostCores: 96, Noise: true, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		outcome, err := s.Search(runner, spec.SLOMS)
		if err != nil {
			log.Fatal(err)
		}

		var e2es, costs []float64
		for i := 0; i < 20; i++ {
			res, err := runner.Evaluate(outcome.Best)
			if err != nil {
				log.Fatal(err)
			}
			e2es = append(e2es, res.E2EMS)
			costs = append(costs, res.Cost)
		}
		fmt.Printf("%-6s %8d %14.0f %14.0f %11.1f±%.1f %12.1f\n",
			s.Name(),
			outcome.Trace.Len(),
			outcome.Trace.TotalRuntimeMS()/1000,
			outcome.Trace.TotalCost()/1000,
			stats.Mean(e2es)/1000, stats.SampleStdDev(e2es)/1000,
			stats.Mean(costs)/1000,
		)
	}

	fmt.Println("\nper-function configurations:")
	for _, s := range searchers {
		runner, _ := workflow.NewRunner(spec, workflow.RunnerOptions{HostCores: 96, Noise: true, Seed: 42})
		outcome, err := s.Search(runner, spec.SLOMS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %s\n", s.Name(), outcome.Best)
	}
}
