package aarc_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"aarc"
)

func TestWorkloadAndNames(t *testing.T) {
	for _, name := range aarc.WorkloadNames() {
		spec, err := aarc.Workload(name)
		if err != nil {
			t.Fatalf("Workload(%q): %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("Workload(%q).Name = %s", name, spec.Name)
		}
	}
	if _, err := aarc.Workload("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestConfigureDefaultsToAARC(t *testing.T) {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := aarc.Configure(context.Background(), spec,
		aarc.WithBudget(aarc.Budget{MaxSamples: 6}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Method != "AARC" {
		t.Errorf("default method = %s, want AARC", rec.Method)
	}
	if rec.Trace.Len() != 6 {
		t.Errorf("budget of 6 samples recorded %d", rec.Trace.Len())
	}
	if len(rec.Assignment) == 0 {
		t.Error("empty assignment")
	}
	if rec.SLOMS != spec.SLOMS {
		t.Errorf("SLOMS = %v, want the spec's %v", rec.SLOMS, spec.SLOMS)
	}
}

// TestConfigureBatchMatchesSequentialConfigure: the pooled batch returns
// the same recommendations as sequential singleton Configure calls with
// identical options — parallelism must not leak into the results.
func TestConfigureBatchMatchesSequentialConfigure(t *testing.T) {
	var specs []*aarc.Spec
	for _, name := range aarc.WorkloadNames() {
		spec, err := aarc.Workload(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	opts := []aarc.Option{aarc.WithBudget(aarc.Budget{MaxSamples: 5}), aarc.WithBatchWorkers(2)}
	recs, err := aarc.ConfigureBatch(context.Background(), specs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(specs) {
		t.Fatalf("got %d recommendations for %d specs", len(recs), len(specs))
	}
	for i, spec := range specs {
		want, err := aarc.Configure(context.Background(), spec, opts...)
		if err != nil {
			t.Fatal(err)
		}
		got := recs[i]
		if got == nil {
			t.Fatalf("spec %d: nil recommendation", i)
		}
		if got.Final.E2EMS != want.Final.E2EMS || got.Final.Cost != want.Final.Cost ||
			got.Final.OOM != want.Final.OOM || got.Trace.Len() != want.Trace.Len() {
			t.Errorf("spec %d: batched final %+v (%d samples) != sequential %+v (%d samples)",
				i, got.Final, got.Trace.Len(), want.Final, want.Trace.Len())
		}
		for g, cfg := range want.Assignment {
			if got.Assignment[g] != cfg {
				t.Errorf("spec %d group %q: batched %v != sequential %v", i, g, got.Assignment[g], cfg)
			}
		}
	}
}

// TestConfigureBatchIsolatesFailures: a nil spec fails only its slot and
// the joined error names it; healthy slots still complete.
func TestConfigureBatchIsolatesFailures(t *testing.T) {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := aarc.ConfigureBatch(context.Background(), []*aarc.Spec{nil, spec},
		aarc.WithBudget(aarc.Budget{MaxSamples: 3}))
	if err == nil {
		t.Fatal("batch with a nil spec returned no error")
	}
	if recs[0] != nil {
		t.Error("failed slot holds a recommendation")
	}
	if recs[1] == nil || len(recs[1].Assignment) == 0 {
		t.Errorf("healthy slot = %+v", recs[1])
	}
}

func TestSLOCompliantFalseWhenNeverMeasured(t *testing.T) {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	// An SLO no sample can meet: the naive searcher falls back to the base
	// assignment without ever measuring it, so Final stays zero and the
	// recommendation must not claim compliance.
	rec, err := aarc.Configure(context.Background(), spec,
		aarc.WithMethod("random"),
		aarc.WithSLO(1*time.Millisecond),
		aarc.WithBudget(aarc.Budget{MaxSamples: 5}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Final.E2EMS != 0 {
		t.Fatalf("expected unmeasured zero Final, got %+v", rec.Final)
	}
	if rec.SLOCompliant() {
		t.Error("SLOCompliant must be false when the assignment was never measured")
	}
}

func TestConfigureUnknownMethod(t *testing.T) {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	_, err = aarc.Configure(context.Background(), spec, aarc.WithMethod("nope"))
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v, want unknown-method error listing the registry", err)
	}
}

func TestConfigureCancelledContextReturnsPartial(t *testing.T) {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec, err := aarc.Configure(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rec == nil || rec.Trace == nil || rec.Trace.Len() == 0 {
		t.Fatal("cancelled Configure should return the partial recommendation")
	}
}

func TestConfigureSLOAndProgress(t *testing.T) {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	rec, err := aarc.Configure(context.Background(), spec,
		aarc.WithMethod("maff"),
		aarc.WithSLO(150*time.Second),
		aarc.WithProgress(func(aarc.Sample) { n++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SLOMS != 150_000 {
		t.Errorf("WithSLO(150s) → SLOMS %v", rec.SLOMS)
	}
	if n != rec.Trace.Len() {
		t.Errorf("progress saw %d of %d samples", n, rec.Trace.Len())
	}
}

func TestRecommendationValidateContinuesSimulator(t *testing.T) {
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := aarc.Configure(context.Background(), spec, aarc.WithMethod("maff"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Final.E2EMS <= 0 {
		t.Fatal("Final not populated")
	}
	results, err := rec.Validate(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("Validate(3) returned %d results", len(results))
	}
	for _, res := range results {
		if res.E2EMS <= 0 || res.Cost <= 0 {
			t.Errorf("implausible validation result %+v", res)
		}
	}
}

func TestConfigureClassesThroughFacade(t *testing.T) {
	spec, err := aarc.Workload("video-analysis")
	if err != nil {
		t.Fatal(err)
	}
	classes := []aarc.InputClass{{Name: "small", Scale: 0.5}, {Name: "big", Scale: 1.2}}
	// Keep the test fast: bound each per-class search.
	engine, err := aarc.ConfigureClasses(context.Background(), spec, classes,
		aarc.WithMethod("maff"), aarc.WithBudget(aarc.Budget{MaxSamples: 4}))
	if err != nil {
		t.Fatal(err)
	}
	for _, cls := range classes {
		if _, ok := engine.Config(cls.Name); !ok {
			t.Errorf("missing config for class %q", cls.Name)
		}
	}
	cls, cfg := engine.Dispatch(aarc.InputRequest{ID: 1, Scale: 0.4})
	if cls.Name != "small" || len(cfg) == 0 {
		t.Errorf("Dispatch = %v, %v", cls, cfg)
	}
}

func TestNewRunnerEvaluatesSpec(t *testing.T) {
	spec, err := aarc.Workload("ml-pipeline")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := aarc.NewRunner(spec, aarc.WithSeed(7), aarc.WithNoise(false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Evaluate(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if res.E2EMS <= 0 || len(res.Nodes) != spec.G.NumNodes() {
		t.Errorf("implausible result: e2e %v, %d nodes", res.E2EMS, len(res.Nodes))
	}
}

func TestSpecFingerprintThroughFacade(t *testing.T) {
	a, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	b, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := aarc.SpecFingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := aarc.SpecFingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Errorf("two loads of the same workload fingerprint differently: %s vs %s", fpA, fpB)
	}
	other, err := aarc.Workload("ml-pipeline")
	if err != nil {
		t.Fatal(err)
	}
	fpO, err := aarc.SpecFingerprint(other)
	if err != nil {
		t.Fatal(err)
	}
	if fpO == fpA {
		t.Error("distinct workloads share a fingerprint")
	}
}

func TestNewServiceCachesAcrossCalls(t *testing.T) {
	svc, err := aarc.NewService(aarc.WithBudget(aarc.Budget{MaxSamples: 20}))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := aarc.Workload("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	rec1, hit1, err := svc.Configure(context.Background(), spec, aarc.ServiceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	rec2, hit2, err := svc.Configure(context.Background(), spec, aarc.ServiceRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if hit1 || !hit2 {
		t.Errorf("cache hits = %v, %v; want false, true", hit1, hit2)
	}
	if rec1.Fingerprint != rec2.Fingerprint || rec1.Samples != rec2.Samples {
		t.Errorf("hit returned a different recommendation: %+v vs %+v", rec1, rec2)
	}
	if st := svc.Stats(); st.Searches != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 search / 1 hit", st)
	}
}
