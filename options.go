package aarc

import (
	"time"

	"aarc/internal/store"
)

// settings collects everything the functional options tune. The defaults
// mirror the paper's experimental setup: the AARC method on a 96-core
// testbed with measurement noise on and the canonical seed.
type settings struct {
	method     string
	sloMS      float64 // 0: use the spec's SLO
	maxSamples int
	maxSimMS   float64
	progress   func(Sample)
	seed       uint64
	hostCores  float64
	noise      bool
	inputScale float64     // 0: scale 1.0
	cacheSize  int         // NewService: 0 = default 128
	shards     int         // NewService: 0 = GOMAXPROCS
	cacheDir   string      // NewService: "" = memory-only store
	store      store.Store // NewService: nil = built from cacheSize/cacheDir

	batchWorkers int           // ConfigureBatch + NewService: 0 = GOMAXPROCS
	batchWindow  time.Duration // NewService: 0 = no miss coalescing

	searchTimeout    time.Duration // NewService: 0 = no server-side search deadline
	maxConcSearches  int           // NewService: 0 = unlimited cold searches
	breakerThreshold int           // NewService: 0 = default 5
	breakerCooldown  time.Duration // NewService: 0 = default 15s
	chaosDiskDown    time.Duration // NewService: 0 = no chaos drill

	driftInterval  time.Duration // NewService: 0 = lifecycle monitor off
	driftThreshold float64       // NewService: 0 = default 0.9
	refreshWorkers int           // NewService: 0 = default 1
}

func defaultSettings() settings {
	return settings{
		method:    "aarc",
		seed:      42,
		hostCores: 96,
		noise:     true,
	}
}

// An Option tunes Configure, ConfigureClasses or NewRunner.
type Option func(*settings)

// WithMethod selects the search method by registered name ("aarc", "bo",
// "maff", "random", "grid", or anything added via the search registry).
// Default: "aarc".
func WithMethod(name string) Option {
	return func(s *settings) { s.method = name }
}

// WithSLO overrides the workflow's end-to-end latency SLO. The zero value
// keeps the spec's own SLO.
func WithSLO(d time.Duration) Option {
	return func(s *settings) { s.sloMS = float64(d) / float64(time.Millisecond) }
}

// Budget bounds a search. Zero fields are unlimited.
type Budget struct {
	// MaxSamples caps the number of configuration probes; the sampling
	// trace never exceeds it.
	MaxSamples int
	// MaxSimCost caps the total simulated wall time spent sampling. The
	// probe that crosses the budget is kept; no further probe starts.
	MaxSimCost time.Duration
}

// WithBudget bounds the search by sample count and/or simulated time spent
// sampling. A search that exhausts its budget stops normally and returns
// the best configuration found so far.
func WithBudget(b Budget) Option {
	return func(s *settings) {
		s.maxSamples = b.MaxSamples
		s.maxSimMS = float64(b.MaxSimCost) / float64(time.Millisecond)
	}
}

// WithProgress registers a callback invoked synchronously with every sample
// as the search records it. It runs on the search's hot path: keep it fast.
func WithProgress(fn func(Sample)) Option {
	return func(s *settings) { s.progress = fn }
}

// WithSeed sets the deterministic seed shared by the simulator and the
// searcher. Default: 42, the seed used throughout the paper reproduction.
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithHostCores sets the host CPU capacity shared by concurrently running
// containers (default 96, the paper's testbed). Zero disables contention.
func WithHostCores(cores float64) Option {
	return func(s *settings) { s.hostCores = cores }
}

// WithNoise toggles the profiles' multiplicative measurement noise
// (default on, as in every paper experiment).
func WithNoise(enabled bool) Option {
	return func(s *settings) { s.noise = enabled }
}

// WithInputScale sets the default input scale of the runner (default 1.0).
// Per-request scales are available through Runner.EvaluateScale and the
// input-aware engine.
func WithInputScale(scale float64) Option {
	return func(s *settings) { s.inputScale = scale }
}

// WithCacheSize bounds NewService's recommendation cache (LRU entries;
// default 128). Configure and ConfigureClasses ignore it.
func WithCacheSize(n int) Option {
	return func(s *settings) { s.cacheSize = n }
}

// WithShards sets how many Runners NewService pools per cached entry for
// concurrent Evaluate/Validate (default GOMAXPROCS). Configure and
// ConfigureClasses ignore it.
func WithShards(n int) Option {
	return func(s *settings) { s.shards = n }
}

// WithCacheDir makes NewService's recommendation store durable: a
// WithCacheSize-bounded memory tier over a disk tier rooted at dir
// (write-through, promote-on-hit, warmed from disk on start). A
// restarted service answers fingerprints its predecessor searched as
// cache hits, byte-identical. Configure and ConfigureClasses ignore it;
// WithStore overrides it.
func WithCacheDir(dir string) Option {
	return func(s *settings) { s.cacheDir = dir }
}

// WithBatchWorkers bounds how many searches a batched configure run
// executes concurrently: ConfigureBatch's worker pool, and — for
// NewService — the pooled run behind Service.ConfigureBatch,
// POST /v1/configure:batch and a drained WithBatchWindow queue. Zero
// (the default) selects GOMAXPROCS. Configure and ConfigureClasses
// ignore it.
func WithBatchWorkers(n int) Option {
	return func(s *settings) { s.batchWorkers = n }
}

// WithBatchWindow opts NewService into miss coalescing: a singleton
// Configure cache miss waits up to d for other distinct misses, and the
// whole queue drains into one WithBatchWorkers-wide pooled batch run —
// so a cold burst of singleton requests amortizes like an explicit
// batch. Cache hits never wait on the window; d is therefore the maximum
// extra latency a cold request can pay. Zero (the default) keeps the
// classic search-per-miss path. Configure, ConfigureBatch and
// ConfigureClasses ignore it.
func WithBatchWindow(d time.Duration) Option {
	return func(s *settings) { s.batchWindow = d }
}

// WithSearchTimeout sets NewService's server-side search deadline: a
// leader search still running after d fails with a timeout error —
// served to the leader and every singleflight follower, never cached —
// instead of holding its flight (and its WithMaxConcurrentSearches
// slot) indefinitely. Zero (the default) leaves searches unbounded;
// bound their work with WithBudget instead when determinism matters.
// Configure, ConfigureBatch and ConfigureClasses ignore it.
func WithSearchTimeout(d time.Duration) Option {
	return func(s *settings) { s.searchTimeout = d }
}

// WithMaxConcurrentSearches caps how many cold searches NewService runs
// at once. At saturation, a singleton configure miss without a context
// deadline is shed fail-fast (HTTP 429 with Retry-After on the wire);
// one with a deadline waits for a slot until then; batched and
// coalesced runs always wait (their concurrency is already pool-
// bounded). Zero (the default) disables the cap. Configure,
// ConfigureBatch and ConfigureClasses ignore it.
func WithMaxConcurrentSearches(n int) Option {
	return func(s *settings) { s.maxConcSearches = n }
}

// WithBreaker tunes the circuit breaker NewService wraps around a
// WithCacheDir disk tier: threshold consecutive disk failures open it
// (disk skipped, memory-only serving, /readyz degraded) and after
// cooldown one probe op decides between closing and re-opening.
// Defaults: 5 failures, 15s cooldown. Ignored without WithCacheDir (a
// memory-only store has no tier to break).
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(s *settings) {
		s.breakerThreshold = threshold
		s.breakerCooldown = cooldown
	}
}

// WithChaosDiskOutage is the built-in chaos drill: NewService wraps a
// WithCacheDir disk tier in a deterministic fault injector that fails
// every disk op for the first d of the service's life, then recovers —
// driving the breaker through open → half-open → closed while the
// memory tier keeps serving. Intended for smoke tests (aarcd
// -chaos-disk-down); zero (the default) injects nothing.
func WithChaosDiskOutage(d time.Duration) Option {
	return func(s *settings) { s.chaosDiskDown = d }
}

// WithDrift turns on NewService's recommendation lifecycle: every
// interval a background monitor re-validates each stored entry on its
// sharded runner pool, flags the ones whose rolling validation p99
// crossed threshold×SLO (with hysteresis, so entries oscillating around
// the watermark do not flap), and re-searches them in the background —
// the refreshed recommendation is swapped into the store atomically and
// announced on the watch API, while the old one serves until the swap.
// threshold 0 takes the default 0.9; interval 0 (the default) leaves
// the lifecycle off. Configure, ConfigureBatch and ConfigureClasses
// ignore it.
func WithDrift(interval time.Duration, threshold float64) Option {
	return func(s *settings) {
		s.driftInterval = interval
		s.driftThreshold = threshold
	}
}

// WithRefreshWorkers bounds how many stale entries a WithDrift service
// refreshes concurrently (default 1). Refreshes always yield admission
// slots to foreground misses, so more workers trade idle-time refresh
// throughput, never foreground latency. Ignored without WithDrift.
func WithRefreshWorkers(n int) Option {
	return func(s *settings) { s.refreshWorkers = n }
}

// WithStore plugs a caller-built recommendation store (see the Store
// contract; NewMemoryStore, OpenDiskStore, NewTieredStore ship) into
// NewService, overriding WithCacheSize and WithCacheDir. The service
// takes ownership: its Close closes the store. Configure and
// ConfigureClasses ignore it.
func WithStore(st Store) Option {
	return func(s *settings) { s.store = st }
}
