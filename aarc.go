package aarc

import (
	"io"

	"aarc/internal/dag"
	"aarc/internal/inputaware"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"

	// The built-in search methods self-register with the search registry;
	// importing them here makes every method resolvable through the public
	// facade (Methods, NewSearcher, WithMethod) without touching internal/.
	_ "aarc/internal/baselines/bo"
	_ "aarc/internal/baselines/maff"
	_ "aarc/internal/baselines/naive"
	_ "aarc/internal/core"
)

// The facade re-exports the implementation's data types as aliases, so code
// outside this module can name specs, configurations and traces while the
// implementation stays under internal/.
type (
	// Spec is a workflow definition: DAG, per-node performance profiles,
	// configuration groups, SLO and admissible configuration limits.
	Spec = workflow.Spec
	// Runner executes a Spec on the simulated serverless platform. It is
	// the Evaluator behind every search; one runner per goroutine.
	Runner = workflow.Runner
	// Graph is the workflow DAG.
	Graph = dag.Graph
	// Profile is the analytic performance model of one function.
	Profile = perfmodel.Profile
	// Config is a decoupled vCPU/memory configuration for one function.
	Config = resources.Config
	// Limits is the admissible configuration box/grid.
	Limits = resources.Limits
	// Assignment maps configuration groups to Configs.
	Assignment = resources.Assignment
	// Result is the measured outcome of one workflow execution.
	Result = search.Result
	// Sample is one probe of the configuration space.
	Sample = search.Sample
	// Trace is the ordered record of all samples a search performed.
	Trace = search.Trace
	// Searcher is a resource-configuration search method.
	Searcher = search.Searcher
	// InputClass is one input-size class of the input-aware engine.
	InputClass = inputaware.Class
	// InputRequest is one incoming invocation with its analyzed input scale.
	InputRequest = inputaware.Request
	// InputEngine dispatches requests to per-input-class configurations.
	InputEngine = inputaware.Engine
)

// NewGraph returns an empty workflow DAG to build a custom Spec on.
func NewGraph() *Graph { return dag.New() }

// DefaultLimits returns the paper's admissible configuration grid.
func DefaultLimits() Limits { return resources.DefaultLimits() }

// UniformAssignment assigns the same configuration to every listed group.
func UniformAssignment(groups []string, cfg Config) Assignment {
	return resources.Uniform(groups, cfg)
}

// Workload returns one of the built-in evaluation workflows by name:
// "chatbot", "ml-pipeline" or "video-analysis".
func Workload(name string) (*Spec, error) { return workloads.ByName(name) }

// WorkloadNames lists the built-in workloads in presentation order.
func WorkloadNames() []string {
	return []string{"chatbot", "ml-pipeline", "video-analysis"}
}

// ScaleOptions parameterizes the synthetic scale-regime workload generator
// (topology family, node count, seed, edge density, heavy-tailed profiles).
type ScaleOptions = workloads.ScaleOptions

// ScaleTopology names a generated DAG family: "layered", "fanout", "chain",
// "diamond" or "random".
type ScaleTopology = workloads.Topology

// ScaleWorkload deterministically generates a synthetic workflow of the
// requested family and exact node count — the same options produce
// byte-identical canonical specs on every run. It extends the built-in
// workloads to the 10k-node regime the incremental compilation path targets.
func ScaleWorkload(opts ScaleOptions) (*Spec, error) { return workloads.Scale(opts) }

// ScaleTopologies lists the generated topology families in a stable order.
func ScaleTopologies() []ScaleTopology { return workloads.Topologies() }

// LoadSpec reads a JSON workflow definition from a file.
func LoadSpec(path string) (*Spec, error) { return workflow.LoadSpec(path) }

// DecodeSpec reads a JSON workflow definition from a reader.
func DecodeSpec(r io.Reader) (*Spec, error) { return workflow.DecodeSpec(r) }

// EncodeSpec writes a Spec as its JSON definition.
func EncodeSpec(w io.Writer, spec *Spec) error { return workflow.EncodeSpec(w, spec) }

// Methods lists the registered search methods, sorted. The method packages
// self-register: the five built-ins ("aarc", "bo", "maff", "random",
// "grid") are always present through this package's imports.
func Methods() []string { return search.Methods() }

// NewSearcher resolves a registered search method by (case-insensitive)
// name and builds it with the given seed. Most callers want Configure
// instead; NewSearcher is for code that drives a Searcher directly against
// its own Evaluator.
func NewSearcher(name string, seed uint64) (Searcher, error) { return search.New(name, seed) }

// MethodVersion returns a registered method's implementation version.
// The serving layer folds it into recommendation fingerprints, so a
// version bump self-invalidates every cached — including persisted —
// recommendation the previous implementation produced.
func MethodVersion(name string) (int, error) { return search.Version(name) }

// DefaultVideoClasses returns the light / middle / heavy input classes of
// the paper's Video Analysis experiment.
func DefaultVideoClasses() []InputClass { return inputaware.DefaultVideoClasses() }

// DOT renders the spec's DAG in Graphviz DOT format, with nodes weighted by
// their noise-free base-configuration runtimes.
func DOT(spec *Spec) string {
	weights := make(map[string]float64, spec.G.NumNodes())
	for _, id := range spec.G.Nodes() {
		p := spec.Profiles[id]
		cfg := spec.Base[spec.GroupOf(id)]
		if t, err := p.MeanRuntime(cfg, 1); err == nil {
			weights[id] = t
		}
	}
	return dag.DOT(spec.G, weights, nil)
}
