// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure (plus the ablation extension). Each iteration performs the
// complete experiment on the simulated testbed, so b.N=1 already produces
// the full result; custom metrics surface the headline numbers next to the
// wall-clock cost of regenerating them.
//
//	go test -bench=. -benchmem
package aarc_test

import (
	"testing"

	"aarc/internal/experiments"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/simfaas"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

const benchSeed = 42

// BenchmarkEvaluate measures the evaluation hot path itself: one workflow
// execution per iteration on each paper workload, with allocations reported.
// Every figure in the evaluation is hundreds to thousands of these calls, so
// allocs/op here bounds the whole harness.
func BenchmarkEvaluate(b *testing.B) {
	for _, w := range experiments.Workloads() {
		b.Run(w, func(b *testing.B) {
			spec, err := workloads.ByName(w)
			if err != nil {
				b.Fatal(err)
			}
			runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
				HostCores: experiments.HostCores, Noise: true, Seed: benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			a := runner.Base()
			if _, err := runner.Evaluate(a); err != nil { // warm containers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := runner.Evaluate(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlatformInvoke measures the simulated platform's per-invocation
// cost on the steady (warm) path.
func BenchmarkPlatformInvoke(b *testing.B) {
	p := simfaas.New(simfaas.DefaultOptions())
	prof := perfmodel.Profile{
		Name: "bench", CPUWorkMS: 1000, ParallelFrac: 0.5,
		FootprintMB: 512, MinMemMB: 128, PressureK: 1,
	}
	cfg := resources.Config{CPU: 2, MemMB: 1024}
	if _, err := p.Invoke("bench", prof, cfg, 1, nil); err != nil { // warm it
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke("bench", prof, cfg, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Heatmaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunFig2All()
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 3 {
			b.Fatal("expected 3 workloads")
		}
	}
}

func BenchmarkFig3BOInstability(b *testing.B) {
	var fluct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		fluct = r.FluctuationPct
	}
	b.ReportMetric(fluct, "fluctuation_%")
}

func BenchmarkFig5SearchTotals(b *testing.B) {
	var videoRuntimeRed, videoCostRed float64
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite(benchSeed)
		r, err := experiments.RunFig5(suite)
		if err != nil {
			b.Fatal(err)
		}
		videoRuntimeRed = r.ReductionPct("video-analysis", "BO", "runtime")
		videoCostRed = r.ReductionPct("video-analysis", "BO", "cost")
	}
	// The paper's headline: −85.8% runtime and −90.1% cost vs BO on Video
	// Analysis; see EXPERIMENTS.md for the measured band.
	b.ReportMetric(videoRuntimeRed, "video_runtime_red_%")
	b.ReportMetric(videoCostRed, "video_cost_red_%")
}

func BenchmarkFig6RuntimeTrajectories(b *testing.B) {
	suite := experiments.NewSuite(benchSeed)
	if err := suite.RunAll(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(suite); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7CostTrajectories(b *testing.B) {
	suite := experiments.NewSuite(benchSeed)
	if err := suite.RunAll(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(suite); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Validation(b *testing.B) {
	var mlVsBO, mlVsMAFF float64
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite(benchSeed)
		r, err := experiments.RunTable2(suite)
		if err != nil {
			b.Fatal(err)
		}
		mlVsBO = r.CostReductionPct("ml-pipeline", "BO")
		mlVsMAFF = r.CostReductionPct("ml-pipeline", "MAFF")
	}
	// The paper's headline: 49.6% vs BO and 61.7% vs MAFF on ML Pipeline.
	b.ReportMetric(mlVsBO, "ml_cost_red_vs_bo_%")
	b.ReportMetric(mlVsMAFF, "ml_cost_red_vs_maff_%")
}

func BenchmarkFig8InputAware(b *testing.B) {
	var lightVsMAFF float64
	var maffViolations int
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		lightVsMAFF = r.CostOptimizationPct("MAFF", "light")
		maffViolations = r.Violations["MAFF"]
	}
	b.ReportMetric(lightVsMAFF, "light_cost_red_vs_maff_%")
	b.ReportMetric(float64(maffViolations), "maff_slo_violations")
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblation(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchPerMethod times one full configuration search per method on
// each workload — the raw cost of the search algorithms themselves
// (host-side compute, not simulated time).
func BenchmarkSearchPerMethod(b *testing.B) {
	for _, w := range experiments.Workloads() {
		for _, m := range experiments.MethodNames {
			b.Run(w+"/"+m, func(b *testing.B) {
				var samples int
				for i := 0; i < b.N; i++ {
					suite := experiments.NewSuite(benchSeed + uint64(i))
					run, err := suite.Run(w, m)
					if err != nil {
						b.Fatal(err)
					}
					samples = run.Outcome.Trace.Len()
				}
				b.ReportMetric(float64(samples), "samples")
			})
		}
	}
}
