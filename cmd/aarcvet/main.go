// Command aarcvet is the project's vet suite: five analyzers that
// machine-check the serving stack's cache, concurrency and determinism
// invariants (DESIGN.md §13), plus a local shadow check. Run it
// through cmd/go:
//
//	go build -o bin/aarcvet ./cmd/aarcvet
//	go vet -vettool=$PWD/bin/aarcvet ./...
//
// run it directly on package patterns (it re-execs go vet):
//
//	bin/aarcvet ./...
//
// or regenerate the regversion manifest after bumping a method version:
//
//	bin/aarcvet -fix ./...
//
// The stock non-default analyzers worth bundling (nilness, shadow,
// unusedwrite) live in golang.org/x/tools; this build environment is
// offline, so shadow is re-implemented locally and the two SSA-based
// ones are gated out — see internal/analysis's package comment.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"aarc/internal/analysis"
	"aarc/internal/analysis/ctxflow"
	"aarc/internal/analysis/detcanon"
	"aarc/internal/analysis/lockscope"
	"aarc/internal/analysis/regversion"
	"aarc/internal/analysis/shadow"
	"aarc/internal/analysis/tierorder"
	"aarc/internal/analysis/unitchecker"
)

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detcanon.Analyzer,
		lockscope.Analyzer,
		regversion.Analyzer,
		shadow.Analyzer,
		tierorder.Analyzer,
	}
}

func main() {
	// Standalone conveniences in front of the vet protocol: "-fix"
	// regenerates the regversion manifest, and bare package patterns
	// re-exec through go vet. A trailing .cfg argument (or the
	// -flags/-V handshakes) means cmd/go is driving us.
	args := os.Args[1:]
	if len(args) > 0 {
		switch {
		case args[0] == "-fix" || args[0] == "--fix":
			os.Exit(regversion.Fix(args[1:], os.Stdout, os.Stderr))
		case !strings.HasPrefix(args[0], "-") && !strings.HasSuffix(args[len(args)-1], ".cfg"):
			os.Exit(execGoVet(args))
		}
	}
	unitchecker.Main(suite()...)
}

// execGoVet reruns the named package patterns through go vet with this
// binary as the vettool, so `aarcvet ./...` works as a command.
func execGoVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
