// Command aarcvet is the project's vet suite: ten analyzers that
// machine-check the serving stack's cache, concurrency and determinism
// invariants (DESIGN.md §13–§14), plus a local shadow check. Run it
// through cmd/go:
//
//	go build -o bin/aarcvet ./cmd/aarcvet
//	go vet -vettool=$PWD/bin/aarcvet ./...
//
// run it directly on package patterns (it re-execs go vet):
//
//	bin/aarcvet ./...
//
// or regenerate the regversion manifest after bumping a method version:
//
//	bin/aarcvet -fix ./...
//
// Six of the analyzers are purely syntactic/type-based (ctxflow,
// detcanon, lockscope, regversion, shadow, tierorder). The other four
// — lockorder, nilness, goleak, hotalloc — are built on
// internal/analysis/flow, a stdlib-only CFG/dataflow layer that stands
// in for the golang.org/x/tools SSA packages this offline build cannot
// import. lockorder and hotalloc are interprocedural: they export
// per-package facts through the vet .cfg/vetx protocol, so a lock
// acquired in internal/store and another in internal/service can still
// form a reported cycle, and an allocation three calls deep still
// taints a //aarc:hotpath root. DESIGN.md §14 documents the IR, the
// canonical lock order the suite enforces, and the hot-path contract.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"aarc/internal/analysis"
	"aarc/internal/analysis/ctxflow"
	"aarc/internal/analysis/detcanon"
	"aarc/internal/analysis/goleak"
	"aarc/internal/analysis/hotalloc"
	"aarc/internal/analysis/lockorder"
	"aarc/internal/analysis/lockscope"
	"aarc/internal/analysis/nilness"
	"aarc/internal/analysis/regversion"
	"aarc/internal/analysis/shadow"
	"aarc/internal/analysis/tierorder"
	"aarc/internal/analysis/unitchecker"
)

func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detcanon.Analyzer,
		goleak.Analyzer,
		hotalloc.Analyzer,
		lockorder.Analyzer,
		lockscope.Analyzer,
		nilness.Analyzer,
		regversion.Analyzer,
		shadow.Analyzer,
		tierorder.Analyzer,
	}
}

func main() {
	// Standalone conveniences in front of the vet protocol: "-fix"
	// regenerates the regversion manifest, and bare package patterns
	// re-exec through go vet. A trailing .cfg argument (or the
	// -flags/-V handshakes) means cmd/go is driving us.
	args := os.Args[1:]
	if len(args) > 0 {
		switch {
		case args[0] == "-fix" || args[0] == "--fix":
			os.Exit(regversion.Fix(args[1:], os.Stdout, os.Stderr))
		case !strings.HasPrefix(args[0], "-") && !strings.HasSuffix(args[len(args)-1], ".cfg"):
			os.Exit(execGoVet(args))
		}
	}
	unitchecker.Main(suite()...)
}

// execGoVet reruns the named package patterns through go vet with this
// binary as the vettool, so `aarcvet ./...` works as a command.
func execGoVet(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
