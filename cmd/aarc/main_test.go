package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildSearcher(t *testing.T) {
	for name, want := range map[string]string{
		"aarc":   "AARC",
		"AARC":   "AARC",
		"bo":     "BO",
		"maff":   "MAFF",
		"random": "Random",
		"grid":   "UniformGrid",
	} {
		s, err := buildSearcher(name, 1)
		if err != nil {
			t.Fatalf("buildSearcher(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("buildSearcher(%q).Name() = %s, want %s", name, s.Name(), want)
		}
	}
	if _, err := buildSearcher("nope", 1); err == nil {
		t.Error("unknown method should error")
	}
}

func TestLoadSpecBuiltin(t *testing.T) {
	spec, err := loadSpec("", "chatbot")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "chatbot" {
		t.Errorf("spec = %s", spec.Name)
	}
	if _, err := loadSpec("", "nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestLoadSpecJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.json")
	content := `{
	  "name": "tiny",
	  "slo_ms": 60000,
	  "nodes": [
	    {"id": "a", "profile": {"cpu_work_ms": 1000, "parallel_frac": 0, "footprint_mb": 256, "min_mem_mb": 128}},
	    {"id": "b", "profile": {"cpu_work_ms": 2000, "parallel_frac": 0.5, "footprint_mb": 256, "min_mem_mb": 128}}
	  ],
	  "edges": [["a","b"]],
	  "base": {"cpu": 2, "mem_mb": 1024}
	}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := loadSpec(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "tiny" || spec.G.NumNodes() != 2 {
		t.Errorf("loaded spec: %s, %d nodes", spec.Name, spec.G.NumNodes())
	}
	if _, err := loadSpec(filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := loadSpec(bad, ""); err == nil {
		t.Error("malformed JSON should error")
	}
}

func TestLoadShippedExampleSpec(t *testing.T) {
	spec, err := loadSpec("../../examples/specs/loganalytics.json", "")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "log-analytics" || spec.G.NumNodes() != 7 {
		t.Errorf("spec = %s with %d nodes", spec.Name, spec.G.NumNodes())
	}
	if spec.GroupOf("index_2") != "index" {
		t.Error("scatter group mapping lost")
	}
}

func TestProfileWeights(t *testing.T) {
	spec, err := loadSpec("", "chatbot")
	if err != nil {
		t.Fatal(err)
	}
	w := profileWeights(spec)
	if len(w) != spec.G.NumNodes() {
		t.Errorf("weights for %d nodes, want %d", len(w), spec.G.NumNodes())
	}
	for id, v := range w {
		if v <= 0 {
			t.Errorf("node %s weight %v", id, v)
		}
		if strings.TrimSpace(id) == "" {
			t.Error("empty node id")
		}
	}
}
