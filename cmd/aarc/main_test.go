package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aarc"
)

func TestMethodRegistryCoversBuiltins(t *testing.T) {
	registered := make(map[string]bool)
	for _, m := range aarc.Methods() {
		registered[m] = true
	}
	for name, want := range map[string]string{
		"aarc":   "AARC",
		"bo":     "BO",
		"maff":   "MAFF",
		"random": "Random",
		"grid":   "UniformGrid",
	} {
		if !registered[name] {
			t.Errorf("method %q missing from registry %v", name, aarc.Methods())
			continue
		}
		s, err := aarc.NewSearcher(name, 1)
		if err != nil {
			t.Fatalf("NewSearcher(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("NewSearcher(%q).Name() = %s, want %s", name, s.Name(), want)
		}
	}
	// Case-insensitive lookup, as the experiments suite resolves "AARC".
	if s, err := aarc.NewSearcher("AARC", 1); err != nil || s.Name() != "AARC" {
		t.Errorf("NewSearcher(AARC) = %v, %v", s, err)
	}
	if _, err := aarc.NewSearcher("nope", 1); err == nil {
		t.Error("unknown method should error")
	}
}

func TestMethodList(t *testing.T) {
	out := methodList()
	for _, name := range []string{"aarc", "bo", "maff", "random", "grid"} {
		if !strings.Contains(out, name) {
			t.Errorf("method list missing %q:\n%s", name, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != len(aarc.Methods()) {
		t.Errorf("method list should have one line per registered method:\n%s", out)
	}
}

func TestLoadSpecBuiltin(t *testing.T) {
	spec, err := loadSpec("", "chatbot")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "chatbot" {
		t.Errorf("spec = %s", spec.Name)
	}
	if _, err := loadSpec("", "nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestLoadSpecJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.json")
	content := `{
	  "name": "tiny",
	  "slo_ms": 60000,
	  "nodes": [
	    {"id": "a", "profile": {"cpu_work_ms": 1000, "parallel_frac": 0, "footprint_mb": 256, "min_mem_mb": 128}},
	    {"id": "b", "profile": {"cpu_work_ms": 2000, "parallel_frac": 0.5, "footprint_mb": 256, "min_mem_mb": 128}}
	  ],
	  "edges": [["a","b"]],
	  "base": {"cpu": 2, "mem_mb": 1024}
	}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := loadSpec(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "tiny" || spec.G.NumNodes() != 2 {
		t.Errorf("loaded spec: %s, %d nodes", spec.Name, spec.G.NumNodes())
	}
	if _, err := loadSpec(filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := loadSpec(bad, ""); err == nil {
		t.Error("malformed JSON should error")
	}
}

func TestScaleWorkloadFacade(t *testing.T) {
	opts := aarc.ScaleOptions{Topology: "layered", Nodes: 500, Seed: 9, HeavyTail: true}
	spec, err := aarc.ScaleWorkload(opts)
	if err != nil {
		t.Fatal(err)
	}
	if spec.G.NumNodes() != 500 {
		t.Errorf("generated %d nodes, want 500", spec.G.NumNodes())
	}
	again, err := aarc.ScaleWorkload(opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != spec.Name || again.G.NumEdges() != spec.G.NumEdges() {
		t.Error("same options generated a different workflow")
	}
	if len(aarc.ScaleTopologies()) != 5 {
		t.Errorf("topology families = %v", aarc.ScaleTopologies())
	}
	if _, err := aarc.ScaleWorkload(aarc.ScaleOptions{Topology: "nope", Nodes: 10, Seed: 1}); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestLoadShippedExampleSpec(t *testing.T) {
	spec, err := loadSpec("../../examples/specs/loganalytics.json", "")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "log-analytics" || spec.G.NumNodes() != 7 {
		t.Errorf("spec = %s with %d nodes", spec.Name, spec.G.NumNodes())
	}
	if spec.GroupOf("index_2") != "index" {
		t.Error("scatter group mapping lost")
	}
}

func TestDOTHasWeightedNodes(t *testing.T) {
	spec, err := loadSpec("", "chatbot")
	if err != nil {
		t.Fatal(err)
	}
	dot := aarc.DOT(spec)
	if !strings.Contains(dot, "digraph") {
		t.Errorf("DOT output missing digraph header:\n%s", dot)
	}
	for _, id := range spec.G.Nodes() {
		if !strings.Contains(dot, id) {
			t.Errorf("DOT output missing node %q", id)
		}
	}
}
