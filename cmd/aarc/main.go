// Command aarc runs a resource-configuration search on one of the built-in
// serverless workflows (or prints its DAG) using AARC or one of the
// baselines, and reports the chosen per-function configuration, search
// statistics and a validation run.
//
// Usage:
//
//	aarc -workload chatbot -method aarc
//	aarc -workload video-analysis -method bo -seed 7
//	aarc -workload ml-pipeline -dot           # emit Graphviz DOT and exit
//	aarc -workload chatbot -trace trace.csv   # dump the sampling trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"aarc/internal/baselines/bo"
	"aarc/internal/baselines/maff"
	"aarc/internal/baselines/naive"
	"aarc/internal/core"
	"aarc/internal/dag"
	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aarc: ")

	var (
		specPath     = flag.String("spec", "", "path to a JSON workflow definition (overrides -workload)")
		workloadName = flag.String("workload", "chatbot", "workload: chatbot | ml-pipeline | video-analysis")
		methodName   = flag.String("method", "aarc", "search method: aarc | bo | maff | random | grid")
		seed         = flag.Uint64("seed", 42, "random seed for the simulator and searcher")
		hostCores    = flag.Float64("cores", 96, "host CPU capacity shared by concurrent containers")
		sloMS        = flag.Float64("slo-ms", 0, "override the workload SLO in milliseconds")
		tracePath    = flag.String("trace", "", "write the sampling trace as CSV to this file")
		dotOut       = flag.Bool("dot", false, "print the workflow DAG in Graphviz DOT format and exit")
		validateRuns = flag.Int("validate", 5, "number of validation executions of the chosen config")
		verbose      = flag.Bool("verbose", false, "print the per-node execution breakdown of a validation run")
	)
	flag.Parse()

	spec, err := loadSpec(*specPath, *workloadName)
	if err != nil {
		log.Fatal(err)
	}
	if *sloMS > 0 {
		spec.SLOMS = *sloMS
	}

	if *dotOut {
		weights := profileWeights(spec)
		fmt.Print(dag.DOT(spec.G, weights, nil))
		return
	}

	runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
		HostCores: *hostCores,
		Noise:     true,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	searcher, err := buildSearcher(*methodName, *seed)
	if err != nil {
		log.Fatal(err)
	}

	outcome, err := searcher.Search(runner, spec.SLOMS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload     : %s (SLO %.0f s, %d functions, %d nodes)\n",
		spec.Name, spec.SLOMS/1000, len(spec.FunctionGroups()), spec.G.NumNodes())
	fmt.Printf("method       : %s\n", searcher.Name())
	fmt.Printf("samples      : %d\n", outcome.Trace.Len())
	fmt.Printf("search time  : %.1f s (simulated)\n", outcome.Trace.TotalRuntimeMS()/1000)
	fmt.Printf("search cost  : %.1fk\n", outcome.Trace.TotalCost()/1000)
	fmt.Println("configuration:")
	for _, g := range outcome.Best.Keys() {
		fmt.Printf("  %-12s %s\n", g, outcome.Best[g])
	}

	if *validateRuns > 0 {
		var e2es, costs []float64
		var last search.Result
		for i := 0; i < *validateRuns; i++ {
			res, err := runner.Evaluate(outcome.Best)
			if err != nil {
				log.Fatal(err)
			}
			e2es = append(e2es, res.E2EMS)
			costs = append(costs, res.Cost)
			last = res
		}
		mean := func(xs []float64) float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s / float64(len(xs))
		}
		me2e, mcost := mean(e2es), mean(costs)
		status := "compliant"
		if me2e > spec.SLOMS {
			status = "VIOLATED"
		}
		fmt.Printf("validation   : avg e2e %.1f s over %d runs (%s), avg cost %.1fk\n",
			me2e/1000, *validateRuns, status, mcost/1000)

		if *verbose {
			printNodeBreakdown(spec, last)
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := outcome.Trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace        : %s (%d samples)\n", *tracePath, outcome.Trace.Len())
	}
}

// loadSpec reads a JSON workflow definition when a path is given, otherwise
// a built-in workload by name.
func loadSpec(specPath, workloadName string) (*workflow.Spec, error) {
	if specPath == "" {
		return workloads.ByName(workloadName)
	}
	f, err := os.Open(specPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workflow.DecodeSpec(f)
}

func buildSearcher(name string, seed uint64) (search.Searcher, error) {
	switch strings.ToLower(name) {
	case "aarc":
		return core.New(core.DefaultOptions()), nil
	case "bo":
		opts := bo.DefaultOptions()
		opts.Seed = seed
		return bo.New(opts), nil
	case "maff":
		return maff.New(maff.DefaultOptions()), nil
	case "random":
		return &naive.Random{Budget: 100, Seed: seed}, nil
	case "grid":
		return &naive.UniformGrid{CPUPoints: 8, MemPoints: 8}, nil
	default:
		return nil, fmt.Errorf("unknown method %q (want aarc, bo, maff, random or grid)", name)
	}
}

// printNodeBreakdown renders one execution's per-node timeline in topo
// order: start/finish on the simulated clock, billed duration, cold-start
// share, configuration and cost.
func printNodeBreakdown(spec *workflow.Spec, res search.Result) {
	topo, err := spec.G.TopoSort()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-node breakdown (last validation run):")
	fmt.Printf("  %-14s %-10s %9s %9s %9s %7s %10s %s\n",
		"node", "group", "start_s", "finish_s", "dur_s", "cold_s", "cost_k", "config")
	for _, id := range topo {
		nr := res.Nodes[id]
		if nr.Skipped {
			fmt.Printf("  %-14s %-10s %9s %9s %9s %7s %10s %s\n",
				id, nr.Group, "-", "-", "-", "-", "-", "skipped")
			continue
		}
		flag := ""
		if nr.OOM {
			flag = "  OOM"
		}
		fmt.Printf("  %-14s %-10s %9.2f %9.2f %9.2f %7.2f %10.1f %s%s\n",
			id, nr.Group, nr.StartMS/1000, nr.FinishMS/1000, nr.RuntimeMS/1000,
			nr.ColdStartMS/1000, nr.Cost/1000, nr.Config, flag)
	}
}

// profileWeights labels DAG nodes with their noise-free base-config runtime.
func profileWeights(spec *workflow.Spec) map[string]float64 {
	w := make(map[string]float64, spec.G.NumNodes())
	for _, id := range spec.G.Nodes() {
		p := spec.Profiles[id]
		cfg := spec.Base[spec.GroupOf(id)]
		t, err := p.MeanRuntime(cfg, 1)
		if err == nil {
			w[id] = t
		}
	}
	return w
}
