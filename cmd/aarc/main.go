// Command aarc runs a resource-configuration search on one of the built-in
// serverless workflows (or prints its DAG) using AARC or one of the
// baselines, and reports the chosen per-function configuration, search
// statistics and a validation run. It is a thin shell over the public aarc
// facade.
//
// Usage:
//
//	aarc -workload chatbot -method aarc
//	aarc -workload video-analysis -method bo -seed 7
//	aarc -list-methods                        # print the method registry
//	aarc -workload chatbot -timeout 30s       # bound the search wall time
//	aarc -workload ml-pipeline -dot           # emit Graphviz DOT and exit
//	aarc -workload chatbot -trace trace.csv   # dump the sampling trace
//	aarc -synth layered -synth-nodes 10000    # generate a synthetic workflow
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"aarc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aarc: ")

	var (
		specPath     = flag.String("spec", "", "path to a JSON workflow definition (overrides -workload)")
		workloadName = flag.String("workload", "chatbot", "workload: chatbot | ml-pipeline | video-analysis")
		synthTopo    = flag.String("synth", "", "generate a synthetic workflow instead: layered | fanout | chain | diamond | random")
		synthNodes   = flag.Int("synth-nodes", 1000, "node count for -synth")
		synthSeed    = flag.Uint64("synth-seed", 1, "generator seed for -synth (same seed, same workflow)")
		synthDegree  = flag.Int("synth-degree", 0, "extra-edge density for -synth (0 = family default)")
		synthHeavy   = flag.Bool("synth-heavy", false, "draw heavy-tailed (Pareto) work multipliers for -synth")
		methodName   = flag.String("method", "aarc", "search method from the registry (see -list-methods)")
		seed         = flag.Uint64("seed", 42, "random seed for the simulator and searcher")
		hostCores    = flag.Float64("cores", 96, "host CPU capacity shared by concurrent containers")
		sloMS        = flag.Float64("slo-ms", 0, "override the workload SLO in milliseconds")
		timeout      = flag.Duration("timeout", 0, "cancel the search after this wall-clock duration (0 = none)")
		maxSamples   = flag.Int("max-samples", 0, "stop the search after this many samples (0 = unlimited)")
		tracePath    = flag.String("trace", "", "write the sampling trace as CSV to this file")
		dotOut       = flag.Bool("dot", false, "print the workflow DAG in Graphviz DOT format and exit")
		listMethods  = flag.Bool("list-methods", false, "print the registered search methods and exit")
		validateRuns = flag.Int("validate", 5, "number of validation executions of the chosen config")
		verbose      = flag.Bool("verbose", false, "print the per-node execution breakdown of a validation run")
	)
	flag.Parse()

	if *listMethods {
		fmt.Print(methodList())
		return
	}

	spec, err := loadSpec(*specPath, *workloadName)
	if *synthTopo != "" {
		spec, err = aarc.ScaleWorkload(aarc.ScaleOptions{
			Topology:  aarc.ScaleTopology(*synthTopo),
			Nodes:     *synthNodes,
			Seed:      *synthSeed,
			Degree:    *synthDegree,
			HeavyTail: *synthHeavy,
		})
	}
	if err != nil {
		log.Fatal(err)
	}
	if *sloMS > 0 {
		spec.SLOMS = *sloMS
	}

	if *dotOut {
		fmt.Print(aarc.DOT(spec))
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	rec, err := aarc.Configure(ctx, spec,
		aarc.WithMethod(*methodName),
		aarc.WithSeed(*seed),
		aarc.WithHostCores(*hostCores),
		aarc.WithBudget(aarc.Budget{MaxSamples: *maxSamples}),
	)
	if err != nil {
		if rec == nil || !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		log.Printf("search stopped early (%v); reporting the partial result", err)
	}

	fmt.Printf("workload     : %s (SLO %.0f s, %d functions, %d nodes)\n",
		spec.Name, spec.SLOMS/1000, len(spec.FunctionGroups()), spec.G.NumNodes())
	fmt.Printf("method       : %s\n", rec.Method)
	fmt.Printf("samples      : %d\n", rec.Trace.Len())
	fmt.Printf("search time  : %.1f s (simulated)\n", rec.Trace.TotalRuntimeMS()/1000)
	fmt.Printf("search cost  : %.1fk\n", rec.Trace.TotalCost()/1000)
	fmt.Println("configuration:")
	for _, g := range rec.Assignment.Keys() {
		fmt.Printf("  %-12s %s\n", g, rec.Assignment[g])
	}

	if *validateRuns > 0 {
		results, err := rec.Validate(*validateRuns)
		if err != nil {
			log.Fatal(err)
		}
		var me2e, mcost float64
		for _, res := range results {
			me2e += res.E2EMS
			mcost += res.Cost
		}
		me2e /= float64(len(results))
		mcost /= float64(len(results))
		status := "compliant"
		if me2e > spec.SLOMS {
			status = "VIOLATED"
		}
		fmt.Printf("validation   : avg e2e %.1f s over %d runs (%s), avg cost %.1fk\n",
			me2e/1000, *validateRuns, status, mcost/1000)

		if *verbose {
			printNodeBreakdown(spec, results[len(results)-1])
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := rec.Trace.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace        : %s (%d samples)\n", *tracePath, rec.Trace.Len())
	}
}

// methodList renders the registry: one "name  vN  DisplayName" line per
// method (the version is the implementation version the serving layer
// folds into recommendation fingerprints).
func methodList() string {
	out := ""
	for _, m := range aarc.Methods() {
		s, err := aarc.NewSearcher(m, 0)
		if err != nil {
			continue
		}
		v, err := aarc.MethodVersion(m)
		if err != nil {
			continue
		}
		out += fmt.Sprintf("%-8s v%-3d %s\n", m, v, s.Name())
	}
	return out
}

// loadSpec reads a JSON workflow definition when a path is given, otherwise
// a built-in workload by name.
func loadSpec(specPath, workloadName string) (*aarc.Spec, error) {
	if specPath == "" {
		return aarc.Workload(workloadName)
	}
	return aarc.LoadSpec(specPath)
}

// printNodeBreakdown renders one execution's per-node timeline in topo
// order: start/finish on the simulated clock, billed duration, cold-start
// share, configuration and cost.
func printNodeBreakdown(spec *aarc.Spec, res aarc.Result) {
	topo, err := spec.G.TopoSort()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-node breakdown (last validation run):")
	fmt.Printf("  %-14s %-10s %9s %9s %9s %7s %10s %s\n",
		"node", "group", "start_s", "finish_s", "dur_s", "cold_s", "cost_k", "config")
	for _, id := range topo {
		nr := res.Nodes[id]
		if nr.Skipped {
			fmt.Printf("  %-14s %-10s %9s %9s %9s %7s %10s %s\n",
				id, nr.Group, "-", "-", "-", "-", "-", "skipped")
			continue
		}
		flag := ""
		if nr.OOM {
			flag = "  OOM"
		}
		fmt.Printf("  %-14s %-10s %9.2f %9.2f %9.2f %7.2f %10.1f %s%s\n",
			id, nr.Group, nr.StartMS/1000, nr.FinishMS/1000, nr.RuntimeMS/1000,
			nr.ColdStartMS/1000, nr.Cost/1000, nr.Config, flag)
	}
}
