// Command aarcd is the long-lived configuration service: an HTTP daemon
// over the serving layer (internal/service) that answers configuration
// searches from a fingerprint-keyed recommendation cache and dispatches
// input-aware requests to pre-searched per-class configurations (§IV-D).
//
// Usage:
//
//	aarcd                              # listen on :8080 with defaults
//	aarcd -addr :9090 -max-samples 200 # cap server-side search work
//	aarcd -cache-dir /var/lib/aarc     # durable cache: warm restarts
//	aarcd -batch-window 25ms           # coalesce cold singleton bursts
//
// With -cache-dir the recommendation store is tiered — a bounded memory
// tier over one-file-per-fingerprint disk storage, written through on
// every search and warmed back into memory on start — so a restarted
// daemon answers its predecessor's fingerprints as byte-identical cache
// hits without re-searching.
//
// POST /v1/configure:batch answers a list of configure requests as one
// admission: store hits immediately, repeats deduplicated within the
// batch, and all remaining misses searched by one -batch-workers-wide
// pooled run with per-item error isolation. -batch-window additionally
// coalesces *singleton* configure misses: cold requests queue for up to
// the window and drain into the same kind of pooled run, so a burst of
// distinct cold fingerprints completes in roughly max(single-search)
// wall time instead of the sum. Cache hits never wait on the window.
//
// -drift-interval turns on the recommendation lifecycle: a background
// monitor re-validates every cached entry on its evaluation pool, flags
// the ones whose rolling p99 crossed -drift-threshold of their SLO
// (with hysteresis), and -refresh-workers re-search them in the
// background — the refreshed entry is swapped atomically while the old
// one keeps serving, and the swap is announced to GET /v1/watch/{fp}
// subscribers as a "refreshed" event. Refreshes always yield admission
// slots to foreground misses.
//
// The daemon degrades rather than fails: the disk tier (when present)
// sits behind a retry wrapper and a circuit breaker, so a failing disk
// opens the breaker after -breaker-threshold consecutive errors and the
// service keeps serving from memory; /readyz answers 503 while degraded
// (and while draining on shutdown) so balancers route elsewhere, then
// recovers via a half-open probe after -breaker-cooldown. Cold searches
// are bounded by -search-timeout and capped by
// -max-concurrent-searches (excess requests are shed with 429 +
// Retry-After). -chaos-disk-down is a built-in drill that fails the
// disk tier for a window at startup to exercise the whole path.
//
// Endpoints (see DESIGN.md §"Storage tiers" and the README for curl
// examples):
//
//	GET    /healthz                 liveness + cache/store stats
//	GET    /readyz                  readiness: 503 while draining or breaker-open
//	GET    /v1/methods              the search method registry (+versions)
//	POST   /v1/configure            {"workload":"chatbot"} or {"spec":{...}} -> recommendation
//	POST   /v1/configure:batch      {"requests":[...]} -> per-item results, misses pooled
//	GET    /v1/recommendation/{fp}  fingerprint-addressed fast path (no spec body)
//	DELETE /v1/recommendation/{fp}  explicit invalidation across all tiers
//	GET    /v1/recommendations      stored-entry listing (watcher bootstrap)
//	GET    /v1/watch/{fp}           SSE lifecycle events: put | refreshed | invalidated
//	POST   /v1/dispatch             {"workload":"video-analysis","scale":1.4} -> class + config
//	POST   /v1/evaluate             {"fingerprint":"sha256:...","runs":10} -> what-if runs
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"aarc"
)

// effectiveDriftThreshold mirrors the service default for the startup
// log line: 0 means "take the default 0.9".
func effectiveDriftThreshold(t float64) float64 {
	if t <= 0 {
		return 0.9
	}
	return t
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("aarcd: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		method      = flag.String("method", "aarc", "default search method (see /v1/methods)")
		seed        = flag.Uint64("seed", 42, "default simulator+searcher seed")
		hostCores   = flag.Float64("cores", 96, "host CPU capacity shared by concurrent containers")
		noNoise     = flag.Bool("no-noise", false, "disable the simulator's measurement noise")
		cacheSize   = flag.Int("cache-size", 128, "max in-memory recommendations/engines (LRU)")
		cacheDir    = flag.String("cache-dir", "", "durable recommendation store directory (empty = memory only)")
		shards      = flag.Int("shards", 0, "runners per entry's evaluation pool (0 = GOMAXPROCS)")
		maxSamples  = flag.Int("max-samples", 0, "server-side per-search sample cap (0 = unlimited)")
		maxSimMS    = flag.Float64("max-sim-cost-ms", 0, "server-side simulated-time cap per search (0 = unlimited)")
		batchWork   = flag.Int("batch-workers", 0, "concurrent searches per batched configure run (0 = GOMAXPROCS)")
		batchWindow = flag.Duration("batch-window", 0, "coalesce singleton configure misses for this long into one pooled run (0 = off)")

		searchTimeout = flag.Duration("search-timeout", 0, "server-side deadline per cold search; timed-out searches fail, never cached (0 = unbounded)")
		maxSearches   = flag.Int("max-concurrent-searches", 0, "cold searches allowed at once; excess singleton misses get 429 + Retry-After (0 = unlimited)")
		breakerK      = flag.Int("breaker-threshold", 5, "consecutive disk failures that open the disk-tier breaker (with -cache-dir)")
		breakerCool   = flag.Duration("breaker-cooldown", 15*time.Second, "how long an open breaker waits before its half-open probe")
		chaosDiskDown = flag.Duration("chaos-disk-down", 0, "chaos drill: fail every disk op for this long after start, then recover (0 = off)")

		driftInterval  = flag.Duration("drift-interval", 0, "re-validate cached entries this often for SLO drift (0 = lifecycle off)")
		driftThreshold = flag.Float64("drift-threshold", 0, "staleness watermark as a fraction of each entry's SLO (0 = default 0.9)")
		refreshWorkers = flag.Int("refresh-workers", 0, "concurrent background refreshes of stale entries (0 = default 1)")

		readTimeout  = flag.Duration("read-timeout", time.Minute, "http.Server ReadTimeout: full request (headers+body) read deadline")
		writeTimeout = flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout: response write deadline; bounds a request's total service time")
		idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout: keep-alive connection idle deadline")
	)
	flag.Parse()

	svc, err := aarc.NewService(
		aarc.WithMethod(*method),
		aarc.WithSeed(*seed),
		aarc.WithHostCores(*hostCores),
		aarc.WithNoise(!*noNoise),
		aarc.WithCacheSize(*cacheSize),
		aarc.WithCacheDir(*cacheDir),
		aarc.WithShards(*shards),
		aarc.WithBatchWorkers(*batchWork),
		aarc.WithBatchWindow(*batchWindow),
		aarc.WithSearchTimeout(*searchTimeout),
		aarc.WithMaxConcurrentSearches(*maxSearches),
		aarc.WithBreaker(*breakerK, *breakerCool),
		aarc.WithChaosDiskOutage(*chaosDiskDown),
		aarc.WithDrift(*driftInterval, *driftThreshold),
		aarc.WithRefreshWorkers(*refreshWorkers),
		aarc.WithBudget(aarc.Budget{
			MaxSamples: *maxSamples,
			// Scale before converting: time.Duration(*maxSimMS) would
			// truncate fractional milliseconds to zero ( = unlimited).
			MaxSimCost: time.Duration(*maxSimMS * float64(time.Millisecond)),
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Durable tiers are written through at Put time; Close only releases
	// the store (there is no persistence step to lose on SIGKILL).
	defer svc.Close()

	// A search can legitimately take a while, so WriteTimeout (which
	// bounds the whole response, search included) defaults generously;
	// tighten it together with -search-timeout. Zero on any of these
	// flags disables that deadline, matching net/http.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           aarc.NewServiceHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	shardsDesc := "GOMAXPROCS"
	if *shards > 0 {
		shardsDesc = strconv.Itoa(*shards)
	}
	stats := svc.Stats()
	if *cacheDir != "" {
		log.Printf("durable store %s: warmed %d entries from %s", stats.Store, stats.Tiers["memory"], *cacheDir)
	}
	if *batchWindow > 0 {
		log.Printf("batch window %s: coalescing cold configure bursts", *batchWindow)
	}
	if *driftInterval > 0 {
		log.Printf("lifecycle on: drift sweep every %s, refresh on p99 >= %g of SLO", *driftInterval, effectiveDriftThreshold(*driftThreshold))
	}
	log.Printf("serving on %s (method=%s store=%s cache=%d shards=%s)", *addr, *method, stats.Store, *cacheSize, shardsDesc)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Print("shutting down")
		// Flip /readyz to 503 first so balancers stop routing here, then
		// let Shutdown finish the in-flight requests.
		svc.BeginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Fatal(err)
		}
	}
}
