package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aarc"
)

// TestDaemonSurface drives the exact service the daemon serves — built
// through the public facade with a server-side budget, as main() does —
// end to end over HTTP.
func TestDaemonSurface(t *testing.T) {
	svc, err := aarc.NewService(
		aarc.WithMethod("aarc"),
		aarc.WithSeed(42),
		aarc.WithHostCores(96),
		aarc.WithCacheSize(16),
		aarc.WithBudget(aarc.Budget{MaxSamples: 30}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(aarc.NewServiceHandler(svc))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz status = %q", health.Status)
	}

	body := `{"workload": "chatbot"}`
	var first []byte
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/configure", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("configure %d: status %d: %s", i, resp.StatusCode, b)
		}
		wantHeader := []string{"miss", "hit"}[i]
		if got := resp.Header.Get("X-Aarc-Cache"); got != wantHeader {
			t.Errorf("configure %d: cache header %q, want %q", i, got, wantHeader)
		}
		var rec struct {
			Method     string                     `json:"method"`
			Samples    int                        `json:"samples"`
			Assignment map[string]json.RawMessage `json:"assignment"`
		}
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatalf("configure %d: invalid JSON: %v\n%s", i, err, b)
		}
		if rec.Method != "AARC" || rec.Samples == 0 || rec.Samples > 30 || len(rec.Assignment) == 0 {
			t.Errorf("configure %d: unexpected recommendation %+v", i, rec)
		}
		if i == 0 {
			first = b
		} else if string(first) != string(b) {
			t.Error("cache hit body differs from miss body")
		}
	}
}

// TestWarmRestartOverCacheDir drives the daemon's durable-store shape
// through the public facade: a second service over the same -cache-dir
// directory (a "restarted daemon") must answer the first one's request
// as a byte-identical cache hit and serve the fingerprint GET fast path.
func TestWarmRestartOverCacheDir(t *testing.T) {
	dir := t.TempDir()
	newSvc := func() *aarc.Service {
		svc, err := aarc.NewService(
			aarc.WithCacheDir(dir),
			aarc.WithCacheSize(16),
			aarc.WithBudget(aarc.Budget{MaxSamples: 20}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	post := func(ts *httptest.Server) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+"/v1/configure", "application/json",
			strings.NewReader(`{"workload": "chatbot"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	svc1 := newSvc()
	ts1 := httptest.NewServer(aarc.NewServiceHandler(svc1))
	resp1, body1 := post(ts1)
	if got := resp1.Header.Get("X-Aarc-Cache"); got != "miss" {
		t.Fatalf("first-process configure header = %q, want miss", got)
	}
	var rec struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body1, &rec); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: fresh service, same directory.
	svc2 := newSvc()
	defer svc2.Close()
	ts2 := httptest.NewServer(aarc.NewServiceHandler(svc2))
	defer ts2.Close()
	resp2, body2 := post(ts2)
	if got := resp2.Header.Get("X-Aarc-Cache"); got != "hit" {
		t.Errorf("restarted configure header = %q, want hit", got)
	}
	if string(body1) != string(body2) {
		t.Error("restarted configure body differs from the original")
	}

	resp3, err := http.Get(ts2.URL + "/v1/recommendation/" + rec.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint GET after restart: status %d", resp3.StatusCode)
	}
	if string(body3) != string(body1) {
		t.Error("fingerprint GET body differs from the original search body")
	}
}
