package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aarc"
)

// TestDaemonSurface drives the exact service the daemon serves — built
// through the public facade with a server-side budget, as main() does —
// end to end over HTTP.
func TestDaemonSurface(t *testing.T) {
	svc := aarc.NewService(
		aarc.WithMethod("aarc"),
		aarc.WithSeed(42),
		aarc.WithHostCores(96),
		aarc.WithCacheSize(16),
		aarc.WithBudget(aarc.Budget{MaxSamples: 30}),
	)
	ts := httptest.NewServer(aarc.NewServiceHandler(svc))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz status = %q", health.Status)
	}

	body := `{"workload": "chatbot"}`
	var first []byte
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/configure", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("configure %d: status %d: %s", i, resp.StatusCode, b)
		}
		wantHeader := []string{"miss", "hit"}[i]
		if got := resp.Header.Get("X-Aarc-Cache"); got != wantHeader {
			t.Errorf("configure %d: cache header %q, want %q", i, got, wantHeader)
		}
		var rec struct {
			Method     string                     `json:"method"`
			Samples    int                        `json:"samples"`
			Assignment map[string]json.RawMessage `json:"assignment"`
		}
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatalf("configure %d: invalid JSON: %v\n%s", i, err, b)
		}
		if rec.Method != "AARC" || rec.Samples == 0 || rec.Samples > 30 || len(rec.Assignment) == 0 {
			t.Errorf("configure %d: unexpected recommendation %+v", i, rec)
		}
		if i == 0 {
			first = b
		} else if string(first) != string(b) {
			t.Error("cache hit body differs from miss body")
		}
	}
}
