package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

// TestRunKnownExperiments exercises the dispatch for every experiment name.
// Output goes to stdout (the experiments are deterministic and fast on the
// simulator); what we assert here is that each name resolves and completes.
func TestRunKnownExperiments(t *testing.T) {
	for _, name := range []string{"fig2", "fig3", "fig5", "fig6", "fig7", "table2", "fig8", "ablation", "motivation"} {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := run(name, 7, ""); err != nil {
				t.Fatalf("run(%q): %v", name, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 7, ""); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig5", 7, dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fig5.csv")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("expected CSV at %s: %v", path, err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 9 cells (3 workloads x 3 methods).
	if len(rows) != 10 {
		t.Errorf("fig5.csv rows = %d, want 10", len(rows))
	}
	if rows[0][0] != "workload" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestRunFig2CSVPerWorkload(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig2", 7, dir); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"chatbot", "ml-pipeline", "video-analysis"} {
		if _, err := os.Stat(filepath.Join(dir, "fig2_"+w+".csv")); err != nil {
			t.Errorf("missing fig2 CSV for %s: %v", w, err)
		}
	}
}
