// Command aarcbench regenerates every table and figure of the paper's
// evaluation from the simulated testbed:
//
//	aarcbench fig2       # §II-A decoupled runtime/cost heatmaps
//	aarcbench fig3       # §II-B BO instability probe on Chatbot
//	aarcbench fig5       # total sampling runtime and cost per method
//	aarcbench fig6       # runtime trajectories per sample count
//	aarcbench fig7       # cost trajectories per sample count
//	aarcbench table2     # avg runtime ± std and cost of the final configs
//	aarcbench fig8       # §IV-D input-aware configuration on Video Analysis
//	aarcbench ablation   # AARC design-choice ablations (extension)
//	aarcbench motivation # §I industry-scheme cost comparison (extension)
//	aarcbench scale      # search effort vs workflow size (extension)
//	aarcbench all        # everything above, in paper order
//
// Use -seed to change the deterministic seed shared by the simulator and
// the searchers, and -csv DIR to additionally write each experiment's data
// as DIR/<name>.csv for external plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"aarc/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aarcbench: ")

	seed := flag.Uint64("seed", 42, "deterministic seed for simulator and searchers")
	csvDir := flag.String("csv", "", "also write each experiment's data as CSV into this directory")
	parallel := flag.Int("parallel", 0, "worker count for independent experiment cells (0 = all cores, 1 = sequential; output is identical either way)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: aarcbench [-seed N] [-csv DIR] [-parallel N] <fig2|fig3|fig5|fig6|fig7|fig8|table2|ablation|motivation|scale|all>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	if err := runParallel(flag.Arg(0), *seed, *csvDir, experiments.NewPool(*parallel)); err != nil {
		log.Fatal(err)
	}
}

// renderable is what every experiment result offers: a human-readable
// rendering and a CSV form.
type renderable interface {
	Render(io.Writer)
	WriteCSV(io.Writer) error
}

func run(name string, seed uint64, csvDir string) error {
	return runParallel(name, seed, csvDir, nil)
}

// runParallel dispatches one experiment (or "all") with the given worker
// pool; a nil pool runs sequentially. Cell-level parallelism lives inside
// the experiments package, so the rendered output and CSVs are identical for
// every worker count.
func runParallel(name string, seed uint64, csvDir string, pool *experiments.Pool) error {
	suite := experiments.NewSuite(seed)
	suite.Pool = pool
	return runWith(name, seed, csvDir, suite)
}

func runWith(name string, seed uint64, csvDir string, suite *experiments.Suite) error {
	emit := func(name string, r renderable) error {
		r.Render(os.Stdout)
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	}

	switch name {
	case "fig2":
		results, err := experiments.RunFig2AllPool(suite.Pool)
		if err != nil {
			return err
		}
		for i, r := range results {
			if err := emit(fmt.Sprintf("fig2_%s", experiments.Workloads()[i]), r); err != nil {
				return err
			}
		}
	case "fig3":
		r, err := experiments.RunFig3(seed)
		if err != nil {
			return err
		}
		return emit("fig3", r)
	case "fig5":
		r, err := experiments.RunFig5(suite)
		if err != nil {
			return err
		}
		return emit("fig5", r)
	case "fig6":
		r, err := experiments.RunFig6(suite)
		if err != nil {
			return err
		}
		return emit("fig6", r)
	case "fig7":
		r, err := experiments.RunFig7(suite)
		if err != nil {
			return err
		}
		return emit("fig7", r)
	case "table2":
		r, err := experiments.RunTable2(suite)
		if err != nil {
			return err
		}
		return emit("table2", r)
	case "fig8":
		r, err := experiments.RunFig8(seed)
		if err != nil {
			return err
		}
		return emit("fig8", r)
	case "ablation":
		r, err := experiments.RunAblationPool(seed, suite.Pool)
		if err != nil {
			return err
		}
		return emit("ablation", r)
	case "motivation":
		r, err := experiments.RunMotivation()
		if err != nil {
			return err
		}
		return emit("motivation", r)
	case "scale":
		r, err := experiments.RunScale(seed)
		if err != nil {
			return err
		}
		return emit("scale", r)
	case "all":
		for _, n := range []string{"motivation", "fig2", "fig3", "fig5", "fig6", "fig7", "table2", "fig8", "ablation", "scale"} {
			// Share one suite so fig5/6/7/table2 reuse the same searches,
			// exactly like the paper derives them from the same runs.
			if err := runWith(n, seed, csvDir, suite); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
