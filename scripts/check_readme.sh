#!/usr/bin/env bash
# Doc gate: every ```go fenced block in README.md must be a complete
# program that builds against this module. Extracts each block into a
# throwaway package directory inside the repo (so `aarc` imports resolve)
# and compiles it.
set -euo pipefail
cd "$(dirname "$0")/.."

root=$(mktemp -d .readme-check.XXXXXX)
trap 'rm -rf "$root"' EXIT

awk -v root="$root" '
  /^```go$/ { n++; d = sprintf("%s/block%02d", root, n); system("mkdir -p " d); f = d "/main.go"; next }
  /^```/    { f = ""; next }
  f         { print > f }
' README.md

if [ ! -d "$root/block01" ]; then
  echo "check_readme: no \`\`\`go blocks found in README.md" >&2
  exit 1
fi

status=0
for d in "$root"/block*/; do
  if ! go build -o /dev/null "./$d"; then
    echo "check_readme: README.md block in $d does not build" >&2
    status=1
  fi
done
exit $status
