#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate.
#
# Builds aarcvet (the project's go/analysis suite: detcanon, ctxflow,
# lockscope, tierorder, regversion, shadow, plus the flow-sensitive
# lockorder, nilness, goleak and hotalloc) and runs it over the whole
# tree through the `go vet -vettool` protocol, alongside stock go vet
# and a gofmt check. Any finding fails; there is no baseline file —
# designed exceptions are waived in-source with //aarc: markers, so the
# tree is always clean or red, never "known dirty".
#
# The binary lands in bin/aarcvet (gitignored) so CI can cache it
# between the lint and test jobs; `go build` is itself incremental, so
# a warm cache makes the build step free locally too.
#
# Usage: scripts/lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet (stock) =="
if ! go vet ./...; then
  fail=1
fi

echo "== aarcvet =="
vettool="$PWD/bin/aarcvet"
go build -o "$vettool" ./cmd/aarcvet
if ! go vet -vettool="$vettool" ./...; then
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: findings above must be fixed (or waived in-source with a reasoned //aarc: marker)" >&2
  exit 1
fi
echo "lint: clean"
