// Package aarc is a from-scratch Go reproduction of "AARC: Automated
// Affinity-aware Resource Configuration for Serverless Workflows" (DAC
// 2025): decoupled CPU/memory configuration search for serverless workflow
// DAGs under end-to-end latency SLOs, with the paper's baselines (Bayesian
// optimization and MAFF gradient descent), a simulated serverless platform
// substrate, the three evaluation workloads, and a harness regenerating
// every table and figure of the paper's evaluation.
//
// The root package is the public facade; the implementation lives under
// internal/. The minimal flow is one call:
//
//	spec, _ := aarc.Workload("chatbot")          // or aarc.LoadSpec("wf.json")
//	rec, err := aarc.Configure(ctx, spec)        // runs the AARC search
//	fmt.Println(rec.Assignment, rec.Final.E2EMS) // config + validated run
//
// Configure is tuned with functional options: WithMethod selects any
// registered search method (aarc, bo, maff, random, grid — see Methods),
// WithSLO overrides the spec's latency target, WithBudget bounds the search
// by sample count or simulated time, WithProgress streams every sample as
// it is recorded, and WithSeed/WithHostCores/WithNoise control the
// simulated testbed. Cancelling the context stops the search at the next
// recorded sample and returns the partial recommendation with ctx.Err();
// an exhausted budget is a normal stop.
//
// ConfigureBatch answers many specs at once: one search per spec on a
// bounded worker pool (WithBatchWorkers), per-slot error isolation, and
// results identical to sequential Configure calls — batching changes
// wall time, never outcomes.
//
// Custom workflows are built in code from NewGraph, Profile and Spec (see
// examples/customworkflow) or shipped as JSON (DecodeSpec/EncodeSpec).
// Input-sensitive serving uses ConfigureClasses, which searches one
// configuration per input-size class and dispatches requests to them
// (examples/inputaware). Runner, obtained from NewRunner or
// Recommendation.Validate, evaluates assignments directly for serving and
// what-if flows.
//
// For long-lived serving, NewService builds the caching layer behind the
// aarcd daemon: Configure and Dispatch requests are answered from a
// pluggable recommendation Store keyed by content-addressed fingerprints
// (SpecFingerprint plus search options and the method's implementation
// version, so stale entries self-invalidate on a version bump),
// concurrent requests for the same workload share one search, and
// Validate/Evaluate run on a sharded runner pool. The storage layer is
// swappable: the default is a bounded in-memory LRU (NewMemoryStore),
// WithCacheDir tiers it over durable disk storage (warm restarts with
// byte-identical hits), and WithStore accepts any Store implementation.
// Bursts of distinct workloads batch: Service.ConfigureBatch answers a
// list of requests as one admission (store hits immediately, in-batch
// repeats deduplicated, remaining misses searched by one pooled run with
// per-item error isolation), and WithBatchWindow opts singleton cache
// misses into the same pooled runs. NewServiceHandler mounts the same
// HTTP API cmd/aarcd serves (/v1/configure, /v1/configure:batch,
// /v1/recommendation/{fingerprint} — the fingerprint-addressed fast
// path, GET to skip spec canonicalization entirely and DELETE to
// invalidate — /v1/dispatch, /v1/evaluate, /v1/methods, /healthz,
// /readyz).
//
// The serving layer degrades rather than fails: a WithCacheDir disk
// tier sits behind bounded retries and a circuit breaker (WithBreaker),
// so a dead disk is skipped after a few consecutive failures and the
// service serves memory-only until a half-open probe heals the tier;
// /readyz reports 503 while degraded or draining. WithSearchTimeout
// bounds each cold search server-side (timed-out searches fail and are
// never cached), WithMaxConcurrentSearches sheds excess cold traffic
// with HTTP 429 + Retry-After, handler panics are recovered into JSON
// 500s, and WithChaosDiskOutage is a built-in chaos drill that fails
// the disk tier for a window at startup. See DESIGN.md section 10.
//
// Cached recommendations have a lifecycle. WithDrift starts a
// background monitor that re-validates every stored entry on its
// runner pool and flags the ones whose rolling validation p99 crept
// past a fraction of their SLO (with hysteresis, so borderline entries
// do not flap); flagged entries are re-searched by WithRefreshWorkers
// background workers — always yielding admission slots to foreground
// misses — and the refreshed recommendation is swapped into the store
// atomically while the old one keeps serving. Every mutation is
// published as a ServiceEvent ("put", "refreshed", "invalidated"):
// subscribe in-process with Service.Watch, over HTTP as Server-Sent
// Events via GET /v1/watch/{fingerprint} (with Last-Event-ID resume),
// and bootstrap from the GET /v1/recommendations listing. See DESIGN.md
// section 11.
//
// The invariants all of the above rests on — fingerprints that are pure
// functions of content, contexts threaded through the request path, no
// store I/O or searches under a mutex, the canonical store-wrapper
// order, method versions that move with their code — are machine-checked
// by cmd/aarcvet, a project-specific go/analysis suite run through
// `go vet -vettool` (scripts/lint.sh, and CI, fail on any finding);
// deliberate exceptions are waived in-source by reasoned //aarc:
// markers. A stdlib-only CFG/dataflow layer (internal/analysis/flow)
// extends the suite with flow-sensitive checks: lock-order cycles
// across packages, guaranteed-nil dereferences, goroutines with no
// reachable stop signal, and allocations on //aarc:hotpath-marked fast
// paths (the fingerprint GET is pinned alloc-free both statically and
// by AllocsPerRun tests). See DESIGN.md sections 13–14.
//
// Start with the examples, which use only this public API:
//
//	go run ./examples/quickstart
//	go run ./examples/searchcomparison
//	go run ./examples/inputaware
//	go run ./examples/customworkflow
//
// the experiment harness:
//
//	go run ./cmd/aarcbench all
//
// and the serving daemon:
//
//	go run ./cmd/aarcd -addr :8080
//
// Under internal/, internal/core is the paper's contribution (Graph-Centric
// Scheduler + Priority Configurator) and internal/search defines the
// context-aware Searcher contract and method registry every searcher
// implements. See DESIGN.md for the full system inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package aarc
