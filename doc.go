// Package aarc is a from-scratch Go reproduction of "AARC: Automated
// Affinity-aware Resource Configuration for Serverless Workflows" (DAC
// 2025): decoupled CPU/memory configuration search for serverless workflow
// DAGs under end-to-end latency SLOs, with the paper's baselines (Bayesian
// optimization and MAFF gradient descent), a simulated serverless platform
// substrate, the three evaluation workloads, and a harness regenerating
// every table and figure of the paper's evaluation.
//
// Start with the examples:
//
//	go run ./examples/quickstart
//	go run ./examples/searchcomparison
//	go run ./examples/inputaware
//	go run ./examples/customworkflow
//
// and the experiment harness:
//
//	go run ./cmd/aarcbench all
//
// The implementation lives in internal/: internal/core is the paper's
// contribution (Graph-Centric Scheduler + Priority Configurator); the other
// packages are the substrates it runs on. See DESIGN.md for the full system
// inventory and EXPERIMENTS.md for paper-versus-measured results.
package aarc
