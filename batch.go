package aarc

import (
	"context"
	"errors"

	"aarc/internal/experiments"
)

// ConfigureBatch searches a configuration for every spec concurrently on
// a bounded worker pool (WithBatchWorkers, default GOMAXPROCS) and
// returns one recommendation per spec, index-aligned. Each spec's search
// is seeded exactly like a singleton Configure with the same options —
// per-cell determinism is a property of the search, not of pool
// scheduling — so a batched run returns the same recommendations as
// sequential Configure calls, in max(single-search) wall time on enough
// cores rather than the sum.
//
// Failures are isolated per spec: a failed slot is nil (or, as with
// Configure, a partial recommendation for context cancellation and other
// mid-search stops) and the joined error wraps every per-spec failure;
// errors.Is sees through it. A nil error means every spec succeeded.
//
// For the serving-layer equivalent — store hits, batch-internal dedupe
// and singleflight against concurrent requests — use
// Service.ConfigureBatch (POST /v1/configure:batch on aarcd).
func ConfigureBatch(ctx context.Context, specs []*Spec, opts ...Option) ([]*Recommendation, error) {
	s := newSettings(opts)
	recs := make([]*Recommendation, len(specs))
	errs := make([]error, len(specs))
	// The pool callback never returns an error: an error would stop the
	// pool from claiming later specs, and batch failures are per-slot.
	_ = experiments.NewPool(s.batchWorkers).Do(len(specs), func(i int) error {
		recs[i], errs[i] = Configure(ctx, specs[i], opts...)
		return nil
	})
	return recs, errors.Join(errs...)
}
