package aarc

import (
	"net/http"

	"aarc/internal/service"
	"aarc/internal/workflow"
)

// The serving layer re-exported through the facade: a long-lived Service
// that answers Configure/Dispatch requests from a fingerprint-keyed
// recommendation cache (one search per unique workload, singleflight under
// concurrency) and evaluates configured workflows on a sharded runner
// pool. cmd/aarcd is this service behind HTTP; NewServiceHandler mounts
// the same API inside another server.
type (
	// Service is the long-lived serving layer: cache + singleflight +
	// sharded runner pools. Safe for concurrent use.
	Service = service.Service
	// ServiceRecommendation is the serializable, cacheable outcome of one
	// configuration search as the service returns it.
	ServiceRecommendation = service.Recommendation
	// ServiceRequest carries the per-request overrides of the service's
	// Configure and Dispatch.
	ServiceRequest = service.RequestOptions
	// ServiceStats is a snapshot of the service's cache counters.
	ServiceStats = service.Stats
	// DispatchResult is the outcome of one input-aware dispatch: the input
	// class and its pre-searched configuration.
	DispatchResult = service.DispatchResult
)

// NewService builds the serving layer with the same functional options as
// Configure (WithMethod, WithSeed, WithHostCores, WithNoise, WithSLO,
// WithInputScale) plus the service-specific WithCacheSize and WithShards.
// A WithBudget budget becomes the server-side cap: requests may tighten
// it, never exceed it.
func NewService(opts ...Option) *Service {
	s := newSettings(opts)
	return service.New(service.Config{
		Method:       s.method,
		Seed:         s.seed,
		HostCores:    s.hostCores,
		Noise:        s.noise,
		InputScale:   s.inputScale,
		SLOMS:        s.sloMS,
		MaxSamples:   s.maxSamples,
		MaxSimCostMS: s.maxSimMS,
		CacheSize:    s.cacheSize,
		Shards:       s.shards,
	})
}

// NewServiceHandler mounts the service's HTTP API (the one cmd/aarcd
// serves: /healthz, /v1/methods, /v1/configure, /v1/dispatch,
// /v1/evaluate) for embedding in another http.Server.
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }

// SpecFingerprint returns the content-addressed identity of a workflow
// definition: "sha256:<hex>" over its canonical JSON. The serving layer
// keys its cache on this fingerprint combined with the search options.
func SpecFingerprint(spec *Spec) (string, error) { return workflow.Fingerprint(spec) }
