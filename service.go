package aarc

import (
	"net/http"

	"aarc/internal/service"
	"aarc/internal/store"
	"aarc/internal/workflow"
)

// The serving layer re-exported through the facade: a long-lived Service
// that answers Configure/Dispatch requests from a fingerprint-keyed
// recommendation store (one search per unique workload, singleflight under
// concurrency) and evaluates configured workflows on a sharded runner
// pool. cmd/aarcd is this service behind HTTP; NewServiceHandler mounts
// the same API inside another server.
type (
	// Service is the long-lived serving layer: store + singleflight +
	// sharded runner pools. Safe for concurrent use.
	Service = service.Service
	// ServiceRecommendation is the serializable, storable outcome of one
	// configuration search as the service returns it.
	ServiceRecommendation = service.Recommendation
	// ServiceRequest carries the per-request overrides of the service's
	// Configure and Dispatch.
	ServiceRequest = service.RequestOptions
	// ServiceStats is a snapshot of the service's cache counters,
	// including per-tier store sizes.
	ServiceStats = service.Stats
	// DispatchResult is the outcome of one input-aware dispatch: the input
	// class and its pre-searched configuration.
	DispatchResult = service.DispatchResult
	// ServiceBatchItem is one configure request inside a
	// Service.ConfigureBatch call: a spec plus its per-request options.
	ServiceBatchItem = service.BatchItem
	// ServiceBatchResult is the per-item outcome of Service.ConfigureBatch,
	// index-aligned with the submitted items; failures are isolated per
	// item in its Err field.
	ServiceBatchResult = service.BatchResult
	// ServiceEvent is one recommendation lifecycle notification as
	// delivered by Service.Watch and GET /v1/watch/{fp}: kind "put"
	// (stored for the first time or re-stored), "refreshed" (swapped by a
	// background drift refresh), or "invalidated" (deleted).
	ServiceEvent = service.Event
	// ServiceRecommendationInfo is one stored entry's line in the
	// Service.Recommendations listing (GET /v1/recommendations).
	ServiceRecommendationInfo = service.RecommendationInfo

	// Store is the pluggable recommendation storage contract behind the
	// serving layer: Get/Put/Delete/Keys/Len/Close over fingerprint-keyed,
	// already-serialized entries. Bring any implementation via WithStore;
	// NewMemoryStore, OpenDiskStore and NewTieredStore are the shipped
	// ones.
	Store = store.Store
	// StoreEntry is one stored recommendation: the exact served bytes
	// plus opaque metadata the service uses to rebuild evaluation
	// runners after a restart.
	StoreEntry = store.Entry
)

// NewMemoryStore returns the bounded in-memory LRU store (the serving
// default): fast, process-private, at most capacity entries.
func NewMemoryStore(capacity int) Store { return store.NewMemory(capacity) }

// OpenDiskStore opens (creating if needed) the durable one-file-per-
// fingerprint store rooted at dir. Entries survive restarts; corrupt
// files degrade to cache misses, never errors.
func OpenDiskStore(dir string) (Store, error) { return store.OpenDisk(dir) }

// NewTieredStore layers fast over slow with write-through puts and
// promote-on-hit gets — WithCacheDir is shorthand for a bounded memory
// tier over a disk tier.
func NewTieredStore(fast, slow Store) Store { return store.NewTiered(fast, slow) }

// NewService builds the serving layer with the same functional options as
// Configure (WithMethod, WithSeed, WithHostCores, WithNoise, WithSLO,
// WithInputScale) plus the service-specific WithCacheSize, WithShards,
// WithCacheDir, WithStore, WithBatchWorkers, WithBatchWindow (opt-in
// coalescing of singleton cache misses into pooled batch runs) and the
// resilience knobs WithSearchTimeout, WithMaxConcurrentSearches,
// WithBreaker and WithChaosDiskOutage, and the lifecycle knobs
// WithDrift and WithRefreshWorkers (background staleness detection and
// atomic refresh, observable via Service.Watch and GET /v1/watch/{fp}).
// A WithBudget budget becomes the server-side cap: requests may tighten
// it, never exceed it. The error is the backing store's (opening a cache
// directory can fail; a memory-only service cannot). Close the service
// to release the store.
func NewService(opts ...Option) (*Service, error) {
	s := newSettings(opts)
	return service.New(service.Config{
		Method:       s.method,
		Seed:         s.seed,
		HostCores:    s.hostCores,
		Noise:        s.noise,
		InputScale:   s.inputScale,
		SLOMS:        s.sloMS,
		MaxSamples:   s.maxSamples,
		MaxSimCostMS: s.maxSimMS,
		CacheSize:    s.cacheSize,
		Shards:       s.shards,
		BatchWorkers: s.batchWorkers,
		BatchWindow:  s.batchWindow,
		CacheDir:     s.cacheDir,
		Store:        s.store,

		SearchTimeout:         s.searchTimeout,
		MaxConcurrentSearches: s.maxConcSearches,
		BreakerThreshold:      s.breakerThreshold,
		BreakerCooldown:       s.breakerCooldown,
		ChaosDiskDown:         s.chaosDiskDown,

		DriftInterval:  s.driftInterval,
		DriftThreshold: s.driftThreshold,
		RefreshWorkers: s.refreshWorkers,
	})
}

// NewServiceHandler mounts the service's HTTP API (the one cmd/aarcd
// serves: /healthz, /readyz, /v1/methods, /v1/configure,
// /v1/recommendation/{fp}, /v1/recommendations, /v1/watch/{fp},
// /v1/dispatch, /v1/evaluate) for embedding in another http.Server,
// panic-recovery middleware included.
func NewServiceHandler(s *Service) http.Handler { return service.NewHandler(s) }

// SpecFingerprint returns the content-addressed identity of a workflow
// definition: "sha256:<hex>" over its canonical JSON. The serving layer
// keys its store on this fingerprint combined with the search options and
// the method's registered implementation version.
func SpecFingerprint(spec *Spec) (string, error) { return workflow.Fingerprint(spec) }
