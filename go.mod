module aarc

go 1.24.0
