// Runtime twin of the hotalloc static check for the serving fast path:
// GET /v1/recommendation/{fp} resolves to RecommendationJSON, whose
// //aarc:hotpath marker promises an alloc-free hit. hotalloc proves it
// statically down to the Store interface hop; this pins the whole
// chain — RecommendationJSON → getStore → Notify.Get → Tiered.Get →
// Memory.Get — at zero allocations per hit at runtime.
package service

import (
	"context"
	"encoding/json"
	"testing"
)

func TestRecommendationJSONHitAllocFree(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)

	body, _, err := svc.ConfigureJSON(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rec Recommendation
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	fp := rec.Fingerprint

	if got, err := svc.RecommendationJSON(fp); err != nil || string(got) != string(body) {
		t.Fatalf("warm-up RecommendationJSON = %q, %v", got, err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := svc.RecommendationJSON(fp); err != nil {
			t.Fatalf("RecommendationJSON: %v", err)
		}
	})
	if avg != 0 {
		t.Errorf("fingerprint GET hit path allocates %.1f times per call, want 0", avg)
	}
}
