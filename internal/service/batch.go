// Batched admission: bursts of *distinct* fingerprints used to pay one
// full search each, serially from the caller's point of view. The batch
// path fingerprints every item up front, answers store hits immediately,
// dedupes repeats within the batch, and drives all remaining misses
// through one experiments.Pool run — the PR 1 worker-pool harness, whose
// per-cell determinism guarantees batched results are byte-identical to
// sequential singleton requests. Each miss is registered with the flight
// group per item, so concurrent singleton requests for a fingerprint the
// batch is searching attach to the batch's in-flight item (and vice
// versa: a batch item whose fingerprint is already in flight elsewhere
// waits instead of searching again). Errors are isolated per item: one
// bad spec fails only its slot.
//
// The same pooled run backs the opt-in miss coalescer (Config.BatchWindow,
// aarcd -batch-window): singleton misses queue for up to one window and
// drain together, so a cold burst of singleton requests amortizes like an
// explicit batch.

package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"aarc/internal/workflow"
)

// BatchItem is one configure request within a batch: a spec plus its
// per-request options, exactly the singleton Configure arguments.
type BatchItem struct {
	Spec    *workflow.Spec
	Options RequestOptions
}

// BatchResult is the per-item outcome of ConfigureBatch, index-aligned
// with the input items. Exactly one of Body and Err is meaningful: Body
// holds the stored deterministic JSON encoding (byte-identical to what a
// singleton Configure for the same item serves) when Err is nil.
// Duplicate items within one batch inherit the outcome of their first
// occurrence.
type BatchResult struct {
	Fingerprint string
	Body        []byte
	CacheHit    bool // answered from the store without searching or waiting
	Err         error
}

// Recommendation decodes the result body. It returns an error when the
// item itself failed.
func (r *BatchResult) Recommendation() (*Recommendation, error) {
	if r.Err != nil {
		return nil, r.Err
	}
	rec := new(Recommendation)
	if err := json.Unmarshal(r.Body, rec); err != nil {
		return nil, fmt.Errorf("service: decoding batch recommendation: %w", err)
	}
	return rec, nil
}

// MaxBatchItems bounds one ConfigureBatch call (and one
// POST /v1/configure:batch request): a batch is synchronous search work,
// so an unbounded client-controlled count would let a single request pin
// the daemon.
const MaxBatchItems = 256

// ErrBatchTooLarge is returned when a batch exceeds MaxBatchItems.
var ErrBatchTooLarge = fmt.Errorf("service: batch exceeds the per-request bound %d", MaxBatchItems)

// errNilSpec is the per-item error for a nil batch spec.
var errNilSpec = errors.New("service: batch item with nil spec")

// pendingSearch is one claimed miss awaiting a pooled batch run: the
// flight call it leads, and everything searchMiss needs to run it.
type pendingSearch struct {
	fp   string
	c    *flightCall
	spec *workflow.Spec
	r    resolved
}

// ConfigureBatch answers a batch of configure requests as one admission:
// per-item fingerprinting, immediate store hits, batch-internal dedupe,
// and a single pooled run (Config.BatchWorkers wide) over the remaining
// misses. The returned slice is index-aligned with items; a batch never
// fails as a whole for an item-level reason — per-item errors live in
// each slot — only for a malformed batch (too many items).
//
// Counters: every non-duplicate item is one hit or one miss; duplicates
// ride along uncounted. As with Configure, the service retains each
// item's spec for its runner pool, so callers must not mutate specs
// afterwards.
func (s *Service) ConfigureBatch(ctx context.Context, items []BatchItem) ([]BatchResult, error) {
	if len(items) > MaxBatchItems {
		return nil, ErrBatchTooLarge
	}
	results := make([]BatchResult, len(items))
	firstOf := make(map[string]int, len(items)) // fingerprint -> first item index
	dups := make(map[int]int)                   // duplicate item index -> first index
	var runs []*pendingSearch                   // misses this batch leads
	type attached struct {
		item int
		c    *flightCall
	}
	var waits []attached // misses already in flight elsewhere

	// The batch leads every flight in runs, so — like the singleton
	// leader's deferred abandon — a panic anywhere between a claim and its
	// finish must publish the sentinel instead of wedging the fingerprint
	// for every future caller. After a clean pass every flight is
	// finished and abandon is a no-op.
	defer func() {
		for _, p := range runs {
			s.flight.abandon(p.fp, p.c)
		}
	}()

	// Phase 1 — identify: resolve and fingerprint every item, answer store
	// hits, claim the misses. Item-level failures stop here, in their slot.
	for i := range items {
		it := &items[i]
		if it.Spec == nil {
			results[i].Err = errNilSpec
			continue
		}
		r, err := s.resolve(it.Spec, it.Options)
		if err != nil {
			results[i].Err = err
			continue
		}
		fp, err := s.fingerprint(it.Spec, r, nil)
		if err != nil {
			results[i].Err = err
			continue
		}
		results[i].Fingerprint = fp
		if j, ok := firstOf[fp]; ok {
			dups[i] = j
			continue
		}
		firstOf[fp] = i
		if se, ok := s.getStore(fp); ok {
			s.hits.Add(1)
			results[i].Body = se.Body
			results[i].CacheHit = true
			continue
		}
		s.misses.Add(1)
		if c, leader := s.flight.claim(fp); leader {
			runs = append(runs, &pendingSearch{fp: fp, c: c, spec: it.Spec, r: r})
		} else {
			waits = append(waits, attached{item: i, c: c})
		}
	}

	// Phase 2 — run: one pooled run over the misses this batch leads. The
	// pool is a barrier, so every flight in runs is finished afterwards and
	// its published result can be read without waiting.
	if len(runs) > 0 {
		s.runPending(ctx, runs)
		for _, p := range runs {
			i := firstOf[p.fp]
			if p.c.err != nil {
				results[i].Err = p.c.err
			} else {
				results[i].Body = p.c.val.([]byte)
			}
		}
	}

	// Phase 3 — attach: wait on fingerprints some other caller (a
	// singleton leader, a coalescing window, another batch) is searching.
	// This comes after the pooled run so two batches leading disjoint
	// subsets of each other's fingerprints release one another.
	for _, a := range waits {
		results[a.item].Body, results[a.item].Err = s.flightResult(ctx, a.c)
	}

	// Phase 4 — duplicates inherit their first occurrence's outcome.
	for i, j := range dups {
		results[i].Body = results[j].Body
		results[i].CacheHit = results[j].CacheHit
		results[i].Err = results[j].Err
	}
	return results, nil
}

// runPending drives one pooled batch run over claimed misses. Each item
// finishes its own flight as it completes, so singleton callers attached
// to any one fingerprint are released by that item, not by the whole
// batch; the pool's worker bound caps how many searches run at once.
func (s *Service) runPending(ctx context.Context, runs []*pendingSearch) {
	s.batchRuns.Add(1)
	// Per-item error isolation: the pool callback never returns an error
	// (which would stop the pool from claiming later items) — failures
	// travel inside each item's flight instead.
	_ = s.batch.Do(len(runs), func(i int) error {
		s.searchPending(ctx, runs[i])
		return nil
	})
}

// searchPending runs one claimed miss and finishes its flight, always: a
// panicking search (a malformed spec tripping an invariant deep in the
// runner) is recovered into that item's error, so one bad item can
// neither leak a claimed flight nor take down the pool worker.
func (s *Service) searchPending(ctx context.Context, p *pendingSearch) {
	defer func() {
		if r := recover(); r != nil {
			s.flight.finish(p.fp, p.c, nil, fmt.Errorf("service: search for %s panicked: %v", p.fp, r))
		}
	}()
	body, err := s.searchMiss(ctx, p.fp, p.spec, p.r, false)
	s.flight.finish(p.fp, p.c, body, err)
}

// coalescer queues singleton configure misses for up to one batch window
// and drains the queue into a single pooled run. The first miss of a
// quiet period arms the window timer; every miss that lands before it
// fires joins the same run. Enqueued misses already hold their flight
// claim, so concurrent requests for a queued fingerprint attach as
// followers instead of queueing twice, and cache hits never enter the
// coalescer at all — the window taxes only cold fingerprints.
type coalescer struct {
	s      *Service
	window time.Duration

	mu      sync.Mutex
	pending []*pendingSearch
	closed  bool
}

// errServiceClosed fails flights parked with the coalescer when the
// service shuts down mid-window.
var errServiceClosed = errors.New("service: closed")

func (c *coalescer) enqueue(p *pendingSearch) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.s.flight.finish(p.fp, p.c, nil, errServiceClosed)
		return
	}
	c.pending = append(c.pending, p)
	first := len(c.pending) == 1
	c.mu.Unlock()
	if first {
		time.AfterFunc(c.window, c.drain)
	}
}

// close fails every parked flight and refuses new ones, so a window armed
// just before Service.Close cannot fire a search against a closed store:
// the still-pending timer finds an empty queue and does nothing.
func (c *coalescer) close() {
	c.mu.Lock()
	parked := c.pending
	c.pending = nil
	c.closed = true
	c.mu.Unlock()
	for _, p := range parked {
		c.s.flight.finish(p.fp, p.c, nil, errServiceClosed)
	}
}

func (c *coalescer) drain() {
	c.mu.Lock()
	runs := c.pending
	c.pending = nil
	c.mu.Unlock()
	if len(runs) == 0 {
		return
	}
	c.s.coalesced.Add(int64(len(runs)))
	// Searches already run detached from request contexts (searchMiss
	// detaches via context.WithoutCancel); the timer goroutine has no
	// request context to pass in the first place.
	c.s.runPending(context.Background(), runs) //aarc:detached coalescer timer owns no request context; parked flights carry the waiters
}
