package service

import (
	"sync"
	"sync/atomic"

	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/workflow"
)

// runnerPool shards evaluation across independent Runners. A Runner reuses
// a scratch arena and a single RNG stream, so it must never be shared
// between goroutines (DESIGN.md §3); the pool honors that rule by giving
// each shard its own Runner behind its own mutex. Callers are spread
// round-robin by an atomic counter, so up to len(shards) evaluations
// proceed truly in parallel and contention only appears when two callers
// land on the same shard.
type runnerPool struct {
	next   atomic.Uint64
	locks  atomic.Int64 // shard-lock acquisitions, for the amortization benchmarks
	shards []runnerShard
}

type runnerShard struct {
	mu sync.Mutex
	r  *workflow.Runner
}

// shardSeedStride decorrelates the shards' RNG streams; it is the same
// 64-bit golden-ratio constant the runner uses for its own PCG stream.
const shardSeedStride = 0x9e3779b97f4a7c15

// newRunnerPool builds n runners over the same spec. Shard i is seeded
// opts.Seed + i*shardSeedStride: deterministic per (service seed, shard),
// independent across shards, and independent of request interleaving only
// in aggregate — which shard a request lands on depends on arrival order,
// so pooled results are measurement statistics, not a reproducible stream.
func newRunnerPool(spec *workflow.Spec, opts workflow.RunnerOptions, n int) (*runnerPool, error) {
	if n < 1 {
		n = 1
	}
	p := &runnerPool{shards: make([]runnerShard, n)}
	for i := range p.shards {
		o := opts
		o.Seed = opts.Seed + uint64(i)*shardSeedStride
		r, err := workflow.NewRunner(spec, o)
		if err != nil {
			return nil, err
		}
		p.shards[i].r = r
	}
	return p, nil
}

// evaluate runs one execution on the next shard (round-robin), holding
// that shard's lock for exactly one Evaluate call.
func (p *runnerPool) evaluate(a resources.Assignment) (search.Result, error) {
	sh := &p.shards[int(p.next.Add(1)-1)%len(p.shards)]
	sh.mu.Lock()
	p.locks.Add(1)
	defer sh.mu.Unlock()
	return sh.r.Evaluate(a) //aarc:locked the shard mutex owns this Runner; locking it is what makes Evaluate safe (DESIGN.md §3)
}

// evaluateChunk bounds how long evaluateN holds one shard's lock: up to
// this many runs per acquisition. Big enough that the per-run lock cost
// vanishes (1/64 acquisitions per run), small enough that a concurrent
// caller round-robined onto the same shard waits one chunk, not an
// entire MaxEvaluateRuns batch.
const evaluateChunk = 64

// evaluateN runs n executions in chunks of up to evaluateChunk, each
// chunk on the next shard (round-robin) under a single lock acquisition —
// one acquisition per chunk instead of one per execution, which is what
// /v1/evaluate pays when a client asks for many what-if runs at once. A
// chunk's results continue that shard's RNG stream (still measurement
// statistics — which shards serve a call depends on arrival order), and
// concurrent callers proceed on other shards in parallel, delayed at
// worst by one in-flight chunk. On a mid-run error the completed results
// are returned alongside it.
func (p *runnerPool) evaluateN(a resources.Assignment, n int) ([]search.Result, error) {
	out := make([]search.Result, 0, n)
	for len(out) < n {
		m := n - len(out)
		if m > evaluateChunk {
			m = evaluateChunk
		}
		sh := &p.shards[int(p.next.Add(1)-1)%len(p.shards)]
		sh.mu.Lock()
		p.locks.Add(1)
		for i := 0; i < m; i++ {
			res, err := sh.r.Evaluate(a) //aarc:locked the shard mutex owns this Runner; chunked so waiters stall one chunk at most
			if err != nil {
				sh.mu.Unlock()
				return out, err
			}
			out = append(out, res)
		}
		sh.mu.Unlock()
	}
	return out, nil
}
