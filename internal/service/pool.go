package service

import (
	"sync"
	"sync/atomic"

	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/workflow"
)

// runnerPool shards evaluation across independent Runners. A Runner reuses
// a scratch arena and a single RNG stream, so it must never be shared
// between goroutines (DESIGN.md §3); the pool honors that rule by giving
// each shard its own Runner behind its own mutex. Callers are spread
// round-robin by an atomic counter, so up to len(shards) evaluations
// proceed truly in parallel and contention only appears when two callers
// land on the same shard.
type runnerPool struct {
	next   atomic.Uint64
	shards []runnerShard
}

type runnerShard struct {
	mu sync.Mutex
	r  *workflow.Runner
}

// shardSeedStride decorrelates the shards' RNG streams; it is the same
// 64-bit golden-ratio constant the runner uses for its own PCG stream.
const shardSeedStride = 0x9e3779b97f4a7c15

// newRunnerPool builds n runners over the same spec. Shard i is seeded
// opts.Seed + i*shardSeedStride: deterministic per (service seed, shard),
// independent across shards, and independent of request interleaving only
// in aggregate — which shard a request lands on depends on arrival order,
// so pooled results are measurement statistics, not a reproducible stream.
func newRunnerPool(spec *workflow.Spec, opts workflow.RunnerOptions, n int) (*runnerPool, error) {
	if n < 1 {
		n = 1
	}
	p := &runnerPool{shards: make([]runnerShard, n)}
	for i := range p.shards {
		o := opts
		o.Seed = opts.Seed + uint64(i)*shardSeedStride
		r, err := workflow.NewRunner(spec, o)
		if err != nil {
			return nil, err
		}
		p.shards[i].r = r
	}
	return p, nil
}

// evaluate runs one execution on the next shard (round-robin), holding
// that shard's lock for exactly one Evaluate call.
func (p *runnerPool) evaluate(a resources.Assignment) (search.Result, error) {
	sh := &p.shards[int(p.next.Add(1)-1)%len(p.shards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.r.Evaluate(a)
}
