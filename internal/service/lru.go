package service

import "container/list"

// lruCache is a bounded least-recently-used map for the service's
// process-private runtime state: runner pools and dispatch engines,
// keyed by fingerprint. (Recommendation storage itself lives behind the
// store.Store contract — internal/store carries the LRU that used to be
// here.) It is not safe for concurrent use: the Service guards it with
// its own mutex, held only briefly — searches and evaluations run
// outside the lock.
type lruCache struct {
	capacity int
	order    *list.List // front = most recently used
	items    map[string]*list.Element
}

type lruItem struct {
	key string
	val any
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the value for key and marks it most recently used.
func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruItem).val, true
}

// add inserts (or replaces) key and reports the key it evicted to stay
// within capacity, if any.
func (c *lruCache) add(key string, val any) (evicted string, didEvict bool) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = val
		c.order.MoveToFront(el)
		return "", false
	}
	c.items[key] = c.order.PushFront(&lruItem{key: key, val: val})
	if c.order.Len() <= c.capacity {
		return "", false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	k := oldest.Value.(*lruItem).key
	delete(c.items, k)
	return k, true
}

// remove drops key if present.
func (c *lruCache) remove(key string) {
	if el, ok := c.items[key]; ok {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
