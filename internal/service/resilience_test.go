package service

// Degraded-path tests: the service keeps serving — and never poisons its
// cache — while the store misbehaves, searches wedge, or handlers panic.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aarc/internal/search"
	"aarc/internal/store"
)

// wedgedSearcher wedges its first Search call — it parks on a channel
// and ignores its context entirely — and behaves like stubSearcher
// afterwards: the adversarial case the server-side search deadline must
// survive without leaking the singleflight claim or the admission slot.
var (
	wedgeStarted chan struct{}
	wedgeForever chan struct{}
	wedgeCalls   atomic.Int64
)

type wedgedSearcher struct{}

func (wedgedSearcher) Name() string { return "Wedged" }

func (wedgedSearcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	if wedgeCalls.Add(1) == 1 {
		wedgeStarted <- struct{}{}
		<-wedgeForever
	}
	return stubSearcher{}.Search(ctx, ev, opts)
}

// panickySearcher panics mid-search: the regression vehicle for the
// recovery middleware and the flightGroup panic sentinel.
type panickySearcher struct{}

func (panickySearcher) Name() string { return "Panicky" }

func (panickySearcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	panic("panicky: searcher exploded")
}

func init() {
	search.Register("wedged", 1, func(seed uint64) search.Searcher { return wedgedSearcher{} })
	search.Register("panicky", 1, func(seed uint64) search.Searcher { return panickySearcher{} })
}

// TestConfigureDegradesStoreReadFaults: a store whose every op fails
// must not take Configure down — reads degrade to misses, writes to a
// counter, and the search path still answers.
func TestConfigureDegradesStoreReadFaults(t *testing.T) {
	faulty := store.NewFaulty(store.NewMemory(16), store.FaultConfig{})
	faulty.FailAll(nil)
	svc := stubService(t, Config{Store: faulty})
	spec := testSpec(t, 0)

	rec, hit, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatalf("Configure during total store outage: %v", err)
	}
	if hit {
		t.Fatal("Configure reported a cache hit from an all-failing store")
	}
	if rec.Fingerprint == "" {
		t.Fatal("Configure served an empty recommendation")
	}
	if got := svc.Stats().StoreErrors; got == 0 {
		t.Fatal("store outage left StoreErrors at 0")
	}

	// Recovered store: the failed writes were degraded, not cached, so
	// the next Configure re-searches and this time persists.
	faulty.Recover()
	before := stubSearches.Load()
	if _, hit, err = svc.Configure(context.Background(), spec, RequestOptions{}); err != nil || hit {
		t.Fatalf("post-recovery Configure: hit=%v err=%v", hit, err)
	}
	if _, hit, err = svc.Configure(context.Background(), spec, RequestOptions{}); err != nil || !hit {
		t.Fatalf("second post-recovery Configure: hit=%v err=%v", hit, err)
	}
	if got := stubSearches.Load() - before; got != 1 {
		t.Fatalf("post-recovery searches = %d, want 1", got)
	}
}

// TestWriteFaultsNeverPoisonCache: a store that fails every Put serves
// each Configure from its own search — and byte-identically, because
// failed writes leave no partial entry to serve later.
func TestWriteFaultsNeverPoisonCache(t *testing.T) {
	faulty := store.NewFaulty(store.NewMemory(16), store.FaultConfig{PutFailProb: 1})
	svc := stubService(t, Config{Store: faulty})
	spec := testSpec(t, 0)

	first, _, err := svc.ConfigureJSON(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatalf("Configure with failing writes: %v", err)
	}
	if n := faulty.Len(); n != 0 {
		t.Fatalf("store holds %d entries after failed writes, want 0", n)
	}
	// The runtime pool cache still remembers the entry in-process; the
	// store itself must stay empty so no other process (and no restart)
	// ever sees a write that reported failure.
	second, hit, err := svc.ConfigureJSON(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatalf("second Configure: %v", err)
	}
	if hit {
		t.Fatal("cache hit served from a store whose every Put failed")
	}
	if !bytes.Equal(first, second) {
		t.Fatal("re-searched recommendation differs from the first")
	}
}

// TestOpenBreakerServesMemoryOnly is the headline degradation contract:
// with the disk tier hard down, the breaker opens within Threshold
// failures, a 64-way concurrent burst against a warm fingerprint
// completes with zero errors and byte-identical bodies, the open
// breaker short-circuits every disk touch, /readyz reports degraded,
// and after the fault clears one half-open probe closes the breaker.
func TestOpenBreakerServesMemoryOnly(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faulty := store.NewFaulty(disk, store.FaultConfig{})
	retrier := store.NewRetry(faulty, store.RetryConfig{
		BaseDelay: time.Microsecond, MaxDelay: time.Microsecond,
	})
	breaker := store.NewBreaker(retrier, store.BreakerConfig{
		Threshold: 3,
		Cooldown:  50 * time.Millisecond,
		Logf:      t.Logf,
	})
	tiered := store.NewTiered(store.NewMemory(128), breaker)
	svc := stubService(t, Config{Store: tiered, Breaker: breaker, Retrier: retrier})
	handler := NewHandler(svc)
	spec := testSpec(t, 0)

	// Warm one fingerprint while healthy: it lands in both tiers.
	want, _, err := svc.ConfigureJSON(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Disk goes hard down. Cold configures still succeed (memory tier
	// takes the write) and their slow-tier failures trip the breaker.
	faulty.FailAll(nil)
	for i := 1; i <= 2; i++ {
		if _, _, err := svc.Configure(context.Background(), testSpec(t, i), RequestOptions{}); err != nil {
			t.Fatalf("cold Configure %d during disk outage: %v", i, err)
		}
	}
	if got := breaker.State(); got != store.BreakerOpen {
		t.Fatalf("breaker state after outage traffic = %v, want open", got)
	}
	if svc.Stats().Retries == 0 {
		t.Fatal("retry tier saw a disk outage but Stats.Retries is 0")
	}

	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while breaker open = %d, want 503", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "breaker") {
		t.Fatalf("/readyz degraded body gives no reason: %s", rr.Body.String())
	}

	// 64-way burst against the warm fingerprint: all served from memory,
	// byte-identical, zero errors — and zero ops reach the dead disk
	// (the open breaker and the fast tier short-circuit it).
	opsBefore := faulty.Ops()
	const burst = 64
	var wg sync.WaitGroup
	errs := make([]error, burst)
	bodies := make([][]byte, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _, errs[i] = svc.ConfigureJSON(context.Background(), spec, RequestOptions{})
		}(i)
	}
	wg.Wait()
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatalf("burst caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("burst caller %d served different bytes", i)
		}
	}
	if got := faulty.Ops() - opsBefore; got != 0 {
		t.Fatalf("burst reached the dead disk %d times, want 0 (fast-fail)", got)
	}

	// Fault clears; after the cooldown the next disk op is the half-open
	// probe, and its success closes the breaker.
	faulty.Recover()
	time.Sleep(60 * time.Millisecond)
	if got := svc.BreakerState(); got != "half-open" {
		t.Fatalf("breaker state after cooldown = %q, want half-open", got)
	}
	if _, _, err := svc.Configure(context.Background(), testSpec(t, 3), RequestOptions{}); err != nil {
		t.Fatalf("post-recovery Configure: %v", err)
	}
	if got := breaker.State(); got != store.BreakerClosed {
		t.Fatalf("breaker state after successful probe = %v, want closed", got)
	}
	rr = httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", rr.Code)
	}
}

// TestSearchTimeoutReleasesFlightAndSlot: a searcher that ignores its
// context past SearchTimeout fails the leader and every follower with a
// timeout error, caches nothing, and releases both the singleflight
// claim and the admission slot — proved by a follow-up Configure on the
// same fingerprint succeeding with MaxConcurrentSearches=1.
func TestSearchTimeoutReleasesFlightAndSlot(t *testing.T) {
	svc := stubService(t, Config{
		SearchTimeout:         100 * time.Millisecond,
		MaxConcurrentSearches: 1,
	})
	wedgeCalls.Store(0)
	wedgeStarted = make(chan struct{}, 1)
	wedgeForever = make(chan struct{})
	// Registered after stubService so LIFO cleanup releases the wedged
	// searcher goroutine before the leak check armed in there fires.
	t.Cleanup(func() { close(wedgeForever) })
	ro := RequestOptions{Method: "wedged"}
	spec := testSpec(t, 0)

	var (
		leaderErr   error
		followerErr error
		wg          sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = svc.Configure(context.Background(), spec, ro)
	}()
	<-wedgeStarted
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, followerErr = svc.Configure(context.Background(), spec, ro)
	}()
	wg.Wait()

	for who, err := range map[string]error{"leader": leaderErr, "follower": followerErr} {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s error = %v, want DeadlineExceeded", who, err)
		}
	}
	if n := svc.st.Len(); n != 0 {
		t.Fatalf("timed-out search cached %d entries, want 0", n)
	}
	if got := svc.Stats().SearchTimeouts; got == 0 {
		t.Fatal("SearchTimeouts counter did not move")
	}
	// Flight and slot released: the same fingerprint configures cleanly
	// (the wedged searcher delegates to stub from its second call on).
	if _, _, err := svc.Configure(context.Background(), spec, ro); err != nil {
		t.Fatalf("Configure after a timed-out leader: %v", err)
	}
}

// TestLoadSheddingFailFast: with every admission slot busy, a
// deadline-less singleton miss is refused immediately with
// ErrOverloaded; on the wire that is 429 with a Retry-After hint. A
// deadline-carrying miss waits, then sheds at its deadline.
func TestLoadSheddingFailFast(t *testing.T) {
	gateStarted = make(chan struct{}, 8)
	gateRelease = make(chan struct{})
	svc := stubService(t, Config{
		SearchTimeout:         2 * time.Second,
		MaxConcurrentSearches: 1,
	})
	handler := NewHandler(svc)
	ro := RequestOptions{Method: "gate"}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := svc.Configure(context.Background(), testSpec(t, 0), ro); err != nil {
			t.Errorf("gated Configure: %v", err)
		}
	}()
	<-gateStarted // the slot is now held inside a parked search

	if _, _, err := svc.Configure(context.Background(), testSpec(t, 1), ro); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline-less miss at saturation = %v, want ErrOverloaded", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if _, _, err := svc.Configure(ctx, testSpec(t, 2), ro); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline-carrying miss at saturation = %v, want ErrOverloaded after waiting", err)
	}
	cancel()

	body := `{"workload":"chatbot","method":"gate"}`
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/configure", strings.NewReader(body)))
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("shed HTTP status = %d, want 429", rr.Code)
	}
	if ra := rr.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want %q (one search deadline)", ra, "2")
	}
	if got := svc.Stats().ShedRequests; got < 3 {
		t.Fatalf("ShedRequests = %d, want >= 3", got)
	}

	close(gateRelease)
	wg.Wait()
}

// TestReadyzDrain: /readyz flips to 503 the moment a drain begins, while
// /healthz (liveness) stays 200 — the split that keeps balancers away
// without getting the process killed.
func TestReadyzDrain(t *testing.T) {
	svc := stubService(t, Config{})
	handler := NewHandler(svc)

	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr
	}
	if rr := get("/readyz"); rr.Code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", rr.Code)
	}
	svc.BeginDrain()
	rr := get("/readyz")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "draining") {
		t.Fatalf("/readyz drain body gives no reason: %s", rr.Body.String())
	}
	if rr := get("/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200 (still alive)", rr.Code)
	}
}

// TestPanicRecoveredAs500: a panicking searcher answers 500 with a JSON
// error body instead of a torn connection, and is counted. Run twice to
// prove the flightGroup key is not wedged by the panic either.
func TestPanicRecoveredAs500(t *testing.T) {
	svc := stubService(t, Config{})
	handler := NewHandler(svc)

	for attempt := 1; attempt <= 2; attempt++ {
		body := `{"workload":"chatbot","method":"panicky"}`
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/configure", strings.NewReader(body)))
		if rr.Code != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status = %d, want 500", attempt, rr.Code)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("attempt %d: 500 body is not the JSON error envelope: %s", attempt, rr.Body.String())
		}
		if got := svc.Stats().Panics; got != int64(attempt) {
			t.Fatalf("attempt %d: Stats.Panics = %d, want %d", attempt, got, attempt)
		}
	}
}

// TestPanicUnderSearchTimeout: the deadline goroutine re-raises searcher
// panics on the request goroutine, so the recovery middleware and the
// panics counter behave identically with and without a timeout.
func TestPanicUnderSearchTimeout(t *testing.T) {
	svc := stubService(t, Config{SearchTimeout: time.Second})
	handler := NewHandler(svc)

	body := `{"workload":"chatbot","method":"panicky"}`
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/configure", strings.NewReader(body)))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	if got := svc.Stats().Panics; got != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", got)
	}
}

// TestStatsCarriesResilienceFields: the new observability fields survive
// the JSON round trip under their documented names.
func TestStatsCarriesResilienceFields(t *testing.T) {
	svc := stubService(t, Config{})
	b, err := json.Marshal(svc.Stats())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"retries", "shed_requests", "search_timeouts", "panics", "breaker_state"} {
		if !strings.Contains(string(b), fmt.Sprintf("%q", field)) {
			t.Fatalf("Stats JSON missing %q: %s", field, b)
		}
	}
	if svc.BreakerState() != "none" {
		t.Fatalf("memory-only BreakerState = %q, want none", svc.BreakerState())
	}
}
