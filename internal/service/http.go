package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"aarc/internal/event"
	"aarc/internal/inputaware"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// The HTTP surface of the serving layer, mounted by cmd/aarcd and testable
// through net/http/httptest:
//
//	GET    /healthz                    liveness + cache/store stats
//	GET    /readyz                     readiness: 503 while draining or breaker-open
//	GET    /v1/methods                 the search method registry (+versions)
//	POST   /v1/configure               spec+options -> Recommendation (cache-aware)
//	POST   /v1/configure:batch         a list of configure requests as one admission
//	GET    /v1/recommendation/{fp}     fingerprint-addressed fast path (no spec body)
//	DELETE /v1/recommendation/{fp}     explicit invalidation across all store tiers
//	GET    /v1/recommendations         stored-entry listing (watcher bootstrap)
//	GET    /v1/watch/{fp}              SSE lifecycle events for one fingerprint
//	POST   /v1/dispatch                input-aware request -> class + configuration
//	POST   /v1/evaluate                what-if runs against a configured fingerprint
//
// Configure and Dispatch responses carry an "X-Aarc-Cache: hit|miss"
// header; the body bytes for one fingerprint are identical either way —
// and identical to the fingerprint GET — so clients may byte-compare
// responses. The GET path never canonicalizes a spec: it is a store
// lookup, nothing more, and 404s rather than searching.

// maxRequestBody bounds request JSON (a spec with thousands of nodes fits
// comfortably; this guards against unbounded uploads, not real use).
const maxRequestBody = 4 << 20

// NewHandler mounts the service's HTTP API.
func NewHandler(s *Service) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(start).Seconds(),
			"stats":    s.Stats(),
		})
	})
	// Liveness (/healthz) and readiness (/readyz) split deliberately: a
	// degraded service — disk tier down, breaker open, memory-only
	// serving — is alive (don't restart it; its memory cache is the only
	// warm copy) but not ready (route new traffic to healthy peers).
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ok, reason := s.Ready()
		if ok {
			writeJSON(w, http.StatusOK, map[string]any{
				"status":  "ready",
				"breaker": s.BreakerState(),
			})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "degraded",
			"reason":  reason,
			"breaker": s.BreakerState(),
		})
	})
	// The registry is frozen after init, so the name->display table is
	// computed once at mount time rather than per request.
	type method struct {
		Name    string `json:"name"`
		Display string `json:"display"`
		Version int    `json:"version"`
	}
	var methods []method
	for _, name := range s.Methods() {
		m := method{Name: name, Display: name}
		if sr, err := search.New(name, 0); err == nil {
			m.Display = sr.Name()
		}
		if v, err := search.Version(name); err == nil {
			m.Version = v
		}
		methods = append(methods, m)
	}
	mux.HandleFunc("GET /v1/methods", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"methods": methods})
	})
	mux.HandleFunc("POST /v1/configure", func(w http.ResponseWriter, r *http.Request) {
		var req configureRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		spec, err := req.spec()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		body, hit, err := s.ConfigureJSON(r.Context(), spec, req.options())
		if err != nil {
			writeServiceError(s, w, err)
			return
		}
		writeCached(w, body, hit)
	})
	mux.HandleFunc("POST /v1/configure:batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchConfigureRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Requests) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("batch: empty \"requests\""))
			return
		}
		if len(req.Requests) > MaxBatchItems {
			writeError(w, http.StatusBadRequest, ErrBatchTooLarge)
			return
		}
		// Decode every item's spec up front; a bad item keeps its slot (a
		// per-item 400) without failing the batch.
		items := make([]BatchItem, len(req.Requests))
		decodeErrs := make([]error, len(req.Requests))
		for i, cr := range req.Requests {
			spec, err := cr.spec()
			if err != nil {
				decodeErrs[i] = err
				continue
			}
			items[i] = BatchItem{Spec: spec, Options: cr.options()}
		}
		results, err := s.ConfigureBatch(r.Context(), items)
		if err != nil {
			writeServiceError(s, w, err)
			return
		}
		out := batchConfigureResponse{Results: make([]batchItemResponse, len(results))}
		for i := range results {
			item := &out.Results[i]
			if decodeErrs[i] != nil {
				item.Status = http.StatusBadRequest
				item.Error = decodeErrs[i].Error()
				continue
			}
			if results[i].Err != nil {
				item.Status = statusOf(results[i].Err)
				item.Error = results[i].Err.Error()
				continue
			}
			item.Status = http.StatusOK
			item.Cache = cacheHeader(results[i].CacheHit)
			item.Fingerprint = results[i].Fingerprint
			item.Recommendation = json.RawMessage(results[i].Body)
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/recommendation/{fp}", func(w http.ResponseWriter, r *http.Request) {
		body, err := s.RecommendationJSON(r.PathValue("fp"))
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeCached(w, body, true)
	})
	mux.HandleFunc("DELETE /v1/recommendation/{fp}", func(w http.ResponseWriter, r *http.Request) {
		existed, err := s.Invalidate(r.PathValue("fp"))
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		if !existed {
			writeError(w, http.StatusNotFound, ErrUnknownFingerprint)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/recommendations", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"recommendations": s.Recommendations(),
		})
	})
	// GET /v1/watch/{fp}: a Server-Sent Events stream of the
	// fingerprint's lifecycle ("" is not allowed; use the listing to
	// discover fingerprints). Frames carry the bus sequence number as
	// the SSE id, so a dropped client reconnects with Last-Event-ID and
	// resumes from the bus's ring without re-receiving what it saw.
	// Heartbeat comments keep idle streams alive through proxies.
	mux.HandleFunc("GET /v1/watch/{fp}", func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusInternalServerError, errors.New("watch: response writer cannot stream"))
			return
		}
		fp := r.PathValue("fp")
		var lastSeq uint64
		resume := false
		if raw := r.Header.Get("Last-Event-ID"); raw != "" {
			seq, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("watch: bad Last-Event-ID %q: %w", raw, err))
				return
			}
			lastSeq, resume = seq, true
		}
		// Subscribe before replaying so no event falls between the
		// replayed ring and the live channel; live events the replay
		// already covered are deduped below by sequence number.
		events, cancel, err := s.Watch(r.Context(), fp)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		defer cancel()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)
		// A lifecycle stream outlives any sane server write timeout; lift
		// it for this response only (ignored when unsupported).
		_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
		writeEvent := func(ev Event) bool {
			if ev.Seq <= lastSeq {
				return true
			}
			lastSeq = ev.Seq
			data, err := json.Marshal(ev)
			if err != nil {
				return false
			}
			_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			if err != nil {
				return false
			}
			flusher.Flush()
			return true
		}
		if resume {
			for _, ev := range s.ReplayEvents(fp, lastSeq) {
				if !writeEvent(ev) {
					return
				}
			}
		}
		heartbeat := time.NewTicker(s.cfg.WatchHeartbeat)
		defer heartbeat.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, ok := <-events:
				if !ok {
					return // subscription ended (service closing)
				}
				if !writeEvent(ev) {
					return
				}
			case <-heartbeat.C:
				if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
					return
				}
				flusher.Flush()
			}
		}
	})
	mux.HandleFunc("POST /v1/dispatch", func(w http.ResponseWriter, r *http.Request) {
		var req dispatchRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		spec, err := req.spec()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var classes []inputaware.Class
		for _, c := range req.Classes {
			classes = append(classes, inputaware.Class{Name: c.Name, Scale: c.Scale})
		}
		res, hit, err := s.Dispatch(r.Context(), spec, classes, req.Scale, req.options())
		if err != nil {
			writeServiceError(s, w, err)
			return
		}
		w.Header().Set("X-Aarc-Cache", cacheHeader(hit))
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("POST /v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		var req evaluateRequest
		if err := readJSON(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Fingerprint == "" {
			writeError(w, http.StatusBadRequest, errors.New("evaluate: fingerprint required (configure first)"))
			return
		}
		var a resources.Assignment
		if len(req.Assignment) > 0 {
			a = make(resources.Assignment, len(req.Assignment))
			for g, c := range req.Assignment {
				a[g] = resources.Config{CPU: c.CPU, MemMB: c.MemMB}
			}
		}
		results, err := s.Evaluate(req.Fingerprint, a, req.Runs)
		if err != nil {
			// Evaluate may have completed some runs before failing; the
			// partial results are dropped, but the count tells the client
			// how far the batch got (always 0 today — per-run errors are
			// deterministic for a fixed assignment — but the contract is
			// explicit rather than silently lossy).
			writeJSON(w, statusOf(err), map[string]any{
				"error":          err.Error(),
				"completed_runs": len(results),
			})
			return
		}
		out := evaluateResponse{Fingerprint: req.Fingerprint}
		for _, res := range results {
			out.Runs = append(out.Runs, FinalResult{E2EMS: res.E2EMS, Cost: res.Cost, OOM: res.OOM})
			out.MeanE2EMS += res.E2EMS
			out.MeanCost += res.Cost
		}
		if n := float64(len(out.Runs)); n > 0 {
			out.MeanE2EMS /= n
			out.MeanCost /= n
		}
		writeJSON(w, http.StatusOK, out)
	})
	return recoverPanics(s, mux)
}

// recoverPanics is the outermost middleware: a panicking handler — or a
// panicking searcher whose panic escapes the service layer — answers
// 500 with a JSON error instead of killing the connection with an empty
// reply, and is counted in Stats.Panics. http.ErrAbortHandler is
// re-raised: it is net/http's own control flow for deliberately
// aborting a response, not a failure. If the handler had already
// started writing its response the 500 header cannot be sent; the
// recovery (and the counter) still applies.
func recoverPanics(s *Service, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.panics.Add(1)
			log.Printf("service: recovered panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// specSource is the shared spec half of the POST bodies: exactly one of a
// built-in workload name or an inline spec in the DecodeSpec JSON format.
type specSource struct {
	Workload string          `json:"workload,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
}

func (ss specSource) spec() (*workflow.Spec, error) {
	switch {
	case ss.Workload != "" && len(ss.Spec) > 0:
		return nil, errors.New("request: give either \"workload\" or \"spec\", not both")
	case ss.Workload != "":
		return workloads.ByName(ss.Workload)
	case len(ss.Spec) > 0:
		return workflow.DecodeSpec(bytes.NewReader(ss.Spec))
	default:
		return nil, errors.New("request: missing \"workload\" or \"spec\"")
	}
}

// requestKnobs is the shared options half of the POST bodies.
type requestKnobs struct {
	Method       string  `json:"method,omitempty"`
	Seed         *uint64 `json:"seed,omitempty"`
	SLOMS        float64 `json:"slo_ms,omitempty"`
	MaxSamples   int     `json:"max_samples,omitempty"`
	MaxSimCostMS float64 `json:"max_sim_cost_ms,omitempty"`
	InputScale   float64 `json:"input_scale,omitempty"`
}

func (rk requestKnobs) options() RequestOptions {
	return RequestOptions{
		Method:       rk.Method,
		Seed:         rk.Seed,
		SLOMS:        rk.SLOMS,
		MaxSamples:   rk.MaxSamples,
		MaxSimCostMS: rk.MaxSimCostMS,
		InputScale:   rk.InputScale,
	}
}

type configureRequest struct {
	specSource
	requestKnobs
}

// batchConfigureRequest is the wire form of POST /v1/configure:batch: a
// list of ordinary configure requests, answered as one admission.
type batchConfigureRequest struct {
	Requests []configureRequest `json:"requests"`
}

// batchItemResponse is one slot of a batch response, index-aligned with
// the request. Status is the HTTP status the item would have earned as a
// singleton request; the envelope itself is 200 whenever the batch was
// well-formed. Recommendation carries the stored pre-marshaled bytes, so
// an item's recommendation JSON is identical to the singleton response
// for the same fingerprint.
type batchItemResponse struct {
	Status         int             `json:"status"`
	Cache          string          `json:"cache,omitempty"` // hit|miss, like X-Aarc-Cache
	Fingerprint    string          `json:"fingerprint,omitempty"`
	Recommendation json.RawMessage `json:"recommendation,omitempty"`
	Error          string          `json:"error,omitempty"`
}

type batchConfigureResponse struct {
	Results []batchItemResponse `json:"results"`
}

type dispatchRequest struct {
	specSource
	requestKnobs
	Scale   float64 `json:"scale"`
	Classes []struct {
		Name  string  `json:"name"`
		Scale float64 `json:"scale"`
	} `json:"classes,omitempty"`
}

type evaluateRequest struct {
	Fingerprint string                 `json:"fingerprint"`
	Assignment  map[string]ConfigValue `json:"assignment,omitempty"`
	Runs        int                    `json:"runs,omitempty"`
}

type evaluateResponse struct {
	Fingerprint string        `json:"fingerprint"`
	Runs        []FinalResult `json:"runs"`
	MeanE2EMS   float64       `json:"mean_e2e_ms"`
	MeanCost    float64       `json:"mean_cost"`
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("request: decoding body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeCached writes a pre-marshaled body: hit and miss responses for one
// fingerprint are byte-identical, differing only in the cache header.
func writeCached(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Aarc-Cache", cacheHeader(hit))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeServiceError maps a service-layer error onto the wire, attaching
// the Retry-After hint when the request was shed by the admission cap —
// a 429 without a retry hint just teaches clients to hammer.
func writeServiceError(s *Service, w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) {
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfterSeconds()))
	}
	writeError(w, statusOf(err), err)
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownFingerprint):
		return http.StatusNotFound
	case errors.Is(err, ErrTooManyRuns), errors.Is(err, ErrBatchTooLarge), errors.Is(err, errNilSpec):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, event.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}
