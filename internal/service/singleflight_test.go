package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFlightGroupLeaderAndFollowersShareOneRun(t *testing.T) {
	var g flightGroup
	var runs int
	const callers = 16
	var wg sync.WaitGroup
	vals := make([]any, callers)
	errs := make([]error, callers)
	release := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i], _ = g.do(context.Background(), "k", func() (any, error) {
				runs++ // only ever one runner: no lock needed, -race verifies
				<-release
				return "result", nil
			})
		}(i)
	}
	// Let the goroutines pile up on the flight before releasing it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if runs != 1 {
		t.Errorf("%d callers ran fn %d times, want 1", callers, runs)
	}
	for i := range vals {
		if errs[i] != nil || vals[i] != "result" {
			t.Errorf("caller %d got (%v, %v)", i, vals[i], errs[i])
		}
	}
}

func TestFlightGroupFollowerContextCancel(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		g.do(context.Background(), "k", func() (any, error) {
			close(entered)
			<-release
			return nil, nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.do(ctx, "k", func() (any, error) {
		t.Error("cancelled follower became leader")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) || !shared {
		t.Errorf("cancelled follower got (err=%v, shared=%v), want ctx.Err(), true", err, shared)
	}
}

// TestFlightGroupLeaderPanicPublishesSentinel is the regression test for
// the panicking-leader hole: the deferred cleanup used to close done with
// val and err both unset, so followers observed (nil, nil) — a
// "successful" nil body that Service.configure would then dereference.
// The leader must publish errLeaderPanicked before closing.
func TestFlightGroupLeaderPanicPublishesSentinel(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() {
			if recover() == nil {
				t.Error("do swallowed the leader's panic")
			}
		}()
		g.do(context.Background(), "k", func() (any, error) {
			close(entered)
			<-release
			panic("search exploded")
		})
	}()
	<-entered

	// The leader is parked inside fn, so the key is still claimed: this
	// claim is guaranteed to attach as a follower.
	c, leader := g.claim("k")
	if leader {
		t.Fatal("second claim became leader while the first was in flight")
	}
	close(release)
	v, err := g.wait(context.Background(), c)
	if !errors.Is(err, errLeaderPanicked) {
		t.Errorf("follower of a panicked leader got err %v, want errLeaderPanicked", err)
	}
	if v != nil {
		t.Errorf("follower of a panicked leader got value %v, want nil", v)
	}
	<-leaderDone

	// The key was released: the next caller starts a fresh flight.
	if _, leader := g.claim("k"); !leader {
		t.Error("key still claimed after the panicked flight was abandoned")
	}
}

func TestFlightGroupFinishReleasesKey(t *testing.T) {
	var g flightGroup
	c, leader := g.claim("k")
	if !leader {
		t.Fatal("first claim was not the leader")
	}
	g.finish("k", c, 42, nil)
	if v, err := g.wait(context.Background(), c); v != 42 || err != nil {
		t.Errorf("wait after finish = (%v, %v), want (42, nil)", v, err)
	}
	// abandon after finish must not overwrite the published result.
	g.abandon("k", c)
	if v, err := g.wait(context.Background(), c); v != 42 || err != nil {
		t.Errorf("wait after abandon-of-finished = (%v, %v), want (42, nil)", v, err)
	}
}
