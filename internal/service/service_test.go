package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/store"
	"aarc/internal/testutil"
	"aarc/internal/workflow"
	"aarc/internal/workloads"

	// Resolve the real methods through the registry, as cmd/aarcd does.
	_ "aarc/internal/baselines/naive"
	_ "aarc/internal/core"
)

// stubSearches counts every Search call of the "stub" method across the
// test binary, so tests can assert exactly-one-search-per-fingerprint.
var stubSearches atomic.Int64

// stubSearcher is a minimal registry method: one Evaluate of the base
// assignment, one recorded sample. Fast enough to run hundreds of times
// under -race.
type stubSearcher struct{}

func (stubSearcher) Name() string { return "Stub" }

func (stubSearcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	stubSearches.Add(1)
	trace := search.NewTrace(ctx, "Stub", opts)
	base := ev.Base()
	res, err := ev.Evaluate(base)
	if err != nil {
		return search.Outcome{}, err
	}
	rerr := trace.Record(base, res, true, "stub")
	return search.Outcome{Best: base, Trace: trace, Final: res}, search.StopCause(rerr)
}

func init() {
	search.Register("stub", 1, func(seed uint64) search.Searcher { return stubSearcher{} })
	search.Register("failing", 1, func(seed uint64) search.Searcher { return failingSearcher{} })
}

// failingSearcher always errors: the regression vehicle for "failed
// searches never reach any store tier".
type failingSearcher struct{}

func (failingSearcher) Name() string { return "Failing" }

func (failingSearcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	stubSearches.Add(1)
	return search.Outcome{}, errors.New("failing: search exploded")
}

// testSpec builds a tiny linear workflow whose SLO varies per variant, so
// tests can mint arbitrarily many distinct fingerprints cheaply.
func testSpec(t testing.TB, variant int) *workflow.Spec {
	t.Helper()
	g := dag.New()
	for _, id := range []string{"in", "out"} {
		if err := g.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("in", "out"); err != nil {
		t.Fatal(err)
	}
	profiles := make(map[string]perfmodel.Profile, 2)
	for _, id := range []string{"in", "out"} {
		profiles[id] = perfmodel.Profile{
			Name: id, CPUWorkMS: 500, ParallelFrac: 0.5, FootprintMB: 256, MinMemMB: 128,
		}
	}
	spec := &workflow.Spec{
		Name:     fmt.Sprintf("svc-test-%d", variant),
		G:        g,
		Profiles: profiles,
		SLOMS:    float64(5000 + variant),
		Base: resources.Assignment{
			"in":  {CPU: 4, MemMB: 4096},
			"out": {CPU: 4, MemMB: 4096},
		},
		Limits: resources.DefaultLimits(),
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

func stubService(t testing.TB, cfg Config) *Service {
	t.Helper()
	// Armed before New so the snapshot excludes the service's own
	// goroutines; cleanups run LIFO, so Close below completes before the
	// leak check fires. This covers every stubService-based test —
	// service, batch, resilience, lifecycle, and watch.
	testutil.VerifyNoLeaks(t)
	cfg.Method = "stub"
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestConfigureSingleflightOneSearchPerFingerprint(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)
	before := stubSearches.Load()

	const callers = 64
	var wg sync.WaitGroup
	recs := make([]*Recommendation, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i], _, errs[i] = svc.Configure(context.Background(), spec, RequestOptions{})
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := stubSearches.Load() - before; got != 1 {
		t.Errorf("%d concurrent Configure calls ran %d searches, want exactly 1", callers, got)
	}
	for i, rec := range recs {
		if rec.Fingerprint != recs[0].Fingerprint {
			t.Fatalf("caller %d got fingerprint %s, caller 0 got %s", i, rec.Fingerprint, recs[0].Fingerprint)
		}
	}
	if st := svc.Stats(); st.Searches != 1 || st.Entries != 1 {
		t.Errorf("stats after identical burst: %+v", st)
	}
}

func TestConfigureDistinctSpecsSearchOnceEach(t *testing.T) {
	svc := stubService(t, Config{})
	before := stubSearches.Load()

	const distinct = 8
	const callersPer = 8
	var wg sync.WaitGroup
	fps := make([]string, distinct*callersPer)
	for v := 0; v < distinct; v++ {
		spec := testSpec(t, v)
		for c := 0; c < callersPer; c++ {
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
				if err != nil {
					t.Error(err)
					return
				}
				fps[idx] = rec.Fingerprint
			}(v*callersPer + c)
		}
	}
	wg.Wait()

	if got := stubSearches.Load() - before; got != distinct {
		t.Errorf("%d distinct specs ran %d searches, want %d", distinct, got, distinct)
	}
	unique := make(map[string]bool)
	for _, fp := range fps {
		unique[fp] = true
	}
	if len(unique) != distinct {
		t.Errorf("got %d unique fingerprints, want %d", len(unique), distinct)
	}
}

func TestConfigureCacheHitRunsNoSearch(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)

	if _, hit, err := svc.Configure(context.Background(), spec, RequestOptions{}); err != nil || hit {
		t.Fatalf("priming call: hit=%v err=%v", hit, err)
	}
	before := stubSearches.Load()
	rec, hit, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second identical Configure was not a cache hit")
	}
	if got := stubSearches.Load() - before; got != 0 {
		t.Errorf("cache hit ran %d searches, want 0", got)
	}
	if rec == nil || len(rec.Assignment) == 0 {
		t.Fatalf("cache hit returned empty recommendation %+v", rec)
	}
	if st := svc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestConfigureJSONByteIdenticalAcrossHits(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)

	miss, hit0, err := svc.ConfigureJSON(context.Background(), spec, RequestOptions{})
	if err != nil || hit0 {
		t.Fatalf("priming: hit=%v err=%v", hit0, err)
	}
	for i := 0; i < 3; i++ {
		got, hit, err := svc.ConfigureJSON(context.Background(), spec, RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Errorf("call %d not a hit", i)
		}
		if string(got) != string(miss) {
			t.Errorf("hit %d bytes differ from miss:\nmiss: %s\nhit:  %s", i, miss, got)
		}
	}
}

func TestLRUEvictionBoundsCache(t *testing.T) {
	const capacity = 4
	svc := stubService(t, Config{CacheSize: capacity})
	before := stubSearches.Load()

	const distinct = 10
	for v := 0; v < distinct; v++ {
		if _, _, err := svc.Configure(context.Background(), testSpec(t, v), RequestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Entries != capacity {
		t.Errorf("cache holds %d entries, want bound %d", st.Entries, capacity)
	}
	if st.Evictions != distinct-capacity {
		t.Errorf("evictions = %d, want %d", st.Evictions, distinct-capacity)
	}

	// The oldest entry was evicted: configuring it again must search again.
	if _, hit, err := svc.Configure(context.Background(), testSpec(t, 0), RequestOptions{}); err != nil || hit {
		t.Fatalf("re-configure of evicted spec: hit=%v err=%v", hit, err)
	}
	// The newest entry is still cached: no extra search.
	if _, hit, err := svc.Configure(context.Background(), testSpec(t, distinct-1), RequestOptions{}); err != nil || !hit {
		t.Fatalf("newest entry should still be cached: hit=%v err=%v", hit, err)
	}
	if got := stubSearches.Load() - before; got != distinct+1 {
		t.Errorf("ran %d searches, want %d (%d distinct + 1 re-search of evicted)", got, distinct+1, distinct)
	}
}

func TestRequestOptionsChangeFingerprint(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)
	ctx := context.Background()

	base, _, err := svc.Configure(ctx, spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(7)
	variants := map[string]RequestOptions{
		"seed":        {Seed: &seed},
		"slo":         {SLOMS: 99999},
		"max_samples": {MaxSamples: 3},
		"scale":       {InputScale: 1.5},
	}
	seen := map[string]string{"base": base.Fingerprint}
	for name, ro := range variants {
		rec, _, err := svc.Configure(ctx, spec, ro)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, fp := range seen {
			if rec.Fingerprint == fp {
				t.Errorf("options %q collide with %q on fingerprint %s", name, prev, fp)
			}
		}
		seen[name] = rec.Fingerprint
	}
}

func TestServerSideBudgetCap(t *testing.T) {
	svc, err := New(Config{Method: "aarc", MaxSamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workloads.ByName("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	// Request asks for more than the cap: the cap wins.
	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{MaxSamples: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Samples > 5 {
		t.Errorf("server cap 5 allowed %d samples", rec.Samples)
	}
	// A tighter request stays tighter (distinct fingerprint, new search).
	rec2, _, err := svc.Configure(context.Background(), spec, RequestOptions{MaxSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Samples > 2 {
		t.Errorf("request cap 2 allowed %d samples", rec2.Samples)
	}
}

func TestEvaluateAndValidateOnShardedPool(t *testing.T) {
	svc := stubService(t, Config{Shards: 4})
	spec := testSpec(t, 0)
	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent validations exercise every shard under -race.
	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results, err := svc.Validate(rec.Fingerprint, 4)
			if err != nil {
				errs[i] = err
				return
			}
			for _, r := range results {
				if r.E2EMS <= 0 {
					errs[i] = fmt.Errorf("non-positive e2e %v", r.E2EMS)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("validator %d: %v", i, err)
		}
	}

	// What-if evaluation under an explicit assignment.
	a := resources.Assignment{
		"in":  {CPU: 1, MemMB: 512},
		"out": {CPU: 1, MemMB: 512},
	}
	results, err := svc.Evaluate(rec.Fingerprint, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}

	if _, err := svc.Validate("sha256:unknown", 1); err != ErrUnknownFingerprint {
		t.Errorf("unknown fingerprint error = %v, want ErrUnknownFingerprint", err)
	}
	if _, err := svc.Validate(rec.Fingerprint, MaxEvaluateRuns+1); !errors.Is(err, ErrTooManyRuns) {
		t.Errorf("oversized run count error = %v, want ErrTooManyRuns", err)
	}
}

func TestDispatchCachesEnginePerClassSet(t *testing.T) {
	svc := stubService(t, Config{})
	spec, err := workloads.ByName("video-analysis")
	if err != nil {
		t.Fatal(err)
	}
	before := stubSearches.Load()

	const callers = 16
	var wg sync.WaitGroup
	results := make([]*DispatchResult, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Scales spread across the three default classes.
			scale := 0.3 + float64(i%3)*0.6
			results[i], _, errs[i] = svc.Dispatch(context.Background(), spec, nil, scale, RequestOptions{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("dispatcher %d: %v", i, err)
		}
	}
	// One engine = one search per class, shared by all 16 dispatchers.
	if got := stubSearches.Load() - before; got != 3 {
		t.Errorf("16 concurrent Dispatch calls ran %d searches, want 3 (one per class)", got)
	}
	for i, r := range results {
		if r.Class == "" || len(r.Assignment) == 0 {
			t.Errorf("dispatcher %d got empty result %+v", i, r)
		}
	}

	// Dispatch and Configure must not collide on the same spec.
	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fingerprint == results[0].Fingerprint {
		t.Error("configure and dispatch share a fingerprint for the same spec")
	}
}

func TestDispatchRejectsBadScale(t *testing.T) {
	svc := stubService(t, Config{})
	if _, _, err := svc.Dispatch(context.Background(), testSpec(t, 0), nil, 0, RequestOptions{}); err == nil {
		t.Error("Dispatch accepted scale 0")
	}
}

func TestConfigureRealMethodThroughService(t *testing.T) {
	svc, err := New(Config{Seed: 42, HostCores: 96, Noise: true, MaxSamples: 40})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workloads.ByName("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	rec, hit, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first Configure reported a cache hit")
	}
	if rec.Method != "AARC" {
		t.Errorf("method = %s, want AARC", rec.Method)
	}
	if rec.Samples == 0 || rec.Samples > 40 {
		t.Errorf("samples = %d, want 1..40", rec.Samples)
	}
	if len(rec.Assignment) != len(spec.FunctionGroups()) {
		t.Errorf("assignment covers %d groups, want %d", len(rec.Assignment), len(spec.FunctionGroups()))
	}
}

func TestStatsReportStoreKindAndTiers(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)
	ctx := context.Background()
	if _, _, err := svc.Configure(ctx, spec, RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, hit, err := svc.Configure(ctx, spec, RequestOptions{}); err != nil || !hit {
			t.Fatalf("repeat %d: hit=%v err=%v", i, hit, err)
		}
	}
	st := svc.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Searches != 1 {
		t.Errorf("counters = %+v, want 3 hits / 1 miss / 1 search", st)
	}
	if st.Store != "memory" || st.Tiers["memory"] != 1 || st.Entries != 1 {
		t.Errorf("store stats = %+v, want kind=memory with 1 entry", st)
	}
	if st.StoreErrors != 0 {
		t.Errorf("store errors = %d, want 0", st.StoreErrors)
	}
}

func TestStatsTieredKindOverCacheDir(t *testing.T) {
	svc := stubService(t, Config{CacheDir: t.TempDir(), CacheSize: 8})
	if _, _, err := svc.Configure(context.Background(), testSpec(t, 0), RequestOptions{}); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Store != "tiered" || st.Tiers["memory"] != 1 || st.Tiers["disk"] != 1 {
		t.Errorf("tiered stats = %+v, want memory=1 disk=1", st)
	}
}

// spyStore records every write that reaches its tier, so tests can assert
// at the Store boundary — not just the service surface — that failure
// paths never touch storage.
type spyStore struct {
	store.Store
	puts atomic.Int64
}

func (s *spyStore) Put(k string, e store.Entry) error {
	s.puts.Add(1)
	return s.Store.Put(k, e)
}

func TestFailedSearchNeverWritesAnyTier(t *testing.T) {
	fast := &spyStore{Store: store.NewMemory(8)}
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	slow := &spyStore{Store: disk}
	svc, err := New(Config{Method: "failing", Store: store.NewTiered(fast, slow)})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	spec := testSpec(t, 0)
	for i := 0; i < 3; i++ {
		if _, _, err := svc.Configure(context.Background(), spec, RequestOptions{}); err == nil {
			t.Fatal("failing method returned no error")
		}
	}
	if n := fast.puts.Load(); n != 0 {
		t.Errorf("failed searches wrote %d entries to the fast tier", n)
	}
	if n := slow.puts.Load(); n != 0 {
		t.Errorf("failed searches wrote %d entries to the slow tier", n)
	}
	if svc.Stats().Entries != 0 {
		t.Errorf("failed searches left %d stored entries", svc.Stats().Entries)
	}
	// The error is not sticky: a working method on the same service stores.
	if _, _, err := svc.Configure(context.Background(), spec, RequestOptions{Method: "stub"}); err != nil {
		t.Fatal(err)
	}
	if fast.puts.Load() != 1 || slow.puts.Load() != 1 {
		t.Errorf("successful search wrote fast=%d slow=%d times, want 1/1", fast.puts.Load(), slow.puts.Load())
	}
}

func TestWarmRestartServesPreviousFingerprints(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 0)
	ctx := context.Background()

	first := stubService(t, Config{CacheDir: dir})
	body1, hit, err := first.ConfigureJSON(ctx, spec, RequestOptions{})
	if err != nil || hit {
		t.Fatalf("first process configure: hit=%v err=%v", hit, err)
	}
	var rec Recommendation
	if err := json.Unmarshal(body1, &rec); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	// A "restarted" process over the same directory: the same request is
	// a hit with byte-identical body and no search.
	second := stubService(t, Config{CacheDir: dir})
	before := stubSearches.Load()
	body2, hit, err := second.ConfigureJSON(ctx, spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("restarted service missed on a persisted fingerprint")
	}
	if string(body1) != string(body2) {
		t.Errorf("restart changed the body:\nbefore %s\nafter  %s", body1, body2)
	}
	if got := stubSearches.Load() - before; got != 0 {
		t.Errorf("restarted service ran %d searches, want 0", got)
	}

	// The fingerprint-addressed fast path works without any spec at all,
	// and evaluation rebuilds its runner pool from the stored metadata.
	fast, err := second.RecommendationJSON(rec.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if string(fast) != string(body1) {
		t.Error("fingerprint GET body differs from the original search body")
	}
	results, err := second.Validate(rec.Fingerprint, 3)
	if err != nil {
		t.Fatalf("Validate across restart: %v", err)
	}
	if len(results) != 3 || results[0].E2EMS <= 0 {
		t.Errorf("restart validation results %+v", results)
	}
}

func TestRecommendationJSONFastPathAndInvalidate(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)
	ctx := context.Background()

	if _, err := svc.RecommendationJSON("sha256:unknown"); err != ErrUnknownFingerprint {
		t.Errorf("unknown fingerprint error = %v, want ErrUnknownFingerprint", err)
	}
	body, _, err := svc.ConfigureJSON(ctx, spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rec Recommendation
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	before := stubSearches.Load()
	got, err := svc.RecommendationJSON(rec.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Error("fast-path bytes differ from configure bytes")
	}
	if stubSearches.Load() != before {
		t.Error("fingerprint GET ran a search")
	}

	existed, err := svc.Invalidate(rec.Fingerprint)
	if err != nil || !existed {
		t.Fatalf("Invalidate: existed=%v err=%v", existed, err)
	}
	if _, err := svc.RecommendationJSON(rec.Fingerprint); err != ErrUnknownFingerprint {
		t.Errorf("post-invalidate error = %v, want ErrUnknownFingerprint", err)
	}
	if existed, _ := svc.Invalidate(rec.Fingerprint); existed {
		t.Error("second Invalidate claims the entry still existed")
	}
	// The next identical Configure re-searches.
	if _, hit, err := svc.Configure(ctx, spec, RequestOptions{}); err != nil || hit {
		t.Fatalf("post-invalidate configure: hit=%v err=%v", hit, err)
	}
	if got := stubSearches.Load() - before; got != 1 {
		t.Errorf("post-invalidate configure ran %d searches, want 1", got)
	}
}

func TestMethodVersionFoldsIntoFingerprint(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)
	r, err := svc.resolve(spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.version != 1 {
		t.Fatalf("stub method resolved version %d, want 1", r.version)
	}
	fp1, err := svc.fingerprint(spec, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The same request under a bumped implementation version must address
	// a different entry: stale recommendations self-invalidate.
	r.version = 2
	fp2, err := svc.fingerprint(spec, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Error("bumping the method version did not change the fingerprint")
	}
}

func TestConfigureUnknownMethodFailsFast(t *testing.T) {
	svc := stubService(t, Config{})
	_, _, err := svc.Configure(context.Background(), testSpec(t, 0), RequestOptions{Method: "nope"})
	if err == nil {
		t.Fatal("unknown method did not error")
	}
	if svc.Stats().Misses != 0 {
		t.Error("unknown method was counted as a miss (fingerprinted before failing)")
	}
}
