package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"testing"

	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// churnBody mutates the spec in place with one random churn primitive and
// returns the /v1/configure request body plus the spec's canonical bytes.
func churnBody(t *testing.T, spec *workflow.Spec, rng *rand.Rand) (string, []byte) {
	t.Helper()
	var (
		d   workflow.Delta
		err error
	)
	switch rng.IntN(3) {
	case 0:
		d, err = workloads.AddRandomNodes(spec, rng, 1+rng.IntN(2))
	case 1:
		d, err = workloads.DeleteRandomNodes(spec, rng, 1+rng.IntN(2))
	default:
		d, err = workloads.RewireRandomEdges(spec, rng, 1+rng.IntN(3))
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Apply(d); err != nil {
		t.Fatal(err)
	}
	canon, err := workflow.CanonicalJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := workflow.EncodeSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"spec": %s}`, buf.String()), canon
}

// TestHTTPConfigureChurnFingerprints hammers POST /v1/configure with a
// churn-mutated spec stream and asserts the service's identity contract:
// fingerprints diverge exactly when the canonical spec diverges, repeated
// submissions of the same spec hit the cache with byte-identical bodies,
// and the hit/miss/search accounting matches the distinct-spec count.
func TestHTTPConfigureChurnFingerprints(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	spec, err := workloads.Scale(workloads.ScaleOptions{Topology: workloads.TopologyRandom, Nodes: 60, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(17, 0x5e7f))

	steps := 30
	if testing.Short() {
		steps = 10
	}
	searchesBefore := stubSearches.Load()
	statsBefore := svc.Stats()
	fps := make(map[string]string, steps) // canonical bytes -> fingerprint
	for step := 0; step < steps; step++ {
		body, canon := churnBody(t, spec, rng)

		resp, b := postJSON(t, ts.URL+"/v1/configure", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d: %s", step, resp.StatusCode, b)
		}
		if got := resp.Header.Get("X-Aarc-Cache"); got != "miss" {
			t.Fatalf("step %d: fresh canonical spec answered from cache (%q)", step, got)
		}
		var rec Recommendation
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatalf("step %d: %v\n%s", step, err, b)
		}
		for prevCanon, prevFP := range fps {
			if (prevCanon == string(canon)) != (prevFP == rec.Fingerprint) {
				t.Fatalf("step %d: fingerprint/canonical divergence mismatch (fp %s)", step, rec.Fingerprint)
			}
		}
		fps[string(canon)] = rec.Fingerprint

		// Resubmitting the identical spec must hit, with identical bytes.
		resp2, b2 := postJSON(t, ts.URL+"/v1/configure", body)
		if got := resp2.Header.Get("X-Aarc-Cache"); got != "hit" {
			t.Fatalf("step %d: resubmission was a %q, want hit", step, got)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("step %d: hit bytes differ from miss bytes", step)
		}
	}

	if got := stubSearches.Load() - searchesBefore; got != int64(steps) {
		t.Errorf("%d distinct specs ran %d searches", steps, got)
	}
	stats := svc.Stats()
	if misses := stats.Misses - statsBefore.Misses; misses != int64(steps) {
		t.Errorf("misses = %d, want %d", misses, steps)
	}
	if hits := stats.Hits - statsBefore.Hits; hits != int64(steps) {
		t.Errorf("hits = %d, want %d", hits, steps)
	}
}

// TestHTTPConfigureChurnConcurrent replays a mutated-spec stream from many
// goroutines at once (the interesting schedule under -race): every request
// for the same canonical spec must come back with the same fingerprint, and
// each distinct spec must run exactly one search.
func TestHTTPConfigureChurnConcurrent(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	spec, err := workloads.Scale(workloads.ScaleOptions{Topology: workloads.TopologyLayered, Nodes: 50, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(23, 0xbeef))

	const distinct = 6
	const callers = 48
	bodies := make([]string, distinct)
	for i := range bodies {
		bodies[i], _ = churnBody(t, spec, rng)
	}

	searchesBefore := stubSearches.Load()
	statsBefore := svc.Stats()
	var wg sync.WaitGroup
	fingerprints := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJSON(t, ts.URL+"/v1/configure", bodies[i%distinct])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("caller %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			var rec Recommendation
			if err := json.Unmarshal(b, &rec); err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			fingerprints[i] = rec.Fingerprint
		}(i)
	}
	wg.Wait()

	for i := distinct; i < callers; i++ {
		if fingerprints[i] != fingerprints[i%distinct] {
			t.Fatalf("caller %d fingerprint %q != caller %d %q",
				i, fingerprints[i], i%distinct, fingerprints[i%distinct])
		}
	}
	seen := make(map[string]bool)
	for _, fp := range fingerprints[:distinct] {
		if seen[fp] {
			t.Fatalf("two distinct canonical specs share fingerprint %q", fp)
		}
		seen[fp] = true
	}
	if got := stubSearches.Load() - searchesBefore; got != distinct {
		t.Errorf("%d distinct specs ran %d searches", distinct, got)
	}
	stats := svc.Stats()
	total := (stats.Hits - statsBefore.Hits) + (stats.Misses - statsBefore.Misses)
	if total != callers {
		t.Errorf("hits+misses = %d, want %d", total, callers)
	}
}
