// Package service is the long-lived serving layer over the configuration
// searchers: the §IV-D online engine shape — dispatch incoming work to
// pre-searched configurations — generalized to every workflow.
//
// A Service owns three things:
//
//   - a content-addressed identity for work: the cache key is a SHA-256
//     over the spec's canonical JSON (workflow.CanonicalJSON), the search
//     options' canonical JSON (search.Options.CanonicalJSON) and the
//     engine identity (method, seed, host cores, noise, input scale, and —
//     for dispatch — the input classes), so byte-different requests that
//     describe the same search share one entry;
//   - a bounded LRU recommendation cache with singleflight admission: N
//     concurrent requests for the same key run exactly one search, and a
//     cache hit answers without constructing a Runner or Searcher at all;
//   - a sharded runner pool per cached entry for the post-configuration
//     hot path (Validate / Evaluate): Runners are not concurrency-safe
//     (one-runner-per-goroutine rule, DESIGN.md §3), so the pool holds one
//     independently-seeded Runner per shard behind its own mutex and
//     spreads callers round-robin — concurrent evaluations contend only
//     when they land on the same shard.
//
// Searches run detached from the requesting client's context
// (context.WithoutCancel): a shared cache entry must not be poisoned by
// whichever client happens to disconnect first. Bound server-side work
// with Config.MaxSamples / MaxSimCostMS instead; a budget-exhausted search
// is a normal stop and its partial recommendation is cached like any
// other. Failed searches are never cached — the next request retries.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"aarc/internal/inputaware"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/workflow"
)

// Config sets a Service's defaults. Per-request values (RequestOptions)
// override Method, Seed, SLOMS and InputScale; MaxSamples and MaxSimCostMS
// act as server-side caps — a request may tighten a budget, never loosen
// it past the cap.
type Config struct {
	Method       string  // search method; default "aarc"
	Seed         uint64  // simulator+searcher seed; default 42
	HostCores    float64 // host CPU capacity; 0 disables contention
	Noise        bool    // measurement noise on the simulated testbed
	InputScale   float64 // default input scale; 0 means 1.0
	SLOMS        float64 // default SLO override; 0 keeps each spec's SLO
	MaxSamples   int     // server-side sample cap per search; 0 = unlimited
	MaxSimCostMS float64 // server-side simulated-time cap; 0 = unlimited
	CacheSize    int     // max cached entries; default 128
	Shards       int     // runners per entry's pool; default GOMAXPROCS
}

// RequestOptions carries the per-request knobs of Configure and Dispatch.
// Zero values defer to the Service's Config (a nil Seed keeps the service
// seed; 0 is a valid explicit seed).
type RequestOptions struct {
	Method       string
	Seed         *uint64
	SLOMS        float64
	MaxSamples   int
	MaxSimCostMS float64
	InputScale   float64
}

// ConfigValue is the wire form of one function's resource configuration.
type ConfigValue struct {
	CPU   float64 `json:"cpu"`
	MemMB float64 `json:"mem_mb"`
}

// FinalResult is the wire form of the search's last measurement of the
// recommended assignment.
type FinalResult struct {
	E2EMS float64 `json:"e2e_ms"`
	Cost  float64 `json:"cost"`
	OOM   bool    `json:"oom"`
}

// Recommendation is the serializable outcome of one configuration search,
// as cached and served. Its JSON encoding is deterministic (struct fields
// in declaration order, string-keyed maps sorted by key), so every
// response for one fingerprint is byte-identical.
type Recommendation struct {
	Fingerprint     string                 `json:"fingerprint"`
	Workflow        string                 `json:"workflow"`
	Method          string                 `json:"method"`
	SLOMS           float64                `json:"slo_ms"`
	Assignment      map[string]ConfigValue `json:"assignment"`
	Samples         int                    `json:"samples"`
	SearchRuntimeMS float64                `json:"search_runtime_ms"`
	SearchCost      float64                `json:"search_cost"`
	Final           FinalResult            `json:"final"`
	SLOCompliant    bool                   `json:"slo_compliant"`
}

// ResourceAssignment converts the wire assignment back to the internal type.
func (r *Recommendation) ResourceAssignment() resources.Assignment {
	a := make(resources.Assignment, len(r.Assignment))
	for g, c := range r.Assignment {
		a[g] = resources.Config{CPU: c.CPU, MemMB: c.MemMB}
	}
	return a
}

// DispatchResult is the serializable outcome of one input-aware dispatch:
// the class the analyzed input scale fell into and that class's
// pre-searched configuration.
type DispatchResult struct {
	Fingerprint string                 `json:"fingerprint"`
	Workflow    string                 `json:"workflow"`
	Method      string                 `json:"method"`
	Class       string                 `json:"class"`
	ClassScale  float64                `json:"class_scale"`
	Scale       float64                `json:"scale"`
	Assignment  map[string]ConfigValue `json:"assignment"`
}

// Stats counts the service's cache behavior since construction.
type Stats struct {
	Hits      int64 `json:"hits"`      // answered from cache, no search machinery touched
	Misses    int64 `json:"misses"`    // had to run — or wait on — a search
	Searches  int64 `json:"searches"`  // underlying searches actually run
	Evictions int64 `json:"evictions"` // entries dropped by the LRU bound
	Entries   int   `json:"entries"`   // entries currently cached
}

// Service is the long-lived serving layer. It is safe for concurrent use.
type Service struct {
	cfg    Config
	mu     sync.Mutex // guards cache
	cache  *lruCache
	flight flightGroup

	hits      atomic.Int64
	misses    atomic.Int64
	searches  atomic.Int64
	evictions atomic.Int64
}

// New builds a Service. Zero Config fields take the documented defaults.
func New(cfg Config) *Service {
	if cfg.Method == "" {
		cfg.Method = "aarc"
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	return &Service{cfg: cfg, cache: newLRUCache(cfg.CacheSize)}
}

// Methods lists the registered search methods, sorted.
func (s *Service) Methods() []string { return search.Methods() }

// Stats returns a snapshot of the cache counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	entries := s.cache.len()
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Searches:  s.searches.Load(),
		Evictions: s.evictions.Load(),
		Entries:   entries,
	}
}

// entry is one cached recommendation plus everything needed to evaluate
// against it after the search: the spec, the runner options the search
// used, and a lazily-built sharded runner pool.
type entry struct {
	rec   *Recommendation
	body  []byte // rec's JSON, served byte-identically on every hit
	spec  *workflow.Spec
	ropts workflow.RunnerOptions

	poolOnce sync.Once
	pool     *runnerPool
	poolErr  error
}

func (e *entry) runnerPool(shards int) (*runnerPool, error) {
	e.poolOnce.Do(func() {
		e.pool, e.poolErr = newRunnerPool(e.spec, e.ropts, shards)
	})
	return e.pool, e.poolErr
}

// engineEntry is one cached input-aware engine (Dispatch is read-only and
// concurrency-safe once configured).
type engineEntry struct {
	engine *inputaware.Engine
	spec   *workflow.Spec
	method string
}

// resolved folds a request into the service defaults.
type resolved struct {
	method string
	seed   uint64
	ropts  workflow.RunnerOptions
	sopts  search.Options
}

func (s *Service) resolve(spec *workflow.Spec, ro RequestOptions) resolved {
	r := resolved{method: s.cfg.Method, seed: s.cfg.Seed}
	if ro.Method != "" {
		r.method = ro.Method
	}
	if ro.Seed != nil {
		r.seed = *ro.Seed
	}
	scale := s.cfg.InputScale
	if ro.InputScale > 0 {
		scale = ro.InputScale
	}
	r.ropts = workflow.RunnerOptions{
		HostCores:  s.cfg.HostCores,
		Noise:      s.cfg.Noise,
		Seed:       r.seed,
		InputScale: scale,
	}
	sloMS := s.cfg.SLOMS
	if ro.SLOMS > 0 {
		sloMS = ro.SLOMS
	}
	if sloMS <= 0 {
		sloMS = spec.SLOMS
	}
	r.sopts = search.Options{
		SLOMS:        sloMS,
		MaxSamples:   capBudget(ro.MaxSamples, s.cfg.MaxSamples),
		MaxSimCostMS: capBudgetF(ro.MaxSimCostMS, s.cfg.MaxSimCostMS),
	}
	return r
}

// capBudget applies the server-side cap: the request may tighten the
// budget, never loosen past the cap (0 = unlimited on either side).
func capBudget(req, cap int) int {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	return req
}

func capBudgetF(req, cap float64) float64 {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	return req
}

// fingerprint builds the content-addressed cache key. classes is non-nil
// only for dispatch keys, which must not collide with configure keys for
// the same spec.
func (s *Service) fingerprint(spec *workflow.Spec, r resolved, classes []inputaware.Class) (string, error) {
	specJSON, err := workflow.CanonicalJSON(spec)
	if err != nil {
		return "", err
	}
	key := struct {
		Spec       json.RawMessage    `json:"spec"`
		Search     json.RawMessage    `json:"search"`
		Method     string             `json:"method"`
		Seed       uint64             `json:"seed"`
		HostCores  float64            `json:"host_cores"`
		Noise      bool               `json:"noise"`
		InputScale float64            `json:"input_scale"`
		Classes    []inputaware.Class `json:"classes,omitempty"`
	}{
		Spec:       specJSON,
		Search:     r.sopts.CanonicalJSON(),
		Method:     r.method,
		Seed:       r.seed,
		HostCores:  r.ropts.HostCores,
		Noise:      r.ropts.Noise,
		InputScale: r.ropts.InputScale,
		Classes:    classes,
	}
	b, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(b)), nil
}

// lookup reads the cache without touching the hit/miss counters.
func (s *Service) lookup(fp string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.get(fp)
}

// store inserts a completed entry, counting any LRU eviction.
func (s *Service) store(fp string, v any) {
	s.mu.Lock()
	_, evicted := s.cache.add(fp, v)
	s.mu.Unlock()
	if evicted {
		s.evictions.Add(1)
	}
}

// configure is the shared Configure path returning the cache entry itself.
func (s *Service) configure(ctx context.Context, spec *workflow.Spec, ro RequestOptions) (e *entry, cacheHit bool, err error) {
	if spec == nil {
		return nil, false, errors.New("service: Configure with nil spec")
	}
	r := s.resolve(spec, ro)
	fp, err := s.fingerprint(spec, r, nil)
	if err != nil {
		return nil, false, err
	}
	if v, ok := s.lookup(fp); ok {
		e, ok := v.(*entry)
		if !ok {
			return nil, false, fmt.Errorf("service: fingerprint %s is a dispatch engine, not a recommendation", fp)
		}
		s.hits.Add(1)
		return e, true, nil
	}
	s.misses.Add(1)
	v, err, _ := s.flight.do(ctx, fp, func() (any, error) {
		// Re-check under singleflight: the previous leader may have filled
		// the cache between this caller's miss and its turn as leader.
		if v, ok := s.lookup(fp); ok {
			return v, nil
		}
		e, err := s.runSearch(ctx, fp, spec, r)
		if err != nil {
			return nil, err
		}
		s.store(fp, e)
		return e, nil
	})
	if err != nil {
		return nil, false, err
	}
	e, ok := v.(*entry)
	if !ok {
		return nil, false, fmt.Errorf("service: fingerprint %s is a dispatch engine, not a recommendation", fp)
	}
	return e, false, nil
}

// Configure returns the recommendation for (spec, options), searching at
// most once per fingerprint: concurrent callers with the same fingerprint
// share one search via singleflight, and later callers hit the cache
// without constructing a Runner or Searcher. cacheHit reports whether this
// call was answered from the cache (false for the singleflight leader and
// the followers that waited on it).
//
// The service retains spec (for the entry's lazily-built runner pool), so
// — as with NewRunner — the caller must not mutate it afterwards. The
// HTTP layer decodes a fresh spec per request and is unaffected.
func (s *Service) Configure(ctx context.Context, spec *workflow.Spec, ro RequestOptions) (rec *Recommendation, cacheHit bool, err error) {
	e, hit, err := s.configure(ctx, spec, ro)
	if err != nil {
		return nil, hit, err
	}
	return e.rec, hit, nil
}

// ConfigureJSON is Configure returning the entry's cached deterministic
// JSON encoding: every response for one fingerprint — leader, follower or
// hit — is byte-identical. Callers must not mutate the returned slice.
func (s *Service) ConfigureJSON(ctx context.Context, spec *workflow.Spec, ro RequestOptions) (body []byte, cacheHit bool, err error) {
	e, hit, err := s.configure(ctx, spec, ro)
	if err != nil {
		return nil, hit, err
	}
	return e.body, hit, nil
}

// runSearch performs one search and builds its cache entry. It runs
// detached from the client's context (see the package comment).
func (s *Service) runSearch(ctx context.Context, fp string, spec *workflow.Spec, r resolved) (*entry, error) {
	searcher, err := search.New(r.method, r.seed)
	if err != nil {
		return nil, err
	}
	runner, err := workflow.NewRunner(spec, r.ropts)
	if err != nil {
		return nil, err
	}
	s.searches.Add(1)
	out, err := searcher.Search(context.WithoutCancel(ctx), runner, r.sopts)
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{
		Fingerprint:     fp,
		Workflow:        spec.Name,
		Method:          searcher.Name(),
		SLOMS:           r.sopts.SLOMS,
		Assignment:      wireAssignment(out.Best),
		Samples:         out.Trace.Len(),
		SearchRuntimeMS: out.Trace.TotalRuntimeMS(),
		SearchCost:      out.Trace.TotalCost(),
		Final: FinalResult{
			E2EMS: out.Final.E2EMS,
			Cost:  out.Final.Cost,
			OOM:   out.Final.OOM,
		},
		SLOCompliant: out.Final.E2EMS > 0 && !out.Final.OOM && out.Final.E2EMS <= r.sopts.SLOMS,
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return &entry{rec: rec, body: body, spec: spec, ropts: r.ropts}, nil
}

// Dispatch is the §IV-D online engine over the cache: it configures (or
// reuses) one search per input class, classifies the request's analyzed
// input scale, and returns that class's configuration. classes defaults to
// the paper's Video Analysis classes when empty.
func (s *Service) Dispatch(ctx context.Context, spec *workflow.Spec, classes []inputaware.Class, scale float64, ro RequestOptions) (res *DispatchResult, cacheHit bool, err error) {
	if spec == nil {
		return nil, false, errors.New("service: Dispatch with nil spec")
	}
	if scale <= 0 {
		return nil, false, fmt.Errorf("service: Dispatch with non-positive input scale %v", scale)
	}
	if len(classes) == 0 {
		classes = inputaware.DefaultVideoClasses()
	}
	sorted := append([]inputaware.Class(nil), classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Scale < sorted[j].Scale })

	r := s.resolve(spec, ro)
	fp, err := s.fingerprint(spec, r, sorted)
	if err != nil {
		return nil, false, err
	}
	var v any
	if cached, ok := s.lookup(fp); ok {
		s.hits.Add(1)
		v, cacheHit = cached, true
	} else {
		s.misses.Add(1)
		v, err, _ = s.flight.do(ctx, fp, func() (any, error) {
			if v, ok := s.lookup(fp); ok {
				return v, nil
			}
			searcher, err := search.New(r.method, r.seed)
			if err != nil {
				return nil, err
			}
			engine, err := inputaware.Configure(context.WithoutCancel(ctx), spec, r.ropts, searcher, r.sopts, sorted)
			if err != nil {
				return nil, err
			}
			s.searches.Add(int64(len(sorted)))
			e := &engineEntry{engine: engine, spec: spec, method: searcher.Name()}
			s.store(fp, e)
			return e, nil
		})
		if err != nil {
			return nil, false, err
		}
	}
	ee, ok := v.(*engineEntry)
	if !ok {
		return nil, false, fmt.Errorf("service: fingerprint %s is a recommendation, not a dispatch engine", fp)
	}
	cls, a := ee.engine.Dispatch(inputaware.Request{Scale: scale})
	return &DispatchResult{
		Fingerprint: fp,
		Workflow:    ee.spec.Name,
		Method:      ee.method,
		Class:       cls.Name,
		ClassScale:  cls.Scale,
		Scale:       scale,
		Assignment:  wireAssignment(a),
	}, cacheHit, nil
}

// ErrUnknownFingerprint is returned by Evaluate/Validate when the
// fingerprint has no cached entry (never configured here, or evicted).
var ErrUnknownFingerprint = errors.New("service: unknown fingerprint (not configured or evicted)")

// MaxEvaluateRuns bounds one Evaluate/Validate call (and therefore one
// /v1/evaluate request): evaluation is synchronous simulator work, so an
// unbounded client-controlled count would let a single request pin the
// daemon.
const MaxEvaluateRuns = 1024

// ErrTooManyRuns is returned when an Evaluate/Validate run count exceeds
// MaxEvaluateRuns.
var ErrTooManyRuns = fmt.Errorf("service: runs exceed the per-request bound %d", MaxEvaluateRuns)

// Evaluate runs the workflow behind a configured fingerprint n times under
// an arbitrary assignment (what-if probing), on the entry's sharded runner
// pool. A nil assignment evaluates the cached recommendation itself.
func (s *Service) Evaluate(fp string, a resources.Assignment, n int) ([]search.Result, error) {
	if n <= 0 {
		n = 1
	}
	if n > MaxEvaluateRuns {
		return nil, ErrTooManyRuns
	}
	v, ok := s.lookup(fp)
	if !ok {
		return nil, ErrUnknownFingerprint
	}
	e, ok := v.(*entry)
	if !ok {
		return nil, fmt.Errorf("service: fingerprint %s is a dispatch engine, not a recommendation", fp)
	}
	pool, err := e.runnerPool(s.cfg.Shards)
	if err != nil {
		return nil, err
	}
	if a == nil {
		a = e.rec.ResourceAssignment()
	}
	out := make([]search.Result, 0, n)
	for i := 0; i < n; i++ {
		res, err := pool.evaluate(a)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// Validate re-executes a fingerprint's recommended assignment n times on
// the sharded pool and returns the per-run results. Unlike
// Recommendation.Validate on the facade (which continues the search's own
// RNG stream), the pool's runners are independently seeded per shard: this
// is fresh-measurement statistics, not a continuation of the search.
func (s *Service) Validate(fp string, n int) ([]search.Result, error) {
	return s.Evaluate(fp, nil, n)
}

func wireAssignment(a resources.Assignment) map[string]ConfigValue {
	out := make(map[string]ConfigValue, len(a))
	for g, c := range a {
		out[g] = ConfigValue{CPU: c.CPU, MemMB: c.MemMB}
	}
	return out
}
