// Package service is the long-lived serving layer over the configuration
// searchers: the §IV-D online engine shape — dispatch incoming work to
// pre-searched configurations — generalized to every workflow.
//
// A Service owns four things:
//
//   - a content-addressed identity for work: the cache key is a SHA-256
//     over the spec's canonical JSON (workflow.CanonicalJSON), the search
//     options' canonical JSON (search.Options.CanonicalJSON) and the
//     engine identity (method, the method's registered implementation
//     version, seed, host cores, noise, input scale, and — for dispatch —
//     the input classes), so byte-different requests that describe the
//     same search share one entry, and bumping a method's version orphans
//     every stale recommendation it ever produced;
//   - a pluggable recommendation Store (internal/store) behind
//     singleflight admission: N concurrent requests for the same key run
//     exactly one search, and a store hit answers without constructing a
//     Runner or Searcher at all. The store holds serialized bytes plus
//     enough metadata (canonical spec, runner options) that a different
//     process — via the disk store — can serve and even evaluate entries
//     it never searched;
//   - a fingerprint-addressed fast path: clients that remember their
//     fingerprint call RecommendationJSON (GET /v1/recommendation/{fp})
//     and skip spec decoding, canonicalization and hashing entirely;
//     Invalidate (DELETE) is the explicit eviction door;
//   - a sharded runner pool per configured fingerprint for the
//     post-configuration hot path (Validate / Evaluate): Runners are not
//     concurrency-safe (one-runner-per-goroutine rule, DESIGN.md §3), so
//     the pool holds one independently-seeded Runner per shard behind its
//     own mutex. Pools are process-private runtime state, rebuilt on
//     demand from the store's metadata after a restart.
//
// Searches run detached from the requesting client's context
// (context.WithoutCancel): a shared cache entry must not be poisoned by
// whichever client happens to disconnect first. Bound server-side work
// with Config.MaxSamples / MaxSimCostMS instead; a budget-exhausted search
// is a normal stop and its partial recommendation is cached like any
// other. Failed searches never reach the store — no tier sees a write —
// so the next request retries.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aarc/internal/drift"
	"aarc/internal/event"
	"aarc/internal/experiments"
	"aarc/internal/inputaware"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/store"
	"aarc/internal/workflow"
)

// Config sets a Service's defaults. Per-request values (RequestOptions)
// override Method, Seed, SLOMS and InputScale; MaxSamples and MaxSimCostMS
// act as server-side caps — a request may tighten a budget, never loosen
// it past the cap.
type Config struct {
	Method       string  // search method; default "aarc"
	Seed         uint64  // simulator+searcher seed; default 42
	HostCores    float64 // host CPU capacity; 0 disables contention
	Noise        bool    // measurement noise on the simulated testbed
	InputScale   float64 // default input scale; 0 means 1.0
	SLOMS        float64 // default SLO override; 0 keeps each spec's SLO
	MaxSamples   int     // server-side sample cap per search; 0 = unlimited
	MaxSimCostMS float64 // server-side simulated-time cap per search; 0 = unlimited
	CacheSize    int     // max in-memory entries; default 128
	Shards       int     // runners per fingerprint's pool; default GOMAXPROCS

	// BatchWorkers bounds how many searches one batched configure run
	// (ConfigureBatch, or a drained coalescing window) executes
	// concurrently; 0 selects GOMAXPROCS.
	BatchWorkers int
	// BatchWindow, when positive, coalesces singleton Configure misses:
	// the first miss waits up to this long for other distinct misses and
	// the whole queue drains into one pooled batch run, amortizing worker
	// startup across the burst. Zero (the default) keeps the classic
	// search-per-miss path. Cache hits never wait on the window.
	BatchWindow time.Duration

	// SearchTimeout, when positive, is the server-side deadline applied
	// to every detached leader search: a search that has not returned by
	// then releases its singleflight claim with a timeout error — served
	// to the leader and every follower, never cached — instead of
	// holding the flight slot forever. A cooperative searcher observes
	// the deadline through its context; a truly wedged one leaks its
	// goroutine but neither its flight nor its admission slot.
	SearchTimeout time.Duration
	// MaxConcurrentSearches, when positive, caps how many cold searches
	// run at once across the whole service. A singleton miss that cannot
	// get a slot is shed fail-fast (ErrOverloaded — HTTP 429 with
	// Retry-After) when its context carries no deadline, or waits for a
	// slot until that deadline otherwise. Batched and coalesced runs
	// wait for slots (their concurrency is already bounded by the batch
	// pool). Zero disables the cap.
	MaxConcurrentSearches int

	// BreakerThreshold and BreakerCooldown tune the circuit breaker
	// wrapped around the disk tier of a CacheDir store: Threshold
	// consecutive disk failures open it (fail-fast, memory-only
	// serving), and after Cooldown a single probe op decides between
	// closing it and re-opening. Defaults 5 and 15s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// DriftInterval, when positive, enables the recommendation lifecycle:
	// every interval a drift monitor (internal/drift) re-validates each
	// stored entry on its sharded runner pool and compares the rolling
	// p99 against DriftThreshold×SLO with hysteresis; entries that cross
	// it are re-searched in the background by RefreshWorkers workers and
	// atomically swapped in the store — old bytes serve until the swap,
	// no request ever sees a miss. Zero (the default) disables the
	// monitor and the refresher; the event bus and watch API work either
	// way.
	DriftInterval time.Duration
	// DriftThreshold is the staleness watermark as a fraction of each
	// entry's SLO (default 0.9: flag entries creeping toward the SLO
	// before they breach it).
	DriftThreshold float64
	// RefreshWorkers bounds concurrent background refreshes (default 1).
	// Refreshes always yield to foreground misses: they take admission
	// slots only when no foreground search is waiting for one.
	RefreshWorkers int

	// WatchHeartbeat is the SSE keep-alive interval of GET /v1/watch/{fp}
	// (default 15s): a comment line per interval so idle streams survive
	// proxies and dead clients are detected.
	WatchHeartbeat time.Duration
	// WatchBuffer bounds each watch subscriber's event buffer (default
	// 16). A subscriber that falls further behind loses events —
	// counted in Stats.EventsDropped — rather than blocking publishers.
	WatchBuffer int
	// EventRing bounds the bus's recent-events ring backing Last-Event-ID
	// resume (default 256).
	EventRing int

	// ChaosDiskDown, when positive (and CacheDir is set), wraps the disk
	// tier in a deterministic fault injector that fails every disk op
	// for the first ChaosDiskDown of the process's life, then recovers —
	// a built-in chaos drill that exercises the breaker open → half-open
	// → closed path end to end (aarcd -chaos-disk-down).
	ChaosDiskDown time.Duration

	// CacheDir, when set (and Store is nil), stores recommendations in a
	// tiered store: a CacheSize-bounded memory tier over a durable disk
	// tier rooted here — behind a Retry and a Breaker wrapper — warmed
	// from disk on construction. Restarts serve the previous process's
	// entries as hits.
	CacheDir string
	// Store, when non-nil, is used as-is (CacheSize, CacheDir and the
	// breaker/retry wrapping are skipped). The Service takes ownership:
	// Close closes it.
	Store store.Store
	// Breaker and Retrier, optional with a caller-built Store, let the
	// service observe (Stats, /readyz) a breaker and retry wrapper
	// inside that store. Both are set automatically for CacheDir stores.
	Breaker *store.Breaker
	Retrier *store.Retry
}

// RequestOptions carries the per-request knobs of Configure and Dispatch.
// Zero values defer to the Service's Config (a nil Seed keeps the service
// seed; 0 is a valid explicit seed).
type RequestOptions struct {
	Method       string
	Seed         *uint64
	SLOMS        float64
	MaxSamples   int
	MaxSimCostMS float64
	InputScale   float64
}

// ConfigValue is the wire form of one function's resource configuration.
type ConfigValue struct {
	CPU   float64 `json:"cpu"`
	MemMB float64 `json:"mem_mb"`
}

// FinalResult is the wire form of the search's last measurement of the
// recommended assignment.
type FinalResult struct {
	E2EMS float64 `json:"e2e_ms"`
	Cost  float64 `json:"cost"`
	OOM   bool    `json:"oom"`
}

// Recommendation is the serializable outcome of one configuration search,
// as stored and served. Its JSON encoding is deterministic (struct fields
// in declaration order, string-keyed maps sorted by key), so every
// response for one fingerprint is byte-identical — across processes, when
// the store is durable.
type Recommendation struct {
	Fingerprint     string                 `json:"fingerprint"`
	Workflow        string                 `json:"workflow"`
	Method          string                 `json:"method"`
	SLOMS           float64                `json:"slo_ms"`
	Assignment      map[string]ConfigValue `json:"assignment"`
	Samples         int                    `json:"samples"`
	SearchRuntimeMS float64                `json:"search_runtime_ms"`
	SearchCost      float64                `json:"search_cost"`
	Final           FinalResult            `json:"final"`
	SLOCompliant    bool                   `json:"slo_compliant"`
}

// ResourceAssignment converts the wire assignment back to the internal type.
func (r *Recommendation) ResourceAssignment() resources.Assignment {
	a := make(resources.Assignment, len(r.Assignment))
	for g, c := range r.Assignment {
		a[g] = resources.Config{CPU: c.CPU, MemMB: c.MemMB}
	}
	return a
}

// DispatchResult is the serializable outcome of one input-aware dispatch:
// the class the analyzed input scale fell into and that class's
// pre-searched configuration.
type DispatchResult struct {
	Fingerprint string                 `json:"fingerprint"`
	Workflow    string                 `json:"workflow"`
	Method      string                 `json:"method"`
	Class       string                 `json:"class"`
	ClassScale  float64                `json:"class_scale"`
	Scale       float64                `json:"scale"`
	Assignment  map[string]ConfigValue `json:"assignment"`
}

// Stats counts the service's cache behavior since construction.
type Stats struct {
	Hits           int64          `json:"hits"`              // answered from the store, no search machinery touched
	Misses         int64          `json:"misses"`            // had to run — or wait on — a search
	Searches       int64          `json:"searches"`          // underlying searches actually run
	Evictions      int64          `json:"evictions"`         // entries dropped by a capacity bound (store + engine cache)
	StoreErrors    int64          `json:"store_errors"`      // store reads/writes that failed and were degraded
	BatchRuns      int64          `json:"batch_runs"`        // pooled batch search runs (ConfigureBatch + drained windows)
	Coalesced      int64          `json:"coalesced"`         // singleton misses absorbed into a window's pooled run
	Retries        int64          `json:"retries"`           // store ops recovered (or attempted) by the retry tier
	ShedRequests   int64          `json:"shed_requests"`     // cold searches refused by the concurrency cap (HTTP 429)
	SearchTimeouts int64          `json:"search_timeouts"`   // searches cut off by the server-side deadline
	Panics         int64          `json:"panics"`            // handler panics recovered into 500s
	DriftChecks    int64          `json:"drift_checks"`      // drift-monitor probes performed
	Refreshes      int64          `json:"refreshes"`         // background re-searches swapped into the store
	RefreshFails   int64          `json:"refresh_failures"`  // background re-searches that errored (old entry kept)
	WatchSubs      int64          `json:"watch_subscribers"` // live watch subscriptions (SSE streams + facade Watch)
	EventsDropped  int64          `json:"events_dropped"`    // events lost to slow subscribers' full buffers
	BreakerState   string         `json:"breaker_state"`     // closed | open | half-open, or none without a breaker
	Entries        int            `json:"entries"`           // recommendations currently stored
	Engines        int            `json:"engines"`           // dispatch engines currently cached (process-private)
	Store          string         `json:"store"`             // store kind: memory, disk, tiered, custom
	Tiers          map[string]int `json:"tiers"`             // per-tier entry counts
}

// Service is the long-lived serving layer. It is safe for concurrent use.
type Service struct {
	cfg    Config
	st     store.Store
	flight flightGroup
	batch  *experiments.Pool // bounds concurrent searches per batched run
	coal   *coalescer        // non-nil only when Config.BatchWindow > 0

	sem     chan struct{}  // MaxConcurrentSearches slots; nil = uncapped
	breaker *store.Breaker // disk-tier breaker; nil without one
	retrier *store.Retry   // disk-tier retry wrapper; nil without one

	bus     *event.Bus     // change notifications; publishes on every store mutation
	monitor *drift.Monitor // nil unless DriftInterval > 0

	lifecycleCancel context.CancelFunc // stops the monitor and refresh workers
	lifecycleWG     sync.WaitGroup

	refreshMu  sync.Mutex
	refreshing map[string]struct{} // fingerprints mid-refresh: their Puts publish "refreshed"

	mu      sync.Mutex
	pools   *lruCache // fingerprint -> *entry (process-private runner pools)
	engines *lruCache // dispatch fingerprint -> *engineEntry (not stored)

	draining atomic.Bool // BeginDrain/Close flipped; /readyz turns 503

	searchWaiters atomic.Int64 // foreground misses blocked on an admission slot

	hits           atomic.Int64
	misses         atomic.Int64
	searches       atomic.Int64
	evictions      atomic.Int64
	storeErrs      atomic.Int64
	batchRuns      atomic.Int64
	coalesced      atomic.Int64
	shedRequests   atomic.Int64
	searchTimeouts atomic.Int64
	panics         atomic.Int64
	refreshes      atomic.Int64
	refreshFails   atomic.Int64
	watchSubs      atomic.Int64
}

// New builds a Service. Zero Config fields take the documented defaults;
// the error is the backing store's (a memory-only service cannot fail).
func New(cfg Config) (*Service, error) {
	if cfg.Method == "" {
		cfg.Method = "aarc"
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 128
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 15 * time.Second
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 0.9
	}
	if cfg.RefreshWorkers <= 0 {
		cfg.RefreshWorkers = 1
	}
	if cfg.WatchHeartbeat <= 0 {
		cfg.WatchHeartbeat = 15 * time.Second
	}
	if cfg.WatchBuffer <= 0 {
		cfg.WatchBuffer = 16
	}
	if cfg.EventRing <= 0 {
		cfg.EventRing = 256
	}
	st := cfg.Store
	breaker, retrier := cfg.Breaker, cfg.Retrier
	if st == nil {
		if cfg.CacheDir != "" {
			disk, err := store.OpenDisk(cfg.CacheDir)
			if err != nil {
				return nil, err
			}
			// The resilient disk stack: breaker over retry over the raw
			// tier. Transient errors are absorbed by bounded retries; a
			// dead disk opens the breaker and the tiered store above
			// degrades to memory-only serving — no syscall per request.
			var slow store.Store = disk
			if cfg.ChaosDiskDown > 0 {
				chaos := store.NewFaulty(slow, store.FaultConfig{})
				chaos.FailFor(cfg.ChaosDiskDown)
				slow = chaos
			}
			retrier = store.NewRetry(slow, store.RetryConfig{})
			breaker = store.NewBreaker(retrier, store.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
				Logf:      log.Printf,
			})
			tiered := store.NewTiered(store.NewMemory(cfg.CacheSize), breaker)
			tiered.Warm(cfg.CacheSize)
			st = tiered
		} else {
			st = store.NewMemory(cfg.CacheSize)
		}
	}
	s := &Service{
		cfg:        cfg,
		breaker:    breaker,
		retrier:    retrier,
		batch:      experiments.NewPool(cfg.BatchWorkers),
		pools:      newLRUCache(cfg.CacheSize),
		engines:    newLRUCache(cfg.CacheSize),
		bus:        event.NewBus(cfg.EventRing),
		refreshing: make(map[string]struct{}),
	}
	// Outermost store layer: change notifications. Warm-loaded entries
	// (above, before the wrap) don't publish — only live mutations do.
	s.st = store.NewNotify(st, s.storeEvent)
	if cfg.MaxConcurrentSearches > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrentSearches)
	}
	if cfg.BatchWindow > 0 {
		s.coal = &coalescer{s: s, window: cfg.BatchWindow}
	}
	if cfg.DriftInterval > 0 {
		// The lifecycle context is the service's own root: drift sweeps
		// and refresh workers live until Close, not until any request.
		ctx, cancel := context.WithCancel(context.Background()) //aarc:detached lifecycle root; Close cancels it
		s.lifecycleCancel = cancel
		s.monitor = drift.New(lifecycleProber{s}, drift.Config{
			Interval:  cfg.DriftInterval,
			Threshold: cfg.DriftThreshold,
		})
		s.lifecycleWG.Add(1)
		go func() {
			defer s.lifecycleWG.Done()
			s.monitor.Run(ctx)
		}()
		for i := 0; i < cfg.RefreshWorkers; i++ {
			s.lifecycleWG.Add(1)
			go func() {
				defer s.lifecycleWG.Done()
				s.refreshLoop(ctx)
			}()
		}
	}
	return s, nil
}

// Close releases the backing store (flushing nothing: durable tiers are
// written through at Put time, so shutdown has no persistence step) and
// shuts the miss coalescer, failing any flights still parked in an
// unfired window so no search starts against the closed store. The
// lifecycle goroutines — drift monitor and refresh workers — are
// cancelled and joined first, so no background re-search races the
// store's close; the event bus closes last, terminating every watch
// subscription.
func (s *Service) Close() error {
	s.draining.Store(true)
	if s.lifecycleCancel != nil {
		s.lifecycleCancel()
		s.lifecycleWG.Wait()
	}
	if s.coal != nil {
		s.coal.close()
	}
	err := s.st.Close()
	s.bus.Close()
	return err
}

// BeginDrain marks the service as shutting down: Ready turns false and
// /readyz answers 503 so load balancers stop routing new traffic, while
// in-flight and late-arriving requests are still served normally. It is
// the first step of a graceful shutdown, before http.Server.Shutdown.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Ready reports whether the service should receive new traffic, with a
// human-readable reason when it should not: false while draining
// (shutdown in progress) and while the disk-tier breaker is open (the
// service still serves — memory-only — but is degraded and a balancer
// with healthy peers should prefer them).
func (s *Service) Ready() (ok bool, reason string) {
	if s.draining.Load() {
		return false, "draining"
	}
	if s.breaker != nil && s.breaker.State() == store.BreakerOpen {
		return false, "store breaker open"
	}
	return true, ""
}

// BreakerState names the disk-tier breaker's current state ("closed",
// "open", "half-open"), or "none" when the store has no breaker (memory-
// only services, caller-built stores without Config.Breaker).
func (s *Service) BreakerState() string {
	if s.breaker == nil {
		return "none"
	}
	return s.breaker.State().String()
}

// Methods lists the registered search methods, sorted.
func (s *Service) Methods() []string { return search.Methods() }

// Stats returns a snapshot of the cache counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	engines := s.engines.len()
	s.mu.Unlock()
	ss := store.StatsOf(s.st)
	var retries int64
	if s.retrier != nil {
		retries = s.retrier.Retries()
	}
	var driftChecks int64
	if s.monitor != nil {
		driftChecks = s.monitor.Checks()
	}
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Searches:       s.searches.Load(),
		Evictions:      s.evictions.Load() + ss.Evictions,
		StoreErrors:    s.storeErrs.Load(),
		BatchRuns:      s.batchRuns.Load(),
		Coalesced:      s.coalesced.Load(),
		Retries:        retries,
		ShedRequests:   s.shedRequests.Load(),
		SearchTimeouts: s.searchTimeouts.Load(),
		Panics:         s.panics.Load(),
		DriftChecks:    driftChecks,
		Refreshes:      s.refreshes.Load(),
		RefreshFails:   s.refreshFails.Load(),
		WatchSubs:      s.watchSubs.Load(),
		EventsDropped:  s.bus.Dropped(),
		BreakerState:   s.BreakerState(),
		Entries:        s.st.Len(),
		Engines:        engines,
		Store:          ss.Kind,
		Tiers:          ss.Tiers,
	}
}

// ErrOverloaded is returned when a cold search is shed by the
// MaxConcurrentSearches cap: every slot is busy and the request carries
// no deadline worth waiting under. The HTTP layer maps it to 429 with a
// Retry-After header.
var ErrOverloaded = errors.New("service: too many concurrent searches, retry later")

// acquireSearch takes a cold-search admission slot. With no cap it is
// free. With a cap, the fast path is a non-blocking acquire; when the
// service is saturated the behavior splits on shed:
//
//   - shed=true (the singleton miss path): a request without a context
//     deadline is refused immediately with ErrOverloaded — fail-fast
//     beats queueing unbounded work behind a slow burst — while a
//     request that brought a deadline waits for a slot until then;
//   - shed=false (batch and coalescer runs, whose concurrency the batch
//     pool already bounds): wait for a slot, honoring ctx cancellation.
func (s *Service) acquireSearch(ctx context.Context, shed bool) error {
	if s.sem == nil {
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if shed {
		if _, ok := ctx.Deadline(); !ok {
			s.shedRequests.Add(1)
			return ErrOverloaded
		}
	}
	// Count the blocked wait: background refreshes poll this gauge and
	// yield their slots whenever a foreground miss is queued here.
	s.searchWaiters.Add(1)
	defer s.searchWaiters.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.shedRequests.Add(1)
		return ErrOverloaded
	}
}

// releaseSearch returns an admission slot taken by acquireSearch.
func (s *Service) releaseSearch() {
	if s.sem != nil {
		<-s.sem
	}
}

// RetryAfterSeconds is the Retry-After hint served with a 429: one
// search deadline's worth of seconds (rounded up), or 1 when no
// deadline is configured.
func (s *Service) RetryAfterSeconds() int {
	if s.cfg.SearchTimeout <= 0 {
		return 1
	}
	secs := int(math.Ceil(s.cfg.SearchTimeout.Seconds()))
	if secs < 1 {
		return 1
	}
	return secs
}

// entryMeta is the sidecar persisted with every stored recommendation:
// everything a process needs to rebuild an evaluation runner pool for a
// fingerprint it never searched itself, plus — since the lifecycle
// subsystem — the full search identity, so a background refresh can
// re-run the exact search that produced the entry. The search-identity
// fields are omitempty: entries persisted by older processes decode with
// them zero and the refresher falls back to the recommendation body
// (method, SLO) and the service caps (budgets).
type entryMeta struct {
	Spec       json.RawMessage `json:"spec"` // canonical spec JSON
	HostCores  float64         `json:"host_cores"`
	Noise      bool            `json:"noise"`
	Seed       uint64          `json:"seed"`
	InputScale float64         `json:"input_scale"`

	Method        string  `json:"method,omitempty"` // registry name, not display name
	MethodVersion int     `json:"method_version,omitempty"`
	SLOMS         float64 `json:"slo_ms,omitempty"`
	MaxSamples    int     `json:"max_samples,omitempty"`
	MaxSimCostMS  float64 `json:"max_sim_cost_ms,omitempty"`
	CreatedUnixMS int64   `json:"created_unix_ms,omitempty"`
}

func (m entryMeta) runnerOptions() workflow.RunnerOptions {
	return workflow.RunnerOptions{
		HostCores:  m.HostCores,
		Noise:      m.Noise,
		Seed:       m.Seed,
		InputScale: m.InputScale,
	}
}

// entry is the process-private runtime state behind one configured
// fingerprint: the decoded recommendation plus a lazily-built sharded
// runner pool. It is rebuilt from the store's entryMeta when absent
// (after a restart, a pool-cache eviction, or a cross-process share).
type entry struct {
	rec   *Recommendation
	spec  *workflow.Spec
	ropts workflow.RunnerOptions
	meta  entryMeta // persisted sidecar; the refresher's search identity

	poolOnce sync.Once
	pool     *runnerPool
	poolErr  error
}

func (e *entry) runnerPool(shards int) (*runnerPool, error) {
	e.poolOnce.Do(func() {
		e.pool, e.poolErr = newRunnerPool(e.spec, e.ropts, shards)
	})
	return e.pool, e.poolErr
}

// engineEntry is one cached input-aware engine (Dispatch is read-only and
// concurrency-safe once configured). Engines hold live searched state per
// class and are not serialized to the store: they are process-private and
// re-searched after eviction or restart.
type engineEntry struct {
	engine *inputaware.Engine
	spec   *workflow.Spec
	method string
}

// resolved folds a request into the service defaults.
type resolved struct {
	method  string
	version int // the method's registered implementation version
	seed    uint64
	ropts   workflow.RunnerOptions
	sopts   search.Options
}

func (s *Service) resolve(spec *workflow.Spec, ro RequestOptions) (resolved, error) {
	r := resolved{method: s.cfg.Method, seed: s.cfg.Seed}
	if ro.Method != "" {
		r.method = ro.Method
	}
	version, err := search.Version(r.method)
	if err != nil {
		return resolved{}, err
	}
	r.version = version
	if ro.Seed != nil {
		r.seed = *ro.Seed
	}
	scale := s.cfg.InputScale
	if ro.InputScale > 0 {
		scale = ro.InputScale
	}
	r.ropts = workflow.RunnerOptions{
		HostCores:  s.cfg.HostCores,
		Noise:      s.cfg.Noise,
		Seed:       r.seed,
		InputScale: scale,
	}
	sloMS := s.cfg.SLOMS
	if ro.SLOMS > 0 {
		sloMS = ro.SLOMS
	}
	if sloMS <= 0 {
		sloMS = spec.SLOMS
	}
	r.sopts = search.Options{
		SLOMS:        sloMS,
		MaxSamples:   capBudget(ro.MaxSamples, s.cfg.MaxSamples),
		MaxSimCostMS: capBudgetF(ro.MaxSimCostMS, s.cfg.MaxSimCostMS),
	}
	return r, nil
}

// capBudget applies the server-side cap: the request may tighten the
// budget, never loosen past the cap (0 = unlimited on either side).
func capBudget(req, cap int) int {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	return req
}

func capBudgetF(req, cap float64) float64 {
	if cap > 0 && (req <= 0 || req > cap) {
		return cap
	}
	return req
}

// fingerprint builds the content-addressed cache key. classes is non-nil
// only for dispatch keys, which must not collide with configure keys for
// the same spec. The method's implementation version is part of the key:
// bumping a method's registered version changes every fingerprint it
// produces, so stale entries — including persisted ones — are simply
// never addressed again.
func (s *Service) fingerprint(spec *workflow.Spec, r resolved, classes []inputaware.Class) (string, error) {
	specJSON, err := workflow.CanonicalJSON(spec)
	if err != nil {
		return "", err
	}
	key := struct {
		Spec          json.RawMessage    `json:"spec"`
		Search        json.RawMessage    `json:"search"`
		Method        string             `json:"method"`
		MethodVersion int                `json:"method_version"`
		Seed          uint64             `json:"seed"`
		HostCores     float64            `json:"host_cores"`
		Noise         bool               `json:"noise"`
		InputScale    float64            `json:"input_scale"`
		Classes       []inputaware.Class `json:"classes,omitempty"`
	}{
		Spec:          specJSON,
		Search:        r.sopts.CanonicalJSON(),
		Method:        r.method,
		MethodVersion: r.version,
		Seed:          r.seed,
		HostCores:     r.ropts.HostCores,
		Noise:         r.ropts.Noise,
		InputScale:    r.ropts.InputScale,
		Classes:       classes,
	}
	b, err := json.Marshal(key)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(b)), nil
}

// getStore reads the store, degrading store errors to misses (a broken
// tier must not take serving down — the search path still works).
//
//aarc:hotpath
func (s *Service) getStore(fp string) (store.Entry, bool) {
	e, ok, err := s.st.Get(fp)
	if err != nil {
		s.storeErrs.Add(1)
		return store.Entry{}, false
	}
	return e, ok
}

// putStore persists a completed search. Write failures are degraded to a
// counter: the recommendation was computed and is served regardless.
func (s *Service) putStore(fp string, e store.Entry) {
	if err := s.st.Put(fp, e); err != nil {
		s.storeErrs.Add(1)
	}
}

// putPool stashes a fingerprint's runtime entry, bounded by CacheSize.
func (s *Service) putPool(fp string, e *entry) {
	s.mu.Lock()
	s.pools.add(fp, e)
	s.mu.Unlock()
}

// configure is the shared Configure path returning the served bytes and
// the fingerprint they live under.
func (s *Service) configure(ctx context.Context, spec *workflow.Spec, ro RequestOptions) (fp string, body []byte, cacheHit bool, err error) {
	if spec == nil {
		return "", nil, false, errors.New("service: Configure with nil spec")
	}
	r, err := s.resolve(spec, ro)
	if err != nil {
		return "", nil, false, err
	}
	fp, err = s.fingerprint(spec, r, nil)
	if err != nil {
		return "", nil, false, err
	}
	if se, ok := s.getStore(fp); ok {
		s.hits.Add(1)
		return fp, se.Body, true, nil
	}
	s.misses.Add(1)
	c, leader := s.flight.claim(fp)
	if !leader {
		// Another caller — a singleton leader, a batch item, or a queued
		// coalescer miss — is already searching this fingerprint: wait for
		// its result.
		body, err = s.flightResult(ctx, c)
		return fp, body, false, err
	}
	if s.coal != nil {
		// Window coalescing: park the claimed miss with the coalescer,
		// which drains the queue into one pooled batch run, then wait on
		// our own flight like a follower. The coalescer owns finishing the
		// flight (its run recovers panics), so no abandon is deferred here.
		s.coal.enqueue(&pendingSearch{fp: fp, c: c, spec: spec, r: r})
		body, err = s.flightResult(ctx, c)
		return fp, body, false, err
	}
	// Classic path: this caller is the leader and searches inline. Abandon
	// is deferred so a panic publishes a sentinel error to followers (see
	// flightGroup) instead of an unset result.
	defer s.flight.abandon(fp, c)
	body, err = s.searchMiss(ctx, fp, spec, r, true)
	s.flight.finish(fp, c, body, err)
	if err != nil {
		return fp, nil, false, err
	}
	return fp, body, false, nil
}

// flightResult waits on an in-flight call and narrows its value to the
// served bytes.
func (s *Service) flightResult(ctx context.Context, c *flightCall) ([]byte, error) {
	v, err := s.flight.wait(ctx, c)
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// searchMiss is the miss path behind an owned flight claim: re-check the
// store (a previous leader may have filled it between this caller's miss
// and its claim), take an admission slot, search, persist, stash the
// runtime entry. shed selects the saturation policy (see acquireSearch).
// Failed searches — including shed and timed-out ones — are never
// written to any tier: the store stays untouched and the next request
// retries.
func (s *Service) searchMiss(ctx context.Context, fp string, spec *workflow.Spec, r resolved, shed bool) ([]byte, error) {
	if se, ok := s.getStore(fp); ok {
		return se.Body, nil
	}
	if err := s.acquireSearch(ctx, shed); err != nil {
		return nil, err
	}
	defer s.releaseSearch()
	// Detach from the client's context here — not in runSearch — so the
	// background refresher can pass its own cancellable lifecycle context
	// to the same search machinery.
	e, se, err := s.runSearch(context.WithoutCancel(ctx), fp, spec, r) //aarc:detached shared cache entry must not be poisoned by one client's disconnect
	if err != nil {
		return nil, err
	}
	s.putStore(fp, se)
	s.putPool(fp, e)
	return se.Body, nil
}

// Configure returns the recommendation for (spec, options), searching at
// most once per fingerprint: concurrent callers with the same fingerprint
// share one search via singleflight, and later callers hit the store
// without constructing a Runner or Searcher. cacheHit reports whether this
// call was answered from the store (false for the singleflight leader and
// the followers that waited on it).
//
// The service retains spec (for the fingerprint's lazily-built runner
// pool), so — as with NewRunner — the caller must not mutate it
// afterwards. The HTTP layer decodes a fresh spec per request and is
// unaffected.
func (s *Service) Configure(ctx context.Context, spec *workflow.Spec, ro RequestOptions) (rec *Recommendation, cacheHit bool, err error) {
	fp, body, hit, err := s.configure(ctx, spec, ro)
	if err != nil {
		return nil, hit, err
	}
	// The leader stashed its decoded entry in the pools cache; hits in
	// the same process reuse it rather than re-decoding the body.
	s.mu.Lock()
	v, ok := s.pools.get(fp)
	s.mu.Unlock()
	if ok {
		return v.(*entry).rec, hit, nil
	}
	rec = new(Recommendation)
	if err := json.Unmarshal(body, rec); err != nil {
		return nil, hit, fmt.Errorf("service: decoding stored recommendation: %w", err)
	}
	return rec, hit, nil
}

// ConfigureJSON is Configure returning the stored deterministic JSON
// encoding: every response for one fingerprint — leader, follower or hit,
// this process or a restarted one — is byte-identical. Callers must not
// mutate the returned slice.
func (s *Service) ConfigureJSON(ctx context.Context, spec *workflow.Spec, ro RequestOptions) (body []byte, cacheHit bool, err error) {
	_, body, cacheHit, err = s.configure(ctx, spec, ro)
	return body, cacheHit, err
}

// RecommendationJSON is the fingerprint-addressed fast path: the stored
// bytes for an already-configured fingerprint, skipping spec decoding,
// canonicalization and hashing entirely. It returns ErrUnknownFingerprint
// when the store has no entry (never configured, evicted, or invalidated);
// it never starts a search. Callers must not mutate the returned slice.
//
// The chain down to the memory tier is pinned alloc-free: hotalloc
// checks it statically (interface hops re-rooted at each Store
// implementation's own marker) and hotpath_alloc_test.go pins it at
// runtime with testing.AllocsPerRun.
//
//aarc:hotpath
func (s *Service) RecommendationJSON(fp string) ([]byte, error) {
	se, ok := s.getStore(fp)
	if !ok {
		return nil, ErrUnknownFingerprint
	}
	s.hits.Add(1)
	return se.Body, nil
}

// Invalidate removes a fingerprint from every store tier and drops its
// runner pool; existed reports whether there was an entry to remove. The
// next Configure for the same content re-searches. Existence is checked
// against the key index (Keys), not Get: a tiered Get would read the
// whole body off disk and promote it into memory just to delete it. An
// absent fingerprint skips the Delete entirely, so no "invalidated"
// event is published for an entry that was never there.
func (s *Service) Invalidate(fp string) (existed bool, err error) {
	for _, k := range s.st.Keys() {
		if k == fp {
			existed = true
			break
		}
	}
	if !existed {
		return false, nil
	}
	if err := s.st.Delete(fp); err != nil {
		s.storeErrs.Add(1)
		return existed, err
	}
	s.mu.Lock()
	s.pools.remove(fp)
	s.mu.Unlock()
	return existed, nil
}

// runSearch performs one search and builds both the runtime entry and the
// storable form. It runs detached from the client's context (see the
// package comment). Nothing is written to the store here: persisting is
// the caller's step, taken only on success.
func (s *Service) runSearch(ctx context.Context, fp string, spec *workflow.Spec, r resolved) (*entry, store.Entry, error) {
	searcher, err := search.New(r.method, r.seed)
	if err != nil {
		return nil, store.Entry{}, err
	}
	runner, err := workflow.NewRunner(spec, r.ropts)
	if err != nil {
		return nil, store.Entry{}, err
	}
	s.searches.Add(1)
	out, err := s.runSearcher(ctx, searcher, runner, r.sopts)
	if err != nil {
		return nil, store.Entry{}, err
	}
	rec := &Recommendation{
		Fingerprint:     fp,
		Workflow:        spec.Name,
		Method:          searcher.Name(),
		SLOMS:           r.sopts.SLOMS,
		Assignment:      wireAssignment(out.Best),
		Samples:         out.Trace.Len(),
		SearchRuntimeMS: out.Trace.TotalRuntimeMS(),
		SearchCost:      out.Trace.TotalCost(),
		Final: FinalResult{
			E2EMS: out.Final.E2EMS,
			Cost:  out.Final.Cost,
			OOM:   out.Final.OOM,
		},
		SLOCompliant: out.Final.E2EMS > 0 && !out.Final.OOM && out.Final.E2EMS <= r.sopts.SLOMS,
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, store.Entry{}, err
	}
	specJSON, err := workflow.CanonicalJSON(spec)
	if err != nil {
		return nil, store.Entry{}, err
	}
	m := entryMeta{
		Spec:       specJSON,
		HostCores:  r.ropts.HostCores,
		Noise:      r.ropts.Noise,
		Seed:       r.ropts.Seed,
		InputScale: r.ropts.InputScale,

		Method:        r.method,
		MethodVersion: r.version,
		SLOMS:         r.sopts.SLOMS,
		MaxSamples:    r.sopts.MaxSamples,
		MaxSimCostMS:  r.sopts.MaxSimCostMS,
		CreatedUnixMS: time.Now().UnixMilli(),
	}
	meta, err := json.Marshal(m)
	if err != nil {
		return nil, store.Entry{}, err
	}
	e := &entry{rec: rec, spec: spec, ropts: r.ropts, meta: m}
	return e, store.Entry{Body: body, Meta: meta}, nil
}

// searchOutcome carries a searcher's return across the timeout goroutine,
// panics included: a panic is re-raised on the caller's goroutine so the
// flightGroup sentinel and the HTTP recovery middleware see it exactly
// as they would on the inline (no-timeout) path.
type searchOutcome struct {
	out      search.Outcome
	err      error
	panicked any // non-nil: the recovered panic value
}

// runSearcher executes one search under the server-side SearchTimeout
// when one is configured. Detaching from the client's context is the
// caller's job: the miss path passes context.WithoutCancel (see the
// package comment) while the background refresher passes the lifecycle
// context, so Close cancels in-flight refresh searches. The deadline is
// enforced twice over: cooperatively — the searcher sees a timed
// context and a well-behaved one returns context.DeadlineExceeded
// itself — and unconditionally, by selecting the result channel against
// the deadline, so even a searcher that ignores its context releases
// the caller (and with it the singleflight claim and the admission
// slot). A wedged searcher's goroutine is leaked deliberately: a leaked
// goroutine is recoverable, a wedged flight key is not. Timed-out
// searches fail like any other failed search — served as an error to
// leader and followers, never cached.
func (s *Service) runSearcher(ctx context.Context, searcher search.Searcher, runner search.Evaluator, sopts search.Options) (search.Outcome, error) {
	if s.cfg.SearchTimeout <= 0 {
		return searcher.Search(ctx, runner, sopts)
	}
	timed, cancel := context.WithTimeout(ctx, s.cfg.SearchTimeout)
	defer cancel()
	ch := make(chan searchOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- searchOutcome{panicked: p}
			}
		}()
		out, err := searcher.Search(timed, runner, sopts)
		ch <- searchOutcome{out: out, err: err}
	}()
	select {
	case r := <-ch:
		if r.panicked != nil {
			panic(r.panicked)
		}
		if errors.Is(r.err, context.DeadlineExceeded) {
			s.searchTimeouts.Add(1)
		}
		return r.out, r.err
	case <-timed.Done():
		s.searchTimeouts.Add(1)
		return search.Outcome{}, fmt.Errorf("service: search exceeded the %v server deadline: %w", s.cfg.SearchTimeout, context.DeadlineExceeded)
	}
}

// entryFor returns the runtime entry for a configured fingerprint,
// rebuilding it from the store's metadata when this process has none
// (restart, pool-cache eviction, or an entry another process searched).
func (s *Service) entryFor(fp string) (*entry, error) {
	s.mu.Lock()
	v, ok := s.pools.get(fp)
	s.mu.Unlock()
	if ok {
		return v.(*entry), nil
	}
	se, ok := s.getStore(fp)
	if !ok {
		return nil, ErrUnknownFingerprint
	}
	var m entryMeta
	if err := json.Unmarshal(se.Meta, &m); err != nil {
		return nil, fmt.Errorf("service: stored metadata for %s is unreadable: %w", fp, err)
	}
	spec, err := workflow.DecodeCanonicalSpec(m.Spec)
	if err != nil {
		return nil, fmt.Errorf("service: rebuilding spec for %s: %w", fp, err)
	}
	rec := new(Recommendation)
	if err := json.Unmarshal(se.Body, rec); err != nil {
		return nil, fmt.Errorf("service: decoding stored recommendation: %w", err)
	}
	e := &entry{rec: rec, spec: spec, ropts: m.runnerOptions(), meta: m}
	s.putPool(fp, e)
	return e, nil
}

// Dispatch is the §IV-D online engine over the cache: it configures (or
// reuses) one search per input class, classifies the request's analyzed
// input scale, and returns that class's configuration. classes defaults to
// the paper's Video Analysis classes when empty. Engines are
// process-private (they hold live searched state per class) and are
// re-searched after eviction or a restart.
func (s *Service) Dispatch(ctx context.Context, spec *workflow.Spec, classes []inputaware.Class, scale float64, ro RequestOptions) (res *DispatchResult, cacheHit bool, err error) {
	if spec == nil {
		return nil, false, errors.New("service: Dispatch with nil spec")
	}
	if scale <= 0 {
		return nil, false, fmt.Errorf("service: Dispatch with non-positive input scale %v", scale)
	}
	if len(classes) == 0 {
		classes = inputaware.DefaultVideoClasses()
	}
	sorted := append([]inputaware.Class(nil), classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Scale < sorted[j].Scale })

	r, err := s.resolve(spec, ro)
	if err != nil {
		return nil, false, err
	}
	fp, err := s.fingerprint(spec, r, sorted)
	if err != nil {
		return nil, false, err
	}
	var v any
	s.mu.Lock()
	v, ok := s.engines.get(fp)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		cacheHit = true
	} else {
		s.misses.Add(1)
		v, err, _ = s.flight.do(ctx, fp, func() (any, error) {
			s.mu.Lock()
			cached, ok := s.engines.get(fp)
			s.mu.Unlock()
			if ok {
				return cached, nil
			}
			searcher, err := search.New(r.method, r.seed)
			if err != nil {
				return nil, err
			}
			engine, err := inputaware.Configure(context.WithoutCancel(ctx), spec, r.ropts, searcher, r.sopts, sorted) //aarc:detached engines are shared across requests like cache entries
			if err != nil {
				return nil, err
			}
			s.searches.Add(int64(len(sorted)))
			e := &engineEntry{engine: engine, spec: spec, method: searcher.Name()}
			s.mu.Lock()
			if _, evicted := s.engines.add(fp, e); evicted {
				s.evictions.Add(1)
			}
			s.mu.Unlock()
			return e, nil
		})
		if err != nil {
			return nil, false, err
		}
	}
	ee := v.(*engineEntry)
	cls, a := ee.engine.Dispatch(inputaware.Request{Scale: scale})
	return &DispatchResult{
		Fingerprint: fp,
		Workflow:    ee.spec.Name,
		Method:      ee.method,
		Class:       cls.Name,
		ClassScale:  cls.Scale,
		Scale:       scale,
		Assignment:  wireAssignment(a),
	}, cacheHit, nil
}

// ErrUnknownFingerprint is returned by Evaluate/Validate and
// RecommendationJSON when the fingerprint has no stored entry (never
// configured here, evicted, or invalidated).
var ErrUnknownFingerprint = errors.New("service: unknown fingerprint (not configured or evicted)")

// MaxEvaluateRuns bounds one Evaluate/Validate call (and therefore one
// /v1/evaluate request): evaluation is synchronous simulator work, so an
// unbounded client-controlled count would let a single request pin the
// daemon.
const MaxEvaluateRuns = 1024

// ErrTooManyRuns is returned when an Evaluate/Validate run count exceeds
// MaxEvaluateRuns.
var ErrTooManyRuns = fmt.Errorf("service: runs exceed the per-request bound %d", MaxEvaluateRuns)

// Evaluate runs the workflow behind a configured fingerprint n times under
// an arbitrary assignment (what-if probing), on the fingerprint's sharded
// runner pool. The runs are executed in chunks of one shard-lock
// acquisition each (runnerPool.evaluateN) — the batch amortization —
// rather than paying a lock round-trip per run. A nil assignment evaluates the stored
// recommendation itself. Works across restarts when the store is durable:
// the pool is rebuilt from the stored canonical spec and runner options.
// On a mid-run error the completed results are returned alongside it, so
// callers (and the HTTP error body) can report how many runs finished.
func (s *Service) Evaluate(fp string, a resources.Assignment, n int) ([]search.Result, error) {
	if n <= 0 {
		n = 1
	}
	if n > MaxEvaluateRuns {
		return nil, ErrTooManyRuns
	}
	e, err := s.entryFor(fp)
	if err != nil {
		return nil, err
	}
	pool, err := e.runnerPool(s.cfg.Shards)
	if err != nil {
		return nil, err
	}
	if a == nil {
		a = e.rec.ResourceAssignment()
	}
	return pool.evaluateN(a, n)
}

// Validate re-executes a fingerprint's recommended assignment n times on
// the sharded pool and returns the per-run results. Unlike
// Recommendation.Validate on the facade (which continues the search's own
// RNG stream), the pool's runners are independently seeded per shard: this
// is fresh-measurement statistics, not a continuation of the search.
func (s *Service) Validate(fp string, n int) ([]search.Result, error) {
	return s.Evaluate(fp, nil, n)
}

func wireAssignment(a resources.Assignment) map[string]ConfigValue {
	out := make(map[string]ConfigValue, len(a))
	for g, c := range a {
		out[g] = ConfigValue{CPU: c.CPU, MemMB: c.MemMB}
	}
	return out
}
