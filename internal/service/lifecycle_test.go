package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aarc/internal/event"
	"aarc/internal/search"
)

// Two independently-gated methods for the refresh-priority test: the
// channels carry no identity, so the test tells a refresh search apart
// from a foreground one by which method it was configured under.
var (
	lgateStarted  chan struct{}
	lgateRelease  chan struct{}
	lgate2Started chan struct{}
	lgate2Release chan struct{}
)

type lgateSearcher struct{}

func (lgateSearcher) Name() string { return "LGate" }

func (lgateSearcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	lgateStarted <- struct{}{}
	<-lgateRelease
	return stubSearcher{}.Search(ctx, ev, opts)
}

type lgate2Searcher struct{}

func (lgate2Searcher) Name() string { return "LGate2" }

func (lgate2Searcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	lgate2Started <- struct{}{}
	<-lgate2Release
	return stubSearcher{}.Search(ctx, ev, opts)
}

func init() {
	search.Register("lgate", 1, func(seed uint64) search.Searcher { return lgateSearcher{} })
	search.Register("lgate2", 1, func(seed uint64) search.Searcher { return lgate2Searcher{} })
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDriftRefreshSwapEndToEnd is the acceptance path: a configured
// entry is flagged by the drift monitor (threshold set so any latency
// counts as stale), re-searched in the background, and atomically
// swapped — while concurrent readers observe neither a miss nor a torn
// entry, and a watch subscriber receives the "refreshed" event.
func TestDriftRefreshSwapEndToEnd(t *testing.T) {
	svc := stubService(t, Config{
		DriftInterval:  time.Hour, // sweeps driven manually via DriftSweep
		DriftThreshold: 1e-9,      // any measured latency counts as stale
	})
	spec := testSpec(t, 0)
	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp := rec.Fingerprint

	events, cancel, err := svc.Watch(context.Background(), fp)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Readers hammer the fingerprint for the whole refresh: the swap
	// contract is that they always get a complete entry, old or new.
	stop := make(chan struct{})
	var readerErr atomic.Value
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, err := svc.RecommendationJSON(fp)
				if err != nil {
					readerErr.Store(fmt.Errorf("reader observed a miss mid-refresh: %w", err))
					return
				}
				var got Recommendation
				if err := json.Unmarshal(body, &got); err != nil {
					readerErr.Store(fmt.Errorf("reader observed torn bytes: %w", err))
					return
				}
				if got.Fingerprint != fp {
					readerErr.Store(fmt.Errorf("reader observed foreign entry %s", got.Fingerprint))
					return
				}
			}
		}()
	}

	svc.DriftSweep(context.Background())

	select {
	case ev := <-events:
		if ev.Kind != event.KindRefreshed {
			t.Fatalf("first watched event = %q, want %q", ev.Kind, event.KindRefreshed)
		}
		if ev.Fingerprint != fp {
			t.Fatalf("event fingerprint = %s, want %s", ev.Fingerprint, fp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no refreshed event after the sweep flagged the entry")
	}

	waitFor(t, "refresh counter", func() bool { return svc.Stats().Refreshes == 1 })
	close(stop)
	readers.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.DriftChecks == 0 {
		t.Fatal("drift_checks = 0 after a sweep")
	}
	if st.RefreshFails != 0 {
		t.Fatalf("refresh_failures = %d", st.RefreshFails)
	}
	// The refreshed entry still serves, identical search identity and
	// seed, so the bytes match the original deterministic encoding.
	body, err := svc.RecommendationJSON(fp)
	if err != nil {
		t.Fatal(err)
	}
	var got Recommendation
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != fp {
		t.Fatalf("post-refresh fingerprint = %s, want %s", got.Fingerprint, fp)
	}
}

// TestWatchSeesPutAndInvalidated covers the other two event kinds, and
// that invalidating an absent fingerprint publishes nothing.
func TestWatchSeesPutAndInvalidated(t *testing.T) {
	svc := stubService(t, Config{})
	spec := testSpec(t, 0)

	// Subscribe to everything: the fingerprint isn't known yet.
	events, cancel, err := svc.Watch(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := <-events
	if ev.Kind != event.KindPut || ev.Fingerprint != rec.Fingerprint {
		t.Fatalf("event = %+v, want put %s", ev, rec.Fingerprint)
	}

	existed, err := svc.Invalidate(rec.Fingerprint)
	if err != nil || !existed {
		t.Fatalf("Invalidate: existed=%v err=%v", existed, err)
	}
	ev = <-events
	if ev.Kind != event.KindInvalidated || ev.Fingerprint != rec.Fingerprint {
		t.Fatalf("event = %+v, want invalidated %s", ev, rec.Fingerprint)
	}

	// Absent fingerprint: no Delete reaches the store, no event.
	existed, err = svc.Invalidate(rec.Fingerprint)
	if err != nil || existed {
		t.Fatalf("second Invalidate: existed=%v err=%v", existed, err)
	}
	select {
	case ev := <-events:
		t.Fatalf("invalidating an absent fingerprint published %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSlowWatcherDropsWithoutBlocking: a subscriber that never drains
// loses events — counted — while the publishing mutation path never
// blocks on it.
func TestSlowWatcherDropsWithoutBlocking(t *testing.T) {
	svc := stubService(t, Config{WatchBuffer: 1})
	spec := testSpec(t, 0)

	_, cancel, err := svc.Watch(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Each round is one put + one invalidated; with a buffer of one,
	// nearly all of them drop. Configure must keep completing promptly —
	// if publish blocked on the full subscriber, this loop would hang.
	const rounds = 16
	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if _, err := svc.Invalidate(rec.Fingerprint); err != nil {
			t.Fatal(err)
		}
		if _, _, err := svc.Configure(context.Background(), spec, RequestOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := svc.Stats().EventsDropped; dropped == 0 {
		t.Fatal("events_dropped = 0 after flooding a one-slot subscriber")
	}
}

// TestRefreshYieldsToForegroundMiss proves the admission priority: with
// one admission slot, a pending background refresh must not take it
// while a foreground miss is waiting — the foreground search starts
// first, every time, and the refresh runs only once the slot is idle.
func TestRefreshYieldsToForegroundMiss(t *testing.T) {
	lgateStarted = make(chan struct{}, 8)
	lgateRelease = make(chan struct{}, 8)
	lgate2Started = make(chan struct{}, 8)
	lgate2Release = make(chan struct{}, 8)

	svc := stubService(t, Config{
		MaxConcurrentSearches: 1,
		DriftInterval:         time.Hour,
		DriftThreshold:        1e-9,
	})

	// Entry A, configured under the gated "lgate2" method: its eventual
	// background refresh re-runs lgate2, so lgate2Started firing later
	// identifies the refresh search.
	specA := testSpec(t, 0)
	done := make(chan error, 1)
	go func() {
		_, _, err := svc.Configure(context.Background(), specA, RequestOptions{Method: "lgate2"})
		done <- err
	}()
	<-lgate2Started
	lgate2Release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Foreground search F1 (lgate) takes the only admission slot and
	// parks in flight.
	f1done := make(chan error, 1)
	go func() {
		_, _, err := svc.Configure(context.Background(), testSpec(t, 1), RequestOptions{Method: "lgate"})
		f1done <- err
	}()
	<-lgateStarted

	// Flag A stale: the refresh worker picks it up and starts polling
	// for a slot it cannot have.
	svc.DriftSweep(context.Background())

	// Foreground search F2 (lgate) arrives and waits for the slot. A
	// deadline makes acquireSearch wait instead of shedding.
	f2ctx, f2cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer f2cancel()
	f2done := make(chan error, 1)
	go func() {
		_, _, err := svc.Configure(f2ctx, testSpec(t, 2), RequestOptions{Method: "lgate"})
		f2done <- err
	}()
	waitFor(t, "foreground waiter", func() bool { return svc.searchWaiters.Load() == 1 })

	// Release F1. The freed slot must go to the waiting F2, not the
	// polling refresh: F2's search starts, the refresh search does not.
	lgateRelease <- struct{}{}
	if err := <-f1done; err != nil {
		t.Fatal(err)
	}
	select {
	case <-lgateStarted: // F2 in flight
	case <-time.After(10 * time.Second):
		t.Fatal("foreground search F2 never started after the slot freed")
	}
	select {
	case <-lgate2Started:
		t.Fatal("refresh took the admission slot while a foreground miss was waiting")
	default:
	}

	// Release F2; with the slot idle and no waiters, the refresh finally
	// gets its turn.
	lgateRelease <- struct{}{}
	if err := <-f2done; err != nil {
		t.Fatal(err)
	}
	select {
	case <-lgate2Started:
	case <-time.After(10 * time.Second):
		t.Fatal("refresh never ran after the foreground load drained")
	}
	lgate2Release <- struct{}{}
	waitFor(t, "refresh completion", func() bool { return svc.Stats().Refreshes == 1 })
}

// readSSE reads frames off a live SSE stream, returning each non-empty
// line to the caller as it arrives.
func sseLines(t *testing.T, body io.Reader) <-chan string {
	t.Helper()
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(body)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				lines <- line
			}
		}
	}()
	return lines
}

func expectSSELine(t *testing.T, lines <-chan string, prefix string) string {
	t.Helper()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended waiting for %q", prefix)
			}
			if strings.HasPrefix(line, prefix) {
				return line
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("no %q line within deadline", prefix)
		}
	}
}

// TestWatchSSEStream covers the wire protocol end to end: event frames
// with bus sequence ids, heartbeats, the subscriber gauge, and its
// release on client disconnect.
func TestWatchSSEStream(t *testing.T) {
	svc := stubService(t, Config{WatchHeartbeat: 5 * time.Millisecond})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	spec := testSpec(t, 0)
	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/watch/"+rec.Fingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	waitFor(t, "subscriber gauge up", func() bool { return svc.Stats().WatchSubs == 1 })

	lines := sseLines(t, resp.Body)
	expectSSELine(t, lines, ": heartbeat") // idle stream stays alive

	if _, err := svc.Invalidate(rec.Fingerprint); err != nil {
		t.Fatal(err)
	}
	expectSSELine(t, lines, "id: ")
	expectSSELine(t, lines, "event: invalidated")
	data := expectSSELine(t, lines, "data: ")
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != event.KindInvalidated || ev.Fingerprint != rec.Fingerprint {
		t.Fatalf("SSE event = %+v", ev)
	}

	// Client disconnect releases the subscription and the gauge.
	cancel()
	waitFor(t, "subscriber gauge down", func() bool { return svc.Stats().WatchSubs == 0 })
}

// TestWatchSSEResume replays missed events to a reconnecting client
// carrying Last-Event-ID.
func TestWatchSSEResume(t *testing.T) {
	svc := stubService(t, Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	spec := testSpec(t, 0)
	rec, _, err := svc.Configure(context.Background(), spec, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invalidate(rec.Fingerprint); err != nil {
		t.Fatal(err)
	}
	// Two events exist (put, invalidated); a client that saw neither
	// resumes from id 0 and receives both from the ring.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/watch/"+rec.Fingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := sseLines(t, resp.Body)
	expectSSELine(t, lines, "event: put")
	expectSSELine(t, lines, "event: invalidated")

	// A malformed cursor is a 400, not a stream.
	badReq, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/watch/"+rec.Fingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	badReq.Header.Set("Last-Event-ID", "not-a-number")
	badResp, err := http.DefaultClient.Do(badReq)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID status = %d", badResp.StatusCode)
	}
}

// TestRecommendationsListing covers the watcher-bootstrap index.
func TestRecommendationsListing(t *testing.T) {
	svc := stubService(t, Config{})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	fps := make(map[string]bool)
	for i := 0; i < 3; i++ {
		rec, _, err := svc.Configure(context.Background(), testSpec(t, i), RequestOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fps[rec.Fingerprint] = true
	}

	resp, err := http.Get(srv.URL + "/v1/recommendations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("listing status = %d", resp.StatusCode)
	}
	var out struct {
		Recommendations []RecommendationInfo `json:"recommendations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recommendations) != len(fps) {
		t.Fatalf("listed %d entries, want %d", len(out.Recommendations), len(fps))
	}
	for i, info := range out.Recommendations {
		if !fps[info.Fingerprint] {
			t.Fatalf("listing[%d] unknown fingerprint %s", i, info.Fingerprint)
		}
		if info.Method != "Stub" {
			t.Fatalf("listing[%d].Method = %q", i, info.Method)
		}
		if info.MethodVersion != 1 {
			t.Fatalf("listing[%d].MethodVersion = %d", i, info.MethodVersion)
		}
		if info.SLOMS <= 0 {
			t.Fatalf("listing[%d].SLOMS = %v", i, info.SLOMS)
		}
		if info.AgeS < 0 {
			t.Fatalf("listing[%d].AgeS = %v", i, info.AgeS)
		}
		if i > 0 && out.Recommendations[i-1].Fingerprint > info.Fingerprint {
			t.Fatal("listing is not sorted by fingerprint")
		}
	}
}

// TestHealthzConcurrentWithConfigure hammers the stats path against live
// configure traffic: every counter /healthz reads must be safely
// readable off the request path (this test is the -race vehicle for the
// counter audit).
func TestHealthzConcurrentWithConfigure(t *testing.T) {
	svc := stubService(t, Config{DriftInterval: 5 * time.Millisecond, DriftThreshold: 1e-9})
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				resp, err := http.Get(srv.URL + "/healthz")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("healthz status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				body := fmt.Sprintf(`{"workload":"chatbot","slo_ms":%d}`, 40000+worker*10+j)
				resp, err := http.Post(srv.URL+"/v1/configure", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("configure status %d", resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// BenchmarkWatchFanout measures publishing one store event to N live
// watch subscribers, including the mid-refresh kind attribution check.
//
//	go test ./internal/service -bench=BenchmarkWatchFanout -run='^$'
func BenchmarkWatchFanout(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			svc, err := New(Config{Method: "stub", WatchBuffer: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				events, cancel, err := svc.Watch(context.Background(), "bench-fp")
				if err != nil {
					b.Fatal(err)
				}
				defer cancel()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range events {
					}
				}()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc.storeEvent(0, "bench-fp") // store.OpPut
			}
			b.StopTimer()
			svc.bus.Close()
			wg.Wait()
		})
	}
}

// BenchmarkDriftSweep measures one monitor sweep over a populated store
// — the background cost the drift interval is traded against.
//
//	go test ./internal/service -bench=BenchmarkDriftSweep -benchtime=10x -run='^$'
func BenchmarkDriftSweep(b *testing.B) {
	for _, entries := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			svc, err := New(Config{Method: "stub", CacheSize: entries * 2, DriftInterval: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			for i := 0; i < entries; i++ {
				if _, _, err := svc.Configure(context.Background(), testSpec(b, i), RequestOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				svc.DriftSweep(context.Background())
			}
		})
	}
}

// BenchmarkServiceConfigure measures the foreground configure hot path
// (a store hit) with the lifecycle idle and with a tight drift loop
// refreshing in the background — the "refresh must sit within noise"
// acceptance measurement.
//
//	go test ./internal/service -bench=BenchmarkServiceConfigure -run='^$'
func BenchmarkServiceConfigure(b *testing.B) {
	bench := func(b *testing.B, cfg Config) {
		cfg.Method = "stub"
		svc, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		spec := testSpec(b, 0)
		if _, _, err := svc.Configure(context.Background(), spec, RequestOptions{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := svc.ConfigureJSON(context.Background(), spec, RequestOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Idle", func(b *testing.B) { bench(b, Config{}) })
	b.Run("RefreshingBackground", func(b *testing.B) {
		bench(b, Config{DriftInterval: time.Millisecond, DriftThreshold: 1e-9})
	})
}
