package service

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"time"

	"aarc/internal/drift"
	"aarc/internal/event"
	"aarc/internal/search"
	"aarc/internal/store"
)

// This file is the recommendation lifecycle: the event bus the store
// publishes into, the drift monitor's view of the service, and the
// background refresher that re-searches stale entries and atomically
// swaps them — old bytes serve until the swap, no request ever observes
// a miss or a torn entry. The event Kind vocabulary (put, refreshed,
// invalidated) is documented on internal/event.

// Event is a recommendation lifecycle notification. See internal/event
// for the kind vocabulary.
type Event = event.Event

// storeEvent is the store.Notify hook: every successful store mutation
// lands here, on the mutating goroutine, and is published to the bus.
// A Put for a fingerprint currently mid-refresh is a swap, not a new
// entry, and publishes "refreshed" instead of "put".
func (s *Service) storeEvent(op store.Op, fp string) {
	kind := event.KindPut
	switch op {
	case store.OpDelete:
		kind = event.KindInvalidated
	case store.OpPut:
		if s.isRefreshing(fp) {
			kind = event.KindRefreshed
		}
	}
	s.bus.Publish(kind, fp)
}

func (s *Service) isRefreshing(fp string) bool {
	s.refreshMu.Lock()
	_, ok := s.refreshing[fp]
	s.refreshMu.Unlock()
	return ok
}

func (s *Service) setRefreshing(fp string, on bool) {
	s.refreshMu.Lock()
	if on {
		s.refreshing[fp] = struct{}{}
	} else {
		delete(s.refreshing, fp)
	}
	s.refreshMu.Unlock()
}

// Watch subscribes to a fingerprint's lifecycle events ("" watches every
// fingerprint). The returned channel is closed when the subscription
// ends; cancel is idempotent and must be called to release the
// subscriber. When ctx is cancellable the subscription is torn down with
// it. A subscriber that stops draining its channel loses events (counted
// in Stats.EventsDropped) rather than blocking publishers.
func (s *Service) Watch(ctx context.Context, fp string) (<-chan Event, func(), error) {
	sub, err := s.bus.Subscribe(fp, s.cfg.WatchBuffer)
	if err != nil {
		return nil, nil, err
	}
	s.watchSubs.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			sub.Cancel()
			s.watchSubs.Add(-1)
		})
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				cancel()
			case <-sub.Done():
			}
		}()
	}
	return sub.Events(), cancel, nil
}

// ReplayEvents returns the buffered events for fp ("" = all) with
// sequence numbers greater than after, oldest first — the Last-Event-ID
// resume path of GET /v1/watch/{fp}. Events older than the bus's ring
// are gone; clients that need a full picture re-read the entry.
func (s *Service) ReplayEvents(fp string, after uint64) []Event {
	return s.bus.Replay(fp, after)
}

// RecommendationInfo is one stored entry's listing line (GET
// /v1/recommendations): enough for a watcher to bootstrap — what is
// cached, under which method and version, against which SLO, and how
// old it is — without fetching every body.
type RecommendationInfo struct {
	Fingerprint   string  `json:"fingerprint"`
	Workflow      string  `json:"workflow,omitempty"`
	Method        string  `json:"method,omitempty"`
	MethodVersion int     `json:"method_version,omitempty"`
	SLOMS         float64 `json:"slo_ms,omitempty"`
	SLOCompliant  bool    `json:"slo_compliant"`
	Samples       int     `json:"samples,omitempty"`
	AgeS          float64 `json:"age_s,omitempty"`
}

// Recommendations lists every stored entry, sorted by fingerprint. An
// entry deleted between the key scan and its read is skipped; an entry
// whose body or meta does not decode is listed by fingerprint alone
// (age and method are best-effort — old processes' entries lack the
// lifecycle meta fields).
func (s *Service) Recommendations() []RecommendationInfo {
	keys := s.st.Keys()
	sort.Strings(keys)
	now := time.Now().UnixMilli()
	out := make([]RecommendationInfo, 0, len(keys))
	for _, fp := range keys {
		se, ok := s.getStore(fp)
		if !ok {
			continue
		}
		info := RecommendationInfo{Fingerprint: fp}
		var rec Recommendation
		if json.Unmarshal(se.Body, &rec) == nil {
			info.Workflow = rec.Workflow
			info.Method = rec.Method
			info.SLOMS = rec.SLOMS
			info.SLOCompliant = rec.SLOCompliant
			info.Samples = rec.Samples
		}
		var m entryMeta
		if json.Unmarshal(se.Meta, &m) == nil {
			info.MethodVersion = m.MethodVersion
			if m.CreatedUnixMS > 0 {
				info.AgeS = float64(now-m.CreatedUnixMS) / 1000
			}
		}
		out = append(out, info)
	}
	return out
}

// lifecycleProber adapts the Service to the drift monitor's Prober:
// fingerprints come from the store's key index, and probes run on the
// entry's existing sharded runner pool via evaluateN — the same
// shard-lock amortization the Evaluate/Validate hot path uses.
type lifecycleProber struct{ s *Service }

// Keys() order is unspecified; sorted so every sweep probes entries in
// the same order and a bounded stale queue fills deterministically.
func (p lifecycleProber) Fingerprints() []string {
	keys := p.s.st.Keys()
	sort.Strings(keys)
	return keys
}

func (p lifecycleProber) Probe(fp string, runs int) ([]float64, float64, error) {
	e, err := p.s.entryFor(fp)
	if err != nil {
		return nil, 0, err
	}
	pool, err := e.runnerPool(p.s.cfg.Shards)
	if err != nil {
		return nil, 0, err
	}
	results, err := pool.evaluateN(e.rec.ResourceAssignment(), runs)
	if err != nil {
		return nil, 0, err
	}
	e2e := make([]float64, len(results))
	for i, r := range results {
		e2e[i] = r.E2EMS
	}
	return e2e, e.rec.SLOMS, nil
}

// refreshLoop consumes the drift monitor's stale queue until the
// lifecycle context is cancelled. A failed refresh keeps the old entry
// serving — staleness is degraded service, a failed refresh must not
// turn it into an outage — and the monitor's hysteresis re-flags the
// fingerprint on a later sweep if it stays bad.
func (s *Service) refreshLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case fp := <-s.monitor.Stale():
			if err := s.refresh(ctx, fp); err != nil && ctx.Err() == nil {
				s.refreshFails.Add(1)
			}
		}
	}
}

// refreshYield is the refresher's polling cadence while foreground
// misses are waiting for admission slots.
const refreshYield = 2 * time.Millisecond

// acquireRefresh takes an admission slot at background priority:
// refreshes only hold a slot while no foreground miss is blocked
// waiting for one (Service.searchWaiters), and a slot acquired in a
// race with an arriving waiter is handed straight back. Foreground
// misses therefore never queue behind a refresh; a refresh can wait
// arbitrarily long behind foreground load, by design.
func (s *Service) acquireRefresh(ctx context.Context) error {
	if s.sem == nil {
		return nil
	}
	for {
		if s.searchWaiters.Load() == 0 {
			select {
			case s.sem <- struct{}{}:
				if s.searchWaiters.Load() == 0 {
					return nil
				}
				// A foreground miss started waiting while we took the
				// slot: hand it back and keep polling.
				<-s.sem
			default:
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(refreshYield):
		}
	}
}

// refresh re-runs the search behind one stale fingerprint and swaps the
// store entry. The swap is a plain write-through Put: readers either
// get the old bytes or the new bytes, never a miss and never a mix —
// store tiers replace entries atomically under their own locks. The old
// entry keeps serving for the whole search. Skips cleanly when the
// entry was invalidated since flagging, or when another flight for the
// fingerprint is already running.
func (s *Service) refresh(ctx context.Context, fp string) error {
	e, err := s.entryFor(fp)
	if err != nil {
		if errors.Is(err, ErrUnknownFingerprint) {
			return nil
		}
		return err
	}
	r, err := s.refreshResolved(e)
	if err != nil {
		return err
	}
	c, leader := s.flight.claim(fp)
	if !leader {
		// A foreground miss is searching this fingerprint right now
		// (only possible after an invalidation raced the flagging); its
		// result will be at least as fresh as ours would be.
		return nil
	}
	defer s.flight.abandon(fp, c)
	if err := s.acquireRefresh(ctx); err != nil {
		s.flight.finish(fp, c, nil, err)
		return err
	}
	defer s.releaseSearch()
	s.setRefreshing(fp, true)
	defer s.setRefreshing(fp, false)
	// The lifecycle context rides into the search: Close cancels
	// in-flight refreshes, unlike foreground misses which run detached.
	ne, se, err := s.runSearch(ctx, fp, e.spec, r)
	if err != nil {
		s.flight.finish(fp, c, nil, err)
		return err
	}
	s.putStore(fp, se) // the swap; store.Notify publishes "refreshed"
	s.putPool(fp, ne)
	s.refreshes.Add(1)
	s.flight.finish(fp, c, se.Body, nil)
	return nil
}

// refreshResolved rebuilds the search identity that produced an entry
// from its persisted meta, falling back — for entries persisted before
// the lifecycle fields existed — to the recommendation body (method,
// SLO; the registry lookup is case-insensitive) and the service's caps.
func (s *Service) refreshResolved(e *entry) (resolved, error) {
	m := e.meta
	method := m.Method
	if method == "" {
		method = e.rec.Method
	}
	version, err := search.Version(method)
	if err != nil {
		return resolved{}, err
	}
	sopts := search.Options{
		SLOMS:        m.SLOMS,
		MaxSamples:   m.MaxSamples,
		MaxSimCostMS: m.MaxSimCostMS,
	}
	if sopts.SLOMS <= 0 {
		sopts.SLOMS = e.rec.SLOMS
	}
	if sopts.MaxSamples <= 0 {
		sopts.MaxSamples = s.cfg.MaxSamples
	}
	if sopts.MaxSimCostMS <= 0 {
		sopts.MaxSimCostMS = s.cfg.MaxSimCostMS
	}
	return resolved{
		method:  method,
		version: version,
		seed:    e.ropts.Seed,
		ropts:   e.ropts,
		sopts:   sopts,
	}, nil
}

// DriftSweep runs one synchronous drift sweep (no-op without a
// monitor). Exposed for deterministic drills and tests; production
// sweeps ride the DriftInterval ticker.
func (s *Service) DriftSweep(ctx context.Context) {
	if s.monitor != nil {
		s.monitor.Sweep(ctx)
	}
}

var _ drift.Prober = lifecycleProber{}
