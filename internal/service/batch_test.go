package service

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aarc/internal/search"
	"aarc/internal/workflow"
)

// gaugeSearcher measures search concurrency: tests assert that a batch of
// N distinct specs never runs more than pool-width searches at once. The
// short sleep keeps each search in flight long enough for overlap to be
// observable.
var (
	gaugeCur atomic.Int64
	gaugeMax atomic.Int64
)

type gaugeSearcher struct{}

func (gaugeSearcher) Name() string { return "Gauge" }

func (gaugeSearcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	cur := gaugeCur.Add(1)
	defer gaugeCur.Add(-1)
	for {
		m := gaugeMax.Load()
		if cur <= m || gaugeMax.CompareAndSwap(m, cur) {
			break
		}
	}
	time.Sleep(5 * time.Millisecond)
	return stubSearcher{}.Search(ctx, ev, opts)
}

// gateSearcher parks every search on a test-controlled gate, so tests can
// hold a search in flight while other callers arrive. gateStarted and
// gateRelease are reset by each test before any search can run.
var (
	gateStarted  chan struct{}
	gateRelease  chan struct{}
	gateSearches atomic.Int64
)

type gateSearcher struct{}

func (gateSearcher) Name() string { return "Gate" }

func (gateSearcher) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	gateSearches.Add(1)
	gateStarted <- struct{}{}
	<-gateRelease
	return stubSearcher{}.Search(ctx, ev, opts)
}

func init() {
	search.Register("gauge", 1, func(seed uint64) search.Searcher { return gaugeSearcher{} })
	search.Register("gate", 1, func(seed uint64) search.Searcher { return gateSearcher{} })
}

// TestConfigureBatchMatchesSingletonBytes is the determinism contract: a
// batch of N distinct specs runs through the worker pool, yet every
// item's body is byte-identical to what sequential singleton requests on
// an identically-configured service serve — per-cell seeding is a pure
// function of the item, never of pool scheduling.
func TestConfigureBatchMatchesSingletonBytes(t *testing.T) {
	const distinct = 6
	batchSvc := stubService(t, Config{BatchWorkers: 3})
	singleSvc := stubService(t, Config{})

	items := make([]BatchItem, distinct)
	for i := range items {
		items[i] = BatchItem{Spec: testSpec(t, i)}
	}
	before := stubSearches.Load()
	results, err := batchSvc.ConfigureBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if got := stubSearches.Load() - before; got != distinct {
		t.Errorf("batch of %d distinct specs ran %d searches, want %d", distinct, got, distinct)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		if res.CacheHit {
			t.Errorf("item %d of a cold batch reported a cache hit", i)
		}
		body, hit, err := singleSvc.ConfigureJSON(context.Background(), testSpec(t, i), RequestOptions{})
		if err != nil || hit {
			t.Fatalf("singleton %d: hit=%v err=%v", i, hit, err)
		}
		if !bytes.Equal(res.Body, body) {
			t.Errorf("item %d batched body differs from the singleton body:\nbatch:     %s\nsingleton: %s", i, res.Body, body)
		}
	}
	st := batchSvc.Stats()
	if st.BatchRuns != 1 || st.Misses != distinct || st.Entries != distinct {
		t.Errorf("stats after one cold batch: %+v", st)
	}

	// The same batch again is all store hits: no search, no pooled run.
	before = stubSearches.Load()
	results, err = batchSvc.ConfigureBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil || !res.CacheHit {
			t.Errorf("warm item %d: hit=%v err=%v", i, res.CacheHit, res.Err)
		}
	}
	if got := stubSearches.Load() - before; got != 0 {
		t.Errorf("warm batch ran %d searches, want 0", got)
	}
	if st := batchSvc.Stats(); st.BatchRuns != 1 {
		t.Errorf("warm batch started a pooled run: %+v", st)
	}
}

// TestConfigureBatchConcurrencyBounded asserts the pool-width cap: 8
// distinct cold specs through a 2-worker batch never exceed 2 concurrent
// searches.
func TestConfigureBatchConcurrencyBounded(t *testing.T) {
	svc := stubService(t, Config{BatchWorkers: 2})
	gaugeMax.Store(0)

	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{Spec: testSpec(t, i), Options: RequestOptions{Method: "gauge"}}
	}
	results, err := svc.ConfigureBatch(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
	}
	if m := gaugeMax.Load(); m < 1 || m > 2 {
		t.Errorf("batch of 8 ran %d concurrent searches, want 1..2 (pool width 2)", m)
	}
}

// TestConfigureBatchDedupAndHits: repeats within one batch search once
// and inherit the first occurrence's outcome; already-stored fingerprints
// answer as immediate hits without entering the pooled run.
func TestConfigureBatchDedupAndHits(t *testing.T) {
	svc := stubService(t, Config{})
	ctx := context.Background()
	primed := testSpec(t, 0)
	primedBody, _, err := svc.ConfigureJSON(ctx, primed, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}

	fresh := testSpec(t, 1)
	before := stubSearches.Load()
	results, err := svc.ConfigureBatch(ctx, []BatchItem{
		{Spec: primed}, // store hit
		{Spec: fresh},  // the one real miss
		{Spec: fresh},  // batch-internal duplicate of the miss
		{Spec: primed}, // batch-internal duplicate of the hit
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stubSearches.Load() - before; got != 1 {
		t.Errorf("batch with one unique miss ran %d searches, want 1", got)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
	}
	if !results[0].CacheHit || !bytes.Equal(results[0].Body, primedBody) {
		t.Errorf("primed item: hit=%v", results[0].CacheHit)
	}
	if results[1].CacheHit {
		t.Error("fresh item reported a cache hit")
	}
	if results[2].CacheHit || !bytes.Equal(results[2].Body, results[1].Body) {
		t.Errorf("duplicate of the miss: hit=%v, bodies equal=%v",
			results[2].CacheHit, bytes.Equal(results[2].Body, results[1].Body))
	}
	if !results[3].CacheHit || !bytes.Equal(results[3].Body, primedBody) {
		t.Errorf("duplicate of the hit: hit=%v", results[3].CacheHit)
	}
	if results[1].Fingerprint != results[2].Fingerprint {
		t.Error("duplicate items carry different fingerprints")
	}
}

// TestConfigureBatchPerItemErrorIsolation: a nil spec, an unknown method
// and a failing search each fail exactly their own slot.
func TestConfigureBatchPerItemErrorIsolation(t *testing.T) {
	svc := stubService(t, Config{})
	results, err := svc.ConfigureBatch(context.Background(), []BatchItem{
		{Spec: nil},
		{Spec: testSpec(t, 0), Options: RequestOptions{Method: "nope"}},
		{Spec: testSpec(t, 1), Options: RequestOptions{Method: "failing"}},
		{Spec: testSpec(t, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, errNilSpec) {
		t.Errorf("nil-spec item error = %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("unknown-method item did not error")
	}
	if results[2].Err == nil {
		t.Error("failing-search item did not error")
	}
	if results[3].Err != nil || len(results[3].Body) == 0 {
		t.Errorf("healthy item: err=%v body=%d bytes", results[3].Err, len(results[3].Body))
	}
	// A failed search stores nothing: only the healthy item is cached.
	if st := svc.Stats(); st.Entries != 1 {
		t.Errorf("entries after isolated failures = %d, want 1", st.Entries)
	}
}

func TestConfigureBatchSizeBounds(t *testing.T) {
	svc := stubService(t, Config{})
	if results, err := svc.ConfigureBatch(context.Background(), nil); err != nil || len(results) != 0 {
		t.Errorf("empty batch: results=%v err=%v", results, err)
	}
	oversized := make([]BatchItem, MaxBatchItems+1)
	if _, err := svc.ConfigureBatch(context.Background(), oversized); !errors.Is(err, ErrBatchTooLarge) {
		t.Errorf("oversized batch error = %v, want ErrBatchTooLarge", err)
	}
}

// TestSingletonAttachesToBatchSearch: a singleton Configure arriving
// while a batch is searching the same fingerprint attaches to the batch's
// in-flight item instead of searching again.
func TestSingletonAttachesToBatchSearch(t *testing.T) {
	svc := stubService(t, Config{})
	gateStarted = make(chan struct{}, 8)
	gateRelease = make(chan struct{})
	spec := testSpec(t, 0)
	gated := RequestOptions{Method: "gate"}
	before := gateSearches.Load()

	var batchResults []BatchResult
	var batchErr error
	batchDone := make(chan struct{})
	go func() {
		defer close(batchDone)
		batchResults, batchErr = svc.ConfigureBatch(context.Background(), []BatchItem{{Spec: spec, Options: gated}})
	}()
	<-gateStarted // the batch's search is in flight and holds the claim

	var singleBody []byte
	var singleErr error
	singleDone := make(chan struct{})
	go func() {
		defer close(singleDone)
		singleBody, _, singleErr = svc.ConfigureJSON(context.Background(), testSpec(t, 0), gated)
	}()
	// The singleton counts its miss before claiming the flight: once the
	// second miss is visible it can only attach (the claim is held until
	// the batch item finishes) or, post-finish, read the store.
	for svc.Stats().Misses < 2 {
		time.Sleep(time.Millisecond)
	}
	close(gateRelease)
	<-batchDone
	<-singleDone

	if batchErr != nil || singleErr != nil {
		t.Fatalf("batch err=%v singleton err=%v", batchErr, singleErr)
	}
	if got := gateSearches.Load() - before; got != 1 {
		t.Errorf("batch + attached singleton ran %d searches, want 1", got)
	}
	if !bytes.Equal(batchResults[0].Body, singleBody) {
		t.Error("attached singleton body differs from the batch item body")
	}
}

// TestBatchAttachesToSingletonSearch is the mirror image: a batch item
// whose fingerprint a singleton request is already searching waits for
// that flight; the rest of the batch searches normally.
func TestBatchAttachesToSingletonSearch(t *testing.T) {
	svc := stubService(t, Config{})
	gateStarted = make(chan struct{}, 8)
	gateRelease = make(chan struct{})
	shared := testSpec(t, 0)
	gated := RequestOptions{Method: "gate"}
	before := gateSearches.Load()

	var singleBody []byte
	var singleErr error
	singleDone := make(chan struct{})
	go func() {
		defer close(singleDone)
		singleBody, _, singleErr = svc.ConfigureJSON(context.Background(), shared, gated)
	}()
	<-gateStarted // the singleton leader is in flight

	var results []BatchResult
	var batchErr error
	batchDone := make(chan struct{})
	go func() {
		defer close(batchDone)
		results, batchErr = svc.ConfigureBatch(context.Background(), []BatchItem{
			{Spec: testSpec(t, 0), Options: gated}, // in flight at the singleton
			{Spec: testSpec(t, 1)},                 // fresh: searched by the batch (stub)
		})
	}()
	// The batch runs its own misses before waiting on attached flights, so
	// the fresh item completes while the shared one is still gated.
	for svc.Stats().Misses < 3 {
		time.Sleep(time.Millisecond)
	}
	close(gateRelease)
	<-singleDone
	<-batchDone

	if singleErr != nil || batchErr != nil {
		t.Fatalf("singleton err=%v batch err=%v", singleErr, batchErr)
	}
	if got := gateSearches.Load() - before; got != 1 {
		t.Errorf("singleton + attached batch item ran %d gated searches, want 1", got)
	}
	if !bytes.Equal(results[0].Body, singleBody) {
		t.Error("attached batch item body differs from the singleton body")
	}
	if results[1].Err != nil || len(results[1].Body) == 0 {
		t.Errorf("fresh batch item: err=%v body=%d bytes", results[1].Err, len(results[1].Body))
	}
}

// TestBatchWindowCoalescesSingletonMisses: with -batch-window style
// coalescing on, a cold burst of singleton requests drains into pooled
// batch runs — every miss is served, every body is stored, and the
// coalesced counter accounts for each one.
func TestBatchWindowCoalescesSingletonMisses(t *testing.T) {
	const burst = 6
	svc := stubService(t, Config{BatchWindow: 40 * time.Millisecond, BatchWorkers: 4})
	before := stubSearches.Load()

	var wg sync.WaitGroup
	errs := make([]error, burst)
	bodies := make([][]byte, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _, errs[i] = svc.ConfigureJSON(context.Background(), testSpec(t, i), RequestOptions{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		if len(bodies[i]) == 0 {
			t.Fatalf("caller %d got an empty body", i)
		}
	}
	if got := stubSearches.Load() - before; got != burst {
		t.Errorf("coalesced burst ran %d searches, want %d", got, burst)
	}
	st := svc.Stats()
	if st.Coalesced != burst {
		t.Errorf("coalesced = %d, want %d", st.Coalesced, burst)
	}
	if st.BatchRuns < 1 || st.BatchRuns > burst {
		t.Errorf("batch runs = %d, want 1..%d", st.BatchRuns, burst)
	}
	if st.Misses != burst || st.Entries != burst {
		t.Errorf("stats after coalesced burst: %+v", st)
	}

	// Warm requests bypass the coalescer entirely: hits never wait on the
	// window and the coalesced counter stays put.
	if _, hit, err := svc.ConfigureJSON(context.Background(), testSpec(t, 0), RequestOptions{}); err != nil || !hit {
		t.Fatalf("warm request after coalesced burst: hit=%v err=%v", hit, err)
	}
	if got := svc.Stats().Coalesced; got != burst {
		t.Errorf("a cache hit moved the coalesced counter to %d", got)
	}
}

// TestCloseFailsParkedWindow: closing the service mid-window fails the
// parked request cleanly (no search runs against the closed store) and a
// fresh request after close is refused by the coalescer, not wedged.
func TestCloseFailsParkedWindow(t *testing.T) {
	svc, err := New(Config{Method: "stub", BatchWindow: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := svc.ConfigureJSON(context.Background(), testSpec(t, 0), RequestOptions{})
		errc <- err
	}()
	// Wait until the miss is parked with the coalescer, then close.
	for {
		svc.coal.mu.Lock()
		parked := len(svc.coal.pending)
		svc.coal.mu.Unlock()
		if parked == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	before := stubSearches.Load()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, errServiceClosed) {
		t.Errorf("parked request error = %v, want errServiceClosed", err)
	}
	if got := stubSearches.Load() - before; got != 0 {
		t.Errorf("close ran %d searches for parked misses, want 0", got)
	}
	// Post-close misses fail immediately instead of parking forever.
	if _, _, err := svc.ConfigureJSON(context.Background(), testSpec(t, 1), RequestOptions{}); !errors.Is(err, errServiceClosed) {
		t.Errorf("post-close request error = %v, want errServiceClosed", err)
	}
}

// TestEvaluateNChunksLockHolds: a big evaluate batch re-acquires per
// 64-run chunk — amortized against the lock-per-run loop, but bounded so
// one caller cannot hold a shard for MaxEvaluateRuns runs.
func TestEvaluateNChunksLockHolds(t *testing.T) {
	pool, err := newRunnerPool(testSpec(t, 0), workflow.RunnerOptions{Seed: 42}, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := pool.locks.Load()
	results, err := pool.evaluateN(testSpec(t, 0).Base, 130)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 130 {
		t.Fatalf("got %d results, want 130", len(results))
	}
	if got := pool.locks.Load() - before; got != 3 {
		t.Errorf("130 runs acquired %d shard locks, want 3 (chunks of %d)", got, evaluateChunk)
	}
}

func TestBatchResultRecommendation(t *testing.T) {
	svc := stubService(t, Config{})
	results, err := svc.ConfigureBatch(context.Background(), []BatchItem{{Spec: testSpec(t, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := results[0].Recommendation()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fingerprint != results[0].Fingerprint || len(rec.Assignment) == 0 {
		t.Errorf("decoded recommendation %+v", rec)
	}
	failed := BatchResult{Err: errors.New("nope")}
	if _, err := failed.Recommendation(); err == nil {
		t.Error("Recommendation on a failed item did not error")
	}
}
