package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent work by key: the first caller for a
// key becomes the leader and runs fn; every caller that arrives while the
// leader is in flight waits for the leader's result instead of running fn
// again. Unlike golang.org/x/sync/singleflight (not vendored here), the
// wait is context-aware: a follower whose context is cancelled stops
// waiting and returns its ctx.Err() while the leader keeps running — one
// impatient client never aborts work other clients are waiting on.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller received a leader's result rather than running fn itself.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	// Cleanup is deferred so a panicking fn (recovered further up, e.g. by
	// net/http) cannot leave a never-closed call in the map, which would
	// block every future caller for this key forever.
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	return c.val, c.err, false
}
