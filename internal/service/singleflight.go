package service

import (
	"context"
	"errors"
	"sync"
)

// flightGroup deduplicates concurrent work by key: the first caller for a
// key becomes the leader and owes the group a result; every caller that
// arrives while the leader is in flight waits for the leader's result
// instead of running the work again. Unlike golang.org/x/sync/singleflight
// (not vendored here), the wait is context-aware: a follower whose context
// is cancelled stops waiting and returns its ctx.Err() while the leader
// keeps running — one impatient client never aborts work other clients
// are waiting on.
//
// The group exposes its primitives (claim, wait, finish, abandon) as well
// as the classic do wrapper: the batched configure path claims many keys
// up front, runs them on a worker pool, and finishes each flight as its
// item completes, so singleton callers attached to any one fingerprint
// are released by that item, not by the whole batch.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done     chan struct{} // closed when val/err are published
	val      any
	err      error
	finished bool // set by finish; read only by the leader side (abandon)
}

// errLeaderPanicked is published to followers when a leader dies without
// producing a result (its fn panicked and was recovered further up, e.g.
// by net/http). Without the sentinel, the deferred cleanup would close
// done with val and err both unset, and followers would observe
// (nil, nil) as success — a nil body the configure path would then
// dereference.
var errLeaderPanicked = errors.New("service: in-flight search abandoned (leader panicked)")

// claim registers this caller for key. The first caller becomes the
// leader (leader == true) and owes the group exactly one finish — or
// abandon, deferred, if its work can panic — for the returned call; later
// callers receive the existing in-flight call to wait on.
func (g *flightGroup) claim(key string) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if existing, ok := g.m[key]; ok {
		return existing, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// wait blocks until the call's result is published or ctx is cancelled.
func (g *flightGroup) wait(ctx context.Context, c *flightCall) (any, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// finish publishes the leader's result and releases the key. The result
// fields are set before done is closed, so no waiter can observe a
// half-published call; the key is deleted first, so a caller arriving
// after finish starts a fresh flight rather than reading a stale one.
func (g *flightGroup) finish(key string, c *flightCall, val any, err error) {
	c.val, c.err = val, err
	c.finished = true
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
}

// abandon is the leader's deferred safety net: if the call was never
// finished — the leader's fn panicked — it publishes errLeaderPanicked so
// followers fail cleanly instead of reading an unset (nil, nil) as
// success. A finished call is left alone.
func (g *flightGroup) abandon(key string, c *flightCall) {
	if c.finished {
		return
	}
	g.finish(key, c, nil, errLeaderPanicked)
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller received a leader's result rather than running fn itself.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared bool) {
	c, leader := g.claim(key)
	if !leader {
		val, err = g.wait(ctx, c)
		return val, err, true
	}
	// Abandon is deferred so a panicking fn (recovered further up, e.g. by
	// net/http) publishes the sentinel error instead of leaving followers
	// a (nil, nil) success or — worse — a never-closed call.
	defer g.abandon(key, c)
	val, err = fn()
	g.finish(key, c, val, err)
	return val, err, false
}
