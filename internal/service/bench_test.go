package service

import (
	"testing"

	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// BenchmarkEvaluateN compares the evaluate batch path against the
// lock-per-run loop it replaced: one shard-lock acquisition per 64-run
// chunk instead of one per run. The locks/run metric is the amortization
// itself — 1/evaluateChunk for the batched path, 1 for the loop; it is
// what contention multiplies, so it matters even where the uncontended
// wall-time difference sits inside noise.
//
//	go test ./internal/service -bench=BenchmarkEvaluateN -benchtime=100x -run='^$'
func BenchmarkEvaluateN(b *testing.B) {
	spec, err := workloads.ByName("chatbot")
	if err != nil {
		b.Fatal(err)
	}
	pool, err := newRunnerPool(spec, workflow.RunnerOptions{HostCores: 96, Noise: true, Seed: 42}, 4)
	if err != nil {
		b.Fatal(err)
	}
	const runs = 64
	b.Run("LockPerRun", func(b *testing.B) {
		start := pool.locks.Load()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < runs; j++ {
				if _, err := pool.evaluate(spec.Base); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(pool.locks.Load()-start)/float64(b.N*runs), "locks/run")
	})
	b.Run("Batched", func(b *testing.B) {
		start := pool.locks.Load()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := pool.evaluateN(spec.Base, runs)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != runs {
				b.Fatalf("got %d results, want %d", len(res), runs)
			}
		}
		b.ReportMetric(float64(pool.locks.Load()-start)/float64(b.N*runs), "locks/run")
	})
}
