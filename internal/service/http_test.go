package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"aarc/internal/workflow"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := stubService(t, cfg)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// specBody renders a testSpec variant in the inline-spec request format,
// exercising the DecodeSpec path rather than the workload shortcut.
func specBody(t *testing.T, variant int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := workflow.EncodeSpec(&buf, testSpec(t, variant)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestHTTPConfigureConcurrentSingleSearch(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	before := stubSearches.Load()

	// 64 concurrent requests: half for one spec, half spread over 4 others.
	const callers = 64
	bodies := make([]string, 5)
	for v := range bodies {
		bodies[v] = fmt.Sprintf(`{"spec": %s}`, specBody(t, v))
	}
	var wg sync.WaitGroup
	responses := make([][]byte, callers)
	statuses := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := bodies[0]
			if i%2 == 1 {
				body = bodies[1+(i/2)%4]
			}
			resp, b := postJSON(t, ts.URL+"/v1/configure", body)
			responses[i], statuses[i] = b, resp.StatusCode
		}(i)
	}
	wg.Wait()

	for i, code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, responses[i])
		}
	}
	if got := stubSearches.Load() - before; got != 5 {
		t.Errorf("%d concurrent requests over 5 distinct specs ran %d searches, want 5", callers, got)
	}
	if st := svc.Stats(); st.Entries != 5 {
		t.Errorf("cache entries = %d, want 5", st.Entries)
	}

	// Responses for the same spec are byte-identical regardless of which
	// caller was the singleflight leader.
	for i := 2; i < callers; i += 2 {
		if !bytes.Equal(responses[0], responses[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, responses[i], responses[0])
		}
	}
}

func TestHTTPConfigureCacheHeaderAndHitBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"spec": %s}`, specBody(t, 0))

	resp1, b1 := postJSON(t, ts.URL+"/v1/configure", body)
	if got := resp1.Header.Get("X-Aarc-Cache"); got != "miss" {
		t.Errorf("first response cache header = %q, want miss", got)
	}
	before := stubSearches.Load()
	resp2, b2 := postJSON(t, ts.URL+"/v1/configure", body)
	if got := resp2.Header.Get("X-Aarc-Cache"); got != "hit" {
		t.Errorf("second response cache header = %q, want hit", got)
	}
	if stubSearches.Load() != before {
		t.Error("cache hit invoked a searcher")
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("hit bytes differ from miss bytes:\n%s\nvs\n%s", b2, b1)
	}

	var rec Recommendation
	if err := json.Unmarshal(b2, &rec); err != nil {
		t.Fatalf("response is not a Recommendation: %v\n%s", err, b2)
	}
	if !strings.HasPrefix(rec.Fingerprint, "sha256:") || len(rec.Assignment) == 0 {
		t.Errorf("malformed recommendation %+v", rec)
	}
}

func TestHTTPConfigureWorkloadShortcut(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJSON(t, ts.URL+"/v1/configure", `{"workload": "chatbot"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var rec Recommendation
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Workflow != "chatbot" {
		t.Errorf("workflow = %q", rec.Workflow)
	}
}

func TestHTTPConfigureErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"empty":         `{}`,
		"both":          fmt.Sprintf(`{"workload": "chatbot", "spec": %s}`, specBody(t, 0)),
		"bad workload":  `{"workload": "nope"}`,
		"invalid json":  `{"workload":`,
		"unknown field": `{"workload": "chatbot", "spec": {"bogus": 1}, "x": 2}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/configure", body)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s: got 200: %s", name, b)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON {error}: %s", name, b)
		}
	}
}

func TestHTTPDispatchAndEvaluate(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, b := postJSON(t, ts.URL+"/v1/dispatch", `{"workload": "video-analysis", "scale": 1.4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dispatch status %d: %s", resp.StatusCode, b)
	}
	var d DispatchResult
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if d.Class != "heavy" {
		t.Errorf("scale 1.4 classified as %q, want heavy", d.Class)
	}

	// Evaluate needs a configured fingerprint.
	_, cb := postJSON(t, ts.URL+"/v1/configure", `{"workload": "chatbot"}`)
	var rec Recommendation
	if err := json.Unmarshal(cb, &rec); err != nil {
		t.Fatal(err)
	}
	resp, b = postJSON(t, ts.URL+"/v1/evaluate",
		fmt.Sprintf(`{"fingerprint": %q, "runs": 3}`, rec.Fingerprint))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, b)
	}
	var ev evaluateResponse
	if err := json.Unmarshal(b, &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Runs) != 3 || ev.MeanE2EMS <= 0 {
		t.Errorf("evaluate response %+v", ev)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/evaluate", `{"fingerprint": "sha256:gone", "runs": 1}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint status = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/evaluate",
		fmt.Sprintf(`{"fingerprint": %q, "runs": 2000000000}`, rec.Fingerprint))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized runs status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPConfigureBatch(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	before := stubSearches.Load()

	// Four slots: two unique specs, one batch-internal duplicate, one bad
	// workload that must fail only its own slot.
	body := fmt.Sprintf(`{"requests": [
		{"spec": %s},
		{"spec": %s},
		{"spec": %s},
		{"workload": "nope"}
	]}`, specBody(t, 0), specBody(t, 1), specBody(t, 0))
	resp, b := postJSON(t, ts.URL+"/v1/configure:batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, b)
	}
	var out struct {
		Results []struct {
			Status         int             `json:"status"`
			Cache          string          `json:"cache"`
			Fingerprint    string          `json:"fingerprint"`
			Recommendation *Recommendation `json:"recommendation"`
			Error          string          `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("batch response is not JSON: %v\n%s", err, b)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d results, want 4: %s", len(out.Results), b)
	}
	for i := 0; i < 3; i++ {
		r := out.Results[i]
		if r.Status != http.StatusOK || r.Cache != "miss" || r.Recommendation == nil || !strings.HasPrefix(r.Fingerprint, "sha256:") {
			t.Errorf("item %d = %+v, want 200/miss with a recommendation", i, r)
		}
	}
	if out.Results[2].Fingerprint != out.Results[0].Fingerprint {
		t.Error("duplicate item resolved to a different fingerprint")
	}
	if r := out.Results[3]; r.Status != http.StatusBadRequest || r.Error == "" || r.Recommendation != nil {
		t.Errorf("bad item = %+v, want a per-item 400 with an error", r)
	}
	if got := stubSearches.Load() - before; got != 2 {
		t.Errorf("batch of 2 unique specs ran %d searches, want 2", got)
	}

	// The whole batch again: every healthy slot is a cache hit, and the
	// recommendation bytes match what the singleton endpoint serves.
	resp, b = postJSON(t, ts.URL+"/v1/configure:batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm batch status %d: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if out.Results[i].Status != http.StatusOK || out.Results[i].Cache != "hit" {
			t.Errorf("warm item %d = status %d cache %q, want 200/hit", i, out.Results[i].Status, out.Results[i].Cache)
		}
	}
	_, single := postJSON(t, ts.URL+"/v1/configure", fmt.Sprintf(`{"spec": %s}`, specBody(t, 0)))
	var singleRec Recommendation
	if err := json.Unmarshal(single, &singleRec); err != nil {
		t.Fatal(err)
	}
	if out.Results[0].Recommendation.Fingerprint != singleRec.Fingerprint {
		t.Error("batch item and singleton configure disagree on the fingerprint")
	}
	_ = svc
}

func TestHTTPConfigureBatchRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"empty":        `{"requests": []}`,
		"missing":      `{}`,
		"invalid json": `{"requests": [`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/configure:batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, b)
		}
	}
	// Oversized batches are rejected as a whole, before any work runs.
	var sb strings.Builder
	sb.WriteString(`{"requests": [`)
	for i := 0; i <= MaxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"workload": "chatbot"}`)
	}
	sb.WriteString(`]}`)
	before := stubSearches.Load()
	resp, b := postJSON(t, ts.URL+"/v1/configure:batch", sb.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch status %d, want 400: %s", resp.StatusCode, b)
	}
	if got := stubSearches.Load() - before; got != 0 {
		t.Errorf("oversized batch still ran %d searches", got)
	}
}

// TestHTTPEvaluateErrorReportsCompletedRuns: when an evaluate batch
// fails, the error body says how many runs completed instead of silently
// discarding the partial progress.
func TestHTTPEvaluateErrorReportsCompletedRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, cb := postJSON(t, ts.URL+"/v1/configure", fmt.Sprintf(`{"spec": %s}`, specBody(t, 0)))
	var rec Recommendation
	if err := json.Unmarshal(cb, &rec); err != nil {
		t.Fatal(err)
	}
	// An assignment missing the "out" group fails inside the runner.
	resp, b := postJSON(t, ts.URL+"/v1/evaluate", fmt.Sprintf(
		`{"fingerprint": %q, "runs": 3, "assignment": {"in": {"cpu": 1, "mem_mb": 512}}}`, rec.Fingerprint))
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("evaluate with a broken assignment returned 200: %s", b)
	}
	var e struct {
		Error         string `json:"error"`
		CompletedRuns *int   `json:"completed_runs"`
	}
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, b)
	}
	if e.Error == "" || e.CompletedRuns == nil {
		t.Errorf("error body missing error/completed_runs: %s", b)
	}
	if e.CompletedRuns != nil && *e.CompletedRuns != 0 {
		t.Errorf("completed_runs = %d, want 0 (the first run fails)", *e.CompletedRuns)
	}
}

func TestHTTPMethodsAndHealthz(t *testing.T) {
	svc, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/methods")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m struct {
		Methods []struct {
			Name    string `json:"name"`
			Display string `json:"display"`
		} `json:"methods"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, mm := range m.Methods {
		names[mm.Name] = true
	}
	for _, want := range []string{"aarc", "stub", "random", "grid"} {
		if !names[want] {
			t.Errorf("method %q missing from /v1/methods: %s", want, b)
		}
	}

	// Prime one entry so healthz stats are non-trivial.
	postJSON(t, ts.URL+"/v1/configure", `{"workload": "chatbot"}`)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Stats.Entries != 1 {
		t.Errorf("healthz = %s", b)
	}
	_ = svc
}

func TestHTTPFingerprintGetAndDelete(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	before := stubSearches.Load()

	// Configure once to learn the fingerprint.
	_, b := postJSON(t, ts.URL+"/v1/configure", fmt.Sprintf(`{"spec": %s}`, specBody(t, 0)))
	var rec Recommendation
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}

	// The fast path: no spec body, no canonicalization, byte-identical
	// response, always a hit.
	resp, err := http.Get(ts.URL + "/v1/recommendation/" + rec.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fingerprint GET status %d: %s", resp.StatusCode, got)
	}
	if h := resp.Header.Get("X-Aarc-Cache"); h != "hit" {
		t.Errorf("fingerprint GET cache header = %q, want hit", h)
	}
	if !bytes.Equal(got, b) {
		t.Errorf("fingerprint GET body differs from configure body:\n%s\nvs\n%s", got, b)
	}
	if n := stubSearches.Load() - before; n != 1 {
		t.Errorf("GET path ran %d searches, want 1 (the configure)", n)
	}

	// Unknown fingerprints 404 without searching.
	resp, err = http.Get(ts.URL + "/v1/recommendation/sha256:unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint GET status = %d, want 404", resp.StatusCode)
	}

	// DELETE invalidates: 204, then 404, then a re-configure searches again.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/recommendation/"+rec.Fingerprint, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE status = %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/recommendation/" + rec.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after DELETE status = %d, want 404", resp.StatusCode)
	}
	resp, err = http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE status = %d, want 404", resp.StatusCode)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/configure", fmt.Sprintf(`{"spec": %s}`, specBody(t, 0)))
	if h := resp2.Header.Get("X-Aarc-Cache"); h != "miss" {
		t.Errorf("configure after DELETE cache header = %q, want miss", h)
	}
	_ = svc
}

func TestHTTPHealthzReportsStoreStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := fmt.Sprintf(`{"spec": %s}`, specBody(t, 0))
	postJSON(t, ts.URL+"/v1/configure", body)
	postJSON(t, ts.URL+"/v1/configure", body)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	st := h.Stats
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("healthz counters = %+v, want 1 hit / 1 miss: %s", st, b)
	}
	if st.Store != "memory" || st.Tiers["memory"] != 1 || st.Entries != 1 {
		t.Errorf("healthz store stats = %+v, want memory kind with 1 entry: %s", st, b)
	}
}

func TestHTTPMethodsIncludeVersions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/methods")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m struct {
		Methods []struct {
			Name    string `json:"name"`
			Version int    `json:"version"`
		} `json:"methods"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, mm := range m.Methods {
		if mm.Version < 1 {
			t.Errorf("method %q reports version %d, want >= 1: %s", mm.Name, mm.Version, b)
		}
	}
}
