package drift

import (
	"context"
	"sync"
	"testing"
	"time"

	"aarc/internal/testutil"
)

// fakeProber serves scripted latencies per fingerprint; safe for
// concurrent use so Run-based tests pass -race.
type fakeProber struct {
	mu  sync.Mutex
	fps []string
	e2e map[string][]float64 // returned verbatim by every Probe
	slo map[string]float64
	err map[string]error
}

func (p *fakeProber) Fingerprints() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fps...)
}

func (p *fakeProber) Probe(fp string, runs int) ([]float64, float64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.err[fp]; err != nil {
		return nil, 0, err
	}
	return append([]float64(nil), p.e2e[fp]...), p.slo[fp], nil
}

func (p *fakeProber) set(fp string, e2e []float64, slo float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.e2e[fp] = e2e
	p.slo[fp] = slo
}

func newFakeProber(fps ...string) *fakeProber {
	return &fakeProber{
		fps: fps,
		e2e: make(map[string][]float64),
		slo: make(map[string]float64),
		err: make(map[string]error),
	}
}

func drain(t *testing.T, ch <-chan string) []string {
	t.Helper()
	var out []string
	for {
		select {
		case fp := <-ch:
			out = append(out, fp)
		default:
			return out
		}
	}
}

func TestThresholdCrossingEnqueuesOnce(t *testing.T) {
	p := newFakeProber("fp")
	p.set("fp", []float64{950, 960, 970}, 1000) // p99 = 970, ratio 0.97 >= 0.9
	m := New(p, Config{Interval: time.Hour})

	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 1 || got[0] != "fp" {
		t.Fatalf("first sweep enqueued %v, want [fp]", got)
	}
	if m.Detected() != 1 {
		t.Fatalf("Detected = %d, want 1", m.Detected())
	}
	// Still bad on later sweeps: flagged entries must NOT re-enqueue —
	// that would refresh in a hot loop.
	for i := 0; i < 3; i++ {
		m.Sweep(context.Background())
	}
	if got := drain(t, m.Stale()); len(got) != 0 {
		t.Fatalf("flagged entry re-enqueued: %v", got)
	}
	if m.Checks() != 4 {
		t.Fatalf("Checks = %d, want 4", m.Checks())
	}
}

func TestHealthyEntryNeverFlagged(t *testing.T) {
	p := newFakeProber("fp")
	p.set("fp", []float64{100, 120, 140}, 1000) // ratio 0.14
	m := New(p, Config{Interval: time.Hour})
	for i := 0; i < 3; i++ {
		m.Sweep(context.Background())
	}
	if got := drain(t, m.Stale()); len(got) != 0 {
		t.Fatalf("healthy entry enqueued: %v", got)
	}
	if m.Detected() != 0 {
		t.Fatalf("Detected = %d, want 0", m.Detected())
	}
}

func TestHysteresisRearmsOnlyBelowLowerWatermark(t *testing.T) {
	p := newFakeProber("fp")
	// Small window so recovery latencies displace the bad ones quickly.
	m := New(p, Config{Interval: time.Hour, Threshold: 0.9, Hysteresis: 0.9, Runs: 4, Window: 4})

	p.set("fp", []float64{950, 950, 950, 950}, 1000) // ratio 0.95: flag
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 1 {
		t.Fatalf("not flagged on crossing: %v", got)
	}

	// Between the watermarks (0.81..0.9): stays flagged, no re-enqueue,
	// and — crucially — crossing the threshold again does not re-fire.
	p.set("fp", []float64{850, 850, 850, 850}, 1000)
	m.Sweep(context.Background())
	p.set("fp", []float64{950, 950, 950, 950}, 1000)
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 0 {
		t.Fatalf("flapping around the threshold re-enqueued: %v", got)
	}

	// Below the lower watermark (0.9*0.9 = 0.81): re-arms...
	p.set("fp", []float64{100, 100, 100, 100}, 1000)
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 0 {
		t.Fatalf("recovery itself enqueued: %v", got)
	}
	// ...so the next crossing fires again.
	p.set("fp", []float64{950, 950, 950, 950}, 1000)
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 1 {
		t.Fatalf("re-armed entry did not re-flag: %v", got)
	}
	if m.Detected() != 2 {
		t.Fatalf("Detected = %d, want 2", m.Detected())
	}
}

func TestRollingWindowP99NotLatestProbe(t *testing.T) {
	p := newFakeProber("fp")
	// One bad probe in an otherwise healthy window: with Window 64 and
	// Runs 4, a single 4-run spike is the window's p99 — exactly the
	// "p99 creeping toward the SLO" signal — but a later healthy probe
	// alone must not clear the flag while the spike is still in-window.
	m := New(p, Config{Interval: time.Hour, Runs: 4, Window: 8})
	p.set("fp", []float64{100, 100, 100, 100}, 1000)
	m.Sweep(context.Background())
	p.set("fp", []float64{950, 950, 950, 950}, 1000)
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 1 {
		t.Fatalf("spike not flagged: %v", got)
	}
	// Window now half healthy, half spiked: p99 still 950 -> flagged.
	p.set("fp", []float64{100, 100, 100, 100}, 1000)
	m.Sweep(context.Background()) // window: 950x4 gone? no: ring overwrote the oldest 100s
	m.Sweep(context.Background()) // now the 950s are displaced
	p.set("fp", []float64{950, 950, 950, 950}, 1000)
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 1 {
		t.Fatalf("recovered-then-respiked entry did not re-flag: %v", got)
	}
}

func TestProbeErrorsSkipEntry(t *testing.T) {
	p := newFakeProber("ok", "bad")
	p.set("ok", []float64{950}, 1000)
	p.err["bad"] = context.DeadlineExceeded
	m := New(p, Config{Interval: time.Hour})
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 1 || got[0] != "ok" {
		t.Fatalf("sweep over a failing probe enqueued %v, want [ok]", got)
	}
	if m.Checks() != 2 {
		t.Fatalf("Checks = %d, want 2 (errors still count as checks)", m.Checks())
	}
}

func TestPruneDropsInvalidatedState(t *testing.T) {
	p := newFakeProber("fp")
	p.set("fp", []float64{950}, 1000)
	m := New(p, Config{Interval: time.Hour})
	m.Sweep(context.Background())
	drain(t, m.Stale())

	// The entry disappears (invalidated), then reappears healthy: its
	// flag and window must have been reset with it.
	p.mu.Lock()
	p.fps = nil
	p.mu.Unlock()
	m.Sweep(context.Background())

	p.mu.Lock()
	p.fps = []string{"fp"}
	p.mu.Unlock()
	p.set("fp", []float64{950}, 1000)
	m.Sweep(context.Background())
	if got := drain(t, m.Stale()); len(got) != 1 {
		t.Fatalf("re-added entry inherited stale flag: %v", got)
	}
}

func TestFullQueueDropsWithCounter(t *testing.T) {
	fps := []string{"a", "b", "c"}
	p := newFakeProber(fps...)
	for _, fp := range fps {
		p.set(fp, []float64{950}, 1000)
	}
	m := New(p, Config{Interval: time.Hour, QueueSize: 1})
	m.Sweep(context.Background()) // 3 flagged, queue holds 1
	if got := drain(t, m.Stale()); len(got) != 1 {
		t.Fatalf("queue delivered %v, want exactly 1", got)
	}
	if m.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", m.Dropped())
	}
}

func TestRunSweepsOnTicker(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := newFakeProber("fp")
	p.set("fp", []float64{950}, 1000)
	m := New(p, Config{Interval: 2 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		m.Run(ctx)
		close(done)
	}()
	select {
	case fp := <-m.Stale():
		if fp != "fp" {
			t.Errorf("stale fingerprint = %q", fp)
		}
	case <-time.After(5 * time.Second):
		t.Error("Run never flagged the stale entry")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}
