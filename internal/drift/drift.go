// Package drift watches configured recommendations for staleness. The
// §IV-D engine configures each workload class once and never revisits;
// a long-lived service must notice when a cached recommendation's
// validation latency creeps toward its SLO — traffic drifted, the
// simulator's noise regime shifted, a method version produced a fluke —
// and queue it for background re-search.
//
// The Monitor is deliberately ignorant of the serving layer: it speaks
// a two-method Prober interface (list the fingerprints, sample one) and
// emits stale fingerprints on a bounded queue. The serving layer probes
// on its existing sharded runner pools (evaluateN, so the shard-lock
// amortization is reused) and consumes the queue with its background
// refresher.
//
// Detection is a rolling p99 with hysteresis: each sweep appends a few
// validation runs to a per-fingerprint window, and an entry is flagged
// when window-p99 crosses Threshold×SLO. A flagged entry is enqueued
// exactly once — not on every sweep it stays bad, which would refresh
// in a hot loop — and is re-armed only after its p99 recovers below the
// lower watermark (Threshold×Hysteresis×SLO). The gap between the two
// watermarks is what keeps an entry oscillating around the threshold
// from flapping between refresh and recovery.
package drift

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Prober is the monitor's view of the serving layer.
type Prober interface {
	// Fingerprints lists the currently stored fingerprints to watch.
	Fingerprints() []string
	// Probe runs the fingerprint's recommended assignment runs times and
	// returns the per-run end-to-end latencies plus the entry's SLO.
	// Errors skip the entry this sweep (an entry invalidated between
	// Fingerprints and Probe is not a monitor failure).
	Probe(fp string, runs int) (e2eMS []float64, sloMS float64, err error)
}

// Config tunes a Monitor. Zero fields take the documented defaults.
type Config struct {
	// Interval between sweeps; required (Run panics on zero — a monitor
	// without a cadence is a construction bug, not a default).
	Interval time.Duration
	// Threshold is the staleness watermark as a fraction of the SLO: an
	// entry is stale when its rolling validation p99 reaches
	// Threshold×SLO. Default 0.9 — flag entries *creeping toward* the
	// SLO, before they breach it.
	Threshold float64
	// Hysteresis is the recovery watermark as a fraction of the
	// threshold: a flagged entry re-arms only once its p99 falls below
	// Threshold×Hysteresis×SLO. Default 0.9.
	Hysteresis float64
	// Runs is how many validation executions each sweep adds to an
	// entry's rolling window. Default 8.
	Runs int
	// Window bounds the rolling latency window per entry. Default 64.
	Window int
	// QueueSize bounds the stale-fingerprint queue. A full queue drops
	// (counted) rather than blocking the sweep. Default 64.
	QueueSize int
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 0.9
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.9
	}
	if c.Runs <= 0 {
		c.Runs = 8
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	return c
}

// entryState is one fingerprint's rolling window and hysteresis flag.
type entryState struct {
	window  []float64 // ring, oldest overwritten at next
	next    int
	full    bool
	flagged bool
}

func (st *entryState) add(v float64, capacity int) {
	if len(st.window) < capacity && !st.full {
		st.window = append(st.window, v)
		if len(st.window) == capacity {
			st.full = true
		}
		return
	}
	st.window[st.next] = v
	st.next = (st.next + 1) % len(st.window)
}

// p99 of the window's current contents.
func (st *entryState) p99() float64 {
	n := len(st.window)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), st.window...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(0.99*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Monitor periodically sweeps every stored fingerprint and enqueues the
// ones whose rolling validation p99 crossed the staleness watermark.
// Safe for concurrent use; Run is the only blocking method.
type Monitor struct {
	p   Prober
	cfg Config

	stale chan string

	mu      sync.Mutex
	entries map[string]*entryState

	checks   atomic.Int64 // probes performed
	detected atomic.Int64 // healthy -> stale transitions
	dropped  atomic.Int64 // stale fingerprints lost to a full queue
}

// New builds a Monitor over p. It does not start sweeping: call Run.
func New(p Prober, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		p:       p,
		cfg:     cfg,
		stale:   make(chan string, cfg.QueueSize),
		entries: make(map[string]*entryState),
	}
}

// Stale is the queue of fingerprints flagged stale, each exactly once
// per healthy→stale transition. The channel is never closed: consumers
// select against their own shutdown signal.
func (m *Monitor) Stale() <-chan string { return m.stale }

// Checks counts probes performed since construction.
func (m *Monitor) Checks() int64 { return m.checks.Load() }

// Detected counts healthy→stale transitions since construction.
func (m *Monitor) Detected() int64 { return m.detected.Load() }

// Dropped counts stale fingerprints lost to a full queue.
func (m *Monitor) Dropped() int64 { return m.dropped.Load() }

// Run sweeps every Interval until ctx is done. It blocks; callers run
// it on its own goroutine.
func (m *Monitor) Run(ctx context.Context) {
	if m.cfg.Interval <= 0 {
		panic("drift: Monitor.Run without an Interval")
	}
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Sweep(ctx)
		}
	}
}

// Sweep probes every stored fingerprint once: Runs validation
// executions into its rolling window, flag on crossing the staleness
// watermark, re-arm on recovering below the lower one. Exposed so tests
// (and deterministic drills) can drive sweeps without the ticker.
func (m *Monitor) Sweep(ctx context.Context) {
	fps := m.p.Fingerprints()
	m.prune(fps)
	for _, fp := range fps {
		if ctx.Err() != nil {
			return
		}
		e2e, slo, err := m.p.Probe(fp, m.cfg.Runs)
		m.checks.Add(1)
		if err != nil || slo <= 0 || len(e2e) == 0 {
			continue
		}
		if fp, stale := m.observe(fp, e2e, slo); stale {
			select {
			case m.stale <- fp:
			default:
				m.dropped.Add(1)
			}
		}
	}
}

// observe folds one probe into the fingerprint's window and reports
// whether this probe flipped it healthy→stale.
func (m *Monitor) observe(fp string, e2e []float64, slo float64) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.entries[fp]
	if !ok {
		st = &entryState{}
		m.entries[fp] = st
	}
	for _, v := range e2e {
		st.add(v, m.cfg.Window)
	}
	ratio := st.p99() / slo
	switch {
	case !st.flagged && ratio >= m.cfg.Threshold:
		st.flagged = true
		m.detected.Add(1)
		return fp, true
	case st.flagged && ratio < m.cfg.Threshold*m.cfg.Hysteresis:
		st.flagged = false
	}
	return fp, false
}

// prune drops state for fingerprints no longer stored (invalidated or
// evicted), so a re-added entry starts with a fresh window.
func (m *Monitor) prune(live []string) {
	alive := make(map[string]struct{}, len(live))
	for _, fp := range live {
		alive[fp] = struct{}{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for fp := range m.entries {
		if _, ok := alive[fp]; !ok {
			delete(m.entries, fp)
		}
	}
}
