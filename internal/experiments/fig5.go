package experiments

import (
	"fmt"
	"io"
)

// Fig5Cell is one (workload, method) total of the sampling process.
type Fig5Cell struct {
	Workload       string
	Method         string
	Samples        int
	TotalRuntimeMS float64
	TotalCost      float64
}

// Fig5Result reproduces Fig. 5: total sampling runtime (a) and cost (b) per
// method and workload, plus AARC's reduction percentages against each
// baseline.
type Fig5Result struct {
	Cells []Fig5Cell
}

// RunFig5 derives the totals from the suite's cached searches, first filling
// the cache (in parallel when the suite has a pool).
func RunFig5(s *Suite) (Fig5Result, error) {
	if err := s.RunAll(); err != nil {
		return Fig5Result{}, err
	}
	var out Fig5Result
	for _, w := range Workloads() {
		for _, m := range MethodNames {
			run, err := s.Run(w, m)
			if err != nil {
				return Fig5Result{}, err
			}
			out.Cells = append(out.Cells, Fig5Cell{
				Workload:       w,
				Method:         m,
				Samples:        run.Outcome.Trace.Len(),
				TotalRuntimeMS: run.Outcome.Trace.TotalRuntimeMS(),
				TotalCost:      run.Outcome.Trace.TotalCost(),
			})
		}
	}
	return out, nil
}

// cell finds one entry; second return is false when missing.
func (f Fig5Result) cell(workload, method string) (Fig5Cell, bool) {
	for _, c := range f.Cells {
		if c.Workload == workload && c.Method == method {
			return c, true
		}
	}
	return Fig5Cell{}, false
}

// ReductionPct returns AARC's percentage reduction against a baseline for a
// workload, for runtime (dim="runtime") or cost (dim="cost").
func (f Fig5Result) ReductionPct(workload, baseline, dim string) float64 {
	a, okA := f.cell(workload, "AARC")
	b, okB := f.cell(workload, baseline)
	if !okA || !okB {
		return 0
	}
	var av, bv float64
	if dim == "cost" {
		av, bv = a.TotalCost, b.TotalCost
	} else {
		av, bv = a.TotalRuntimeMS, b.TotalRuntimeMS
	}
	if bv == 0 {
		return 0
	}
	return (bv - av) / bv * 100
}

// Render prints the Fig. 5 bars as a table plus the headline reductions.
func (f Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 5 — overall sampling cost and runtime comparison")
	t := &table{header: []string{"workload", "method", "samples", "total_runtime_s", "total_cost_k"}}
	for _, c := range f.Cells {
		t.addRow(
			c.Workload, c.Method,
			fmt.Sprintf("%d", c.Samples),
			fmt.Sprintf("%.0f", c.TotalRuntimeMS/1000),
			fmt.Sprintf("%.0f", c.TotalCost/1000),
		)
	}
	t.render(w)
	fmt.Fprintln(w)
	// Positive percentages are AARC reductions; negative means AARC spent
	// more than the baseline (the paper reports this for MAFF on ML
	// Pipeline).
	for _, wl := range Workloads() {
		fmt.Fprintf(w, "%-15s AARC vs BO  : runtime %+6.1f%%, cost %+6.1f%%\n",
			wl, -f.ReductionPct(wl, "BO", "runtime"), -f.ReductionPct(wl, "BO", "cost"))
		fmt.Fprintf(w, "%-15s AARC vs MAFF: runtime %+6.1f%%, cost %+6.1f%%\n",
			wl, -f.ReductionPct(wl, "MAFF", "runtime"), -f.ReductionPct(wl, "MAFF", "cost"))
	}
	fmt.Fprintln(w)
}
