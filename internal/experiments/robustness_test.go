package experiments

import (
	"testing"
)

// TestHeadlineOrderingsAcrossSeeds guards the paper's headline claims
// against seed luck: for several independent seeds, (a) every method's
// Table II configuration is SLO-compliant, (b) AARC's validated cost is the
// lowest on every workload, and (c) AARC's total sampling cost beats BO's.
func TestHeadlineOrderingsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed robustness sweep skipped in -short mode")
	}
	for _, seed := range []uint64{11, 23, 42} {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			suite := NewSuite(seed)
			t2, err := RunTable2(suite)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range t2.Rows {
				// Table II's claim is about the average runtime. MAFF
				// terminates right at the SLO boundary with no headroom, so
				// individual noisy runs can exceed it (the paper's own MAFF
				// at 578.2±19.3 s vs a 600 s SLO implies the same); only
				// AARC carries the safety margin that §IV-C.a's reliability
				// argument rests on.
				tol := 1.02 // one noise-width of slack for the margin-less baselines
				if row.Method == "AARC" {
					tol = 1.0 // AARC's margin must hold the mean strictly under
				}
				if row.MeanRuntimeMS > row.SLOMS*tol {
					t.Errorf("seed %d: %s/%s mean runtime %.0f exceeds SLO %.0f",
						seed, row.Workload, row.Method, row.MeanRuntimeMS, row.SLOMS)
				}
				if row.Method == "AARC" && row.Violations > Table2ValidationRuns/20 {
					t.Errorf("seed %d: AARC on %s violates SLO in %d/%d runs",
						seed, row.Workload, row.Violations, Table2ValidationRuns)
				}
			}
			for _, w := range Workloads() {
				if t2.CostReductionPct(w, "BO") <= 0 {
					t.Errorf("seed %d: AARC not cheaper than BO on %s", seed, w)
				}
				if t2.CostReductionPct(w, "MAFF") <= 0 {
					t.Errorf("seed %d: AARC not cheaper than MAFF on %s", seed, w)
				}
			}
			f5, err := RunFig5(suite)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range Workloads() {
				if f5.ReductionPct(w, "BO", "cost") <= 0 {
					t.Errorf("seed %d: AARC sampling cost not below BO on %s", seed, w)
				}
			}
		})
	}
}

func seedName(seed uint64) string {
	return "seed=" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}
