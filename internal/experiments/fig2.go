package experiments

import (
	"fmt"
	"io"

	"aarc/internal/resources"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// Fig2Result is one workload's runtime and cost heatmap over a uniform
// decoupled (vCPU, memory) grid — the motivation experiment of §II-A.
// Cell [i][j] corresponds to CPUs[i] × Mems[j]; NaN-free: infeasible (OOM)
// cells carry a negative sentinel in RuntimeMS and Cost.
type Fig2Result struct {
	Workload  string
	CPUs      []float64
	Mems      []float64
	RuntimeMS [][]float64
	Cost      [][]float64
	// MinCostCPU/MinCostMem locate the cheapest SLO-feasible cell.
	MinCostCPU float64
	MinCostMem float64
	MinCost    float64
}

// OOMSentinel marks grid cells where the workflow OOMs.
const OOMSentinel = -1

// fig2Axes returns the per-workload heatmap axes, mirroring the paper's
// figure axes (low vCPU range for Chatbot / ML Pipeline, high vCPU and
// memory range for Video Analysis).
func fig2Axes(name string) (cpus, mems []float64) {
	switch name {
	case "video-analysis":
		return []float64{4, 5, 6, 7, 8},
			[]float64{5120, 6144, 7168, 8192}
	default:
		return []float64{0.5, 1, 2, 3, 4},
			[]float64{512, 1024, 1536, 2048}
	}
}

// RunFig2 sweeps the uniform-configuration grid for one workload with noise
// disabled and returns its heatmaps.
func RunFig2(workloadName string) (Fig2Result, error) {
	spec, err := workloads.ByName(workloadName)
	if err != nil {
		return Fig2Result{}, err
	}
	runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
		HostCores: HostCores,
		Noise:     false,
	})
	if err != nil {
		return Fig2Result{}, err
	}

	cpus, mems := fig2Axes(workloadName)
	out := Fig2Result{
		Workload: workloadName,
		CPUs:     cpus,
		Mems:     mems,
		MinCost:  -1,
	}
	groups := spec.FunctionGroups()
	for _, cpu := range cpus {
		rtRow := make([]float64, 0, len(mems))
		costRow := make([]float64, 0, len(mems))
		for _, mem := range mems {
			a := resources.Uniform(groups, resources.Config{CPU: cpu, MemMB: mem})
			res, err := runner.MeanEvaluate(a)
			if err != nil {
				return Fig2Result{}, err
			}
			if res.OOM {
				rtRow = append(rtRow, OOMSentinel)
				costRow = append(costRow, OOMSentinel)
				continue
			}
			rtRow = append(rtRow, res.E2EMS)
			costRow = append(costRow, res.Cost)
			if res.E2EMS <= spec.SLOMS && (out.MinCost < 0 || res.Cost < out.MinCost) {
				out.MinCost = res.Cost
				out.MinCostCPU = cpu
				out.MinCostMem = mem
			}
		}
		out.RuntimeMS = append(out.RuntimeMS, rtRow)
		out.Cost = append(out.Cost, costRow)
	}
	return out, nil
}

// RunFig2All sweeps all three workloads sequentially.
func RunFig2All() ([]Fig2Result, error) { return RunFig2AllPool(nil) }

// RunFig2AllPool sweeps the three workloads on the pool's workers. Each
// sweep owns its runner and platform, and results land at their workload's
// index, so the output is identical to the sequential sweep.
func RunFig2AllPool(pool *Pool) ([]Fig2Result, error) {
	ws := Workloads()
	out := make([]Fig2Result, len(ws))
	err := pool.Do(len(ws), func(i int) error {
		r, err := RunFig2(ws[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Render prints the two heatmaps for one workload.
func (f Fig2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig 2 — %s: runtime heatmap (seconds; rows=vCPU, cols=MB)\n", f.Workload)
	f.renderGrid(w, f.RuntimeMS, func(v float64) string { return fmt.Sprintf("%.1f", v/1000) })
	fmt.Fprintf(w, "Fig 2 — %s: cost heatmap (k cost units)\n", f.Workload)
	f.renderGrid(w, f.Cost, func(v float64) string { return fmt.Sprintf("%.0f", v/1000) })
	fmt.Fprintf(w, "cheapest SLO-feasible cell: %.1f vCPU / %.0f MB (cost %.0fk)\n\n",
		f.MinCostCPU, f.MinCostMem, f.MinCost/1000)
}

func (f Fig2Result) renderGrid(w io.Writer, grid [][]float64, fmtCell func(float64) string) {
	t := &table{header: []string{"vCPU\\MB"}}
	for _, m := range f.Mems {
		t.header = append(t.header, fmt.Sprintf("%.0f", m))
	}
	for i, cpu := range f.CPUs {
		row := []string{fmt.Sprintf("%.1f", cpu)}
		for j := range f.Mems {
			v := grid[i][j]
			if v < 0 {
				row = append(row, "OOM")
			} else {
				row = append(row, fmtCell(v))
			}
		}
		t.addRow(row...)
	}
	t.render(w)
}
