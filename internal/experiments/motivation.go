package experiments

import (
	"fmt"
	"io"
	"math"

	"aarc/internal/pricing"
	"aarc/internal/resources"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// MotivationRow quantifies what one industry configuration scheme (§I of
// the paper) costs on one workload, against the decoupled optimum found by
// a fine uniform grid sweep.
type MotivationRow struct {
	Workload string
	Scheme   string
	Config   resources.Config // chosen uniform configuration
	E2EMS    float64
	Cost     float64
	OverPct  float64 // cost overhead vs the decoupled optimum
	Feasible bool    // meets the SLO
	SLOMS    float64
}

// MotivationResult is the §I/§II-A quantification: memory-centric (AWS),
// predefined tiers (GCF), ratio-band (Alibaba) and fully decoupled
// configuration schemes compared per workload.
type MotivationResult struct {
	Rows []MotivationRow
}

// RunMotivation sweeps each scheme's admissible uniform configurations with
// noise off and reports the cheapest SLO-feasible choice per scheme.
func RunMotivation() (MotivationResult, error) {
	var out MotivationResult
	for _, w := range Workloads() {
		spec, err := workloads.ByName(w)
		if err != nil {
			return MotivationResult{}, err
		}
		runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{HostCores: HostCores})
		if err != nil {
			return MotivationResult{}, err
		}
		rows, err := motivationForWorkload(spec, runner)
		if err != nil {
			return MotivationResult{}, err
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

func motivationForWorkload(spec *workflow.Spec, runner *workflow.Runner) ([]MotivationRow, error) {
	lim := spec.Limits
	groups := spec.FunctionGroups()

	evalUniform := func(cfg resources.Config) (float64, float64, bool, error) {
		res, err := runner.MeanEvaluate(resources.Uniform(groups, lim.Snap(cfg)))
		if err != nil {
			return 0, 0, false, err
		}
		feasible := !res.OOM && res.E2EMS <= spec.SLOMS
		return res.E2EMS, res.Cost, feasible, nil
	}

	// Candidate generators per scheme. Memory axis reused by all schemes.
	memGrid := coarseGrid(lim.MinMemMB, lim.MaxMemMB, 32)
	cpuGrid := coarseGrid(lim.MinCPU, lim.MaxCPU, 20)

	type scheme struct {
		name       string
		candidates []resources.Config
	}
	var schemes []scheme

	// AWS-style memory-centric: CPU proportional to memory.
	var aws []resources.Config
	for _, m := range memGrid {
		aws = append(aws, resources.Config{CPU: pricing.AWSCoupledCPU(m), MemMB: m})
	}
	schemes = append(schemes, scheme{"aws-coupled", aws})

	// GCF predefined tiers.
	var gcf []resources.Config
	for _, t := range pricing.GCFTiers() {
		gcf = append(gcf, resources.Config{CPU: t.CPU, MemMB: t.MemMB})
	}
	schemes = append(schemes, scheme{"gcf-tiers", gcf})

	// Alibaba ratio band: decoupled but constrained to the band.
	band := pricing.DefaultAlibabaBand()
	var ali []resources.Config
	for _, c := range cpuGrid {
		for _, m := range memGrid {
			cfg := resources.Config{CPU: c, MemMB: m}
			if band.Allows(cfg) {
				ali = append(ali, cfg)
			}
		}
	}
	schemes = append(schemes, scheme{"alibaba-band", ali})

	// Fully decoupled reference (the same coarse grid, unconstrained).
	var dec []resources.Config
	for _, c := range cpuGrid {
		for _, m := range memGrid {
			dec = append(dec, resources.Config{CPU: c, MemMB: m})
		}
	}
	schemes = append(schemes, scheme{"decoupled", dec})

	// Find each scheme's cheapest feasible configuration.
	best := make(map[string]MotivationRow)
	for _, s := range schemes {
		row := MotivationRow{Workload: spec.Name, Scheme: s.name, SLOMS: spec.SLOMS, Cost: math.Inf(1)}
		for _, cfg := range s.candidates {
			e2e, cost, ok, err := evalUniform(cfg)
			if err != nil {
				return nil, err
			}
			if ok && cost < row.Cost {
				row.Config = lim.Snap(cfg)
				row.E2EMS = e2e
				row.Cost = cost
				row.Feasible = true
			}
		}
		best[s.name] = row
	}

	decoupledCost := best["decoupled"].Cost
	var rows []MotivationRow
	for _, s := range schemes {
		row := best[s.name]
		if row.Feasible && decoupledCost > 0 && !math.IsInf(decoupledCost, 1) {
			row.OverPct = (row.Cost - decoupledCost) / decoupledCost * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func coarseGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, lo+(hi-lo)*float64(i)/float64(n-1))
	}
	return out
}

// Render prints the scheme comparison.
func (m MotivationResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Motivation — cost of industry configuration schemes vs full decoupling (§I)")
	t := &table{header: []string{"workload", "scheme", "config", "e2e_s", "cost_k", "overhead_vs_decoupled"}}
	for _, r := range m.Rows {
		cfg, e2e, cost, over := "infeasible", "-", "-", "-"
		if r.Feasible {
			cfg = r.Config.String()
			e2e = fmt.Sprintf("%.1f", r.E2EMS/1000)
			cost = fmt.Sprintf("%.1f", r.Cost/1000)
			over = fmt.Sprintf("%+.1f%%", r.OverPct)
		}
		t.addRow(r.Workload, r.Scheme, cfg, e2e, cost, over)
	}
	t.render(w)
	fmt.Fprintln(w)
}
