package experiments

import (
	"context"
	"fmt"
	"io"

	"aarc/internal/baselines/bo"
	"aarc/internal/search"
	"aarc/internal/stats"
	"aarc/internal/workloads"
)

// Fig3Result is the §II-B motivation experiment: Bayesian optimization over
// the decoupled space of the Chatbot workflow for 100 rounds, showing
// non-convergence and cost instability.
type Fig3Result struct {
	Trace *search.Trace
	// CostReductionPct is the relative drop from the first to the best
	// sampled cost (the paper observes 32.13%).
	CostReductionPct float64
	// TotalRuntimeHours is the summed sampling time (the paper: 9.76 h).
	TotalRuntimeHours float64
	// FluctuationPct is the mean absolute consecutive cost change over the
	// series mean (the paper: 18.3%).
	FluctuationPct float64
	// IncreaseFractionPct is the share of consecutive cost changes that are
	// increases (the paper: "over half").
	IncreaseFractionPct float64
}

// RunFig3 reruns the paper's BO probe on Chatbot.
func RunFig3(seed uint64) (Fig3Result, error) {
	spec := workloads.Chatbot()
	runner, err := NewRunner(spec, seed)
	if err != nil {
		return Fig3Result{}, err
	}
	opts := bo.DefaultOptions()
	opts.Seed = seed
	outcome, err := bo.New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		return Fig3Result{}, err
	}

	costs := outcome.Trace.CostSeries()
	first := costs[0]
	best, _ := stats.Min(costs)
	reduction := 0.0
	if first > 0 {
		reduction = (first - best) / first * 100
	}
	return Fig3Result{
		Trace:               outcome.Trace,
		CostReductionPct:    reduction,
		TotalRuntimeHours:   outcome.Trace.TotalRuntimeMS() / 3600 / 1000,
		FluctuationPct:      stats.FluctuationAmplitude(costs) * 100,
		IncreaseFractionPct: stats.IncreaseFraction(costs) * 100,
	}, nil
}

// Render prints the sample series and the instability summary.
func (f Fig3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 3 — Bayesian Optimization search for Chatbot (runtime & cost vs sample count)")
	t := &table{header: []string{"sample", "runtime_s", "cost_k", "note"}}
	for _, s := range f.Trace.Samples {
		t.addRow(
			fmt.Sprintf("%d", s.Index),
			fmt.Sprintf("%.1f", s.E2EMS/1000),
			fmt.Sprintf("%.0f", s.Cost/1000),
			s.Note,
		)
	}
	t.render(w)
	fmt.Fprintf(w, "\ncost reduction over %d rounds : %.2f%% (paper: 32.13%%)\n", f.Trace.Len(), f.CostReductionPct)
	fmt.Fprintf(w, "total sampling runtime        : %.2f h (paper: 9.76 h)\n", f.TotalRuntimeHours)
	fmt.Fprintf(w, "cost fluctuation amplitude    : %.1f%% of mean (paper: 18.3%%)\n", f.FluctuationPct)
	fmt.Fprintf(w, "consecutive increases         : %.1f%% of changes (paper: ~50%%)\n\n", f.IncreaseFractionPct)
}
