package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolDoRunsClaimedTasksAfterFailure is the regression test for the
// claim-then-skip race: Do used to check the failure flag *after* claiming
// an index, so a worker stalled between its claim and that check would
// drop its claimed task when a later-claimed task failed first — and Do
// returned the later task's error, contradicting the documented
// deterministic lowest-index-error contract.
//
// The poolClaimed hook forces exactly that schedule deterministically:
// the claimer of task 0 stalls in the claim→run window until task 1 has
// failed and published its failure. The fixed loop checks the failure
// flag only before claiming, so the claimed task 0 still runs and its
// (lowest-index) error wins; the pre-fix loop skipped task 0 here and
// returned task 1's error, never calling fn(0).
func TestPoolDoRunsClaimedTasksAfterFailure(t *testing.T) {
	defer func() { poolClaimed = nil }()

	err0 := errors.New("task 0 failed")
	err1 := errors.New("task 1 failed")
	task1Failed := make(chan struct{})
	var ran0 atomic.Bool

	poolClaimed = func(i int) {
		if i != 0 {
			return
		}
		// Stall the claim of task 0 across task 1's entire run *and* the
		// publication of its failure: fn(1) closes the channel on its way
		// out, and the short sleep spans the worker's store to the failure
		// flag that follows its return.
		<-task1Failed
		time.Sleep(10 * time.Millisecond)
	}

	err := NewPool(2).Do(2, func(i int) error {
		if i == 1 {
			defer close(task1Failed)
			return err1
		}
		ran0.Store(true)
		return err0
	})

	if !ran0.Load() {
		t.Error("claimed task 0 never ran: a worker skipped its claim after a later task failed")
	}
	if err != err0 {
		t.Errorf("Do returned %v, want the lowest-index error %v", err, err0)
	}
}

// TestPoolDoStopsClaimingAfterFailure keeps the early-exit half of the
// contract honest alongside the fix: tasks not yet claimed when a failure
// lands are skipped, like the sequential loop stopping at its first
// error.
func TestPoolDoStopsClaimingAfterFailure(t *testing.T) {
	failErr := errors.New("boom")
	var calls atomic.Int64
	const n = 10000
	err := NewPool(2).Do(n, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return failErr
		}
		return nil
	})
	if err != failErr {
		t.Fatalf("Do returned %v, want %v", err, failErr)
	}
	// Worker startup is concurrent, so a handful of tasks may be claimed
	// before the failure is visible; "stopped early" just must not mean
	// "ran everything".
	if c := calls.Load(); c == n {
		t.Errorf("all %d tasks ran despite task 0 failing immediately", n)
	}
}
