package experiments

import (
	"fmt"
	"io"

	"aarc/internal/stats"
	"aarc/internal/workloads"
)

// Table2ValidationRuns is how many times each final configuration is
// re-executed (the paper runs each 100 times).
const Table2ValidationRuns = 100

// Table2Row is one (workload, method) entry of Table II: average runtime ±
// standard deviation and average cost of the method's chosen configuration.
type Table2Row struct {
	Workload      string
	Method        string
	MeanRuntimeMS float64
	StdRuntimeMS  float64
	MeanCost      float64
	SLOMS         float64
	Violations    int // executions exceeding the SLO (paper: none)
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 validates each method's chosen configuration with
// Table2ValidationRuns noisy executions on a fresh runner.
func RunTable2(s *Suite) (Table2Result, error) {
	var out Table2Result
	for _, w := range Workloads() {
		spec, err := workloads.ByName(w)
		if err != nil {
			return Table2Result{}, err
		}
		for _, m := range MethodNames {
			run, err := s.Run(w, m)
			if err != nil {
				return Table2Result{}, err
			}
			// Fresh runner: validation is independent of the search's RNG
			// position, but still deterministic per (workload, method).
			runner, err := NewRunner(spec, s.Seed+0x7ab1e2)
			if err != nil {
				return Table2Result{}, err
			}
			var e2es, costs []float64
			violations := 0
			for i := 0; i < Table2ValidationRuns; i++ {
				res, err := runner.Evaluate(run.Outcome.Best)
				if err != nil {
					return Table2Result{}, err
				}
				e2es = append(e2es, res.E2EMS)
				costs = append(costs, res.Cost)
				if res.E2EMS > spec.SLOMS {
					violations++
				}
			}
			out.Rows = append(out.Rows, Table2Row{
				Workload:      w,
				Method:        m,
				MeanRuntimeMS: stats.Mean(e2es),
				StdRuntimeMS:  stats.SampleStdDev(e2es),
				MeanCost:      stats.Mean(costs),
				SLOMS:         spec.SLOMS,
				Violations:    violations,
			})
		}
	}
	return out, nil
}

// CostReductionPct returns AARC's cost reduction against a baseline on one
// workload (the paper headline: 49.6% vs BO and 61.7% vs MAFF on ML
// Pipeline).
func (t Table2Result) CostReductionPct(workload, baseline string) float64 {
	var aarc, base *Table2Row
	for i := range t.Rows {
		r := &t.Rows[i]
		if r.Workload != workload {
			continue
		}
		switch r.Method {
		case "AARC":
			aarc = r
		case baseline:
			base = r
		}
	}
	if aarc == nil || base == nil || base.MeanCost == 0 {
		return 0
	}
	return (base.MeanCost - aarc.MeanCost) / base.MeanCost * 100
}

// Render prints Table II plus the derived reduction percentages.
func (t Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table II — average runtime and cost over %d executions of each optimal configuration\n", Table2ValidationRuns)
	tbl := &table{header: []string{"workload", "method", "runtime_s", "cost_k", "slo_s", "violations"}}
	for _, r := range t.Rows {
		tbl.addRow(
			r.Workload, r.Method,
			fmt.Sprintf("%.1f ± %.1f", r.MeanRuntimeMS/1000, r.StdRuntimeMS/1000),
			fmt.Sprintf("%.1f", r.MeanCost/1000),
			fmt.Sprintf("%.0f", r.SLOMS/1000),
			fmt.Sprintf("%d", r.Violations),
		)
	}
	tbl.render(w)
	fmt.Fprintln(w)
	for _, wl := range Workloads() {
		fmt.Fprintf(w, "%-15s AARC cost reduction: %.1f%% vs BO, %.1f%% vs MAFF\n",
			wl, t.CostReductionPct(wl, "BO"), t.CostReductionPct(wl, "MAFF"))
	}
	fmt.Fprintln(w)
}
