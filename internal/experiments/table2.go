package experiments

import (
	"fmt"
	"io"

	"aarc/internal/stats"
	"aarc/internal/workloads"
)

// Table2ValidationRuns is how many times each final configuration is
// re-executed (the paper runs each 100 times).
const Table2ValidationRuns = 100

// Table2Row is one (workload, method) entry of Table II: average runtime ±
// standard deviation and average cost of the method's chosen configuration.
type Table2Row struct {
	Workload      string
	Method        string
	MeanRuntimeMS float64
	StdRuntimeMS  float64
	MeanCost      float64
	SLOMS         float64
	Violations    int // executions exceeding the SLO (paper: none)
}

// Table2Result reproduces Table II.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 validates each method's chosen configuration with
// Table2ValidationRuns noisy executions on a fresh runner. The searches come
// from the suite cache (filled in parallel when the suite has a pool), and
// the nine validation cells — each with its own runner, seeded only by the
// suite seed — run on the pool too, landing at fixed row indices.
func RunTable2(s *Suite) (Table2Result, error) {
	if err := s.RunAll(); err != nil {
		return Table2Result{}, err
	}
	type cell struct{ w, m string }
	var cells []cell
	for _, w := range Workloads() {
		for _, m := range MethodNames {
			cells = append(cells, cell{w, m})
		}
	}
	rows := make([]Table2Row, len(cells))
	err := s.Pool.Do(len(cells), func(i int) error {
		w, m := cells[i].w, cells[i].m
		spec, err := workloads.ByName(w)
		if err != nil {
			return err
		}
		run, err := s.Run(w, m)
		if err != nil {
			return err
		}
		// Fresh runner: validation is independent of the search's RNG
		// position, but still deterministic per (workload, method).
		runner, err := NewRunner(spec, s.Seed+0x7ab1e2)
		if err != nil {
			return err
		}
		var e2es, costs []float64
		violations := 0
		for j := 0; j < Table2ValidationRuns; j++ {
			res, err := runner.Evaluate(run.Outcome.Best)
			if err != nil {
				return err
			}
			e2es = append(e2es, res.E2EMS)
			costs = append(costs, res.Cost)
			if res.E2EMS > spec.SLOMS {
				violations++
			}
		}
		rows[i] = Table2Row{
			Workload:      w,
			Method:        m,
			MeanRuntimeMS: stats.Mean(e2es),
			StdRuntimeMS:  stats.SampleStdDev(e2es),
			MeanCost:      stats.Mean(costs),
			SLOMS:         spec.SLOMS,
			Violations:    violations,
		}
		return nil
	})
	if err != nil {
		return Table2Result{}, err
	}
	return Table2Result{Rows: rows}, nil
}

// CostReductionPct returns AARC's cost reduction against a baseline on one
// workload (the paper headline: 49.6% vs BO and 61.7% vs MAFF on ML
// Pipeline).
func (t Table2Result) CostReductionPct(workload, baseline string) float64 {
	var aarc, base *Table2Row
	for i := range t.Rows {
		r := &t.Rows[i]
		if r.Workload != workload {
			continue
		}
		switch r.Method {
		case "AARC":
			aarc = r
		case baseline:
			base = r
		}
	}
	if aarc == nil || base == nil || base.MeanCost == 0 {
		return 0
	}
	return (base.MeanCost - aarc.MeanCost) / base.MeanCost * 100
}

// Render prints Table II plus the derived reduction percentages.
func (t Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table II — average runtime and cost over %d executions of each optimal configuration\n", Table2ValidationRuns)
	tbl := &table{header: []string{"workload", "method", "runtime_s", "cost_k", "slo_s", "violations"}}
	for _, r := range t.Rows {
		tbl.addRow(
			r.Workload, r.Method,
			fmt.Sprintf("%.1f ± %.1f", r.MeanRuntimeMS/1000, r.StdRuntimeMS/1000),
			fmt.Sprintf("%.1f", r.MeanCost/1000),
			fmt.Sprintf("%.0f", r.SLOMS/1000),
			fmt.Sprintf("%d", r.Violations),
		)
	}
	tbl.render(w)
	fmt.Fprintln(w)
	for _, wl := range Workloads() {
		fmt.Fprintf(w, "%-15s AARC cost reduction: %.1f%% vs BO, %.1f%% vs MAFF\n",
			wl, t.CostReductionPct(wl, "BO"), t.CostReductionPct(wl, "MAFF"))
	}
	fmt.Fprintln(w)
}
