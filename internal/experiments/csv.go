package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The WriteCSV methods emit each experiment's data in a layout ready for
// external plotting (one row per data point, headers included), so the
// paper's figures can be redrawn from `aarcbench <name> -csv dir`.

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// WriteCSV emits one row per heatmap cell: workload, cpu, mem, runtime, cost.
func (r Fig2Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "vcpu", "mem_mb", "runtime_ms", "cost"}}
	for i, cpu := range r.CPUs {
		for j, mem := range r.Mems {
			rows = append(rows, []string{
				r.Workload, f(cpu), f(mem), f(r.RuntimeMS[i][j]), f(r.Cost[i][j]),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV delegates to the underlying BO trace.
func (r Fig3Result) WriteCSV(w io.Writer) error { return r.Trace.WriteCSV(w) }

// WriteCSV emits one row per (workload, method) total.
func (r Fig5Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "method", "samples", "total_runtime_ms", "total_cost"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Workload, c.Method, strconv.Itoa(c.Samples), f(c.TotalRuntimeMS), f(c.TotalCost),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits one row per sample per method per workload.
func (r SeriesResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "method", "sample", r.Dim}}
	for _, wl := range sortedKeys(r.Series) {
		for _, m := range MethodNames {
			for i, v := range r.Series[wl][m] {
				rows = append(rows, []string{wl, m, strconv.Itoa(i), f(v)})
			}
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits one row per Table II entry.
func (r Table2Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "method", "mean_runtime_ms", "std_runtime_ms", "mean_cost", "slo_ms", "violations"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, row.Method,
			f(row.MeanRuntimeMS), f(row.StdRuntimeMS), f(row.MeanCost), f(row.SLOMS),
			strconv.Itoa(row.Violations),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits the per-request runtime series (a) followed by the
// per-class cost summary (b), tagged by a "record" column.
func (r Fig8Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"record", "method", "request_or_class", "value"}}
	for _, m := range MethodNames {
		for i, v := range r.RuntimeMSSeries[m] {
			rows = append(rows, []string{"runtime_ms", m, strconv.Itoa(i), f(v)})
		}
	}
	for _, m := range MethodNames {
		for _, cls := range r.Classes {
			rows = append(rows, []string{"avg_cost", m, cls.Name, f(r.AvgCost[m][cls.Name])})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits one row per ablation variant per workload.
func (r AblationResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "variant", "samples", "search_runtime_ms", "final_cost", "final_e2e_ms", "slo_ms"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, row.Variant, strconv.Itoa(row.Samples),
			f(row.TotalRuntimeMS), f(row.FinalCost), f(row.FinalE2EMS), f(row.SLOMS),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits one row per (workload, scheme).
func (r MotivationResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "scheme", "vcpu", "mem_mb", "e2e_ms", "cost", "overhead_pct", "feasible"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload, row.Scheme, f(row.Config.CPU), f(row.Config.MemMB),
			f(row.E2EMS), f(row.Cost), f(row.OverPct), fmt.Sprintf("%t", row.Feasible),
		})
	}
	return writeAll(w, rows)
}
