// Package experiments reproduces every table and figure of the paper's
// evaluation (§II motivation and §IV performance evaluation). Each
// experiment has a Run function returning structured data plus a Render
// method that prints the same rows/series the paper reports; cmd/aarcbench
// and the root bench_test.go drive them.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"aarc/internal/baselines/bo"
	"aarc/internal/baselines/maff"
	"aarc/internal/core"
	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// HostCores mirrors the paper's 96-physical-core testbed.
const HostCores = 96

// MethodNames lists the three compared methods in presentation order.
var MethodNames = []string{"AARC", "BO", "MAFF"}

// NewSearcher constructs one of the three paper methods by name, seeded for
// reproducibility.
func NewSearcher(name string, seed uint64) (search.Searcher, error) {
	switch name {
	case "AARC":
		return core.New(core.DefaultOptions()), nil
	case "BO":
		opts := bo.DefaultOptions()
		opts.Seed = seed
		return bo.New(opts), nil
	case "MAFF":
		return maff.New(maff.DefaultOptions()), nil
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", name)
	}
}

// NewRunner builds the standard evaluation runner for a workload spec:
// 96 host cores, measurement noise on, deterministic seed.
func NewRunner(spec *workflow.Spec, seed uint64) (*workflow.Runner, error) {
	return workflow.NewRunner(spec, workflow.RunnerOptions{
		HostCores: HostCores,
		Noise:     true,
		Seed:      seed,
	})
}

// SearchRun is one (workload, method) search outcome.
type SearchRun struct {
	Workload string
	Method   string
	Outcome  search.Outcome
}

// Suite runs the three methods over the three workloads once and caches the
// outcomes; Figures 5–7 and Table II all derive from the same runs, exactly
// as in the paper.
type Suite struct {
	Seed uint64
	runs map[string]map[string]SearchRun // workload -> method -> run
}

// NewSuite returns an empty suite with the given seed.
func NewSuite(seed uint64) *Suite { return &Suite{Seed: seed} }

// Workloads returns the paper's workload names in presentation order.
func Workloads() []string { return []string{"chatbot", "ml-pipeline", "video-analysis"} }

// Run executes (or returns the cached) search for one workload and method.
func (s *Suite) Run(workloadName, method string) (SearchRun, error) {
	if s.runs == nil {
		s.runs = make(map[string]map[string]SearchRun)
	}
	if byMethod, ok := s.runs[workloadName]; ok {
		if run, ok := byMethod[method]; ok {
			return run, nil
		}
	}
	spec, err := workloads.ByName(workloadName)
	if err != nil {
		return SearchRun{}, err
	}
	runner, err := NewRunner(spec, s.Seed)
	if err != nil {
		return SearchRun{}, err
	}
	searcher, err := NewSearcher(method, s.Seed)
	if err != nil {
		return SearchRun{}, err
	}
	outcome, err := searcher.Search(runner, spec.SLOMS)
	if err != nil {
		return SearchRun{}, fmt.Errorf("experiments: %s/%s: %w", workloadName, method, err)
	}
	outcome.Trace.Workload = workloadName
	run := SearchRun{Workload: workloadName, Method: method, Outcome: outcome}
	if s.runs[workloadName] == nil {
		s.runs[workloadName] = make(map[string]SearchRun)
	}
	s.runs[workloadName][method] = run
	return run, nil
}

// RunAll executes every (workload, method) pair.
func (s *Suite) RunAll() error {
	for _, w := range Workloads() {
		for _, m := range MethodNames {
			if _, err := s.Run(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- small text-table renderer shared by the experiment reports ---

// table accumulates rows and renders with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// sortedKeys returns map keys in sorted order (for deterministic rendering).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
