// Package experiments reproduces every table and figure of the paper's
// evaluation (§II motivation and §IV performance evaluation). Each
// experiment has a Run function returning structured data plus a Render
// method that prints the same rows/series the paper reports; cmd/aarcbench
// and the root bench_test.go drive them.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	// The searcher packages self-register with the search registry; import
	// them all so every method is resolvable by name regardless of which
	// experiments are compiled in.
	_ "aarc/internal/baselines/bo"
	_ "aarc/internal/baselines/maff"
	_ "aarc/internal/baselines/naive"
	_ "aarc/internal/core"

	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// HostCores mirrors the paper's 96-physical-core testbed.
const HostCores = 96

// MethodNames lists the three compared methods in presentation order.
var MethodNames = []string{"AARC", "BO", "MAFF"}

// NewSearcher resolves one of the registered methods by (case-insensitive)
// name through the search registry, seeded for reproducibility.
func NewSearcher(name string, seed uint64) (search.Searcher, error) {
	s, err := search.New(name, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return s, nil
}

// NewRunner builds the standard evaluation runner for a workload spec:
// 96 host cores, measurement noise on, deterministic seed.
func NewRunner(spec *workflow.Spec, seed uint64) (*workflow.Runner, error) {
	return workflow.NewRunner(spec, workflow.RunnerOptions{
		HostCores: HostCores,
		Noise:     true,
		Seed:      seed,
	})
}

// SearchRun is one (workload, method) search outcome.
type SearchRun struct {
	Workload string
	Method   string
	Outcome  search.Outcome
}

// Suite runs the three methods over the three workloads once and caches the
// outcomes; Figures 5–7 and Table II all derive from the same runs, exactly
// as in the paper. Setting Pool lets RunAll execute the nine independent
// search cells concurrently; each cell's seed depends only on the cell, so
// the cached outcomes — and every figure derived from them — are identical
// to a sequential run. The cache itself is concurrency-safe.
type Suite struct {
	Seed uint64
	// Pool, when non-nil, parallelizes RunAll across (workload, method)
	// cells. A nil Pool (or one worker) runs sequentially.
	Pool *Pool

	mu   sync.Mutex
	runs map[string]map[string]SearchRun // workload -> method -> run
}

// NewSuite returns an empty sequential suite with the given seed.
func NewSuite(seed uint64) *Suite { return &Suite{Seed: seed} }

// Workloads returns the paper's workload names in presentation order.
func Workloads() []string { return []string{"chatbot", "ml-pipeline", "video-analysis"} }

// cached returns the cached run for a cell, if present.
func (s *Suite) cached(workloadName, method string) (SearchRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if byMethod, ok := s.runs[workloadName]; ok {
		if run, ok := byMethod[method]; ok {
			return run, true
		}
	}
	return SearchRun{}, false
}

// store caches a completed cell.
func (s *Suite) store(run SearchRun) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runs == nil {
		s.runs = make(map[string]map[string]SearchRun)
	}
	if s.runs[run.Workload] == nil {
		s.runs[run.Workload] = make(map[string]SearchRun)
	}
	s.runs[run.Workload][run.Method] = run
}

// runCell executes one (workload, method) search with its own runner and
// searcher, both seeded deterministically from the cell alone.
func runCell(workloadName, method string, seed uint64) (SearchRun, error) {
	spec, err := workloads.ByName(workloadName)
	if err != nil {
		return SearchRun{}, err
	}
	runner, err := NewRunner(spec, seed)
	if err != nil {
		return SearchRun{}, err
	}
	searcher, err := NewSearcher(method, seed)
	if err != nil {
		return SearchRun{}, err
	}
	outcome, err := searcher.Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		return SearchRun{}, fmt.Errorf("experiments: %s/%s: %w", workloadName, method, err)
	}
	outcome.Trace.Workload = workloadName
	return SearchRun{Workload: workloadName, Method: method, Outcome: outcome}, nil
}

// Run executes (or returns the cached) search for one workload and method.
func (s *Suite) Run(workloadName, method string) (SearchRun, error) {
	if run, ok := s.cached(workloadName, method); ok {
		return run, nil
	}
	run, err := runCell(workloadName, method, s.Seed)
	if err != nil {
		return SearchRun{}, err
	}
	s.store(run)
	return run, nil
}

// RunAll executes every (workload, method) pair, concurrently when the suite
// has a Pool. The cells are independent — each owns its runner, searcher and
// simulated platform — so the parallel schedule cannot change any outcome.
func (s *Suite) RunAll() error {
	type cell struct{ w, m string }
	var todo []cell
	for _, w := range Workloads() {
		for _, m := range MethodNames {
			if _, ok := s.cached(w, m); !ok {
				todo = append(todo, cell{w, m})
			}
		}
	}
	return s.Pool.Do(len(todo), func(i int) error {
		run, err := runCell(todo[i].w, todo[i].m, s.Seed)
		if err != nil {
			return err
		}
		s.store(run)
		return nil
	})
}

// --- small text-table renderer shared by the experiment reports ---

// table accumulates rows and renders with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// sortedKeys returns map keys in sorted order (for deterministic rendering).
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
