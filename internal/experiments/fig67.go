package experiments

import (
	"fmt"
	"io"
)

// SeriesResult carries the per-sample trajectories of Figures 6 (runtime vs
// sample count) and 7 (cost vs sample count): one series per method per
// workload, derived from the same searches as Fig. 5.
type SeriesResult struct {
	// Dim is "runtime" (Fig 6) or "cost" (Fig 7).
	Dim string
	// Series[workload][method] is the per-sample series.
	Series map[string]map[string][]float64
}

// RunFig6 extracts the runtime trajectories.
func RunFig6(s *Suite) (SeriesResult, error) { return runSeries(s, "runtime") }

// RunFig7 extracts the cost trajectories.
func RunFig7(s *Suite) (SeriesResult, error) { return runSeries(s, "cost") }

func runSeries(s *Suite, dim string) (SeriesResult, error) {
	if err := s.RunAll(); err != nil {
		return SeriesResult{}, err
	}
	out := SeriesResult{Dim: dim, Series: make(map[string]map[string][]float64)}
	for _, w := range Workloads() {
		out.Series[w] = make(map[string][]float64)
		for _, m := range MethodNames {
			run, err := s.Run(w, m)
			if err != nil {
				return SeriesResult{}, err
			}
			if dim == "cost" {
				out.Series[w][m] = run.Outcome.Trace.CostSeries()
			} else {
				out.Series[w][m] = run.Outcome.Trace.RuntimeSeries()
			}
		}
	}
	return out, nil
}

// Render prints each workload's series, one row per sample index, columns
// per method (blank once a method's search has terminated).
func (r SeriesResult) Render(w io.Writer) {
	fig, unit, scale := "Fig 6", "runtime_s", 1000.0
	if r.Dim == "cost" {
		fig, unit, scale = "Fig 7", "cost_k", 1000.0
	}
	fmt.Fprintf(w, "%s — %s changing with sample counts of different methods\n", fig, r.Dim)
	for _, wl := range sortedKeys(r.Series) {
		byMethod := r.Series[wl]
		maxLen := 0
		for _, series := range byMethod {
			if len(series) > maxLen {
				maxLen = len(series)
			}
		}
		fmt.Fprintf(w, "\n[%s] (%s per sample)\n", wl, unit)
		header := []string{"sample"}
		header = append(header, MethodNames...)
		t := &table{header: header}
		for i := 0; i < maxLen; i++ {
			row := []string{fmt.Sprintf("%d", i)}
			for _, m := range MethodNames {
				series := byMethod[m]
				if i < len(series) {
					row = append(row, fmt.Sprintf("%.1f", series[i]/scale))
				} else {
					row = append(row, "")
				}
			}
			t.addRow(row...)
		}
		t.render(w)
	}
	fmt.Fprintln(w)
}
