package experiments

import (
	"context"
	"fmt"
	"io"

	"aarc/internal/core"
	"aarc/internal/search"
	"aarc/internal/workloads"
)

// AblationVariant is one switch-flipped AARC configuration.
type AblationVariant struct {
	Name string
	Opts core.Options
}

// AblationVariants enumerates the design-choice ablations DESIGN.md calls
// out: priority queue vs FIFO, exponential back-off vs fixed step, decoupled
// vs coupled search, and sub-path scheduling on/off.
func AblationVariants() []AblationVariant {
	mk := func(mutate func(*core.Options)) core.Options {
		o := core.DefaultOptions()
		mutate(&o)
		return o
	}
	return []AblationVariant{
		{Name: "AARC (full)", Opts: core.DefaultOptions()},
		{Name: "-priority (FIFO queue)", Opts: mk(func(o *core.Options) { o.FIFO = true })},
		{Name: "-backoff (fixed step)", Opts: mk(func(o *core.Options) { o.NoBackoff = true })},
		{Name: "-decoupling (coupled)", Opts: mk(func(o *core.Options) { o.CoupledOnly = true })},
		{Name: "-subpaths (CP only)", Opts: mk(func(o *core.Options) { o.NoSubpaths = true })},
	}
}

// AblationRow is one (workload, variant) outcome.
type AblationRow struct {
	Workload       string
	Variant        string
	Samples        int
	TotalRuntimeMS float64
	FinalCost      float64
	FinalE2EMS     float64
	SLOMS          float64
}

// AblationResult collects the ablation sweep.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation sweeps all variants over all workloads sequentially.
func RunAblation(seed uint64) (AblationResult, error) { return RunAblationPool(seed, nil) }

// RunAblationPool runs the (workload, variant) cells on the pool's workers.
// Cells are independent and rows land at fixed indices, so the table is
// identical to the sequential sweep.
func RunAblationPool(seed uint64, pool *Pool) (AblationResult, error) {
	type cell struct {
		w string
		v AblationVariant
	}
	var cells []cell
	for _, w := range Workloads() {
		for _, v := range AblationVariants() {
			cells = append(cells, cell{w, v})
		}
	}
	rows := make([]AblationRow, len(cells))
	err := pool.Do(len(cells), func(i int) error {
		w, v := cells[i].w, cells[i].v
		spec, err := workloads.ByName(w)
		if err != nil {
			return err
		}
		runner, err := NewRunner(spec, seed)
		if err != nil {
			return err
		}
		outcome, err := core.New(v.Opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
		if err != nil {
			return fmt.Errorf("ablation %s/%s: %w", w, v.Name, err)
		}
		res, err := runner.Evaluate(outcome.Best)
		if err != nil {
			return err
		}
		rows[i] = AblationRow{
			Workload:       w,
			Variant:        v.Name,
			Samples:        outcome.Trace.Len(),
			TotalRuntimeMS: outcome.Trace.TotalRuntimeMS(),
			FinalCost:      res.Cost,
			FinalE2EMS:     res.E2EMS,
			SLOMS:          spec.SLOMS,
		}
		return nil
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Rows: rows}, nil
}

// Render prints the ablation table.
func (a AblationResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation — AARC design choices (per workload)")
	t := &table{header: []string{"workload", "variant", "samples", "search_runtime_s", "final_cost_k", "final_e2e_s", "slo_s"}}
	for _, r := range a.Rows {
		t.addRow(
			r.Workload, r.Variant,
			fmt.Sprintf("%d", r.Samples),
			fmt.Sprintf("%.0f", r.TotalRuntimeMS/1000),
			fmt.Sprintf("%.1f", r.FinalCost/1000),
			fmt.Sprintf("%.1f", r.FinalE2EMS/1000),
			fmt.Sprintf("%.0f", r.SLOMS/1000),
		)
	}
	t.render(w)
	fmt.Fprintln(w)
}
