package experiments

import (
	"context"
	"fmt"
	"io"

	"aarc/internal/inputaware"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/stats"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// Fig8RequestsPerClass is the number of requests issued per input size in
// the Fig. 8a sequence (light, then middle, then heavy).
const Fig8RequestsPerClass = 100

// Fig8Result reproduces the §IV-D input-aware configuration experiment on
// Video Analysis.
type Fig8Result struct {
	Classes []inputaware.Class
	// RuntimeMSSeries[method] is the per-request end-to-end runtime over
	// the light→middle→heavy request sequence (Fig. 8a).
	RuntimeMSSeries map[string][]float64
	// Violations[method] counts SLO-violating requests.
	Violations map[string]int
	// AvgCost[method][class] is the average per-request cost per input size
	// (Fig. 8b).
	AvgCost map[string]map[string]float64
	SLOMS   float64
}

// RunFig8 configures AARC through the Input-Aware Configuration Engine (one
// configuration per input class) while BO and MAFF keep a single static
// configuration searched at the middle input size — mirroring the paper,
// where only the plugin-enabled system adapts to input scale.
func RunFig8(seed uint64) (Fig8Result, error) {
	spec := workloads.VideoAnalysis()
	classes := inputaware.DefaultVideoClasses()
	runnerOpts := workflow.RunnerOptions{HostCores: HostCores, Noise: true, Seed: seed}

	aarc, err := NewSearcher("AARC", seed)
	if err != nil {
		return Fig8Result{}, err
	}
	engine, err := inputaware.Configure(context.Background(), spec, runnerOpts, aarc, search.Options{SLOMS: spec.SLOMS}, classes)
	if err != nil {
		return Fig8Result{}, err
	}

	// Static baselines: search once at the middle scale.
	static := make(map[string]resources.Assignment)
	for _, m := range []string{"BO", "MAFF"} {
		runner, err := workflow.NewRunner(spec, runnerOpts)
		if err != nil {
			return Fig8Result{}, err
		}
		searcher, err := NewSearcher(m, seed)
		if err != nil {
			return Fig8Result{}, err
		}
		outcome, err := searcher.Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
		if err != nil {
			return Fig8Result{}, err
		}
		static[m] = outcome.Best
	}

	out := Fig8Result{
		Classes:         classes,
		RuntimeMSSeries: make(map[string][]float64),
		Violations:      make(map[string]int),
		AvgCost:         make(map[string]map[string]float64),
		SLOMS:           spec.SLOMS,
	}

	// One serving runner per method, with noise, processing the request
	// sequence: 100 light, 100 middle, 100 heavy.
	for _, m := range MethodNames {
		runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
			HostCores: HostCores, Noise: true, Seed: seed + 77,
		})
		if err != nil {
			return Fig8Result{}, err
		}
		out.AvgCost[m] = make(map[string]float64)
		reqID := 0
		for _, cls := range classes {
			var costs []float64
			for i := 0; i < Fig8RequestsPerClass; i++ {
				var cfg resources.Assignment
				if m == "AARC" {
					_, cfg = engine.Dispatch(inputaware.Request{ID: reqID, Scale: cls.Scale})
				} else {
					cfg = static[m]
				}
				res, err := runner.EvaluateScale(cfg, cls.Scale)
				if err != nil {
					return Fig8Result{}, err
				}
				out.RuntimeMSSeries[m] = append(out.RuntimeMSSeries[m], res.E2EMS)
				if res.OOM || res.E2EMS > spec.SLOMS {
					out.Violations[m]++
				}
				costs = append(costs, res.Cost)
				reqID++
			}
			out.AvgCost[m][cls.Name] = stats.Mean(costs)
		}
	}
	return out, nil
}

// CostOptimizationPct returns AARC's cost saving against a baseline for one
// input class (the paper: 89.9% vs MAFF and 89.8% vs BO under light input).
func (f Fig8Result) CostOptimizationPct(baseline, class string) float64 {
	b := f.AvgCost[baseline][class]
	a := f.AvgCost["AARC"][class]
	if b == 0 {
		return 0
	}
	return (b - a) / b * 100
}

// Render prints the per-request runtime series summary and the per-class
// cost comparison.
func (f Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig 8 — performance across input sizes in Video Analysis (input-aware plugin)")
	fmt.Fprintf(w, "request sequence: %d light, %d middle, %d heavy; SLO %.0f s\n\n",
		Fig8RequestsPerClass, Fig8RequestsPerClass, Fig8RequestsPerClass, f.SLOMS/1000)

	fmt.Fprintln(w, "(a) per-request runtime by phase (mean seconds)")
	t := &table{header: []string{"method", "light", "middle", "heavy", "slo_violations"}}
	for _, m := range MethodNames {
		series := f.RuntimeMSSeries[m]
		row := []string{m}
		for i := range f.Classes {
			lo := i * Fig8RequestsPerClass
			hi := lo + Fig8RequestsPerClass
			if hi > len(series) {
				hi = len(series)
			}
			row = append(row, fmt.Sprintf("%.1f", stats.Mean(series[lo:hi])/1000))
		}
		row = append(row, fmt.Sprintf("%d", f.Violations[m]))
		t.addRow(row...)
	}
	t.render(w)

	fmt.Fprintln(w, "\n(b) average cost per input size (k cost units)")
	t2 := &table{header: []string{"method", "light", "middle", "heavy"}}
	for _, m := range MethodNames {
		row := []string{m}
		for _, cls := range f.Classes {
			row = append(row, fmt.Sprintf("%.1f", f.AvgCost[m][cls.Name]/1000))
		}
		t2.addRow(row...)
	}
	t2.render(w)

	fmt.Fprintf(w, "\nAARC cost optimization under light input: %.1f%% vs MAFF, %.1f%% vs BO\n",
		f.CostOptimizationPct("MAFF", "light"), f.CostOptimizationPct("BO", "light"))
	fmt.Fprintf(w, "AARC cost optimization under heavy input: %.1f%% vs MAFF, %.1f%% vs BO\n\n",
		f.CostOptimizationPct("MAFF", "heavy"), f.CostOptimizationPct("BO", "heavy"))
}
