package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool for running independent experiment cells
// concurrently, in the long-poll/worker style of DAG processors: a fixed set
// of workers pulls task indices from a shared counter until the task list is
// drained. Every cell owns its Runner and Searcher (runners reuse a scratch
// arena and are not concurrency-safe; the simulated Platform is), and cell
// seeds are a pure function of the cell, never of scheduling order — so a
// parallel run produces byte-identical experiment output to a sequential
// one.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker count; workers <= 0 selects
// GOMAXPROCS. A one-worker pool degenerates to sequential in-place
// execution.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency; a nil pool is sequential.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// poolClaimed, when non-nil, is called between a task's claim and its
// run. It exists for tests only: it widens the otherwise instruction-wide
// claim→run window so the regression test for the claim-then-skip race
// can force the schedule where a later-claimed task fails while an
// earlier claim is still pending. Production code never sets it.
var poolClaimed func(i int)

// Do runs fn(0), ..., fn(n-1) with at most Workers() tasks in flight and
// returns the lowest-index error (deterministic even when several tasks fail
// concurrently). A nil or single-worker pool runs the tasks inline in index
// order, stopping at the first error, exactly like the sequential loops this
// replaces.
func (p *Pool) Do(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	// Tasks are claimed in index order and a claimed task always runs: the
	// failure check sits before the claim, never between a claim and its
	// run. When task f fails, every index below f is already claimed and
	// will finish, so the lowest-index error is deterministic regardless of
	// scheduling; unclaimed tasks are skipped to avoid wasted work after a
	// failure, like the sequential loop's early exit. (Checking failed
	// after claiming would let a worker drop its claimed task when a
	// later-claimed task fails inside the claim→run window, returning a
	// non-lowest error.)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		//aarc:leaky bounded by the task counter and joined by wg.Wait below; exits once next passes n
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if h := poolClaimed; h != nil {
					h(i)
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
