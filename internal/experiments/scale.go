package experiments

import (
	"context"
	"fmt"
	"io"

	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// ScaleRow is one (workflow size, method) scalability measurement.
type ScaleRow struct {
	Functions      int // configurable function groups
	Nodes          int
	Method         string
	Samples        int
	TotalRuntimeMS float64
	FinalCost      float64
	BaseCost       float64
	FinalE2EMS     float64
	SLOMS          float64
	SLOViolated    bool
}

// ScaleResult is the scalability extension: how each method's sampling
// effort and achieved savings evolve as workflows grow beyond the paper's
// three applications (the §II-B concern — "the complexity of serverless
// applications is further exacerbated by the fact that 46% of applications
// involve multiple functions").
type ScaleResult struct {
	Rows []ScaleRow
}

// scaleShapes are the synthetic workflow sizes swept by RunScale.
var scaleShapes = []workloads.SyntheticOptions{
	{Layers: 2, MaxWidth: 2},
	{Layers: 3, MaxWidth: 3},
	{Layers: 4, MaxWidth: 4},
	{Layers: 6, MaxWidth: 4},
}

// RunScale sweeps random workflows of growing size with all three methods.
func RunScale(seed uint64) (ScaleResult, error) {
	var out ScaleResult
	for _, shape := range scaleShapes {
		shape.Seed = seed
		spec, err := workloads.Synthetic(shape)
		if err != nil {
			return ScaleResult{}, err
		}
		for _, m := range MethodNames {
			runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
				HostCores: HostCores, Noise: true, Seed: seed,
			})
			if err != nil {
				return ScaleResult{}, err
			}
			searcher, err := NewSearcher(m, seed)
			if err != nil {
				return ScaleResult{}, err
			}
			outcome, err := searcher.Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
			if err != nil {
				return ScaleResult{}, fmt.Errorf("scale %s/%s: %w", spec.Name, m, err)
			}
			final, err := runner.Evaluate(outcome.Best)
			if err != nil {
				return ScaleResult{}, err
			}
			baseRes, err := runner.Evaluate(runner.Base())
			if err != nil {
				return ScaleResult{}, err
			}
			out.Rows = append(out.Rows, ScaleRow{
				Functions:      len(spec.FunctionGroups()),
				Nodes:          spec.G.NumNodes(),
				Method:         m,
				Samples:        outcome.Trace.Len(),
				TotalRuntimeMS: outcome.Trace.TotalRuntimeMS(),
				FinalCost:      final.Cost,
				BaseCost:       baseRes.Cost,
				FinalE2EMS:     final.E2EMS,
				SLOMS:          spec.SLOMS,
				SLOViolated:    final.OOM || final.E2EMS > spec.SLOMS,
			})
		}
	}
	return out, nil
}

// Render prints the scalability table.
func (r ScaleResult) Render(w io.Writer) {
	fmt.Fprintln(w, "Scale — search effort and savings vs workflow size (synthetic DAGs; extension)")
	t := &table{header: []string{"functions", "nodes", "method", "samples", "search_runtime_s", "saving_vs_base", "e2e_s", "slo_s", "slo_ok"}}
	for _, row := range r.Rows {
		saving := "-"
		if row.BaseCost > 0 {
			saving = fmt.Sprintf("%.1f%%", (row.BaseCost-row.FinalCost)/row.BaseCost*100)
		}
		ok := "yes"
		if row.SLOViolated {
			ok = "NO"
		}
		t.addRow(
			fmt.Sprintf("%d", row.Functions),
			fmt.Sprintf("%d", row.Nodes),
			row.Method,
			fmt.Sprintf("%d", row.Samples),
			fmt.Sprintf("%.0f", row.TotalRuntimeMS/1000),
			saving,
			fmt.Sprintf("%.1f", row.FinalE2EMS/1000),
			fmt.Sprintf("%.0f", row.SLOMS/1000),
			ok,
		)
	}
	t.render(w)
	fmt.Fprintln(w)
}

// WriteCSV emits one row per (size, method).
func (r ScaleResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"functions", "nodes", "method", "samples", "search_runtime_ms", "final_cost", "base_cost", "final_e2e_ms", "slo_ms", "slo_violated"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Functions),
			fmt.Sprintf("%d", row.Nodes),
			row.Method,
			fmt.Sprintf("%d", row.Samples),
			f(row.TotalRuntimeMS), f(row.FinalCost), f(row.BaseCost), f(row.FinalE2EMS), f(row.SLOMS),
			fmt.Sprintf("%t", row.SLOViolated),
		})
	}
	return writeAll(w, rows)
}
