package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestPoolDo(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		var calls atomic.Int64
		done := make([]bool, 100)
		if err := p.Do(100, func(i int) error {
			calls.Add(1)
			done[i] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 100 {
			t.Errorf("workers=%d: %d calls, want 100", workers, calls.Load())
		}
		for i, d := range done {
			if !d {
				t.Errorf("workers=%d: task %d never ran", workers, i)
			}
		}
	}
}

func TestPoolDoNilAndEmpty(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool workers = %d", p.Workers())
	}
	ran := false
	if err := p.Do(1, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("nil pool should still run tasks inline")
	}
	if err := p.Do(0, func(int) error { t.Error("no tasks"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestPoolDoReturnsLowestIndexError(t *testing.T) {
	p := NewPool(4)
	errA := errors.New("a")
	err := p.Do(10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("task %d: %w", i, errA)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3: a" {
		t.Errorf("err = %v, want the lowest-index failure", err)
	}
}

// sameTraces compares every recorded sample of two search runs.
func sameTraces(t *testing.T, label string, a, b SearchRun) {
	t.Helper()
	ta, tb := a.Outcome.Trace, b.Outcome.Trace
	if ta.Len() != tb.Len() {
		t.Fatalf("%s: trace lengths %d vs %d", label, ta.Len(), tb.Len())
	}
	if !reflect.DeepEqual(a.Outcome.Best, b.Outcome.Best) {
		t.Errorf("%s: best assignments differ: %v vs %v", label, a.Outcome.Best, b.Outcome.Best)
	}
	for i := range ta.Samples {
		sa, sb := ta.Samples[i], tb.Samples[i]
		if sa.E2EMS != sb.E2EMS || sa.Cost != sb.Cost || sa.OOM != sb.OOM ||
			sa.Accepted != sb.Accepted || sa.Note != sb.Note ||
			!reflect.DeepEqual(sa.Assignment, sb.Assignment) {
			t.Fatalf("%s: sample %d differs:\n  seq: %+v\n  par: %+v", label, i, sa, sb)
		}
	}
}

// TestSuiteParallelMatchesSequential is the harness's identical-output
// guarantee: a pooled RunAll must produce exactly the traces a sequential
// one does, per (workload, method) cell.
func TestSuiteParallelMatchesSequential(t *testing.T) {
	seq := NewSuite(11)
	if err := seq.RunAll(); err != nil {
		t.Fatal(err)
	}
	par := NewSuite(11)
	par.Pool = NewPool(4)
	if err := par.RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads() {
		for _, m := range MethodNames {
			a, err := seq.Run(w, m)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.Run(w, m)
			if err != nil {
				t.Fatal(err)
			}
			sameTraces(t, w+"/"+m, a, b)
		}
	}
}

func TestFig2ParallelMatchesSequential(t *testing.T) {
	seq, err := RunFig2All()
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig2AllPool(NewPool(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel Fig2 sweep should be identical to sequential")
	}
}

func TestAblationParallelMatchesSequential(t *testing.T) {
	seq, err := RunAblation(12)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAblationPool(12, NewPool(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel ablation sweep should be identical to sequential")
	}
}

func TestTable2ParallelMatchesSequential(t *testing.T) {
	seq := NewSuite(13)
	rs, err := RunTable2(seq)
	if err != nil {
		t.Fatal(err)
	}
	par := NewSuite(13)
	par.Pool = NewPool(4)
	rp, err := RunTable2(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Error("parallel Table II should be identical to sequential")
	}
}
