package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewSearcher(t *testing.T) {
	for _, m := range MethodNames {
		s, err := NewSearcher(m, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if s.Name() != m {
			t.Errorf("Name = %s, want %s", s.Name(), m)
		}
	}
	if _, err := NewSearcher("nope", 1); err == nil {
		t.Error("unknown method should error")
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(1)
	r1, err := s.Run("chatbot", "MAFF")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("chatbot", "MAFF")
	if err != nil {
		t.Fatal(err)
	}
	// Cached: the exact same trace pointer comes back.
	if r1.Outcome.Trace != r2.Outcome.Trace {
		t.Error("suite should cache and reuse runs")
	}
	if r1.Workload != "chatbot" || r1.Method != "MAFF" {
		t.Errorf("run metadata: %+v", r1)
	}
	if _, err := s.Run("nope", "MAFF"); err == nil {
		t.Error("unknown workload should error")
	}
	if _, err := s.Run("chatbot", "nope"); err == nil {
		t.Error("unknown method should error")
	}
}

func TestFig2Chatbot(t *testing.T) {
	r, err := RunFig2("chatbot")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RuntimeMS) != len(r.CPUs) || len(r.RuntimeMS[0]) != len(r.Mems) {
		t.Fatalf("grid shape wrong")
	}
	// Runtime decreases with CPU (column 0) and is ~flat in memory (row 1).
	col0 := func(i int) float64 { return r.RuntimeMS[i][0] }
	for i := 1; i < len(r.CPUs); i++ {
		if col0(i) >= col0(i-1) {
			t.Errorf("runtime should fall with CPU: %v vs %v", col0(i), col0(i-1))
		}
	}
	row := r.RuntimeMS[1]
	for j := 1; j < len(row); j++ {
		if row[j] < row[0]*0.95 || row[j] > row[0]*1.05 {
			t.Errorf("runtime should be ~flat in memory: %v", row)
		}
	}
	// Cost increases with memory within a row.
	crow := r.Cost[1]
	for j := 1; j < len(crow); j++ {
		if crow[j] <= crow[j-1] {
			t.Errorf("cost should rise with memory: %v", crow)
		}
	}
	// The cheapest feasible cell is the paper's 1 vCPU / 512 MB.
	if r.MinCostCPU != 1 || r.MinCostMem != 512 {
		t.Errorf("chatbot optimum = %v vCPU / %v MB, want 1/512", r.MinCostCPU, r.MinCostMem)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "runtime heatmap") {
		t.Error("render missing heatmap")
	}
}

func TestFig2UnknownWorkload(t *testing.T) {
	if _, err := RunFig2("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

func TestFig5AndSeries(t *testing.T) {
	// One suite shared across Fig5/6/7 assertions (MAFF only to stay fast
	// would break MethodNames iteration, so run all three on chatbot-scale
	// workloads — the simulator makes this cheap).
	s := NewSuite(2)
	f5, err := RunFig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Cells) != len(Workloads())*len(MethodNames) {
		t.Fatalf("cells = %d", len(f5.Cells))
	}
	for _, c := range f5.Cells {
		if c.Samples <= 0 || c.TotalRuntimeMS <= 0 || c.TotalCost <= 0 {
			t.Errorf("degenerate cell: %+v", c)
		}
	}
	// BO always uses its full 100-sample budget.
	for _, w := range Workloads() {
		c, ok := f5.cell(w, "BO")
		if !ok || c.Samples != 100 {
			t.Errorf("BO on %s should have 100 samples: %+v", w, c)
		}
	}
	// AARC reduces total search cost against BO on every workload.
	for _, w := range Workloads() {
		if f5.ReductionPct(w, "BO", "cost") <= 0 {
			t.Errorf("AARC should beat BO's total sampling cost on %s", w)
		}
	}
	if f5.ReductionPct("nope", "BO", "cost") != 0 {
		t.Error("missing cells should yield 0")
	}

	f6, err := RunFig6(s)
	if err != nil {
		t.Fatal(err)
	}
	f7, err := RunFig7(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads() {
		for _, m := range MethodNames {
			run, _ := s.Run(w, m)
			if len(f6.Series[w][m]) != run.Outcome.Trace.Len() {
				t.Errorf("fig6 series length mismatch for %s/%s", w, m)
			}
			if len(f7.Series[w][m]) != run.Outcome.Trace.Len() {
				t.Errorf("fig7 series length mismatch for %s/%s", w, m)
			}
		}
	}

	var buf bytes.Buffer
	f5.Render(&buf)
	f6.Render(&buf)
	f7.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig 5", "Fig 6", "Fig 7", "AARC vs BO"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	s := NewSuite(3)
	r, err := RunTable2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MeanRuntimeMS <= 0 || row.MeanCost <= 0 {
			t.Errorf("degenerate row: %+v", row)
		}
		// Table II headline: every method's final configuration meets the
		// SLO (the paper reports zero violations).
		if row.Violations > Table2ValidationRuns/20 {
			t.Errorf("%s/%s: %d violations", row.Workload, row.Method, row.Violations)
		}
	}
	// AARC is the cheapest method on every workload.
	for _, w := range Workloads() {
		if r.CostReductionPct(w, "BO") <= 0 {
			t.Errorf("AARC should beat BO cost on %s", w)
		}
		if r.CostReductionPct(w, "MAFF") <= 0 {
			t.Errorf("AARC should beat MAFF cost on %s", w)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("render missing title")
	}
}

func TestAblation(t *testing.T) {
	r, err := RunAblation(4)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(Workloads()) * len(AblationVariants())
	if len(r.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(r.Rows), wantRows)
	}
	for _, row := range r.Rows {
		if row.FinalE2EMS > row.SLOMS*1.05 {
			t.Errorf("%s/%s violates SLO: %.0f > %.0f", row.Workload, row.Variant, row.FinalE2EMS, row.SLOMS)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("render missing title")
	}
}

func TestFig3(t *testing.T) {
	r, err := RunFig3(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace.Len() != 100 {
		t.Errorf("BO probe should run 100 rounds: %d", r.Trace.Len())
	}
	if r.CostReductionPct <= 0 || r.TotalRuntimeHours <= 0 {
		t.Errorf("degenerate fig3: %+v", r)
	}
	// The §II-B observation: the cost series fluctuates notably.
	if r.FluctuationPct < 5 {
		t.Errorf("BO cost series suspiciously stable: %.1f%%", r.FluctuationPct)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 3") {
		t.Error("render missing title")
	}
}

func TestFig8(t *testing.T) {
	r, err := RunFig8(6)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := len(r.Classes) * Fig8RequestsPerClass
	for _, m := range MethodNames {
		if len(r.RuntimeMSSeries[m]) != wantLen {
			t.Errorf("%s series len = %d, want %d", m, len(r.RuntimeMSSeries[m]), wantLen)
		}
	}
	// The paper's §IV-D claims: AARC never violates; MAFF violates under
	// heavy input; AARC is cheaper than both baselines on light input.
	if r.Violations["AARC"] != 0 {
		t.Errorf("AARC violations = %d, want 0", r.Violations["AARC"])
	}
	if r.Violations["MAFF"] == 0 {
		t.Error("MAFF should violate the SLO under heavy input")
	}
	if r.CostOptimizationPct("MAFF", "light") <= 0 || r.CostOptimizationPct("BO", "light") <= 0 {
		t.Error("AARC should be cheapest under light input")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig 8") {
		t.Error("render missing title")
	}
}

func TestMotivation(t *testing.T) {
	r, err := RunMotivation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Workloads())*4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The decoupled reference is feasible, has zero overhead by definition,
	// and every other scheme costs at least as much.
	for _, w := range Workloads() {
		var decoupled *MotivationRow
		for i := range r.Rows {
			row := &r.Rows[i]
			if row.Workload == w && row.Scheme == "decoupled" {
				decoupled = row
			}
		}
		if decoupled == nil || !decoupled.Feasible {
			t.Fatalf("decoupled reference missing/infeasible for %s", w)
		}
		if decoupled.OverPct != 0 {
			t.Errorf("decoupled overhead = %v", decoupled.OverPct)
		}
		for _, row := range r.Rows {
			if row.Workload == w && row.Feasible && row.Cost < decoupled.Cost-1e-6 {
				t.Errorf("%s/%s cheaper than decoupled optimum: %v < %v",
					w, row.Scheme, row.Cost, decoupled.Cost)
			}
		}
	}
	// The §II-A headline: coupled AWS-style configuration carries a
	// substantial overhead on the compute-bound workflows.
	for _, row := range r.Rows {
		if row.Scheme == "aws-coupled" && row.Workload == "ml-pipeline" {
			if !row.Feasible || row.OverPct < 20 {
				t.Errorf("AWS coupling should cost >20%% extra on ML Pipeline: %+v", row)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Motivation") {
		t.Error("render missing title")
	}
}

func TestScale(t *testing.T) {
	r, err := RunScale(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Rows)%len(MethodNames) != 0 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	sizes := map[int]bool{}
	for _, row := range r.Rows {
		sizes[row.Functions] = true
		if row.Method == "AARC" && row.SLOViolated {
			t.Errorf("AARC violates SLO at %d functions", row.Functions)
		}
		if row.Samples <= 0 || row.FinalCost <= 0 {
			t.Errorf("degenerate row: %+v", row)
		}
	}
	if len(sizes) < 3 {
		t.Errorf("expected several workflow sizes, got %v", sizes)
	}
	// AARC's saving should beat BO's at the largest size (the §II-B
	// dimensionality argument).
	largest := 0
	for s := range sizes {
		if s > largest {
			largest = s
		}
	}
	var aarcSave, boSave float64
	for _, row := range r.Rows {
		if row.Functions != largest {
			continue
		}
		save := (row.BaseCost - row.FinalCost) / row.BaseCost
		switch row.Method {
		case "AARC":
			aarcSave = save
		case "BO":
			boSave = save
		}
	}
	if aarcSave <= boSave {
		t.Errorf("AARC saving (%.2f) should beat BO (%.2f) on the largest workflow", aarcSave, boSave)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Scale") {
		t.Error("render missing title")
	}
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &table{header: []string{"col", "x"}}
	tb.addRow("longvalue", "1")
	var buf bytes.Buffer
	tb.render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[1], "---------") {
		t.Errorf("separator = %q", lines[1])
	}
}
