package search

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs a fresh Searcher for one search run. The seed drives
// any stochastic component of the method (BO's initial design and candidate
// sampling, random search); deterministic methods ignore it.
type Factory func(seed uint64) Searcher

// registration is one registry row: the factory plus the method's
// implementation version.
type registration struct {
	version int
	factory Factory
}

var (
	registryMu sync.RWMutex
	registry   = map[string]registration{}
)

// Register adds a searcher factory under a case-insensitive name with an
// implementation version. The version is part of a method's public
// identity: the serving layer folds it into recommendation fingerprints,
// so bumping it when a method's behavior changes makes every previously
// cached (possibly persisted) recommendation self-invalidate — old
// entries simply stop being addressed. Method packages self-register
// from init, so importing a package (directly or blank) is what makes
// its methods resolvable. Register panics on a duplicate or empty name
// or a non-positive version: all are programmer errors.
func Register(name string, version int, f Factory) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		panic("search: Register with empty method name")
	}
	if version < 1 {
		panic(fmt.Sprintf("search: Register(%q) with non-positive version %d", name, version))
	}
	if f == nil {
		panic(fmt.Sprintf("search: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("search: Register called twice for method %q", key))
	}
	registry[key] = registration{version: version, factory: f}
}

// New resolves a registered method by name (case-insensitive) and builds a
// searcher with the given seed. The error lists the registered methods, so
// CLIs can surface it verbatim.
func New(name string, seed uint64) (Searcher, error) {
	registryMu.RLock()
	reg, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("search: unknown method %q (registered: %s)",
			name, strings.Join(Methods(), ", "))
	}
	return reg.factory(seed), nil
}

// Version returns a registered method's implementation version. Callers
// that cache search results by identity (the serving layer) include it
// in their keys so a version bump orphans stale entries.
func Version(name string) (int, error) {
	registryMu.RLock()
	reg, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	registryMu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("search: unknown method %q (registered: %s)",
			name, strings.Join(Methods(), ", "))
	}
	return reg.version, nil
}

// Methods returns the registered method names, sorted.
func Methods() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
