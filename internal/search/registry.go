package search

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs a fresh Searcher for one search run. The seed drives
// any stochastic component of the method (BO's initial design and candidate
// sampling, random search); deterministic methods ignore it.
type Factory func(seed uint64) Searcher

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a searcher factory under a case-insensitive name. Method
// packages self-register from init, so importing a package (directly or
// blank) is what makes its methods resolvable. Register panics on a
// duplicate or empty name: both are programmer errors.
func Register(name string, f Factory) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		panic("search: Register with empty method name")
	}
	if f == nil {
		panic(fmt.Sprintf("search: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("search: Register called twice for method %q", key))
	}
	registry[key] = f
}

// New resolves a registered method by name (case-insensitive) and builds a
// searcher with the given seed. The error lists the registered methods, so
// CLIs can surface it verbatim.
func New(name string, seed uint64) (Searcher, error) {
	registryMu.RLock()
	f, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("search: unknown method %q (registered: %s)",
			name, strings.Join(Methods(), ", "))
	}
	return f(seed), nil
}

// Methods returns the registered method names, sorted.
func Methods() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
