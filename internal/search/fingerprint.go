package search

import "encoding/json"

// CanonicalJSON returns the deterministic JSON encoding of the options'
// result-affecting fields: the SLO and the two budgets. Progress is
// observational — it cannot change which samples a search takes or which
// assignment it returns — so it is excluded, letting a caching layer treat
// otherwise-identical searches with and without a progress callback as the
// same search. The serving layer hashes these bytes (together with the
// spec's canonical JSON and the runner/method identity) into its cache key.
func (o Options) CanonicalJSON() []byte {
	b, err := json.Marshal(struct {
		SLOMS        float64 `json:"slo_ms"`
		MaxSamples   int     `json:"max_samples"`
		MaxSimCostMS float64 `json:"max_sim_cost_ms"`
	}{o.SLOMS, o.MaxSamples, o.MaxSimCostMS})
	if err != nil {
		// Three scalar fields cannot fail to marshal.
		panic(err)
	}
	return b
}
