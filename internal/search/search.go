// Package search defines the abstractions shared by AARC and the baseline
// configuration searchers: the Evaluator that executes a workflow under a
// candidate assignment, the per-sample Trace that every experiment figure is
// derived from, the Searcher interface all methods implement, and the
// registry through which methods are resolved by name.
//
// # Search contract
//
// A Searcher runs under a context.Context and an Options value carrying the
// latency SLO, optional sample/simulated-time budgets, and an optional
// per-sample Progress callback. Enforcement is centralized in Trace.Record:
// every searcher records each probe through it, and Record reports — after
// appending the sample and firing Progress — whether the search must halt
// (context cancelled, or a budget consumed). Searchers that receive a halt
// from Record stop immediately and return their best-so-far Outcome with
// the partial trace: a nil error when a budget was consumed (a normal stop),
// or ctx.Err() when the context was cancelled. A trace can therefore never
// exceed Options.MaxSamples, and never starts a new probe once
// Options.MaxSimCostMS simulated milliseconds have been spent.
package search

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"aarc/internal/resources"
)

// NodeResult is the measured outcome of one function invocation inside a
// workflow execution.
type NodeResult struct {
	Group       string // configuration group (function) the node belongs to
	Config      resources.Config
	RuntimeMS   float64 // billed duration, including cold start and contention stretch
	ColdStartMS float64 // cold-start portion of the runtime
	Cost        float64
	StartMS     float64 // start time on the simulated clock
	FinishMS    float64
	OOM         bool
	Skipped     bool // true when an upstream OOM aborted the workflow first
}

// Result is the outcome of one end-to-end workflow execution.
type Result struct {
	E2EMS float64 // makespan of the (possibly aborted) execution
	Cost  float64 // total cost over all executed invocations
	Nodes map[string]NodeResult
	OOM   bool   // some invocation was OOM-killed
	Fail  string // ID of the first failed node, if any
}

// PathRuntimeMS sums the runtimes of the listed nodes (a path through the
// DAG). Skipped nodes contribute zero.
func (r Result) PathRuntimeMS(path []string) float64 {
	s := 0.0
	for _, id := range path {
		s += r.Nodes[id].RuntimeMS
	}
	return s
}

// GroupCost sums the cost of every node in the given configuration group.
func (r Result) GroupCost(group string) float64 {
	s := 0.0
	for _, nr := range r.Nodes {
		if nr.Group == group {
			s += nr.Cost
		}
	}
	return s
}

// GroupSteadyCost sums the steady-state cost of a group: the billed cost
// with each node's cold-start portion removed pro rata. Configuration
// searchers compare steady-state costs so that the one-off cold start a
// configuration change triggers does not masquerade as a recurring cost
// increase.
func (r Result) GroupSteadyCost(group string) float64 {
	s := 0.0
	for _, nr := range r.Nodes {
		if nr.Group != group {
			continue
		}
		if nr.RuntimeMS <= 0 {
			continue
		}
		warmFrac := (nr.RuntimeMS - nr.ColdStartMS) / nr.RuntimeMS
		if warmFrac < 0 {
			warmFrac = 0
		}
		s += nr.Cost * warmFrac
	}
	return s
}

// NodeWeights returns runtime weights per node ID, for critical-path
// extraction over the executed DAG.
func (r Result) NodeWeights() map[string]float64 {
	w := make(map[string]float64, len(r.Nodes))
	for id, nr := range r.Nodes {
		w[id] = nr.RuntimeMS
	}
	return w
}

// Evaluator executes a workflow under a candidate assignment. Evaluate is
// the only way searchers observe the system; the returned error is reserved
// for misuse (unknown group, invalid config) — OOM kills are reported
// in-band through Result.
type Evaluator interface {
	// Evaluate runs the workflow once with the given per-group assignment.
	Evaluate(a resources.Assignment) (Result, error)
	// Functions lists the configurable function groups in a stable order.
	Functions() []string
	// Limits returns the admissible configuration box/grid.
	Limits() resources.Limits
	// Base returns the over-provisioned base assignment (Algorithm 1 line 3).
	Base() resources.Assignment
}

// Options bounds and observes one search. The zero value of every field but
// SLOMS means "unlimited / none": no sample budget, no simulated-time
// budget, no progress callback.
type Options struct {
	// SLOMS is the end-to-end latency SLO in milliseconds. Required: every
	// searcher rejects a non-positive SLO.
	SLOMS float64
	// MaxSamples caps the number of recorded samples. The search halts as
	// soon as the trace holds MaxSamples samples; a trace never exceeds it.
	// Zero means unlimited.
	MaxSamples int
	// MaxSimCostMS caps the total simulated wall time spent sampling
	// (Trace.TotalRuntimeMS). The sample that crosses the budget is kept —
	// its cost was already paid — but no further probe starts. Zero means
	// unlimited.
	MaxSimCostMS float64
	// Progress, when non-nil, is invoked synchronously from Trace.Record
	// with every sample as it is recorded (before budget/cancellation
	// checks). It must not retain the sample's Assignment map beyond the
	// call if the caller mutates assignments, and it must be fast: it runs
	// on the search's hot path.
	Progress func(Sample)
}

// ErrBudgetExhausted is the sentinel wrapped by Trace.Record when a sample
// or simulated-time budget is consumed. Searchers translate it into a normal
// (nil-error) stop via StopCause.
var ErrBudgetExhausted = errors.New("search: budget exhausted")

// Halted reports whether err is a Trace.Record enforcement signal — budget
// exhaustion or context cancellation — as opposed to a broken evaluation.
// Searchers use it to distinguish "stop and return the partial outcome"
// from a genuine failure.
func Halted(err error) bool {
	return errors.Is(err, ErrBudgetExhausted) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// StopCause maps a Trace.Record enforcement error to the error a Searcher
// returns alongside its partial Outcome: nil for budget exhaustion (a normal
// stop), the context's error when the context was cancelled, and err itself
// otherwise.
func StopCause(err error) error {
	if errors.Is(err, ErrBudgetExhausted) {
		return nil
	}
	return err
}

// Sample is one probe of the configuration space.
type Sample struct {
	Index      int
	Assignment resources.Assignment
	E2EMS      float64
	Cost       float64
	OOM        bool
	Accepted   bool   // the searcher kept this configuration
	Note       string // free-form: "init", "revert cpu classify", ...
}

// Trace is the ordered record of all samples a search performed. Figures 3,
// 5, 6 and 7 are all derived from traces.
//
// A Trace built by NewTrace is additionally the search's single enforcement
// point: Record checks the bound context and budgets and tells the searcher
// when to halt. A zero-value Trace still records but never halts.
type Trace struct {
	Method   string
	Workload string
	Samples  []Sample

	ctx   context.Context // nil: never cancelled
	opts  Options         // zero: no budgets, no progress
	simMS float64         // running TotalRuntimeMS, to keep Record O(1)
}

// NewTrace returns a trace bound to the search's context and options, ready
// to enforce them on every Record call.
func NewTrace(ctx context.Context, method string, opts Options) *Trace {
	return &Trace{Method: method, ctx: ctx, opts: opts}
}

// Record appends a sample, assigning its index, fires the Progress callback,
// and then enforces the bound context and budgets. The assignment is cloned
// so later mutation by the searcher cannot corrupt the trace.
//
// A non-nil return is the halt signal: ctx.Err() when the bound context is
// done, or an error wrapping ErrBudgetExhausted when the sample or
// simulated-time budget is consumed. The sample that triggered the halt is
// already part of the trace; the searcher must stop probing and return its
// best-so-far outcome with StopCause(err).
func (t *Trace) Record(a resources.Assignment, r Result, accepted bool, note string) error {
	s := Sample{
		Index:      len(t.Samples),
		Assignment: a.Clone(),
		E2EMS:      r.E2EMS,
		Cost:       r.Cost,
		OOM:        r.OOM,
		Accepted:   accepted,
		Note:       note,
	}
	t.Samples = append(t.Samples, s)
	t.simMS += r.E2EMS
	if t.opts.Progress != nil {
		t.opts.Progress(s)
	}
	if t.ctx != nil {
		if err := t.ctx.Err(); err != nil {
			return err
		}
	}
	if t.opts.MaxSamples > 0 && len(t.Samples) >= t.opts.MaxSamples {
		return fmt.Errorf("%w: sample budget %d consumed", ErrBudgetExhausted, t.opts.MaxSamples)
	}
	if t.opts.MaxSimCostMS > 0 && t.simMS >= t.opts.MaxSimCostMS {
		return fmt.Errorf("%w: simulated-time budget %.0f ms consumed", ErrBudgetExhausted, t.opts.MaxSimCostMS)
	}
	return nil
}

// Len returns the number of samples (the paper's "sample count").
func (t *Trace) Len() int { return len(t.Samples) }

// TotalRuntimeMS is the total simulated wall time spent sampling — the
// quantity of Fig. 5a ("total runtime of the sampling process").
func (t *Trace) TotalRuntimeMS() float64 {
	s := 0.0
	for _, smp := range t.Samples {
		s += smp.E2EMS
	}
	return s
}

// TotalCost is the total cost incurred while sampling — Fig. 5b.
func (t *Trace) TotalCost() float64 {
	s := 0.0
	for _, smp := range t.Samples {
		s += smp.Cost
	}
	return s
}

// RuntimeSeries returns the per-sample end-to-end runtimes (Fig. 6).
func (t *Trace) RuntimeSeries() []float64 {
	out := make([]float64, len(t.Samples))
	for i, smp := range t.Samples {
		out[i] = smp.E2EMS
	}
	return out
}

// CostSeries returns the per-sample workflow costs (Fig. 7).
func (t *Trace) CostSeries() []float64 {
	out := make([]float64, len(t.Samples))
	for i, smp := range t.Samples {
		out[i] = smp.Cost
	}
	return out
}

// WriteCSV emits the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "e2e_ms", "cost", "oom", "accepted", "note", "assignment"}); err != nil {
		return err
	}
	for _, s := range t.Samples {
		rec := []string{
			strconv.Itoa(s.Index),
			strconv.FormatFloat(s.E2EMS, 'f', 3, 64),
			strconv.FormatFloat(s.Cost, 'f', 3, 64),
			strconv.FormatBool(s.OOM),
			strconv.FormatBool(s.Accepted),
			s.Note,
			s.Assignment.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Outcome bundles what a searcher returns.
type Outcome struct {
	Best  resources.Assignment
	Trace *Trace
	// Final is the last measurement of Best the searcher observed, so
	// callers can report validated numbers without re-running Evaluate
	// (which would perturb the evaluator's RNG stream). It is the zero
	// Result only when the searcher never measured the assignment it
	// returned (possible for the naive baselines falling back to the base
	// configuration after finding no feasible sample).
	Final Result
}

// Searcher is a resource-configuration search method (AARC, BO, MAFF, ...).
type Searcher interface {
	// Name identifies the method in tables and figures ("AARC", "BO", "MAFF").
	Name() string
	// Search explores configurations of ev's workflow subject to
	// opts.SLOMS and the opts budgets, recording every probe through a
	// context-bound Trace. It returns the chosen assignment, the sampling
	// trace, and the last measurement of that assignment. When ctx is
	// cancelled mid-search the partial outcome is returned together with
	// ctx.Err(); when a budget runs out the partial outcome is returned
	// with a nil error.
	Search(ctx context.Context, ev Evaluator, opts Options) (Outcome, error)
}

// ValidateAssignment checks that a configures exactly the evaluator's
// function groups with valid, in-limits configurations.
func ValidateAssignment(ev Evaluator, a resources.Assignment) error {
	lim := ev.Limits()
	groups := ev.Functions()
	if len(a) != len(groups) {
		return fmt.Errorf("search: assignment has %d groups, workflow has %d", len(a), len(groups))
	}
	for _, g := range groups {
		cfg, ok := a[g]
		if !ok {
			return fmt.Errorf("search: assignment missing group %q", g)
		}
		if !cfg.Valid() {
			return fmt.Errorf("search: invalid config %v for group %q", cfg, g)
		}
		if !lim.Contains(cfg) {
			return fmt.Errorf("search: config %v for group %q outside limits", cfg, g)
		}
	}
	return nil
}
