// Package search defines the abstractions shared by AARC and the baseline
// configuration searchers: the Evaluator that executes a workflow under a
// candidate assignment, the per-sample Trace that every experiment figure is
// derived from, and the Searcher interface all methods implement.
package search

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"aarc/internal/resources"
)

// NodeResult is the measured outcome of one function invocation inside a
// workflow execution.
type NodeResult struct {
	Group       string // configuration group (function) the node belongs to
	Config      resources.Config
	RuntimeMS   float64 // billed duration, including cold start and contention stretch
	ColdStartMS float64 // cold-start portion of the runtime
	Cost        float64
	StartMS     float64 // start time on the simulated clock
	FinishMS    float64
	OOM         bool
	Skipped     bool // true when an upstream OOM aborted the workflow first
}

// Result is the outcome of one end-to-end workflow execution.
type Result struct {
	E2EMS float64 // makespan of the (possibly aborted) execution
	Cost  float64 // total cost over all executed invocations
	Nodes map[string]NodeResult
	OOM   bool   // some invocation was OOM-killed
	Fail  string // ID of the first failed node, if any
}

// PathRuntimeMS sums the runtimes of the listed nodes (a path through the
// DAG). Skipped nodes contribute zero.
func (r Result) PathRuntimeMS(path []string) float64 {
	s := 0.0
	for _, id := range path {
		s += r.Nodes[id].RuntimeMS
	}
	return s
}

// GroupCost sums the cost of every node in the given configuration group.
func (r Result) GroupCost(group string) float64 {
	s := 0.0
	for _, nr := range r.Nodes {
		if nr.Group == group {
			s += nr.Cost
		}
	}
	return s
}

// GroupSteadyCost sums the steady-state cost of a group: the billed cost
// with each node's cold-start portion removed pro rata. Configuration
// searchers compare steady-state costs so that the one-off cold start a
// configuration change triggers does not masquerade as a recurring cost
// increase.
func (r Result) GroupSteadyCost(group string) float64 {
	s := 0.0
	for _, nr := range r.Nodes {
		if nr.Group != group {
			continue
		}
		if nr.RuntimeMS <= 0 {
			continue
		}
		warmFrac := (nr.RuntimeMS - nr.ColdStartMS) / nr.RuntimeMS
		if warmFrac < 0 {
			warmFrac = 0
		}
		s += nr.Cost * warmFrac
	}
	return s
}

// NodeWeights returns runtime weights per node ID, for critical-path
// extraction over the executed DAG.
func (r Result) NodeWeights() map[string]float64 {
	w := make(map[string]float64, len(r.Nodes))
	for id, nr := range r.Nodes {
		w[id] = nr.RuntimeMS
	}
	return w
}

// Evaluator executes a workflow under a candidate assignment. Evaluate is
// the only way searchers observe the system; the returned error is reserved
// for misuse (unknown group, invalid config) — OOM kills are reported
// in-band through Result.
type Evaluator interface {
	// Evaluate runs the workflow once with the given per-group assignment.
	Evaluate(a resources.Assignment) (Result, error)
	// Functions lists the configurable function groups in a stable order.
	Functions() []string
	// Limits returns the admissible configuration box/grid.
	Limits() resources.Limits
	// Base returns the over-provisioned base assignment (Algorithm 1 line 3).
	Base() resources.Assignment
}

// Sample is one probe of the configuration space.
type Sample struct {
	Index      int
	Assignment resources.Assignment
	E2EMS      float64
	Cost       float64
	OOM        bool
	Accepted   bool   // the searcher kept this configuration
	Note       string // free-form: "init", "revert cpu classify", ...
}

// Trace is the ordered record of all samples a search performed. Figures 3,
// 5, 6 and 7 are all derived from traces.
type Trace struct {
	Method   string
	Workload string
	Samples  []Sample
}

// Record appends a sample, assigning its index. The assignment is cloned so
// later mutation by the searcher cannot corrupt the trace.
func (t *Trace) Record(a resources.Assignment, r Result, accepted bool, note string) {
	t.Samples = append(t.Samples, Sample{
		Index:      len(t.Samples),
		Assignment: a.Clone(),
		E2EMS:      r.E2EMS,
		Cost:       r.Cost,
		OOM:        r.OOM,
		Accepted:   accepted,
		Note:       note,
	})
}

// Len returns the number of samples (the paper's "sample count").
func (t *Trace) Len() int { return len(t.Samples) }

// TotalRuntimeMS is the total simulated wall time spent sampling — the
// quantity of Fig. 5a ("total runtime of the sampling process").
func (t *Trace) TotalRuntimeMS() float64 {
	s := 0.0
	for _, smp := range t.Samples {
		s += smp.E2EMS
	}
	return s
}

// TotalCost is the total cost incurred while sampling — Fig. 5b.
func (t *Trace) TotalCost() float64 {
	s := 0.0
	for _, smp := range t.Samples {
		s += smp.Cost
	}
	return s
}

// RuntimeSeries returns the per-sample end-to-end runtimes (Fig. 6).
func (t *Trace) RuntimeSeries() []float64 {
	out := make([]float64, len(t.Samples))
	for i, smp := range t.Samples {
		out[i] = smp.E2EMS
	}
	return out
}

// CostSeries returns the per-sample workflow costs (Fig. 7).
func (t *Trace) CostSeries() []float64 {
	out := make([]float64, len(t.Samples))
	for i, smp := range t.Samples {
		out[i] = smp.Cost
	}
	return out
}

// WriteCSV emits the trace as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "e2e_ms", "cost", "oom", "accepted", "note", "assignment"}); err != nil {
		return err
	}
	for _, s := range t.Samples {
		rec := []string{
			strconv.Itoa(s.Index),
			strconv.FormatFloat(s.E2EMS, 'f', 3, 64),
			strconv.FormatFloat(s.Cost, 'f', 3, 64),
			strconv.FormatBool(s.OOM),
			strconv.FormatBool(s.Accepted),
			s.Note,
			s.Assignment.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Outcome bundles what a searcher returns.
type Outcome struct {
	Best  resources.Assignment
	Trace *Trace
}

// Searcher is a resource-configuration search method (AARC, BO, MAFF, ...).
type Searcher interface {
	// Name identifies the method in tables and figures ("AARC", "BO", "MAFF").
	Name() string
	// Search explores configurations of ev's workflow subject to the
	// end-to-end latency SLO (milliseconds) and returns the chosen
	// assignment plus the full sampling trace.
	Search(ev Evaluator, sloMS float64) (Outcome, error)
}

// ValidateAssignment checks that a configures exactly the evaluator's
// function groups with valid, in-limits configurations.
func ValidateAssignment(ev Evaluator, a resources.Assignment) error {
	lim := ev.Limits()
	groups := ev.Functions()
	if len(a) != len(groups) {
		return fmt.Errorf("search: assignment has %d groups, workflow has %d", len(a), len(groups))
	}
	for _, g := range groups {
		cfg, ok := a[g]
		if !ok {
			return fmt.Errorf("search: assignment missing group %q", g)
		}
		if !cfg.Valid() {
			return fmt.Errorf("search: invalid config %v for group %q", cfg, g)
		}
		if !lim.Contains(cfg) {
			return fmt.Errorf("search: config %v for group %q outside limits", cfg, g)
		}
	}
	return nil
}
