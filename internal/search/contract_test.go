// Contract tests over every registered searcher: all methods must honor
// context cancellation and the sample / simulated-time budgets uniformly,
// because enforcement is centralized in Trace.Record.
package search_test

import (
	"context"
	"errors"
	"testing"

	"aarc/internal/search"
	"aarc/internal/testutil"
	"aarc/internal/workflow"

	// Self-registration of every built-in method.
	_ "aarc/internal/baselines/bo"
	_ "aarc/internal/baselines/maff"
	_ "aarc/internal/baselines/naive"
	_ "aarc/internal/core"
)

// newRunner builds a fresh fast evaluator per case: searchers consume the
// runner's RNG stream, so cases must not share one.
func newRunner(t *testing.T, spec *workflow.Spec) *workflow.Runner {
	t.Helper()
	return testutil.NewRunner(t, spec, true, 1)
}

func TestRegistryHasAllBuiltins(t *testing.T) {
	got := make(map[string]bool)
	for _, m := range search.Methods() {
		got[m] = true
	}
	for _, want := range []string{"aarc", "bo", "maff", "random", "grid"} {
		if !got[want] {
			t.Errorf("registry missing %q: %v", want, search.Methods())
		}
	}
}

func TestRegistryVersions(t *testing.T) {
	// Every registered method carries an implementation version >= 1: the
	// serving layer folds it into recommendation fingerprints, so a
	// missing or zero version would silently merge distinct
	// implementations into one cache identity.
	for _, m := range search.Methods() {
		v, err := search.Version(m)
		if err != nil {
			t.Errorf("Version(%q): %v", m, err)
			continue
		}
		if v < 1 {
			t.Errorf("Version(%q) = %d, want >= 1", m, v)
		}
	}
	// Case-insensitive like New.
	if v, err := search.Version("AARC"); err != nil || v < 1 {
		t.Errorf("Version(AARC) = %d, %v", v, err)
	}
	if _, err := search.Version("nope"); err == nil {
		t.Error("Version of an unknown method did not error")
	}
}

func TestSearchersHonorPreCancelledContext(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range search.Methods() {
		t.Run(m, func(t *testing.T) {
			s, err := search.New(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			out, err := s.Search(ctx, newRunner(t, spec), search.Options{SLOMS: spec.SLOMS})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if out.Trace == nil {
				t.Fatal("cancelled search must still return its partial trace")
			}
			// Record is the enforcement point: the pre-cancelled context is
			// seen at the first recorded sample, so at most one probe ran.
			if out.Trace.Len() > 1 {
				t.Errorf("pre-cancelled context recorded %d samples, want at most 1", out.Trace.Len())
			}
			if out.Best == nil {
				t.Error("cancelled search must still return a best-so-far assignment")
			}
			if err := search.ValidateAssignment(newRunner(t, spec), out.Best); err != nil {
				t.Errorf("partial Best invalid: %v", err)
			}
		})
	}
}

func TestSearchersHonorMaxSamples(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	for _, m := range search.Methods() {
		for _, maxN := range []int{1, 3, 7} {
			t.Run(m, func(t *testing.T) {
				s, err := search.New(m, 1)
				if err != nil {
					t.Fatal(err)
				}
				out, err := s.Search(context.Background(), newRunner(t, spec),
					search.Options{SLOMS: spec.SLOMS, MaxSamples: maxN})
				if err != nil {
					t.Fatalf("budget exhaustion is a normal stop, got error %v", err)
				}
				// Every built-in method probes more than 7 samples on this
				// workload when unbounded, so the budget must bind exactly.
				if out.Trace.Len() != maxN {
					t.Errorf("MaxSamples=%d recorded %d samples", maxN, out.Trace.Len())
				}
				for i, smp := range out.Trace.Samples {
					if smp.Index != i {
						t.Errorf("sample %d has index %d", i, smp.Index)
					}
					if len(smp.Assignment) == 0 {
						t.Errorf("sample %d has empty assignment", i)
					}
				}
				if out.Best == nil {
					t.Error("budget-stopped search must return a best-so-far assignment")
				}
			})
		}
	}
}

func TestSearchersHonorSimCostBudget(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	for _, m := range search.Methods() {
		t.Run(m, func(t *testing.T) {
			s, err := search.New(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			// 1 ms of simulated time: the first sample consumes the budget.
			out, err := s.Search(context.Background(), newRunner(t, spec),
				search.Options{SLOMS: spec.SLOMS, MaxSimCostMS: 1})
			if err != nil {
				t.Fatalf("budget exhaustion is a normal stop, got error %v", err)
			}
			if out.Trace.Len() != 1 {
				t.Errorf("1 ms budget recorded %d samples, want 1", out.Trace.Len())
			}
		})
	}
}

func TestProgressSeesEverySample(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	for _, m := range search.Methods() {
		t.Run(m, func(t *testing.T) {
			s, err := search.New(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			var seen []search.Sample
			out, err := s.Search(context.Background(), newRunner(t, spec), search.Options{
				SLOMS:      spec.SLOMS,
				MaxSamples: 5,
				Progress:   func(smp search.Sample) { seen = append(seen, smp) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != out.Trace.Len() {
				t.Fatalf("progress saw %d samples, trace has %d", len(seen), out.Trace.Len())
			}
			for i, smp := range seen {
				if smp.Index != out.Trace.Samples[i].Index || smp.E2EMS != out.Trace.Samples[i].E2EMS {
					t.Errorf("progress sample %d diverges from trace", i)
				}
			}
		})
	}
}

// TestOutcomeFinalMatchesBest pins the satellite contract: Final is a real
// measurement of the returned assignment, so callers need not re-evaluate.
func TestOutcomeFinalMatchesBest(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	for _, m := range search.Methods() {
		t.Run(m, func(t *testing.T) {
			s, err := search.New(m, 1)
			if err != nil {
				t.Fatal(err)
			}
			out, err := s.Search(context.Background(), newRunner(t, spec),
				search.Options{SLOMS: spec.SLOMS})
			if err != nil {
				t.Fatal(err)
			}
			if out.Final.E2EMS <= 0 || len(out.Final.Nodes) == 0 {
				t.Fatalf("Final not populated: %+v", out.Final)
			}
			// The measurement must appear in the trace for the returned
			// assignment (same E2E and cost as some sample of Best).
			found := false
			for _, smp := range out.Trace.Samples {
				if smp.Assignment.Equal(out.Best) && smp.E2EMS == out.Final.E2EMS && smp.Cost == out.Final.Cost {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("Final (e2e %.1f, cost %.1f) not traceable to a recorded sample of Best", out.Final.E2EMS, out.Final.Cost)
			}
		})
	}
}
