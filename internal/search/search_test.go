package search

import (
	"bytes"
	"strings"
	"testing"

	"aarc/internal/resources"
)

func sampleResult(e2e, cost float64) Result {
	return Result{
		E2EMS: e2e,
		Cost:  cost,
		Nodes: map[string]NodeResult{
			"a": {Group: "g1", RuntimeMS: e2e / 2, Cost: cost / 2},
			"b": {Group: "g2", RuntimeMS: e2e / 2, Cost: cost / 2},
		},
	}
}

func TestTraceRecordAndSeries(t *testing.T) {
	tr := &Trace{Method: "X"}
	a := resources.Assignment{"g1": {CPU: 1, MemMB: 128}}
	tr.Record(a, sampleResult(100, 10), true, "init")
	tr.Record(a, sampleResult(200, 20), false, "probe")

	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Samples[0].Index != 0 || tr.Samples[1].Index != 1 {
		t.Error("indices should be assigned in order")
	}
	if got := tr.TotalRuntimeMS(); got != 300 {
		t.Errorf("TotalRuntimeMS = %v", got)
	}
	if got := tr.TotalCost(); got != 30 {
		t.Errorf("TotalCost = %v", got)
	}
	rs := tr.RuntimeSeries()
	cs := tr.CostSeries()
	if rs[0] != 100 || rs[1] != 200 || cs[0] != 10 || cs[1] != 20 {
		t.Errorf("series: %v %v", rs, cs)
	}
}

func TestTraceRecordClonesAssignment(t *testing.T) {
	tr := &Trace{}
	a := resources.Assignment{"g1": {CPU: 1, MemMB: 128}}
	tr.Record(a, sampleResult(1, 1), true, "")
	a["g1"] = resources.Config{CPU: 9, MemMB: 9999}
	if tr.Samples[0].Assignment["g1"].CPU == 9 {
		t.Error("trace should hold a snapshot, not a live reference")
	}
}

func TestTraceCSV(t *testing.T) {
	tr := &Trace{Method: "X"}
	a := resources.Assignment{"g1": {CPU: 1, MemMB: 128}}
	tr.Record(a, sampleResult(100, 10), true, "init")
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "index,e2e_ms,cost") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "init") || !strings.Contains(lines[1], "g1=") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{
		Nodes: map[string]NodeResult{
			"a": {Group: "g", RuntimeMS: 100, ColdStartMS: 20, Cost: 50},
			"b": {Group: "g", RuntimeMS: 200, Cost: 80},
			"c": {Group: "h", RuntimeMS: 300, Cost: 10},
		},
	}
	if got := r.PathRuntimeMS([]string{"a", "c"}); got != 400 {
		t.Errorf("PathRuntimeMS = %v", got)
	}
	if got := r.GroupCost("g"); got != 130 {
		t.Errorf("GroupCost = %v", got)
	}
	// Steady cost removes the cold-start fraction: a contributes 50*0.8.
	if got := r.GroupSteadyCost("g"); got != 50*0.8+80 {
		t.Errorf("GroupSteadyCost = %v", got)
	}
	w := r.NodeWeights()
	if w["b"] != 200 || len(w) != 3 {
		t.Errorf("NodeWeights = %v", w)
	}
}

func TestGroupSteadyCostEdgeCases(t *testing.T) {
	r := Result{
		Nodes: map[string]NodeResult{
			"z": {Group: "g", RuntimeMS: 0, Cost: 5},                   // zero runtime
			"o": {Group: "g", RuntimeMS: 10, ColdStartMS: 50, Cost: 5}, // cold > runtime
		},
	}
	if got := r.GroupSteadyCost("g"); got != 0 {
		t.Errorf("degenerate steady cost = %v, want 0", got)
	}
}

// fakeEval implements Evaluator for ValidateAssignment tests.
type fakeEval struct {
	groups []string
	lim    resources.Limits
	base   resources.Assignment
}

func (f *fakeEval) Evaluate(resources.Assignment) (Result, error) { return Result{}, nil }
func (f *fakeEval) Functions() []string                           { return f.groups }
func (f *fakeEval) Limits() resources.Limits                      { return f.lim }
func (f *fakeEval) Base() resources.Assignment                    { return f.base.Clone() }

func TestValidateAssignment(t *testing.T) {
	ev := &fakeEval{
		groups: []string{"f", "g"},
		lim:    resources.DefaultLimits(),
		base: resources.Assignment{
			"f": {CPU: 1, MemMB: 128},
			"g": {CPU: 1, MemMB: 128},
		},
	}
	good := ev.Base()
	if err := ValidateAssignment(ev, good); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	if err := ValidateAssignment(ev, resources.Assignment{"f": good["f"]}); err == nil {
		t.Error("missing group should fail")
	}
	wrongKey := resources.Assignment{"f": good["f"], "x": good["g"]}
	if err := ValidateAssignment(ev, wrongKey); err == nil {
		t.Error("wrong key should fail")
	}
	bad := good.Clone()
	bad["g"] = resources.Config{}
	if err := ValidateAssignment(ev, bad); err == nil {
		t.Error("invalid config should fail")
	}
	out := good.Clone()
	out["g"] = resources.Config{CPU: 99, MemMB: 128}
	if err := ValidateAssignment(ev, out); err == nil {
		t.Error("out-of-limits config should fail")
	}
}
