// Package perfmodel provides analytic performance profiles for simulated
// serverless functions. A Profile maps a decoupled resource configuration
// (vCPU, MB) and an input scale to a runtime, reproducing the physics the
// paper observes on its Docker testbed:
//
//   - Compute scales by Amdahl's law: t_compute(c) = S/min(c,1) + P/min(c, maxPar)
//     with S the serial and P the parallelizable vCPU-milliseconds. Together
//     with the linear price µ0·c + µ1·m this yields an interior cost-optimal
//     core count c* = sqrt(µ1·m·P / (µ0·S)), matching the per-workflow optima
//     of Fig. 2 (≈1 vCPU Chatbot, ≈4 vCPU ML Pipeline, ≈8 vCPU Video).
//   - Runtime is flat in memory above the working-set footprint (Fig. 2a/2b:
//     "runtime remains unchanged despite memory variations"), degrades
//     smoothly between the OOM floor and the footprint, and the function is
//     OOM-killed below the floor.
//   - Fixed I/O time is unaffected by resources.
//   - Measurements carry small multiplicative Gaussian noise, giving the
//     ± deviations of Table II.
package perfmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"aarc/internal/resources"
)

// OOMError reports that a function was killed for exceeding its memory quota.
type OOMError struct {
	Function string
	MemMB    float64 // configured memory
	NeedMB   float64 // minimum viable memory at this input scale
}

// Error implements the error interface.
func (e *OOMError) Error() string {
	return fmt.Sprintf("perfmodel: %s OOM-killed: %.0f MB configured, needs at least %.0f MB",
		e.Function, e.MemMB, e.NeedMB)
}

// IsOOM reports whether err is (or wraps) an OOMError.
func IsOOM(err error) bool {
	var oe *OOMError
	return errors.As(err, &oe)
}

// Profile is the analytic performance model of one serverless function.
type Profile struct {
	Name string

	// CPUWorkMS is the total compute demand in vCPU-milliseconds at input
	// scale 1 (serial + parallel parts together).
	CPUWorkMS float64
	// ParallelFrac is the Amdahl parallelizable fraction p in [0, 1].
	ParallelFrac float64
	// MaxParallel caps the useful core count; extra cores are wasted.
	// Zero means "no cap".
	MaxParallel float64
	// IOMS is fixed I/O / network time (ms) insensitive to resources.
	IOMS float64

	// FootprintMB is the working set: above it memory has no runtime
	// effect, below it the pressure penalty applies.
	FootprintMB float64
	// MinMemMB is the OOM floor: configurations strictly below it fail.
	MinMemMB float64
	// PressureK scales the slowdown between MinMemMB and FootprintMB:
	// penalty = 1 + PressureK · (footprint-mem)/footprint.
	PressureK float64

	// NoiseStd is the multiplicative measurement-noise sigma (e.g. 0.02).
	NoiseStd float64

	// InputSensitive marks functions whose work, I/O and memory need grow
	// with the input scale (§IV-D input-aware configuration).
	InputSensitive bool
}

// Validate checks the profile for internal consistency.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return errors.New("perfmodel: profile needs a name")
	case p.CPUWorkMS < 0 || p.IOMS < 0:
		return fmt.Errorf("perfmodel: %s: negative work or io", p.Name)
	case p.ParallelFrac < 0 || p.ParallelFrac > 1:
		return fmt.Errorf("perfmodel: %s: parallel fraction %v outside [0,1]", p.Name, p.ParallelFrac)
	case p.MaxParallel < 0:
		return fmt.Errorf("perfmodel: %s: negative MaxParallel", p.Name)
	case p.FootprintMB < 0 || p.MinMemMB < 0:
		return fmt.Errorf("perfmodel: %s: negative memory thresholds", p.Name)
	case p.MinMemMB > p.FootprintMB && p.FootprintMB > 0:
		return fmt.Errorf("perfmodel: %s: OOM floor %v above footprint %v", p.Name, p.MinMemMB, p.FootprintMB)
	case p.PressureK < 0:
		return fmt.Errorf("perfmodel: %s: negative PressureK", p.Name)
	case p.NoiseStd < 0 || p.NoiseStd > 0.5:
		return fmt.Errorf("perfmodel: %s: noise sigma %v outside [0,0.5]", p.Name, p.NoiseStd)
	}
	return nil
}

// scaled returns the effective work, io, footprint and OOM floor at the
// given input scale.
func (p Profile) scaled(scale float64) (work, io, footprint, minMem float64) {
	work, io, footprint, minMem = p.CPUWorkMS, p.IOMS, p.FootprintMB, p.MinMemMB
	if p.InputSensitive && scale > 0 {
		work *= scale
		io *= scale
		footprint *= scale
		minMem *= scale
	}
	return work, io, footprint, minMem
}

// MinViableMemMB returns the OOM floor at the given input scale.
func (p Profile) MinViableMemMB(scale float64) float64 {
	_, _, _, minMem := p.scaled(scale)
	return minMem
}

// MeanRuntime returns the noise-free runtime (ms) of the function at cfg and
// input scale. It returns an *OOMError when memory is below the floor.
func (p Profile) MeanRuntime(cfg resources.Config, scale float64) (float64, error) {
	if cfg.CPU <= 0 {
		return 0, fmt.Errorf("perfmodel: %s: non-positive CPU %v", p.Name, cfg.CPU)
	}
	work, io, footprint, minMem := p.scaled(scale)
	if cfg.MemMB < minMem {
		return 0, &OOMError{Function: p.Name, MemMB: cfg.MemMB, NeedMB: minMem}
	}

	serialWork := (1 - p.ParallelFrac) * work
	parallelWork := p.ParallelFrac * work

	// Sub-core allocations slow everything down; parallel work additionally
	// saturates at MaxParallel cores.
	serialSpeed := math.Min(cfg.CPU, 1)
	parallelSpeed := cfg.CPU
	if p.MaxParallel > 0 {
		parallelSpeed = math.Min(parallelSpeed, p.MaxParallel)
	}
	compute := serialWork/serialSpeed + parallelWork/parallelSpeed

	if footprint > 0 && cfg.MemMB < footprint {
		compute *= 1 + p.PressureK*(footprint-cfg.MemMB)/footprint
	}
	return compute + io, nil
}

// Runtime returns a noisy runtime observation. With a nil rng or zero
// NoiseStd it equals MeanRuntime. The multiplicative noise factor is clamped
// to [0.5, 1.5] so a single outlier draw cannot dominate an experiment.
func (p Profile) Runtime(cfg resources.Config, scale float64, rng *rand.Rand) (float64, error) {
	t, err := p.MeanRuntime(cfg, scale)
	if err != nil {
		return 0, err
	}
	if rng == nil || p.NoiseStd == 0 {
		return t, nil
	}
	f := 1 + p.NoiseStd*rng.NormFloat64()
	if f < 0.5 {
		f = 0.5
	} else if f > 1.5 {
		f = 1.5
	}
	return t * f, nil
}

// OOMPartialFrac is the fraction of a function's steady-state runtime an
// OOM-killed invocation consumes before the kernel kills it: the working set
// typically peaks mid-execution, so under-provisioned containers burn real
// time (and money) before failing.
const OOMPartialFrac = 0.4

// OOMPartialMS estimates how long an invocation at cfg runs before being
// OOM-killed: OOMPartialFrac of the runtime the function would have had
// with adequate memory (its footprint) at the same CPU allocation.
func (p Profile) OOMPartialMS(cfg resources.Config, scale float64) float64 {
	_, _, footprint, _ := p.scaled(scale)
	adequate := cfg
	adequate.MemMB = footprint
	if adequate.MemMB <= 0 {
		adequate.MemMB = 1
	}
	t, err := p.MeanRuntime(adequate, scale)
	if err != nil {
		return 0
	}
	return OOMPartialFrac * t
}

// OptimalCPU returns the cost-optimal core count c* = sqrt(µ1·m·P/(µ0·S))
// implied by the Amdahl model at memory m under prices (µ0, µ1), before
// clamping to limits. It returns +Inf for fully parallel profiles (S = 0)
// and 0 for fully serial ones (P = 0).
func (p Profile) OptimalCPU(memMB, mu0, mu1 float64) float64 {
	s := (1 - p.ParallelFrac) * p.CPUWorkMS
	par := p.ParallelFrac * p.CPUWorkMS
	if s == 0 {
		return math.Inf(1)
	}
	if par == 0 {
		return 0
	}
	return math.Sqrt(mu1 * memMB * par / (mu0 * s))
}
