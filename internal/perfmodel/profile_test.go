package perfmodel

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"aarc/internal/resources"
)

func validProfile() Profile {
	return Profile{
		Name: "f", CPUWorkMS: 10000, ParallelFrac: 0.5, MaxParallel: 8, IOMS: 1000,
		FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: 0.02,
	}
}

func TestValidate(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"negative work", func(p *Profile) { p.CPUWorkMS = -1 }},
		{"negative io", func(p *Profile) { p.IOMS = -1 }},
		{"parallel > 1", func(p *Profile) { p.ParallelFrac = 1.5 }},
		{"parallel < 0", func(p *Profile) { p.ParallelFrac = -0.5 }},
		{"negative maxpar", func(p *Profile) { p.MaxParallel = -2 }},
		{"negative footprint", func(p *Profile) { p.FootprintMB = -1 }},
		{"floor above footprint", func(p *Profile) { p.MinMemMB = 1024 }},
		{"negative pressure", func(p *Profile) { p.PressureK = -1 }},
		{"huge noise", func(p *Profile) { p.NoiseStd = 0.9 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := validProfile()
			c.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("expected validation error for %s", c.name)
			}
		})
	}
}

func TestMeanRuntimeBasics(t *testing.T) {
	p := validProfile()
	// At 1 vCPU and ample memory: serial + parallel at full speed + IO.
	got, err := p.MeanRuntime(resources.Config{CPU: 1, MemMB: 1024}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 5000.0 + 5000.0 + 1000.0
	if !almost(got, want, 1e-9) {
		t.Errorf("runtime(1 vCPU) = %v, want %v", got, want)
	}
	// At 4 vCPU the parallel half speeds up 4x; serial part unchanged.
	got4, _ := p.MeanRuntime(resources.Config{CPU: 4, MemMB: 1024}, 1)
	want4 := 5000.0 + 1250.0 + 1000.0
	if !almost(got4, want4, 1e-9) {
		t.Errorf("runtime(4 vCPU) = %v, want %v", got4, want4)
	}
	// Beyond MaxParallel there is no further speedup.
	got8, _ := p.MeanRuntime(resources.Config{CPU: 8, MemMB: 1024}, 1)
	got10, _ := p.MeanRuntime(resources.Config{CPU: 10, MemMB: 1024}, 1)
	if !almost(got8, got10, 1e-9) {
		t.Errorf("runtime should saturate at MaxParallel: %v vs %v", got8, got10)
	}
}

func TestSubCoreSlowdown(t *testing.T) {
	p := validProfile()
	half, _ := p.MeanRuntime(resources.Config{CPU: 0.5, MemMB: 1024}, 1)
	// Everything runs at half speed: (5000+5000)/0.5 + 1000.
	if !almost(half, 21000, 1e-9) {
		t.Errorf("runtime(0.5 vCPU) = %v, want 21000", half)
	}
}

func TestMemoryFlatAboveFootprint(t *testing.T) {
	p := validProfile()
	t1, _ := p.MeanRuntime(resources.Config{CPU: 2, MemMB: 512}, 1)
	t2, _ := p.MeanRuntime(resources.Config{CPU: 2, MemMB: 4096}, 1)
	t3, _ := p.MeanRuntime(resources.Config{CPU: 2, MemMB: 10240}, 1)
	if t1 != t2 || t2 != t3 {
		t.Errorf("runtime should be flat above footprint: %v %v %v (Fig 2a/2b property)", t1, t2, t3)
	}
}

func TestMemoryPressure(t *testing.T) {
	p := validProfile()
	atFoot, _ := p.MeanRuntime(resources.Config{CPU: 2, MemMB: 512}, 1)
	under, _ := p.MeanRuntime(resources.Config{CPU: 2, MemMB: 384}, 1)
	if under <= atFoot {
		t.Errorf("under-footprint should slow down: %v vs %v", under, atFoot)
	}
	// Pressure applies to compute only, not IO: at 2 vCPU the compute part
	// is serial 5000 + parallel 2500, and the penalty at mem=384 is
	// 1 + 1*(512-384)/512 = 1.25.
	wantCompute := (5000.0 + 2500.0) * 1.25
	if !almost(under, wantCompute+1000, 1e-9) {
		t.Errorf("pressure runtime = %v, want %v", under, wantCompute+1000)
	}
}

func TestOOM(t *testing.T) {
	p := validProfile()
	_, err := p.MeanRuntime(resources.Config{CPU: 2, MemMB: 255}, 1)
	if !IsOOM(err) {
		t.Fatalf("expected OOM, got %v", err)
	}
	var oe *OOMError
	if !asOOM(err, &oe) {
		t.Fatal("error should be *OOMError")
	}
	if oe.NeedMB != 256 || oe.MemMB != 255 || oe.Function != "f" {
		t.Errorf("OOMError fields: %+v", oe)
	}
	if oe.Error() == "" {
		t.Error("empty error text")
	}
	if IsOOM(nil) {
		t.Error("IsOOM(nil) should be false")
	}
}

func TestInvalidCPU(t *testing.T) {
	p := validProfile()
	if _, err := p.MeanRuntime(resources.Config{CPU: 0, MemMB: 512}, 1); err == nil || IsOOM(err) {
		t.Errorf("zero CPU should be a non-OOM error, got %v", err)
	}
}

func TestInputScaling(t *testing.T) {
	p := validProfile()
	p.InputSensitive = true
	base, _ := p.MeanRuntime(resources.Config{CPU: 1, MemMB: 2048}, 1)
	double, _ := p.MeanRuntime(resources.Config{CPU: 1, MemMB: 2048}, 2)
	if !almost(double, 2*base, 1e-9) {
		t.Errorf("scale 2 should double runtime: %v vs %v", double, base)
	}
	// The OOM floor scales too.
	if _, err := p.MeanRuntime(resources.Config{CPU: 1, MemMB: 300}, 2); !IsOOM(err) {
		t.Error("scaled floor (512) should OOM at 300MB")
	}
	if got := p.MinViableMemMB(2); got != 512 {
		t.Errorf("MinViableMemMB(2) = %v, want 512", got)
	}
	// Insensitive profiles ignore scale.
	q := validProfile()
	b1, _ := q.MeanRuntime(resources.Config{CPU: 1, MemMB: 2048}, 1)
	b2, _ := q.MeanRuntime(resources.Config{CPU: 1, MemMB: 2048}, 5)
	if b1 != b2 {
		t.Error("insensitive profile should ignore input scale")
	}
}

func TestRuntimeNoise(t *testing.T) {
	p := validProfile()
	cfg := resources.Config{CPU: 2, MemMB: 1024}
	mean, _ := p.MeanRuntime(cfg, 1)

	// nil rng: identical to mean.
	got, err := p.Runtime(cfg, 1, nil)
	if err != nil || got != mean {
		t.Errorf("nil rng runtime = %v (%v), want %v", got, err, mean)
	}

	rng := rand.New(rand.NewPCG(1, 2))
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		v, err := p.Runtime(cfg, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if v < mean*0.5 || v > mean*1.5 {
			t.Fatalf("noise clamp violated: %v vs mean %v", v, mean)
		}
		sum += v
	}
	avg := sum / float64(n)
	if math.Abs(avg-mean)/mean > 0.01 {
		t.Errorf("noisy average %v deviates from mean %v", avg, mean)
	}
}

func TestOOMPartial(t *testing.T) {
	p := validProfile()
	cfg := resources.Config{CPU: 2, MemMB: 100} // below floor
	partial := p.OOMPartialMS(cfg, 1)
	full, _ := p.MeanRuntime(resources.Config{CPU: 2, MemMB: p.FootprintMB}, 1)
	if !almost(partial, OOMPartialFrac*full, 1e-9) {
		t.Errorf("OOMPartialMS = %v, want %v", partial, OOMPartialFrac*full)
	}
}

func TestOptimalCPU(t *testing.T) {
	// p = 0.5, work arbitrary: c* = sqrt(µ1·m·P/(µ0·S)) = sqrt(m·µ1/µ0) at P=S.
	p := validProfile()
	got := p.OptimalCPU(512, 0.512, 0.001)
	if !almost(got, 1, 1e-9) {
		t.Errorf("OptimalCPU = %v, want 1 (the chatbot design point)", got)
	}
	serial := p
	serial.ParallelFrac = 0
	if serial.OptimalCPU(512, 0.512, 0.001) != 0 {
		t.Error("fully serial profile should have c*=0")
	}
	par := p
	par.ParallelFrac = 1
	if !math.IsInf(par.OptimalCPU(512, 0.512, 0.001), 1) {
		t.Error("fully parallel profile should have c*=+Inf")
	}
}

// Property: runtime is non-increasing in CPU (more cores never hurt).
func TestQuickRuntimeMonotoneCPU(t *testing.T) {
	p := validProfile()
	f := func(c1, c2 uint16, mem uint16) bool {
		a := 0.1 + float64(c1%100)/10
		b := a + float64(c2%100)/10
		m := 256 + float64(mem%8000)
		ta, err1 := p.MeanRuntime(resources.Config{CPU: a, MemMB: m}, 1)
		tb, err2 := p.MeanRuntime(resources.Config{CPU: b, MemMB: m}, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return tb <= ta+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: runtime is non-increasing in memory (more memory never hurts).
func TestQuickRuntimeMonotoneMem(t *testing.T) {
	p := validProfile()
	f := func(m1, m2 uint16, c uint16) bool {
		a := 256 + float64(m1%8000)
		b := a + float64(m2%8000)
		cpu := 0.1 + float64(c%100)/10
		ta, err1 := p.MeanRuntime(resources.Config{CPU: cpu, MemMB: a}, 1)
		tb, err2 := p.MeanRuntime(resources.Config{CPU: cpu, MemMB: b}, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return tb <= ta+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: runtime is always at least the IO floor.
func TestQuickRuntimeAboveIO(t *testing.T) {
	p := validProfile()
	f := func(c, m uint16) bool {
		cpu := 0.1 + float64(c%100)/10
		mem := 256 + float64(m%8000)
		tr, err := p.MeanRuntime(resources.Config{CPU: cpu, MemMB: mem}, 1)
		if err != nil {
			return false
		}
		return tr >= p.IOMS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func asOOM(err error, target **OOMError) bool {
	if err == nil {
		return false
	}
	oe, ok := err.(*OOMError)
	if ok {
		*target = oe
	}
	return ok
}
