package workflow

import (
	"sync"
	"testing"

	"aarc/internal/simfaas"
)

// TestConcurrentRunnersSharedPlatform exercises the documented concurrency
// contract under the race detector: one Runner per goroutine (each with its
// own scratch arena and RNG), all invoking one shared simfaas.Platform.
func TestConcurrentRunnersSharedPlatform(t *testing.T) {
	spec := fanSpec()
	platform := simfaas.New(simfaas.DefaultOptions())

	const goroutines = 8
	const evals = 50
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([]float64, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			r, err := NewRunner(spec, RunnerOptions{
				HostCores: 96, Noise: true, Seed: uint64(g), Platform: platform,
			})
			if err != nil {
				errs[g] = err
				return
			}
			for i := 0; i < evals; i++ {
				res, err := r.Evaluate(spec.Base)
				if err != nil {
					errs[g] = err
					return
				}
				results[g] = res.E2EMS
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g, e2e := range results {
		if e2e <= 0 {
			t.Errorf("goroutine %d: degenerate E2E %v", g, e2e)
		}
	}
	m := platform.Metrics()
	if m.Invocations != goroutines*evals*spec.G.NumNodes() {
		t.Errorf("platform invocations = %d, want %d", m.Invocations, goroutines*evals*spec.G.NumNodes())
	}
}

// TestMeanEvaluateDoesNotMutateRunner pins the satellite fix: MeanEvaluate
// threads the noise override through the call instead of toggling runner
// state, so the RNG stream position is all that evolves between noisy
// evaluations.
func TestMeanEvaluateDoesNotMutateRunner(t *testing.T) {
	s := chainSpec()
	for id, p := range s.Profiles {
		p.NoiseStd = 0.05
		s.Profiles[id] = p
	}
	mk := func() *Runner {
		r, err := NewRunner(s, RunnerOptions{HostCores: 96, Noise: true, Seed: 21,
			Platform: simfaas.New(simfaas.Options{KeepAlive: true})})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Interleaving MeanEvaluate calls must not shift the noisy RNG stream.
	r1 := mk()
	n1a, _ := r1.Evaluate(s.Base)
	n1b, _ := r1.Evaluate(s.Base)

	r2 := mk()
	m1, _ := r2.MeanEvaluate(s.Base)
	n2a, _ := r2.Evaluate(s.Base)
	m2, _ := r2.MeanEvaluate(s.Base)
	n2b, _ := r2.Evaluate(s.Base)

	if m1.E2EMS != m2.E2EMS {
		t.Error("MeanEvaluate should be deterministic")
	}
	if n1a.E2EMS != n2a.E2EMS || n1b.E2EMS != n2b.E2EMS {
		t.Error("MeanEvaluate must not perturb the noisy evaluation stream")
	}
}

func BenchmarkRunnerEvaluate(b *testing.B) {
	s := fanSpec()
	r, err := NewRunner(s, RunnerOptions{HostCores: 96, Noise: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Evaluate(s.Base); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Evaluate(s.Base); err != nil {
			b.Fatal(err)
		}
	}
}
