package workflow

import (
	"fmt"

	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

// Edge names a directed workflow edge by its endpoint node IDs.
type Edge struct {
	From, To string
}

// NodeAdd describes one node inserted by a Delta.
type NodeAdd struct {
	ID string
	// Group is the configuration group; empty means the node is its own
	// group (the Spec default).
	Group   string
	Profile perfmodel.Profile
}

// Delta is a batch edit against a workflow Spec: the churn primitives in
// internal/workloads emit Deltas, Spec.Apply replays one onto a spec, and
// Runner.Patch additionally splices it into the compiled execution plan
// without recompiling. Application order is fixed: edge removals, node
// removals, node additions, edge additions, profile updates, base merges —
// so a Delta that removes a node need not list its incident edges (they are
// expanded internally), and an added edge may reference an added node.
type Delta struct {
	RemoveEdges []Edge
	RemoveNodes []string
	AddNodes    []NodeAdd
	AddEdges    []Edge
	// Profiles replaces the performance profile of existing nodes.
	Profiles map[string]perfmodel.Profile
	// Base supplies base configurations, primarily for groups introduced by
	// AddNodes. Entries are merged into the spec's base assignment.
	Base resources.Assignment
}

// Empty reports whether the delta performs no edits.
func (d Delta) Empty() bool {
	return len(d.RemoveEdges) == 0 && len(d.RemoveNodes) == 0 &&
		len(d.AddNodes) == 0 && len(d.AddEdges) == 0 &&
		len(d.Profiles) == 0 && len(d.Base) == 0
}

// normalized expands the delta so every edge incident to a removed node
// appears explicitly in RemoveEdges (deduplicated). The plan patcher needs
// the expansion — it must retire edge rows before it can tombstone a node
// slot — and it must run against the pre-mutation graph, while the rest of
// the patch runs against the post-mutation graph.
func (d Delta) normalized(s *Spec) (Delta, error) {
	if len(d.RemoveNodes) == 0 {
		return d, nil
	}
	seen := make(map[Edge]bool, len(d.RemoveEdges))
	for _, e := range d.RemoveEdges {
		seen[e] = true
	}
	nd := d
	nd.RemoveEdges = append([]Edge(nil), d.RemoveEdges...)
	add := func(e Edge) {
		if !seen[e] {
			seen[e] = true
			nd.RemoveEdges = append(nd.RemoveEdges, e)
		}
	}
	for _, id := range d.RemoveNodes {
		if !s.G.HasNode(id) {
			return d, fmt.Errorf("workflow %s: removing unknown node %q", s.Name, id)
		}
		for _, to := range s.G.Succ(id) {
			add(Edge{From: id, To: to})
		}
		for _, from := range s.G.Pred(id) {
			add(Edge{From: from, To: id})
		}
	}
	return nd, nil
}

// Apply replays a delta onto the spec in place, keeping the profile, group
// and base-assignment tables consistent with the mutated DAG: removed nodes
// drop their profile and group entries, base configs whose group lost its
// last member are pruned, and every surviving group must end up with a base
// config (from the existing assignment or d.Base) or Apply errors.
//
// Apply mutates as it goes; on error the spec may be partially edited.
// Callers that need transactionality should Apply against a Clone.
func (s *Spec) Apply(d Delta) error {
	for _, e := range d.RemoveEdges {
		if err := s.G.RemoveEdge(e.From, e.To); err != nil {
			return fmt.Errorf("workflow %s: %w", s.Name, err)
		}
	}
	var retired []string // groups that lost a member and may be orphaned
	for _, id := range d.RemoveNodes {
		g := s.GroupOf(id)
		if err := s.G.RemoveNode(id); err != nil {
			return fmt.Errorf("workflow %s: %w", s.Name, err)
		}
		delete(s.Profiles, id)
		delete(s.Groups, id)
		retired = append(retired, g)
	}
	for _, n := range d.AddNodes {
		if err := n.Profile.Validate(); err != nil {
			return fmt.Errorf("workflow %s: adding node %q: %w", s.Name, n.ID, err)
		}
		if err := s.G.AddNode(n.ID); err != nil {
			return fmt.Errorf("workflow %s: %w", s.Name, err)
		}
		if s.Profiles == nil {
			s.Profiles = make(map[string]perfmodel.Profile)
		}
		s.Profiles[n.ID] = n.Profile
		if n.Group != "" && n.Group != n.ID {
			if s.Groups == nil {
				s.Groups = make(map[string]string)
			}
			s.Groups[n.ID] = n.Group
		}
	}
	for _, e := range d.AddEdges {
		if err := s.G.AddEdge(e.From, e.To); err != nil {
			return fmt.Errorf("workflow %s: %w", s.Name, err)
		}
	}
	for id, p := range d.Profiles {
		if !s.G.HasNode(id) {
			return fmt.Errorf("workflow %s: profile update for unknown node %q", s.Name, id)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workflow %s: profile update for %q: %w", s.Name, id, err)
		}
		s.Profiles[id] = p
	}
	if len(d.Base) > 0 {
		if s.Base == nil {
			s.Base = make(resources.Assignment, len(d.Base))
		}
		for g, cfg := range d.Base {
			s.Base[g] = cfg
		}
	}
	// Keep the base assignment in lockstep with the live group set without
	// an O(nodes) rescan per delta: only groups that lost a member can
	// become orphaned (prune their base entry so canonical bytes don't
	// drift), and only groups introduced by added nodes can lack coverage —
	// every pre-existing group already had a base config by invariant.
	for _, g := range retired {
		if !s.groupHasMembers(g) {
			delete(s.Base, g)
		}
	}
	for _, n := range d.AddNodes {
		g := s.GroupOf(n.ID)
		if _, ok := s.Base[g]; !ok {
			return fmt.Errorf("workflow %s: group %q has no base config after delta", s.Name, g)
		}
	}
	return nil
}

// groupHasMembers reports whether any live node belongs to group g: the node
// named g itself (unless remapped) or any explicit group-table entry.
func (s *Spec) groupHasMembers(g string) bool {
	if s.G.HasNode(g) && s.GroupOf(g) == g {
		return true
	}
	for _, gg := range s.Groups {
		if gg == g {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the spec: the DAG, profile, group and base
// tables are all copied, so mutating one side (Apply, churn) leaves the
// other untouched.
func (s *Spec) Clone() *Spec {
	out := &Spec{
		Name:   s.Name,
		G:      s.G.Clone(),
		SLOMS:  s.SLOMS,
		Base:   s.Base.Clone(),
		Limits: s.Limits,
	}
	if s.Profiles != nil {
		out.Profiles = make(map[string]perfmodel.Profile, len(s.Profiles))
		for k, v := range s.Profiles {
			out.Profiles[k] = v
		}
	}
	if s.Groups != nil {
		out.Groups = make(map[string]string, len(s.Groups))
		for k, v := range s.Groups {
			out.Groups[k] = v
		}
	}
	return out
}
