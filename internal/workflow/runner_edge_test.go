package workflow

import (
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/pricing"
	"aarc/internal/resources"
	"aarc/internal/simfaas"
)

func pricingPaper() pricing.Model { return pricing.Paper() }

// multiSourceSpec builds {a, b} -> c: two sources joining at one sink.
func multiSourceSpec() *Spec {
	g := dag.New()
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "c")
	g.MustAddEdge("b", "c")
	s := &Spec{
		Name: "join",
		G:    g,
		Profiles: map[string]perfmodel.Profile{
			"a": simpleProfile("a", 1000),
			"b": simpleProfile("b", 5000),
			"c": simpleProfile("c", 1000),
		},
		SLOMS:  60_000,
		Limits: resources.DefaultLimits(),
	}
	s.Base = resources.Uniform(s.FunctionGroups(), resources.Config{CPU: 1, MemMB: 512})
	return s
}

func TestMultiSourceJoin(t *testing.T) {
	s := multiSourceSpec()
	r := noColdRunner(t, s, 96)
	res, err := r.Evaluate(s.Base)
	if err != nil {
		t.Fatal(err)
	}
	// Both sources start at t=0; c waits for the slower one.
	if !within(res.E2EMS, 6000, 1e-6) {
		t.Errorf("E2E = %v, want 6000 (max(1000,5000)+1000)", res.E2EMS)
	}
	if !within(res.Nodes["c"].StartMS, 5000, 1e-6) {
		t.Errorf("join start = %v", res.Nodes["c"].StartMS)
	}
}

func TestSingleNodeOverCapacity(t *testing.T) {
	// One node demanding 8 vCPU on a 4-core host: processor sharing rate
	// 4/8 = 0.5 stretches it 2x.
	g := dag.New()
	g.MustAddNode("x")
	s := &Spec{
		Name:     "solo",
		G:        g,
		Profiles: map[string]perfmodel.Profile{"x": simpleProfile("x", 4000)},
		SLOMS:    60_000,
		Limits:   resources.DefaultLimits(),
	}
	s.Base = resources.Uniform(s.FunctionGroups(), resources.Config{CPU: 8, MemMB: 512})
	r := noColdRunner(t, s, 4)
	res, err := r.Evaluate(s.Base)
	if err != nil {
		t.Fatal(err)
	}
	if !within(res.E2EMS, 8000, 1) {
		t.Errorf("over-capacity solo = %v, want ~8000", res.E2EMS)
	}
}

func TestZeroHostCoresDisablesContention(t *testing.T) {
	s := fanSpec()
	for g := range s.Base {
		s.Base[g] = resources.Config{CPU: 10, MemMB: 512}
	}
	r := noColdRunner(t, s, 0) // contention off
	res, err := r.Evaluate(s.Base)
	if err != nil {
		t.Fatal(err)
	}
	if !within(res.E2EMS, 6000, 1e-6) {
		t.Errorf("uncontended = %v, want 6000", res.E2EMS)
	}
}

func TestOOMParallelSiblingFinishes(t *testing.T) {
	s := fanSpec()
	// Give p1 its own group so only it can OOM.
	s.Groups = map[string]string{"p1": "p1g", "p2": "p2g"}
	s.Base = resources.Uniform(s.FunctionGroups(), resources.Config{CPU: 1, MemMB: 512})
	a := s.Base.Clone()
	a["p1g"] = resources.Config{CPU: 1, MemMB: 100} // below the 128 floor
	r := noColdRunner(t, s, 96)
	res, err := r.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM || res.Fail != "p1" {
		t.Fatalf("expected p1 OOM: %+v", res)
	}
	// The sibling p2 was already in flight and completes; downstream t is
	// skipped because the workflow aborted.
	if res.Nodes["p2"].Skipped || res.Nodes["p2"].RuntimeMS == 0 {
		t.Error("in-flight sibling should finish")
	}
	if !res.Nodes["t"].Skipped {
		t.Error("downstream of the failure must be skipped")
	}
	// E2E covers the sibling's full duration.
	if res.E2EMS < res.Nodes["p2"].FinishMS {
		t.Errorf("E2E %v < p2 finish %v", res.E2EMS, res.Nodes["p2"].FinishMS)
	}
}

func TestRunnerAccessors(t *testing.T) {
	s := chainSpec()
	p := simfaas.New(simfaas.DefaultOptions())
	r, err := NewRunner(s, RunnerOptions{HostCores: 96, Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	if r.Platform() != p {
		t.Error("Platform accessor wrong")
	}
	if r.Price() != (pricingPaper()) {
		t.Error("default price should be the paper model")
	}
	if r.Spec() != s {
		t.Error("Spec accessor wrong")
	}
}

func TestRunnerRejectsInvalidSpec(t *testing.T) {
	s := chainSpec()
	s.SLOMS = 0
	if _, err := NewRunner(s, RunnerOptions{}); err == nil {
		t.Error("invalid spec should be rejected at construction")
	}
}

func TestInputScaleDefaultsToOne(t *testing.T) {
	s := chainSpec()
	for id, p := range s.Profiles {
		p.InputSensitive = true
		s.Profiles[id] = p
	}
	r1 := noColdRunner(t, s, 96)
	res1, _ := r1.Evaluate(s.Base)
	r2, err := NewRunner(s, RunnerOptions{HostCores: 96, InputScale: 1, Platform: simfaas.New(simfaas.Options{KeepAlive: true})})
	if err != nil {
		t.Fatal(err)
	}
	res2, _ := r2.Evaluate(s.Base)
	if !within(res1.E2EMS, res2.E2EMS, 1e-6) {
		t.Errorf("zero InputScale should default to 1: %v vs %v", res1.E2EMS, res2.E2EMS)
	}
}
