package workflow

import (
	"fmt"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
)

// This file implements incremental plan maintenance: Runner.Patch applies a
// Delta to the spec AND splices it into the already-compiled dense plan, so
// a single edit against a 10k-node workflow costs microseconds instead of a
// full TopoSort + recompile. Row positions are kept topologically valid by a
// Pearce–Kelly order (dag.Order); the edit sequence ends with an O(V+E)
// integer sweep that downgrades any inconsistency — including a cycle the
// local repair could not prove against the pre-mutated graph — into a full
// recompile instead of a wrong simulation.

// ensureOrder lazily attaches the position-maintenance structure. It must
// run before the spec's graph is mutated: a fresh plan's ids slice is
// exactly a topological order of the current graph, which seeds the Order
// for free (no TopoSort).
func (p *plan) ensureOrder(spec *Spec) {
	if p.ord == nil {
		p.ord = dag.NewOrderSeeded(spec.G, p.ids)
	}
}

// rowRemoveEdge retires one dense edge entry.
func (p *plan) rowRemoveEdge(u, v string) error {
	pu, ok := p.ord.Pos(u)
	if !ok {
		return fmt.Errorf("workflow: plan has no node %q", u)
	}
	pv, ok := p.ord.Pos(v)
	if !ok {
		return fmt.Errorf("workflow: plan has no node %q", v)
	}
	ss := p.succs[pu]
	for i, e := range ss {
		if e == int32(pv) {
			p.succs[pu] = append(ss[:i], ss[i+1:]...)
			p.indeg0[pv]--
			p.ord.EdgeRemoved(u, v)
			return nil
		}
	}
	return fmt.Errorf("workflow: plan has no edge %q -> %q", u, v)
}

// rowRemoveNode tombstones a node's row. All incident edges must already be
// retired (Delta normalization guarantees this).
func (p *plan) rowRemoveNode(id string) error {
	pos, ok := p.ord.Pos(id)
	if !ok {
		return fmt.Errorf("workflow: plan has no node %q", id)
	}
	if len(p.succs[pos]) != 0 || p.indeg0[pos] != 0 {
		return fmt.Errorf("workflow: removing node %q with live edges", id)
	}
	p.groupLive[p.groupIdx[pos]]--
	p.ids[pos] = ""
	p.groups[pos] = ""
	p.groupIdx[pos] = -1
	p.profiles[pos] = perfmodel.Profile{}
	p.succs[pos] = nil
	p.indeg0[pos] = -1
	p.ord.NodeRemoved(id)
	return nil
}

// rowAddNode fills a row for a newly added node, reusing a tombstoned slot
// when one is free and growing the arrays otherwise. New groups are
// appended to the dense group tables; a group whose last member was removed
// earlier is revived in place.
func (p *plan) rowAddNode(spec *Spec, id string) {
	pos := p.ord.NodeAdded(id)
	if pos == len(p.ids) {
		p.ids = append(p.ids, "")
		p.groups = append(p.groups, "")
		p.groupIdx = append(p.groupIdx, -1)
		p.profiles = append(p.profiles, perfmodel.Profile{})
		p.succs = append(p.succs, nil)
		p.indeg0 = append(p.indeg0, -1)
	}
	g := spec.GroupOf(id)
	gi, ok := p.gidx[g]
	if !ok {
		gi = int32(len(p.groupNames))
		p.gidx[g] = gi
		p.groupNames = append(p.groupNames, g)
		p.groupNode = append(p.groupNode, id)
		p.groupLive = append(p.groupLive, 0)
	}
	if p.groupLive[gi] == 0 {
		p.groupNode[gi] = id
	}
	p.groupLive[gi]++
	p.ids[pos] = id
	p.groups[pos] = g
	p.groupIdx[pos] = gi
	p.profiles[pos] = spec.Profiles[id]
	p.succs[pos] = nil
	p.indeg0[pos] = 0
}

// rowAddEdge inserts a dense edge entry, repairing row positions first when
// the new edge contradicts the current order. g must already contain the
// edge set the delta produces (Spec.Apply runs before the plan patch), which
// is exactly what the Pearce–Kelly DFS wants to see.
func (p *plan) rowAddEdge(g *dag.Graph, u, v string) error {
	moves, err := p.ord.EdgeAdded(u, v)
	if err != nil {
		return err
	}
	if len(moves) > 0 {
		p.applyMoves(g, moves)
	}
	pu, ok := p.ord.Pos(u)
	if !ok {
		return fmt.Errorf("workflow: plan has no node %q", u)
	}
	pv, ok := p.ord.Pos(v)
	if !ok {
		return fmt.Errorf("workflow: plan has no node %q", v)
	}
	p.succs[pu] = append(p.succs[pu], int32(pv))
	p.indeg0[pv]++
	return nil
}

// applyMoves relocates plan rows after a Pearce–Kelly repair. The repair
// permutes positions only within the pooled slots, and every vacated slot is
// reused, so a snapshot-then-write pass is complete. Dense successor entries
// that referenced a moved slot live only in the rows of the moved nodes and
// their predecessors; each such row is rewritten exactly once through the
// old→new position map (rewriting twice could chain two moves).
func (p *plan) applyMoves(g *dag.Graph, moves []dag.Move) {
	type row struct {
		id    string
		group string
		gi    int32
		prof  perfmodel.Profile
		succ  []int32
		indeg int32
	}
	moveMap := make(map[int32]int32, len(moves))
	snaps := make([]row, len(moves))
	for i, m := range moves {
		moveMap[int32(m.From)] = int32(m.To)
		snaps[i] = row{
			id: p.ids[m.From], group: p.groups[m.From], gi: p.groupIdx[m.From],
			prof: p.profiles[m.From], succ: p.succs[m.From], indeg: p.indeg0[m.From],
		}
	}
	for i, m := range moves {
		s := snaps[i]
		p.ids[m.To] = s.id
		p.groups[m.To] = s.group
		p.groupIdx[m.To] = s.gi
		p.profiles[m.To] = s.prof
		p.succs[m.To] = s.succ
		p.indeg0[m.To] = s.indeg
	}
	rows := make(map[int32]bool, 2*len(moves))
	for _, m := range moves {
		rows[int32(m.To)] = true
		for _, pred := range g.Pred(p.ids[m.To]) {
			// Pred reads the final graph, a superset of the plan's current
			// edges: rows of still-pending edges simply contain no entry to
			// rewrite. A pred absent from the order was added by this same
			// delta after this point and has no entries yet either.
			if pp, ok := p.ord.Pos(pred); ok {
				rows[int32(pp)] = true
			}
		}
	}
	for r := range rows {
		ss := p.succs[r]
		for j, e := range ss {
			if nv, ok := moveMap[e]; ok {
				ss[j] = nv
			}
		}
	}
}

// patch splices a normalized delta into the plan. The spec must already
// reflect the delta (Spec.Apply ran). On error the plan may be inconsistent
// and the caller must recompile.
func (p *plan) patch(spec *Spec, d Delta) error {
	for _, e := range d.RemoveEdges {
		if err := p.rowRemoveEdge(e.From, e.To); err != nil {
			return err
		}
	}
	for _, id := range d.RemoveNodes {
		if err := p.rowRemoveNode(id); err != nil {
			return err
		}
	}
	for _, n := range d.AddNodes {
		p.rowAddNode(spec, n.ID)
	}
	for _, e := range d.AddEdges {
		if err := p.rowAddEdge(spec.G, e.From, e.To); err != nil {
			return err
		}
	}
	for id := range d.Profiles {
		pos, ok := p.ord.Pos(id)
		if !ok {
			return fmt.Errorf("workflow: profile update for unknown node %q", id)
		}
		p.profiles[pos] = spec.Profiles[id]
	}
	return p.sweep()
}

// sweep is the integer validity check guarding the incremental path: every
// dense successor entry must point forward to a live row and the stored
// indegrees must match the edge set. It walks two int slices — microseconds
// at 10k nodes, far below a recompile — and catches both bookkeeping bugs
// and cycles: a cyclic edge set admits no valid positions, so some entry
// must point backwards.
func (p *plan) sweep() error {
	n := len(p.ids)
	if cap(p.sweepBuf) < n {
		p.sweepBuf = make([]int32, n)
	}
	indeg := p.sweepBuf[:n]
	clear(indeg)
	live := 0
	for i := 0; i < n; i++ {
		if p.ids[i] == "" {
			if p.indeg0[i] != -1 || len(p.succs[i]) != 0 {
				return fmt.Errorf("workflow: plan hole %d has edges", i)
			}
			continue
		}
		live++
		for _, e := range p.succs[i] {
			if int(e) <= i || int(e) >= n || p.ids[e] == "" {
				return fmt.Errorf("workflow: plan edge %d -> %d violates topological order", i, e)
			}
			indeg[e]++
		}
	}
	for i := 0; i < n; i++ {
		if p.ids[i] != "" && indeg[i] != p.indeg0[i] {
			return fmt.Errorf("workflow: plan indegree mismatch at row %d: %d stored, %d actual",
				i, p.indeg0[i], indeg[i])
		}
	}
	if p.ord != nil && live != p.ord.Len() {
		return fmt.Errorf("workflow: plan holds %d live rows, order tracks %d", live, p.ord.Len())
	}
	return nil
}

// Patch applies a Delta to the runner's spec and splices it into the
// compiled plan in place, avoiding the full TopoSort + recompile that
// NewRunner pays. When the incremental splice cannot be completed — most
// notably when the delta closes a dependency cycle — Patch falls back to a
// full recompile of the (already mutated) spec; if that also fails the
// runner is poisoned and every later Evaluate returns the failure.
//
// Patch mutates the spec the runner was built with. Callers that share one
// Spec across runners (the service's runner pools do) must not Patch them;
// patching requires exclusive ownership of both runner and spec.
func (r *Runner) Patch(d Delta) error {
	if r.broken != nil {
		return r.broken
	}
	nd, err := d.normalized(r.spec)
	if err != nil {
		return err
	}
	r.plan.ensureOrder(r.spec)
	if err := r.spec.Apply(nd); err != nil {
		// The spec may be partially edited; recompile to keep the runner
		// usable when possible, but the delta itself still failed.
		r.recompile(err)
		return err
	}
	if err := r.plan.patch(r.spec, nd); err != nil {
		return r.recompile(err)
	}
	return nil
}

// recompile rebuilds the plan from the runner's current spec after a failed
// incremental patch. It returns nil when the rebuild succeeds (the delta is
// fully applied, just not incrementally) and poisons the runner otherwise.
func (r *Runner) recompile(cause error) error {
	if err := r.spec.Validate(); err != nil {
		r.broken = fmt.Errorf("workflow %s: incremental patch failed (%v) and recompile failed: %w",
			r.spec.Name, cause, err)
		return r.broken
	}
	p, err := compilePlan(r.spec)
	if err != nil {
		r.broken = fmt.Errorf("workflow %s: incremental patch failed (%v) and recompile failed: %w",
			r.spec.Name, cause, err)
		return r.broken
	}
	r.plan = p
	return nil
}
