package workflow

import (
	"strings"
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

// fingerprintSpec builds a small two-group diamond workflow. addOrder
// permutes node/edge insertion so tests can prove order-independence.
func fingerprintSpec(t *testing.T, reversed bool) *Spec {
	t.Helper()
	g := dag.New()
	nodes := []string{"a", "b", "c", "d"}
	if reversed {
		nodes = []string{"d", "c", "b", "a"}
	}
	for _, id := range nodes {
		if err := g.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}
	if reversed {
		edges = [][2]string{{"c", "d"}, {"b", "d"}, {"a", "c"}, {"a", "b"}}
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	profiles := make(map[string]perfmodel.Profile, 4)
	for _, id := range []string{"a", "b", "c", "d"} {
		profiles[id] = perfmodel.Profile{
			Name: id, CPUWorkMS: 1000, ParallelFrac: 0.5, FootprintMB: 256, MinMemMB: 128,
		}
	}
	spec := &Spec{
		Name:     "fp-test",
		G:        g,
		Profiles: profiles,
		Groups:   map[string]string{"b": "mid", "c": "mid"},
		SLOMS:    10000,
		Base: resources.Assignment{
			"a": {CPU: 4, MemMB: 4096}, "d": {CPU: 4, MemMB: 4096},
			"mid": {CPU: 4, MemMB: 4096},
		},
		Limits: resources.DefaultLimits(),
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestFingerprintDeterministicAndOrderIndependent(t *testing.T) {
	a := fingerprintSpec(t, false)
	b := fingerprintSpec(t, true)

	fa1, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fa2, err := Fingerprint(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Fingerprint(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa1 != fa2 {
		t.Errorf("fingerprint not deterministic: %s vs %s", fa1, fa2)
	}
	if fa1 != fb {
		t.Errorf("fingerprint depends on construction order: %s vs %s", fa1, fb)
	}
	if !strings.HasPrefix(fa1, "sha256:") || len(fa1) != len("sha256:")+64 {
		t.Errorf("malformed fingerprint %q", fa1)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fingerprintSpec(t, false)
	fp0, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*Spec){
		"slo":     func(s *Spec) { s.SLOMS = 20000 },
		"base":    func(s *Spec) { s.Base["mid"] = resources.Config{CPU: 2, MemMB: 2048} },
		"profile": func(s *Spec) { p := s.Profiles["a"]; p.CPUWorkMS = 2000; s.Profiles["a"] = p },
		"limits":  func(s *Spec) { s.Limits.MaxCPU = 8 },
	}
	for name, mutate := range mutations {
		s := fingerprintSpec(t, false)
		mutate(s)
		fp, err := Fingerprint(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp0 {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}

	// A structurally different DAG (one edge dropped) must differ too.
	s := fingerprintSpec(t, false)
	g := dag.New()
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	s.G = g
	fp, err := Fingerprint(s)
	if err != nil {
		t.Fatal(err)
	}
	if fp == fp0 {
		t.Error("dropping an edge did not change the fingerprint")
	}
}

func TestFingerprintRejectsInvalidSpec(t *testing.T) {
	s := fingerprintSpec(t, false)
	s.SLOMS = -1
	if _, err := Fingerprint(s); err == nil {
		t.Error("Fingerprint accepted an invalid spec")
	}
}

func TestDecodeCanonicalSpecRoundTrip(t *testing.T) {
	spec := fingerprintSpec(t, false)
	b1, err := CanonicalJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCanonicalSpec(b1)
	if err != nil {
		t.Fatal(err)
	}
	// The round trip is byte-exact: same canonical bytes, same
	// fingerprint, same groups and per-group base.
	b2, err := CanonicalJSON(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("canonical round trip not byte-exact:\n%s\nvs\n%s", b1, b2)
	}
	fp1, _ := Fingerprint(spec)
	fp2, _ := Fingerprint(decoded)
	if fp1 != fp2 {
		t.Errorf("round trip changed fingerprint %s -> %s", fp1, fp2)
	}
	if decoded.GroupOf("b") != "mid" || decoded.GroupOf("c") != "mid" {
		t.Errorf("round trip lost groups: b->%s c->%s", decoded.GroupOf("b"), decoded.GroupOf("c"))
	}
	// A decoded spec is runnable: it validates and exposes the same groups.
	if got, want := len(decoded.FunctionGroups()), len(spec.FunctionGroups()); got != want {
		t.Errorf("round trip has %d groups, want %d", got, want)
	}
}

func TestDecodeCanonicalSpecRejectsGarbage(t *testing.T) {
	for name, b := range map[string][]byte{
		"not json":   []byte("nope"),
		"empty spec": []byte(`{}`),
		"bad edge":   []byte(`{"name":"x","slo_ms":1,"nodes":[{"id":"a","profile":{"cpu_work_ms":1,"parallel_frac":0,"footprint_mb":1,"min_mem_mb":1}}],"edges":[["a","missing"]],"base":{"a":{"cpu":1,"mem_mb":128}},"limits":{"min_cpu":1,"max_cpu":8,"cpu_step":1,"min_mem_mb":128,"max_mem_mb":4096,"mem_step_mb":64}}`),
	} {
		if _, err := DecodeCanonicalSpec(b); err == nil {
			t.Errorf("%s: DecodeCanonicalSpec accepted invalid input", name)
		}
	}
}
