package workflow

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeSpec asserts DecodeSpec never panics on arbitrary input and
// that any successfully decoded spec validates, is executable, and survives
// an encode/decode round trip.
func FuzzDecodeSpec(f *testing.F) {
	f.Add(sampleSpecJSON)
	f.Add(`{}`)
	f.Add(`{"name":"x"}`)
	f.Add(`not json at all`)
	f.Add(`{"name":"x","slo_ms":1000,"nodes":[],"edges":[],"base":{"cpu":1,"mem_mb":512}}`)
	f.Add(`{"name":"x","slo_ms":1e308,"nodes":[{"id":"a","profile":{"footprint_mb":256,"min_mem_mb":128}}],"edges":[],"base":{"cpu":1,"mem_mb":512}}`)

	f.Fuzz(func(t *testing.T, input string) {
		spec, err := DecodeSpec(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("DecodeSpec returned an invalid spec: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeSpec(&buf, spec); err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		back, err := DecodeSpec(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if back.G.NumNodes() != spec.G.NumNodes() || back.G.NumEdges() != spec.G.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}
