// Package workflow ties the substrates together: a Spec couples a DAG with
// per-node performance profiles, configuration groups, an SLO and a base
// assignment; a Runner executes the workflow on the simulated platform under
// a candidate assignment, applying host CPU contention with a fluid
// processor-sharing model, and implements search.Evaluator.
package workflow

import (
	"errors"
	"fmt"
	"sort"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

// Spec is a complete serverless workflow definition as a developer would
// submit it (step ❶ in Fig. 4), plus the profiling metadata the simulator
// needs in place of real function code.
type Spec struct {
	Name string
	// G is the workflow DAG; node IDs are invocation instances (scatter
	// instances of one function are distinct nodes).
	G *dag.Graph
	// Profiles maps each node to its performance model.
	Profiles map[string]perfmodel.Profile
	// Groups maps each node to its configuration group (the "function" the
	// developer configures). Scatter instances share a group and therefore a
	// configuration. Missing entries default to the node's own ID.
	Groups map[string]string
	// SLOMS is the end-to-end latency objective in milliseconds.
	SLOMS float64
	// Base is the over-provisioned per-group base configuration assigned in
	// Algorithm 1 lines 2–4.
	Base resources.Assignment
	// Limits is the admissible configuration grid.
	Limits resources.Limits
}

// GroupOf returns the configuration group of a node.
func (s *Spec) GroupOf(node string) string {
	if g, ok := s.Groups[node]; ok && g != "" {
		return g
	}
	return node
}

// FunctionGroups returns the distinct configuration groups in a stable
// (sorted) order.
func (s *Spec) FunctionGroups() []string {
	set := make(map[string]bool)
	for _, id := range s.G.Nodes() {
		set[s.GroupOf(id)] = true
	}
	out := make([]string, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// NodesInGroup returns the node IDs belonging to a group, in DAG insertion
// order.
func (s *Spec) NodesInGroup(group string) []string {
	var out []string
	for _, id := range s.G.Nodes() {
		if s.GroupOf(id) == group {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks structural consistency: a valid DAG, a profile for every
// node, a base config for every group, limits sanity and a positive SLO.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errors.New("workflow: spec needs a name")
	}
	if s.G == nil {
		return errors.New("workflow: spec needs a DAG")
	}
	if err := s.G.Validate(); err != nil {
		return fmt.Errorf("workflow %s: %w", s.Name, err)
	}
	if s.SLOMS <= 0 {
		return fmt.Errorf("workflow %s: non-positive SLO %v", s.Name, s.SLOMS)
	}
	if err := s.Limits.Validate(); err != nil {
		return fmt.Errorf("workflow %s: %w", s.Name, err)
	}
	for _, id := range s.G.Nodes() {
		p, ok := s.Profiles[id]
		if !ok {
			return fmt.Errorf("workflow %s: node %q has no profile", s.Name, id)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workflow %s: node %q: %w", s.Name, id, err)
		}
	}
	groups := s.FunctionGroups()
	for _, g := range groups {
		cfg, ok := s.Base[g]
		if !ok {
			return fmt.Errorf("workflow %s: group %q has no base config", s.Name, g)
		}
		if !cfg.Valid() || !s.Limits.Contains(cfg) {
			return fmt.Errorf("workflow %s: group %q base config %v invalid or outside limits", s.Name, g, cfg)
		}
	}
	// Sorted so an invalid spec reports the same violation every run:
	// Validate guards CanonicalJSON, and a map-order-dependent error
	// would make even failures nondeterministic (aarcvet detcanon).
	nodes := make([]string, 0, len(s.Groups))
	for node := range s.Groups {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		g := s.Groups[node]
		if !s.G.HasNode(node) {
			return fmt.Errorf("workflow %s: group mapping for unknown node %q", s.Name, node)
		}
		if g == "" {
			return fmt.Errorf("workflow %s: empty group for node %q", s.Name, node)
		}
	}
	return nil
}
