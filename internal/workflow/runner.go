package workflow

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"aarc/internal/dag"
	"aarc/internal/pricing"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/simfaas"
)

// RunnerOptions configures workflow execution.
type RunnerOptions struct {
	// HostCores is the host CPU capacity shared by concurrently running
	// containers (the paper's testbed has 96 physical cores). Zero disables
	// contention.
	HostCores float64
	// Noise enables the profiles' multiplicative measurement noise.
	Noise bool
	// Seed seeds the runner's deterministic RNG stream.
	Seed uint64
	// Platform overrides the default simulated platform.
	Platform *simfaas.Platform
	// Price overrides the default (paper) pricing model.
	Price *pricing.Model
	// InputScale is the default input scale (1.0 when zero).
	InputScale float64
}

// Runner executes a Spec on the simulated platform and implements
// search.Evaluator. It is not safe for concurrent use (searchers are
// sequential by nature); create one runner per goroutine if needed.
type Runner struct {
	spec     *Spec
	platform *simfaas.Platform
	price    pricing.Model
	cores    float64
	noise    bool
	scale    float64
	rng      *rand.Rand
}

// NewRunner validates the spec and builds a runner.
func NewRunner(spec *Spec, opts RunnerOptions) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		spec:  spec,
		cores: opts.HostCores,
		noise: opts.Noise,
		scale: opts.InputScale,
	}
	if r.scale <= 0 {
		r.scale = 1
	}
	if opts.Platform != nil {
		r.platform = opts.Platform
	} else {
		r.platform = simfaas.New(simfaas.DefaultOptions())
	}
	if opts.Price != nil {
		r.price = *opts.Price
	} else {
		r.price = pricing.Paper()
	}
	r.rng = rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))
	return r, nil
}

// Spec returns the workflow specification the runner executes.
func (r *Runner) Spec() *Spec { return r.spec }

// Graph returns the workflow DAG (for graph-centric searchers).
func (r *Runner) Graph() *dag.Graph { return r.spec.G }

// GroupOf returns the configuration group of a DAG node.
func (r *Runner) GroupOf(node string) string { return r.spec.GroupOf(node) }

// Platform exposes the simulated platform (for metrics inspection).
func (r *Runner) Platform() *simfaas.Platform { return r.platform }

// Price returns the active pricing model.
func (r *Runner) Price() pricing.Model { return r.price }

// SLOMS returns the workflow's end-to-end SLO in milliseconds.
func (r *Runner) SLOMS() float64 { return r.spec.SLOMS }

// Functions implements search.Evaluator.
func (r *Runner) Functions() []string { return r.spec.FunctionGroups() }

// Limits implements search.Evaluator.
func (r *Runner) Limits() resources.Limits { return r.spec.Limits }

// Base implements search.Evaluator.
func (r *Runner) Base() resources.Assignment { return r.spec.Base.Clone() }

// Evaluate implements search.Evaluator at the runner's default input scale.
func (r *Runner) Evaluate(a resources.Assignment) (search.Result, error) {
	return r.EvaluateScale(a, r.scale)
}

// nodeRun tracks one node's execution through the fluid simulation.
type nodeRun struct {
	id        string
	remaining float64 // remaining duration at rate 1
	cpu       float64
	start     float64
}

// EvaluateScale executes the workflow once under assignment a at the given
// input scale. End-to-end latency is the makespan of an event-driven fluid
// simulation: whenever the total vCPU demand of concurrently running
// containers exceeds the host capacity, all running invocations progress at
// rate capacity/demand (processor sharing), stretching their billed
// durations — which is what cgroup CPU shares do on the paper's testbed.
//
// An OOM kill aborts the workflow: in-flight branches finish, but no new
// node starts afterwards, and downstream nodes are reported Skipped.
func (r *Runner) EvaluateScale(a resources.Assignment, scale float64) (search.Result, error) {
	spec := r.spec
	res := search.Result{Nodes: make(map[string]search.NodeResult, spec.G.NumNodes())}

	cfgOf := func(node string) (resources.Config, error) {
		g := spec.GroupOf(node)
		cfg, ok := a[g]
		if !ok {
			return resources.Config{}, fmt.Errorf("workflow %s: assignment missing group %q (node %q)", spec.Name, g, node)
		}
		if !cfg.Valid() {
			return resources.Config{}, fmt.Errorf("workflow %s: invalid config %v for group %q", spec.Name, cfg, g)
		}
		return cfg, nil
	}

	topo, err := spec.G.TopoSort()
	if err != nil {
		return res, err
	}
	indeg := make(map[string]int, len(topo))
	for _, id := range topo {
		indeg[id] = len(spec.G.Pred(id))
	}

	var rng *rand.Rand
	if r.noise {
		rng = r.rng
	}

	// ready holds nodes whose predecessors have all finished, in
	// deterministic (topo-index) order.
	topoIdx := make(map[string]int, len(topo))
	for i, id := range topo {
		topoIdx[id] = i
	}
	var ready []string
	for _, id := range topo {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}

	var running []*nodeRun
	now := 0.0
	failed := false

	startNode := func(id string) error {
		cfg, err := cfgOf(id)
		if err != nil {
			return err
		}
		inv, err := r.platform.Invoke(id, spec.Profiles[id], cfg, scale, rng)
		if err != nil {
			return err
		}
		nr := search.NodeResult{
			Group:       spec.GroupOf(id),
			Config:      cfg,
			ColdStartMS: inv.ColdStartMS,
			OOM:         inv.OOM,
			StartMS:     now,
		}
		res.Nodes[id] = nr
		running = append(running, &nodeRun{id: id, remaining: inv.RuntimeMS, cpu: cfg.CPU})
		running[len(running)-1].start = now
		return nil
	}

	finishNode := func(run *nodeRun, finish float64) {
		nr := res.Nodes[run.id]
		nr.FinishMS = finish
		nr.RuntimeMS = finish - run.start
		nr.Cost = r.price.Invocation(nr.RuntimeMS, nr.Config)
		res.Nodes[run.id] = nr
		res.Cost += nr.Cost
		if finish > res.E2EMS {
			res.E2EMS = finish
		}
		if nr.OOM {
			// The kill becomes visible to the orchestrator only now: the
			// workflow fails, in-flight siblings drain, nothing new starts.
			res.OOM = true
			failed = true
			if res.Fail == "" {
				res.Fail = run.id
			}
		}
		if !nr.OOM {
			for _, s := range spec.G.Succ(run.id) {
				indeg[s]--
				if indeg[s] == 0 {
					pos := sort.Search(len(ready), func(i int) bool { return topoIdx[ready[i]] > topoIdx[s] })
					ready = append(ready, "")
					copy(ready[pos+1:], ready[pos:])
					ready[pos] = s
				}
			}
		}
	}

	for len(ready) > 0 || len(running) > 0 {
		// Launch everything ready (unless the workflow already failed).
		if !failed {
			for len(ready) > 0 {
				id := ready[0]
				ready = ready[1:]
				if err := startNode(id); err != nil {
					return res, err
				}
			}
		} else {
			for _, id := range ready {
				nr := res.Nodes[id]
				nr.Skipped = true
				nr.Group = spec.GroupOf(id)
				res.Nodes[id] = nr
			}
			ready = nil
		}
		if len(running) == 0 {
			break
		}

		// Processor-sharing rate for the current running set.
		demand := 0.0
		for _, run := range running {
			demand += run.cpu
		}
		rate := 1.0
		if r.cores > 0 && demand > r.cores {
			rate = r.cores / demand
		}

		// Advance to the earliest completion.
		dt := math.Inf(1)
		for _, run := range running {
			if d := run.remaining / rate; d < dt {
				dt = d
			}
		}
		now += dt
		var still []*nodeRun
		for _, run := range running {
			run.remaining -= dt * rate
			if run.remaining <= 1e-9 {
				finishNode(run, now)
			} else {
				still = append(still, run)
			}
		}
		running = still
	}

	// Mark never-started downstream nodes as skipped.
	for _, id := range topo {
		if _, ok := res.Nodes[id]; !ok {
			res.Nodes[id] = search.NodeResult{Group: spec.GroupOf(id), Skipped: true}
		}
	}
	return res, nil
}

// MeanEvaluate runs Evaluate with noise forced off (useful for heatmaps and
// deterministic assertions) regardless of the runner's Noise option.
func (r *Runner) MeanEvaluate(a resources.Assignment) (search.Result, error) {
	saved := r.noise
	r.noise = false
	defer func() { r.noise = saved }()
	return r.Evaluate(a)
}
