package workflow

import (
	"fmt"
	"math/rand/v2"

	"aarc/internal/dag"
	"aarc/internal/pricing"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/simfaas"
)

// RunnerOptions configures workflow execution.
type RunnerOptions struct {
	// HostCores is the host CPU capacity shared by concurrently running
	// containers (the paper's testbed has 96 physical cores). Zero disables
	// contention.
	HostCores float64
	// Noise enables the profiles' multiplicative measurement noise.
	Noise bool
	// Seed seeds the runner's deterministic RNG stream.
	Seed uint64
	// Platform overrides the default simulated platform.
	Platform *simfaas.Platform
	// Price overrides the default (paper) pricing model.
	Price *pricing.Model
	// InputScale is the default input scale (1.0 when zero).
	InputScale float64
}

// Runner executes a Spec on the simulated platform and implements
// search.Evaluator. It compiles the spec into a dense execution plan at
// construction and reuses a scratch arena across evaluations, so it is NOT
// safe for concurrent use: create one runner per goroutine (runners may
// share a Platform, which is concurrency-safe).
type Runner struct {
	spec     *Spec
	plan     *plan
	platform *simfaas.Platform
	price    pricing.Model
	cores    float64
	noise    bool
	scale    float64
	rng      *rand.Rand
	scratch  scratch
	// broken is set when an incremental Patch corrupted the plan and the
	// fallback recompile also failed; every later call reports it.
	broken error
}

// NewRunner validates the spec and builds a runner.
func NewRunner(spec *Spec, opts RunnerOptions) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		spec:  spec,
		cores: opts.HostCores,
		noise: opts.Noise,
		scale: opts.InputScale,
	}
	if r.scale <= 0 {
		r.scale = 1
	}
	if opts.Platform != nil {
		r.platform = opts.Platform
	} else {
		r.platform = simfaas.New(simfaas.DefaultOptions())
	}
	if opts.Price != nil {
		r.price = *opts.Price
	} else {
		r.price = pricing.Paper()
	}
	r.rng = rand.New(rand.NewPCG(opts.Seed, 0x9e3779b97f4a7c15))
	p, err := compilePlan(spec)
	if err != nil {
		return nil, err
	}
	r.plan = p
	return r, nil
}

// Spec returns the workflow specification the runner executes.
func (r *Runner) Spec() *Spec { return r.spec }

// Graph returns the workflow DAG (for graph-centric searchers).
func (r *Runner) Graph() *dag.Graph { return r.spec.G }

// GroupOf returns the configuration group of a DAG node.
func (r *Runner) GroupOf(node string) string { return r.spec.GroupOf(node) }

// Platform exposes the simulated platform (for metrics inspection).
func (r *Runner) Platform() *simfaas.Platform { return r.platform }

// Price returns the active pricing model.
func (r *Runner) Price() pricing.Model { return r.price }

// SLOMS returns the workflow's end-to-end SLO in milliseconds.
func (r *Runner) SLOMS() float64 { return r.spec.SLOMS }

// Functions implements search.Evaluator.
func (r *Runner) Functions() []string { return r.spec.FunctionGroups() }

// Limits implements search.Evaluator.
func (r *Runner) Limits() resources.Limits { return r.spec.Limits }

// Base implements search.Evaluator.
func (r *Runner) Base() resources.Assignment { return r.spec.Base.Clone() }

// Evaluate implements search.Evaluator at the runner's default input scale.
func (r *Runner) Evaluate(a resources.Assignment) (search.Result, error) {
	return r.EvaluateScale(a, r.scale)
}

// EvaluateScale executes the workflow once under assignment a at the given
// input scale, with measurement noise following the runner's Noise option.
func (r *Runner) EvaluateScale(a resources.Assignment, scale float64) (search.Result, error) {
	var rng *rand.Rand
	if r.noise {
		rng = r.rng
	}
	return r.evaluate(a, scale, rng)
}

// MeanEvaluate runs Evaluate with noise forced off (useful for heatmaps and
// deterministic assertions) regardless of the runner's Noise option. Unlike
// an option flip, the override is threaded through the call, so it never
// mutates runner state.
func (r *Runner) MeanEvaluate(a resources.Assignment) (search.Result, error) {
	return r.evaluate(a, r.scale, nil)
}

// evaluate executes the workflow once on the compiled plan. End-to-end
// latency is the makespan of an event-driven fluid simulation: whenever the
// total vCPU demand of concurrently running containers exceeds the host
// capacity, all running invocations progress at rate capacity/demand
// (processor sharing), stretching their billed durations — which is what
// cgroup CPU shares do on the paper's testbed.
//
// Because every running invocation progresses at the same (time-varying)
// rate, the simulation advances a virtual-work clock vw that accumulates
// processed work per container: an invocation started at vw with runtime T
// completes exactly when the clock reaches vw+T. That deadline is fixed at
// start, so the next event is always the min-heap top — no per-event rescan
// of the running set, and no rewriting of keys when the rate changes.
//
// An OOM kill aborts the workflow: in-flight branches finish, but no new
// node starts afterwards, and downstream nodes are reported Skipped.
func (r *Runner) evaluate(a resources.Assignment, scale float64, rng *rand.Rand) (search.Result, error) {
	p := r.plan
	s := &r.scratch
	if r.broken != nil {
		return search.Result{}, r.broken
	}
	s.reset(p)
	var res search.Result

	// Resolve the assignment once per group instead of once per node. Groups
	// whose every member was patched away keep their dense slot but need no
	// config; a zero placeholder keeps the index aligned.
	for gi, g := range p.groupNames {
		if p.groupLive[gi] == 0 {
			s.cfgs = append(s.cfgs, resources.Config{})
			continue
		}
		cfg, ok := a[g]
		if !ok {
			return res, fmt.Errorf("workflow %s: assignment missing group %q (node %q)", r.spec.Name, g, p.groupNode[gi])
		}
		if !cfg.Valid() {
			return res, fmt.Errorf("workflow %s: invalid config %v for group %q", r.spec.Name, cfg, g)
		}
		s.cfgs = append(s.cfgs, cfg)
	}

	for i, d := range p.indeg0 {
		if d == 0 {
			s.ready = append(s.ready, int32(i))
		}
	}

	now := 0.0    // simulated wall clock (ms)
	vw := 0.0     // virtual-work clock (ms of per-container progress)
	demand := 0.0 // total vCPU demand of the running set
	failed := false

	for {
		if !failed {
			for _, ni := range s.ready {
				cfg := s.cfgs[p.groupIdx[ni]]
				inv, err := r.platform.Invoke(p.ids[ni], p.profiles[ni], cfg, scale, rng)
				if err != nil {
					return res, err
				}
				nr := &s.nodeRes[ni]
				nr.Group = p.groups[ni]
				nr.Config = cfg
				nr.ColdStartMS = inv.ColdStartMS
				nr.OOM = inv.OOM
				nr.StartMS = now
				s.state[ni] = stRunning
				s.heap.push(runItem{deadline: vw + inv.RuntimeMS, node: ni})
				demand += cfg.CPU
			}
		} else {
			for _, ni := range s.ready {
				s.state[ni] = stSkipped
			}
		}
		s.ready = s.ready[:0]
		if len(s.heap) == 0 {
			break
		}

		// Processor-sharing rate for the current running set, applied until
		// the next completion.
		rate := 1.0
		if r.cores > 0 && demand > r.cores {
			rate = r.cores / demand
		}
		next := s.heap[0].deadline
		now += (next - vw) / rate
		vw = next

		// Finish everything due at this event (near-simultaneous completions
		// drain as one batch, in topo order via the heap tie-break).
		for len(s.heap) > 0 && s.heap[0].deadline <= vw+1e-9 {
			ni := s.heap.pop().node
			nr := &s.nodeRes[ni]
			nr.FinishMS = now
			nr.RuntimeMS = now - nr.StartMS
			nr.Cost = r.price.Invocation(nr.RuntimeMS, nr.Config)
			res.Cost += nr.Cost
			if now > res.E2EMS {
				res.E2EMS = now
			}
			s.state[ni] = stFinished
			demand -= nr.Config.CPU
			if nr.OOM {
				// The kill becomes visible to the orchestrator only now: the
				// workflow fails, in-flight siblings drain, nothing new starts.
				res.OOM = true
				failed = true
				if res.Fail == "" {
					res.Fail = p.ids[ni]
				}
				continue
			}
			for _, si := range p.succs[ni] {
				s.indeg[si]--
				if s.indeg[si] == 0 {
					s.ready = pushReady(s.ready, si)
				}
			}
		}
	}

	// Hand back string-keyed results; never-started nodes report as skipped
	// and tombstoned rows of a patched plan are not part of the workflow.
	res.Nodes = make(map[string]search.NodeResult, len(p.ids))
	for i := range p.ids {
		if p.ids[i] == "" {
			continue
		}
		if s.state[i] == stFinished {
			res.Nodes[p.ids[i]] = s.nodeRes[i]
		} else {
			res.Nodes[p.ids[i]] = search.NodeResult{Group: p.groups[i], Skipped: true}
		}
	}
	return res, nil
}
