package workflow

import (
	"testing"

	"aarc/internal/perfmodel"
)

// bench10kSpec is the shared 10k-node layered-random spec (built once per
// process; benchmarks clone before mutating).
var bench10kSpec = patchSpec(10_000, 42)

func BenchmarkPlanCompile10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compilePlan(bench10kSpec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewRunner10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewRunner(bench10kSpec, RunnerOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalPatch measures one add-edge + one remove-edge patch
// (two Runner.Patch calls per op) against the 10k-node plan — the
// incremental path a full recompile would otherwise pay BenchmarkPlanCompile10k
// for on every edit.
func BenchmarkIncrementalPatch(b *testing.B) {
	spec := bench10kSpec.Clone()
	r, err := NewRunner(spec, RunnerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ids := spec.G.Nodes()
	u := ids[len(ids)/2]
	v := ""
	for off := 1; off < 200; off++ {
		c := ids[len(ids)/2+off]
		if !hasEdge(spec.G, u, c) && !spec.G.HasPath(u, c) && !spec.G.HasPath(c, u) {
			v = c
			break
		}
	}
	if v == "" {
		b.Fatal("no unrelated node pair found")
	}
	add := Delta{AddEdges: []Edge{{From: u, To: v}}}
	rem := Delta{RemoveEdges: []Edge{{From: u, To: v}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Patch(add); err != nil {
			b.Fatal(err)
		}
		if err := r.Patch(rem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalPatchReweight measures a single-profile update patch,
// the cheapest edit (no topology change, just the validity sweep).
func BenchmarkIncrementalPatchReweight(b *testing.B) {
	spec := bench10kSpec.Clone()
	r, err := NewRunner(spec, RunnerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	id := spec.G.Nodes()[5000]
	d1 := Delta{Profiles: map[string]perfmodel.Profile{id: flatProfile(id, 1111)}}
	d2 := Delta{Profiles: map[string]perfmodel.Profile{id: flatProfile(id, 2222)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := d1
		if i%2 == 1 {
			d = d2
		}
		if err := r.Patch(d); err != nil {
			b.Fatal(err)
		}
	}
}
