package workflow

import (
	"strings"
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/simfaas"
)

// simpleProfile returns a fully-serial profile with fixed compute and no IO,
// so runtimes are exactly predictable: t = work / min(cpu, 1).
func simpleProfile(name string, workMS float64) perfmodel.Profile {
	return perfmodel.Profile{
		Name: name, CPUWorkMS: workMS, ParallelFrac: 0, IOMS: 0,
		FootprintMB: 256, MinMemMB: 128, PressureK: 1,
	}
}

// chainSpec builds a->b->c with works 1000/2000/3000 ms.
func chainSpec() *Spec {
	g := dag.New()
	g.MustAddNode("a")
	g.MustAddNode("b")
	g.MustAddNode("c")
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	s := &Spec{
		Name: "chain",
		G:    g,
		Profiles: map[string]perfmodel.Profile{
			"a": simpleProfile("a", 1000),
			"b": simpleProfile("b", 2000),
			"c": simpleProfile("c", 3000),
		},
		SLOMS:  60_000,
		Limits: resources.DefaultLimits(),
	}
	s.Base = resources.Uniform(s.FunctionGroups(), resources.Config{CPU: 2, MemMB: 1024})
	return s
}

// fanSpec builds s -> {p1, p2} -> t with a scatter group.
func fanSpec() *Spec {
	g := dag.New()
	for _, id := range []string{"s", "p1", "p2", "t"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("s", "p1")
	g.MustAddEdge("s", "p2")
	g.MustAddEdge("p1", "t")
	g.MustAddEdge("p2", "t")
	s := &Spec{
		Name: "fan",
		G:    g,
		Profiles: map[string]perfmodel.Profile{
			"s":  simpleProfile("s", 1000),
			"p1": simpleProfile("p", 4000),
			"p2": simpleProfile("p", 4000),
			"t":  simpleProfile("t", 1000),
		},
		Groups: map[string]string{"p1": "p", "p2": "p"},
		SLOMS:  60_000,
		Limits: resources.DefaultLimits(),
	}
	s.Base = resources.Uniform(s.FunctionGroups(), resources.Config{CPU: 1, MemMB: 512})
	return s
}

func noColdRunner(t *testing.T, spec *Spec, cores float64) *Runner {
	t.Helper()
	// Use a platform with zero cold-start latency so makespan arithmetic is
	// exact.
	p := simfaas.New(simfaas.Options{KeepAlive: true})
	r, err := NewRunner(spec, RunnerOptions{HostCores: cores, Platform: p})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSpecValidate(t *testing.T) {
	if err := chainSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"nil dag", func(s *Spec) { s.G = nil }},
		{"zero slo", func(s *Spec) { s.SLOMS = 0 }},
		{"bad limits", func(s *Spec) { s.Limits.CPUStep = 0 }},
		{"missing profile", func(s *Spec) { delete(s.Profiles, "b") }},
		{"bad profile", func(s *Spec) { p := s.Profiles["a"]; p.ParallelFrac = 2; s.Profiles["a"] = p }},
		{"missing base", func(s *Spec) { delete(s.Base, "c") }},
		{"base out of limits", func(s *Spec) { s.Base["a"] = resources.Config{CPU: 99, MemMB: 128} }},
		{"group for unknown node", func(s *Spec) { s.Groups = map[string]string{"zz": "g"} }},
		{"empty group name", func(s *Spec) { s.Groups = map[string]string{"a": ""} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := chainSpec()
			c.mutate(s)
			if err := s.Validate(); err == nil {
				t.Errorf("expected validation error for %s", c.name)
			}
		})
	}
}

func TestGroups(t *testing.T) {
	s := fanSpec()
	groups := s.FunctionGroups()
	want := []string{"p", "s", "t"}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for i := range want {
		if groups[i] != want[i] {
			t.Fatalf("groups = %v, want %v", groups, want)
		}
	}
	if s.GroupOf("p1") != "p" || s.GroupOf("s") != "s" {
		t.Error("GroupOf wrong")
	}
	nodes := s.NodesInGroup("p")
	if len(nodes) != 2 || nodes[0] != "p1" || nodes[1] != "p2" {
		t.Errorf("NodesInGroup = %v", nodes)
	}
}

func TestSerialChainMakespan(t *testing.T) {
	s := chainSpec()
	r := noColdRunner(t, s, 96)
	res, err := r.Evaluate(s.Base)
	if err != nil {
		t.Fatal(err)
	}
	// Serial profiles at >=1 vCPU: 1000 + 2000 + 3000.
	if !within(res.E2EMS, 6000, 1e-6) {
		t.Errorf("E2E = %v, want 6000", res.E2EMS)
	}
	if res.OOM || res.Fail != "" {
		t.Errorf("unexpected failure: %+v", res)
	}
	// Node timing bookkeeping.
	b := res.Nodes["b"]
	if !within(b.StartMS, 1000, 1e-6) || !within(b.FinishMS, 3000, 1e-6) {
		t.Errorf("b timing = %+v", b)
	}
	// Cost equals the sum of node costs.
	var sum float64
	for _, nr := range res.Nodes {
		sum += nr.Cost
	}
	if !within(res.Cost, sum, 1e-6) {
		t.Errorf("Cost %v != node sum %v", res.Cost, sum)
	}
	// cost = t * (0.512*2 + 0.001*1024) for each node, t totals 6000.
	wantCost := 6000 * (0.512*2 + 0.001*1024)
	if !within(res.Cost, wantCost, 1e-6) {
		t.Errorf("Cost = %v, want %v", res.Cost, wantCost)
	}
}

func TestParallelMakespan(t *testing.T) {
	s := fanSpec()
	r := noColdRunner(t, s, 96)
	res, err := r.Evaluate(s.Base)
	if err != nil {
		t.Fatal(err)
	}
	// s(1000) + max(p1, p2)(4000) + t(1000).
	if !within(res.E2EMS, 6000, 1e-6) {
		t.Errorf("E2E = %v, want 6000 (parallel branches overlap)", res.E2EMS)
	}
	p1, p2 := res.Nodes["p1"], res.Nodes["p2"]
	if !within(p1.StartMS, p2.StartMS, 1e-6) {
		t.Error("parallel branches should start together")
	}
	// Both instances are billed: cost covers 1000+4000+4000+1000 node-ms.
	wantCost := 10000 * (0.512*1 + 0.001*512)
	if !within(res.Cost, wantCost, 1e-6) {
		t.Errorf("Cost = %v, want %v", res.Cost, wantCost)
	}
}

func TestContentionStretch(t *testing.T) {
	s := fanSpec()
	// Two parallel 4-core branches on a 4-core host: they get 2 cores'
	// worth of rate each -> the parallel stage takes twice as long.
	for g := range s.Base {
		s.Base[g] = resources.Config{CPU: 4, MemMB: 512}
	}
	r := noColdRunner(t, s, 4)
	res, err := r.Evaluate(s.Base)
	if err != nil {
		t.Fatal(err)
	}
	// Profiles are serial, so 4 vCPU runs at speed 1: work 4000ms each.
	// With processor sharing at rate 0.5, the stage takes 8000ms.
	want := 1000 + 8000 + 1000
	if !within(res.E2EMS, float64(want), 1) {
		t.Errorf("contended E2E = %v, want ~%v", res.E2EMS, want)
	}
	// Billed durations stretch too.
	if res.Nodes["p1"].RuntimeMS < 7999 {
		t.Errorf("stretched runtime = %v", res.Nodes["p1"].RuntimeMS)
	}

	// Without contention (96 cores) the same assignment is faster.
	r2 := noColdRunner(t, s, 96)
	res2, _ := r2.Evaluate(s.Base)
	if res2.E2EMS >= res.E2EMS {
		t.Errorf("uncontended %v should beat contended %v", res2.E2EMS, res.E2EMS)
	}
}

func TestOOMAbort(t *testing.T) {
	s := chainSpec()
	a := s.Base.Clone()
	a["b"] = resources.Config{CPU: 2, MemMB: 128} // OOM floor of b is 128? floor=128 -> below footprint... MinMemMB=128 so 127 would OOM; use below floor
	a["b"] = resources.Config{CPU: 2, MemMB: 100}
	// Memory 100 is outside DefaultLimits (min 128) but Evaluate does not
	// clamp: searchers are responsible for staying in-grid. The profile OOMs.
	r := noColdRunner(t, s, 96)
	res, err := r.Evaluate(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM || res.Fail != "b" {
		t.Fatalf("expected OOM at b: %+v", res)
	}
	if !res.Nodes["c"].Skipped {
		t.Error("downstream node c should be skipped")
	}
	if res.Nodes["a"].Skipped || res.Nodes["a"].RuntimeMS == 0 {
		t.Error("upstream node a should have completed")
	}
	if res.E2EMS <= 0 || res.Cost <= 0 {
		t.Error("aborted run still consumes time and money")
	}
}

func TestEvaluateErrors(t *testing.T) {
	s := chainSpec()
	r := noColdRunner(t, s, 96)
	if _, err := r.Evaluate(resources.Assignment{"a": s.Base["a"]}); err == nil {
		t.Error("missing group should error")
	}
	bad := s.Base.Clone()
	bad["a"] = resources.Config{}
	if _, err := r.Evaluate(bad); err == nil {
		t.Error("invalid config should error")
	}
}

func TestNoiseDeterminism(t *testing.T) {
	s := chainSpec()
	for id, p := range s.Profiles {
		p.NoiseStd = 0.05
		s.Profiles[id] = p
	}
	r1, err := NewRunner(s, RunnerOptions{HostCores: 96, Noise: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(s, RunnerOptions{HostCores: 96, Noise: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r1.Evaluate(s.Base)
	b, _ := r2.Evaluate(s.Base)
	if a.E2EMS != b.E2EMS || a.Cost != b.Cost {
		t.Error("same seed should reproduce identical results")
	}
	r3, _ := NewRunner(s, RunnerOptions{HostCores: 96, Noise: true, Seed: 10})
	c, _ := r3.Evaluate(s.Base)
	if c.E2EMS == a.E2EMS {
		t.Error("different seeds should differ (with overwhelming probability)")
	}
}

func TestMeanEvaluateIgnoresNoise(t *testing.T) {
	s := chainSpec()
	for id, p := range s.Profiles {
		p.NoiseStd = 0.05
		s.Profiles[id] = p
	}
	r, err := NewRunner(s, RunnerOptions{HostCores: 96, Noise: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r.MeanEvaluate(s.Base) // warm the containers: the first run pays cold starts
	m1, _ := r.MeanEvaluate(s.Base)
	m2, _ := r.MeanEvaluate(s.Base)
	if m1.E2EMS != m2.E2EMS {
		t.Error("MeanEvaluate should be deterministic once warm")
	}
	// Noise mode is restored afterwards.
	n1, _ := r.Evaluate(s.Base)
	n2, _ := r.Evaluate(s.Base)
	if n1.E2EMS == n2.E2EMS {
		t.Error("noise should be active again after MeanEvaluate")
	}
}

func TestEvaluatorInterface(t *testing.T) {
	s := fanSpec()
	r := noColdRunner(t, s, 96)
	if got := r.Functions(); len(got) != 3 {
		t.Errorf("Functions = %v", got)
	}
	if r.Limits() != s.Limits {
		t.Error("Limits mismatch")
	}
	base := r.Base()
	base["s"] = resources.Config{CPU: 9, MemMB: 9999}
	if s.Base["s"].CPU == 9 {
		t.Error("Base must return a clone")
	}
	if r.SLOMS() != s.SLOMS {
		t.Error("SLOMS mismatch")
	}
	if r.Graph() != s.G {
		t.Error("Graph accessor mismatch")
	}
	if r.GroupOf("p2") != "p" {
		t.Error("GroupOf accessor mismatch")
	}
}

func TestGroupCostAndWeights(t *testing.T) {
	s := fanSpec()
	r := noColdRunner(t, s, 96)
	res, _ := r.Evaluate(s.Base)
	pCost := res.GroupCost("p")
	if !within(pCost, res.Nodes["p1"].Cost+res.Nodes["p2"].Cost, 1e-9) {
		t.Errorf("GroupCost = %v", pCost)
	}
	w := res.NodeWeights()
	if len(w) != 4 || w["p1"] <= 0 {
		t.Errorf("NodeWeights = %v", w)
	}
	if got := res.PathRuntimeMS([]string{"s", "p1", "t"}); !within(got, 6000, 1e-6) {
		t.Errorf("PathRuntimeMS = %v", got)
	}
}

func TestColdStartAppearsOnce(t *testing.T) {
	s := chainSpec()
	r, err := NewRunner(s, RunnerOptions{HostCores: 96})
	if err != nil {
		t.Fatal(err)
	}
	res1, _ := r.Evaluate(s.Base)
	res2, _ := r.Evaluate(s.Base)
	if res1.Nodes["a"].ColdStartMS == 0 {
		t.Error("first run should be cold")
	}
	if res2.Nodes["a"].ColdStartMS != 0 {
		t.Error("second identical run should be warm")
	}
	if res2.E2EMS >= res1.E2EMS {
		t.Error("warm run should be faster")
	}
}

func TestValidateMessageQuality(t *testing.T) {
	s := chainSpec()
	delete(s.Profiles, "b")
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), `"b"`) {
		t.Errorf("error should name the node: %v", err)
	}
}

func within(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
