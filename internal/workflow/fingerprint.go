package workflow

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

// The canonical encoding reuses the on-disk JSON vocabulary (specJSON and
// friends) but fixes an order the DAG does not: nodes sorted by ID, edges
// sorted lexicographically, and the full per-group base assignment instead
// of the uniform shorthand. Two Specs that describe the same workflow —
// regardless of construction order — canonicalize to the same bytes, and
// two that differ in anything result-affecting (profile, group, edge, SLO,
// base, limits) do not.
type canonicalSpec struct {
	Name   string                `json:"name"`
	SLOMS  float64               `json:"slo_ms"`
	Nodes  []nodeJSON            `json:"nodes"`
	Edges  [][2]string           `json:"edges"`
	Base   map[string]configJSON `json:"base"`
	Limits limitsJSON            `json:"limits"`
}

// CanonicalJSON returns the deterministic JSON encoding of a spec: the
// DecodeSpec vocabulary with nodes and edges sorted and the base assignment
// spelled out per group. It is the preimage of Fingerprint; callers that
// combine a spec with other cache-key material (search options, runner
// seeds) hash over these bytes.
func CanonicalJSON(spec *Spec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cs := canonicalSpec{
		Name:  spec.Name,
		SLOMS: spec.SLOMS,
		Base:  make(map[string]configJSON, len(spec.Base)),
	}
	ids := append([]string(nil), spec.G.Nodes()...)
	sort.Strings(ids)
	for _, id := range ids {
		p := spec.Profiles[id]
		n := nodeJSON{
			ID: id,
			Profile: profileJSON{
				CPUWorkMS:      p.CPUWorkMS,
				ParallelFrac:   p.ParallelFrac,
				MaxParallel:    p.MaxParallel,
				IOMS:           p.IOMS,
				FootprintMB:    p.FootprintMB,
				MinMemMB:       p.MinMemMB,
				PressureK:      p.PressureK,
				NoiseStd:       p.NoiseStd,
				InputSensitive: p.InputSensitive,
			},
		}
		if grp := spec.GroupOf(id); grp != id {
			n.Group = grp
		}
		cs.Nodes = append(cs.Nodes, n)
	}
	for _, from := range ids {
		for _, to := range spec.G.Succ(from) {
			cs.Edges = append(cs.Edges, [2]string{from, to})
		}
	}
	sort.Slice(cs.Edges, func(i, j int) bool {
		if cs.Edges[i][0] != cs.Edges[j][0] {
			return cs.Edges[i][0] < cs.Edges[j][0]
		}
		return cs.Edges[i][1] < cs.Edges[j][1]
	})
	for g, cfg := range spec.Base {
		cs.Base[g] = configJSON{CPU: cfg.CPU, MemMB: cfg.MemMB}
	}
	lim := spec.Limits
	cs.Limits = limitsJSON{
		MinCPU: lim.MinCPU, MaxCPU: lim.MaxCPU, CPUStep: lim.CPUStep,
		MinMemMB: lim.MinMemMB, MaxMemMB: lim.MaxMemMB, MemStepMB: lim.MemStepMB,
	}
	// encoding/json writes struct fields in declaration order and string-keyed
	// maps sorted by key, so the bytes are a pure function of the spec.
	return json.Marshal(cs)
}

// DecodeCanonicalSpec parses CanonicalJSON output back into a validated
// Spec. Unlike DecodeSpec's submission format (uniform base config), the
// canonical form spells the base assignment per group, so the round trip
// CanonicalJSON -> DecodeCanonicalSpec -> CanonicalJSON is byte-exact.
// The serving layer persists canonical spec bytes next to each cached
// recommendation and uses this to rebuild evaluation runners after a
// restart.
func DecodeCanonicalSpec(b []byte) (*Spec, error) {
	var cs canonicalSpec
	if err := json.Unmarshal(b, &cs); err != nil {
		return nil, fmt.Errorf("workflow: decoding canonical spec: %w", err)
	}
	g := dag.New()
	profiles := make(map[string]perfmodel.Profile, len(cs.Nodes))
	groups := make(map[string]string)
	for _, n := range cs.Nodes {
		if err := g.AddNode(n.ID); err != nil {
			return nil, err
		}
		profiles[n.ID] = perfmodel.Profile{
			Name:           n.ID,
			CPUWorkMS:      n.Profile.CPUWorkMS,
			ParallelFrac:   n.Profile.ParallelFrac,
			MaxParallel:    n.Profile.MaxParallel,
			IOMS:           n.Profile.IOMS,
			FootprintMB:    n.Profile.FootprintMB,
			MinMemMB:       n.Profile.MinMemMB,
			PressureK:      n.Profile.PressureK,
			NoiseStd:       n.Profile.NoiseStd,
			InputSensitive: n.Profile.InputSensitive,
		}
		if n.Group != "" {
			groups[n.ID] = n.Group
		}
	}
	for _, e := range cs.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	base := make(resources.Assignment, len(cs.Base))
	for grp, c := range cs.Base {
		base[grp] = resources.Config{CPU: c.CPU, MemMB: c.MemMB}
	}
	spec := &Spec{
		Name:     cs.Name,
		G:        g,
		Profiles: profiles,
		Groups:   groups,
		SLOMS:    cs.SLOMS,
		Base:     base,
		Limits: resources.Limits{
			MinCPU: cs.Limits.MinCPU, MaxCPU: cs.Limits.MaxCPU, CPUStep: cs.Limits.CPUStep,
			MinMemMB: cs.Limits.MinMemMB, MaxMemMB: cs.Limits.MaxMemMB, MemStepMB: cs.Limits.MemStepMB,
		},
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Fingerprint returns "sha256:<hex>" over the spec's canonical JSON. It is
// the content-addressed identity of a workflow definition: the serving
// layer keys its recommendation cache on it (combined with the search
// options' own canonical encoding).
func Fingerprint(spec *Spec) (string, error) {
	b, err := CanonicalJSON(spec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return fmt.Sprintf("sha256:%x", sum), nil
}
