package workflow

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/simfaas"
)

// flatProfile returns a small valid profile for patch tests.
func flatProfile(name string, workMS float64) perfmodel.Profile {
	return perfmodel.Profile{
		Name: name, CPUWorkMS: workMS, ParallelFrac: 0.5, MaxParallel: 4,
		IOMS: 100, FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: 0.01,
	}
}

// patchSpec builds a connected layered-random spec with n nodes for patch
// tests and benchmarks (package-internal so it can exercise plan state).
func patchSpec(n int, seed uint64) *Spec {
	rng := rand.New(rand.NewPCG(seed, 0xbe9c))
	g := dag.NewWithCapacity(n)
	profiles := make(map[string]perfmodel.Profile, n)
	groups := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%05d", i)
		g.MustAddNode(id)
		profiles[id] = flatProfile(id, 500+float64(rng.IntN(2000)))
		groups[id] = fmt.Sprintf("g%03d", i%257)
	}
	ids := g.Nodes()
	for i := 1; i < n; i++ {
		g.MustAddEdge(ids[rng.IntN(i)], ids[i])
		for k := 0; k < 3; k++ {
			_ = g.AddEdge(ids[rng.IntN(i)], ids[i]) // ignore duplicates
		}
	}
	spec := &Spec{
		Name:     fmt.Sprintf("patch-%d-%d", n, seed),
		G:        g,
		Profiles: profiles,
		Groups:   groups,
		SLOMS:    1e9,
		Limits:   resources.DefaultLimits(),
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), resources.Config{CPU: 4, MemMB: 8192})
	return spec
}

// coldRunner builds a runner on a fresh keep-alive-free platform, so every
// invocation is cold and results are a pure function of plan + assignment.
func coldRunner(t testing.TB, spec *Spec) *Runner {
	t.Helper()
	o := simfaas.DefaultOptions()
	o.KeepAlive = false
	r, err := NewRunner(spec, RunnerOptions{Platform: simfaas.New(o)})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// checkSameResult compares two evaluation results: structure (OOM, failure
// node, per-node group/skip status, configs) exactly, float timings within
// relative 1e-9 — two plans with different dense numbering may sum floats in
// a different order.
func checkSameResult(t testing.TB, ctx string, a, b search.Result) {
	t.Helper()
	if a.OOM != b.OOM || a.Fail != b.Fail {
		t.Fatalf("%s: OOM/Fail %v/%q vs %v/%q", ctx, a.OOM, a.Fail, b.OOM, b.Fail)
	}
	if !relClose(a.E2EMS, b.E2EMS) || !relClose(a.Cost, b.Cost) {
		t.Fatalf("%s: E2E %v vs %v, cost %v vs %v", ctx, a.E2EMS, b.E2EMS, a.Cost, b.Cost)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: %d vs %d node results", ctx, len(a.Nodes), len(b.Nodes))
	}
	for id, na := range a.Nodes {
		nb, ok := b.Nodes[id]
		if !ok {
			t.Fatalf("%s: node %q missing from second result", ctx, id)
		}
		if na.Group != nb.Group || na.Skipped != nb.Skipped || na.OOM != nb.OOM || na.Config != nb.Config {
			t.Fatalf("%s: node %q structure differs: %+v vs %+v", ctx, id, na, nb)
		}
		if !relClose(na.StartMS, nb.StartMS) || !relClose(na.FinishMS, nb.FinishMS) ||
			!relClose(na.RuntimeMS, nb.RuntimeMS) || !relClose(na.Cost, nb.Cost) {
			t.Fatalf("%s: node %q timings differ: %+v vs %+v", ctx, id, na, nb)
		}
	}
}

// checkPatchAgainstRebuild asserts the patched runner matches a from-scratch
// runner compiled from the same (already mutated) spec.
func checkPatchAgainstRebuild(t *testing.T, r *Runner) {
	t.Helper()
	fresh := coldRunner(t, r.Spec().Clone())
	if err := EquivalentPlans(r, fresh); err != nil {
		t.Fatalf("patched plan != rebuilt plan: %v", err)
	}
	a := r.Base()
	got, err := r.MeanEvaluate(a)
	if err != nil {
		t.Fatalf("patched evaluate: %v", err)
	}
	want, err := fresh.MeanEvaluate(a)
	if err != nil {
		t.Fatalf("rebuilt evaluate: %v", err)
	}
	checkSameResult(t, "patched vs rebuilt", got, want)
}

func TestPatchAddNodeAndEdges(t *testing.T) {
	spec := patchSpec(60, 1)
	r := coldRunner(t, spec)
	ids := spec.G.Nodes()
	d := Delta{
		AddNodes: []NodeAdd{{ID: "extra", Group: "gnew", Profile: flatProfile("extra", 900)}},
		AddEdges: []Edge{{From: ids[3], To: "extra"}, {From: "extra", To: ids[55]}},
		Base:     resources.Assignment{"gnew": {CPU: 2, MemMB: 2048}},
	}
	if err := r.Patch(d); err != nil {
		t.Fatal(err)
	}
	checkPatchAgainstRebuild(t, r)
}

func TestPatchRemoveNode(t *testing.T) {
	g := dag.New()
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	g.MustAddEdge("a", "c")
	spec := &Spec{
		Name: "rm", G: g, SLOMS: 1e9, Limits: resources.DefaultLimits(),
		Profiles: map[string]perfmodel.Profile{
			"a": flatProfile("a", 500), "b": flatProfile("b", 800), "c": flatProfile("c", 300),
		},
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), resources.Config{CPU: 4, MemMB: 8192})
	r := coldRunner(t, spec)
	// Removing b: its incident edges are expanded by normalization, its
	// group (itself) loses its last member and its base entry is pruned.
	if err := r.Patch(Delta{RemoveNodes: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	if spec.G.HasNode("b") || spec.Profiles["b"].Name != "" {
		t.Fatal("b not fully removed from spec")
	}
	if _, ok := spec.Base["b"]; ok {
		t.Fatal("orphaned base config for b survived")
	}
	checkPatchAgainstRebuild(t, r)
}

func TestPatchOrderRepair(t *testing.T) {
	g := dag.New()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("a", "c")
	g.MustAddEdge("b", "d")
	g.MustAddEdge("c", "d")
	spec := &Spec{
		Name: "repair", G: g, SLOMS: 1e9, Limits: resources.DefaultLimits(),
		Profiles: map[string]perfmodel.Profile{
			"a": flatProfile("a", 500), "b": flatProfile("b", 800),
			"c": flatProfile("c", 600), "d": flatProfile("d", 300),
		},
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), resources.Config{CPU: 4, MemMB: 8192})
	r := coldRunner(t, spec)
	// Topo order is a,b,c,d; the edge c -> b contradicts it and forces a
	// Pearce–Kelly row relocation inside the plan.
	if err := r.Patch(Delta{AddEdges: []Edge{{From: "c", To: "b"}}}); err != nil {
		t.Fatal(err)
	}
	checkPatchAgainstRebuild(t, r)
}

func TestPatchReweight(t *testing.T) {
	spec := patchSpec(40, 2)
	r := coldRunner(t, spec)
	id := spec.G.Nodes()[17]
	if err := r.Patch(Delta{Profiles: map[string]perfmodel.Profile{id: flatProfile(id, 9000)}}); err != nil {
		t.Fatal(err)
	}
	checkPatchAgainstRebuild(t, r)
}

func TestPatchCyclePoisonsRunner(t *testing.T) {
	spec := patchSpec(30, 3)
	r := coldRunner(t, spec)
	ids := spec.G.Nodes()
	// ids[0] reaches ids[29] (layered-random guarantees ancestry chains to
	// node 0), so the reverse edge closes a cycle.
	if err := r.Patch(Delta{AddEdges: []Edge{{From: ids[29], To: ids[0]}}}); err == nil {
		t.Fatal("cycle-closing patch succeeded")
	}
	if _, err := r.MeanEvaluate(r.Base()); err == nil {
		t.Fatal("poisoned runner still evaluates")
	}
	if err := r.Patch(Delta{}); err == nil {
		t.Fatal("poisoned runner accepts patches")
	}
}

func TestPatchGroupRetireAndRevive(t *testing.T) {
	g := dag.New()
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	spec := &Spec{
		Name: "revive", G: g, SLOMS: 1e9, Limits: resources.DefaultLimits(),
		Profiles: map[string]perfmodel.Profile{
			"a": flatProfile("a", 500), "b": flatProfile("b", 800), "c": flatProfile("c", 300),
		},
		Groups: map[string]string{"b": "shared"},
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), resources.Config{CPU: 4, MemMB: 8192})
	r := coldRunner(t, spec)
	if err := r.Patch(Delta{RemoveNodes: []string{"b"}, AddEdges: []Edge{{From: "a", To: "c"}}}); err != nil {
		t.Fatal(err)
	}
	checkPatchAgainstRebuild(t, r)
	// Revive the retired group with a new member reusing the tombstoned row.
	d := Delta{
		AddNodes: []NodeAdd{{ID: "b2", Group: "shared", Profile: flatProfile("b2", 700)}},
		AddEdges: []Edge{{From: "a", To: "b2"}, {From: "b2", To: "c"}},
		Base:     resources.Assignment{"shared": {CPU: 2, MemMB: 2048}},
	}
	if err := r.Patch(d); err != nil {
		t.Fatal(err)
	}
	checkPatchAgainstRebuild(t, r)
}

func TestSpecCloneIndependent(t *testing.T) {
	spec := patchSpec(20, 4)
	c := spec.Clone()
	if err := c.Apply(Delta{RemoveNodes: []string{spec.G.Nodes()[10]}}); err != nil {
		t.Fatal(err)
	}
	if spec.G.NumNodes() != 20 || c.G.NumNodes() != 19 {
		t.Fatalf("clone not independent: %d/%d nodes", spec.G.NumNodes(), c.G.NumNodes())
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPatchRandomDeltasMatchRebuild drives a runner through a stream of
// random structured deltas and, after every step, checks the patched plan
// against a from-scratch compile of the same spec (the in-package complement
// to the full differential harness in internal/testutil).
func TestPatchRandomDeltasMatchRebuild(t *testing.T) {
	spec := patchSpec(120, 5)
	r := coldRunner(t, spec)
	rng := rand.New(rand.NewPCG(99, 0x9a7c4))
	next := 0
	for step := 0; step < 60; step++ {
		ids := spec.G.Nodes()
		var d Delta
		switch rng.IntN(4) {
		case 0: // insert a node between an edge's endpoints
			u := ids[rng.IntN(len(ids))]
			ss := spec.G.Succ(u)
			if len(ss) == 0 {
				continue
			}
			v := ss[rng.IntN(len(ss))]
			id := fmt.Sprintf("mid%04d", next)
			next++
			d = Delta{
				AddNodes: []NodeAdd{{ID: id, Profile: flatProfile(id, 400)}},
				AddEdges: []Edge{{From: u, To: id}, {From: id, To: v}},
				Base:     resources.Assignment{id: {CPU: 2, MemMB: 2048}},
			}
		case 1: // remove an interior node, bridging preds to succs
			id := ids[1+rng.IntN(len(ids)-1)]
			preds, succs := spec.G.Pred(id), spec.G.Succ(id)
			if len(preds) == 0 || len(succs) == 0 {
				continue
			}
			d = Delta{RemoveNodes: []string{id}}
			for _, p := range preds {
				for _, s := range succs {
					if !hasEdge(spec.G, p, s) {
						d.AddEdges = append(d.AddEdges, Edge{From: p, To: s})
					}
				}
			}
		case 2: // safe extra edge
			u, v := ids[rng.IntN(len(ids))], ids[rng.IntN(len(ids))]
			if u == v || hasEdge(spec.G, u, v) || spec.G.HasPath(v, u) {
				continue
			}
			d = Delta{AddEdges: []Edge{{From: u, To: v}}}
		default: // reweight
			id := ids[rng.IntN(len(ids))]
			d = Delta{Profiles: map[string]perfmodel.Profile{id: flatProfile(id, 100+float64(rng.IntN(5000)))}}
		}
		if err := r.Patch(d); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%10 == 9 {
			checkPatchAgainstRebuild(t, r)
		}
	}
	checkPatchAgainstRebuild(t, r)
}

func hasEdge(g *dag.Graph, u, v string) bool {
	for _, s := range g.Succ(u) {
		if s == v {
			return true
		}
	}
	return false
}
