package workflow_test

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"aarc/internal/perfmodel"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// FuzzMutate drives a generated workflow through an arbitrary mutation
// script (one churn primitive per script byte) and asserts the identity
// invariants the serving layer depends on after every applied delta:
//
//   - the mutated spec still validates,
//   - canonicalize → decode → canonicalize is byte-exact,
//   - the fingerprint is a pure function of the canonical bytes: it changes
//     exactly when the canonical bytes change,
//   - Validate never accepts a cyclic mutation result (a forced back-edge
//     must be caught at Apply or Validate time).
func FuzzMutate(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4})
	f.Add(uint64(7), []byte{3, 3, 0, 2, 1, 4, 0})
	f.Add(uint64(42), []byte("churn the plan"))
	f.Add(uint64(1234), []byte{4, 4, 4})

	f.Fuzz(func(t *testing.T, seed uint64, script []byte) {
		if len(script) > 48 {
			script = script[:48]
		}
		topos := workloads.Topologies()
		spec, err := workloads.Scale(workloads.ScaleOptions{
			Topology: topos[int(seed%uint64(len(topos)))],
			Nodes:    20 + int(seed%30),
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(seed, 0xfa22))
		prevCanon, err := workflow.CanonicalJSON(spec)
		if err != nil {
			t.Fatal(err)
		}
		prevFP, err := workflow.Fingerprint(spec)
		if err != nil {
			t.Fatal(err)
		}

		for i, op := range script {
			var d workflow.Delta
			switch op % 5 {
			case 0:
				d, err = workloads.AddRandomNodes(spec, rng, 1)
			case 1:
				d, err = workloads.DeleteRandomNodes(spec, rng, 1)
			case 2:
				d, err = workloads.RewireRandomEdges(spec, rng, 1)
			case 3:
				ids := spec.G.Nodes()
				id := ids[rng.IntN(len(ids))]
				p := spec.Profiles[id]
				p.CPUWorkMS *= 0.5 + rng.Float64()
				d.Profiles = map[string]perfmodel.Profile{id: p}
			default:
				// Forced cycle attempt on a throwaway clone: reversing an
				// existing edge u→v closes a 2-cycle. Either Apply rejects it
				// or Validate must.
				clone := spec.Clone()
				ids := clone.G.Nodes()
				u := ids[rng.IntN(len(ids))]
				succs := clone.G.Succ(u)
				if len(succs) == 0 {
					continue
				}
				v := succs[rng.IntN(len(succs))]
				back := workflow.Delta{AddEdges: []workflow.Edge{{From: v, To: u}}}
				if err := clone.Apply(back); err == nil {
					if err := clone.Validate(); err == nil {
						t.Fatalf("op %d: Validate accepted cyclic spec after adding %s->%s", i, v, u)
					}
				}
				continue
			}
			if err != nil {
				t.Fatalf("op %d (%d): %v", i, op%5, err)
			}
			if d.Empty() {
				continue
			}
			if err := spec.Apply(d); err != nil {
				t.Fatalf("op %d (%d): apply: %v", i, op%5, err)
			}
			if err := spec.Validate(); err != nil {
				t.Fatalf("op %d (%d): mutated spec invalid: %v", i, op%5, err)
			}
			canon, err := workflow.CanonicalJSON(spec)
			if err != nil {
				t.Fatalf("op %d: canonicalize: %v", i, err)
			}
			decoded, err := workflow.DecodeCanonicalSpec(canon)
			if err != nil {
				t.Fatalf("op %d: decode canonical: %v", i, err)
			}
			again, err := workflow.CanonicalJSON(decoded)
			if err != nil {
				t.Fatalf("op %d: re-canonicalize: %v", i, err)
			}
			if !bytes.Equal(canon, again) {
				t.Fatalf("op %d: canonical round trip not byte-exact:\n%s\nvs\n%s", i, canon, again)
			}
			fp, err := workflow.Fingerprint(spec)
			if err != nil {
				t.Fatalf("op %d: fingerprint: %v", i, err)
			}
			if canonChanged, fpChanged := !bytes.Equal(canon, prevCanon), fp != prevFP; canonChanged != fpChanged {
				t.Fatalf("op %d: canonical changed=%v but fingerprint changed=%v", i, canonChanged, fpChanged)
			}
			prevCanon, prevFP = canon, fp
		}
	})
}
