package workflow

import (
	"bytes"
	"strings"
	"testing"

	"aarc/internal/resources"
)

const sampleSpecJSON = `{
  "name": "etl",
  "slo_ms": 60000,
  "nodes": [
    {"id": "in",  "profile": {"cpu_work_ms": 1000, "parallel_frac": 0, "footprint_mb": 256, "min_mem_mb": 128}},
    {"id": "w1",  "group": "work", "profile": {"cpu_work_ms": 8000, "parallel_frac": 0.5, "max_parallel": 8, "footprint_mb": 512, "min_mem_mb": 256}},
    {"id": "w2",  "group": "work", "profile": {"cpu_work_ms": 8000, "parallel_frac": 0.5, "max_parallel": 8, "footprint_mb": 512, "min_mem_mb": 256}},
    {"id": "out", "profile": {"cpu_work_ms": 500, "parallel_frac": 0, "footprint_mb": 256, "min_mem_mb": 128}}
  ],
  "edges": [["in","w1"],["in","w2"],["w1","out"],["w2","out"]],
  "base": {"cpu": 4, "mem_mb": 2048}
}`

func TestDecodeSpec(t *testing.T) {
	spec, err := DecodeSpec(strings.NewReader(sampleSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "etl" || spec.SLOMS != 60000 {
		t.Errorf("header: %s %v", spec.Name, spec.SLOMS)
	}
	if spec.G.NumNodes() != 4 || spec.G.NumEdges() != 4 {
		t.Errorf("graph: %d nodes %d edges", spec.G.NumNodes(), spec.G.NumEdges())
	}
	groups := spec.FunctionGroups()
	if len(groups) != 3 {
		t.Errorf("groups = %v, want in/out/work", groups)
	}
	if spec.GroupOf("w2") != "work" {
		t.Error("group mapping lost")
	}
	// Default limits apply when omitted.
	if spec.Limits != resources.DefaultLimits() {
		t.Errorf("limits = %+v", spec.Limits)
	}
	// The decoded spec is executable.
	r, err := NewRunner(spec, RunnerOptions{HostCores: 96})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Evaluate(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if res.E2EMS <= 0 {
		t.Error("decoded spec should execute")
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"syntax", `{"name": }`},
		{"unknown field", `{"name":"x","bogus":1}`},
		{"duplicate node", `{"name":"x","slo_ms":1000,"nodes":[{"id":"a","profile":{"footprint_mb":256,"min_mem_mb":128}},{"id":"a","profile":{"footprint_mb":256,"min_mem_mb":128}}],"edges":[],"base":{"cpu":1,"mem_mb":512}}`},
		{"unknown edge endpoint", `{"name":"x","slo_ms":1000,"nodes":[{"id":"a","profile":{"footprint_mb":256,"min_mem_mb":128}}],"edges":[["a","zz"]],"base":{"cpu":1,"mem_mb":512}}`},
		{"missing slo", `{"name":"x","nodes":[{"id":"a","profile":{"footprint_mb":256,"min_mem_mb":128}}],"edges":[],"base":{"cpu":1,"mem_mb":512}}`},
		{"invalid base", `{"name":"x","slo_ms":1000,"nodes":[{"id":"a","profile":{"footprint_mb":256,"min_mem_mb":128}}],"edges":[],"base":{"cpu":0,"mem_mb":0}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeSpec(strings.NewReader(c.json)); err == nil {
				t.Errorf("expected error for %s", c.name)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	spec, err := DecodeSpec(strings.NewReader(sampleSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(&buf)
	if err != nil {
		t.Fatalf("re-decode: %v\n%s", err, buf.String())
	}
	if back.Name != spec.Name || back.SLOMS != spec.SLOMS {
		t.Error("header lost in round trip")
	}
	if back.G.NumNodes() != spec.G.NumNodes() || back.G.NumEdges() != spec.G.NumEdges() {
		t.Error("graph lost in round trip")
	}
	if back.GroupOf("w1") != "work" {
		t.Error("groups lost in round trip")
	}
	for _, id := range spec.G.Nodes() {
		if back.Profiles[id] != spec.Profiles[id] {
			t.Errorf("profile %s changed: %+v vs %+v", id, back.Profiles[id], spec.Profiles[id])
		}
	}
}

func TestEncodeSpecRejectsInvalid(t *testing.T) {
	spec, _ := DecodeSpec(strings.NewReader(sampleSpecJSON))
	spec.SLOMS = 0
	var buf bytes.Buffer
	if err := EncodeSpec(&buf, spec); err == nil {
		t.Error("invalid spec should not encode")
	}
}
