package workflow

import (
	"sort"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/search"
)

// plan is the compiled, int-indexed execution form of a Spec. NewRunner
// builds it once; every Evaluate then walks dense slices instead of
// re-deriving topo order and re-hashing string node IDs. Dense node IDs are
// topological positions, so iterating 0..n-1 is already a valid schedule
// order and the ready queue can order nodes by comparing ints.
//
// A freshly compiled plan is hole-free: row i holds the i-th node of the
// topological sort. plan.patch (see patch.go) edits the plan in place under
// spec churn: removed nodes leave tombstoned rows (ids[i] == "" and
// indeg0[i] == -1, so the ready-seeding `d == 0` scan skips them for free),
// added nodes reuse tombstones or append rows, and a Pearce–Kelly order
// repair relocates rows. Live row positions always form a valid topological
// order. All per-evaluation mutable state lives in the runner's scratch
// arena; a patched plan must be owned by exactly one runner.
type plan struct {
	ids      []string            // dense node ID -> spec node ID ("" = hole)
	groups   []string            // dense node ID -> group name
	groupIdx []int32             // dense node ID -> dense group index
	profiles []perfmodel.Profile // dense node ID -> performance profile
	succs    [][]int32           // dense node ID -> successor dense IDs
	indeg0   []int32             // dense node ID -> predecessor count (-1 = hole)

	groupNames []string         // dense group index -> name (compile: sorted)
	groupNode  []string         // dense group index -> one member, for errors
	groupLive  []int32          // dense group index -> live member count
	gidx       map[string]int32 // group name -> dense group index

	// ord maintains the row positions under churn (lazily created on the
	// first patch; until then the topo order in ids is authoritative).
	ord *dag.Order
	// sweepBuf is the reusable indegree scratch for the post-patch sweep.
	sweepBuf []int32
}

// compilePlan flattens a validated spec into the dense execution plan.
func compilePlan(spec *Spec) (*plan, error) {
	topo, err := spec.G.TopoSort()
	if err != nil {
		return nil, err
	}
	n := len(topo)
	idx := make(map[string]int32, n)
	for i, id := range topo {
		idx[id] = int32(i)
	}

	groupNames := spec.FunctionGroups()
	gidx := make(map[string]int32, len(groupNames))
	for i, g := range groupNames {
		gidx[g] = int32(i)
	}

	p := &plan{
		ids:        topo,
		groups:     make([]string, n),
		groupIdx:   make([]int32, n),
		profiles:   make([]perfmodel.Profile, n),
		succs:      make([][]int32, n),
		indeg0:     make([]int32, n),
		groupNames: groupNames,
		groupNode:  make([]string, len(groupNames)),
		groupLive:  make([]int32, len(groupNames)),
		gidx:       gidx,
	}
	for i, id := range topo {
		g := spec.GroupOf(id)
		p.groups[i] = g
		p.groupIdx[i] = gidx[g]
		if p.groupNode[gidx[g]] == "" {
			p.groupNode[gidx[g]] = id
		}
		p.groupLive[gidx[g]]++
		p.profiles[i] = spec.Profiles[id]
		p.indeg0[i] = int32(len(spec.G.Pred(id)))
		succ := spec.G.Succ(id)
		if len(succ) > 0 {
			ds := make([]int32, len(succ))
			for j, s := range succ {
				ds[j] = idx[s]
			}
			p.succs[i] = ds
		}
	}
	return p, nil
}

// Node execution states tracked in the scratch arena.
const (
	stNotStarted uint8 = iota
	stRunning
	stFinished
	stSkipped
)

// runItem is one running invocation in the event heap. deadline is on the
// virtual-work clock (see evaluate), so it is assigned once at start and
// never rewritten — the heap needs no rescans when the running set changes.
type runItem struct {
	deadline float64
	node     int32
}

// runHeap is a binary min-heap of running invocations ordered by deadline,
// ties broken by topological index so batches finish in deterministic order.
// It is hand-rolled over a reusable slice (container/heap would box every
// element through the interface).
type runHeap []runItem

func (h runHeap) less(i, j int) bool {
	return h[i].deadline < h[j].deadline ||
		(h[i].deadline == h[j].deadline && h[i].node < h[j].node)
}

func (h *runHeap) push(it runItem) {
	*h = append(*h, it)
	q := *h
	for i := len(q) - 1; i > 0; {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *runHeap) pop() runItem {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	*h = q
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q) && q.less(l, m) {
			m = l
		}
		if r < len(q) && q.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	return top
}

// scratch is the reusable per-runner arena: every slice is sized to the plan
// on first use and only reset (never reallocated) on subsequent evaluations,
// so a steady-state Evaluate performs no heap allocations beyond the result
// map it hands back to the caller. The arena is what makes a Runner unsafe
// for concurrent use.
type scratch struct {
	indeg   []int32 // remaining predecessor count per node
	state   []uint8 // execution state per node
	nodeRes []search.NodeResult
	ready   []int32 // ready nodes, ascending topo index
	heap    runHeap
	cfgs    []resources.Config // resolved config per dense group index
}

func (s *scratch) reset(p *plan) {
	n := len(p.ids)
	if cap(s.indeg) < n {
		s.indeg = make([]int32, n)
		s.state = make([]uint8, n)
		s.nodeRes = make([]search.NodeResult, n)
	}
	s.indeg = s.indeg[:n]
	copy(s.indeg, p.indeg0)
	s.state = s.state[:n]
	clear(s.state)
	s.nodeRes = s.nodeRes[:n]
	clear(s.nodeRes)
	s.ready = s.ready[:0]
	s.heap = s.heap[:0]
	s.cfgs = s.cfgs[:0]
}

// pushReady inserts node n keeping the queue sorted by topo index, so nodes
// released by the same event start in the same deterministic order the
// string-keyed implementation used.
func pushReady(q []int32, n int32) []int32 {
	i := sort.Search(len(q), func(i int) bool { return q[i] > n })
	q = append(q, 0)
	copy(q[i+1:], q[i:])
	q[i] = n
	return q
}
