package workflow

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

// LoadSpec reads a JSON workflow definition from a file (see DecodeSpec for
// the format).
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSpec(f)
}

// specJSON is the on-disk workflow definition format accepted by
// DecodeSpec: the shape a developer submits to the platform (step ❶ of
// Fig. 4), with profile metadata standing in for real function code.
//
//	{
//	  "name": "my-workflow",
//	  "slo_ms": 120000,
//	  "nodes": [
//	    {"id": "start", "profile": {...}},
//	    {"id": "work_1", "group": "work", "profile": {...}}
//	  ],
//	  "edges": [["start", "work_1"]],
//	  "base": {"cpu": 4, "mem_mb": 4096},
//	  "limits": {...}          // optional, defaults to the paper grid
//	}
type specJSON struct {
	Name   string      `json:"name"`
	SLOMS  float64     `json:"slo_ms"`
	Nodes  []nodeJSON  `json:"nodes"`
	Edges  [][2]string `json:"edges"`
	Base   configJSON  `json:"base"`
	Limits *limitsJSON `json:"limits,omitempty"`
}

type nodeJSON struct {
	ID      string      `json:"id"`
	Group   string      `json:"group,omitempty"`
	Profile profileJSON `json:"profile"`
}

type profileJSON struct {
	CPUWorkMS      float64 `json:"cpu_work_ms"`
	ParallelFrac   float64 `json:"parallel_frac"`
	MaxParallel    float64 `json:"max_parallel,omitempty"`
	IOMS           float64 `json:"io_ms,omitempty"`
	FootprintMB    float64 `json:"footprint_mb"`
	MinMemMB       float64 `json:"min_mem_mb"`
	PressureK      float64 `json:"pressure_k,omitempty"`
	NoiseStd       float64 `json:"noise_std,omitempty"`
	InputSensitive bool    `json:"input_sensitive,omitempty"`
}

type configJSON struct {
	CPU   float64 `json:"cpu"`
	MemMB float64 `json:"mem_mb"`
}

type limitsJSON struct {
	MinCPU    float64 `json:"min_cpu"`
	MaxCPU    float64 `json:"max_cpu"`
	CPUStep   float64 `json:"cpu_step"`
	MinMemMB  float64 `json:"min_mem_mb"`
	MaxMemMB  float64 `json:"max_mem_mb"`
	MemStepMB float64 `json:"mem_step_mb"`
}

// DecodeSpec parses a JSON workflow definition and validates it.
func DecodeSpec(r io.Reader) (*Spec, error) {
	var sj specJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sj); err != nil {
		return nil, fmt.Errorf("workflow: decoding spec: %w", err)
	}

	g := dag.New()
	profiles := make(map[string]perfmodel.Profile, len(sj.Nodes))
	groups := make(map[string]string)
	for _, n := range sj.Nodes {
		if err := g.AddNode(n.ID); err != nil {
			return nil, err
		}
		profiles[n.ID] = perfmodel.Profile{
			Name:           n.ID,
			CPUWorkMS:      n.Profile.CPUWorkMS,
			ParallelFrac:   n.Profile.ParallelFrac,
			MaxParallel:    n.Profile.MaxParallel,
			IOMS:           n.Profile.IOMS,
			FootprintMB:    n.Profile.FootprintMB,
			MinMemMB:       n.Profile.MinMemMB,
			PressureK:      n.Profile.PressureK,
			NoiseStd:       n.Profile.NoiseStd,
			InputSensitive: n.Profile.InputSensitive,
		}
		if n.Group != "" {
			groups[n.ID] = n.Group
		}
	}
	for _, e := range sj.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}

	lim := resources.DefaultLimits()
	if sj.Limits != nil {
		lim = resources.Limits{
			MinCPU: sj.Limits.MinCPU, MaxCPU: sj.Limits.MaxCPU, CPUStep: sj.Limits.CPUStep,
			MinMemMB: sj.Limits.MinMemMB, MaxMemMB: sj.Limits.MaxMemMB, MemStepMB: sj.Limits.MemStepMB,
		}
	}

	spec := &Spec{
		Name:     sj.Name,
		G:        g,
		Profiles: profiles,
		Groups:   groups,
		SLOMS:    sj.SLOMS,
		Limits:   lim,
	}
	base := resources.Config{CPU: sj.Base.CPU, MemMB: sj.Base.MemMB}
	spec.Base = resources.Uniform(spec.FunctionGroups(), base)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// EncodeSpec writes the spec in the DecodeSpec JSON format. The uniform base
// configuration is taken from the first group (EncodeSpec is intended for
// specs built with a uniform base, as DecodeSpec produces).
func EncodeSpec(w io.Writer, spec *Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	sj := specJSON{
		Name:  spec.Name,
		SLOMS: spec.SLOMS,
	}
	for _, id := range spec.G.Nodes() {
		p := spec.Profiles[id]
		n := nodeJSON{
			ID: id,
			Profile: profileJSON{
				CPUWorkMS:      p.CPUWorkMS,
				ParallelFrac:   p.ParallelFrac,
				MaxParallel:    p.MaxParallel,
				IOMS:           p.IOMS,
				FootprintMB:    p.FootprintMB,
				MinMemMB:       p.MinMemMB,
				PressureK:      p.PressureK,
				NoiseStd:       p.NoiseStd,
				InputSensitive: p.InputSensitive,
			},
		}
		if grp := spec.Groups[id]; grp != "" && grp != id {
			n.Group = grp
		}
		sj.Nodes = append(sj.Nodes, n)
	}
	for _, from := range spec.G.Nodes() {
		for _, to := range spec.G.Succ(from) {
			sj.Edges = append(sj.Edges, [2]string{from, to})
		}
	}
	if len(spec.FunctionGroups()) > 0 {
		b := spec.Base[spec.FunctionGroups()[0]]
		sj.Base = configJSON{CPU: b.CPU, MemMB: b.MemMB}
	}
	lim := spec.Limits
	sj.Limits = &limitsJSON{
		MinCPU: lim.MinCPU, MaxCPU: lim.MaxCPU, CPUStep: lim.CPUStep,
		MinMemMB: lim.MinMemMB, MaxMemMB: lim.MaxMemMB, MemStepMB: lim.MemStepMB,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sj)
}
