package workflow

import (
	"bytes"
	"math/rand"
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

// buildPermutedSpec constructs the same logical workflow with every
// order-sensitive construction step — node insertion, edge insertion,
// and all three map populations — performed in a random permutation.
// If CanonicalJSON leaks any construction or map-iteration order, two
// permutations will disagree.
func buildPermutedSpec(rng *rand.Rand) *Spec {
	ids := []string{"ingest", "split", "embed", "rank", "merge", "emit"}
	edges := [][2]string{
		{"ingest", "split"},
		{"split", "embed"},
		{"split", "rank"},
		{"embed", "merge"},
		{"rank", "merge"},
		{"merge", "emit"},
	}
	groups := map[string]string{"embed": "workers", "rank": "workers"}

	g := dag.New()
	for _, i := range rng.Perm(len(ids)) {
		g.MustAddNode(ids[i])
	}
	for _, i := range rng.Perm(len(edges)) {
		g.MustAddEdge(edges[i][0], edges[i][1])
	}

	profiles := make(map[string]perfmodel.Profile, len(ids))
	for _, i := range rng.Perm(len(ids)) {
		id := ids[i]
		profiles[id] = perfmodel.Profile{
			Name: id, CPUWorkMS: 1000 * float64(i+1), ParallelFrac: 0.5,
			MaxParallel: 4, IOMS: 100, FootprintMB: 256, MinMemMB: 128,
			PressureK: 1,
		}
	}

	spec := &Spec{
		Name:     "permuted",
		G:        g,
		Profiles: profiles,
		Groups:   make(map[string]string, len(groups)),
		SLOMS:    30_000,
		Limits:   resources.DefaultLimits(),
	}
	gids := []string{"embed", "rank"}
	for _, i := range rng.Perm(len(gids)) {
		spec.Groups[gids[i]] = groups[gids[i]]
	}

	fgs := spec.FunctionGroups()
	base := make(resources.Assignment, len(fgs))
	for _, i := range rng.Perm(len(fgs)) {
		base[fgs[i]] = resources.Config{CPU: 4, MemMB: 2048}
	}
	spec.Base = base
	return spec
}

// TestCanonicalJSONByteStableUnderMapOrderPerturbation is the detcanon
// regression test: 100 independently permuted constructions of the same
// workflow must canonicalize to byte-identical JSON, and therefore to
// one fingerprint. A single differing byte here splits the cache.
func TestCanonicalJSONByteStableUnderMapOrderPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(0xaa2c))
	ref, err := CanonicalJSON(buildPermutedSpec(rng))
	if err != nil {
		t.Fatal(err)
	}
	refFP, err := Fingerprint(buildPermutedSpec(rng))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 100; run++ {
		spec := buildPermutedSpec(rng)
		got, err := CanonicalJSON(spec)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("run %d: canonical bytes diverged\nref: %s\ngot: %s", run, ref, got)
		}
		fp, err := Fingerprint(spec)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if fp != refFP {
			t.Fatalf("run %d: fingerprint diverged: %s vs %s", run, fp, refFP)
		}
	}
}

// TestCanonicalRoundTripStableUnderPerturbation: decoding canonical
// bytes and re-canonicalizing must reproduce them exactly, for any
// construction order — the property the restart/warm-start path
// depends on.
func TestCanonicalRoundTripStableUnderPerturbation(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for run := 0; run < 20; run++ {
		b, err := CanonicalJSON(buildPermutedSpec(rng))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := DecodeCanonicalSpec(b)
		if err != nil {
			t.Fatalf("run %d: decode: %v", run, err)
		}
		b2, err := CanonicalJSON(spec)
		if err != nil {
			t.Fatalf("run %d: re-encode: %v", run, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("run %d: round trip not byte-exact\nfirst:  %s\nsecond: %s", run, b, b2)
		}
	}
}
