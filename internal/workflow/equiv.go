package workflow

import (
	"fmt"
	"sort"
)

// EquivalentPlans checks that two runners' compiled plans describe the same
// workflow: the same live node set, and per node the same group, profile,
// indegree and successor set. Dense numbering is allowed to differ — a
// patched plan keeps stable row slots while a fresh compile renumbers from
// the topological sort — so the comparison is by node ID. The differential
// harness uses it to assert that an incrementally patched plan is
// semantically identical to a from-scratch compile of the same spec.
func EquivalentPlans(a, b *Runner) error {
	pa, pb := a.plan, b.plan
	if err := pa.sweep(); err != nil {
		return fmt.Errorf("first plan invalid: %w", err)
	}
	if err := pb.sweep(); err != nil {
		return fmt.Errorf("second plan invalid: %w", err)
	}
	rowA := liveRows(pa)
	rowB := liveRows(pb)
	if len(rowA) != len(rowB) {
		return fmt.Errorf("plans have %d vs %d live nodes", len(rowA), len(rowB))
	}
	for id, ia := range rowA {
		ib, ok := rowB[id]
		if !ok {
			return fmt.Errorf("node %q only in first plan", id)
		}
		if pa.groups[ia] != pb.groups[ib] {
			return fmt.Errorf("node %q: group %q vs %q", id, pa.groups[ia], pb.groups[ib])
		}
		if pa.profiles[ia] != pb.profiles[ib] {
			return fmt.Errorf("node %q: profiles differ", id)
		}
		if pa.indeg0[ia] != pb.indeg0[ib] {
			return fmt.Errorf("node %q: indegree %d vs %d", id, pa.indeg0[ia], pb.indeg0[ib])
		}
		sa := succIDs(pa, ia)
		sb := succIDs(pb, ib)
		if len(sa) != len(sb) {
			return fmt.Errorf("node %q: %d vs %d successors", id, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return fmt.Errorf("node %q: successor sets differ (%v vs %v)", id, sa, sb)
			}
		}
	}
	ga := liveGroupSet(pa)
	gb := liveGroupSet(pb)
	if len(ga) != len(gb) {
		return fmt.Errorf("plans have %d vs %d live groups", len(ga), len(gb))
	}
	for g := range ga {
		if !gb[g] {
			return fmt.Errorf("group %q only in first plan", g)
		}
	}
	return nil
}

func liveRows(p *plan) map[string]int {
	out := make(map[string]int, len(p.ids))
	for i, id := range p.ids {
		if id != "" {
			out[id] = i
		}
	}
	return out
}

func succIDs(p *plan, row int) []string {
	out := make([]string, 0, len(p.succs[row]))
	for _, e := range p.succs[row] {
		out = append(out, p.ids[e])
	}
	sort.Strings(out)
	return out
}

func liveGroupSet(p *plan) map[string]bool {
	out := make(map[string]bool, len(p.groupNames))
	for gi, g := range p.groupNames {
		if p.groupLive[gi] > 0 {
			out[g] = true
		}
	}
	return out
}
