// Package inputaware implements the §IV-D Input-Aware Configuration Engine
// plugin: for input-sensitive workflows (Video Analysis in the paper), the
// engine analyzes input characteristics (bitrate, duration — abstracted here
// as an input scale), sorts inputs into size classes, runs the Graph-Centric
// Scheduler + Priority Configurator once per class, and dispatches each
// arriving request to the configuration of its class.
package inputaware

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/workflow"
)

// Class is one input-size class with a representative scale factor that
// multiplies the workflow's input-sensitive work, I/O and memory footprints.
type Class struct {
	Name  string
	Scale float64
}

// DefaultVideoClasses returns the light / middle / heavy classes of the
// paper's Video Analysis experiment.
func DefaultVideoClasses() []Class {
	return []Class{
		{Name: "light", Scale: 0.4},
		{Name: "middle", Scale: 1.0},
		{Name: "heavy", Scale: 1.6},
	}
}

// Request is one incoming invocation with its analyzed input scale.
type Request struct {
	ID    int
	Scale float64
}

// Engine holds per-class configurations for one workflow and dispatches
// requests to them.
type Engine struct {
	classes []Class                         // sorted ascending by scale
	configs map[string]resources.Assignment // class name -> assignment
	traces  map[string]*search.Trace        // class name -> search trace
}

// Configure profiles and configures the workflow once per input class using
// the given searcher (AARC in the paper; any search.Searcher works). The
// runner's spec must be input-sensitive for per-class configs to differ.
// Configure consumes simulated time: the per-class search traces are
// retained for accounting.
//
// The context and search options apply to every per-class search
// (sopts.SLOMS defaults to the spec's SLO when zero); cancelling ctx aborts
// the remaining classes and returns ctx.Err().
func Configure(ctx context.Context, spec *workflow.Spec, opts workflow.RunnerOptions, searcher search.Searcher, sopts search.Options, classes []Class) (*Engine, error) {
	if len(classes) == 0 {
		return nil, errors.New("inputaware: need at least one input class")
	}
	if sopts.SLOMS <= 0 {
		sopts.SLOMS = spec.SLOMS
	}
	e := &Engine{
		classes: append([]Class(nil), classes...),
		configs: make(map[string]resources.Assignment, len(classes)),
		traces:  make(map[string]*search.Trace, len(classes)),
	}
	sort.Slice(e.classes, func(i, j int) bool { return e.classes[i].Scale < e.classes[j].Scale })

	for _, cls := range e.classes {
		if cls.Scale <= 0 {
			return nil, fmt.Errorf("inputaware: class %q has non-positive scale %v", cls.Name, cls.Scale)
		}
		o := opts
		o.InputScale = cls.Scale
		runner, err := workflow.NewRunner(spec, o)
		if err != nil {
			return nil, err
		}
		outcome, err := searcher.Search(ctx, runner, sopts)
		if err != nil {
			return nil, fmt.Errorf("inputaware: configuring class %q: %w", cls.Name, err)
		}
		e.configs[cls.Name] = outcome.Best
		e.traces[cls.Name] = outcome.Trace
	}
	return e, nil
}

// Classes returns the engine's classes sorted ascending by scale.
func (e *Engine) Classes() []Class { return append([]Class(nil), e.classes...) }

// Config returns the assignment configured for a class name.
func (e *Engine) Config(class string) (resources.Assignment, bool) {
	a, ok := e.configs[class]
	return a, ok
}

// Trace returns the search trace recorded while configuring a class.
func (e *Engine) Trace(class string) (*search.Trace, bool) {
	t, ok := e.traces[class]
	return t, ok
}

// Classify maps an analyzed input scale to the smallest class that covers
// it (first class whose scale is >= the input's), falling back to the
// largest class for oversized inputs. Covering from above keeps the SLO safe
// at the price of slight over-provisioning within a class.
func (e *Engine) Classify(scale float64) Class {
	for _, c := range e.classes {
		if c.Scale >= scale-1e-9 {
			return c
		}
	}
	return e.classes[len(e.classes)-1]
}

// Dispatch returns the configuration for one request.
func (e *Engine) Dispatch(req Request) (Class, resources.Assignment) {
	cls := e.Classify(req.Scale)
	return cls, e.configs[cls.Name]
}

// TotalSearchRuntimeMS sums the simulated time spent configuring all
// classes (the plugin's offline cost).
func (e *Engine) TotalSearchRuntimeMS() float64 {
	s := 0.0
	for _, t := range e.traces {
		s += t.TotalRuntimeMS()
	}
	return s
}
