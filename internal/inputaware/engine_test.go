package inputaware

import (
	"context"
	"testing"

	"aarc/internal/core"
	"aarc/internal/search"
	"aarc/internal/testutil"
	"aarc/internal/workflow"
)

// sensitizedChain makes the test chain input-sensitive so per-class configs
// can differ.
func sensitizedChain(slo float64) *workflow.Spec {
	spec := testutil.ChainSpec(slo)
	for id, p := range spec.Profiles {
		p.InputSensitive = true
		spec.Profiles[id] = p
	}
	return spec
}

func quickClasses() []Class {
	return []Class{{Name: "small", Scale: 0.5}, {Name: "big", Scale: 1.5}}
}

func configuredEngine(t *testing.T) *Engine {
	t.Helper()
	spec := sensitizedChain(120_000)
	e, err := Configure(context.Background(), spec,
		workflow.RunnerOptions{HostCores: 96, Noise: true, Seed: 5},
		core.New(core.DefaultOptions()),
		search.Options{SLOMS: spec.SLOMS},
		quickClasses())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigureErrors(t *testing.T) {
	spec := sensitizedChain(120_000)
	opts := workflow.RunnerOptions{HostCores: 96, Seed: 1}
	if _, err := Configure(context.Background(), spec, opts, core.New(core.DefaultOptions()), search.Options{}, nil); err == nil {
		t.Error("no classes should error")
	}
	bad := []Class{{Name: "zero", Scale: 0}}
	if _, err := Configure(context.Background(), spec, opts, core.New(core.DefaultOptions()), search.Options{}, bad); err == nil {
		t.Error("non-positive scale should error")
	}
}

func TestDefaultVideoClasses(t *testing.T) {
	cls := DefaultVideoClasses()
	if len(cls) != 3 || cls[0].Name != "light" || cls[2].Name != "heavy" {
		t.Errorf("classes = %v", cls)
	}
	for i := 1; i < len(cls); i++ {
		if cls[i].Scale <= cls[i-1].Scale {
			t.Error("classes should have increasing scales")
		}
	}
}

func TestEngineHoldsPerClassConfigs(t *testing.T) {
	e := configuredEngine(t)
	for _, cls := range quickClasses() {
		cfg, ok := e.Config(cls.Name)
		if !ok || len(cfg) == 0 {
			t.Errorf("missing config for %s", cls.Name)
		}
		tr, ok := e.Trace(cls.Name)
		if !ok || tr.Len() == 0 {
			t.Errorf("missing trace for %s", cls.Name)
		}
	}
	if _, ok := e.Config("nope"); ok {
		t.Error("unknown class should report !ok")
	}
	if e.TotalSearchRuntimeMS() <= 0 {
		t.Error("total search runtime should be positive")
	}
	if got := e.Classes(); len(got) != 2 || got[0].Scale > got[1].Scale {
		t.Errorf("Classes = %v", got)
	}
}

func TestClassify(t *testing.T) {
	e := configuredEngine(t)
	cases := []struct {
		scale float64
		want  string
	}{
		{0.1, "small"},
		{0.5, "small"},
		{0.6, "big"},
		{1.5, "big"},
		{99, "big"}, // oversized falls back to the largest class
	}
	for _, c := range cases {
		if got := e.Classify(c.scale); got.Name != c.want {
			t.Errorf("Classify(%v) = %s, want %s", c.scale, got.Name, c.want)
		}
	}
}

func TestDispatch(t *testing.T) {
	e := configuredEngine(t)
	cls, cfg := e.Dispatch(Request{ID: 1, Scale: 0.3})
	if cls.Name != "small" || len(cfg) == 0 {
		t.Errorf("Dispatch = %v %v", cls, cfg)
	}
	// Dispatched config matches the class's stored config.
	stored, _ := e.Config("small")
	if !cfg.Equal(stored) {
		t.Error("dispatched config differs from stored config")
	}
}

// The point of the plugin: the heavy-class configuration sustains heavy
// inputs within SLO, and the light-class configuration is cheaper.
func TestPerClassConfigsAreUseful(t *testing.T) {
	spec := sensitizedChain(120_000)
	e, err := Configure(context.Background(), spec,
		workflow.RunnerOptions{HostCores: 96, Noise: true, Seed: 5},
		core.New(core.DefaultOptions()),
		search.Options{SLOMS: spec.SLOMS},
		quickClasses())
	if err != nil {
		t.Fatal(err)
	}
	runner := testutil.NewRunner(t, spec, true, 6)

	smallCfg, _ := e.Config("small")
	bigCfg, _ := e.Config("big")

	smallRes, err := runner.EvaluateScale(smallCfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bigRes, err := runner.EvaluateScale(bigCfg, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if smallRes.OOM || smallRes.E2EMS > spec.SLOMS {
		t.Errorf("small class violates SLO: %+v", smallRes.E2EMS)
	}
	if bigRes.OOM || bigRes.E2EMS > spec.SLOMS {
		t.Errorf("big class violates SLO: %+v", bigRes.E2EMS)
	}
	// The light config on light input costs less than the heavy config on
	// light input (that is the saving the engine exists for).
	heavyOnLight, err := runner.EvaluateScale(bigCfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if smallRes.Cost > heavyOnLight.Cost {
		t.Errorf("light-class config should be cheaper on light input: %.0f vs %.0f",
			smallRes.Cost, heavyOnLight.Cost)
	}
}
