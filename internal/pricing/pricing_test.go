package pricing

import (
	"math"
	"testing"
	"testing/quick"

	"aarc/internal/resources"
)

func TestPaperConstants(t *testing.T) {
	m := Paper()
	if m.PerVCPU != 0.512 || m.PerMB != 0.001 || m.PerInvocation != 0 {
		t.Errorf("Paper() = %+v, want µ0=0.512 µ1=0.001 µ2=0", m)
	}
}

func TestRateInvocation(t *testing.T) {
	m := Paper()
	cfg := resources.Config{CPU: 2, MemMB: 1024}
	wantRate := 0.512*2 + 0.001*1024
	if got := m.Rate(cfg); !almost(got, wantRate, 1e-12) {
		t.Errorf("Rate = %v, want %v", got, wantRate)
	}
	if got := m.Invocation(1000, cfg); !almost(got, 1000*wantRate, 1e-9) {
		t.Errorf("Invocation = %v", got)
	}
	// Per-invocation fee is additive.
	m.PerInvocation = 7
	if got := m.Invocation(0, cfg); got != 7 {
		t.Errorf("flat fee = %v, want 7", got)
	}
}

func TestAWSCoupledCPU(t *testing.T) {
	if got := AWSCoupledCPU(1769); !almost(got, 1, 1e-12) {
		t.Errorf("1769MB = %v vCPU, want 1", got)
	}
	if got := AWSCoupledCPU(20000); got != 6 {
		t.Errorf("cap = %v, want 6", got)
	}
	if AWSCoupledCPU(128) <= 0 {
		t.Error("small memory should still get some CPU")
	}
}

func TestGCFTiers(t *testing.T) {
	tiers := GCFTiers()
	if len(tiers) == 0 {
		t.Fatal("no tiers")
	}
	for i := 1; i < len(tiers); i++ {
		if tiers[i].MemMB < tiers[i-1].MemMB {
			t.Error("tiers should be sorted by memory")
		}
	}
	if got := NearestGCFTier(300); got.MemMB != 512 {
		t.Errorf("NearestGCFTier(300) = %v, want 512MB tier", got.MemMB)
	}
	if got := NearestGCFTier(128); got.MemMB != 128 {
		t.Errorf("NearestGCFTier(128) = %v, want first tier", got.MemMB)
	}
	if got := NearestGCFTier(99999); got.MemMB != tiers[len(tiers)-1].MemMB {
		t.Error("oversized request should return last tier")
	}
}

func TestAlibabaBand(t *testing.T) {
	b := DefaultAlibabaBand()
	if !b.Allows(resources.Config{CPU: 1, MemMB: 2048}) {
		t.Error("2048MB/1vCPU should be allowed (ratio 2048)")
	}
	if b.Allows(resources.Config{CPU: 4, MemMB: 512}) {
		t.Error("512MB/4vCPU (ratio 128) should be rejected")
	}
	if b.Allows(resources.Config{CPU: 0, MemMB: 512}) {
		t.Error("zero CPU should be rejected")
	}
}

func TestClampToBand(t *testing.T) {
	b := DefaultAlibabaBand()
	// Too little memory per CPU: memory is raised.
	got, err := b.ClampToBand(resources.Config{CPU: 4, MemMB: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allows(got) || got.CPU != 4 || got.MemMB != 4096 {
		t.Errorf("ClampToBand low-mem = %v", got)
	}
	// Too much memory per CPU: CPU is raised.
	got, err = b.ClampToBand(resources.Config{CPU: 1, MemMB: 8192})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Allows(got) || got.MemMB != 8192 || got.CPU != 2 {
		t.Errorf("ClampToBand high-mem = %v", got)
	}
	// In-band config is untouched.
	in := resources.Config{CPU: 2, MemMB: 4096}
	got, _ = b.ClampToBand(in)
	if got != in {
		t.Errorf("in-band config changed: %v", got)
	}
	if _, err := b.ClampToBand(resources.Config{}); err == nil {
		t.Error("invalid config should error")
	}
}

// Property: invocation cost is monotone in runtime, CPU and memory.
func TestQuickCostMonotone(t *testing.T) {
	m := Paper()
	f := func(t1, t2, c1, c2, mm1, mm2 uint16) bool {
		tA, tB := float64(t1), float64(t1)+float64(t2)
		cA, cB := 0.1+float64(c1%100)/10, 0.1+float64(c1%100)/10+float64(c2%100)/10
		mA, mB := 128+float64(mm1%10000), 128+float64(mm1%10000)+float64(mm2%10000)
		base := m.Invocation(tA, resources.Config{CPU: cA, MemMB: mA})
		return m.Invocation(tB, resources.Config{CPU: cA, MemMB: mA}) >= base-1e-9 &&
			m.Invocation(tA, resources.Config{CPU: cB, MemMB: mA}) >= base-1e-9 &&
			m.Invocation(tA, resources.Config{CPU: cA, MemMB: mB}) >= base-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: clamping to the Alibaba band never lowers either resource.
func TestQuickClampNeverLowers(t *testing.T) {
	b := DefaultAlibabaBand()
	f := func(c, mm uint16) bool {
		cfg := resources.Config{CPU: 0.1 + float64(c%200)/10, MemMB: 128 + float64(mm%16000)}
		out, err := b.ClampToBand(cfg)
		if err != nil {
			return false
		}
		return out.CPU >= cfg.CPU-1e-9 && out.MemMB >= cfg.MemMB-1e-9 && b.Allows(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
