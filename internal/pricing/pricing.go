// Package pricing implements the paper's cost model (§IV-A.d) and, for the
// motivation experiments, the three industry pricing schemes §I describes:
// AWS-style memory-coupled pricing, Google Cloud Functions predefined tiers,
// and Alibaba-style ratio-band validation.
//
// The paper's cost of one invocation of function v_i at configuration
// (cpu_j, mem_j) with runtime t_ij is
//
//	cost_ij = t_ij · (µ0·cpu_j + µ1·mem_j) + µ2
//
// with µ0 = 0.512 (per vCPU · time-unit), µ1 = 0.001 (per MB · time-unit),
// µ2 = 0 (request/orchestration fee). We keep runtimes in milliseconds, so
// costs come out in the same dimensionless "cost units" the paper plots.
package pricing

import (
	"fmt"

	"aarc/internal/resources"
)

// Model is a linear decoupled pricing model.
type Model struct {
	PerVCPU       float64 // µ0: price per vCPU per runtime unit
	PerMB         float64 // µ1: price per MB per runtime unit
	PerInvocation float64 // µ2: flat fee per request / orchestration step
}

// Paper returns the constants used in the paper: µ0=0.512, µ1=0.001, µ2=0.
func Paper() Model {
	return Model{PerVCPU: 0.512, PerMB: 0.001, PerInvocation: 0}
}

// Rate returns the per-time-unit price of holding cfg (µ0·cpu + µ1·mem).
func (m Model) Rate(cfg resources.Config) float64 {
	return m.PerVCPU*cfg.CPU + m.PerMB*cfg.MemMB
}

// Invocation prices a single invocation with the given runtime (ms).
func (m Model) Invocation(runtimeMS float64, cfg resources.Config) float64 {
	return runtimeMS*m.Rate(cfg) + m.PerInvocation
}

// CoupledAWSMemPerVCPU is the approximate AWS Lambda proportionality point:
// 1769 MB of memory corresponds to one full vCPU.
const CoupledAWSMemPerVCPU = 1769.0

// AWSCoupledCPU returns the vCPU share AWS Lambda grants for a memory size
// under its memory-centric scheme (capped at 6 vCPUs as on Lambda).
func AWSCoupledCPU(memMB float64) float64 {
	cpu := memMB / CoupledAWSMemPerVCPU
	if cpu > 6 {
		cpu = 6
	}
	return cpu
}

// GCFTier is one of Google Cloud Functions' predefined combinations.
type GCFTier struct {
	MemMB float64
	CPU   float64 // fractional GHz-equivalents normalized to vCPU
}

// GCFTiers returns the classic 1st-gen Cloud Functions combinations.
func GCFTiers() []GCFTier {
	return []GCFTier{
		{MemMB: 128, CPU: 0.2},
		{MemMB: 256, CPU: 0.4},
		{MemMB: 512, CPU: 0.8},
		{MemMB: 1024, CPU: 1.4},
		{MemMB: 2048, CPU: 2.4},
		{MemMB: 4096, CPU: 4.8},
		{MemMB: 8192, CPU: 4.8},
	}
}

// NearestGCFTier returns the smallest predefined tier whose memory is at
// least memMB, or the largest tier when memMB exceeds them all.
func NearestGCFTier(memMB float64) GCFTier {
	tiers := GCFTiers()
	for _, t := range tiers {
		if t.MemMB >= memMB {
			return t
		}
	}
	return tiers[len(tiers)-1]
}

// AlibabaRatioBand is the admissible MB-per-vCPU window in Alibaba-style
// "flexible yet limited" configuration (memory/cpu must stay in the band).
type AlibabaRatioBand struct {
	MinMBPerCPU float64
	MaxMBPerCPU float64
}

// DefaultAlibabaBand mirrors Alibaba Function Compute's 1:1 to 1:4
// GB-per-vCPU window.
func DefaultAlibabaBand() AlibabaRatioBand {
	return AlibabaRatioBand{MinMBPerCPU: 1024, MaxMBPerCPU: 4096}
}

// Allows reports whether cfg's memory-to-CPU ratio falls inside the band.
func (b AlibabaRatioBand) Allows(cfg resources.Config) bool {
	if cfg.CPU <= 0 {
		return false
	}
	r := cfg.MemMB / cfg.CPU
	return r >= b.MinMBPerCPU && r <= b.MaxMBPerCPU
}

// ClampToBand projects cfg onto the nearest ratio-legal configuration by
// raising memory or CPU as needed (never lowering either below its input).
func (b AlibabaRatioBand) ClampToBand(cfg resources.Config) (resources.Config, error) {
	if cfg.CPU <= 0 || cfg.MemMB <= 0 {
		return cfg, fmt.Errorf("pricing: cannot clamp invalid config %v", cfg)
	}
	r := cfg.MemMB / cfg.CPU
	switch {
	case r < b.MinMBPerCPU:
		cfg.MemMB = cfg.CPU * b.MinMBPerCPU
	case r > b.MaxMBPerCPU:
		cfg.CPU = cfg.MemMB / b.MaxMBPerCPU
	}
	return cfg, nil
}
