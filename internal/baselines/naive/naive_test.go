package naive

import (
	"context"
	"testing"

	"aarc/internal/search"
	"aarc/internal/testutil"
)

func TestRandomSearch(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 1)
	r := &Random{Budget: 30, Seed: 1}
	if r.Name() != "Random" {
		t.Error("Name wrong")
	}
	outcome, err := r.Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 30 {
		t.Errorf("trace len = %d", outcome.Trace.Len())
	}
	if err := search.ValidateAssignment(runner, outcome.Best); err != nil {
		t.Fatalf("invalid result: %v", err)
	}
	if _, err := r.Search(context.Background(), runner, search.Options{SLOMS: 0}); err == nil {
		t.Error("bad SLO should error")
	}
}

func TestRandomDefaultBudget(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 2)
	outcome, err := (&Random{Seed: 2}).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 100 {
		t.Errorf("default budget should be 100: %d", outcome.Trace.Len())
	}
}

func TestRandomFallsBackToBase(t *testing.T) {
	// Impossible SLO: no random sample is feasible, so the base comes back.
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 3)
	outcome, err := (&Random{Budget: 10, Seed: 3}).Search(context.Background(), runner, search.Options{SLOMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.Best.Equal(runner.Base()) {
		t.Error("with no feasible sample the base config should be returned")
	}
}

func TestUniformGrid(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 4)
	g := &UniformGrid{CPUPoints: 4, MemPoints: 3}
	if g.Name() != "UniformGrid" {
		t.Error("Name wrong")
	}
	outcome, err := g.Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 12 {
		t.Errorf("grid sweep = %d samples, want 12", outcome.Trace.Len())
	}
	if err := search.ValidateAssignment(runner, outcome.Best); err != nil {
		t.Fatalf("invalid result: %v", err)
	}
	// All functions share one config per sample (uniform sweep).
	for _, s := range outcome.Trace.Samples {
		first := s.Assignment["a"]
		for _, cfg := range s.Assignment {
			if cfg != first {
				t.Fatal("uniform grid must assign identical configs")
			}
		}
	}
	if _, err := g.Search(context.Background(), runner, search.Options{SLOMS: -1}); err == nil {
		t.Error("bad SLO should error")
	}
}

func TestUniformGridDefaults(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 5)
	outcome, err := (&UniformGrid{}).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 64 {
		t.Errorf("default sweep = %d, want 8x8", outcome.Trace.Len())
	}
}
