// Package naive provides two reference searchers used for ablations and
// sanity checks rather than paper claims: uniform random search over the
// decoupled grid, and an exhaustive uniform-configuration grid search (every
// function shares one configuration, so the sweep is tractable).
package naive

import (
	"fmt"
	"math"
	"math/rand/v2"

	"aarc/internal/resources"
	"aarc/internal/search"
)

// Random samples the decoupled space uniformly at random for a fixed budget
// and returns the cheapest SLO-compliant assignment seen.
type Random struct {
	Budget int
	Seed   uint64
}

// Name implements search.Searcher.
func (r *Random) Name() string { return "Random" }

// Search implements search.Searcher.
func (r *Random) Search(ev search.Evaluator, sloMS float64) (search.Outcome, error) {
	if sloMS <= 0 {
		return search.Outcome{}, fmt.Errorf("naive: non-positive SLO %v", sloMS)
	}
	budget := r.Budget
	if budget <= 0 {
		budget = 100
	}
	rng := rand.New(rand.NewPCG(r.Seed, 0x5eed))
	groups := ev.Functions()
	lim := ev.Limits()
	trace := &search.Trace{Method: "Random"}

	best := ev.Base()
	bestCost := math.Inf(1)
	for i := 0; i < budget; i++ {
		a := make(resources.Assignment, len(groups))
		for _, g := range groups {
			a[g] = lim.Snap(lim.Denormalize(rng.Float64(), rng.Float64()))
		}
		res, err := ev.Evaluate(a)
		if err != nil {
			return search.Outcome{}, err
		}
		ok := !res.OOM && res.E2EMS <= sloMS && res.Cost < bestCost
		trace.Record(a, res, ok, "random")
		if ok {
			bestCost = res.Cost
			best = a.Clone()
		}
	}
	return search.Outcome{Best: best, Trace: trace}, nil
}

// UniformGrid sweeps a coarsened (cpu, mem) grid, assigning the same
// configuration to every function, and returns the cheapest SLO-compliant
// point. CPUPoints and MemPoints bound the sweep resolution per axis.
type UniformGrid struct {
	CPUPoints int
	MemPoints int
}

// Name implements search.Searcher.
func (u *UniformGrid) Name() string { return "UniformGrid" }

// Search implements search.Searcher.
func (u *UniformGrid) Search(ev search.Evaluator, sloMS float64) (search.Outcome, error) {
	if sloMS <= 0 {
		return search.Outcome{}, fmt.Errorf("naive: non-positive SLO %v", sloMS)
	}
	cp := u.CPUPoints
	if cp <= 1 {
		cp = 8
	}
	mp := u.MemPoints
	if mp <= 1 {
		mp = 8
	}
	groups := ev.Functions()
	lim := ev.Limits()
	trace := &search.Trace{Method: "UniformGrid"}

	best := ev.Base()
	bestCost := math.Inf(1)
	for i := 0; i < cp; i++ {
		for j := 0; j < mp; j++ {
			cfg := lim.Snap(lim.Denormalize(
				float64(i)/float64(cp-1),
				float64(j)/float64(mp-1),
			))
			a := resources.Uniform(groups, cfg)
			res, err := ev.Evaluate(a)
			if err != nil {
				return search.Outcome{}, err
			}
			ok := !res.OOM && res.E2EMS <= sloMS && res.Cost < bestCost
			trace.Record(a, res, ok, "grid")
			if ok {
				bestCost = res.Cost
				best = a.Clone()
			}
		}
	}
	return search.Outcome{Best: best, Trace: trace}, nil
}

var (
	_ search.Searcher = (*Random)(nil)
	_ search.Searcher = (*UniformGrid)(nil)
)
