// Package naive provides two reference searchers used for ablations and
// sanity checks rather than paper claims: uniform random search over the
// decoupled grid, and an exhaustive uniform-configuration grid search (every
// function shares one configuration, so the sweep is tractable).
package naive

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"aarc/internal/resources"
	"aarc/internal/search"
)

// Version is the naive baselines' implementation version folded into
// serving-layer fingerprints; bump on any result-affecting change.
const Version = 1

func init() {
	search.Register("random", Version, func(seed uint64) search.Searcher {
		return &Random{Budget: 100, Seed: seed}
	})
	search.Register("grid", Version, func(seed uint64) search.Searcher {
		return &UniformGrid{CPUPoints: 8, MemPoints: 8}
	})
}

// Random samples the decoupled space uniformly at random for a fixed budget
// and returns the cheapest SLO-compliant assignment seen.
type Random struct {
	Budget int
	Seed   uint64
}

// Name implements search.Searcher.
func (r *Random) Name() string { return "Random" }

// Search implements search.Searcher.
func (r *Random) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	sloMS := opts.SLOMS
	if sloMS <= 0 {
		return search.Outcome{}, fmt.Errorf("naive: non-positive SLO %v", sloMS)
	}
	budget := r.Budget
	if budget <= 0 {
		budget = 100
	}
	rng := rand.New(rand.NewPCG(r.Seed, 0x5eed))
	groups := ev.Functions()
	lim := ev.Limits()
	trace := search.NewTrace(ctx, "Random", opts)

	best := ev.Base()
	var bestRes search.Result // zero until a feasible sample is accepted
	bestCost := math.Inf(1)
	for i := 0; i < budget; i++ {
		a := make(resources.Assignment, len(groups))
		for _, g := range groups {
			a[g] = lim.Snap(lim.Denormalize(rng.Float64(), rng.Float64()))
		}
		res, err := ev.Evaluate(a)
		if err != nil {
			return search.Outcome{}, err
		}
		ok := !res.OOM && res.E2EMS <= sloMS && res.Cost < bestCost
		if ok {
			bestCost = res.Cost
			best = a.Clone()
			bestRes = res
		}
		if err := trace.Record(a, res, ok, "random"); err != nil {
			return search.Outcome{Best: best, Trace: trace, Final: bestRes}, search.StopCause(err)
		}
	}
	return search.Outcome{Best: best, Trace: trace, Final: bestRes}, nil
}

// UniformGrid sweeps a coarsened (cpu, mem) grid, assigning the same
// configuration to every function, and returns the cheapest SLO-compliant
// point. CPUPoints and MemPoints bound the sweep resolution per axis.
type UniformGrid struct {
	CPUPoints int
	MemPoints int
}

// Name implements search.Searcher.
func (u *UniformGrid) Name() string { return "UniformGrid" }

// Search implements search.Searcher.
func (u *UniformGrid) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	sloMS := opts.SLOMS
	if sloMS <= 0 {
		return search.Outcome{}, fmt.Errorf("naive: non-positive SLO %v", sloMS)
	}
	cp := u.CPUPoints
	if cp <= 1 {
		cp = 8
	}
	mp := u.MemPoints
	if mp <= 1 {
		mp = 8
	}
	groups := ev.Functions()
	lim := ev.Limits()
	trace := search.NewTrace(ctx, "UniformGrid", opts)

	best := ev.Base()
	var bestRes search.Result // zero until a feasible sample is accepted
	bestCost := math.Inf(1)
	for i := 0; i < cp; i++ {
		for j := 0; j < mp; j++ {
			cfg := lim.Snap(lim.Denormalize(
				float64(i)/float64(cp-1),
				float64(j)/float64(mp-1),
			))
			a := resources.Uniform(groups, cfg)
			res, err := ev.Evaluate(a)
			if err != nil {
				return search.Outcome{}, err
			}
			ok := !res.OOM && res.E2EMS <= sloMS && res.Cost < bestCost
			if ok {
				bestCost = res.Cost
				best = a.Clone()
				bestRes = res
			}
			if err := trace.Record(a, res, ok, "grid"); err != nil {
				return search.Outcome{Best: best, Trace: trace, Final: bestRes}, search.StopCause(err)
			}
		}
	}
	return search.Outcome{Best: best, Trace: trace, Final: bestRes}, nil
}

var (
	_ search.Searcher = (*Random)(nil)
	_ search.Searcher = (*UniformGrid)(nil)
)
