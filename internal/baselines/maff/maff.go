// Package maff implements the MAFF baseline (Zubko et al., self-adaptive
// memory optimization for serverless functions) as the AARC paper adapts it
// to workflows: a memory-centric gradient descent over *coupled*
// configurations — vCPU follows memory at 1 core per 1024 MB — that walks
// memory downward in fixed increments to minimize cost and, on the first
// SLO violation (or OOM), reverts to the previous step and terminates.
package maff

import (
	"context"
	"fmt"

	"aarc/internal/resources"
	"aarc/internal/search"
)

// Version is the MAFF implementation version folded into serving-layer
// fingerprints; bump on any result-affecting change.
const Version = 1

func init() {
	search.Register("maff", Version, func(seed uint64) search.Searcher {
		return New(DefaultOptions())
	})
}

// Options tunes the MAFF baseline.
type Options struct {
	// StepMB is the fixed memory decrement per round (64 MB granularity in
	// the paper's setup).
	StepMB float64
	// CostIncreaseTol terminates the descent when cost rises this fraction
	// above the best cost seen (the gradient turned uphill). Zero disables
	// the check; the SLO guard then provides the only stop.
	CostIncreaseTol float64
}

// DefaultOptions matches the paper's adaptation: 64 MB steps, and descent
// terminated by the SLO guard alone ("if a workflow's SLO is violated, the
// process reverts to the previous step and terminates", §IV-A.b).
func DefaultOptions() Options {
	return Options{StepMB: 64, CostIncreaseTol: 0}
}

func (o Options) normalize() Options {
	if o.StepMB <= 0 {
		o.StepMB = DefaultOptions().StepMB
	}
	if o.CostIncreaseTol < 0 {
		o.CostIncreaseTol = 0
	}
	return o
}

// Optimizer is the MAFF searcher. It implements search.Searcher.
type Optimizer struct {
	opts Options
}

// New returns a MAFF searcher.
func New(opts Options) *Optimizer { return &Optimizer{opts: opts.normalize()} }

// Name implements search.Searcher.
func (o *Optimizer) Name() string { return "MAFF" }

// coupledAt returns the assignment that gives every group the coupled
// configuration derived from its own memory value in mem.
func coupledAt(groups []string, lim resources.Limits, mem map[string]float64) resources.Assignment {
	a := make(resources.Assignment, len(groups))
	for _, g := range groups {
		a[g] = lim.Snap(resources.Coupled(mem[g]))
	}
	return a
}

// Search walks all function memories downward together from the base
// configuration's memory sizes, with CPU proportionally coupled. The walk
// stops when (a) the SLO is violated or a function OOMs — revert and
// terminate, per the paper — (b) cost turns uphill beyond the tolerance, or
// (c) the memory floor is reached.
func (o *Optimizer) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	sloMS := opts.SLOMS
	if sloMS <= 0 {
		return search.Outcome{}, fmt.Errorf("maff: non-positive SLO %v", sloMS)
	}
	groups := ev.Functions()
	lim := ev.Limits()
	trace := search.NewTrace(ctx, "MAFF", opts)

	mem := make(map[string]float64, len(groups))
	for _, g := range groups {
		mem[g] = ev.Base()[g].MemMB
	}

	cur := coupledAt(groups, lim, mem)
	res, err := ev.Evaluate(cur)
	if err != nil {
		return search.Outcome{}, err
	}
	curRes := res // last measurement of cur
	if err := trace.Record(cur, res, !res.OOM && res.E2EMS <= sloMS, "init-coupled"); err != nil {
		return search.Outcome{Best: cur, Trace: trace, Final: curRes}, search.StopCause(err)
	}
	if res.OOM || res.E2EMS > sloMS {
		// Even the coupled base misses the SLO: nothing MAFF can do but
		// return it (the paper's adaptation has no recovery move).
		return search.Outcome{Best: cur, Trace: trace, Final: curRes}, nil
	}
	bestCost := res.Cost

descend:
	for {
		next := make(map[string]float64, len(groups))
		moved := false
		for _, g := range groups {
			m := mem[g] - o.opts.StepMB
			if m < lim.MinMemMB {
				m = lim.MinMemMB
			}
			if m != mem[g] {
				moved = true
			}
			next[g] = m
		}
		if !moved {
			break // memory floor everywhere
		}
		candidate := coupledAt(groups, lim, next)
		res, err = ev.Evaluate(candidate)
		if err != nil {
			return search.Outcome{}, err
		}
		switch {
		case res.OOM || res.E2EMS > sloMS:
			// Revert to the previous step and terminate; a halt raised while
			// recording the reverted probe changes nothing about the result.
			if err := trace.Record(candidate, res, false, "revert-slo"); err != nil {
				return search.Outcome{Best: cur, Trace: trace, Final: curRes}, search.StopCause(err)
			}
			break descend
		case o.opts.CostIncreaseTol > 0 && res.Cost > bestCost*(1+o.opts.CostIncreaseTol):
			if err := trace.Record(candidate, res, false, "revert-cost"); err != nil {
				return search.Outcome{Best: cur, Trace: trace, Final: curRes}, search.StopCause(err)
			}
			break descend
		}
		mem = next
		cur = candidate
		curRes = res
		if err := trace.Record(candidate, res, true, "descend"); err != nil {
			return search.Outcome{Best: cur, Trace: trace, Final: curRes}, search.StopCause(err)
		}
		if res.Cost < bestCost {
			bestCost = res.Cost
		}
	}

	return search.Outcome{Best: cur, Trace: trace, Final: curRes}, nil
}

var _ search.Searcher = (*Optimizer)(nil)
