package maff

import (
	"context"
	"math"
	"testing"

	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/testutil"
)

func TestName(t *testing.T) {
	if New(DefaultOptions()).Name() != "MAFF" {
		t.Error("Name should be MAFF")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.StepMB != 64 {
		t.Errorf("default step = %v", o.StepMB)
	}
	o = Options{CostIncreaseTol: -1}.normalize()
	if o.CostIncreaseTol != 0 {
		t.Errorf("negative tol should clamp to 0: %v", o.CostIncreaseTol)
	}
}

func TestSearchBadSLO(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 1)
	if _, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: 0}); err == nil {
		t.Error("zero SLO should error")
	}
}

func TestCouplingInvariant(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 5)
	outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	lim := runner.Limits()
	// Every sampled configuration is coupled: cpu == mem/1024 modulo grid
	// snapping.
	for _, s := range outcome.Trace.Samples {
		for g, cfg := range s.Assignment {
			want := lim.Snap(resources.Coupled(cfg.MemMB))
			if math.Abs(cfg.CPU-want.CPU) > 1e-9 {
				t.Fatalf("sample %d group %s not coupled: %v", s.Index, g, cfg)
			}
		}
	}
	if err := search.ValidateAssignment(runner, outcome.Best); err != nil {
		t.Fatalf("MAFF returned invalid assignment: %v", err)
	}
}

func TestMemoryDescendsMonotonically(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 5)
	outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, s := range outcome.Trace.Samples {
		cur := s.Assignment["b"].MemMB
		if cur > prev {
			t.Fatalf("memory went up at sample %d: %v -> %v", s.Index, prev, cur)
		}
		prev = cur
	}
}

func TestFinalConfigMeetsSLO(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		spec := testutil.ChainSpec(45_000)
		runner := testutil.NewRunner(t, spec, true, seed)
		outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const n = 5
		for i := 0; i < n; i++ {
			res, err := runner.Evaluate(outcome.Best)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.E2EMS
		}
		// Allow a whisker of noise above the SLO: MAFF has no safety margin,
		// so its final config sits right at the boundary.
		if avg := sum / n; avg > spec.SLOMS*1.03 {
			t.Errorf("seed %d: avg e2e %.0f well above SLO %.0f", seed, avg, spec.SLOMS)
		}
	}
}

func TestTerminatesAtMemoryFloor(t *testing.T) {
	// A very generous SLO: MAFF walks all the way to the floor or to an
	// OOM revert, then stops; the search must terminate.
	spec := testutil.ChainSpec(600_000)
	runner := testutil.NewRunner(t, spec, true, 2)
	outcome, err := New(Options{StepMB: 512}).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() > 100 {
		t.Errorf("MAFF should terminate quickly with 512MB steps: %d samples", outcome.Trace.Len())
	}
}

func TestCostGuardStopsUphill(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 3)
	guarded, err := New(Options{StepMB: 64, CostIncreaseTol: 0.02}).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	runner2 := testutil.NewRunner(t, spec, true, 3)
	unguarded, err := New(Options{StepMB: 64}).Search(context.Background(), runner2, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if guarded.Trace.Len() > unguarded.Trace.Len() {
		t.Errorf("cost guard should never lengthen the search: %d > %d",
			guarded.Trace.Len(), unguarded.Trace.Len())
	}
}

func TestInfeasibleBaseReturnsImmediately(t *testing.T) {
	spec := testutil.ChainSpec(1_000) // impossible SLO
	runner := testutil.NewRunner(t, spec, true, 1)
	outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 1 {
		t.Errorf("infeasible base should stop after the init sample: %d", outcome.Trace.Len())
	}
}
