package bo

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"aarc/internal/mathx"
	"aarc/internal/resources"
	"aarc/internal/search"
)

// Version is the BO implementation version folded into serving-layer
// fingerprints; bump on any result-affecting change.
const Version = 1

func init() {
	search.Register("bo", Version, func(seed uint64) search.Searcher {
		opts := DefaultOptions()
		opts.Seed = seed
		return New(opts)
	})
}

// Options tunes the Bayesian-optimization baseline.
type Options struct {
	// Budget is the total number of workflow executions, including the
	// initial design (the paper runs 100 rounds).
	Budget int
	// InitSamples is the size of the random initial design (the base
	// configuration is always the first point).
	InitSamples int
	// Candidates is how many random candidates score the acquisition
	// function per round.
	Candidates int
	// LengthScale, SignalVar, NoiseVar are the GP hyperparameters over the
	// normalized [0,1]^d space.
	LengthScale float64
	SignalVar   float64
	NoiseVar    float64
	// Constrained switches from the paper baseline — a single GP over the
	// SLO-penalized cost, which keeps exploring slow regions and exhibits
	// the instability of Fig. 3 — to constrained expected improvement with
	// a second runtime GP (an extension beyond the paper's baseline).
	Constrained bool
	// PenaltyWeight scales the SLO-violation penalty of the unconstrained
	// objective: y = cost · (1 + PenaltyWeight · max(0, t/SLO − 1)).
	PenaltyWeight float64
	// LocalFrac is the fraction of acquisition candidates drawn as local
	// perturbations of the incumbent instead of uniformly (0 in the paper
	// baseline; >0 is an extension that sharpens late convergence).
	LocalFrac float64
	// FitHyperparams selects the GP length scale per round by log marginal
	// likelihood over a small grid instead of using the fixed LengthScale
	// (an extension beyond the paper's baseline).
	FitHyperparams bool
	// Seed drives candidate sampling and the initial design.
	Seed uint64
}

// DefaultOptions returns the paper's setup: 100 rounds over the discretized
// decoupled space.
func DefaultOptions() Options {
	return Options{
		Budget:      100,
		InitSamples: 10,
		Candidates:  256,
		LengthScale: 0.12,
		SignalVar:   1.0,
		NoiseVar:    1e-4,
		Seed:        1,
	}
}

func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.Budget <= 0 {
		o.Budget = d.Budget
	}
	if o.InitSamples <= 0 {
		o.InitSamples = d.InitSamples
	}
	if o.InitSamples > o.Budget {
		o.InitSamples = o.Budget
	}
	if o.Candidates <= 0 {
		o.Candidates = d.Candidates
	}
	if o.LengthScale <= 0 {
		o.LengthScale = d.LengthScale
	}
	if o.SignalVar <= 0 {
		o.SignalVar = d.SignalVar
	}
	if o.NoiseVar <= 0 {
		o.NoiseVar = d.NoiseVar
	}
	if o.PenaltyWeight <= 0 {
		o.PenaltyWeight = 2
	}
	return o
}

// Optimizer is the BO searcher. It implements search.Searcher.
type Optimizer struct {
	opts Options
}

// New returns a BO searcher.
func New(opts Options) *Optimizer { return &Optimizer{opts: opts.normalize()} }

// Name implements search.Searcher.
func (o *Optimizer) Name() string { return "BO" }

// encode flattens an assignment into the normalized vector the GPs see,
// ordering groups as ev.Functions() does.
func encode(groups []string, lim resources.Limits, a resources.Assignment) []float64 {
	x := make([]float64, 0, 2*len(groups))
	for _, g := range groups {
		c01, m01 := lim.Normalize(a[g])
		x = append(x, c01, m01)
	}
	return x
}

// decode maps a normalized vector back to a grid-snapped assignment.
func decode(groups []string, lim resources.Limits, x []float64) resources.Assignment {
	a := make(resources.Assignment, len(groups))
	for i, g := range groups {
		cfg := lim.Denormalize(x[2*i], x[2*i+1])
		a[g] = lim.Snap(cfg)
	}
	return a
}

// Search runs constrained Bayesian optimization: EI on cost times the GP
// probability that end-to-end latency meets the SLO. OOM or infeasible
// observations are retained with penalized targets so the surrogate learns
// to avoid those regions.
func (o *Optimizer) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	sloMS := opts.SLOMS
	if sloMS <= 0 {
		return search.Outcome{}, fmt.Errorf("bo: non-positive SLO %v", sloMS)
	}
	groups := ev.Functions()
	lim := ev.Limits()
	rng := rand.New(rand.NewPCG(o.opts.Seed, 0xb0b0b0b0))
	trace := search.NewTrace(ctx, "BO", opts)

	var (
		xs        [][]float64
		costObs   []float64
		runObs    []float64
		bestCost  = math.Inf(1)
		bestA     resources.Assignment
		bestRes   search.Result
		baseRes   search.Result
		worstCost = 0.0
	)
	// outcome is the best-so-far result: the cheapest feasible point, or the
	// base configuration (always the first point evaluated) as fallback.
	outcome := func() search.Outcome {
		if bestA == nil {
			return search.Outcome{Best: ev.Base(), Trace: trace, Final: baseRes}
		}
		return search.Outcome{Best: bestA, Trace: trace, Final: bestRes}
	}

	evalPoint := func(a resources.Assignment, note string) error {
		res, err := ev.Evaluate(a)
		if err != nil {
			return err
		}
		feasible := !res.OOM && res.E2EMS <= sloMS
		accepted := feasible && res.Cost < bestCost

		cost, run := res.Cost, res.E2EMS
		if res.Cost > worstCost {
			worstCost = res.Cost
		}
		if res.OOM {
			// Penalize: the surrogate must steer away from OOM regions, and
			// the partial (aborted) cost/latency would look attractive.
			cost = worstCost * 1.5
			if run < sloMS*1.5 {
				run = sloMS * 1.5
			}
		}
		if len(xs) == 0 {
			baseRes = res // first point is always the base configuration
		}
		xs = append(xs, encode(groups, lim, a))
		costObs = append(costObs, cost)
		runObs = append(runObs, run)
		if accepted {
			bestCost = res.Cost
			bestA = a.Clone()
			bestRes = res
		}
		return trace.Record(a, res, accepted, note)
	}
	// stop translates an evalPoint error: enforcement halts return the
	// partial outcome, evaluation failures the error itself.
	stop := func(err error) (search.Outcome, error) {
		if search.Halted(err) {
			return outcome(), search.StopCause(err)
		}
		return search.Outcome{}, err
	}

	// Initial design: base configuration first (always feasible by
	// construction), then random grid points.
	if err := evalPoint(ev.Base(), "init-base"); err != nil {
		return stop(err)
	}
	for i := 1; i < o.opts.InitSamples && trace.Len() < o.opts.Budget; i++ {
		if err := evalPoint(randomAssignment(groups, lim, rng), "init-random"); err != nil {
			return stop(err)
		}
	}

	// penalized folds the SLO into a single objective (the paper baseline's
	// view of the problem).
	penalized := func(cost, run float64) float64 {
		if run > sloMS {
			cost *= 1 + o.opts.PenaltyWeight*(run/sloMS-1)
		}
		return cost
	}

	for trace.Len() < o.opts.Budget {
		var (
			objGP *gp
			runGP *gp
		)
		if o.opts.Constrained {
			objGP = newGP(o.opts.LengthScale, o.opts.SignalVar, o.opts.NoiseVar)
			runGP = newGP(o.opts.LengthScale, o.opts.SignalVar, o.opts.NoiseVar)
			if err := objGP.fit(xs, costObs); err != nil {
				return search.Outcome{}, err
			}
			if err := runGP.fit(xs, runObs); err != nil {
				return search.Outcome{}, err
			}
		} else {
			ys := make([]float64, len(xs))
			for i := range xs {
				ys[i] = penalized(costObs[i], runObs[i])
			}
			if o.opts.FitHyperparams {
				g, err := fitBest(xs, ys, lengthScaleGrid(o.opts.LengthScale), o.opts.SignalVar, o.opts.NoiseVar)
				if err != nil {
					return search.Outcome{}, err
				}
				objGP = g
			} else {
				objGP = newGP(o.opts.LengthScale, o.opts.SignalVar, o.opts.NoiseVar)
				if err := objGP.fit(xs, ys); err != nil {
					return search.Outcome{}, err
				}
			}
		}

		incumbent := bestCost
		if math.IsInf(incumbent, 1) {
			// No feasible point yet: improve on the cheapest observation.
			incumbent = costObs[0]
			for _, c := range costObs {
				if c < incumbent {
					incumbent = c
				}
			}
		}

		var bestX []float64
		bestAcq := math.Inf(-1)
		for c := 0; c < o.opts.Candidates; c++ {
			x := o.candidate(groups, lim, rng, bestA)
			mu, sd, err := objGP.predict(x)
			if err != nil {
				return search.Outcome{}, err
			}
			acq := mathx.ExpectedImprovement(mu, sd, incumbent)
			if o.opts.Constrained {
				muR, sdR, err := runGP.predict(x)
				if err != nil {
					return search.Outcome{}, err
				}
				var pf float64
				if sdR <= 0 {
					if muR <= sloMS {
						pf = 1
					}
				} else {
					pf = mathx.NormCDF((sloMS - muR) / sdR)
				}
				acq *= pf
			}
			if acq > bestAcq {
				bestAcq = acq
				bestX = x
			}
		}
		a := decode(groups, lim, bestX)
		if err := evalPoint(a, "acquire"); err != nil {
			return stop(err)
		}
	}

	return outcome(), nil
}

// candidate draws one acquisition candidate. The paper's baseline samples
// the discretized space uniformly (LocalFrac = 0); setting LocalFrac > 0
// mixes in Gaussian perturbations of the incumbent, an extension that makes
// BO behave like a local refiner late in the search.
func (o *Optimizer) candidate(groups []string, lim resources.Limits, rng *rand.Rand, incumbent resources.Assignment) []float64 {
	d := 2 * len(groups)
	x := make([]float64, d)
	if incumbent != nil && o.opts.LocalFrac > 0 && rng.Float64() < o.opts.LocalFrac {
		base := encode(groups, lim, incumbent)
		for i := range x {
			v := base[i] + rng.NormFloat64()*0.05
			x[i] = clamp01(v)
		}
		return x
	}
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func randomAssignment(groups []string, lim resources.Limits, rng *rand.Rand) resources.Assignment {
	a := make(resources.Assignment, len(groups))
	for _, g := range groups {
		a[g] = lim.Snap(lim.Denormalize(rng.Float64(), rng.Float64()))
	}
	return a
}

// lengthScaleGrid brackets the configured length scale for type-II ML
// selection.
func lengthScaleGrid(center float64) []float64 {
	return []float64{center / 2, center, center * 2, center * 4}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

var _ search.Searcher = (*Optimizer)(nil)
