package bo

import (
	"context"
	"math"
	"testing"

	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/testutil"
)

func TestGPFitErrors(t *testing.T) {
	g := newGP(0.2, 1, 1e-4)
	if err := g.fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if err := g.fit([][]float64{{0.1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, _, err := newGP(0.2, 1, 1e-4).predict([]float64{0}); err == nil {
		t.Error("predict before fit should error")
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	g := newGP(0.3, 1, 1e-6)
	xs := [][]float64{{0.1}, {0.4}, {0.9}}
	ys := []float64{3, -1, 5}
	if err := g.fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, sd, err := g.predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Errorf("GP at training point %v: mu=%v want %v", x, mu, ys[i])
		}
		if sd > 0.2 {
			t.Errorf("GP sd at training point should be small: %v", sd)
		}
	}
	// Far away the posterior reverts toward the mean with high variance.
	_, sdFar, _ := g.predict([]float64{-5})
	if sdFar < 0.5 {
		t.Errorf("far-field sd should be large: %v", sdFar)
	}
}

func TestGPHandlesDuplicatePoints(t *testing.T) {
	g := newGP(0.3, 1, 1e-9)
	xs := [][]float64{{0.5}, {0.5}, {0.5}}
	ys := []float64{1, 1.1, 0.9}
	if err := g.fit(xs, ys); err != nil {
		t.Fatalf("duplicated points must not break Cholesky: %v", err)
	}
	mu, _, err := g.predict([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mu-1.0) > 0.1 {
		t.Errorf("duplicate-point posterior mean = %v, want ~1", mu)
	}
}

func TestGPConstantTargets(t *testing.T) {
	g := newGP(0.3, 1, 1e-6)
	if err := g.fit([][]float64{{0.1}, {0.9}}, []float64{4, 4}); err != nil {
		t.Fatalf("constant targets (zero variance) must fit: %v", err)
	}
	mu, _, _ := g.predict([]float64{0.5})
	if math.Abs(mu-4) > 0.5 {
		t.Errorf("constant-target prediction = %v", mu)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	lim := resources.DefaultLimits()
	groups := []string{"a", "b"}
	a := resources.Assignment{
		"a": {CPU: 2.5, MemMB: 1024},
		"b": {CPU: 7.0, MemMB: 4096},
	}
	x := encode(groups, lim, a)
	if len(x) != 4 {
		t.Fatalf("encode dim = %d", len(x))
	}
	back := decode(groups, lim, x)
	for _, g := range groups {
		if math.Abs(back[g].CPU-a[g].CPU) > lim.CPUStep/2 ||
			math.Abs(back[g].MemMB-a[g].MemMB) > lim.MemStepMB/2 {
			t.Errorf("round trip %s: %v -> %v", g, a[g], back[g])
		}
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	d := DefaultOptions()
	if o.Budget != d.Budget || o.InitSamples != d.InitSamples || o.Candidates != d.Candidates {
		t.Errorf("normalize = %+v", o)
	}
	small := Options{Budget: 3, InitSamples: 10}.normalize()
	if small.InitSamples != 3 {
		t.Errorf("InitSamples should cap at Budget: %+v", small)
	}
}

func TestSearchBudgetAndValidity(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 2)
	opts := DefaultOptions()
	opts.Budget = 25
	opts.InitSamples = 5
	opts.Candidates = 64
	opts.Seed = 2
	outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 25 {
		t.Errorf("trace len = %d, want exactly the budget", outcome.Trace.Len())
	}
	if err := search.ValidateAssignment(runner, outcome.Best); err != nil {
		t.Fatalf("BO returned invalid assignment: %v", err)
	}
	res, err := runner.Evaluate(outcome.Best)
	if err != nil {
		t.Fatal(err)
	}
	if res.E2EMS > spec.SLOMS*1.1 {
		t.Errorf("BO best config grossly violates SLO: %v", res.E2EMS)
	}
}

func TestSearchImprovesOverWorstCase(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 3)
	opts := DefaultOptions()
	opts.Budget = 40
	opts.Seed = 3
	outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen config should be at least as cheap as the base sample.
	baseCost := outcome.Trace.Samples[0].Cost
	res, _ := runner.Evaluate(outcome.Best)
	if res.Cost > baseCost {
		t.Errorf("BO best (%.0f) worse than base (%.0f)", res.Cost, baseCost)
	}
}

func TestSearchBadSLO(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 2)
	if _, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: -5}); err == nil {
		t.Error("negative SLO should error")
	}
}

func TestConstrainedModeRuns(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 4)
	opts := DefaultOptions()
	opts.Budget = 20
	opts.Constrained = true
	opts.Seed = 4
	outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 20 {
		t.Errorf("constrained trace len = %d", outcome.Trace.Len())
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	run := func() (float64, int) {
		spec := testutil.ChainSpec(60_000)
		runner := testutil.NewRunner(t, spec, true, 9)
		opts := DefaultOptions()
		opts.Budget = 15
		opts.Seed = 9
		outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
		if err != nil {
			t.Fatal(err)
		}
		return outcome.Trace.TotalCost(), outcome.Trace.Len()
	}
	c1, n1 := run()
	c2, n2 := run()
	if c1 != c2 || n1 != n2 {
		t.Error("same seed should reproduce the identical search")
	}
}

func TestName(t *testing.T) {
	if New(DefaultOptions()).Name() != "BO" {
		t.Error("Name should be BO")
	}
}

func TestLogMarginalLikelihood(t *testing.T) {
	g := newGP(0.3, 1, 1e-4)
	if _, err := g.logMarginalLikelihood(); err == nil {
		t.Error("LML before fit should error")
	}
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	if err := g.fit(xs, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	lml, err := g.logMarginalLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(lml) || math.IsInf(lml, 0) {
		t.Errorf("LML = %v", lml)
	}
}

func TestFitBestPrefersExplainingScale(t *testing.T) {
	// Smooth data: a long length scale should win over a tiny one.
	xs := make([][]float64, 9)
	ys := make([]float64, 9)
	for i := range xs {
		v := float64(i) / 8
		xs[i] = []float64{v}
		ys[i] = v * v
	}
	g, err := fitBest(xs, ys, []float64{0.01, 0.5}, 1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if g.lenScl != 0.5 {
		t.Errorf("selected length scale %v, want 0.5 for smooth data", g.lenScl)
	}
	if _, err := fitBest(nil, nil, []float64{0.1}, 1, 1e-4); err == nil {
		t.Error("empty data should error")
	}
}

func TestFitHyperparamsMode(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 6)
	opts := DefaultOptions()
	opts.Budget = 20
	opts.FitHyperparams = true
	opts.Seed = 6
	outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Trace.Len() != 20 {
		t.Errorf("trace len = %d", outcome.Trace.Len())
	}
}
