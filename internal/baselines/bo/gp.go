// Package bo implements the Bayesian-optimization baseline (after Bilal et
// al., EuroSys'23, extended to workflows as in §II-B of the AARC paper):
// Gaussian-process surrogates over the normalized decoupled configuration
// space with a constrained expected-improvement acquisition — EI on cost
// multiplied by the probability of satisfying the latency SLO, both
// estimated by independent GPs.
package bo

import (
	"errors"
	"math"

	"aarc/internal/mathx"
)

// gp is a Gaussian-process regressor with a squared-exponential kernel over
// [0,1]^d inputs. Targets are standardized internally.
type gp struct {
	x       [][]float64
	y       []float64 // standardized targets
	yMean   float64
	yStd    float64
	lenScl  float64
	sigF2   float64 // signal variance
	noise   float64 // observation noise variance (jitter included)
	chol    *mathx.Matrix
	alpha   []float64
	trained bool
}

// newGP builds an untrained GP with the given hyperparameters.
func newGP(lengthScale, signalVar, noiseVar float64) *gp {
	return &gp{lenScl: lengthScale, sigF2: signalVar, noise: noiseVar}
}

// kernel evaluates the squared-exponential covariance of two points.
func (g *gp) kernel(a, b []float64) float64 {
	r2 := 0.0
	for i := range a {
		d := a[i] - b[i]
		r2 += d * d
	}
	return g.sigF2 * math.Exp(-r2/(2*g.lenScl*g.lenScl))
}

// fit trains the GP on the given observations (inputs in [0,1]^d).
func (g *gp) fit(x [][]float64, y []float64) error {
	if len(x) == 0 || len(x) != len(y) {
		return errors.New("bo: fit needs matching, non-empty x and y")
	}
	n := len(x)
	g.x = x

	// Standardize targets for numerical stability.
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	varsum := 0.0
	for _, v := range y {
		d := v - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(n))
	if std < 1e-12 {
		std = 1
	}
	g.yMean, g.yStd = mean, std
	g.y = make([]float64, n)
	for i, v := range y {
		g.y[i] = (v - mean) / std
	}

	k := mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := g.kernel(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	k.AddDiag(g.noise + 1e-8)

	chol, err := mathx.Cholesky(k)
	if err != nil {
		// Ill-conditioned kernel matrix (e.g. duplicated samples): retry
		// with a heavier jitter before giving up.
		k.AddDiag(1e-4)
		chol, err = mathx.Cholesky(k)
		if err != nil {
			return err
		}
	}
	g.chol = chol
	g.alpha, err = mathx.CholSolve(chol, g.y)
	if err != nil {
		return err
	}
	g.trained = true
	return nil
}

// logMarginalLikelihood returns the log marginal likelihood of the training
// data under the fitted GP: −½ yᵀK⁻¹y − ½ log|K| − n/2·log 2π (standardized
// target units).
func (g *gp) logMarginalLikelihood() (float64, error) {
	if !g.trained {
		return 0, errors.New("bo: logMarginalLikelihood before fit")
	}
	n := float64(len(g.y))
	return -0.5*mathx.Dot(g.y, g.alpha) - 0.5*mathx.LogDet(g.chol) - 0.5*n*math.Log(2*math.Pi), nil
}

// fitBest fits GPs over the candidate length scales and keeps the one with
// the highest log marginal likelihood (type-II maximum likelihood over a
// small grid — the standard lightweight hyperparameter treatment).
func fitBest(x [][]float64, y []float64, lengthScales []float64, signalVar, noiseVar float64) (*gp, error) {
	var best *gp
	bestLML := math.Inf(-1)
	var firstErr error
	for _, ls := range lengthScales {
		g := newGP(ls, signalVar, noiseVar)
		if err := g.fit(x, y); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		lml, err := g.logMarginalLikelihood()
		if err != nil {
			continue
		}
		if lml > bestLML {
			bestLML = lml
			best = g
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, errors.New("bo: no length scale produced a valid fit")
	}
	return best, nil
}

// predict returns the posterior mean and standard deviation at x, in the
// original target units.
func (g *gp) predict(x []float64) (mu, sigma float64, err error) {
	if !g.trained {
		return 0, 0, errors.New("bo: predict before fit")
	}
	n := len(g.x)
	ks := make([]float64, n)
	for i := 0; i < n; i++ {
		ks[i] = g.kernel(x, g.x[i])
	}
	muStd := mathx.Dot(ks, g.alpha)
	v, err := mathx.SolveLower(g.chol, ks)
	if err != nil {
		return 0, 0, err
	}
	var2 := g.kernel(x, x) - mathx.Dot(v, v)
	if var2 < 0 {
		var2 = 0
	}
	return muStd*g.yStd + g.yMean, math.Sqrt(var2) * g.yStd, nil
}
