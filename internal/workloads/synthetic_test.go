package workloads

import (
	"testing"

	"aarc/internal/workflow"
)

func TestSyntheticOptionErrors(t *testing.T) {
	if _, err := Synthetic(SyntheticOptions{Layers: 0, MaxWidth: 2}); err == nil {
		t.Error("zero layers should error")
	}
	if _, err := Synthetic(SyntheticOptions{Layers: 2, MaxWidth: 0}); err == nil {
		t.Error("zero width should error")
	}
	if _, err := Synthetic(SyntheticOptions{Layers: 2, MaxWidth: 2, SLOFactor: 0.5}); err == nil {
		t.Error("SLOFactor <= 1 should error")
	}
}

// Property: every generated workflow validates, has a single source and a
// single sink, and its base configuration meets the SLO.
func TestSyntheticValidAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		spec, err := Synthetic(SyntheticOptions{Layers: 3, MaxWidth: 3, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if src := spec.G.Sources(); len(src) != 1 || src[0] != "start" {
			t.Errorf("seed %d: sources = %v", seed, src)
		}
		if snk := spec.G.Sinks(); len(snk) != 1 || snk[0] != "end" {
			t.Errorf("seed %d: sinks = %v", seed, snk)
		}
		runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{HostCores: 96})
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.MeanEvaluate(spec.Base)
		if err != nil {
			t.Fatal(err)
		}
		if res.OOM {
			t.Errorf("seed %d: base config OOMs", seed)
		}
		if res.E2EMS > spec.SLOMS {
			t.Errorf("seed %d: base e2e %.0f exceeds auto-SLO %.0f", seed, res.E2EMS, spec.SLOMS)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(SyntheticOptions{Layers: 3, MaxWidth: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(SyntheticOptions{Layers: 3, MaxWidth: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumNodes() != b.G.NumNodes() || a.G.NumEdges() != b.G.NumEdges() || a.SLOMS != b.SLOMS {
		t.Error("same seed should generate the identical workflow")
	}
	c, err := Synthetic(SyntheticOptions{Layers: 3, MaxWidth: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumNodes() == c.G.NumNodes() && a.G.NumEdges() == c.G.NumEdges() && a.SLOMS == c.SLOMS {
		t.Error("different seeds should (very likely) generate different workflows")
	}
}

func TestSyntheticSizeGrowsWithShape(t *testing.T) {
	small, _ := Synthetic(SyntheticOptions{Layers: 1, MaxWidth: 1, Seed: 1})
	big, _ := Synthetic(SyntheticOptions{Layers: 6, MaxWidth: 4, Seed: 1})
	if big.G.NumNodes() <= small.G.NumNodes() {
		t.Errorf("bigger shape should give more nodes: %d vs %d", big.G.NumNodes(), small.G.NumNodes())
	}
}
