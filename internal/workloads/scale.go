package workloads

import (
	"fmt"
	"math"
	"math/rand/v2"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/workflow"
)

// Topology names a scale-regime DAG family.
type Topology string

// The five generated topology families. They stress different parts of the
// scheduler: fanout maximizes the concurrent running set (host contention),
// chain maximizes critical-path length, diamond alternates scatter/join
// barriers, layered approximates real multi-stage pipelines, and random
// produces irregular heavy-cross-edge DAGs.
const (
	TopologyLayered Topology = "layered"
	TopologyFanout  Topology = "fanout"
	TopologyChain   Topology = "chain"
	TopologyDiamond Topology = "diamond"
	TopologyRandom  Topology = "random"
)

// Topologies lists every scale topology family in a stable order.
func Topologies() []Topology {
	return []Topology{TopologyLayered, TopologyFanout, TopologyChain, TopologyDiamond, TopologyRandom}
}

// ScaleOptions parameterizes the scale-regime workload generator, which
// extends the layered Synthetic generator to the 10k-node regime the
// incremental plan-compilation path is built for.
type ScaleOptions struct {
	// Topology selects the DAG family.
	Topology Topology
	// Nodes is the exact node count (≥3).
	Nodes int
	// Seed drives every topology and profile draw; equal options generate
	// byte-identical specs (CanonicalJSON) on every run.
	Seed uint64
	// Degree controls extra-edge density for the layered and random
	// families and the scatter width of diamond stages (default 3).
	Degree int
	// HeavyTail switches per-function work multipliers from uniform
	// [0.5, 2) to a capped Pareto draw, giving the straggler-dominated
	// runtime distributions observed in production traces.
	HeavyTail bool
	// SLOFactor sets the SLO as a multiple of the base-configuration
	// critical-path runtime (default 2.0; must exceed 1).
	SLOFactor float64
}

// drawScale returns the per-function work multiplier.
func drawScale(rng *rand.Rand, heavy bool) float64 {
	if !heavy {
		return 0.5 + rng.Float64()*1.5
	}
	// Pareto with x_m = 0.5, alpha = 1.2, capped so a single straggler
	// cannot fully dominate the critical path.
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	s := 0.5 / math.Pow(u, 1/1.2)
	return math.Min(s, 25)
}

// scaleProfile draws one function profile (same archetype mix as the
// Synthetic generator, lighter absolute work so 10k-node evaluations stay
// fast).
func scaleProfile(rng *rand.Rand, name string, heavy bool) perfmodel.Profile {
	base := perfmodel.Profile{Name: name, NoiseStd: defaultNoise, PressureK: 1.5}
	scale := drawScale(rng, heavy)
	switch rng.IntN(4) {
	case 0: // compute-bound
		base.CPUWorkMS = 4000 * scale
		base.ParallelFrac = 0.8
		base.MaxParallel = 8
		base.IOMS = 200
		base.FootprintMB = 512
		base.MinMemMB = 256
	case 1: // memory-bound
		base.CPUWorkMS = 2500 * scale
		base.ParallelFrac = 0.6
		base.MaxParallel = 8
		base.IOMS = 300
		base.FootprintMB = 2048
		base.MinMemMB = 1024
		base.PressureK = 2
	case 2: // I/O-bound
		base.CPUWorkMS = 500 * scale
		base.ParallelFrac = 0.2
		base.MaxParallel = 2
		base.IOMS = 1500 * scale
		base.FootprintMB = 512
		base.MinMemMB = 256
	default: // balanced
		base.CPUWorkMS = 1500 * scale
		base.ParallelFrac = 0.5
		base.MaxParallel = 4
		base.IOMS = 500
		base.FootprintMB = 1024
		base.MinMemMB = 512
	}
	return base
}

// Scale generates a workflow of the requested family and exact node count.
// All draws come from one seeded PCG stream over deterministic iteration
// orders, so the same options produce byte-identical canonical specs across
// runs, processes and goroutines.
func Scale(opts ScaleOptions) (*workflow.Spec, error) {
	if opts.Nodes < 3 {
		return nil, fmt.Errorf("workloads: Scale needs >=3 nodes, got %d", opts.Nodes)
	}
	if opts.Degree <= 0 {
		opts.Degree = 3
	}
	if opts.SLOFactor == 0 {
		opts.SLOFactor = 2
	}
	if opts.SLOFactor <= 1 {
		return nil, fmt.Errorf("workloads: SLOFactor must exceed 1, got %v", opts.SLOFactor)
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x5ca1e))
	n := opts.Nodes
	g := dag.NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%06d", i))
	}
	ids := g.Nodes()

	switch opts.Topology {
	case TopologyChain:
		for i := 1; i < n; i++ {
			g.MustAddEdge(ids[i-1], ids[i])
		}
	case TopologyFanout:
		// One wide scatter: start → n-2 workers → end.
		for i := 1; i < n-1; i++ {
			g.MustAddEdge(ids[0], ids[i])
			g.MustAddEdge(ids[i], ids[n-1])
		}
	case TopologyDiamond:
		// Alternating scatter/join lattice: join_k → width parallel → join_k+1.
		maxW := 2 + opts.Degree*2
		join := 0 // index of the current join node
		next := 1
		for next < n {
			remaining := n - next
			if remaining == 1 {
				g.MustAddEdge(ids[join], ids[next])
				next++
				continue
			}
			width := 1 + rng.IntN(maxW)
			if width > remaining-1 {
				width = remaining - 1
			}
			newJoin := next + width
			for i := next; i < newJoin; i++ {
				g.MustAddEdge(ids[join], ids[i])
				g.MustAddEdge(ids[i], ids[newJoin])
			}
			join = newJoin
			next = newJoin + 1
		}
	case TopologyLayered:
		// Random-width layers around sqrt(n), each node wired to the
		// previous layer plus occasional long-range edges.
		w := int(math.Sqrt(float64(n)))
		if w < 1 {
			w = 1
		}
		prev := []int{0}
		next := 1
		for next < n {
			width := 1 + rng.IntN(2*w)
			if width > n-next {
				width = n - next
			}
			cur := make([]int, 0, width)
			for i := next; i < next+width; i++ {
				g.MustAddEdge(ids[prev[rng.IntN(len(prev))]], ids[i])
				for k := 0; k < opts.Degree; k++ {
					_ = g.AddEdge(ids[prev[rng.IntN(len(prev))]], ids[i]) // dups ignored
				}
				if next > 1 && rng.Float64() < 0.05 {
					_ = g.AddEdge(ids[rng.IntN(next)], ids[i]) // long-range, dups ignored
				}
				cur = append(cur, i)
			}
			prev = cur
			next += width
		}
	case TopologyRandom:
		// Every node claims a guaranteed earlier predecessor (keeping one
		// component) plus Degree extra random back-edges.
		for i := 1; i < n; i++ {
			g.MustAddEdge(ids[rng.IntN(i)], ids[i])
			for k := 0; k < opts.Degree; k++ {
				_ = g.AddEdge(ids[rng.IntN(i)], ids[i]) // dups ignored
			}
		}
	default:
		return nil, fmt.Errorf("workloads: unknown topology %q", opts.Topology)
	}

	profiles := make(map[string]perfmodel.Profile, n)
	for _, id := range ids {
		profiles[id] = scaleProfile(rng, id, opts.HeavyTail)
	}
	// Group scatter siblings onto shared configurations: bounded group count
	// keeps the per-group search tractable at 10k nodes.
	numGroups := n / 8
	if numGroups < 1 {
		numGroups = 1
	}
	if numGroups > 256 {
		numGroups = 256
	}
	groups := make(map[string]string, n)
	for i, id := range ids {
		groups[id] = fmt.Sprintf("g%04d", i%numGroups)
	}

	spec := &workflow.Spec{
		Name:     fmt.Sprintf("scale-%s-%d-%d", opts.Topology, opts.Nodes, opts.Seed),
		G:        g,
		Profiles: profiles,
		Groups:   groups,
		SLOMS:    1, // placeholder until computed below
		Limits:   resources.DefaultLimits(),
	}
	base := resources.Config{CPU: 4, MemMB: 8192}
	spec.Base = resources.Uniform(spec.FunctionGroups(), base)

	// SLO: SLOFactor × the base critical-path runtime (analytic), with cold
	// start head-room.
	weights := make(map[string]float64, n)
	for _, id := range ids {
		t, err := profiles[id].MeanRuntime(base, 1)
		if err != nil {
			return nil, err
		}
		weights[id] = t
	}
	_, cpWeight, err := dag.CriticalPath(g, weights)
	if err != nil {
		return nil, err
	}
	spec.SLOMS = opts.SLOFactor*cpWeight + 5_000

	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
