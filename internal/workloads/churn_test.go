package workloads

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"aarc/internal/workflow"
)

// churnStep applies one random churn primitive to the spec and returns a
// description for failure messages.
func churnStep(t *testing.T, spec *workflow.Spec, rng *rand.Rand) string {
	t.Helper()
	var (
		d    workflow.Delta
		err  error
		kind string
	)
	switch rng.IntN(3) {
	case 0:
		kind = "add"
		d, err = AddRandomNodes(spec, rng, 1+rng.IntN(3))
	case 1:
		kind = "delete"
		d, err = DeleteRandomNodes(spec, rng, 1+rng.IntN(3))
	default:
		kind = "rewire"
		d, err = RewireRandomEdges(spec, rng, 1+rng.IntN(4))
	}
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	if err := spec.Apply(d); err != nil {
		t.Fatalf("%s: apply: %v", kind, err)
	}
	return kind
}

// TestChurnPreservesValidity drives a spec through hundreds of random churn
// steps and asserts the invariants the primitives promise: the spec stays a
// valid (acyclic, connected, fully profiled and base-covered) workflow after
// every step.
func TestChurnPreservesValidity(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		spec, err := Scale(ScaleOptions{Topology: TopologyRandom, Nodes: 120, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(seed, 0xc4a2))
		for step := 0; step < 150; step++ {
			kind := churnStep(t, spec, rng)
			if err := spec.Validate(); err != nil {
				t.Fatalf("seed %d step %d (%s): spec invalid: %v", seed, step, kind, err)
			}
		}
	}
}

// TestChurnDeterministic asserts that the same seed drives the same churn
// trajectory: two specs churned with identically seeded rngs stay
// byte-identical in canonical form.
func TestChurnDeterministic(t *testing.T) {
	mk := func() (*workflow.Spec, *rand.Rand) {
		spec, err := Scale(ScaleOptions{Topology: TopologyLayered, Nodes: 150, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return spec, rand.New(rand.NewPCG(77, 0xfeed))
	}
	sa, ra := mk()
	sb, rb := mk()
	for step := 0; step < 80; step++ {
		churnStep(t, sa, ra)
		churnStep(t, sb, rb)
		ba, err := workflow.CanonicalJSON(sa)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := workflow.CanonicalJSON(sb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("step %d: churn trajectories diverged", step)
		}
	}
}

// TestChurnGrowsAndShrinks sanity-checks that the primitives actually edit
// the graph (a silent no-op churn stream would make the differential
// harness vacuous).
func TestChurnGrowsAndShrinks(t *testing.T) {
	spec, err := Scale(ScaleOptions{Topology: TopologyDiamond, Nodes: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 0x90))
	d, err := AddRandomNodes(spec, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.AddNodes) == 0 {
		t.Fatal("AddRandomNodes produced no nodes")
	}
	if err := spec.Apply(d); err != nil {
		t.Fatal(err)
	}
	if spec.G.NumNodes() != 100+len(d.AddNodes) {
		t.Fatalf("node count %d after adding %d", spec.G.NumNodes(), len(d.AddNodes))
	}
	d, err = DeleteRandomNodes(spec, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RemoveNodes) == 0 {
		t.Fatal("DeleteRandomNodes selected no victims")
	}
	before := spec.G.NumNodes()
	if err := spec.Apply(d); err != nil {
		t.Fatal(err)
	}
	if spec.G.NumNodes() != before-len(d.RemoveNodes) {
		t.Fatalf("node count %d after removing %d from %d", spec.G.NumNodes(), len(d.RemoveNodes), before)
	}
	d, err = RewireRandomEdges(spec, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.RemoveEdges) == 0 || len(d.RemoveEdges) != len(d.AddEdges) {
		t.Fatalf("rewire emitted %d removals, %d additions", len(d.RemoveEdges), len(d.AddEdges))
	}
	if err := spec.Apply(d); err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func ExampleScale() {
	spec, _ := Scale(ScaleOptions{Topology: TopologyDiamond, Nodes: 12, Seed: 1})
	fmt.Println(spec.Name, spec.G.NumNodes())
	// Output: scale-diamond-12-1 12
}
