package workloads

import (
	"fmt"
	"math/rand/v2"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/workflow"
)

// SyntheticOptions parameterizes the random workflow generator. The
// generator exists because 46% of serverless applications are multi-function
// workflows of widely varying shapes (Shahrad et al., cited as [7] in the
// paper); it lets the scalability experiment and the property-based tests
// exercise the searchers on DAGs beyond the three paper workloads.
type SyntheticOptions struct {
	// Layers is the number of stages between the implicit start and end
	// functions (≥1).
	Layers int
	// MaxWidth bounds the number of parallel functions per stage (≥1).
	MaxWidth int
	// Seed drives the topology and profile draws.
	Seed uint64
	// SLOFactor sets the SLO as a multiple of the base-configuration
	// critical-path runtime (default 2.0 when zero). Values ≤1 make the
	// base configuration infeasible.
	SLOFactor float64
}

// profile archetypes the generator draws from: compute-bound, memory-bound,
// I/O-bound and balanced functions, covering the affinity spectrum of §II-A.
func syntheticArchetype(rng *rand.Rand, name string) perfmodel.Profile {
	base := perfmodel.Profile{Name: name, NoiseStd: 0.02, PressureK: 1.5}
	scale := 0.5 + rng.Float64()*1.5 // per-function work multiplier
	switch rng.IntN(4) {
	case 0: // compute-bound, highly parallel
		base.CPUWorkMS = 30_000 * scale
		base.ParallelFrac = 0.8 + rng.Float64()*0.15
		base.MaxParallel = 8
		base.IOMS = 500
		base.FootprintMB = 512
		base.MinMemMB = 256
	case 1: // memory-bound
		base.CPUWorkMS = 20_000 * scale
		base.ParallelFrac = 0.6
		base.MaxParallel = 8
		base.IOMS = 1000
		base.FootprintMB = 3072 + float64(rng.IntN(4))*1024
		base.MinMemMB = base.FootprintMB / 2
		base.PressureK = 2
	case 2: // I/O-bound
		base.CPUWorkMS = 3000 * scale
		base.ParallelFrac = 0.2
		base.MaxParallel = 2
		base.IOMS = 8000 * scale
		base.FootprintMB = 512
		base.MinMemMB = 256
	default: // balanced
		base.CPUWorkMS = 12_000 * scale
		base.ParallelFrac = 0.5
		base.MaxParallel = 4
		base.IOMS = 2000
		base.FootprintMB = 1024
		base.MinMemMB = 512
	}
	return base
}

// Synthetic generates a random layered workflow: start → L1 → … → Ln → end,
// where every stage node has at least one predecessor in the previous stage
// and extra cross edges appear with moderate probability. The SLO is set
// relative to the base configuration's critical-path runtime so generated
// workflows are always configurable.
func Synthetic(opts SyntheticOptions) (*workflow.Spec, error) {
	if opts.Layers < 1 {
		return nil, fmt.Errorf("workloads: Synthetic needs >=1 layer, got %d", opts.Layers)
	}
	if opts.MaxWidth < 1 {
		return nil, fmt.Errorf("workloads: Synthetic needs MaxWidth >=1, got %d", opts.MaxWidth)
	}
	if opts.SLOFactor == 0 {
		opts.SLOFactor = 2
	}
	if opts.SLOFactor <= 1 {
		return nil, fmt.Errorf("workloads: SLOFactor must exceed 1, got %v", opts.SLOFactor)
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x5e17))

	g := dag.New()
	profiles := map[string]perfmodel.Profile{}

	g.MustAddNode("start")
	profiles["start"] = perfmodel.Profile{
		Name: "start", CPUWorkMS: 500, IOMS: 500,
		FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: 0.02,
	}
	prev := []string{"start"}
	for l := 0; l < opts.Layers; l++ {
		width := 1 + rng.IntN(opts.MaxWidth)
		var cur []string
		for i := 0; i < width; i++ {
			id := fmt.Sprintf("f%02d_%02d", l+1, i+1)
			g.MustAddNode(id)
			profiles[id] = syntheticArchetype(rng, id)
			cur = append(cur, id)
			// Guaranteed predecessor keeps the DAG connected.
			g.MustAddEdge(prev[rng.IntN(len(prev))], id)
			for _, p := range prev {
				if rng.Float64() < 0.25 {
					// Ignore duplicate-edge errors from the guaranteed pick.
					_ = g.AddEdge(p, id)
				}
			}
		}
		prev = cur
	}
	g.MustAddNode("end")
	profiles["end"] = perfmodel.Profile{
		Name: "end", CPUWorkMS: 500, IOMS: 500,
		FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: 0.02,
	}
	for _, p := range prev {
		g.MustAddEdge(p, "end")
	}
	// Stage nodes that ended up without successors (when later layers
	// attached elsewhere) drain to end too, keeping a single sink.
	for _, id := range g.Nodes() {
		if id != "end" && len(g.Succ(id)) == 0 {
			g.MustAddEdge(id, "end")
		}
	}

	base := resources.Config{CPU: 4, MemMB: 8192}
	spec := &workflow.Spec{
		Name:     fmt.Sprintf("synthetic-%dx%d-%d", opts.Layers, opts.MaxWidth, opts.Seed),
		G:        g,
		Profiles: profiles,
		SLOMS:    1, // placeholder until computed below
		Limits:   resources.DefaultLimits(),
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), base)

	// SLO: SLOFactor × the base critical-path runtime (analytic, noise-free).
	weights := make(map[string]float64, len(profiles))
	for id, p := range profiles {
		t, err := p.MeanRuntime(base, 1)
		if err != nil {
			return nil, err
		}
		weights[id] = t
	}
	_, cpWeight, err := dag.CriticalPath(g, weights)
	if err != nil {
		return nil, err
	}
	// Head-room for cold starts (~1s per critical function).
	spec.SLOMS = opts.SLOFactor*cpWeight + 5_000

	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
