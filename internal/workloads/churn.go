package workloads

import (
	"fmt"
	"math/rand/v2"

	"aarc/internal/resources"
	"aarc/internal/workflow"
)

// Churn primitives: random in-place topology edits expressed as
// workflow.Delta values. Each primitive only adds edges between nodes that
// were already connected by a directed path in the pre-delta graph (or to a
// freshly inserted node), so the emitted deltas keep the DAG acyclic, and
// removals bridge every predecessor to every successor, so the workflow
// stays one connected component with a source and a sink. The differential
// test harness feeds these deltas to Runner.Patch and asserts the
// incrementally patched state equals a from-scratch rebuild.

func hasEdge(s *workflow.Spec, u, v string) bool {
	for _, x := range s.G.Succ(u) {
		if x == v {
			return true
		}
	}
	return false
}

// freshID draws an unused node name from the rng stream; used tracks names
// claimed earlier in the same delta.
func freshID(s *workflow.Spec, rng *rand.Rand, used map[string]bool) string {
	for {
		id := fmt.Sprintf("x%08x", rng.Uint64()&0xffffffff)
		if !s.G.HasNode(id) && !used[id] {
			used[id] = true
			return id
		}
	}
}

// AddRandomNodes emits a Delta inserting up to n new nodes, each spliced
// between the endpoints of an existing edge u → v (edges u→x and x→v are
// added; the original edge is kept as a parallel path, which can never close
// a cycle). The new node copies the upstream neighbor's profile with a
// jittered compute demand, forms its own configuration group, and inherits
// the neighbor group's base config. Fewer than n insertions result when the
// rng fails to find eligible edges.
func AddRandomNodes(spec *workflow.Spec, rng *rand.Rand, n int) (workflow.Delta, error) {
	if spec == nil || spec.G == nil {
		return workflow.Delta{}, fmt.Errorf("workloads: AddRandomNodes: nil spec")
	}
	var d workflow.Delta
	ids := spec.G.Nodes()
	used := make(map[string]bool, n)
	for k := 0; k < n; k++ {
		var u, v string
		for attempt := 0; attempt < 32; attempt++ {
			c := ids[rng.IntN(len(ids))]
			if ss := spec.G.Succ(c); len(ss) > 0 {
				u, v = c, ss[rng.IntN(len(ss))]
				break
			}
		}
		if u == "" {
			continue
		}
		id := freshID(spec, rng, used)
		prof := spec.Profiles[u]
		prof.Name = id
		prof.CPUWorkMS *= 0.8 + 0.4*rng.Float64()
		d.AddNodes = append(d.AddNodes, workflow.NodeAdd{ID: id, Profile: prof})
		d.AddEdges = append(d.AddEdges,
			workflow.Edge{From: u, To: id},
			workflow.Edge{From: id, To: v})
		if d.Base == nil {
			d.Base = make(resources.Assignment, n)
		}
		d.Base[id] = spec.Base[spec.GroupOf(u)]
	}
	return d, nil
}

// DeleteRandomNodes emits a Delta removing up to n interior nodes (nodes
// with at least one predecessor and one successor). For every removed node
// w, each predecessor is bridged to each successor with a direct edge unless
// one already exists — the bridge parallels the old p→w→s path, so it cannot
// close a cycle, and it preserves connectivity and every other node's
// source/sink status. Nodes adjacent to an already-selected victim are
// skipped so bridges never reference removed nodes.
func DeleteRandomNodes(spec *workflow.Spec, rng *rand.Rand, n int) (workflow.Delta, error) {
	if spec == nil || spec.G == nil {
		return workflow.Delta{}, fmt.Errorf("workloads: DeleteRandomNodes: nil spec")
	}
	var d workflow.Delta
	ids := spec.G.Nodes()
	excluded := make(map[string]bool) // victims and their neighbors
	added := make(map[workflow.Edge]bool)
	for k := 0; k < n; k++ {
		var w string
		for attempt := 0; attempt < 64; attempt++ {
			c := ids[rng.IntN(len(ids))]
			if excluded[c] || spec.G.InDegree(c) == 0 || spec.G.OutDegree(c) == 0 {
				continue
			}
			w = c
			break
		}
		if w == "" {
			continue
		}
		preds, succs := spec.G.Pred(w), spec.G.Succ(w)
		excluded[w] = true
		for _, p := range preds {
			excluded[p] = true
		}
		for _, s := range succs {
			excluded[s] = true
		}
		d.RemoveNodes = append(d.RemoveNodes, w)
		for _, p := range preds {
			for _, s := range succs {
				e := workflow.Edge{From: p, To: s}
				if !hasEdge(spec, p, s) && !added[e] {
					added[e] = true
					d.AddEdges = append(d.AddEdges, e)
				}
			}
		}
	}
	return d, nil
}

// RewireRandomEdges emits a Delta replacing up to n edges u→v with a skip
// edge u→t to a grandchild t of u through v. The replacement edge parallels
// the existing u→v→t path, so it cannot close a cycle; v keeps its v→t edge,
// so connectivity survives even when u→v was v's only in-edge (v simply
// becomes an extra source).
func RewireRandomEdges(spec *workflow.Spec, rng *rand.Rand, n int) (workflow.Delta, error) {
	if spec == nil || spec.G == nil {
		return workflow.Delta{}, fmt.Errorf("workloads: RewireRandomEdges: nil spec")
	}
	var d workflow.Delta
	ids := spec.G.Nodes()
	removed := make(map[workflow.Edge]bool)
	added := make(map[workflow.Edge]bool)
	for k := 0; k < n; k++ {
		for attempt := 0; attempt < 64; attempt++ {
			u := ids[rng.IntN(len(ids))]
			us := spec.G.Succ(u)
			if len(us) == 0 {
				continue
			}
			v := us[rng.IntN(len(us))]
			vs := spec.G.Succ(v)
			if len(vs) == 0 {
				continue
			}
			t := vs[rng.IntN(len(vs))]
			old := workflow.Edge{From: u, To: v}
			skip := workflow.Edge{From: u, To: t}
			if removed[old] || added[old] || removed[skip] || added[skip] || hasEdge(spec, u, t) {
				continue
			}
			removed[old] = true
			added[skip] = true
			d.RemoveEdges = append(d.RemoveEdges, old)
			d.AddEdges = append(d.AddEdges, skip)
			break
		}
	}
	return d, nil
}
