// Package workloads defines the three serverless workflows of the paper's
// evaluation (Fig. 1): Chatbot and Video Analysis with scatter communication
// patterns, ML Pipeline with a broadcast pattern. Each comes with analytic
// performance profiles calibrated so the simulator reproduces the paper's
// observed resource affinities:
//
//   - Chatbot: compute-bound classifiers whose cost optimum sits near
//     1 vCPU / 512 MB (Fig. 2a);
//   - ML Pipeline: high CPU, low memory demand — optimum near
//     4 vCPU / 512 MB, an 87.5% memory reduction off the coupled base
//     (Fig. 2b, §II-A);
//   - Video Analysis: memory-hungry and highly parallel — optimum near
//     8 vCPU / ~5 GB (Fig. 2c), and input-sensitive (§IV-D).
//
// The Amdahl parallel fractions are chosen so the analytic cost optimum
// c* = sqrt(µ1·m·P/(µ0·S)) lands at the paper's per-workflow optima; see
// DESIGN.md §5.
package workloads

import (
	"fmt"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/workflow"
)

// Default measurement noise applied to every profile.
const defaultNoise = 0.02

// SLOs from §IV-A.c, in milliseconds.
const (
	ChatbotSLOMS       = 120_000
	MLPipelineSLOMS    = 120_000
	VideoAnalysisSLOMS = 600_000
)

// ChatbotScatterWidth is the number of parallel classifier instances the
// Split stage scatters to ("trains classifiers in parallel").
const ChatbotScatterWidth = 20

// VideoScatterWidth is the number of video chunks Split produces; each chunk
// flows through its own Extract → Classify chain.
const VideoScatterWidth = 4

// Chatbot builds the Chatbot workflow: Start → Split → Classify×N → End.
func Chatbot() *workflow.Spec {
	g := dag.New()
	g.MustAddNode("start")
	g.MustAddNode("split")
	classifiers := make([]string, ChatbotScatterWidth)
	for i := range classifiers {
		classifiers[i] = fmt.Sprintf("classify_%02d", i+1)
		g.MustAddNode(classifiers[i])
	}
	g.MustAddNode("end")
	g.MustAddEdge("start", "split")
	for _, c := range classifiers {
		g.MustAddEdge("split", c)
		g.MustAddEdge(c, "end")
	}

	profiles := map[string]perfmodel.Profile{
		"start": {
			Name: "start", CPUWorkMS: 1000, ParallelFrac: 0, IOMS: 500,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: defaultNoise,
		},
		"split": {
			Name: "split", CPUWorkMS: 6000, ParallelFrac: 0.3, MaxParallel: 4, IOMS: 1500,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: defaultNoise,
		},
		"end": {
			Name: "end", CPUWorkMS: 800, ParallelFrac: 0, IOMS: 700,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: defaultNoise,
		},
	}
	groups := map[string]string{}
	for _, c := range classifiers {
		// 50/50 serial/parallel split puts the classifiers' cost-optimal
		// core count at c* = sqrt(P/S) = 1 when memory sits at its 512 MB
		// footprint.
		profiles[c] = perfmodel.Profile{
			Name: "classify", CPUWorkMS: 80_000, ParallelFrac: 0.5, MaxParallel: 8, IOMS: 1000,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1.5, NoiseStd: defaultNoise,
		}
		groups[c] = "classify"
	}

	base := resources.Config{CPU: 4, MemMB: 4096}
	spec := &workflow.Spec{
		Name:     "chatbot",
		G:        g,
		Profiles: profiles,
		Groups:   groups,
		SLOMS:    ChatbotSLOMS,
		Limits:   resources.DefaultLimits(),
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), base)
	return spec
}

// MLPipeline builds the ML Pipeline workflow (broadcast pattern):
//
//	Start → TrainData → TrainPCA → ParamTune ─┐
//	Start → TestData  → TestPCA ──────────────┤→ Combine → End
func MLPipeline() *workflow.Spec {
	g := dag.New()
	for _, id := range []string{"start", "train_data", "train_pca", "paramtune", "test_data", "test_pca", "combine", "end"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("start", "train_data")
	g.MustAddEdge("start", "test_data")
	g.MustAddEdge("train_data", "train_pca")
	g.MustAddEdge("train_pca", "paramtune")
	g.MustAddEdge("test_data", "test_pca")
	g.MustAddEdge("paramtune", "combine")
	g.MustAddEdge("test_pca", "combine")
	g.MustAddEdge("combine", "end")

	profiles := map[string]perfmodel.Profile{
		"start": {
			Name: "start", CPUWorkMS: 1000, ParallelFrac: 0, IOMS: 500,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: defaultNoise,
		},
		"train_data": {
			Name: "train_data", CPUWorkMS: 8000, ParallelFrac: 0.2, MaxParallel: 4, IOMS: 2000,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: defaultNoise,
		},
		"train_pca": {
			Name: "train_pca", CPUWorkMS: 30_000, ParallelFrac: 0.8, MaxParallel: 8, IOMS: 500,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: defaultNoise,
		},
		// ParamTune dominates the pipeline; p = 16/17 puts its optimal core
		// count at c* = sqrt(µ1·512·P/(µ0·S)) = sqrt(P/S) = 4 at the 512 MB
		// footprint — the paper's "high CPU and low memory demands".
		"paramtune": {
			Name: "paramtune", CPUWorkMS: 150_000, ParallelFrac: 16.0 / 17.0, MaxParallel: 16, IOMS: 1000,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: defaultNoise,
		},
		"test_data": {
			Name: "test_data", CPUWorkMS: 5000, ParallelFrac: 0.2, MaxParallel: 4, IOMS: 1500,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: defaultNoise,
		},
		"test_pca": {
			Name: "test_pca", CPUWorkMS: 15_000, ParallelFrac: 0.8, MaxParallel: 8, IOMS: 500,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: defaultNoise,
		},
		"combine": {
			Name: "combine", CPUWorkMS: 20_000, ParallelFrac: 0.6, MaxParallel: 8, IOMS: 1000,
			FootprintMB: 512, MinMemMB: 256, PressureK: 1, NoiseStd: defaultNoise,
		},
		"end": {
			Name: "end", CPUWorkMS: 800, ParallelFrac: 0, IOMS: 700,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: defaultNoise,
		},
	}

	base := resources.Config{CPU: 4, MemMB: 4096}
	spec := &workflow.Spec{
		Name:     "ml-pipeline",
		G:        g,
		Profiles: profiles,
		SLOMS:    MLPipelineSLOMS,
		Limits:   resources.DefaultLimits(),
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), base)
	return spec
}

// VideoAnalysis builds the Video Analysis workflow (scatter pattern):
// Start → Split → (Extract_i → Classify_i)×N → End. Its stages are
// input-sensitive: work, I/O and memory footprints scale with the input
// video size, which drives the §IV-D input-aware experiments.
func VideoAnalysis() *workflow.Spec {
	g := dag.New()
	g.MustAddNode("start")
	g.MustAddNode("split")
	extracts := make([]string, VideoScatterWidth)
	classifies := make([]string, VideoScatterWidth)
	for i := 0; i < VideoScatterWidth; i++ {
		extracts[i] = fmt.Sprintf("extract_%02d", i+1)
		classifies[i] = fmt.Sprintf("classify_%02d", i+1)
		g.MustAddNode(extracts[i])
		g.MustAddNode(classifies[i])
	}
	g.MustAddNode("end")
	g.MustAddEdge("start", "split")
	for i := 0; i < VideoScatterWidth; i++ {
		g.MustAddEdge("split", extracts[i])
		g.MustAddEdge(extracts[i], classifies[i])
		g.MustAddEdge(classifies[i], "end")
	}

	profiles := map[string]perfmodel.Profile{
		"start": {
			Name: "start", CPUWorkMS: 1000, ParallelFrac: 0, IOMS: 1000,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: defaultNoise,
		},
		"split": {
			Name: "split", CPUWorkMS: 30_000, ParallelFrac: 0.4, MaxParallel: 4, IOMS: 15_000,
			FootprintMB: 2048, MinMemMB: 1024, PressureK: 1.5, NoiseStd: defaultNoise,
			InputSensitive: true,
		},
		"end": {
			Name: "end", CPUWorkMS: 1000, ParallelFrac: 0, IOMS: 1000,
			FootprintMB: 256, MinMemMB: 128, PressureK: 1, NoiseStd: defaultNoise,
		},
	}
	groups := map[string]string{}
	for i := 0; i < VideoScatterWidth; i++ {
		// Extract: memory-hungry frame decoding; p = 6.4/7.4 puts
		// c* = sqrt(10·P/S) = 8 at the 5120 MB footprint.
		// The OOM floor sits well below the footprint: an under-provisioned
		// extractor pages and slows down (pressure) long before the kernel
		// kills it, so static configurations degrade rather than abort on
		// heavy inputs (§IV-D).
		profiles[extracts[i]] = perfmodel.Profile{
			Name: "extract", CPUWorkMS: 616_000, ParallelFrac: 6.4 / 7.4, MaxParallel: 16, IOMS: 5000,
			FootprintMB: 5120, MinMemMB: 1536, PressureK: 2, NoiseStd: defaultNoise,
			InputSensitive: true,
		}
		groups[extracts[i]] = "extract"
		// Classify: moderately parallel CNN inference; c* = 4 at 2048 MB.
		profiles[classifies[i]] = perfmodel.Profile{
			Name: "classify", CPUWorkMS: 120_000, ParallelFrac: 0.8, MaxParallel: 8, IOMS: 3000,
			FootprintMB: 2048, MinMemMB: 1024, PressureK: 1.5, NoiseStd: defaultNoise,
			InputSensitive: true,
		}
		groups[classifies[i]] = "classify"
	}

	base := resources.Config{CPU: 8, MemMB: 8192}
	spec := &workflow.Spec{
		Name:     "video-analysis",
		G:        g,
		Profiles: profiles,
		Groups:   groups,
		SLOMS:    VideoAnalysisSLOMS,
		Limits:   resources.DefaultLimits(),
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), base)
	return spec
}

// ByName returns a workload spec by its canonical name.
func ByName(name string) (*workflow.Spec, error) {
	switch name {
	case "chatbot":
		return Chatbot(), nil
	case "ml-pipeline", "mlpipeline", "ml":
		return MLPipeline(), nil
	case "video-analysis", "videoanalysis", "video":
		return VideoAnalysis(), nil
	default:
		return nil, fmt.Errorf("workloads: unknown workload %q (want chatbot, ml-pipeline or video-analysis)", name)
	}
}

// All returns the three paper workloads in presentation order.
func All() []*workflow.Spec {
	return []*workflow.Spec{Chatbot(), MLPipeline(), VideoAnalysis()}
}
