package workloads

import (
	"math"
	"testing"

	"aarc/internal/resources"
	"aarc/internal/workflow"
)

func resourcesConfig(cpu, mem float64) resources.Config {
	return resources.Config{CPU: cpu, MemMB: mem}
}

func TestAllSpecsValidate(t *testing.T) {
	for _, spec := range All() {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"chatbot":        "chatbot",
		"ml-pipeline":    "ml-pipeline",
		"mlpipeline":     "ml-pipeline",
		"ml":             "ml-pipeline",
		"video-analysis": "video-analysis",
		"video":          "video-analysis",
	} {
		spec, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if spec.Name != want {
			t.Errorf("ByName(%q) = %s", name, spec.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestChatbotShape(t *testing.T) {
	spec := Chatbot()
	if spec.SLOMS != 120_000 {
		t.Errorf("SLO = %v", spec.SLOMS)
	}
	groups := spec.FunctionGroups()
	if len(groups) != 4 {
		t.Errorf("groups = %v, want 4 (start, split, classify, end)", groups)
	}
	if n := len(spec.NodesInGroup("classify")); n != ChatbotScatterWidth {
		t.Errorf("classify instances = %d, want %d", n, ChatbotScatterWidth)
	}
	if spec.G.NumNodes() != 3+ChatbotScatterWidth {
		t.Errorf("nodes = %d", spec.G.NumNodes())
	}
	// Scatter pattern: split has ChatbotScatterWidth successors.
	if got := len(spec.G.Succ("split")); got != ChatbotScatterWidth {
		t.Errorf("split fan-out = %d", got)
	}
}

func TestMLPipelineShape(t *testing.T) {
	spec := MLPipeline()
	if spec.G.NumNodes() != 8 {
		t.Errorf("nodes = %d, want 8", spec.G.NumNodes())
	}
	// Broadcast pattern: start has two successors, combine two predecessors.
	if len(spec.G.Succ("start")) != 2 || len(spec.G.Pred("combine")) != 2 {
		t.Error("broadcast structure wrong")
	}
	if !spec.G.HasPath("start", "end") {
		t.Error("start should reach end")
	}
}

func TestVideoAnalysisShape(t *testing.T) {
	spec := VideoAnalysis()
	if spec.SLOMS != 600_000 {
		t.Errorf("SLO = %v", spec.SLOMS)
	}
	groups := spec.FunctionGroups()
	if len(groups) != 5 {
		t.Errorf("groups = %v", groups)
	}
	// Chunk chains: extract_i -> classify_i.
	if got := spec.G.Succ("extract_01"); len(got) != 1 || got[0] != "classify_01" {
		t.Errorf("chunk chain wrong: %v", got)
	}
	// Input sensitivity on the heavy stages.
	for _, node := range []string{"split", "extract_01", "classify_01"} {
		if !spec.Profiles[node].InputSensitive {
			t.Errorf("%s should be input sensitive", node)
		}
	}
	if spec.Profiles["start"].InputSensitive {
		t.Error("start should not be input sensitive")
	}
}

// The affinity design points (DESIGN.md §5): cost-optimal core counts under
// the paper pricing land at ~1 (chatbot classify), ~4 (ML paramtune) and
// ~8 (video extract) at their footprint memories.
func TestAffinityDesignPoints(t *testing.T) {
	cases := []struct {
		spec  func() *workflow.Spec
		node  string
		mem   float64
		wantC float64
	}{
		{Chatbot, "classify_01", 512, 1},
		{MLPipeline, "paramtune", 512, 4},
		{VideoAnalysis, "extract_01", 5120, 8},
	}
	for _, c := range cases {
		p := c.spec().Profiles[c.node]
		got := p.OptimalCPU(c.mem, 0.512, 0.001)
		if math.Abs(got-c.wantC) > 0.05 {
			t.Errorf("%s c* = %.3f, want %.0f", c.node, got, c.wantC)
		}
	}
}

// Base configurations must meet the SLO comfortably (Algorithm 1 requires
// an over-provisioned base).
func TestBaseMeetsSLO(t *testing.T) {
	for _, spec := range All() {
		runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{HostCores: 96})
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.MeanEvaluate(spec.Base)
		if err != nil {
			t.Fatal(err)
		}
		if res.OOM {
			t.Errorf("%s base config OOMs", spec.Name)
		}
		if res.E2EMS > spec.SLOMS*0.8 {
			t.Errorf("%s base e2e %.0f too close to SLO %.0f", spec.Name, res.E2EMS, spec.SLOMS)
		}
	}
}

// Runtime must be flat in memory above the footprint for the compute-bound
// workflows (the Fig. 2a/2b observation motivating decoupling).
func TestRuntimeFlatInMemory(t *testing.T) {
	spec := Chatbot()
	runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{HostCores: 96})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate each configuration twice and keep the warm (second) run:
	// cold-start latency scales with memory and would mask the flatness.
	a := spec.Base.Clone()
	for g := range a {
		a[g] = resourcesConfig(2, 1024)
	}
	runner.MeanEvaluate(a)
	r1, _ := runner.MeanEvaluate(a)
	for g := range a {
		a[g] = resourcesConfig(2, 8192)
	}
	runner.MeanEvaluate(a)
	r2, _ := runner.MeanEvaluate(a)
	if math.Abs(r1.E2EMS-r2.E2EMS) > r1.E2EMS*0.01 {
		t.Errorf("runtime should be ~flat in memory: %v vs %v", r1.E2EMS, r2.E2EMS)
	}
	// But cost is much higher with more memory.
	if r2.Cost < r1.Cost*1.5 {
		t.Errorf("8GB config should cost much more: %v vs %v", r2.Cost, r1.Cost)
	}
}

// Video Analysis must be input-sensitive end to end.
func TestVideoInputSensitivity(t *testing.T) {
	spec := VideoAnalysis()
	runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{HostCores: 96})
	if err != nil {
		t.Fatal(err)
	}
	light, err := runner.EvaluateScale(spec.Base, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := runner.EvaluateScale(spec.Base, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.E2EMS < light.E2EMS*2 {
		t.Errorf("heavy input should be much slower: %v vs %v", heavy.E2EMS, light.E2EMS)
	}
}
