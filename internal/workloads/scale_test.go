package workloads

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"aarc/internal/workflow"
)

func genBytes(t testing.TB, opts ScaleOptions) []byte {
	t.Helper()
	spec, err := Scale(opts)
	if err != nil {
		t.Fatalf("Scale(%+v): %v", opts, err)
	}
	b, err := workflow.CanonicalJSON(spec)
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	return b
}

// TestScaleDeterminism checks the generator's core contract at 100, 1k and
// 10k nodes for every topology family: the same seed yields byte-identical
// canonical specs across sequential runs and across a pool of concurrent
// goroutines (the generator must not share hidden mutable state).
func TestScaleDeterminism(t *testing.T) {
	sizes := []int{100, 1000, 10000}
	if testing.Short() {
		sizes = []int{100, 1000}
	}
	for _, topo := range Topologies() {
		for i, n := range sizes {
			opts := ScaleOptions{
				Topology:  topo,
				Nodes:     n,
				Seed:      uint64(1000 + i),
				HeavyTail: i%2 == 1,
			}
			t.Run(fmt.Sprintf("%s-%d", topo, n), func(t *testing.T) {
				t.Parallel()
				ref := genBytes(t, opts)
				if again := genBytes(t, opts); !bytes.Equal(ref, again) {
					t.Fatal("sequential regeneration produced different canonical bytes")
				}
				var wg sync.WaitGroup
				mismatch := make(chan int, 4)
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						if !bytes.Equal(ref, genBytes(t, opts)) {
							mismatch <- w
						}
					}(w)
				}
				wg.Wait()
				close(mismatch)
				for w := range mismatch {
					t.Errorf("concurrent generation %d produced different canonical bytes", w)
				}
			})
		}
	}
}

// TestScaleFamilies pins structural properties of each family (Scale already
// validates the DAG internally; this guards the shapes).
func TestScaleFamilies(t *testing.T) {
	const n = 200
	for _, topo := range Topologies() {
		spec, err := Scale(ScaleOptions{Topology: topo, Nodes: n, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if spec.G.NumNodes() != n {
			t.Errorf("%s: %d nodes, want %d", topo, spec.G.NumNodes(), n)
		}
		switch topo {
		case TopologyChain:
			if spec.G.NumEdges() != n-1 {
				t.Errorf("chain: %d edges, want %d", spec.G.NumEdges(), n-1)
			}
		case TopologyFanout:
			if spec.G.NumEdges() != 2*(n-2) {
				t.Errorf("fanout: %d edges, want %d", spec.G.NumEdges(), 2*(n-2))
			}
			if got := len(spec.G.Succ(spec.G.Nodes()[0])); got != n-2 {
				t.Errorf("fanout: source degree %d, want %d", got, n-2)
			}
		case TopologyDiamond, TopologyLayered, TopologyRandom:
			if spec.G.NumEdges() < n-1 {
				t.Errorf("%s: only %d edges for %d nodes", topo, spec.G.NumEdges(), n)
			}
		}
	}
	if _, err := Scale(ScaleOptions{Topology: "nope", Nodes: 10, Seed: 1}); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := Scale(ScaleOptions{Topology: TopologyChain, Nodes: 2, Seed: 1}); err == nil {
		t.Error("2-node workflow accepted")
	}
}

// TestScaleSmoke10k is the CI smoke for the 10k regime: generate, compile a
// runner (full plan), and execute one noise-free evaluation end to end.
func TestScaleSmoke10k(t *testing.T) {
	spec, err := Scale(ScaleOptions{Topology: TopologyLayered, Nodes: 10_000, Seed: 42, HeavyTail: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := workflow.NewRunner(spec, workflow.RunnerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.MeanEvaluate(r.Base())
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatalf("base configuration OOMs: %+v", res)
	}
	if len(res.Nodes) != 10_000 {
		t.Fatalf("%d node results, want 10000", len(res.Nodes))
	}
	if res.E2EMS <= 0 || res.Cost <= 0 {
		t.Fatalf("degenerate result: e2e=%v cost=%v", res.E2EMS, res.Cost)
	}
}
