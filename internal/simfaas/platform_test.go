package simfaas

import (
	"sync"
	"testing"

	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

func prof() perfmodel.Profile {
	return perfmodel.Profile{
		Name: "f", CPUWorkMS: 1000, ParallelFrac: 0.5, MaxParallel: 4, IOMS: 100,
		FootprintMB: 512, MinMemMB: 256, PressureK: 1,
	}
}

func TestColdThenWarm(t *testing.T) {
	p := New(DefaultOptions())
	cfg := resources.Config{CPU: 2, MemMB: 1024}

	inv1, err := p.Invoke("k", prof(), cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv1.Cold || inv1.ColdStartMS <= 0 {
		t.Errorf("first invocation should be cold: %+v", inv1)
	}
	wantCold := DefaultOptions().ColdStartBaseMS + DefaultOptions().ColdStartPerGBMS*1024/1024
	if inv1.ColdStartMS != wantCold {
		t.Errorf("cold start = %v, want %v", inv1.ColdStartMS, wantCold)
	}

	inv2, err := p.Invoke("k", prof(), cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inv2.Cold || inv2.ColdStartMS != 0 {
		t.Errorf("second invocation should be warm: %+v", inv2)
	}
	if inv2.RuntimeMS >= inv1.RuntimeMS {
		t.Error("warm run should be faster than cold run")
	}

	m := p.Metrics()
	if m.Invocations != 2 || m.ColdStarts != 1 || m.WarmStarts != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestConfigChangeForcesCold(t *testing.T) {
	p := New(DefaultOptions())
	a := resources.Config{CPU: 2, MemMB: 1024}
	b := resources.Config{CPU: 2, MemMB: 2048}
	if _, err := p.Invoke("k", prof(), a, 1, nil); err != nil {
		t.Fatal(err)
	}
	inv, err := p.Invoke("k", prof(), b, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Cold {
		t.Error("config change must force a cold start")
	}
}

func TestDistinctKeysDistinctContainers(t *testing.T) {
	p := New(DefaultOptions())
	cfg := resources.Config{CPU: 2, MemMB: 1024}
	if _, err := p.Invoke("k1", prof(), cfg, 1, nil); err != nil {
		t.Fatal(err)
	}
	inv, err := p.Invoke("k2", prof(), cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Cold {
		t.Error("different key should have its own (cold) container")
	}
	if p.WarmCount() != 2 {
		t.Errorf("WarmCount = %d, want 2", p.WarmCount())
	}
}

func TestEmptyKeyDefaultsToName(t *testing.T) {
	p := New(DefaultOptions())
	cfg := resources.Config{CPU: 2, MemMB: 1024}
	if _, err := p.Invoke("", prof(), cfg, 1, nil); err != nil {
		t.Fatal(err)
	}
	inv, _ := p.Invoke("f", prof(), cfg, 1, nil)
	if inv.Cold {
		t.Error("empty key should map to the profile name")
	}
}

func TestKeepAliveDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.KeepAlive = false
	p := New(opts)
	cfg := resources.Config{CPU: 2, MemMB: 1024}
	p.Invoke("k", prof(), cfg, 1, nil)
	inv, _ := p.Invoke("k", prof(), cfg, 1, nil)
	if !inv.Cold {
		t.Error("with keep-alive off every invocation is cold")
	}
	if p.WarmCount() != 0 {
		t.Error("no warm containers should be held")
	}
}

func TestOOMKill(t *testing.T) {
	p := New(DefaultOptions())
	cfg := resources.Config{CPU: 2, MemMB: 128} // below the 256 floor
	inv, err := p.Invoke("k", prof(), cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.OOM {
		t.Fatal("expected OOM")
	}
	if inv.RuntimeMS <= inv.ColdStartMS {
		t.Error("OOM run should consume some partial runtime")
	}
	if p.Metrics().OOMKills != 1 {
		t.Errorf("OOMKills = %d", p.Metrics().OOMKills)
	}
	if p.WarmCount() != 0 {
		t.Error("OOM-killed container must not stay warm")
	}
	// Partial runtime reflects the would-be execution, not just detection.
	want := prof().OOMPartialMS(cfg, 1)
	if inv.RuntimeMS-inv.ColdStartMS != want {
		t.Errorf("partial = %v, want %v", inv.RuntimeMS-inv.ColdStartMS, want)
	}
}

func TestInvokeErrors(t *testing.T) {
	p := New(DefaultOptions())
	if _, err := p.Invoke("k", prof(), resources.Config{}, 1, nil); err == nil {
		t.Error("invalid config should error")
	}
	bad := prof()
	bad.Name = ""
	if _, err := p.Invoke("k", bad, resources.Config{CPU: 1, MemMB: 512}, 1, nil); err == nil {
		t.Error("invalid profile should error")
	}
}

func TestFlush(t *testing.T) {
	p := New(DefaultOptions())
	cfg := resources.Config{CPU: 2, MemMB: 1024}
	p.Invoke("k", prof(), cfg, 1, nil)
	p.Flush()
	if p.WarmCount() != 0 {
		t.Error("Flush should evict all containers")
	}
	inv, _ := p.Invoke("k", prof(), cfg, 1, nil)
	if !inv.Cold {
		t.Error("post-flush invocation should be cold")
	}
}

func TestConcurrentInvoke(t *testing.T) {
	p := New(DefaultOptions())
	cfg := resources.Config{CPU: 1, MemMB: 512}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i%4))
			if _, err := p.Invoke(key, prof(), cfg, 1, nil); err != nil {
				t.Errorf("concurrent invoke: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := p.Metrics().Invocations; got != 32 {
		t.Errorf("Invocations = %d, want 32", got)
	}
	if p.WarmCount() != 4 {
		t.Errorf("WarmCount = %d, want 4", p.WarmCount())
	}
}

func TestLRUEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxWarmContainers = 2
	p := New(opts)
	cfg := resources.Config{CPU: 1, MemMB: 512}

	p.Invoke("k1", prof(), cfg, 1, nil)
	p.Invoke("k2", prof(), cfg, 1, nil)
	// Touch k1 so k2 becomes the LRU victim.
	p.Invoke("k1", prof(), cfg, 1, nil)
	p.Invoke("k3", prof(), cfg, 1, nil) // evicts k2

	if p.WarmCount() != 2 {
		t.Fatalf("WarmCount = %d, want 2", p.WarmCount())
	}
	if p.Metrics().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", p.Metrics().Evictions)
	}
	inv1, _ := p.Invoke("k1", prof(), cfg, 1, nil)
	if inv1.Cold {
		t.Error("k1 was recently used and must still be warm")
	}
	inv2, _ := p.Invoke("k2", prof(), cfg, 1, nil)
	if !inv2.Cold {
		t.Error("k2 should have been evicted (cold)")
	}
}

func TestLRUReinvocationDoesNotEvict(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxWarmContainers = 1
	p := New(opts)
	cfg := resources.Config{CPU: 1, MemMB: 512}
	p.Invoke("k", prof(), cfg, 1, nil)
	p.Invoke("k", prof(), cfg, 1, nil)
	if p.Metrics().Evictions != 0 {
		t.Errorf("re-invoking the resident key must not evict: %d", p.Metrics().Evictions)
	}
}

func TestPerFunctionMetrics(t *testing.T) {
	p := New(DefaultOptions())
	cfg := resources.Config{CPU: 1, MemMB: 512}
	p.Invoke("a", prof(), cfg, 1, nil)
	p.Invoke("a", prof(), cfg, 1, nil)
	p.Invoke("b", prof(), resources.Config{CPU: 1, MemMB: 128}, 1, nil) // OOM

	a := p.FunctionMetricsFor("a")
	if a.Invocations != 2 || a.ColdStarts != 1 || a.OOMKills != 0 {
		t.Errorf("a metrics = %+v", a)
	}
	b := p.FunctionMetricsFor("b")
	if b.Invocations != 1 || b.OOMKills != 1 {
		t.Errorf("b metrics = %+v", b)
	}
	if z := p.FunctionMetricsFor("zz"); z != (FunctionMetrics{}) {
		t.Errorf("unknown key metrics = %+v", z)
	}
}

func TestColdStartScalesWithMemory(t *testing.T) {
	p := New(DefaultOptions())
	small := p.ColdStartMS(resources.Config{CPU: 1, MemMB: 512})
	large := p.ColdStartMS(resources.Config{CPU: 1, MemMB: 8192})
	if large <= small {
		t.Error("cold start should grow with memory size")
	}
}
