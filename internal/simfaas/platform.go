// Package simfaas simulates the serverless platform substrate the paper runs
// on (Docker containers with decoupled cpuset/cgroup limits on a 96-core
// host): per-function containers keyed by their resource configuration,
// cold versus warm starts, OOM kills, keep-alive pools, and platform-level
// invocation metrics.
//
// The simulator is deliberately clock-free at this layer: Invoke returns the
// duration an invocation would take; the workflow engine assembles durations
// into a makespan on a simulated clock (with CPU contention applied there).
package simfaas

import (
	"container/list"
	"fmt"
	"math/rand/v2"
	"sync"

	"aarc/internal/perfmodel"
	"aarc/internal/resources"
)

// Options configures platform behaviour.
type Options struct {
	// ColdStartBaseMS is the fixed container provisioning latency.
	ColdStartBaseMS float64
	// ColdStartPerGBMS adds per-GB runtime initialization latency (language
	// runtime + snapshot restore grow with the memory footprint).
	ColdStartPerGBMS float64
	// KeepAlive keeps containers warm across invocations; re-invoking the
	// same function at the same configuration skips the cold start, exactly
	// like consecutive probes during a configuration search.
	KeepAlive bool
	// OOMDetectMS is how long a container runs before the OOM killer fires
	// on an under-provisioned invocation.
	OOMDetectMS float64
	// MaxWarmContainers caps the keep-alive pool; when full, the least
	// recently used container is evicted to make room (0 = unlimited).
	MaxWarmContainers int
}

// DefaultOptions mirrors typical container platforms: ~400 ms provisioning,
// ~120 ms/GB init, keep-alive on, OOM detected within 200 ms.
func DefaultOptions() Options {
	return Options{
		ColdStartBaseMS:  400,
		ColdStartPerGBMS: 120,
		KeepAlive:        true,
		OOMDetectMS:      200,
	}
}

// Metrics aggregates platform counters.
type Metrics struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int
	OOMKills    int
	Evictions   int
}

// FunctionMetrics aggregates per-container-key counters.
type FunctionMetrics struct {
	Invocations int
	ColdStarts  int
	OOMKills    int
}

// Invocation is the outcome of one function invocation on the platform.
type Invocation struct {
	RuntimeMS   float64 // total billed duration including cold start
	ColdStartMS float64
	Cold        bool
	OOM         bool
}

// warmContainer is one keep-alive pool entry; entries live on the LRU list
// with the most recently used container at the front.
type warmContainer struct {
	key string
	cfg resources.Config
}

// Platform is a simulated FaaS substrate. It is safe for concurrent use.
type Platform struct {
	opts Options

	mu      sync.Mutex
	warm    map[string]*list.Element // container key -> LRU list element
	lru     *list.List               // of *warmContainer, front = most recent
	metrics Metrics
	perFunc map[string]*FunctionMetrics
}

// New returns a platform with the given options.
func New(opts Options) *Platform {
	return &Platform{
		opts:    opts,
		warm:    make(map[string]*list.Element),
		lru:     list.New(),
		perFunc: make(map[string]*FunctionMetrics),
	}
}

// warmConfigLocked returns the resident warm config for key. Callers hold
// p.mu.
func (p *Platform) warmConfigLocked(key string) (resources.Config, bool) {
	el, ok := p.warm[key]
	if !ok {
		return resources.Config{}, false
	}
	return el.Value.(*warmContainer).cfg, true
}

// storeWarmLocked records key as warm at cfg and stamps it most recently
// used, evicting the least recently used containers (list back) when the
// pool is over capacity. O(1) per operation versus the former full-pool
// scan. Callers hold p.mu.
func (p *Platform) storeWarmLocked(key string, cfg resources.Config) {
	if el, ok := p.warm[key]; ok {
		el.Value.(*warmContainer).cfg = cfg
		p.lru.MoveToFront(el)
		return
	}
	if p.opts.MaxWarmContainers > 0 {
		for p.lru.Len() >= p.opts.MaxWarmContainers {
			victim := p.lru.Back()
			p.lru.Remove(victim)
			delete(p.warm, victim.Value.(*warmContainer).key)
			p.metrics.Evictions++
		}
	}
	p.warm[key] = p.lru.PushFront(&warmContainer{key: key, cfg: cfg})
}

// dropWarmLocked removes a (dead) container from the pool without counting
// an eviction. Callers hold p.mu.
func (p *Platform) dropWarmLocked(key string) {
	if el, ok := p.warm[key]; ok {
		p.lru.Remove(el)
		delete(p.warm, key)
	}
}

// funcMetricsLocked returns (allocating) the per-key metrics. Callers hold
// p.mu.
func (p *Platform) funcMetricsLocked(key string) *FunctionMetrics {
	fm, ok := p.perFunc[key]
	if !ok {
		fm = &FunctionMetrics{}
		p.perFunc[key] = fm
	}
	return fm
}

// ColdStartMS returns the provisioning latency for a container of the given
// memory size.
func (p *Platform) ColdStartMS(cfg resources.Config) float64 {
	return p.opts.ColdStartBaseMS + p.opts.ColdStartPerGBMS*cfg.MemMB/1024
}

// Invoke runs one invocation of prof at cfg and input scale, using key to
// identify the container slot (scatter instances of the same function pass
// distinct keys so each gets its own container). A nil rng disables
// measurement noise. OOM kills are reported in-band via the OOM flag (the
// partial duration is still billed); only misuse returns an error.
func (p *Platform) Invoke(key string, prof perfmodel.Profile, cfg resources.Config, scale float64, rng *rand.Rand) (Invocation, error) {
	if err := prof.Validate(); err != nil {
		return Invocation{}, err
	}
	if !cfg.Valid() {
		return Invocation{}, fmt.Errorf("simfaas: invalid config %v for %s", cfg, prof.Name)
	}
	if key == "" {
		key = prof.Name
	}

	p.mu.Lock()
	cold := true
	if p.opts.KeepAlive {
		if w, ok := p.warmConfigLocked(key); ok && w == cfg {
			cold = false
		}
	}
	p.metrics.Invocations++
	fm := p.funcMetricsLocked(key)
	fm.Invocations++
	if cold {
		p.metrics.ColdStarts++
		fm.ColdStarts++
	} else {
		p.metrics.WarmStarts++
	}
	p.mu.Unlock()

	var coldMS float64
	if cold {
		coldMS = p.ColdStartMS(cfg)
	}

	t, err := prof.Runtime(cfg, scale, rng)
	if err != nil {
		if perfmodel.IsOOM(err) {
			p.mu.Lock()
			p.metrics.OOMKills++
			p.funcMetricsLocked(key).OOMKills++
			p.dropWarmLocked(key) // the container died
			p.mu.Unlock()
			partial := prof.OOMPartialMS(cfg, scale)
			if partial < p.opts.OOMDetectMS {
				partial = p.opts.OOMDetectMS
			}
			return Invocation{
				RuntimeMS:   coldMS + partial,
				ColdStartMS: coldMS,
				Cold:        cold,
				OOM:         true,
			}, nil
		}
		return Invocation{}, err
	}

	if p.opts.KeepAlive {
		p.mu.Lock()
		p.storeWarmLocked(key, cfg)
		p.mu.Unlock()
	}
	return Invocation{
		RuntimeMS:   coldMS + t,
		ColdStartMS: coldMS,
		Cold:        cold,
	}, nil
}

// Metrics returns a snapshot of the platform counters.
func (p *Platform) Metrics() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metrics
}

// WarmCount returns the number of warm containers currently held.
func (p *Platform) WarmCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.warm)
}

// FunctionMetricsFor returns a snapshot of one container key's counters.
func (p *Platform) FunctionMetricsFor(key string) FunctionMetrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fm, ok := p.perFunc[key]; ok {
		return *fm
	}
	return FunctionMetrics{}
}

// Flush evicts all warm containers (e.g. between independent experiments).
func (p *Platform) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.warm = make(map[string]*list.Element)
	p.lru = list.New()
}
