package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSumMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		sum  float64
		mean float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 5},
		{"mixed", []float64{1, 2, 3, 4}, 10, 2.5},
		{"negative", []float64{-1, 1}, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Sum(c.in); got != c.sum {
				t.Errorf("Sum = %v, want %v", got, c.sum)
			}
			if got := Mean(c.in); got != c.mean {
				t.Errorf("Mean = %v, want %v", got, c.mean)
			}
		})
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := SampleVariance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7)
	}
	if Variance([]float64{3}) != 0 || Variance(nil) != 0 {
		t.Error("variance of short samples should be 0")
	}
}

func TestMinMaxErrEmpty(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	mn, _ := Min([]float64{3, -2, 8})
	mx, _ := Max([]float64{3, -2, 8})
	if mn != -2 || mx != 8 {
		t.Errorf("Min/Max = %v/%v, want -2/8", mn, mx)
	}
}

func TestArgMinArgMax(t *testing.T) {
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("Arg* of empty should be -1")
	}
	xs := []float64{3, 1, 4, 1, 5}
	if got := ArgMin(xs); got != 1 {
		t.Errorf("ArgMin = %d, want 1 (first tie)", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Errorf("ArgMax = %d, want 4", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should error")
	}
	one, _ := Percentile([]float64{7}, 83)
	if one != 7 {
		t.Errorf("Percentile of singleton = %v, want 7", one)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestDescribe(t *testing.T) {
	s, err := Describe([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Describe = %+v", s)
	}
	if _, err := Describe(nil); err != ErrEmpty {
		t.Error("Describe(nil) should return ErrEmpty")
	}
}

func TestFluctuationAmplitude(t *testing.T) {
	if FluctuationAmplitude([]float64{5}) != 0 {
		t.Error("short series should give 0")
	}
	// Constant series: no fluctuation.
	if got := FluctuationAmplitude([]float64{4, 4, 4}); got != 0 {
		t.Errorf("constant series = %v, want 0", got)
	}
	// Alternating 1,3: mean 2, mean |delta| 2 -> amplitude 1.
	if got := FluctuationAmplitude([]float64{1, 3, 1, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("alternating = %v, want 1", got)
	}
	if FluctuationAmplitude([]float64{0, 0}) != 0 {
		t.Error("zero-mean series should give 0, not NaN")
	}
}

func TestIncreaseFraction(t *testing.T) {
	if IncreaseFraction([]float64{1}) != 0 {
		t.Error("short series should give 0")
	}
	if got := IncreaseFraction([]float64{1, 2, 3}); got != 1 {
		t.Errorf("monotone up = %v, want 1", got)
	}
	if got := IncreaseFraction([]float64{3, 2, 1}); got != 0 {
		t.Errorf("monotone down = %v, want 0", got)
	}
	if got := IncreaseFraction([]float64{1, 2, 1, 2}); !almostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("mixed = %v, want 2/3", got)
	}
}

func TestCumSumRunningMin(t *testing.T) {
	cs := CumSum([]float64{1, 2, 3})
	if cs[0] != 1 || cs[1] != 3 || cs[2] != 6 {
		t.Errorf("CumSum = %v", cs)
	}
	rm := RunningMin([]float64{3, 5, 2, 4})
	want := []float64{3, 3, 2, 2}
	for i := range want {
		if rm[i] != want[i] {
			t.Errorf("RunningMin = %v, want %v", rm, want)
			break
		}
	}
	if len(CumSum(nil)) != 0 || len(RunningMin(nil)) != 0 {
		t.Error("empty inputs should give empty outputs")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, 2.25, -3, 8, 0.5, 12, -7}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d", w.N())
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), SampleVariance(xs), 1e-9) {
		t.Errorf("Welford var %v != batch %v", w.Variance(), SampleVariance(xs))
	}
	if !almostEqual(w.Std(), SampleStdDev(xs), 1e-9) {
		t.Errorf("Welford std %v != batch %v", w.Std(), SampleStdDev(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
}

// Property: mean is bounded by min and max.
func TestQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := sanitize(xs)
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is non-negative and zero for constant series.
func TestQuickVarianceNonNegative(t *testing.T) {
	f := func(xs []float64) bool {
		clean := sanitize(xs)
		return Variance(clean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CumSum's last element equals Sum.
func TestQuickCumSumTotal(t *testing.T) {
	f := func(xs []float64) bool {
		clean := sanitize(xs)
		cs := CumSum(clean)
		if len(clean) == 0 {
			return len(cs) == 0
		}
		return almostEqual(cs[len(cs)-1], Sum(clean), math.Abs(Sum(clean))*1e-9+1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: RunningMin is non-increasing and bounded below by Min.
func TestQuickRunningMin(t *testing.T) {
	f := func(xs []float64) bool {
		clean := sanitize(xs)
		rm := RunningMin(clean)
		for i := 1; i < len(rm); i++ {
			if rm[i] > rm[i-1] {
				return false
			}
		}
		if len(clean) > 0 {
			mn, _ := Min(clean)
			if rm[len(rm)-1] != mn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitize bounds quick-generated values so floating-point overflow does not
// create false failures; NaN/Inf are dropped.
func sanitize(xs []float64) []float64 {
	out := xs[:0:0]
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if x > 1e12 {
			x = 1e12
		}
		if x < -1e12 {
			x = -1e12
		}
		out = append(out, x)
	}
	return out
}
