// Package stats provides the small set of statistics helpers the AARC
// experiments need: central moments, percentiles, series summaries and the
// fluctuation-amplitude metric used in §II-B of the paper.
//
// Everything operates on []float64 and never mutates its input unless the
// function name says so (SortInPlace).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a value from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs (divide by n).
// It returns 0 for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// SampleVariance returns the unbiased sample variance (divide by n-1).
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleStdDev returns the unbiased sample standard deviation of xs.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// Min returns the minimum of xs. It returns ErrEmpty for an empty slice.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for an empty slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// ArgMin returns the index of the smallest element, or -1 for an empty slice.
// Ties resolve to the earliest index.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element, or -1 for an empty slice.
// Ties resolve to the earliest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is copied, not mutated.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo], nil
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample (n-1) standard deviation
	Min    float64
	Max    float64
	Median float64
	P95    float64
}

// Describe computes a Summary of xs. It returns ErrEmpty for an empty slice.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	md, _ := Median(xs)
	p95, _ := Percentile(xs, 95)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    SampleStdDev(xs),
		Min:    mn,
		Max:    mx,
		Median: md,
		P95:    p95,
	}, nil
}

// FluctuationAmplitude is the §II-B instability metric: the mean absolute
// difference between consecutive values, divided by the mean of the series.
// It returns 0 for series shorter than 2 or with zero mean.
func FluctuationAmplitude(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	s := 0.0
	for i := 1; i < len(xs); i++ {
		s += math.Abs(xs[i] - xs[i-1])
	}
	return s / float64(len(xs)-1) / m
}

// IncreaseFraction returns the fraction of consecutive transitions that are
// strictly increasing (the paper observes "nearly half of these changes are
// increases" for BO). It returns 0 for series shorter than 2.
func IncreaseFraction(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	inc := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1] {
			inc++
		}
	}
	return float64(inc) / float64(len(xs)-1)
}

// CumSum returns the running sum of xs as a new slice of the same length.
func CumSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	s := 0.0
	for i, x := range xs {
		s += x
		out[i] = s
	}
	return out
}

// RunningMin returns the prefix minima of xs as a new slice ("best so far").
func RunningMin(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if i == 0 || x < out[i-1] {
			out[i] = x
		} else {
			out[i] = out[i-1]
		}
	}
	return out
}

// Welford accumulates mean and variance in a single streaming pass.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of accumulated values.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any Add).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the running sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }
