// Package testutil provides small, fast workflow fixtures shared by the
// test suites of the search packages: a three-function chain, a diamond with
// one detour branch, and ready-made runners over them. All fixtures use the
// real DAG / perfmodel / workflow machinery, so searcher tests exercise the
// same code paths as production.
package testutil

import (
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/workflow"
)

// ChainSpec builds a three-function serial chain a → b → c with moderate,
// well-conditioned profiles and the given SLO (milliseconds).
func ChainSpec(sloMS float64) *workflow.Spec {
	g := dag.New()
	g.MustAddNode("a")
	g.MustAddNode("b")
	g.MustAddNode("c")
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")

	spec := &workflow.Spec{
		Name: "chain3",
		G:    g,
		Profiles: map[string]perfmodel.Profile{
			"a": {Name: "a", CPUWorkMS: 2000, ParallelFrac: 0.5, MaxParallel: 4, IOMS: 500,
				FootprintMB: 256, MinMemMB: 128, PressureK: 1},
			"b": {Name: "b", CPUWorkMS: 10_000, ParallelFrac: 0.5, MaxParallel: 8, IOMS: 1000,
				FootprintMB: 512, MinMemMB: 256, PressureK: 1},
			"c": {Name: "c", CPUWorkMS: 3000, ParallelFrac: 0.5, MaxParallel: 4, IOMS: 500,
				FootprintMB: 256, MinMemMB: 128, PressureK: 1},
		},
		SLOMS:  sloMS,
		Limits: resources.DefaultLimits(),
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), resources.Config{CPU: 4, MemMB: 2048})
	return spec
}

// DiamondSpec builds a diamond: s → (m1 | m2) → t, where m1 is the heavy
// (critical) branch and m2 a lighter detour branch.
func DiamondSpec(sloMS float64) *workflow.Spec {
	g := dag.New()
	g.MustAddNode("s")
	g.MustAddNode("m1")
	g.MustAddNode("m2")
	g.MustAddNode("t")
	g.MustAddEdge("s", "m1")
	g.MustAddEdge("s", "m2")
	g.MustAddEdge("m1", "t")
	g.MustAddEdge("m2", "t")

	spec := &workflow.Spec{
		Name: "diamond",
		G:    g,
		Profiles: map[string]perfmodel.Profile{
			"s": {Name: "s", CPUWorkMS: 1000, ParallelFrac: 0, IOMS: 200,
				FootprintMB: 256, MinMemMB: 128, PressureK: 1},
			"m1": {Name: "m1", CPUWorkMS: 20_000, ParallelFrac: 0.5, MaxParallel: 8, IOMS: 500,
				FootprintMB: 512, MinMemMB: 256, PressureK: 1},
			"m2": {Name: "m2", CPUWorkMS: 6000, ParallelFrac: 0.5, MaxParallel: 8, IOMS: 500,
				FootprintMB: 512, MinMemMB: 256, PressureK: 1},
			"t": {Name: "t", CPUWorkMS: 1000, ParallelFrac: 0, IOMS: 200,
				FootprintMB: 256, MinMemMB: 128, PressureK: 1},
		},
		SLOMS:  sloMS,
		Limits: resources.DefaultLimits(),
	}
	spec.Base = resources.Uniform(spec.FunctionGroups(), resources.Config{CPU: 4, MemMB: 2048})
	return spec
}

// NewRunner wraps workflow.NewRunner with test-friendly failure handling.
func NewRunner(t *testing.T, spec *workflow.Spec, noise bool, seed uint64) *workflow.Runner {
	t.Helper()
	r, err := workflow.NewRunner(spec, workflow.RunnerOptions{
		HostCores: 96,
		Noise:     noise,
		Seed:      seed,
	})
	if err != nil {
		t.Fatalf("NewRunner(%s): %v", spec.Name, err)
	}
	return r
}
