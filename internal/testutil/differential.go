package testutil

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"aarc/internal/dag"
	"aarc/internal/perfmodel"
	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/simfaas"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// DifferentialOptions parameterizes the property-based differential harness.
type DifferentialOptions struct {
	// Topology and Nodes shape the initial generated workflow.
	Topology workloads.Topology
	Nodes    int
	// Steps is the number of seeded mutation deltas to drive (each delta
	// carries one to several individual mutations).
	Steps int
	// Seed drives the generator and every mutation draw.
	Seed uint64
	// OrderEvery / CPEvery / CheckEvery set the cadence (in steps) of the
	// O(V+E) order verification, the incremental-vs-full critical-path
	// comparison, and the patched-vs-rebuilt plan + evaluation comparison.
	// The expensive full recomputes are sampled so a 10k-node run stays
	// fast even under the race detector; a final round always runs.
	OrderEvery, CPEvery, CheckEvery int
}

// RunDifferential is the centerpiece differential harness of the incremental
// compilation stack. It generates a seeded workflow, then drives a stream of
// random churn deltas through three parallel representations:
//
//   - a Runner whose compiled plan is patched in place (Runner.Patch),
//   - a dag.Dynamic maintaining topological order and critical path
//     incrementally over a mirror graph,
//   - the spec itself, from which from-scratch rebuilds are compiled.
//
// After every delta the maintained topological order must verify; on the
// configured cadences the incremental critical path must equal a full
// recompute bit-for-bit (same weight, same path), and the patched plan must
// be equivalent to a freshly compiled plan with evaluation results matching
// (structure exact, float timings within relative 1e-9 — plans with
// different dense numbering may sum floats in a different order). It returns
// the total number of individual mutations exercised.
func RunDifferential(tb testing.TB, opts DifferentialOptions) int {
	tb.Helper()
	if opts.Topology == "" {
		opts.Topology = workloads.TopologyRandom
	}
	if opts.Nodes == 0 {
		opts.Nodes = 1000
	}
	if opts.Steps == 0 {
		opts.Steps = 200
	}
	if opts.OrderEvery <= 0 {
		opts.OrderEvery = 10
	}
	if opts.CPEvery <= 0 {
		opts.CPEvery = 25
	}
	if opts.CheckEvery <= 0 {
		opts.CheckEvery = 100
	}

	spec, err := workloads.Scale(workloads.ScaleOptions{
		Topology: opts.Topology, Nodes: opts.Nodes, Seed: opts.Seed, HeavyTail: true,
	})
	if err != nil {
		tb.Fatalf("differential: generating %s/%d: %v", opts.Topology, opts.Nodes, err)
	}

	baseCfg := resources.Config{CPU: 4, MemMB: 8192}
	weightOf := func(p perfmodel.Profile) float64 {
		w, err := p.MeanRuntime(baseCfg, 1)
		if err != nil {
			tb.Fatalf("differential: weight for %s: %v", p.Name, err)
		}
		return w
	}

	patched, err := workflow.NewRunner(spec, coldRunnerOptions())
	if err != nil {
		tb.Fatalf("differential: compiling initial runner: %v", err)
	}

	weights := make(map[string]float64, spec.G.NumNodes())
	dynWeights := make(map[string]float64, spec.G.NumNodes())
	for id, p := range spec.Profiles {
		w := weightOf(p)
		weights[id] = w
		dynWeights[id] = w
	}
	dyn, err := dag.NewDynamic(spec.G.Clone(), dynWeights)
	if err != nil {
		tb.Fatalf("differential: building dynamic mirror: %v", err)
	}

	rng := rand.New(rand.NewPCG(opts.Seed, 0xd1ff))
	mutations := 0
	checkOrder := func(step int) {
		if err := dyn.VerifyOrder(); err != nil {
			tb.Fatalf("differential step %d: order invalid: %v", step, err)
		}
	}
	checkCP := func(step int) {
		gotPath, gotW, err := dyn.CriticalPath()
		if err != nil {
			tb.Fatalf("differential step %d: incremental critical path: %v", step, err)
		}
		wantPath, wantW, err := dag.CriticalPath(dyn.Graph(), weights)
		if err != nil {
			tb.Fatalf("differential step %d: full critical path: %v", step, err)
		}
		if gotW != wantW {
			tb.Fatalf("differential step %d: critical-path weight %v != full recompute %v", step, gotW, wantW)
		}
		if len(gotPath) != len(wantPath) {
			tb.Fatalf("differential step %d: critical path %d nodes != %d", step, len(gotPath), len(wantPath))
		}
		for i := range gotPath {
			if gotPath[i] != wantPath[i] {
				tb.Fatalf("differential step %d: critical paths diverge at %d: %q != %q",
					step, i, gotPath[i], wantPath[i])
			}
		}
	}
	checkPlan := func(step int) {
		rebuilt, err := workflow.NewRunner(patched.Spec().Clone(), coldRunnerOptions())
		if err != nil {
			tb.Fatalf("differential step %d: rebuild: %v", step, err)
		}
		if err := workflow.EquivalentPlans(patched, rebuilt); err != nil {
			tb.Fatalf("differential step %d: patched plan != rebuilt plan: %v", step, err)
		}
		a := patched.Base()
		got, err := patched.MeanEvaluate(a)
		if err != nil {
			tb.Fatalf("differential step %d: patched evaluate: %v", step, err)
		}
		want, err := rebuilt.MeanEvaluate(a)
		if err != nil {
			tb.Fatalf("differential step %d: rebuilt evaluate: %v", step, err)
		}
		if err := SameResult(got, want); err != nil {
			tb.Fatalf("differential step %d: patched vs rebuilt evaluation: %v", step, err)
		}
	}

	for step := 0; step < opts.Steps; step++ {
		d := nextDelta(tb, spec, rng)
		if d.Empty() {
			continue
		}
		mutations += len(d.RemoveEdges) + len(d.RemoveNodes) + len(d.AddNodes) +
			len(d.AddEdges) + len(d.Profiles)
		if err := patched.Patch(d); err != nil {
			tb.Fatalf("differential step %d: patch: %v", step, err)
		}
		replayDelta(tb, dyn, weights, d, weightOf)
		if step%opts.OrderEvery == 0 {
			checkOrder(step)
		}
		if step%opts.CPEvery == 0 {
			checkCP(step)
		}
		if step%opts.CheckEvery == opts.CheckEvery-1 {
			checkPlan(step)
		}
	}
	// Final full round: order, critical path, plan, and mirror consistency.
	checkOrder(opts.Steps)
	checkCP(opts.Steps)
	checkPlan(opts.Steps)
	if dyn.Graph().NumNodes() != spec.G.NumNodes() || dyn.Graph().NumEdges() != spec.G.NumEdges() {
		tb.Fatalf("differential: mirror diverged: %d/%d nodes, %d/%d edges",
			dyn.Graph().NumNodes(), spec.G.NumNodes(), dyn.Graph().NumEdges(), spec.G.NumEdges())
	}
	return mutations
}

// nextDelta draws one churn delta: node insertions, interior deletions, edge
// rewires, or profile reweights.
func nextDelta(tb testing.TB, spec *workflow.Spec, rng *rand.Rand) workflow.Delta {
	tb.Helper()
	var (
		d   workflow.Delta
		err error
	)
	switch rng.IntN(4) {
	case 0:
		d, err = workloads.AddRandomNodes(spec, rng, 1+rng.IntN(3))
	case 1:
		d, err = workloads.DeleteRandomNodes(spec, rng, 1+rng.IntN(3))
	case 2:
		d, err = workloads.RewireRandomEdges(spec, rng, 1+rng.IntN(4))
	default:
		ids := spec.G.Nodes()
		id := ids[rng.IntN(len(ids))]
		p := spec.Profiles[id]
		p.CPUWorkMS *= 0.5 + rng.Float64()
		d = workflow.Delta{Profiles: map[string]perfmodel.Profile{id: p}}
	}
	if err != nil {
		tb.Fatalf("differential: generating delta: %v", err)
	}
	return d
}

// replayDelta mirrors a delta into the incremental dag structure and the
// full-recompute weight table, using the same application order as
// Spec.Apply.
func replayDelta(tb testing.TB, dyn *dag.Dynamic, weights map[string]float64,
	d workflow.Delta, weightOf func(perfmodel.Profile) float64) {
	tb.Helper()
	for _, e := range d.RemoveEdges {
		if err := dyn.RemoveEdge(e.From, e.To); err != nil {
			tb.Fatalf("differential replay: remove edge %s->%s: %v", e.From, e.To, err)
		}
	}
	for _, id := range d.RemoveNodes {
		if err := dyn.RemoveNode(id); err != nil {
			tb.Fatalf("differential replay: remove node %s: %v", id, err)
		}
		delete(weights, id)
	}
	for _, n := range d.AddNodes {
		w := weightOf(n.Profile)
		if err := dyn.AddNode(n.ID, w); err != nil {
			tb.Fatalf("differential replay: add node %s: %v", n.ID, err)
		}
		weights[n.ID] = w
	}
	for _, e := range d.AddEdges {
		if err := dyn.AddEdge(e.From, e.To); err != nil {
			tb.Fatalf("differential replay: add edge %s->%s: %v", e.From, e.To, err)
		}
	}
	for id, p := range d.Profiles {
		w := weightOf(p)
		if err := dyn.SetWeight(id, w); err != nil {
			tb.Fatalf("differential replay: reweight %s: %v", id, err)
		}
		weights[id] = w
	}
}

// coldRunnerOptions builds runner options on a fresh keep-alive-free
// platform, making evaluation results a pure function of plan + assignment
// (no warm-pool history).
func coldRunnerOptions() workflow.RunnerOptions {
	o := simfaas.DefaultOptions()
	o.KeepAlive = false
	return workflow.RunnerOptions{HostCores: 96, Platform: simfaas.New(o)}
}

// SameResult compares two evaluation results: structure (OOM flag, failure
// node, per-node group/skip/OOM status and configs) must match exactly;
// float timings and costs must agree within relative 1e-9, since two plans
// with different dense numbering may sum floats in a different order.
func SameResult(a, b search.Result) error {
	relClose := func(x, y float64) bool {
		if x == y {
			return true
		}
		return math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
	}
	if a.OOM != b.OOM || a.Fail != b.Fail {
		return fmt.Errorf("OOM/Fail %v/%q vs %v/%q", a.OOM, a.Fail, b.OOM, b.Fail)
	}
	if !relClose(a.E2EMS, b.E2EMS) {
		return fmt.Errorf("E2E %v vs %v", a.E2EMS, b.E2EMS)
	}
	if !relClose(a.Cost, b.Cost) {
		return fmt.Errorf("cost %v vs %v", a.Cost, b.Cost)
	}
	if len(a.Nodes) != len(b.Nodes) {
		return fmt.Errorf("%d vs %d node results", len(a.Nodes), len(b.Nodes))
	}
	for id, na := range a.Nodes {
		nb, ok := b.Nodes[id]
		if !ok {
			return fmt.Errorf("node %q missing from second result", id)
		}
		if na.Group != nb.Group || na.Skipped != nb.Skipped || na.OOM != nb.OOM || na.Config != nb.Config {
			return fmt.Errorf("node %q structure differs: %+v vs %+v", id, na, nb)
		}
		if !relClose(na.StartMS, nb.StartMS) || !relClose(na.FinishMS, nb.FinishMS) ||
			!relClose(na.RuntimeMS, nb.RuntimeMS) || !relClose(na.Cost, nb.Cost) {
			return fmt.Errorf("node %q timings differ: %+v vs %+v", id, na, nb)
		}
	}
	return nil
}
