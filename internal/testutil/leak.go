package testutil

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// CheckNoLeaks snapshots the live goroutines and returns a function
// that, called at test end (normally via t.Cleanup through
// VerifyNoLeaks), fails the test if goroutines created since the
// snapshot are still running. It exists to back the Service lifecycle
// contract: Close must stop the coalescer, the refresh workers, the
// watch fan-out, and every singleflight leader it owns — a background
// goroutine outliving Close is a leak, not a scheduling artifact.
//
// Shutdown is asynchronous (workers observe a cancelled context at
// their next select), so the check retries with backoff for up to
// five seconds before declaring a leak.
func CheckNoLeaks(t testing.TB) func() {
	t.Helper()
	before := goroutineIDs()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("%d goroutine(s) leaked past the checkpoint:\n%s",
			len(leaked), strings.Join(leaked, "\n"))
	}
}

// VerifyNoLeaks arms a leak check for the remainder of the test: every
// goroutine spawned after this call must exit before the test does.
// Call it before constructing the Service (or bus, or watcher) under
// test, and close the component before the test returns.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	t.Cleanup(CheckNoLeaks(t))
}

// goroutineIDs returns the set of live goroutine IDs.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range goroutineDump() {
		ids[goroutineID(g)] = true
	}
	return ids
}

// leakedSince returns the stacks of goroutines not in before and not
// on the ignore list, headers first for readable failure output.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range goroutineDump() {
		if before[goroutineID(g)] || ignorable(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	sort.Strings(leaked)
	return leaked
}

// goroutineDump returns one stack-trace block per live goroutine.
func goroutineDump() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var gs []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		if strings.HasPrefix(block, "goroutine ") {
			gs = append(gs, block)
		}
	}
	return gs
}

// goroutineID extracts the numeric ID from a stack block header
// ("goroutine 42 [running]: ...").
func goroutineID(block string) string {
	rest := strings.TrimPrefix(block, "goroutine ")
	if i := strings.IndexByte(rest, ' '); i > 0 {
		return rest[:i]
	}
	return rest
}

// ignorable filters runtime- and harness-owned goroutines that come
// and go on their own schedule and are never a component leak.
func ignorable(block string) bool {
	for _, frame := range []string{
		"testing.(*T).Run",          // subtest runners
		"testing.tRunner",           // the test itself on another path
		"testing.runTests",          // the harness driver
		"runtime.gc",                // collector workers
		"runtime.bgsweep",           // background sweeper
		"runtime.bgscavenge",        // background scavenger
		"runtime/trace",             // tracing
		"signal.signal_recv",        // signal handling
		"time.goFunc",               // fired timer callbacks mid-flight
		"os/signal.loop",            // signal loop
		"runtime.ReadMemStats",      // concurrent stats readers
		"runtime.(*scavengerState)", // scavenger parked state
	} {
		if strings.Contains(block, frame) {
			return true
		}
	}
	// A goroutine already parked in exit has no interesting frames.
	return strings.Contains(block, "[runnable]:\nruntime.goexit")
}
