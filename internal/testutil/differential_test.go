package testutil

import (
	"testing"

	"aarc/internal/workloads"
)

// TestDifferential10k is the acceptance run of the differential harness: a
// 10k-node generated DAG driven through 1000 seeded churn deltas (well over
// 1000 individual mutations), with the incrementally patched plan, the
// incremental topological order, and the incremental critical path all
// asserted identical to from-scratch recomputation. Under -short or the race
// detector the regime shrinks so the suite stays quick; the full scale runs
// in plain mode and in the dedicated CI smoke.
func TestDifferential10k(t *testing.T) {
	opts := DifferentialOptions{
		Topology: workloads.TopologyLayered,
		Nodes:    10_000,
		Steps:    1000,
		Seed:     42,
	}
	wantMutations := 1000
	if testing.Short() || RaceEnabled {
		opts.Nodes = 1500
		opts.Steps = 250
		wantMutations = 250
	}
	got := RunDifferential(t, opts)
	if got < wantMutations {
		t.Fatalf("harness exercised only %d mutations, want >= %d", got, wantMutations)
	}
	t.Logf("differential: %d nodes, %d steps, %d mutations", opts.Nodes, opts.Steps, got)
}

// TestDifferentialFamilies runs a smaller differential pass over every
// topology family, so family-specific structure (wide fan-out joins, long
// chains, lattice barriers) is exercised by the same identical-results
// property.
func TestDifferentialFamilies(t *testing.T) {
	for i, topo := range workloads.Topologies() {
		t.Run(string(topo), func(t *testing.T) {
			t.Parallel()
			opts := DifferentialOptions{
				Topology: topo,
				Nodes:    600,
				Steps:    120,
				Seed:     uint64(100 + i),
			}
			if testing.Short() {
				opts.Nodes = 200
				opts.Steps = 40
			}
			RunDifferential(t, opts)
		})
	}
}
