//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in; heavy
// differential runs scale their workload down under it.
const RaceEnabled = true
