// Package event is the in-process pub/sub bus behind the recommendation
// lifecycle: a narrow fan-out surface that store mutations publish into
// and watchers subscribe from, instead of broadcast RPCs.
//
// Topics are fingerprints — the serving layer's content-addressed cache
// keys — and the three event kinds are the complete lifecycle vocabulary
// (this is the one place they are defined):
//
//   - "put": a recommendation was stored for the fingerprint for the
//     first time, or re-stored by an ordinary (non-refresh) search —
//     every successful store Put that is not a background refresh;
//   - "refreshed": the background refresher re-ran the search for a
//     drifted entry and atomically swapped the stored bytes — the entry
//     is still addressable under the same fingerprint, its contents are
//     new;
//   - "invalidated": the entry was explicitly removed (DELETE
//     /v1/recommendation/{fp}); the next configure for the same content
//     re-searches.
//
// Delivery is best-effort per subscriber: each Subscription owns a
// bounded buffer, and a publish that finds the buffer full drops the
// event for that subscriber and counts it (Bus.Dropped, per-subscription
// Dropped) rather than blocking the publisher — a slow SSE client must
// never stall the refresher or a configure request. The bus also keeps a
// small ring of recent events so a reconnecting subscriber can resume
// from a last-seen sequence number (Replay; the SSE layer maps this to
// Last-Event-ID).
package event

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names a lifecycle event. The complete set is KindPut,
// KindRefreshed and KindInvalidated (see the package comment).
type Kind string

const (
	// KindPut: an entry was stored by an ordinary (non-refresh) search.
	KindPut Kind = "put"
	// KindRefreshed: a background refresh swapped the entry in place.
	KindRefreshed Kind = "refreshed"
	// KindInvalidated: the entry was explicitly removed.
	KindInvalidated Kind = "invalidated"
)

// Event is one lifecycle notification. Seq increases monotonically
// across the whole bus (all topics), so it doubles as the SSE event id
// and the resume cursor.
type Event struct {
	Seq         uint64 `json:"seq"`
	Kind        Kind   `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	UnixMS      int64  `json:"unix_ms"`
}

// ErrClosed is returned by Subscribe on a closed bus.
var ErrClosed = errors.New("event: bus closed")

// Bus is the in-process pub/sub fan-out. Safe for concurrent use; all
// methods are non-blocking (publishes never wait on subscribers).
type Bus struct {
	mu      sync.Mutex
	closed  bool
	seq     uint64
	subs    map[*Subscription]struct{}
	ring    []Event // last ringCap events, oldest first
	ringCap int
	dropped atomic.Int64
}

// NewBus builds a bus whose resume ring keeps the last ringCap events
// (minimum 1; a typical serving bus uses a few hundred).
func NewBus(ringCap int) *Bus {
	if ringCap < 1 {
		ringCap = 1
	}
	return &Bus{subs: make(map[*Subscription]struct{}), ringCap: ringCap}
}

// Publish fans one event out to every subscriber of the fingerprint's
// topic (and every subscribe-all subscriber), dropping it — counted —
// at any full buffer, and records it in the resume ring. It returns the
// published event; on a closed bus it publishes nothing and returns the
// zero Event.
func (b *Bus) Publish(kind Kind, fingerprint string) Event {
	now := time.Now().UnixMilli()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return Event{}
	}
	b.seq++
	ev := Event{Seq: b.seq, Kind: kind, Fingerprint: fingerprint, UnixMS: now}
	if len(b.ring) == b.ringCap {
		copy(b.ring, b.ring[1:])
		b.ring[len(b.ring)-1] = ev
	} else {
		b.ring = append(b.ring, ev)
	}
	for sub := range b.subs {
		if sub.topic != "" && sub.topic != fingerprint {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	return ev
}

// Subscribe registers a subscriber for one fingerprint's events (topic
// "" subscribes to every topic) with a buffer of buf events (minimum 1).
// The caller must Cancel the subscription when done; a subscription is
// also terminated — its channel closed — when the bus closes.
func (b *Bus) Subscribe(topic string, buf int) (*Subscription, error) {
	if buf < 1 {
		buf = 1
	}
	sub := &Subscription{
		bus:   b,
		topic: topic,
		ch:    make(chan Event, buf),
		done:  make(chan struct{}),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	b.subs[sub] = struct{}{}
	return sub, nil
}

// Replay returns the ring's events for topic (topic "" matches all)
// with Seq > after, oldest first. Events older than the ring are gone —
// a subscriber that fell further behind resumes with a gap, which the
// sequence numbers make visible.
func (b *Bus) Replay(topic string, after uint64) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for _, ev := range b.ring {
		if ev.Seq <= after {
			continue
		}
		if topic != "" && topic != ev.Fingerprint {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Dropped counts events dropped at full subscriber buffers since
// construction, across all subscribers.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// Subscribers reports the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close terminates every subscription (their channels close) and
// refuses new ones. Publish on a closed bus is a silent no-op: during a
// service shutdown, late mutations have no one left to tell.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for sub := range b.subs {
		subs = append(subs, sub)
	}
	b.subs = make(map[*Subscription]struct{})
	b.mu.Unlock()
	for _, sub := range subs {
		sub.terminate()
	}
}

// Subscription is one subscriber's bounded mailbox.
type Subscription struct {
	bus   *Bus
	topic string
	ch    chan Event
	done  chan struct{}
	once  sync.Once

	dropped atomic.Int64
}

// Events is the subscriber's receive channel. It closes when the
// subscription is cancelled or the bus closes; events arrive in publish
// order, minus any dropped at a full buffer.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Done closes when the subscription ends (Cancel or bus Close) — a
// select-friendly companion to Events for goroutines that never read.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Dropped counts events this subscription missed at a full buffer.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Cancel unregisters the subscription and closes its channel. Safe to
// call more than once, and after bus Close.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()
	s.terminate()
}

// terminate closes the channels exactly once. Publish sends only under
// the bus mutex and only to registered subscriptions, so closing after
// removal from the map cannot race a send.
func (s *Subscription) terminate() {
	s.once.Do(func() {
		close(s.done)
		close(s.ch)
	})
}
