package event

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublishFansOutPerTopic(t *testing.T) {
	b := NewBus(16)
	defer b.Close()
	a, err := b.Subscribe("fp-a", 4)
	if err != nil {
		t.Fatal(err)
	}
	all, err := b.Subscribe("", 4)
	if err != nil {
		t.Fatal(err)
	}
	other, err := b.Subscribe("fp-b", 4)
	if err != nil {
		t.Fatal(err)
	}

	ev := b.Publish(KindPut, "fp-a")
	if ev.Seq != 1 || ev.Kind != KindPut || ev.Fingerprint != "fp-a" {
		t.Fatalf("published event = %+v", ev)
	}
	got := <-a.Events()
	if got != ev {
		t.Fatalf("topic subscriber got %+v, want %+v", got, ev)
	}
	if got := <-all.Events(); got != ev {
		t.Fatalf("subscribe-all got %+v, want %+v", got, ev)
	}
	select {
	case stray := <-other.Events():
		t.Fatalf("fp-b subscriber received fp-a event %+v", stray)
	default:
	}
}

func TestSequenceIsMonotonicAcrossTopics(t *testing.T) {
	b := NewBus(16)
	defer b.Close()
	var last uint64
	for i := 0; i < 5; i++ {
		ev := b.Publish(KindPut, fmt.Sprintf("fp-%d", i%2))
		if ev.Seq <= last {
			t.Fatalf("seq %d not monotonic after %d", ev.Seq, last)
		}
		last = ev.Seq
	}
}

func TestSlowSubscriberDropsWithCounterWithoutBlocking(t *testing.T) {
	b := NewBus(16)
	defer b.Close()
	sub, err := b.Subscribe("fp", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Never drained: the first two publishes fill the buffer, the rest
	// must drop — counted — and return immediately.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			b.Publish(KindRefreshed, "fp")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a full subscriber buffer")
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscription dropped %d events, want 8", got)
	}
	if got := b.Dropped(); got != 8 {
		t.Fatalf("bus dropped %d events, want 8", got)
	}
	// The buffered events are still the oldest two, in order.
	if ev := <-sub.Events(); ev.Seq != 1 {
		t.Fatalf("first buffered event seq = %d, want 1", ev.Seq)
	}
	if ev := <-sub.Events(); ev.Seq != 2 {
		t.Fatalf("second buffered event seq = %d, want 2", ev.Seq)
	}
}

func TestReplayFiltersTopicAndCursor(t *testing.T) {
	b := NewBus(4)
	defer b.Close()
	b.Publish(KindPut, "a")         // seq 1
	b.Publish(KindPut, "b")         // seq 2
	b.Publish(KindRefreshed, "a")   // seq 3
	b.Publish(KindInvalidated, "a") // seq 4

	got := b.Replay("a", 1)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("Replay(a, 1) = %+v", got)
	}
	if all := b.Replay("", 0); len(all) != 4 {
		t.Fatalf("Replay(all, 0) returned %d events, want 4", len(all))
	}

	// The ring holds only the last 4: a 5th publish evicts seq 1.
	b.Publish(KindPut, "a") // seq 5
	got = b.Replay("", 0)
	if len(got) != 4 || got[0].Seq != 2 {
		t.Fatalf("after ring wrap Replay(all, 0) = %+v", got)
	}
}

func TestCancelStopsDeliveryAndCloses(t *testing.T) {
	b := NewBus(4)
	defer b.Close()
	sub, err := b.Subscribe("fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	sub.Cancel() // idempotent
	if _, ok := <-sub.Events(); ok {
		t.Fatal("cancelled subscription's channel still open")
	}
	select {
	case <-sub.Done():
	default:
		t.Fatal("Done not closed after Cancel")
	}
	b.Publish(KindPut, "fp") // must not panic (send on closed channel)
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("subscribers after cancel = %d, want 0", n)
	}
}

func TestCloseTerminatesSubscribersAndRefusesNew(t *testing.T) {
	b := NewBus(4)
	sub, err := b.Subscribe("fp", 4)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription channel still open after bus Close")
	}
	if _, err := b.Subscribe("fp", 4); err != ErrClosed {
		t.Fatalf("Subscribe on closed bus: err = %v, want ErrClosed", err)
	}
	if ev := b.Publish(KindPut, "fp"); ev.Seq != 0 {
		t.Fatalf("Publish on closed bus returned %+v, want zero Event", ev)
	}
	sub.Cancel() // after-Close cancel must be a safe no-op
}

func TestConcurrentPublishSubscribeCancel(t *testing.T) {
	b := NewBus(64)
	defer b.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub, err := b.Subscribe(fmt.Sprintf("fp-%d", i%4), 1)
				if err != nil {
					t.Error(err)
					return
				}
				b.Publish(KindPut, fmt.Sprintf("fp-%d", i%4))
				sub.Cancel()
			}
		}(g)
	}
	wg.Wait()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("subscribers left registered: %d", n)
	}
}
