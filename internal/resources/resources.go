// Package resources models decoupled CPU/memory configurations for
// serverless functions: the per-function Config, the admissible Limits grid
// (the paper discretizes memory in 64 MB increments from 128 to 10240 MB and
// vCPU from 0.1 to 10), coupled projections used by memory-centric baselines,
// and whole-workflow Assignments.
package resources

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Config is a decoupled resource configuration for one serverless function.
type Config struct {
	CPU   float64 // vCPU cores (fractional allowed, e.g. 0.5)
	MemMB float64 // memory in MB
}

// String renders the configuration as "2.0vCPU/1024MB".
func (c Config) String() string {
	return fmt.Sprintf("%.1fvCPU/%.0fMB", c.CPU, c.MemMB)
}

// IsZero reports whether c is the zero configuration.
func (c Config) IsZero() bool { return c.CPU == 0 && c.MemMB == 0 }

// Valid reports whether both dimensions are strictly positive.
func (c Config) Valid() bool { return c.CPU > 0 && c.MemMB > 0 }

// ResourceType identifies one of the two decoupled resource dimensions.
type ResourceType int

const (
	// CPU is the vCPU dimension.
	CPU ResourceType = iota
	// Memory is the memory dimension.
	Memory
)

// String returns "cpu" or "mem".
func (t ResourceType) String() string {
	switch t {
	case CPU:
		return "cpu"
	case Memory:
		return "mem"
	default:
		return fmt.Sprintf("ResourceType(%d)", int(t))
	}
}

// Limits describes the admissible configuration grid for one dimension pair.
type Limits struct {
	MinCPU, MaxCPU, CPUStep       float64
	MinMemMB, MaxMemMB, MemStepMB float64
}

// DefaultLimits returns the grid the paper uses for the decoupled search
// space: memory 128..10240 MB in 64 MB increments, vCPU 0.1..10 in 0.1 steps.
func DefaultLimits() Limits {
	return Limits{
		MinCPU: 0.1, MaxCPU: 10, CPUStep: 0.1,
		MinMemMB: 128, MaxMemMB: 10240, MemStepMB: 64,
	}
}

// Validate reports whether the limits describe a non-empty grid.
func (l Limits) Validate() error {
	if l.MinCPU <= 0 || l.MaxCPU < l.MinCPU || l.CPUStep <= 0 {
		return fmt.Errorf("resources: invalid CPU limits %+v", l)
	}
	if l.MinMemMB <= 0 || l.MaxMemMB < l.MinMemMB || l.MemStepMB <= 0 {
		return fmt.Errorf("resources: invalid memory limits %+v", l)
	}
	return nil
}

// Clamp forces cfg into the closed box [MinCPU,MaxCPU]×[MinMemMB,MaxMemMB].
func (l Limits) Clamp(cfg Config) Config {
	return Config{
		CPU:   clamp(cfg.CPU, l.MinCPU, l.MaxCPU),
		MemMB: clamp(cfg.MemMB, l.MinMemMB, l.MaxMemMB),
	}
}

// Contains reports whether cfg lies inside the limit box (grid-snapping is
// not required).
func (l Limits) Contains(cfg Config) bool {
	return cfg.CPU >= l.MinCPU-1e-9 && cfg.CPU <= l.MaxCPU+1e-9 &&
		cfg.MemMB >= l.MinMemMB-1e-9 && cfg.MemMB <= l.MaxMemMB+1e-9
}

// Snap rounds cfg to the nearest grid point and clamps it to the box.
func (l Limits) Snap(cfg Config) Config {
	c := l.Clamp(cfg)
	c.CPU = l.MinCPU + math.Round((c.CPU-l.MinCPU)/l.CPUStep)*l.CPUStep
	c.MemMB = l.MinMemMB + math.Round((c.MemMB-l.MinMemMB)/l.MemStepMB)*l.MemStepMB
	// Rounding can push a value one step past the upper bound.
	return l.Clamp(c)
}

// CPUValues enumerates the CPU grid from MinCPU to MaxCPU inclusive.
func (l Limits) CPUValues() []float64 {
	return gridValues(l.MinCPU, l.MaxCPU, l.CPUStep)
}

// MemValues enumerates the memory grid from MinMemMB to MaxMemMB inclusive.
func (l Limits) MemValues() []float64 {
	return gridValues(l.MinMemMB, l.MaxMemMB, l.MemStepMB)
}

// GridSize returns the number of grid points in one function's (cpu, mem)
// space.
func (l Limits) GridSize() int {
	return len(l.CPUValues()) * len(l.MemValues())
}

// Normalize maps cfg into [0,1]² relative to the limit box (used by the
// Bayesian-optimization kernel).
func (l Limits) Normalize(cfg Config) (cpu01, mem01 float64) {
	cpu01 = (cfg.CPU - l.MinCPU) / (l.MaxCPU - l.MinCPU)
	mem01 = (cfg.MemMB - l.MinMemMB) / (l.MaxMemMB - l.MinMemMB)
	return clamp(cpu01, 0, 1), clamp(mem01, 0, 1)
}

// Denormalize is the inverse of Normalize (before grid snapping).
func (l Limits) Denormalize(cpu01, mem01 float64) Config {
	return Config{
		CPU:   l.MinCPU + clamp(cpu01, 0, 1)*(l.MaxCPU-l.MinCPU),
		MemMB: l.MinMemMB + clamp(mem01, 0, 1)*(l.MaxMemMB-l.MinMemMB),
	}
}

func gridValues(lo, hi, step float64) []float64 {
	n := int(math.Floor((hi-lo)/step+1e-9)) + 1
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, lo+float64(i)*step)
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// CoupledMemPerCPU is the MAFF coupling ratio: one vCPU core per 1024 MB.
const CoupledMemPerCPU = 1024.0

// Coupled returns the coupled configuration for a given memory size,
// allocating vCPU proportionally at 1 core / 1024 MB (the MAFF scheme).
func Coupled(memMB float64) Config {
	return Config{CPU: memMB / CoupledMemPerCPU, MemMB: memMB}
}

// Assignment maps function (node) IDs to their resource configurations.
type Assignment map[string]Config

// Clone returns a deep copy of a.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Equal reports whether two assignments configure the same functions with
// exactly equal values.
func (a Assignment) Equal(b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v != w {
			return false
		}
	}
	return true
}

// Keys returns the function IDs in sorted order.
func (a Assignment) Keys() []string {
	ks := make([]string, 0, len(a))
	for k := range a {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Uniform builds an assignment giving every listed function the same config.
func Uniform(ids []string, cfg Config) Assignment {
	out := make(Assignment, len(ids))
	for _, id := range ids {
		out[id] = cfg
	}
	return out
}

// String renders the assignment deterministically, sorted by function ID.
func (a Assignment) String() string {
	var b strings.Builder
	for i, k := range a.Keys() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, a[k])
	}
	return b.String()
}
