package resources

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfigString(t *testing.T) {
	c := Config{CPU: 2, MemMB: 1024}
	if got := c.String(); got != "2.0vCPU/1024MB" {
		t.Errorf("String = %q", got)
	}
}

func TestConfigValidZero(t *testing.T) {
	if !(Config{CPU: 1, MemMB: 128}).Valid() {
		t.Error("positive config should be valid")
	}
	for _, c := range []Config{{}, {CPU: 1}, {MemMB: 128}, {CPU: -1, MemMB: 128}} {
		if c.Valid() {
			t.Errorf("%v should be invalid", c)
		}
	}
	if !(Config{}).IsZero() || (Config{CPU: 1}).IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestResourceTypeString(t *testing.T) {
	if CPU.String() != "cpu" || Memory.String() != "mem" {
		t.Error("ResourceType strings wrong")
	}
	if !strings.Contains(ResourceType(9).String(), "9") {
		t.Error("unknown type should include its value")
	}
}

func TestDefaultLimitsValidate(t *testing.T) {
	l := DefaultLimits()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := l
	bad.CPUStep = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero step should be invalid")
	}
	bad = l
	bad.MaxMemMB = 64
	if err := bad.Validate(); err == nil {
		t.Error("max<min should be invalid")
	}
	bad = l
	bad.MinCPU = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MinCPU should be invalid")
	}
}

func TestClampContains(t *testing.T) {
	l := DefaultLimits()
	c := l.Clamp(Config{CPU: 50, MemMB: 1})
	if c.CPU != l.MaxCPU || c.MemMB != l.MinMemMB {
		t.Errorf("Clamp = %v", c)
	}
	if !l.Contains(c) {
		t.Error("clamped config must be contained")
	}
	if l.Contains(Config{CPU: 11, MemMB: 128}) {
		t.Error("out-of-box config should not be contained")
	}
}

func TestSnap(t *testing.T) {
	l := DefaultLimits()
	s := l.Snap(Config{CPU: 1.234, MemMB: 700})
	if !almost(s.CPU, 1.2, 1e-9) {
		t.Errorf("Snap CPU = %v, want 1.2", s.CPU)
	}
	if s.MemMB != 704 {
		t.Errorf("Snap Mem = %v, want 704 (128 + 9*64)", s.MemMB)
	}
	// Snapping an in-grid value is the identity.
	g := Config{CPU: 2.0, MemMB: 1024}
	if got := l.Snap(g); !almost(got.CPU, 2.0, 1e-9) || got.MemMB != 1024 {
		t.Errorf("Snap(grid point) = %v", got)
	}
	// Above the box snaps down into it.
	hi := l.Snap(Config{CPU: 99, MemMB: 99999})
	if hi.CPU > l.MaxCPU || hi.MemMB > l.MaxMemMB {
		t.Errorf("Snap above box = %v", hi)
	}
}

func TestGridValues(t *testing.T) {
	l := DefaultLimits()
	cpus := l.CPUValues()
	mems := l.MemValues()
	if len(cpus) != 100 {
		t.Errorf("CPU grid size = %d, want 100 (0.1..10 step 0.1)", len(cpus))
	}
	if len(mems) != 159 {
		t.Errorf("Mem grid size = %d, want 159 (128..10240 step 64)", len(mems))
	}
	if cpus[0] != 0.1 || !almost(cpus[len(cpus)-1], 10, 1e-9) {
		t.Errorf("CPU grid endpoints: %v .. %v", cpus[0], cpus[len(cpus)-1])
	}
	if mems[0] != 128 || mems[len(mems)-1] != 10240 {
		t.Errorf("Mem grid endpoints: %v .. %v", mems[0], mems[len(mems)-1])
	}
	if l.GridSize() != 100*159 {
		t.Errorf("GridSize = %d", l.GridSize())
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	l := DefaultLimits()
	cfg := Config{CPU: 3.7, MemMB: 4096}
	c01, m01 := l.Normalize(cfg)
	back := l.Denormalize(c01, m01)
	if !almost(back.CPU, cfg.CPU, 1e-9) || !almost(back.MemMB, cfg.MemMB, 1e-6) {
		t.Errorf("round trip %v -> %v", cfg, back)
	}
	// Out-of-range normalized inputs clamp.
	lo := l.Denormalize(-1, 2)
	if lo.CPU != l.MinCPU || lo.MemMB != l.MaxMemMB {
		t.Errorf("Denormalize clamping wrong: %v", lo)
	}
}

func TestCoupled(t *testing.T) {
	c := Coupled(2048)
	if c.CPU != 2 || c.MemMB != 2048 {
		t.Errorf("Coupled(2048) = %v", c)
	}
	c = Coupled(512)
	if c.CPU != 0.5 {
		t.Errorf("Coupled(512).CPU = %v", c.CPU)
	}
}

func TestAssignmentCloneEqual(t *testing.T) {
	a := Assignment{"f": {CPU: 1, MemMB: 128}, "g": {CPU: 2, MemMB: 256}}
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone should be equal")
	}
	b["f"] = Config{CPU: 3, MemMB: 128}
	if a.Equal(b) {
		t.Error("mutated clone should differ")
	}
	if a["f"].CPU != 1 {
		t.Error("clone mutation leaked into original")
	}
	if a.Equal(Assignment{"f": a["f"]}) {
		t.Error("different sizes should not be equal")
	}
	if a.Equal(Assignment{"f": a["f"], "x": a["g"]}) {
		t.Error("different keys should not be equal")
	}
}

func TestAssignmentKeysString(t *testing.T) {
	a := Assignment{"zeta": {CPU: 1, MemMB: 128}, "alpha": {CPU: 2, MemMB: 256}}
	ks := a.Keys()
	if len(ks) != 2 || ks[0] != "alpha" || ks[1] != "zeta" {
		t.Errorf("Keys = %v, want sorted", ks)
	}
	s := a.String()
	if !strings.HasPrefix(s, "alpha=") || !strings.Contains(s, "zeta=") {
		t.Errorf("String = %q", s)
	}
}

func TestUniform(t *testing.T) {
	a := Uniform([]string{"x", "y"}, Config{CPU: 1, MemMB: 128})
	if len(a) != 2 || a["x"] != a["y"] {
		t.Errorf("Uniform = %v", a)
	}
}

// Property: Snap is idempotent and stays inside the box.
func TestQuickSnapIdempotent(t *testing.T) {
	l := DefaultLimits()
	f := func(cpuRaw, memRaw float64) bool {
		if math.IsNaN(cpuRaw) || math.IsNaN(memRaw) || math.IsInf(cpuRaw, 0) || math.IsInf(memRaw, 0) {
			return true
		}
		cfg := Config{CPU: math.Mod(math.Abs(cpuRaw), 20), MemMB: math.Mod(math.Abs(memRaw), 20000)}
		s1 := l.Snap(cfg)
		s2 := l.Snap(s1)
		return l.Contains(s1) && almost(s1.CPU, s2.CPU, 1e-9) && almost(s1.MemMB, s2.MemMB, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Normalize maps into [0,1]² for contained configs.
func TestQuickNormalizeRange(t *testing.T) {
	l := DefaultLimits()
	f := func(c01, m01 float64) bool {
		if math.IsNaN(c01) || math.IsNaN(m01) {
			return true
		}
		cfg := l.Denormalize(math.Mod(math.Abs(c01), 1), math.Mod(math.Abs(m01), 1))
		nc, nm := l.Normalize(cfg)
		return nc >= 0 && nc <= 1 && nm >= 0 && nm <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
