// Package store is the recommendation storage layer behind the serving
// layer (internal/service): a small, swappable contract for
// content-addressed entries, keyed by fingerprint.
//
// The contract is deliberately narrow — Get/Put/Delete/Keys/Len/Close
// over opaque bytes — so storage policy (bounded memory, durable disk,
// memory-over-disk tiering, or anything a caller brings) is chosen by
// construction, not baked into the service. Three implementations ship:
//
//   - Memory: the serving layer's original bounded LRU, extracted. Fast,
//     process-private, dies with the process.
//   - Disk: one atomically-renamed file per fingerprint under a
//     directory. The index is rebuilt by scanning the directory on open,
//     so a restarted process serves everything its predecessor stored;
//     corrupt or truncated files degrade to misses, never errors.
//   - Tiered: Memory over Disk with write-through on Put and
//     promote-on-hit on Get — the serving default when a cache directory
//     is configured.
//
// Values are the already-serialized response body plus a caller-defined
// metadata blob (the service stores the canonical spec JSON and runner
// options there, so evaluation pools can be rebuilt after a restart).
// A Store never interprets either.
package store

// Entry is one stored recommendation: the exact response bytes served
// for its fingerprint, plus opaque caller metadata persisted alongside.
type Entry struct {
	// Body is the serialized recommendation as served to clients.
	// Stores return it byte-identically on every Get.
	Body []byte
	// Meta is caller-defined sidecar data stored and returned verbatim.
	Meta []byte
}

// Store is the storage contract the serving layer speaks. Keys are
// fingerprints ("sha256:<hex>", though a Store must accept any
// non-empty string). Implementations must be safe for concurrent use.
//
// Error semantics: a missing key is (Entry{}, false, nil) from Get —
// never an error. Errors are reserved for real storage failures
// (unwritable directory, closed store); a corrupt durable entry is a
// miss, not an error, so one bad file can never poison serving.
type Store interface {
	// Get returns the entry for key. ok reports whether it was found.
	Get(key string) (e Entry, ok bool, err error)
	// Put inserts or replaces the entry for key.
	Put(key string, e Entry) error
	// Delete removes key. Deleting an absent key is a no-op, not an error.
	Delete(key string) error
	// Keys returns a snapshot of the stored keys, in no particular order.
	Keys() []string
	// Len returns the number of stored entries.
	Len() int
	// Close releases the store's resources. A closed store errors on use.
	Close() error
}

// Stats describes a store for observability (/healthz). Implementations
// that can report themselves implement StatsReporter; the service falls
// back to {Kind: "custom"} for stores that don't.
type Stats struct {
	// Kind names the implementation: "memory", "disk", "tiered", ...
	Kind string `json:"kind"`
	// Tiers maps each tier's name to its current entry count. A
	// single-tier store reports one entry under its own kind.
	Tiers map[string]int `json:"tiers"`
	// Evictions counts entries dropped by a capacity bound since
	// construction (write-through tiers keep evicted entries durable in
	// the tier below, so a tiered eviction is not data loss).
	Evictions int64 `json:"evictions"`
}

// StatsReporter is the optional observability extension of Store.
type StatsReporter interface {
	Stats() Stats
}

// StatsOf reports s's Stats, or a {Kind: "custom"} placeholder with the
// store's overall length when s does not implement StatsReporter.
func StatsOf(s Store) Stats {
	if sr, ok := s.(StatsReporter); ok {
		return sr.Stats()
	}
	return Stats{Kind: "custom", Tiers: map[string]int{"custom": s.Len()}}
}
