package store

import "errors"

// Tiered layers a fast bounded store (typically Memory) over a durable
// one (typically Disk):
//
//   - Put writes through to both tiers, durable tier first — on the
//     healthy path an entry is never visible in memory before it is
//     safe on disk. A slow-tier failure no longer blocks the fast tier:
//     the entry is written fast-side anyway and the slow tier's error
//     returned, so a dead disk degrades the store to memory-only
//     serving instead of forgetting every new entry;
//   - Get tries the fast tier, then the slow one, promoting a slow-tier
//     hit into the fast tier so repeat reads stay cheap;
//   - an eviction from the bounded fast tier is not data loss: the
//     entry remains in the slow tier and the next Get re-promotes it.
//
// Safe for concurrent use when both tiers are.
type Tiered struct {
	fast Store
	slow Store
}

// NewTiered builds the two-tier store. Both tiers are owned by the
// result: Close closes them.
func NewTiered(fast, slow Store) *Tiered {
	return &Tiered{fast: fast, slow: slow}
}

// Get implements Store, promoting slow-tier hits into the fast tier.
// The fast-tier hit branch is on the serving fast path and alloc-free;
// the slow-tier promotion is the miss path and may allocate inside the
// tiers it calls.
//
//aarc:hotpath
func (t *Tiered) Get(key string) (Entry, bool, error) {
	if e, ok, err := t.fast.Get(key); err != nil || ok {
		return e, ok, err
	}
	e, ok, err := t.slow.Get(key)
	if err != nil || !ok {
		return Entry{}, false, err
	}
	// Promotion is best-effort: a full or failing fast tier must not
	// turn a perfectly good slow-tier hit into an error.
	_ = t.fast.Put(key, e)
	return e, true, nil
}

// Put implements Store, writing through both tiers (slow first). A
// slow-tier failure — a dead disk, an open breaker — still writes the
// fast tier, then surfaces the slow tier's error for the caller to
// count: the entry serves from memory while the durable tier is down,
// and the caller knows durability was not achieved. A fast-tier failure
// is returned as-is (with both tiers failing, the fast error wins; the
// entry landed nowhere the next Get will look first).
func (t *Tiered) Put(key string, e Entry) error {
	slowErr := t.slow.Put(key, e)
	if err := t.fast.Put(key, e); err != nil {
		return err
	}
	return slowErr
}

// Delete implements Store, removing the key from both tiers.
func (t *Tiered) Delete(key string) error {
	return errors.Join(t.fast.Delete(key), t.slow.Delete(key))
}

// Keys implements Store: the union of both tiers (write-through keeps
// the slow tier a superset, but a warm-started or hand-filled fast tier
// is tolerated).
func (t *Tiered) Keys() []string {
	seen := make(map[string]struct{})
	var keys []string
	for _, tier := range []Store{t.slow, t.fast} {
		for _, k := range tier.Keys() {
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	return keys
}

// Len implements Store.
func (t *Tiered) Len() int { return len(t.Keys()) }

// Close implements Store, closing both tiers.
func (t *Tiered) Close() error {
	return errors.Join(t.fast.Close(), t.slow.Close())
}

// Warm promotes up to max slow-tier entries into the fast tier (all of
// them when max <= 0) and returns how many it promoted. Called once
// after open, it turns a cold restart into a warm one: the first
// requests hit memory, not disk.
func (t *Tiered) Warm(max int) int {
	keys := t.slow.Keys()
	if max > 0 && len(keys) > max {
		keys = keys[:max]
	}
	warmed := 0
	for _, k := range keys {
		e, ok, err := t.slow.Get(k)
		if err != nil || !ok {
			continue
		}
		if t.fast.Put(k, e) == nil {
			warmed++
		}
	}
	return warmed
}

// Stats implements StatsReporter, merging both tiers' stats. Evictions
// are the fast tier's (the slow tier is unbounded in every shipped
// configuration).
func (t *Tiered) Stats() Stats {
	s := Stats{Kind: "tiered", Tiers: make(map[string]int, 2)}
	for _, tier := range []Store{t.fast, t.slow} {
		ts := StatsOf(tier)
		for name, n := range ts.Tiers {
			s.Tiers[name] += n
		}
		s.Evictions += ts.Evictions
	}
	return s
}
