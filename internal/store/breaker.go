package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is returned — without touching the inner store — by
// every op refused while the breaker is open or while a half-open probe
// is already in flight. Retry wrappers treat it as terminal.
var ErrBreakerOpen = errors.New("store: circuit breaker open (tier skipped)")

// BreakerState is one of the breaker's three states.
type BreakerState int32

const (
	// BreakerClosed: healthy; every op passes through.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped; every op fails fast with ErrBreakerOpen
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; exactly one probe op is let
	// through. Its success closes the breaker, its failure reopens it.
	BreakerHalfOpen
)

// String returns the state's wire name ("closed", "open", "half-open").
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. Zero fields take the documented
// defaults.
type BreakerConfig struct {
	// Threshold is how many consecutive op failures open the breaker
	// (default 5).
	Threshold int
	// Cooldown is how long an open breaker refuses ops before admitting
	// a half-open probe (default 15s).
	Cooldown time.Duration
	// Logf, when non-nil, receives one line per state transition
	// (log.Printf-shaped).
	Logf func(format string, args ...any)
	// Clock overrides time.Now for tests; nil uses the real clock.
	Clock func() time.Time
}

// Breaker is a three-state circuit breaker Store wrapper: closed → open
// after Threshold consecutive failures → half-open probe after Cooldown
// → closed on probe success (or back to open on probe failure). While
// open, every Get/Put/Delete fails fast with ErrBreakerOpen and the
// inner store is never touched — a dead disk tier costs a refused call,
// not a failing syscall, and a Tiered store above degrades to
// memory-only serving. Keys, Len and Close always pass through (the
// shipped Disk store answers them from its in-memory index). Safe for
// concurrent use.
type Breaker struct {
	inner Store
	cfg   BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // last transition into BreakerOpen
	probing  bool      // a half-open probe is in flight

	transitions atomic.Int64 // state changes since construction
	fastFails   atomic.Int64 // ops refused without touching the inner store
}

// NewBreaker wraps inner with the given breaker policy.
func NewBreaker(inner Store, cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 15 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{inner: inner, cfg: cfg}
}

// State returns the breaker's effective state. An open breaker whose
// cooldown has elapsed reports BreakerHalfOpen even before the next op
// arrives to run the probe: readiness endpoints see "recovering" as soon
// as it is true, not only once traffic happens by.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Transitions returns how many state changes the breaker has made.
func (b *Breaker) Transitions() int64 { return b.transitions.Load() }

// FastFails returns how many ops were refused without an inner call.
func (b *Breaker) FastFails() int64 { return b.fastFails.Load() }

// setState transitions (caller holds b.mu), logging and counting.
func (b *Breaker) setState(next BreakerState) {
	if b.state == next {
		return
	}
	prev := b.state
	b.state = next
	b.transitions.Add(1)
	if next == BreakerOpen {
		b.openedAt = b.cfg.Clock()
	}
	if b.cfg.Logf != nil {
		b.cfg.Logf("store: breaker %s -> %s", prev, next)
	}
}

// admit decides whether one op may proceed. probe reports that the op is
// the half-open probe and must report back via record even on panic-free
// early returns.
func (b *Breaker) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			b.fastFails.Add(1)
			return false, ErrBreakerOpen
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		return true, nil
	default: // BreakerHalfOpen
		if b.probing {
			b.fastFails.Add(1)
			return false, ErrBreakerOpen
		}
		b.probing = true
		return true, nil
	}
}

// record books one admitted op's outcome.
func (b *Breaker) record(probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	if err != nil {
		if b.state == BreakerHalfOpen {
			// The probe failed: back to open, cooldown restarted.
			b.setState(BreakerOpen)
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.setState(BreakerOpen)
			b.failures = 0
		}
		return
	}
	b.failures = 0
	if b.state == BreakerHalfOpen {
		b.setState(BreakerClosed)
	}
}

// Get implements Store, failing fast while open.
func (b *Breaker) Get(key string) (Entry, bool, error) {
	probe, err := b.admit()
	if err != nil {
		return Entry{}, false, err
	}
	e, ok, err := b.inner.Get(key)
	b.record(probe, err)
	return e, ok, err
}

// Put implements Store, failing fast while open.
func (b *Breaker) Put(key string, e Entry) error {
	probe, err := b.admit()
	if err != nil {
		return err
	}
	err = b.inner.Put(key, e)
	b.record(probe, err)
	return err
}

// Delete implements Store, failing fast while open.
func (b *Breaker) Delete(key string) error {
	probe, err := b.admit()
	if err != nil {
		return err
	}
	err = b.inner.Delete(key)
	b.record(probe, err)
	return err
}

// Keys implements Store, always passing through.
func (b *Breaker) Keys() []string { return b.inner.Keys() }

// Len implements Store, always passing through.
func (b *Breaker) Len() int { return b.inner.Len() }

// Close implements Store, always passing through.
func (b *Breaker) Close() error { return b.inner.Close() }

// Stats implements StatsReporter, delegating to the inner store.
func (b *Breaker) Stats() Stats { return StatsOf(b.inner) }
