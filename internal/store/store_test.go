package store_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"aarc/internal/store"
)

// The conformance suite: every Store implementation must pass every
// subtest. New implementations plug in here.
func implementations(t *testing.T) map[string]func(t *testing.T) store.Store {
	return map[string]func(t *testing.T) store.Store{
		"memory": func(t *testing.T) store.Store { return store.NewMemory(1024) },
		"disk": func(t *testing.T) store.Store {
			d, err := store.OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"tiered": func(t *testing.T) store.Store {
			d, err := store.OpenDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return store.NewTiered(store.NewMemory(1024), d)
		},
		// The resilience wrappers: a quiescent fault injector must be a
		// transparent pass-through, and the full production stack —
		// breaker over retry over a deterministically faulting store —
		// must behave exactly like a healthy one (each key's first
		// Get/Put fails, every retry recovers it, the breaker never sees
		// a failure).
		"faulty-quiescent": func(t *testing.T) store.Store {
			return store.NewFaulty(store.NewMemory(1024), store.FaultConfig{})
		},
		"retry-over-faults": func(t *testing.T) store.Store {
			faulty := store.NewFaulty(store.NewMemory(1024), store.FaultConfig{FailFirstPerKey: true})
			return store.NewRetry(faulty, store.RetryConfig{})
		},
		"breaker-retry-faulty": func(t *testing.T) store.Store {
			faulty := store.NewFaulty(store.NewMemory(1024), store.FaultConfig{FailFirstPerKey: true})
			return store.NewBreaker(store.NewRetry(faulty, store.RetryConfig{}), store.BreakerConfig{})
		},
		// The change-notification wrapper must be a transparent
		// pass-through store-contract-wise (its hook is a side channel).
		"notify": func(t *testing.T) store.Store {
			return store.NewNotify(store.NewMemory(1024), func(store.Op, string) {})
		},
	}
}

func entry(i int) store.Entry {
	return store.Entry{
		Body: []byte(fmt.Sprintf(`{"fingerprint":"fp-%d","value":%d}`, i, i)),
		Meta: []byte(fmt.Sprintf(`{"meta":%d}`, i)),
	}
}

func key(i int) string { return fmt.Sprintf("sha256:%064d", i) }

func TestConformance(t *testing.T) {
	for name, open := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) {
				st := open(t)
				defer st.Close()
				if _, ok, err := st.Get(key(1)); ok || err != nil {
					t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
				}
				want := entry(1)
				if err := st.Put(key(1), want); err != nil {
					t.Fatal(err)
				}
				got, ok, err := st.Get(key(1))
				if err != nil || !ok {
					t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
				}
				if !bytes.Equal(got.Body, want.Body) || !bytes.Equal(got.Meta, want.Meta) {
					t.Errorf("round trip mutated entry:\n got %q %q\nwant %q %q", got.Body, got.Meta, want.Body, want.Meta)
				}
			})
			t.Run("Overwrite", func(t *testing.T) {
				st := open(t)
				defer st.Close()
				for i := 0; i < 2; i++ {
					if err := st.Put(key(1), entry(i)); err != nil {
						t.Fatal(err)
					}
				}
				got, ok, err := st.Get(key(1))
				if err != nil || !ok {
					t.Fatalf("Get: ok=%v err=%v", ok, err)
				}
				if !bytes.Equal(got.Body, entry(1).Body) {
					t.Errorf("overwrite kept stale body %q", got.Body)
				}
				if st.Len() != 1 {
					t.Errorf("Len after overwrite = %d, want 1", st.Len())
				}
			})
			t.Run("Delete", func(t *testing.T) {
				st := open(t)
				defer st.Close()
				if err := st.Put(key(1), entry(1)); err != nil {
					t.Fatal(err)
				}
				if err := st.Delete(key(1)); err != nil {
					t.Fatal(err)
				}
				if _, ok, _ := st.Get(key(1)); ok {
					t.Error("deleted key still present")
				}
				// Idempotent: deleting an absent key is not an error.
				if err := st.Delete(key(1)); err != nil {
					t.Errorf("second delete errored: %v", err)
				}
				if st.Len() != 0 {
					t.Errorf("Len after delete = %d, want 0", st.Len())
				}
			})
			t.Run("KeysAndLen", func(t *testing.T) {
				st := open(t)
				defer st.Close()
				const n = 7
				for i := 0; i < n; i++ {
					if err := st.Put(key(i), entry(i)); err != nil {
						t.Fatal(err)
					}
				}
				if st.Len() != n {
					t.Errorf("Len = %d, want %d", st.Len(), n)
				}
				seen := make(map[string]bool)
				for _, k := range st.Keys() {
					seen[k] = true
				}
				for i := 0; i < n; i++ {
					if !seen[key(i)] {
						t.Errorf("Keys missing %s", key(i))
					}
				}
				if len(seen) != n {
					t.Errorf("Keys has %d distinct entries, want %d", len(seen), n)
				}
			})
			t.Run("Closed", func(t *testing.T) {
				st := open(t)
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				if err := st.Put(key(1), entry(1)); err == nil {
					t.Error("Put on closed store did not error")
				}
				if _, _, err := st.Get(key(1)); err == nil {
					t.Error("Get on closed store did not error")
				}
			})
			// Concurrent mixed traffic, meaningful under -race: correctness
			// here is "no race, no error, and present keys read back intact".
			t.Run("Concurrent", func(t *testing.T) {
				st := open(t)
				defer st.Close()
				const goroutines = 8
				const perG = 50
				var wg sync.WaitGroup
				errs := make([]error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := 0; i < perG; i++ {
							k := key(i % 10)
							switch i % 3 {
							case 0:
								if err := st.Put(k, entry(i)); err != nil {
									errs[g] = err
									return
								}
							case 1:
								if _, _, err := st.Get(k); err != nil {
									errs[g] = err
									return
								}
							default:
								if err := st.Delete(k); err != nil {
									errs[g] = err
									return
								}
							}
						}
					}(g)
				}
				wg.Wait()
				for g, err := range errs {
					if err != nil {
						t.Fatalf("goroutine %d: %v", g, err)
					}
				}
			})
		})
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	const capacity = 4
	m := store.NewMemory(capacity)
	const n = 10
	for i := 0; i < n; i++ {
		if err := m.Put(key(i), entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != capacity {
		t.Errorf("Len = %d, want bound %d", m.Len(), capacity)
	}
	st := m.Stats()
	if st.Kind != "memory" || st.Evictions != n-capacity {
		t.Errorf("stats = %+v, want kind=memory evictions=%d", st, n-capacity)
	}
	// Oldest evicted, newest retained.
	if _, ok, _ := m.Get(key(0)); ok {
		t.Error("oldest entry survived past capacity")
	}
	if _, ok, _ := m.Get(key(n - 1)); !ok {
		t.Error("newest entry missing")
	}
	// Get refreshes recency: touching the oldest survivor keeps it alive
	// through the next insert.
	oldest := key(n - capacity)
	if _, ok, _ := m.Get(oldest); !ok {
		t.Fatalf("%s should still be cached", oldest)
	}
	if err := m.Put(key(n), entry(n)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get(oldest); !ok {
		t.Error("recently-touched entry was evicted before a staler one")
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := d1.Put(key(i), entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.Delete(key(0)); err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != n-1 {
		t.Errorf("reopened store has %d entries, want %d", d2.Len(), n-1)
	}
	for i := 1; i < n; i++ {
		got, ok, err := d2.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("reopened Get(%s): ok=%v err=%v", key(i), ok, err)
		}
		if !bytes.Equal(got.Body, entry(i).Body) || !bytes.Equal(got.Meta, entry(i).Meta) {
			t.Errorf("entry %d corrupted across reopen", i)
		}
	}
	if _, ok, _ := d2.Get(key(0)); ok {
		t.Error("deleted entry resurrected by reopen")
	}
}

// dataFiles lists the store's committed entry files (not temp files).
func dataFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

func TestDiskCorruptionReadsAsMiss(t *testing.T) {
	corruptions := map[string]func(path string) error{
		"truncated": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, b[:len(b)/2], 0o644)
		},
		"garbage": func(path string) error {
			return os.WriteFile(path, []byte("\x00\xffnot json at all"), 0o644)
		},
		"bitflip": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			// Flip a byte inside the base64 body region, keeping the JSON
			// parseable: only the checksum can catch this.
			i := bytes.Index(b, []byte(`"body":"`)) + len(`"body":"`)
			if b[i] == 'A' {
				b[i] = 'B'
			} else {
				b[i] = 'A'
			}
			return os.WriteFile(path, b, 0o644)
		},
		"meta-bitflip": func(path string) error {
			// Metadata corruption is as fatal as body corruption (the
			// serving layer rebuilds runner pools from it): the checksum
			// must cover it too.
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			i := bytes.Index(b, []byte(`"meta":"`)) + len(`"meta":"`)
			if b[i] == 'A' {
				b[i] = 'B'
			} else {
				b[i] = 'A'
			}
			return os.WriteFile(path, b, 0o644)
		},
		"wrong-key": func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, bytes.Replace(b, []byte(key(1)), []byte(key(2)), 1), 0o644)
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := store.OpenDisk(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if err := d.Put(key(1), entry(1)); err != nil {
				t.Fatal(err)
			}
			files := dataFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("expected 1 data file, found %v", files)
			}
			if err := corrupt(filepath.Join(dir, files[0])); err != nil {
				t.Fatal(err)
			}

			// In-process: the corrupt entry degrades to a miss, never an error.
			if _, ok, err := d.Get(key(1)); ok || err != nil {
				t.Errorf("corrupt Get = ok=%v err=%v, want miss without error", ok, err)
			}
			if d.Len() != 0 {
				t.Errorf("corrupt entry still indexed (len=%d)", d.Len())
			}
			// A fresh Put repairs the slot.
			if err := d.Put(key(1), entry(1)); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := d.Get(key(1)); !ok || err != nil {
				t.Errorf("repaired Get = ok=%v err=%v", ok, err)
			}

			// Across restart: corruption present at open is skipped, not fatal.
			if err := corrupt(filepath.Join(dir, dataFiles(t, dir)[0])); err != nil {
				t.Fatal(err)
			}
			d2, err := store.OpenDisk(dir)
			if err != nil {
				t.Fatalf("OpenDisk over corrupt dir: %v", err)
			}
			defer d2.Close()
			if _, ok, err := d2.Get(key(1)); ok || err != nil {
				t.Errorf("reopened corrupt Get = ok=%v err=%v, want miss without error", ok, err)
			}
		})
	}
}

func TestDiskCleansTempFilesOnOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ".tmp-12345"), []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, name := range dataFiles(t, dir) {
		if strings.HasPrefix(name, ".tmp-") {
			t.Errorf("leftover temp file %s survived open", name)
		}
	}
}

func TestTieredWriteThroughAndPromote(t *testing.T) {
	mem := store.NewMemory(2)
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := store.NewTiered(mem, disk)
	defer tiered.Close()

	// Write-through: a Put lands in both tiers.
	if err := tiered.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := mem.Get(key(1)); !ok {
		t.Error("put did not reach the memory tier")
	}
	if _, ok, _ := disk.Get(key(1)); !ok {
		t.Error("put did not reach the disk tier")
	}

	// Overflow the memory tier: evicted entries stay durable on disk.
	for i := 2; i <= 4; i++ {
		if err := tiered.Put(key(i), entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := mem.Get(key(1)); ok {
		t.Fatal("memory tier kept an entry past its bound")
	}
	got, ok, err := tiered.Get(key(1))
	if err != nil || !ok {
		t.Fatalf("tiered Get after memory eviction: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.Body, entry(1).Body) {
		t.Errorf("disk tier returned wrong body %q", got.Body)
	}
	// Promote-on-hit: the disk hit is now back in memory.
	if _, ok, _ := mem.Get(key(1)); !ok {
		t.Error("disk hit was not promoted into the memory tier")
	}

	// Len/Keys count distinct keys across tiers, not the sum.
	if tiered.Len() != 4 {
		t.Errorf("tiered Len = %d, want 4", tiered.Len())
	}

	// Delete clears every tier.
	if err := tiered.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := mem.Get(key(1)); ok {
		t.Error("delete left the memory tier populated")
	}
	if _, ok, _ := disk.Get(key(1)); ok {
		t.Error("delete left the disk tier populated")
	}

	st := tiered.Stats()
	if st.Kind != "tiered" || st.Tiers["disk"] != 3 {
		t.Errorf("stats = %+v, want kind=tiered disk=3", st)
	}
}

func TestTieredWarm(t *testing.T) {
	dir := t.TempDir()
	disk, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := disk.Put(key(i), entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	disk.Close()

	// A new process: reopen the dir under a cold memory tier and warm it.
	disk2, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	mem := store.NewMemory(16)
	tiered := store.NewTiered(mem, disk2)
	defer tiered.Close()
	if warmed := tiered.Warm(4); warmed != 4 {
		t.Errorf("Warm(4) = %d, want 4", warmed)
	}
	if mem.Len() != 4 {
		t.Errorf("memory tier holds %d after warm, want 4", mem.Len())
	}
	if warmed := tiered.Warm(0); warmed != 6 {
		t.Errorf("Warm(0) = %d, want all 6", warmed)
	}
}

func TestStatsOfCustomStore(t *testing.T) {
	st := store.StatsOf(nopStore{})
	if st.Kind != "custom" || st.Tiers["custom"] != 3 {
		t.Errorf("StatsOf(custom) = %+v", st)
	}
}

// nopStore implements Store but not StatsReporter.
type nopStore struct{}

func (nopStore) Get(string) (store.Entry, bool, error) { return store.Entry{}, false, nil }
func (nopStore) Put(string, store.Entry) error         { return nil }
func (nopStore) Delete(string) error                   { return nil }
func (nopStore) Keys() []string                        { return nil }
func (nopStore) Len() int                              { return 3 }
func (nopStore) Close() error                          { return nil }
