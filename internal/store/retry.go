package store

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// RetryConfig tunes a Retry wrapper. Zero fields take the documented
// defaults.
type RetryConfig struct {
	// Attempts is the total tries per op, first included (default 3).
	Attempts int
	// BaseDelay is the backoff before the first retry (default 500µs);
	// each further retry doubles it, up to MaxDelay (default 20ms). Every
	// delay is jittered uniformly in [0.5x, 1.5x) so synchronized callers
	// don't hammer a recovering tier in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter stream (deterministic per seed).
	Seed uint64
}

// Retry wraps a Store with bounded, jittered-exponential-backoff retries
// for transient op errors. Get, Put and Delete are retried (all three are
// idempotent under this contract — Put replaces, Delete tolerates
// absence); Keys, Len and Close are single-shot. Terminal errors —
// ErrClosed from a closed store, ErrBreakerOpen from an open breaker —
// are never retried: backing off cannot fix them and would only stack
// latency on a path the breaker exists to keep cheap. Safe for
// concurrent use when the inner store is.
type Retry struct {
	inner Store
	cfg   RetryConfig

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64

	// sleep is swapped by tests to avoid real backoff waits.
	sleep func(time.Duration)
}

// NewRetry wraps inner with the given retry policy.
func NewRetry(inner Store, cfg RetryConfig) *Retry {
	if cfg.Attempts <= 0 {
		cfg.Attempts = 3
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 500 * time.Microsecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	return &Retry{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x517cc1b727220a95)),
		sleep: time.Sleep,
	}
}

// Retries returns how many retry attempts (beyond each op's first try)
// this wrapper has spent since construction.
func (r *Retry) Retries() int64 { return r.retries.Load() }

// retryable reports whether backing off and trying again can help.
func retryable(err error) bool {
	return !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBreakerOpen)
}

// backoff returns the jittered delay before retry attempt i (0-based).
func (r *Retry) backoff(i int) time.Duration {
	d := r.cfg.BaseDelay << i
	if d > r.cfg.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = r.cfg.MaxDelay
	}
	r.mu.Lock()
	jitter := 0.5 + r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// do runs op up to Attempts times, backing off between tries.
func (r *Retry) do(op func() error) error {
	var err error
	for i := 0; i < r.cfg.Attempts; i++ {
		if i > 0 {
			r.sleep(r.backoff(i - 1))
			r.retries.Add(1)
		}
		if err = op(); err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// Get implements Store, retrying transient errors.
func (r *Retry) Get(key string) (Entry, bool, error) {
	var e Entry
	var ok bool
	err := r.do(func() error {
		var err error
		e, ok, err = r.inner.Get(key)
		return err
	})
	return e, ok, err
}

// Put implements Store, retrying transient errors. A retried Put
// overwrites whatever a previous torn attempt left behind — the repair
// path for partial writes.
func (r *Retry) Put(key string, e Entry) error {
	return r.do(func() error { return r.inner.Put(key, e) })
}

// Delete implements Store, retrying transient errors.
func (r *Retry) Delete(key string) error {
	return r.do(func() error { return r.inner.Delete(key) })
}

// Keys implements Store.
func (r *Retry) Keys() []string { return r.inner.Keys() }

// Len implements Store.
func (r *Retry) Len() int { return r.inner.Len() }

// Close implements Store.
func (r *Retry) Close() error { return r.inner.Close() }

// Stats implements StatsReporter, delegating to the inner store.
func (r *Retry) Stats() Stats { return StatsOf(r.inner) }
