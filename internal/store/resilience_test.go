package store_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aarc/internal/store"
)

// fakeClock is a mutex-guarded manual clock for breaker cooldown tests:
// no sleeps, no flakes.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestFaultyScriptConsumedInOrder(t *testing.T) {
	boom := errors.New("boom")
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	f.Script(boom, nil, store.ErrInjected)

	if err := f.Put(key(1), entry(1)); !errors.Is(err, boom) {
		t.Errorf("scripted op 1: err = %v, want boom", err)
	}
	if err := f.Put(key(1), entry(1)); err != nil {
		t.Errorf("scripted op 2 (nil slot): err = %v", err)
	}
	if _, _, err := f.Get(key(1)); !errors.Is(err, store.ErrInjected) {
		t.Errorf("scripted op 3: err = %v, want ErrInjected", err)
	}
	// Script drained: quiescent pass-through again.
	if got, ok, err := f.Get(key(1)); err != nil || !ok || !bytes.Equal(got.Body, entry(1).Body) {
		t.Errorf("post-script Get = ok=%v err=%v", ok, err)
	}
	if f.Injected() != 2 {
		t.Errorf("Injected = %d, want 2", f.Injected())
	}
}

func TestFaultySwitchAndRecover(t *testing.T) {
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	if err := f.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	f.FailAll(nil)
	if _, _, err := f.Get(key(1)); !errors.Is(err, store.ErrInjected) {
		t.Errorf("FailAll Get err = %v", err)
	}
	if err := f.Delete(key(1)); !errors.Is(err, store.ErrInjected) {
		t.Errorf("FailAll Delete err = %v", err)
	}
	f.Recover()
	if _, ok, err := f.Get(key(1)); err != nil || !ok {
		t.Errorf("recovered Get = ok=%v err=%v", ok, err)
	}
}

func TestFaultyFailForWindow(t *testing.T) {
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	f.FailFor(25 * time.Millisecond)
	if err := f.Put(key(1), entry(1)); !errors.Is(err, store.ErrInjected) {
		t.Errorf("in-window Put err = %v, want ErrInjected", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := f.Put(key(1), entry(1)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("FailFor window never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFaultyDeterministicProbabilityStream(t *testing.T) {
	cfg := store.FaultConfig{GetFailProb: 0.5, Seed: 7}
	a := store.NewFaulty(store.NewMemory(4), cfg)
	b := store.NewFaulty(store.NewMemory(4), cfg)
	var seqA, seqB []bool
	for i := 0; i < 64; i++ {
		_, _, errA := a.Get(key(1))
		_, _, errB := b.Get(key(1))
		seqA = append(seqA, errA != nil)
		seqB = append(seqB, errB != nil)
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same-seed wrappers diverged at op %d", i)
		}
	}
	if a.Injected() == 0 || a.Injected() == 64 {
		t.Errorf("prob 0.5 over 64 ops injected %d faults — stream looks degenerate", a.Injected())
	}
}

// TestFaultyTornWriteAndRetryRepair: a torn Put leaves a truncated entry
// beneath the failure; a Retry wrapper's next attempt overwrites it with
// the full bytes — the repair path for partial writes.
func TestFaultyTornWriteAndRetryRepair(t *testing.T) {
	inner := store.NewMemory(4)
	f := store.NewFaulty(inner, store.FaultConfig{TornWrites: true})
	f.Script(store.ErrInjected)

	want := entry(1)
	if err := f.Put(key(1), want); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("torn Put err = %v", err)
	}
	torn, ok, err := inner.Get(key(1))
	if err != nil || !ok {
		t.Fatalf("torn write left nothing beneath: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(torn.Body, want.Body[:len(want.Body)/2]) {
		t.Errorf("torn body = %q, want the truncated first half", torn.Body)
	}

	// The same failure under Retry: attempt 2 overwrites the torn entry.
	inner2 := store.NewMemory(4)
	f2 := store.NewFaulty(inner2, store.FaultConfig{TornWrites: true})
	f2.Script(store.ErrInjected)
	r := store.NewRetry(f2, store.RetryConfig{})
	if err := r.Put(key(1), want); err != nil {
		t.Fatalf("retried torn Put: %v", err)
	}
	got, ok, err := inner2.Get(key(1))
	if err != nil || !ok || !bytes.Equal(got.Body, want.Body) || !bytes.Equal(got.Meta, want.Meta) {
		t.Errorf("retry did not repair the torn entry: ok=%v err=%v body=%q", ok, err, got.Body)
	}
	if r.Retries() != 1 {
		t.Errorf("Retries = %d, want 1", r.Retries())
	}
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	r := store.NewRetry(f, store.RetryConfig{})
	if err := r.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}

	// Two injected failures, then clean: the third attempt lands.
	f.Script(store.ErrInjected, store.ErrInjected)
	got, ok, err := r.Get(key(1))
	if err != nil || !ok {
		t.Fatalf("Get across transient faults = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.Body, entry(1).Body) {
		t.Errorf("recovered Get returned wrong body %q", got.Body)
	}
	if r.Retries() != 2 {
		t.Errorf("Retries = %d, want 2", r.Retries())
	}
}

func TestRetryBoundedAndSurfacesPermanentFaults(t *testing.T) {
	boom := errors.New("disk on fire")
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	f.FailAll(boom)
	r := store.NewRetry(f, store.RetryConfig{Attempts: 4})
	if _, _, err := r.Get(key(1)); !errors.Is(err, boom) {
		t.Errorf("permanent-fault Get err = %v, want boom", err)
	}
	if f.Ops() != 4 {
		t.Errorf("permanent fault consumed %d attempts, want exactly 4", f.Ops())
	}
	if r.Retries() != 3 {
		t.Errorf("Retries = %d, want 3", r.Retries())
	}
}

func TestRetryTerminalErrorsNotRetried(t *testing.T) {
	mem := store.NewMemory(4)
	f := store.NewFaulty(mem, store.FaultConfig{})
	r := store.NewRetry(f, store.RetryConfig{})
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get(key(1)); !errors.Is(err, store.ErrClosed) {
		t.Errorf("closed Get err = %v", err)
	}
	if f.Ops() != 1 {
		t.Errorf("ErrClosed was retried: %d attempts", f.Ops())
	}

	// ErrBreakerOpen is equally terminal: retrying into an open breaker
	// would stack backoff latency onto the path the breaker keeps cheap.
	f2 := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	f2.FailAll(store.ErrBreakerOpen)
	r2 := store.NewRetry(f2, store.RetryConfig{})
	if _, _, err := r2.Get(key(1)); !errors.Is(err, store.ErrBreakerOpen) {
		t.Errorf("breaker-open Get err = %v", err)
	}
	if f2.Ops() != 1 {
		t.Errorf("ErrBreakerOpen was retried: %d attempts", f2.Ops())
	}
}

func TestBreakerOpensAfterThresholdAndFailsFast(t *testing.T) {
	var logs []string
	var logMu sync.Mutex
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	f.FailAll(nil)
	b := store.NewBreaker(f, store.BreakerConfig{
		Threshold: 3,
		Cooldown:  time.Hour,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})

	// K failures pass through to the inner store and trip the breaker.
	for i := 0; i < 3; i++ {
		if _, _, err := b.Get(key(1)); !errors.Is(err, store.ErrInjected) {
			t.Fatalf("failure %d: err = %v", i, err)
		}
	}
	if got := b.State(); got != store.BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, got)
	}
	// Open: ops are refused without touching the inner store.
	opsBefore := f.Ops()
	for i := 0; i < 5; i++ {
		if _, _, err := b.Get(key(1)); !errors.Is(err, store.ErrBreakerOpen) {
			t.Fatalf("open-state Get err = %v, want ErrBreakerOpen", err)
		}
		if err := b.Put(key(1), entry(1)); !errors.Is(err, store.ErrBreakerOpen) {
			t.Fatalf("open-state Put err = %v, want ErrBreakerOpen", err)
		}
	}
	if f.Ops() != opsBefore {
		t.Errorf("open breaker still reached the inner store (%d -> %d ops)", opsBefore, f.Ops())
	}
	if b.FastFails() != 10 {
		t.Errorf("FastFails = %d, want 10", b.FastFails())
	}
	if b.Transitions() != 1 {
		t.Errorf("Transitions = %d, want 1", b.Transitions())
	}
	logMu.Lock()
	defer logMu.Unlock()
	if len(logs) != 1 || !strings.Contains(logs[0], "closed -> open") {
		t.Errorf("transition log = %q, want one closed -> open line", logs)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clock := newFakeClock()
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	b := store.NewBreaker(f, store.BreakerConfig{
		Threshold: 2,
		Cooldown:  10 * time.Second,
		Clock:     clock.now,
	})

	f.FailAll(nil)
	for i := 0; i < 2; i++ {
		_, _, _ = b.Get(key(1))
	}
	if b.State() != store.BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	// Cooldown not yet elapsed: still refusing.
	clock.advance(9 * time.Second)
	if _, _, err := b.Get(key(1)); !errors.Is(err, store.ErrBreakerOpen) {
		t.Fatalf("pre-cooldown Get err = %v", err)
	}

	// Cooldown elapsed: State reports half-open before any op probes.
	clock.advance(2 * time.Second)
	if b.State() != store.BreakerHalfOpen {
		t.Fatalf("post-cooldown State = %v, want half-open", b.State())
	}

	// Probe while the fault persists: back to open, cooldown restarted.
	if _, _, err := b.Get(key(1)); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("failing probe err = %v, want the inner fault", err)
	}
	if b.State() != store.BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if _, _, err := b.Get(key(1)); !errors.Is(err, store.ErrBreakerOpen) {
		t.Fatalf("reopened breaker admitted an op: %v", err)
	}

	// Fault clears, cooldown elapses again: the probe closes the breaker.
	f.Recover()
	clock.advance(11 * time.Second)
	if err := b.Put(key(1), entry(1)); err != nil {
		t.Fatalf("recovering probe Put: %v", err)
	}
	if b.State() != store.BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if got, ok, err := b.Get(key(1)); err != nil || !ok || !bytes.Equal(got.Body, entry(1).Body) {
		t.Errorf("closed-again Get = ok=%v err=%v", ok, err)
	}
	// closed->open, open->half-open, half-open->open, open->half-open,
	// half-open->closed.
	if b.Transitions() != 5 {
		t.Errorf("Transitions = %d, want 5", b.Transitions())
	}
}

// gatedStore holds Get calls on a gate so a test can keep an op —
// breaker-side, a half-open probe — deterministically in flight.
type gatedStore struct {
	store.Store
	mu      sync.Mutex
	gate    chan struct{} // nil: pass straight through
	entered chan struct{} // signaled when a gated Get starts
}

func (g *gatedStore) Get(key string) (store.Entry, bool, error) {
	g.mu.Lock()
	gate, entered := g.gate, g.entered
	g.mu.Unlock()
	if gate != nil {
		entered <- struct{}{}
		<-gate
	}
	return g.Store.Get(key)
}

// TestBreakerHalfOpenAdmitsOneProbe: while the half-open probe is in
// flight, concurrent ops are refused rather than stampeding the
// recovering tier.
func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	clock := newFakeClock()
	f := store.NewFaulty(store.NewMemory(4), store.FaultConfig{})
	g := &gatedStore{Store: f}
	b := store.NewBreaker(g, store.BreakerConfig{Threshold: 1, Cooldown: time.Second, Clock: clock.now})

	f.FailAll(nil)
	_, _, _ = b.Get(key(1)) // trip: closed -> open
	f.Recover()
	clock.advance(2 * time.Second)

	// Arm the gate and launch the probe: it is admitted, then parks
	// inside the inner store until the gate opens.
	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	g.mu.Lock()
	g.gate, g.entered = gate, entered
	g.mu.Unlock()
	probeDone := make(chan error, 1)
	go func() {
		_, _, err := b.Get(key(1))
		probeDone <- err
	}()
	<-entered // the probe is in flight

	// A concurrent op during the probe must fast-fail, not join it. (A
	// wrongly admitted op would park on the gate and return nil after
	// release — caught below.)
	if _, _, err := b.Get(key(1)); !errors.Is(err, store.ErrBreakerOpen) {
		t.Errorf("op during half-open probe: err = %v, want ErrBreakerOpen", err)
	}

	close(gate)
	if err := <-probeDone; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if b.State() != store.BreakerClosed {
		t.Fatalf("state after probe = %v, want closed", b.State())
	}
}

// TestResilientStackEndToEnd drives the production composition —
// Breaker(Retry(Faulty(Disk))) — through an outage and recovery.
func TestResilientStackEndToEnd(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	faulty := store.NewFaulty(disk, store.FaultConfig{})
	retry := store.NewRetry(faulty, store.RetryConfig{})
	breaker := store.NewBreaker(retry, store.BreakerConfig{Threshold: 2, Cooldown: time.Minute, Clock: clock.now})
	defer breaker.Close()

	// Healthy writes land on disk.
	if err := breaker.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}

	// Outage: each breaker-visible failure is a full retry burst.
	faulty.FailAll(nil)
	for i := 0; i < 2; i++ {
		if _, _, err := breaker.Get(key(1)); err == nil {
			t.Fatal("outage Get succeeded")
		}
	}
	if breaker.State() != store.BreakerOpen {
		t.Fatalf("state = %v, want open", breaker.State())
	}
	opsBefore := faulty.Ops()
	_, _, _ = breaker.Get(key(1))
	if faulty.Ops() != opsBefore {
		t.Error("open breaker retried into the dead tier")
	}

	// Recovery: fault clears, cooldown elapses, the probe closes the
	// breaker and the durable entry is readable again.
	faulty.Recover()
	clock.advance(2 * time.Minute)
	got, ok, err := breaker.Get(key(1))
	if err != nil || !ok || !bytes.Equal(got.Body, entry(1).Body) {
		t.Fatalf("post-recovery Get = ok=%v err=%v", ok, err)
	}
	if breaker.State() != store.BreakerClosed {
		t.Errorf("state after recovery = %v, want closed", breaker.State())
	}
	if retry.Retries() == 0 {
		t.Error("outage consumed no retries — the retry tier never engaged")
	}
}
