package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Disk is a durable store: one file per fingerprint under a directory,
// written via an atomic temp-file-and-rename so a crash mid-write can
// never leave a half-visible entry. Opening the store scans the
// directory and rebuilds the index, so a restarted process serves every
// entry its predecessor stored. Corrupt files — truncated, garbage,
// tampered, or belonging to a different key — are treated as misses
// (and removed), never surfaced as errors. Safe for concurrent use.
type Disk struct {
	dir string

	// mu guards only the index and the closed flag. File I/O — the
	// expensive part: a Put's write+fsync is ~0.5 ms — happens outside
	// the write lock, so concurrent Gets are not serialized behind a
	// search completing its Put. Renames are atomic and file names are
	// a pure function of the key, so a read racing a rewrite sees
	// either the old or the new complete envelope, never a torn one.
	mu     sync.RWMutex
	index  map[string]string // key -> file name within dir
	closed bool
}

// diskEnvelope is the on-disk file format. Body and Meta are base64 in
// JSON ([]byte marshaling); Sum is a hex SHA-256 over both (see
// envelopeSum) so in-place corruption of either — body or metadata —
// that still parses is caught and degraded to a miss.
type diskEnvelope struct {
	Format int    `json:"format"`
	Key    string `json:"key"`
	Sum    string `json:"sum"`
	Body   []byte `json:"body"`
	Meta   []byte `json:"meta,omitempty"`
}

// envelopeSum is the integrity checksum over an entry's content. The
// body's length prefixes the concatenation so (body, meta) splits can
// never alias; metadata is covered because a corrupt meta is as fatal
// to consumers (runner-pool rebuilds) as a corrupt body.
func envelopeSum(e Entry) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d\n", len(e.Body))
	h.Write(e.Body)
	h.Write(e.Meta)
	return hex.EncodeToString(h.Sum(nil))
}

// diskFormat versions the envelope; readers skip files from formats
// they do not understand (a miss, like any other unreadable file).
const diskFormat = 1

const (
	diskSuffix = ".rec.json"
	tmpPrefix  = ".tmp-"
)

// OpenDisk opens (creating if needed) a disk store rooted at dir and
// rebuilds its index from the files present. Unreadable or corrupt
// files are skipped — and removed — so a previous crash cannot wedge
// the store. Leftover temp files from interrupted writes are cleaned.
func OpenDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening disk store: %w", err)
	}
	d := &Disk{dir: dir, index: make(map[string]string)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			// An interrupted write never renamed into place: discard.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, diskSuffix) {
			continue
		}
		env, ok := readEnvelope(filepath.Join(dir, name))
		if !ok || fileName(env.Key) != name {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		d.index[env.Key] = name
	}
	return d, nil
}

// Dir returns the directory backing the store.
func (d *Disk) Dir() string { return d.dir }

// fileName derives a filesystem-safe, collision-free name for a key.
// Keys are hashed rather than escaped so any fingerprint string — or
// any key at all — maps to a fixed-length portable name.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + diskSuffix
}

// readEnvelope parses one stored file, reporting ok=false for any file
// that is not a complete, untampered envelope.
func readEnvelope(path string) (diskEnvelope, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return diskEnvelope{}, false
	}
	var env diskEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return diskEnvelope{}, false
	}
	if env.Format != diskFormat || env.Key == "" {
		return diskEnvelope{}, false
	}
	if env.Sum != envelopeSum(Entry{Body: env.Body, Meta: env.Meta}) {
		return diskEnvelope{}, false
	}
	return env, true
}

// Get implements Store. A present-but-corrupt file is a miss: the entry
// is dropped from the index and the file removed, so the serving layer
// simply re-searches. The file read happens under the read lock only,
// so concurrent Gets proceed in parallel.
func (d *Disk) Get(key string) (Entry, bool, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return Entry{}, false, ErrClosed
	}
	name, ok := d.index[key]
	d.mu.RUnlock()
	if !ok {
		return Entry{}, false, nil
	}
	path := filepath.Join(d.dir, name)
	env, ok := readEnvelope(path)
	if ok && env.Key == key {
		return Entry{Body: env.Body, Meta: env.Meta}, true, nil
	}
	// Corrupt (or deleted underfoot): drop it — unless a concurrent Put
	// re-committed the slot while this read was in flight, in which case
	// the fresh entry stays and this call is just a miss.
	d.mu.Lock()
	if n, still := d.index[key]; still && n == name {
		if env2, ok2 := readEnvelope(path); !ok2 || env2.Key != key {
			delete(d.index, key)
			_ = os.Remove(path)
		}
	}
	d.mu.Unlock()
	return Entry{}, false, nil
}

// Put implements Store: marshal the envelope, write it to a temp file
// in the same directory, fsync, then atomically rename into place.
func (d *Disk) Put(key string, e Entry) error {
	if key == "" {
		return errors.New("store: Put with empty key")
	}
	env := diskEnvelope{
		Format: diskFormat,
		Key:    key,
		Sum:    envelopeSum(e),
		Body:   e.Body,
		Meta:   e.Meta,
	}
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}

	// The expensive part — temp write + fsync — runs outside the lock;
	// only the commit (atomic rename + index update) is serialized.
	d.mu.RLock()
	closed := d.closed
	d.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	f, err := os.CreateTemp(d.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", key, err)
	}
	tmp := f.Name()
	if _, err = f.Write(b); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", key, err)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		_ = os.Remove(tmp)
		return ErrClosed
	}
	name := fileName(key)
	if err := os.Rename(tmp, filepath.Join(d.dir, name)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", key, err)
	}
	d.index[key] = name
	return nil
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	name, ok := d.index[key]
	if !ok {
		return nil
	}
	delete(d.index, key)
	if err := os.Remove(filepath.Join(d.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: deleting %s: %w", key, err)
	}
	return nil
}

// Keys implements Store.
func (d *Disk) Keys() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	keys := make([]string, 0, len(d.index))
	for k := range d.index {
		keys = append(keys, k)
	}
	return keys
}

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.index)
}

// Close implements Store. Entries stay on disk: a later OpenDisk on the
// same directory serves them again.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.index = nil
	return nil
}

// Stats implements StatsReporter. Disk never evicts: its bound is the
// filesystem.
func (d *Disk) Stats() Stats {
	return Stats{Kind: "disk", Tiers: map[string]int{"disk": d.Len()}}
}
