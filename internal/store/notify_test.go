package store_test

import (
	"errors"
	"testing"

	"aarc/internal/store"
)

func TestNotifyFiresOnSuccessfulMutations(t *testing.T) {
	type note struct {
		op  store.Op
		key string
	}
	var notes []note
	n := store.NewNotify(store.NewMemory(8), func(op store.Op, key string) {
		notes = append(notes, note{op, key})
	})
	if err := n.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	if err := n.Put(key(1), entry(2)); err != nil { // replace notifies too
		t.Fatal(err)
	}
	if _, _, err := n.Get(key(1)); err != nil { // reads never notify
		t.Fatal(err)
	}
	if err := n.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	want := []note{{store.OpPut, key(1)}, {store.OpPut, key(1)}, {store.OpDelete, key(1)}}
	if len(notes) != len(want) {
		t.Fatalf("hook fired %d times, want %d: %+v", len(notes), len(want), notes)
	}
	for i := range want {
		if notes[i] != want[i] {
			t.Fatalf("note[%d] = %+v, want %+v", i, notes[i], want[i])
		}
	}
}

func TestNotifySkipsFailedMutations(t *testing.T) {
	faulty := store.NewFaulty(store.NewMemory(8), store.FaultConfig{})
	faulty.FailAll(errors.New("injected: store down"))
	fired := 0
	n := store.NewNotify(faulty, func(store.Op, string) { fired++ })
	if err := n.Put(key(1), entry(1)); err == nil {
		t.Fatal("Put on a failing store succeeded")
	}
	if err := n.Delete(key(1)); err == nil {
		t.Fatal("Delete on a failing store succeeded")
	}
	if fired != 0 {
		t.Fatalf("hook fired %d times on failed mutations", fired)
	}
	faulty.Recover()
	if err := n.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times after recovery, want 1", fired)
	}
}

func TestNotifyNilHookPassesThrough(t *testing.T) {
	n := store.NewNotify(store.NewMemory(8), nil)
	if err := n.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
}

func TestNotifyStatsDelegatesToInner(t *testing.T) {
	n := store.NewNotify(store.NewMemory(8), func(store.Op, string) {})
	if err := n.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	st := store.StatsOf(n)
	if st.Kind != "memory" {
		t.Fatalf("notify-wrapped stats kind = %q, want the inner %q", st.Kind, "memory")
	}
	if st.Tiers["memory"] != 1 {
		t.Fatalf("tiers = %v, want memory:1", st.Tiers)
	}
}

func TestNotifyCloseDoesNotNotify(t *testing.T) {
	fired := 0
	n := store.NewNotify(store.NewMemory(8), func(store.Op, string) { fired++ })
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("hook fired %d times on Close", fired)
	}
	if err := n.Put(key(1), entry(1)); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Put after Close: err = %v, want ErrClosed", err)
	}
	if fired != 0 {
		t.Fatalf("hook fired on a closed store's failed Put")
	}
}
