package store

// Op names a mutating store operation, for Notify hooks.
type Op int

const (
	// OpPut: an entry was inserted or replaced.
	OpPut Op = iota
	// OpDelete: an entry was removed.
	OpDelete
)

// Notify wraps a Store and invokes a hook after every successful
// mutation — the change-notification seam the serving layer's event bus
// hangs off: every Put and Delete reaching the store, whatever path
// produced it (singleton miss, batch run, coalesced window, background
// refresh, explicit invalidation), fires exactly one callback.
//
// The hook runs synchronously on the mutating goroutine, after the
// inner operation succeeded; failed operations never notify. Keep the
// hook fast and non-blocking — the service's hook publishes to a
// bounded-buffer bus and returns. Reads pass through untouched.
type Notify struct {
	inner Store
	fn    func(op Op, key string)
}

// NewNotify wraps inner so fn observes every successful mutation. A nil
// fn makes Notify a transparent pass-through.
func NewNotify(inner Store, fn func(op Op, key string)) *Notify {
	return &Notify{inner: inner, fn: fn}
}

// Get passes through to the wrapped store. On the serving fast path;
// the pass-through itself must stay alloc-free.
//
//aarc:hotpath
func (n *Notify) Get(key string) (Entry, bool, error) { return n.inner.Get(key) }

// Put writes through and notifies on success.
func (n *Notify) Put(key string, e Entry) error {
	if err := n.inner.Put(key, e); err != nil {
		return err
	}
	if n.fn != nil {
		n.fn(OpPut, key)
	}
	return nil
}

// Delete deletes through and notifies on success. The Store contract
// makes deleting an absent key a successful no-op, so callers that want
// existence-accurate events (Service.Invalidate) check before deleting.
func (n *Notify) Delete(key string) error {
	if err := n.inner.Delete(key); err != nil {
		return err
	}
	if n.fn != nil {
		n.fn(OpDelete, key)
	}
	return nil
}

// Keys passes through to the wrapped store.
func (n *Notify) Keys() []string { return n.inner.Keys() }

// Len passes through to the wrapped store.
func (n *Notify) Len() int { return n.inner.Len() }

// Close closes the wrapped store. Closing does not notify.
func (n *Notify) Close() error { return n.inner.Close() }

// Stats reports the wrapped store's stats: the wrapper is invisible to
// observability (/healthz shows "tiered", not "notify(tiered)").
func (n *Notify) Stats() Stats { return StatsOf(n.inner) }
