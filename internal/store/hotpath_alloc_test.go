// Runtime twins of the hotalloc static check: the //aarc:hotpath
// markers on Memory.Get, Tiered.Get and Notify.Get promise the hit
// path is alloc-free, and hotalloc proves it for the code it can see —
// but not across the Store interface hops or inside trusted stdlib
// calls. AllocsPerRun closes that gap by measuring the real thing.
package store_test

import (
	"testing"

	"aarc/internal/store"
)

// allocFreeGet pins st.Get(k) — which must hit — at zero allocations.
func allocFreeGet(t *testing.T, st store.Store, k string) {
	t.Helper()
	if _, ok, err := st.Get(k); !ok || err != nil {
		t.Fatalf("warm-up Get = ok=%v err=%v, want a hit", ok, err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, ok, err := st.Get(k); !ok || err != nil {
			t.Fatalf("Get = ok=%v err=%v, want a hit", ok, err)
		}
	})
	if avg != 0 {
		t.Errorf("Get hit path allocates %.1f times per call, want 0", avg)
	}
}

func TestMemoryGetHitAllocFree(t *testing.T) {
	m := store.NewMemory(16)
	defer m.Close()
	if err := m.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	allocFreeGet(t, m, key(1))
}

func TestTieredGetFastHitAllocFree(t *testing.T) {
	st := store.NewTiered(store.NewMemory(16), store.NewMemory(16))
	defer st.Close()
	if err := st.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	allocFreeGet(t, st, key(1))
}

func TestNotifyGetHitAllocFree(t *testing.T) {
	st := store.NewNotify(store.NewMemory(16), func(store.Op, string) {})
	defer st.Close()
	if err := st.Put(key(1), entry(1)); err != nil {
		t.Fatal(err)
	}
	allocFreeGet(t, st, key(1))
}
