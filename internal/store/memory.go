package store

import (
	"container/list"
	"errors"
	"sync"
)

// ErrClosed is returned by every operation on a closed store.
var ErrClosed = errors.New("store: closed")

// Memory is the bounded least-recently-used in-memory store — the
// serving layer's original recommendation cache, extracted behind the
// Store contract. Get marks an entry most recently used; Put beyond
// capacity evicts the least recently used entry. Safe for concurrent
// use.
type Memory struct {
	mu        sync.Mutex
	capacity  int
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	evictions int64
	closed    bool
}

type memItem struct {
	key string
	e   Entry
}

// NewMemory builds a Memory store holding at most capacity entries
// (minimum 1).
func NewMemory(capacity int) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get implements Store. It sits under the serving fast path, so it is
// pinned alloc-free (the LRU bump moves an existing list element; no
// node is created).
//
//aarc:hotpath
func (m *Memory) Get(key string) (Entry, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Entry{}, false, ErrClosed
	}
	el, ok := m.items[key]
	if !ok {
		return Entry{}, false, nil
	}
	m.order.MoveToFront(el)
	return el.Value.(*memItem).e, true, nil
}

// Put implements Store, evicting the least recently used entry when the
// insert exceeds capacity.
func (m *Memory) Put(key string, e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if el, ok := m.items[key]; ok {
		el.Value.(*memItem).e = e
		m.order.MoveToFront(el)
		return nil
	}
	m.items[key] = m.order.PushFront(&memItem{key: key, e: e})
	if m.order.Len() <= m.capacity {
		return nil
	}
	oldest := m.order.Back()
	m.order.Remove(oldest)
	delete(m.items, oldest.Value.(*memItem).key)
	m.evictions++
	return nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if el, ok := m.items[key]; ok {
		m.order.Remove(el)
		delete(m.items, key)
	}
	return nil
}

// Keys implements Store.
func (m *Memory) Keys() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.items))
	for el := m.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*memItem).key)
	}
	return keys
}

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Close implements Store, dropping every entry.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.order.Init()
	m.items = nil
	return nil
}

// Stats implements StatsReporter.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Kind:      "memory",
		Tiers:     map[string]int{"memory": m.order.Len()},
		Evictions: m.evictions,
	}
}
