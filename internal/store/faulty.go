package store

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error a Faulty store injects.
var ErrInjected = errors.New("store: injected fault")

// FaultConfig shapes a Faulty wrapper's steady-state behavior. All fields
// are optional; the zero value is a fully quiescent wrapper that passes
// the conformance suite unchanged. Scripted and switched faults
// (Script, FailAll, FailFor) are runtime methods on Faulty, layered on
// top of this static configuration.
type FaultConfig struct {
	// GetFailProb / PutFailProb / DeleteFailProb inject ErrInjected on
	// that fraction of ops, drawn from a Seed-determined stream: two
	// wrappers with the same seed fault the same ops in the same order.
	GetFailProb    float64
	PutFailProb    float64
	DeleteFailProb float64
	// FailFirstPerKey fails each key's first Get and first Put once
	// (ErrInjected), passing every later op on that key through — a
	// deterministic transient-fault pattern that a >= 2-attempt Retry
	// recovers from under any concurrent interleaving (the guarantee is
	// per key, not per a shared counter, so a racing op cannot steal the
	// recovery slot). Used to run the conformance suite over a
	// faulting-but-recoverable stack.
	FailFirstPerKey bool
	// Latency is injected before every inner op (both faulted and clean),
	// simulating a slow tier.
	Latency time.Duration
	// TornWrites makes a failed Put leave a torn entry beneath: the
	// truncated first half of Body and Meta is written to the inner store
	// before the error is returned — the partial-write hazard a retrying
	// caller must overwrite and a non-retrying caller must never trust.
	TornWrites bool
	// Seed drives the probability streams. The zero seed is valid and
	// deterministic like any other.
	Seed uint64
}

// Faulty is a deterministic fault-injection Store wrapper: the test and
// chaos harness for the resilience stack (Retry, Breaker, Tiered
// degradation). It injects errors by probability (FaultConfig), by
// script (Script), by switch (FailAll/Recover) or by deadline (FailFor),
// optionally with latency and torn writes. Quiescent, it is a
// transparent pass-through. Safe for concurrent use when the inner store
// is.
type Faulty struct {
	inner Store
	cfg   FaultConfig

	mu        sync.Mutex
	rng       *rand.Rand
	script    []error // consumed one per fault-eligible op; nil slot = clean
	switchErr error   // FailAll sentinel; nil = off
	downUntil time.Time
	firstSeen map[opKind]map[string]bool // FailFirstPerKey bookkeeping

	ops      atomic.Int64
	injected atomic.Int64
}

// NewFaulty wraps inner with the given fault configuration.
func NewFaulty(inner Store, cfg FaultConfig) *Faulty {
	return &Faulty{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
	}
}

// Script queues per-op outcomes consumed in order by the next
// fault-eligible ops (Get/Put/Delete): a nil slot lets the op through, a
// non-nil one fails it with that error. Scripted outcomes take precedence
// over every other fault mode until the queue drains.
func (f *Faulty) Script(outcomes ...error) {
	f.mu.Lock()
	f.script = append(f.script, outcomes...)
	f.mu.Unlock()
}

// FailAll fails every op with err (ErrInjected when nil) until Recover.
func (f *Faulty) FailAll(err error) {
	if err == nil {
		err = ErrInjected
	}
	f.mu.Lock()
	f.switchErr = err
	f.mu.Unlock()
}

// FailFor fails every op with ErrInjected for the next d, then recovers
// on its own — the chaos-drill mode behind aarcd's -chaos-disk-down.
func (f *Faulty) FailFor(d time.Duration) {
	f.mu.Lock()
	f.downUntil = time.Now().Add(d)
	f.mu.Unlock()
}

// Recover clears FailAll and FailFor; probability and scripted faults
// are unaffected.
func (f *Faulty) Recover() {
	f.mu.Lock()
	f.switchErr = nil
	f.downUntil = time.Time{}
	f.mu.Unlock()
}

// Ops returns how many fault-eligible ops (Get/Put/Delete) reached this
// wrapper — including the ones it failed without touching the inner
// store. Breaker tests assert fast-fail by watching this stop moving.
func (f *Faulty) Ops() int64 { return f.ops.Load() }

// Injected returns how many faults this wrapper has injected.
func (f *Faulty) Injected() int64 { return f.injected.Load() }

// opKind distinguishes the fault-eligible ops for FailFirstPerKey.
type opKind int

const (
	opGet opKind = iota
	opPut
	opDelete
)

// fault decides one op's fate. prob is the op kind's configured
// probability.
func (f *Faulty) fault(kind opKind, key string, prob float64) error {
	f.ops.Add(1)
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.script) > 0 {
		err := f.script[0]
		f.script = f.script[1:]
		if err != nil {
			f.injected.Add(1)
		}
		return err
	}
	if f.switchErr != nil {
		f.injected.Add(1)
		return f.switchErr
	}
	if !f.downUntil.IsZero() && time.Now().Before(f.downUntil) {
		f.injected.Add(1)
		return ErrInjected
	}
	if f.cfg.FailFirstPerKey && kind != opDelete {
		if f.firstSeen == nil {
			f.firstSeen = make(map[opKind]map[string]bool)
		}
		seen := f.firstSeen[kind]
		if seen == nil {
			seen = make(map[string]bool)
			f.firstSeen[kind] = seen
		}
		if !seen[key] {
			seen[key] = true
			f.injected.Add(1)
			return ErrInjected
		}
	}
	if prob > 0 && f.rng.Float64() < prob {
		f.injected.Add(1)
		return ErrInjected
	}
	return nil
}

// Get implements Store.
func (f *Faulty) Get(key string) (Entry, bool, error) {
	if err := f.fault(opGet, key, f.cfg.GetFailProb); err != nil {
		return Entry{}, false, err
	}
	return f.inner.Get(key)
}

// Put implements Store. A faulted Put with TornWrites enabled still
// writes the truncated halves of the entry beneath before erroring.
func (f *Faulty) Put(key string, e Entry) error {
	if err := f.fault(opPut, key, f.cfg.PutFailProb); err != nil {
		if f.cfg.TornWrites {
			_ = f.inner.Put(key, Entry{Body: e.Body[:len(e.Body)/2], Meta: e.Meta[:len(e.Meta)/2]}) //aarc:errpath chaos injector: torn writes simulate the crash the checksums must catch
		}
		return err
	}
	return f.inner.Put(key, e)
}

// Delete implements Store.
func (f *Faulty) Delete(key string) error {
	if err := f.fault(opDelete, key, f.cfg.DeleteFailProb); err != nil {
		return err
	}
	return f.inner.Delete(key)
}

// Keys implements Store: no error channel, so never faulted.
func (f *Faulty) Keys() []string { return f.inner.Keys() }

// Len implements Store.
func (f *Faulty) Len() int { return f.inner.Len() }

// Close implements Store.
func (f *Faulty) Close() error { return f.inner.Close() }

// Stats implements StatsReporter, delegating to the inner store: fault
// injection is invisible to observability, like any transparent wrapper.
func (f *Faulty) Stats() Stats { return StatsOf(f.inner) }
