// Store benchmarks behind EXPERIMENTS.md §"Serving": the per-operation
// cost of each tier, on entry sizes shaped like real cached
// recommendations (~1 KB body + ~1 KB canonical-spec metadata).
//
//	go test -bench=BenchmarkStore -benchmem ./internal/store/
package store_test

import (
	"fmt"
	"testing"

	"aarc/internal/store"
)

func benchEntry() store.Entry {
	body := fmt.Sprintf(`{"fingerprint":"sha256:%064d","assignment":{%s}}`, 7,
		`"a":{"cpu":4,"mem_mb":4096},"b":{"cpu":2,"mem_mb":2048},"c":{"cpu":8,"mem_mb":8192}`)
	meta := make([]byte, 0, 1024)
	for len(meta) < 1024 {
		meta = append(meta, `{"spec":"chunk"}`...)
	}
	return store.Entry{Body: []byte(body), Meta: meta}
}

func benchStore(b *testing.B, open func(b *testing.B) store.Store) {
	e := benchEntry()
	b.Run("Put", func(b *testing.B) {
		st := open(b)
		defer st.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Put(key(i%512), e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GetHit", func(b *testing.B) {
		st := open(b)
		defer st.Close()
		for i := 0; i < 512; i++ {
			if err := st.Put(key(i), e); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := st.Get(key(i % 512)); !ok || err != nil {
				b.Fatalf("miss: ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("GetMiss", func(b *testing.B) {
		st := open(b)
		defer st.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := st.Get("sha256:absent"); ok || err != nil {
				b.Fatalf("unexpected: ok=%v err=%v", ok, err)
			}
		}
	})
}

func BenchmarkStoreMemory(b *testing.B) {
	benchStore(b, func(b *testing.B) store.Store { return store.NewMemory(1024) })
}

func BenchmarkStoreDisk(b *testing.B) {
	benchStore(b, func(b *testing.B) store.Store {
		d, err := store.OpenDisk(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return d
	})
}

func BenchmarkStoreTiered(b *testing.B) {
	benchStore(b, func(b *testing.B) store.Store {
		d, err := store.OpenDisk(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return store.NewTiered(store.NewMemory(1024), d)
	})
}
