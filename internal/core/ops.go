// Package core implements the paper's contribution: the Graph-Centric
// Scheduler (Algorithm 1) and the Priority Configurator (Algorithm 2) that
// together find cost-minimal decoupled CPU/memory configurations for a
// serverless workflow under an end-to-end latency SLO.
package core

import (
	"container/heap"
	"fmt"
	"math"

	"aarc/internal/resources"
)

// op is one deallocation operation in the Priority Configurator's queue:
// shrink one resource dimension of one function group by the current step.
// It carries its exponential-backoff state (step) and remaining trials
// (the paper's trail / FUNC_TRIAL).
type op struct {
	group string
	typ   resources.ResourceType
	step  float64 // current absolute step size (vCPU or MB)
	trial int     // remaining trials before the op is abandoned

	priority float64 // larger = sooner; +Inf for untried ops
	seq      int     // FIFO tie-break within equal priority
	index    int     // heap bookkeeping
}

func (o *op) String() string {
	return fmt.Sprintf("%s/%s step=%.3g trial=%d prio=%.3g", o.group, o.typ, o.step, o.trial, o.priority)
}

// opQueue is a max-heap of ops ordered by priority, with FIFO order among
// equal priorities (stable via seq). It implements the paper's PQ.
type opQueue struct {
	items []*op
	nseq  int
	fifo  bool // ablation: ignore priorities, behave as a plain FIFO queue
}

var _ heap.Interface = (*opQueue)(nil)

func newOpQueue(fifo bool) *opQueue { return &opQueue{fifo: fifo} }

func (q *opQueue) Len() int { return len(q.items) }

func (q *opQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.fifo || a.priority == b.priority {
		return a.seq < b.seq
	}
	// NaN-safe: treat NaN as lowest priority.
	if math.IsNaN(a.priority) {
		return false
	}
	if math.IsNaN(b.priority) {
		return true
	}
	return a.priority > b.priority
}

func (q *opQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *opQueue) Push(x any) {
	o := x.(*op)
	o.index = len(q.items)
	q.items = append(q.items, o)
}

func (q *opQueue) Pop() any {
	old := q.items
	n := len(old)
	o := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return o
}

// push enqueues o at the given priority, assigning a fresh sequence number.
func (q *opQueue) push(o *op, priority float64) {
	o.priority = priority
	o.seq = q.nseq
	q.nseq++
	heap.Push(q, o)
}

// pop removes and returns the highest-priority op; nil when empty.
func (q *opQueue) pop() *op {
	if q.Len() == 0 {
		return nil
	}
	return heap.Pop(q).(*op)
}
