package core_test

import (
	"context"
	"fmt"

	"aarc/internal/core"
	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// Example runs the full AARC pipeline on the ML Pipeline workload with
// measurement noise disabled, printing the configuration chosen for the
// dominant function.
func Example() {
	spec := workloads.MLPipeline()
	runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
		HostCores: 96, // the paper's testbed capacity
	})
	if err != nil {
		panic(err)
	}
	outcome, err := core.New(core.DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		panic(err)
	}
	cfg := outcome.Best["paramtune"]
	fmt.Printf("paramtune: %.0f vCPU, %.0f MB\n", cfg.CPU, cfg.MemMB)

	res, err := runner.Evaluate(outcome.Best)
	if err != nil {
		panic(err)
	}
	fmt.Printf("SLO met: %t\n", res.E2EMS <= spec.SLOMS)
	// Output:
	// paramtune: 4 vCPU, 512 MB
	// SLO met: true
}
