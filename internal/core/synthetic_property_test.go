package core

import (
	"context"
	"testing"

	"aarc/internal/search"
	"aarc/internal/workflow"
	"aarc/internal/workloads"
)

// Property: on randomly generated workflows of assorted shapes, AARC always
// returns a valid assignment, never violates the SLO (averaged over noisy
// validation runs), and never costs more than the base configuration.
func TestSearchPropertyOnSyntheticWorkflows(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic property sweep skipped in -short mode")
	}
	shapes := []workloads.SyntheticOptions{
		{Layers: 1, MaxWidth: 1},
		{Layers: 2, MaxWidth: 3},
		{Layers: 4, MaxWidth: 2},
		{Layers: 3, MaxWidth: 4},
	}
	for _, shape := range shapes {
		for seed := uint64(1); seed <= 5; seed++ {
			shape.Seed = seed
			spec, err := workloads.Synthetic(shape)
			if err != nil {
				t.Fatalf("shape %+v: %v", shape, err)
			}
			runner, err := workflow.NewRunner(spec, workflow.RunnerOptions{
				HostCores: 96, Noise: true, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			if err := search.ValidateAssignment(runner, outcome.Best); err != nil {
				t.Fatalf("%s: invalid assignment: %v", spec.Name, err)
			}

			var e2e, cost float64
			const n = 5
			for i := 0; i < n; i++ {
				res, err := runner.Evaluate(outcome.Best)
				if err != nil {
					t.Fatal(err)
				}
				if res.OOM {
					t.Fatalf("%s: chosen config OOMs", spec.Name)
				}
				e2e += res.E2EMS
				cost += res.Cost
			}
			e2e /= n
			cost /= n
			if e2e > spec.SLOMS {
				t.Errorf("%s: avg e2e %.0f > SLO %.0f", spec.Name, e2e, spec.SLOMS)
			}
			baseRes, err := runner.Evaluate(runner.Base())
			if err != nil {
				t.Fatal(err)
			}
			if cost > baseRes.Cost*1.02 {
				t.Errorf("%s: configured cost %.0f above base %.0f", spec.Name, cost, baseRes.Cost)
			}
		}
	}
}
