package core

import (
	"context"
	"errors"
	"fmt"

	"aarc/internal/dag"
	"aarc/internal/search"
)

// Version is the AARC implementation version folded into serving-layer
// fingerprints. Bump it when a change alters which samples the search
// takes or which assignment it returns: cached recommendations from the
// old implementation then self-invalidate.
const Version = 1

func init() {
	search.Register("aarc", Version, func(seed uint64) search.Searcher {
		return New(DefaultOptions())
	})
}

// AARC is the paper's automated affinity-aware resource configurator. It
// implements search.Searcher; the evaluator passed to Search must also
// satisfy core.Evaluator (expose the DAG), which *workflow.Runner does.
type AARC struct {
	opts Options
}

// New returns an AARC searcher with the given options (zero fields fall
// back to DefaultOptions).
func New(opts Options) *AARC {
	return &AARC{opts: opts.normalize()}
}

// Name implements search.Searcher.
func (a *AARC) Name() string { return "AARC" }

// Search implements Algorithm 1 (Overall Scheduling):
//
//  1. assign the over-provisioned base configuration to every function,
//  2. execute the workflow and weight the DAG with measured runtimes,
//  3. extract the critical path and configure it against the end-to-end SLO
//     with the Priority Configurator,
//  4. enumerate detour sub-paths, derive each sub-SLO from the runtime_sum
//     window between its anchors minus already-scheduled functions, and
//     configure the remaining functions,
//  5. return the union of all per-function configurations.
func (a *AARC) Search(ctx context.Context, ev search.Evaluator, opts search.Options) (search.Outcome, error) {
	wev, ok := ev.(Evaluator)
	if !ok {
		return search.Outcome{}, errors.New("core: evaluator does not expose the workflow DAG (want core.Evaluator)")
	}
	sloMS := opts.SLOMS
	if sloMS <= 0 {
		return search.Outcome{}, fmt.Errorf("core: non-positive SLO %v", sloMS)
	}

	st := &state{
		ev:        wev,
		lim:       ev.Limits(),
		opts:      a.opts,
		cur:       ev.Base(),
		trace:     search.NewTrace(ctx, "AARC", opts),
		scheduled: make(map[string]bool),
		e2eSLO:    sloMS,
	}
	// halt maps an error bubbling out of the algorithm to Search's return:
	// trace-enforcement halts (budget / cancellation) yield the partial
	// outcome — st.cur and st.curRes always describe the last accepted
	// configuration — while genuine evaluation failures keep the
	// zero-Outcome behavior.
	halt := func(err error) (search.Outcome, error) {
		if search.Halted(err) {
			return search.Outcome{Best: st.cur, Trace: st.trace, Final: st.curRes}, search.StopCause(err)
		}
		return search.Outcome{}, err
	}

	// Lines 2–5: base configuration, profiling execution.
	res, err := ev.Evaluate(st.cur)
	if err != nil {
		return search.Outcome{}, err
	}
	if res.OOM {
		return search.Outcome{}, fmt.Errorf("core: base configuration OOMs at node %q; raise the base config", res.Fail)
	}
	st.curRes = res
	if err := st.trace.Record(st.cur, res, true, "init"); err != nil {
		return halt(err)
	}
	if res.E2EMS > st.effSLO(sloMS) {
		return search.Outcome{Best: st.cur, Trace: st.trace, Final: st.curRes},
			fmt.Errorf("core: base configuration misses the SLO (%.0f ms > %.0f ms); the workflow cannot be configured", res.E2EMS, sloMS)
	}

	// Line 6: critical path on the runtime-weighted DAG.
	weights := res.NodeWeights()
	g := wev.Graph()
	critical, _, err := dag.CriticalPath(g, weights)
	if err != nil {
		return search.Outcome{}, err
	}

	// Lines 7–9: configure the critical path against the full SLO.
	if err := st.configurePath(critical, sloMS); err != nil {
		return halt(err)
	}

	// Lines 10–21: configure detour sub-paths against their windows.
	if !a.opts.NoSubpaths {
		subpaths, err := dag.FindDetourSubpaths(g, critical, weights)
		if err != nil {
			return search.Outcome{}, err
		}
		for _, sp := range subpaths {
			if err := a.scheduleSubpath(st, critical, sp); err != nil {
				return halt(err)
			}
		}
	}

	// Final validation and repair: a lucky noisy measurement can let an
	// SLO-violating shrink slip through; re-measuring and restoring the
	// heaviest reconfigured function backs the paper's §IV-C.a claim that
	// AARC's configurations are reliably SLO-compliant.
	if a.opts.ValidationRuns > 0 {
		if err := a.validateAndRepair(st); err != nil {
			return halt(err)
		}
	}

	return search.Outcome{Best: st.cur, Trace: st.trace, Final: st.curRes}, nil
}

// validateAndRepair re-executes the final assignment ValidationRuns times;
// while the mean end-to-end latency misses the SLO, the group contributing
// the most runtime among reconfigured groups is restored to its base
// configuration. The loop is bounded by the number of groups.
func (a *AARC) validateAndRepair(st *state) error {
	base := st.ev.Base()
	for rounds := 0; rounds <= len(base); rounds++ {
		var mean float64
		var last search.Result
		for i := 0; i < a.opts.ValidationRuns; i++ {
			res, err := st.ev.Evaluate(st.cur)
			if err != nil {
				return err
			}
			mean += res.E2EMS
			last = res
			st.curRes = last
			if err := st.trace.Record(st.cur, res, true, "validate"); err != nil {
				return err
			}
		}
		mean /= float64(a.opts.ValidationRuns)
		if mean <= st.e2eSLO && !last.OOM {
			return nil
		}

		// Repair: restore the base allocation of the heaviest shrunken
		// group (largest total runtime contribution).
		worst := ""
		worstRuntime := -1.0
		perGroup := make(map[string]float64)
		for _, nr := range last.Nodes {
			perGroup[nr.Group] += nr.RuntimeMS
		}
		for g, rt := range perGroup {
			if st.cur[g] != base[g] && rt > worstRuntime {
				worst, worstRuntime = g, rt
			}
		}
		if worst == "" {
			return nil // everything already at base; nothing left to repair
		}
		st.cur = st.cur.Clone()
		st.cur[worst] = base[worst]
	}
	return nil
}

// scheduleSubpath performs lines 11–20 of Algorithm 1 for one detour branch:
// the sub-SLO starts as the runtime_sum window spanned on the critical path
// between the branch anchors; every already-scheduled function on the branch
// is popped and its (current) runtime subtracted; whatever functions remain
// are configured against the remaining window.
func (a *AARC) scheduleSubpath(st *state, critical []string, sp dag.Subpath) error {
	curWeights := st.curRes.NodeWeights()
	subSLO, err := dag.RuntimeSum(critical, sp.Start, sp.End, curWeights)
	if err != nil {
		return err
	}

	var pending []string
	for _, node := range sp.Nodes {
		if st.scheduled[st.ev.GroupOf(node)] {
			subSLO -= curWeights[node]
			continue
		}
		pending = append(pending, node)
	}
	if len(pending) == 0 {
		return nil
	}
	if subSLO <= 0 {
		// The window is already consumed by scheduled functions (possible
		// under measurement noise); keep the safe base/current configuration
		// for the remaining functions rather than risking the SLO.
		for _, node := range pending {
			st.scheduled[st.ev.GroupOf(node)] = true
		}
		return nil
	}
	return st.configurePath(pending, subSLO)
}

var _ search.Searcher = (*AARC)(nil)
