package core

import (
	"fmt"
	"math"

	"aarc/internal/resources"
	"aarc/internal/search"
)

// state is the mutable search state shared between the Graph-Centric
// Scheduler and the Priority Configurator: the currently accepted
// assignment, its last measurement, the sampling trace and the set of
// already-scheduled function groups.
type state struct {
	ev        Evaluator
	lim       resources.Limits
	opts      Options
	cur       resources.Assignment
	curRes    search.Result
	trace     *search.Trace
	scheduled map[string]bool
	e2eSLO    float64
}

// effSLO applies the safety margin to a latency bound.
func (st *state) effSLO(slo float64) float64 { return slo * (1 - st.opts.SLOMargin) }

// shrink applies op's deallocation to cfg: reduce one dimension by the
// current step, snap to the grid and clamp to the limits. Under CoupledOnly
// the CPU follows memory at the 1 vCPU / 1024 MB ratio and CPU ops are
// no-ops (the caller never enqueues them).
func (st *state) shrink(cfg resources.Config, o *op) resources.Config {
	next := cfg
	switch o.typ {
	case resources.CPU:
		next.CPU -= o.step
	case resources.Memory:
		next.MemMB -= o.step
		if st.opts.CoupledOnly {
			next.CPU = next.MemMB / resources.CoupledMemPerCPU
		}
	}
	return st.lim.Snap(next)
}

// backoff halves the op's step (exponential back-off, Algorithm 2 line 15)
// down to the grid granularity and consumes one trial. With NoBackoff the
// step stays fixed.
func (st *state) backoff(o *op) {
	o.trial--
	if st.opts.NoBackoff {
		return
	}
	floor := st.lim.CPUStep
	if o.typ == resources.Memory {
		floor = st.lim.MemStepMB
	}
	o.step /= 2
	if o.step < floor {
		o.step = floor
	}
}

// stepFloor reports whether the op is already at the minimal step size.
func (st *state) stepFloor(o *op) bool {
	floor := st.lim.CPUStep
	if o.typ == resources.Memory {
		floor = st.lim.MemStepMB
	}
	return o.step <= floor+1e-12
}

// configurePath is the paper's priority_configuration(L, SLO) (Algorithm 2).
// pathNodes are the not-yet-scheduled DAG nodes of the path L; pathSLO is
// the latency budget for that path (the end-to-end SLO for the critical
// path, the runtime_sum window for detour sub-paths). The function mutates
// st.cur in place and marks every touched group as scheduled.
func (st *state) configurePath(pathNodes []string, pathSLO float64) error {
	// Deduplicate configuration groups while preserving path order
	// (scatter siblings on the same path share one configuration).
	var groups []string
	seen := make(map[string]bool)
	for _, n := range pathNodes {
		g := st.ev.GroupOf(n)
		if !seen[g] && !st.scheduled[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return nil
	}
	for _, g := range groups {
		if _, ok := st.cur[g]; !ok {
			return fmt.Errorf("core: group %q missing from current assignment", g)
		}
	}

	// Algorithm 2 lines 2–10: one cpu op and one mem op per function,
	// initial priority ∞ so every op is probed at least once.
	pq := newOpQueue(st.opts.FIFO)
	for _, g := range groups {
		types := []resources.ResourceType{resources.CPU, resources.Memory}
		if st.opts.CoupledOnly {
			types = []resources.ResourceType{resources.Memory}
		}
		for _, typ := range types {
			step := st.opts.CPUStep0
			if typ == resources.Memory {
				step = st.opts.MemStep0
			}
			pq.push(&op{group: g, typ: typ, step: step, trial: st.opts.FuncTrial}, math.Inf(1))
		}
	}

	count := 0
	for pq.Len() > 0 && count < st.opts.MaxTrail {
		o := pq.pop()
		count++

		curCfg := st.cur[o.group]
		nextCfg := st.shrink(curCfg, o)
		if nextCfg == curCfg {
			// Already at the limit in this dimension at this step size; try
			// a finer step unless exhausted.
			if st.stepFloor(o) {
				continue // op dead: nothing left to deallocate
			}
			st.backoff(o)
			if o.trial > 0 {
				pq.push(o, 0)
			}
			continue
		}

		// deallocate(op): apply tentatively and measure.
		candidate := st.cur.Clone()
		candidate[o.group] = nextCfg
		res, err := st.ev.Evaluate(candidate)
		if err != nil {
			return err
		}

		pathRuntime := res.PathRuntimeMS(pathNodes)
		// Compare steady-state (warm) costs: re-configuring a function
		// forces one cold start, which must not read as a recurring cost
		// increase (Table I's deallocate measures the configuration's
		// steady cost).
		curGroupCost := st.curRes.GroupSteadyCost(o.group)
		newGroupCost := res.GroupSteadyCost(o.group)
		violated := res.OOM ||
			res.E2EMS > st.effSLO(st.e2eSLO) ||
			pathRuntime > st.effSLO(pathSLO) ||
			newGroupCost >= curGroupCost

		if violated {
			// Lines 14–18: revert, back off, re-enqueue at priority 0 while
			// trials remain.
			if err := st.trace.Record(candidate, res, false,
				fmt.Sprintf("revert %s/%s", o.group, o.typ)); err != nil {
				return err
			}
			st.backoff(o)
			if o.trial > 0 {
				pq.push(o, 0)
			}
			continue
		}

		// Lines 19–22: accept, re-enqueue keyed by the cost reduction.
		reduced := curGroupCost - newGroupCost
		st.cur = candidate
		st.curRes = res
		if err := st.trace.Record(candidate, res, true,
			fmt.Sprintf("accept %s/%s", o.group, o.typ)); err != nil {
			return err
		}
		pq.push(o, reduced)
	}

	for _, g := range groups {
		st.scheduled[g] = true
	}
	return nil
}
