package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/testutil"
	"aarc/internal/workloads"
)

func TestOpQueuePriorityOrder(t *testing.T) {
	q := newOpQueue(false)
	a := &op{group: "a", typ: resources.CPU}
	b := &op{group: "b", typ: resources.CPU}
	c := &op{group: "c", typ: resources.CPU}
	q.push(a, 1)
	q.push(b, 5)
	q.push(c, 3)
	if got := q.pop(); got != b {
		t.Errorf("first pop = %v, want b (highest priority)", got)
	}
	if got := q.pop(); got != c {
		t.Errorf("second pop = %v, want c", got)
	}
	if got := q.pop(); got != a {
		t.Errorf("third pop = %v, want a", got)
	}
	if q.pop() != nil {
		t.Error("empty queue should pop nil")
	}
}

func TestOpQueueInfinityFirstFIFOTies(t *testing.T) {
	q := newOpQueue(false)
	x := &op{group: "x"}
	y := &op{group: "y"}
	z := &op{group: "z"}
	q.push(x, math.Inf(1))
	q.push(y, math.Inf(1))
	q.push(z, 100)
	// Both infinities precede the finite priority; among equals FIFO.
	if q.pop() != x || q.pop() != y || q.pop() != z {
		t.Error("infinite priorities should pop first, in FIFO order")
	}
}

func TestOpQueueFIFOMode(t *testing.T) {
	q := newOpQueue(true)
	a := &op{group: "a"}
	b := &op{group: "b"}
	q.push(a, 1)
	q.push(b, 100)
	if q.pop() != a || q.pop() != b {
		t.Error("FIFO mode must ignore priorities")
	}
}

func TestOpQueueNaNSafe(t *testing.T) {
	q := newOpQueue(false)
	a := &op{group: "a"}
	b := &op{group: "b"}
	q.push(a, math.NaN())
	q.push(b, 1)
	if q.pop() != b {
		t.Error("NaN priority must sort last, not corrupt the heap")
	}
}

func TestOpString(t *testing.T) {
	o := &op{group: "g", typ: resources.Memory, step: 512, trial: 2, priority: 7}
	if s := o.String(); !strings.Contains(s, "g/mem") || !strings.Contains(s, "512") {
		t.Errorf("op.String = %q", s)
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	d := DefaultOptions()
	if o.MaxTrail != d.MaxTrail || o.FuncTrial != d.FuncTrial ||
		o.CPUStep0 != d.CPUStep0 || o.MemStep0 != d.MemStep0 {
		t.Errorf("normalize zero = %+v", o)
	}
	if got := (Options{SLOMargin: 0.9}).normalize().SLOMargin; got != 0.5 {
		t.Errorf("margin cap = %v, want 0.5", got)
	}
	if got := (Options{SLOMargin: -1}).normalize().SLOMargin; got != 0 {
		t.Errorf("negative margin = %v, want 0", got)
	}
}

func TestSearchRejectsPlainEvaluator(t *testing.T) {
	a := New(DefaultOptions())
	_, err := a.Search(context.Background(), plainEvaluator{}, search.Options{SLOMS: 1000})
	if err == nil || !strings.Contains(err.Error(), "DAG") {
		t.Errorf("plain evaluator should be rejected: %v", err)
	}
}

// plainEvaluator satisfies search.Evaluator but not core.Evaluator.
type plainEvaluator struct{}

func (plainEvaluator) Evaluate(resources.Assignment) (search.Result, error) {
	return search.Result{}, nil
}
func (plainEvaluator) Functions() []string        { return nil }
func (plainEvaluator) Limits() resources.Limits   { return resources.DefaultLimits() }
func (plainEvaluator) Base() resources.Assignment { return nil }

func TestSearchRejectsBadSLO(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, false, 1)
	if _, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: 0}); err == nil {
		t.Error("zero SLO should error")
	}
}

func TestSearchInfeasibleBase(t *testing.T) {
	// An SLO no configuration can meet: the base config itself violates it.
	spec := testutil.ChainSpec(1_000)
	runner := testutil.NewRunner(t, spec, false, 1)
	_, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err == nil || !strings.Contains(err.Error(), "base configuration") {
		t.Errorf("infeasible base should be reported: %v", err)
	}
}

func TestSearchChainBasics(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 7)
	outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	if err := search.ValidateAssignment(runner, outcome.Best); err != nil {
		t.Fatalf("returned assignment invalid: %v", err)
	}
	if outcome.Trace.Len() == 0 || outcome.Trace.Samples[0].Note != "init" {
		t.Error("trace should start with the init sample")
	}

	// The found config must be SLO-compliant and cheaper than base.
	res, err := runner.Evaluate(outcome.Best)
	if err != nil {
		t.Fatal(err)
	}
	if res.E2EMS > spec.SLOMS {
		t.Errorf("final config violates SLO: %.0f > %.0f", res.E2EMS, spec.SLOMS)
	}
	baseRes, _ := runner.Evaluate(runner.Base())
	if res.Cost >= baseRes.Cost {
		t.Errorf("final cost %.0f should beat base cost %.0f", res.Cost, baseRes.Cost)
	}
	// Every function should have been reconfigured below base.
	for g, cfg := range outcome.Best {
		base := spec.Base[g]
		if cfg.CPU > base.CPU && cfg.MemMB > base.MemMB {
			t.Errorf("group %s was never shrunk: %v vs base %v", g, cfg, base)
		}
	}
}

func TestSearchDiamondSchedulesDetour(t *testing.T) {
	spec := testutil.DiamondSpec(120_000)
	runner := testutil.NewRunner(t, spec, true, 11)
	outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	// The detour branch m2 must have been configured too (not left at base).
	base := spec.Base["m2"]
	got := outcome.Best["m2"]
	if got == base {
		t.Errorf("detour function m2 left at base config %v", got)
	}
	res, _ := runner.Evaluate(outcome.Best)
	if res.E2EMS > spec.SLOMS {
		t.Errorf("diamond SLO violated: %v", res.E2EMS)
	}
}

// Property over seeds: AARC never returns an SLO-violating configuration on
// the chain workload (the paper's Table II claim).
func TestSearchSLOComplianceAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		spec := testutil.ChainSpec(45_000)
		runner := testutil.NewRunner(t, spec, true, seed)
		outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Average several validation runs to smooth noise.
		var sum float64
		const n = 5
		for i := 0; i < n; i++ {
			res, err := runner.Evaluate(outcome.Best)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.E2EMS
		}
		if avg := sum / n; avg > spec.SLOMS {
			t.Errorf("seed %d: avg e2e %.0f violates SLO %.0f", seed, avg, spec.SLOMS)
		}
	}
}

func TestSearchRespectsMaxTrail(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 3)
	opts := DefaultOptions()
	opts.MaxTrail = 5
	opts.ValidationRuns = 0 // isolate the MaxTrail bound from validation samples
	outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	// init + at most MaxTrail per configurePath call; the chain has one
	// path (no detours), so the trace is bounded by 1 + MaxTrail.
	if outcome.Trace.Len() > 1+opts.MaxTrail {
		t.Errorf("trace %d exceeds MaxTrail bound %d", outcome.Trace.Len(), 1+opts.MaxTrail)
	}
}

func TestCoupledOnlyAblation(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 5)
	opts := DefaultOptions()
	opts.CoupledOnly = true
	outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	// Every accepted configuration change keeps CPU coupled to memory.
	for _, s := range outcome.Trace.Samples {
		if !s.Accepted || s.Note == "init" {
			continue
		}
		for g, cfg := range s.Assignment {
			if cfg == spec.Base[g] {
				continue // untouched groups keep the decoupled base
			}
			want := cfg.MemMB / resources.CoupledMemPerCPU
			if math.Abs(cfg.CPU-want) > spec.Limits.CPUStep/2+1e-9 {
				t.Fatalf("coupled-only violated for %s: %v (want cpu ~%.2f)", g, cfg, want)
			}
		}
	}
}

func TestNoSubpathsAblation(t *testing.T) {
	spec := testutil.DiamondSpec(120_000)
	runner := testutil.NewRunner(t, spec, true, 11)
	opts := DefaultOptions()
	opts.NoSubpaths = true
	outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	// The detour function keeps its base config.
	if outcome.Best["m2"] != spec.Base["m2"] {
		t.Errorf("NoSubpaths should leave m2 at base, got %v", outcome.Best["m2"])
	}
}

func TestFIFOAndNoBackoffVariantsComplete(t *testing.T) {
	for _, mutate := range []func(*Options){
		func(o *Options) { o.FIFO = true },
		func(o *Options) { o.NoBackoff = true },
	} {
		spec := testutil.ChainSpec(60_000)
		runner := testutil.NewRunner(t, spec, true, 13)
		opts := DefaultOptions()
		mutate(&opts)
		outcome, err := New(opts).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
		if err != nil {
			t.Fatal(err)
		}
		res, _ := runner.Evaluate(outcome.Best)
		if res.E2EMS > spec.SLOMS {
			t.Errorf("variant violates SLO: %v", res.E2EMS)
		}
	}
}

func TestTraceRuntimeTrendsUpCostTrendsDown(t *testing.T) {
	// The paper observes (Fig 6/7) that under AARC runtime trends up toward
	// the SLO while cost trends down. Verify the trend on accepted samples
	// of the chatbot workload: last accepted cost < first cost, last
	// accepted runtime > first runtime.
	spec := workloads.Chatbot()
	runner := testutil.NewRunner(t, spec, true, 42)
	outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	var accepted []search.Sample
	for _, s := range outcome.Trace.Samples {
		if s.Accepted {
			accepted = append(accepted, s)
		}
	}
	if len(accepted) < 3 {
		t.Fatalf("too few accepted samples: %d", len(accepted))
	}
	first, last := accepted[0], accepted[len(accepted)-1]
	if last.Cost >= first.Cost {
		t.Errorf("cost should trend down: first %.0f last %.0f", first.Cost, last.Cost)
	}
	if last.E2EMS <= first.E2EMS {
		t.Errorf("runtime should trend up: first %.0f last %.0f", first.E2EMS, last.E2EMS)
	}
}

func TestChatbotScatterSharesGroupConfig(t *testing.T) {
	spec := workloads.Chatbot()
	runner := testutil.NewRunner(t, spec, true, 42)
	outcome, err := New(DefaultOptions()).Search(context.Background(), runner, search.Options{SLOMS: spec.SLOMS})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one config per group: classify instances share one entry.
	if len(outcome.Best) != len(spec.FunctionGroups()) {
		t.Errorf("assignment has %d entries, want %d groups", len(outcome.Best), len(spec.FunctionGroups()))
	}
	if _, ok := outcome.Best["classify"]; !ok {
		t.Error("classify group missing")
	}
}

func TestName(t *testing.T) {
	if New(DefaultOptions()).Name() != "AARC" {
		t.Error("Name should be AARC")
	}
}

func TestValidateAndRepairRestoresHeaviestGroup(t *testing.T) {
	spec := testutil.ChainSpec(30_000)
	runner := testutil.NewRunner(t, spec, true, 17)

	// Hand-build a state whose current assignment grossly violates the SLO:
	// function b (the heaviest) squeezed to 0.1 vCPU runs ~100s.
	cur := runner.Base()
	cur["b"] = resources.Config{CPU: 0.1, MemMB: 512}
	st := &state{
		ev:        runner,
		lim:       runner.Limits(),
		opts:      DefaultOptions(),
		cur:       cur,
		trace:     &search.Trace{Method: "AARC"},
		scheduled: map[string]bool{},
		e2eSLO:    spec.SLOMS,
	}
	a := New(DefaultOptions())
	if err := a.validateAndRepair(st); err != nil {
		t.Fatal(err)
	}
	if st.cur["b"] != spec.Base["b"] {
		t.Errorf("repair should restore b to base, got %v", st.cur["b"])
	}
	res, err := runner.Evaluate(st.cur)
	if err != nil {
		t.Fatal(err)
	}
	if res.E2EMS > spec.SLOMS {
		t.Errorf("repaired config still violates: %.0f > %.0f", res.E2EMS, spec.SLOMS)
	}
	// Validation samples were recorded.
	found := false
	for _, s := range st.trace.Samples {
		if s.Note == "validate" {
			found = true
			break
		}
	}
	if !found {
		t.Error("trace should contain validate samples")
	}
}

func TestValidateAndRepairNoopWhenCompliant(t *testing.T) {
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, true, 18)
	st := &state{
		ev:        runner,
		lim:       runner.Limits(),
		opts:      DefaultOptions(),
		cur:       runner.Base(),
		trace:     &search.Trace{Method: "AARC"},
		scheduled: map[string]bool{},
		e2eSLO:    spec.SLOMS,
	}
	before := st.cur.Clone()
	if err := New(DefaultOptions()).validateAndRepair(st); err != nil {
		t.Fatal(err)
	}
	if !st.cur.Equal(before) {
		t.Error("compliant config should be left untouched")
	}
	if st.trace.Len() != DefaultOptions().ValidationRuns {
		t.Errorf("expected exactly %d validation samples, got %d",
			DefaultOptions().ValidationRuns, st.trace.Len())
	}
}
