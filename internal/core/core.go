package core

import (
	"aarc/internal/dag"
	"aarc/internal/search"
)

// Evaluator is what the Graph-Centric Scheduler needs from the platform: a
// plain sample evaluator plus the workflow's DAG topology and the node→group
// mapping. *workflow.Runner satisfies it.
type Evaluator interface {
	search.Evaluator
	// Graph returns the workflow DAG whose node runtimes weight the
	// critical-path extraction.
	Graph() *dag.Graph
	// GroupOf maps a DAG node to its configuration group.
	GroupOf(node string) string
}

// Options tunes the AARC scheduler and configurator. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	// MaxTrail is the iteration cap per priority_configuration call
	// (the paper's MAX_TRAIL, Algorithm 2 line 11).
	MaxTrail int
	// FuncTrial is the per-op trial budget (the paper's FUNC_TRIAL,
	// Algorithm 2 line 6): how many failed shrinks an op survives.
	FuncTrial int
	// CPUStep0 is the initial CPU deallocation step in vCPU.
	CPUStep0 float64
	// MemStep0 is the initial memory deallocation step in MB.
	MemStep0 float64
	// SLOMargin is the safety headroom fraction: a probe is accepted only
	// if measured latency stays below SLO·(1−SLOMargin), keeping the final
	// configuration SLO-compliant despite measurement noise.
	SLOMargin float64
	// ValidationRuns re-executes the final configuration this many times
	// after the search; if the mean latency exceeds the SLO (a lucky noisy
	// acceptance slipped through), the scheduler repairs the configuration
	// by restoring the base allocation of the heaviest reconfigured
	// function and re-validating. Zero disables the final validation.
	ValidationRuns int

	// Ablation switches (all false in the paper's configuration).

	// FIFO disables priority ordering: the op queue degenerates to FIFO.
	FIFO bool
	// NoBackoff disables the exponential step back-off: failed ops retry at
	// full step until their trials run out.
	NoBackoff bool
	// CoupledOnly restricts the search to coupled configurations (CPU
	// follows memory at 1 vCPU / 1024 MB), emulating memory-centric
	// platforms inside the AARC machinery.
	CoupledOnly bool
	// NoSubpaths skips detour sub-path scheduling: only the critical path
	// is configured; every other function keeps the base configuration.
	NoSubpaths bool
}

// DefaultOptions returns the configuration used throughout the paper's
// experiments.
func DefaultOptions() Options {
	return Options{
		MaxTrail:       60,
		FuncTrial:      3,
		CPUStep0:       1.0,
		MemStep0:       1024,
		SLOMargin:      0.05,
		ValidationRuns: 3,
	}
}

// normalize fills zero fields with defaults so partially-specified options
// remain usable.
func (o Options) normalize() Options {
	d := DefaultOptions()
	if o.MaxTrail <= 0 {
		o.MaxTrail = d.MaxTrail
	}
	if o.FuncTrial <= 0 {
		o.FuncTrial = d.FuncTrial
	}
	if o.CPUStep0 <= 0 {
		o.CPUStep0 = d.CPUStep0
	}
	if o.MemStep0 <= 0 {
		o.MemStep0 = d.MemStep0
	}
	if o.SLOMargin < 0 {
		o.SLOMargin = 0
	}
	if o.SLOMargin > 0.5 {
		o.SLOMargin = 0.5
	}
	return o
}
