package core

import (
	"math"
	"testing"

	"aarc/internal/resources"
	"aarc/internal/search"
	"aarc/internal/testutil"
)

func newState(t *testing.T, opts Options) *state {
	t.Helper()
	spec := testutil.ChainSpec(60_000)
	runner := testutil.NewRunner(t, spec, false, 1)
	return &state{
		ev:        runner,
		lim:       runner.Limits(),
		opts:      opts.normalize(),
		cur:       runner.Base(),
		trace:     &search.Trace{},
		scheduled: map[string]bool{},
		e2eSLO:    spec.SLOMS,
	}
}

func TestShrinkCPU(t *testing.T) {
	st := newState(t, DefaultOptions())
	cfg := resources.Config{CPU: 4, MemMB: 2048}
	o := &op{group: "b", typ: resources.CPU, step: 1}
	got := st.shrink(cfg, o)
	if math.Abs(got.CPU-3) > 1e-9 || got.MemMB != 2048 {
		t.Errorf("shrink cpu = %v", got)
	}
}

func TestShrinkMemory(t *testing.T) {
	st := newState(t, DefaultOptions())
	cfg := resources.Config{CPU: 4, MemMB: 2048}
	o := &op{group: "b", typ: resources.Memory, step: 1024}
	got := st.shrink(cfg, o)
	if got.MemMB != 1024 || got.CPU != 4 {
		t.Errorf("shrink mem = %v", got)
	}
}

func TestShrinkClampsToLimits(t *testing.T) {
	st := newState(t, DefaultOptions())
	cfg := resources.Config{CPU: 0.2, MemMB: 128}
	o := &op{group: "b", typ: resources.CPU, step: 1}
	got := st.shrink(cfg, o)
	if got.CPU != st.lim.MinCPU {
		t.Errorf("shrink below floor = %v, want clamped to %v", got.CPU, st.lim.MinCPU)
	}
	o = &op{group: "b", typ: resources.Memory, step: 1024}
	got = st.shrink(cfg, o)
	if got.MemMB != st.lim.MinMemMB {
		t.Errorf("mem below floor = %v", got.MemMB)
	}
}

func TestShrinkCoupled(t *testing.T) {
	opts := DefaultOptions()
	opts.CoupledOnly = true
	st := newState(t, opts)
	cfg := resources.Config{CPU: 4, MemMB: 4096}
	o := &op{group: "b", typ: resources.Memory, step: 1024}
	got := st.shrink(cfg, o)
	if got.MemMB != 3072 || math.Abs(got.CPU-3) > 1e-9 {
		t.Errorf("coupled shrink = %v, want 3 vCPU / 3072 MB", got)
	}
}

func TestBackoffHalvesToFloor(t *testing.T) {
	st := newState(t, DefaultOptions())
	o := &op{group: "b", typ: resources.Memory, step: 1024, trial: 3}
	st.backoff(o)
	if o.step != 512 || o.trial != 2 {
		t.Errorf("after backoff: step %v trial %d", o.step, o.trial)
	}
	// Halving floors at the grid granularity.
	o.step = 100
	st.backoff(o)
	if o.step != st.lim.MemStepMB {
		t.Errorf("step floor = %v, want %v", o.step, st.lim.MemStepMB)
	}
	if !st.stepFloor(o) {
		t.Error("stepFloor should report true at the floor")
	}
}

func TestBackoffNoBackoffMode(t *testing.T) {
	opts := DefaultOptions()
	opts.NoBackoff = true
	st := newState(t, opts)
	o := &op{group: "b", typ: resources.CPU, step: 1, trial: 3}
	st.backoff(o)
	if o.step != 1 {
		t.Errorf("NoBackoff must keep the step: %v", o.step)
	}
	if o.trial != 2 {
		t.Errorf("trials still decrease: %d", o.trial)
	}
}

func TestEffSLO(t *testing.T) {
	st := newState(t, DefaultOptions()) // margin 0.05
	if got := st.effSLO(1000); got != 950 {
		t.Errorf("effSLO = %v, want 950", got)
	}
}

func TestConfigurePathSkipsScheduledGroups(t *testing.T) {
	st := newState(t, DefaultOptions())
	st.scheduled["a"] = true
	st.scheduled["b"] = true
	st.scheduled["c"] = true
	before := st.cur.Clone()
	if err := st.configurePath([]string{"a", "b", "c"}, st.e2eSLO); err != nil {
		t.Fatal(err)
	}
	if !st.cur.Equal(before) {
		t.Error("fully-scheduled path should be a no-op")
	}
	if st.trace.Len() != 0 {
		t.Error("no samples should be recorded for a no-op path")
	}
}

func TestConfigurePathUnknownGroup(t *testing.T) {
	st := newState(t, DefaultOptions())
	delete(st.cur, "b")
	if err := st.configurePath([]string{"b"}, st.e2eSLO); err == nil {
		t.Error("missing group in assignment should error")
	}
}

func TestConfigurePathMarksScheduled(t *testing.T) {
	st := newState(t, DefaultOptions())
	res, err := st.ev.Evaluate(st.cur)
	if err != nil {
		t.Fatal(err)
	}
	st.curRes = res
	if err := st.configurePath([]string{"a", "b", "c"}, st.e2eSLO); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"a", "b", "c"} {
		if !st.scheduled[g] {
			t.Errorf("group %s not marked scheduled", g)
		}
	}
}
