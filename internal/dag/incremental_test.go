package dag

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
)

// layeredRandomDAG builds a connected layered-random DAG with n nodes: node i gets
// a guaranteed edge from a random earlier node plus up to deg extras.
func layeredRandomDAG(n, deg int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0xd1a))
	g := NewWithCapacity(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%05d", i))
	}
	ids := g.Nodes()
	for i := 1; i < n; i++ {
		g.MustAddEdge(ids[rng.IntN(i)], ids[i])
		for k := 0; k < deg; k++ {
			j := rng.IntN(i)
			_ = g.AddEdge(ids[j], ids[i]) // ignore duplicates
		}
	}
	return g
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.MustAddNode("a")
	g.MustAddNode("b")
	g.MustAddEdge("a", "b")
	if err := g.RemoveEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || len(g.Succ("a")) != 0 || len(g.Pred("b")) != 0 {
		t.Fatalf("edge not fully removed: %d edges", g.NumEdges())
	}
	if err := g.RemoveEdge("a", "b"); err == nil {
		t.Error("removing a missing edge should error")
	}
	if err := g.RemoveEdge("a", "zz"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("want ErrUnknownNode, got %v", err)
	}
}

func TestRemoveNode(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	g.MustAddEdge("b", "d")
	g.MustAddEdge("a", "d")
	if err := g.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	if g.HasNode("b") {
		t.Fatal("b still present")
	}
	if g.NumEdges() != 1 { // only a->d survives
		t.Fatalf("want 1 edge, got %d", g.NumEdges())
	}
	// Insertion order of the survivors is preserved, indices compacted.
	want := []string{"a", "c", "d"}
	got := g.Nodes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nodes after removal = %v", got)
		}
		if g.index[want[i]] != i {
			t.Errorf("index[%s] = %d, want %d", want[i], g.index[want[i]], i)
		}
	}
	if err := g.RemoveNode("zz"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("want ErrUnknownNode, got %v", err)
	}
}

func TestCloneEqualsOriginal(t *testing.T) {
	g := layeredRandomDAG(200, 3, 7)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone shape %d/%d vs %d/%d", c.NumNodes(), c.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i, id := range g.Nodes() {
		if c.Nodes()[i] != id {
			t.Fatal("clone node order differs")
		}
		cs, gs := c.Succ(id), g.Succ(id)
		if len(cs) != len(gs) {
			t.Fatalf("succ(%s) differs", id)
		}
		for j := range cs {
			if cs[j] != gs[j] {
				t.Fatalf("succ(%s) differs", id)
			}
		}
	}
	// Deep copy: mutating the clone leaves the original alone.
	c.MustAddNode("extra")
	c.MustAddEdge(g.Nodes()[0], "extra")
	if g.HasNode("extra") || g.NumEdges() == c.NumEdges() {
		t.Error("clone shares state with the original")
	}
}

func TestOrderEdgeAddedRepairsLocally(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	o, err := NewOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	// Edge that agrees with the order: no moves.
	g.MustAddEdge("c", "d")
	moves, err := o.EdgeAdded("c", "d")
	if err != nil || len(moves) != 0 {
		t.Fatalf("consistent edge: moves=%v err=%v", moves, err)
	}
	// Violating edge e -> a forces a local repair.
	g.MustAddEdge("e", "a")
	if _, err := o.EdgeAdded("e", "a"); err != nil {
		t.Fatal(err)
	}
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderCycleRejected(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	o, err := NewOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.EdgeAdded("c", "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	// The rejected insert must not have disturbed the order.
	if err := o.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Property test: random interleavings of edge inserts (some violating the
// current order, some cycle-closing) keep the maintained order valid and
// agree with full TopoSort reachability.
func TestOrderRandomInsertions(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0x0c0))
		n := 60
		g := New()
		for i := 0; i < n; i++ {
			g.MustAddNode(fmt.Sprintf("n%03d", i))
		}
		ids := g.Nodes()
		o, err := NewOrder(g)
		if err != nil {
			t.Fatal(err)
		}
		inserted := 0
		for k := 0; k < 400; k++ {
			u, v := ids[rng.IntN(n)], ids[rng.IntN(n)]
			if u == v || g.HasPath(u, v) {
				continue // duplicate or parallel path; skip
			}
			if g.HasPath(v, u) {
				if _, err := o.EdgeAdded(u, v); !errors.Is(err, ErrCycle) {
					t.Fatalf("seed %d: cycle-closing edge %s->%s not rejected: %v", seed, u, v, err)
				}
				continue
			}
			if _, err := o.EdgeAdded(u, v); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			g.MustAddEdge(u, v)
			inserted++
		}
		if inserted == 0 {
			t.Fatalf("seed %d: no edges inserted", seed)
		}
		if err := o.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := g.TopoSort(); err != nil {
			t.Fatalf("seed %d: graph became cyclic: %v", seed, err)
		}
	}
}

// Differential property: a Dynamic driven through random mutations matches
// CriticalPath/TopoSort full recomputes at every step.
func TestDynamicMatchesFullRecompute(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, 0xdff))
		g := layeredRandomDAG(80, 2, seed)
		weights := make(map[string]float64)
		for _, id := range g.Nodes() {
			weights[id] = float64(1 + rng.IntN(50))
		}
		full := g.Clone()
		fullW := make(map[string]float64, len(weights))
		for k, v := range weights {
			fullW[k] = v
		}
		d, err := NewDynamic(g, weights)
		if err != nil {
			t.Fatal(err)
		}
		next := 1000
		for step := 0; step < 300; step++ {
			ids := full.Nodes()
			switch rng.IntN(5) {
			case 0: // add node + edge from an existing node
				id := fmt.Sprintf("x%04d", next)
				next++
				w := float64(1 + rng.IntN(50))
				u := ids[rng.IntN(len(ids))]
				if err := d.AddNode(id, w); err != nil {
					t.Fatal(err)
				}
				if err := d.AddEdge(u, id); err != nil {
					t.Fatal(err)
				}
				full.MustAddNode(id)
				full.MustAddEdge(u, id)
				fullW[id] = w
			case 1: // remove a random non-essential node
				if len(ids) <= 2 {
					continue
				}
				id := ids[rng.IntN(len(ids))]
				if err := d.RemoveNode(id); err != nil {
					t.Fatal(err)
				}
				if err := full.RemoveNode(id); err != nil {
					t.Fatal(err)
				}
				delete(fullW, id)
			case 2: // add a random safe edge
				u, v := ids[rng.IntN(len(ids))], ids[rng.IntN(len(ids))]
				if u == v || full.HasPath(u, v) || full.HasPath(v, u) {
					continue
				}
				if err := d.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				full.MustAddEdge(u, v)
			case 3: // remove a random edge
				u := ids[rng.IntN(len(ids))]
				ss := full.Succ(u)
				if len(ss) == 0 {
					continue
				}
				v := ss[rng.IntN(len(ss))]
				if err := d.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
				if err := full.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			default: // reweight
				id := ids[rng.IntN(len(ids))]
				w := float64(1 + rng.IntN(50))
				if err := d.SetWeight(id, w); err != nil {
					t.Fatal(err)
				}
				fullW[id] = w
			}
			if full.NumNodes() == 0 {
				break
			}
			if err := d.VerifyOrder(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			wantPath, wantW, err := CriticalPath(full, fullW)
			if err != nil {
				t.Fatalf("seed %d step %d: full recompute: %v", seed, step, err)
			}
			gotPath, gotW, err := d.CriticalPath()
			if err != nil {
				t.Fatalf("seed %d step %d: incremental: %v", seed, step, err)
			}
			if gotW != wantW {
				t.Fatalf("seed %d step %d: weight %v != %v", seed, step, gotW, wantW)
			}
			if len(gotPath) != len(wantPath) {
				t.Fatalf("seed %d step %d: path %v != %v", seed, step, gotPath, wantPath)
			}
			for i := range gotPath {
				if gotPath[i] != wantPath[i] {
					t.Fatalf("seed %d step %d: path %v != %v", seed, step, gotPath, wantPath)
				}
			}
		}
	}
}

func TestDynamicRejectsCycleUnchanged(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	d, err := NewDynamic(g, map[string]float64{"a": 1, "b": 2, "c": 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("c", "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("rejected edge mutated the graph: %d edges", g.NumEdges())
	}
	if _, w, err := d.CriticalPath(); err != nil || w != 6 {
		t.Fatalf("critical path after rejected insert: w=%v err=%v", w, err)
	}
}
