package dag_test

import (
	"fmt"

	"aarc/internal/dag"
)

// ExampleCriticalPath builds the workflow of the paper's Fig. 4 (nodes A–F
// with the depicted runtimes) and extracts its critical path.
func ExampleCriticalPath() {
	g := dag.New()
	for _, id := range []string{"A", "B", "C", "D", "E", "F"} {
		g.MustAddNode(id)
	}
	// A -> B -> C -> F on top, A -> D -> E -> F below.
	g.MustAddEdge("A", "B")
	g.MustAddEdge("B", "C")
	g.MustAddEdge("C", "F")
	g.MustAddEdge("A", "D")
	g.MustAddEdge("D", "E")
	g.MustAddEdge("E", "F")

	weights := map[string]float64{
		"A": 32, "B": 20, "C": 25, "D": 76, "E": 63, "F": 38,
	}
	path, total, _ := dag.CriticalPath(g, weights)
	fmt.Println(path, total)

	subpaths, _ := dag.FindDetourSubpaths(g, path, weights)
	for _, sp := range subpaths {
		fmt.Println(sp)
	}
	// Output:
	// [A D E F] 209
	// A -> B -> C -> F
}

// ExampleRuntimeSum computes the sub-SLO window of Algorithm 1 line 12: the
// duration the critical path spends between a detour's anchors.
func ExampleRuntimeSum() {
	critical := []string{"A", "D", "E", "F"}
	weights := map[string]float64{"A": 32, "D": 76, "E": 63, "F": 38}
	window, _ := dag.RuntimeSum(critical, "A", "F", weights)
	fmt.Println(window)
	// Output:
	// 209
}
