package dag

import (
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

// chain builds a -> b -> c.
func chain(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("a", "b")
	g.MustAddEdge("b", "c")
	return g
}

// diamond builds s -> (m1|m2) -> t.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, id := range []string{"s", "m1", "m2", "t"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("s", "m1")
	g.MustAddEdge("s", "m2")
	g.MustAddEdge("m1", "t")
	g.MustAddEdge("m2", "t")
	return g
}

func TestAddNodeErrors(t *testing.T) {
	g := New()
	if err := g.AddNode(""); err == nil {
		t.Error("empty id should error")
	}
	if err := g.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.MustAddNode("a")
	g.MustAddNode("b")
	if err := g.AddEdge("x", "b"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown from err = %v", err)
	}
	if err := g.AddEdge("a", "x"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown to err = %v", err)
	}
	if err := g.AddEdge("a", "a"); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop err = %v", err)
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b"); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate edge err = %v", err)
	}
}

func TestAccessors(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Errorf("counts: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasNode("m1") || g.HasNode("zz") {
		t.Error("HasNode wrong")
	}
	if got := g.Succ("s"); len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
		t.Errorf("Succ(s) = %v", got)
	}
	if got := g.Pred("t"); len(got) != 2 {
		t.Errorf("Pred(t) = %v", got)
	}
	if src := g.Sources(); len(src) != 1 || src[0] != "s" {
		t.Errorf("Sources = %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != "t" {
		t.Errorf("Sinks = %v", snk)
	}
	// Returned slices are copies.
	g.Succ("s")[0] = "corrupted"
	if g.Succ("s")[0] != "m1" {
		t.Error("Succ leaked internal storage")
	}
}

func TestTopoSort(t *testing.T) {
	g := diamond(t)
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range topo {
		pos[id] = i
	}
	for _, e := range [][2]string{{"s", "m1"}, {"s", "m2"}, {"m1", "t"}, {"m2", "t"}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("topo violates edge %v: %v", e, topo)
		}
	}
	if _, err := New().TopoSort(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty graph err = %v", err)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := chain(t)
	g.MustAddEdge("c", "a")
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle err = %v", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate cycle err = %v", err)
	}
}

func TestValidate(t *testing.T) {
	if err := diamond(t).Validate(); err != nil {
		t.Fatal(err)
	}
	// Disconnected graph.
	g := chain(t)
	g.MustAddNode("island")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("disconnected err = %v", err)
	}
}

func TestHasPath(t *testing.T) {
	g := diamond(t)
	if !g.HasPath("s", "t") || !g.HasPath("s", "m1") || !g.HasPath("m2", "t") {
		t.Error("expected paths missing")
	}
	if g.HasPath("m1", "m2") || g.HasPath("t", "s") {
		t.Error("unexpected paths")
	}
	if !g.HasPath("s", "s") {
		t.Error("trivial self path should hold")
	}
	if g.HasPath("s", "nope") {
		t.Error("unknown node should have no path")
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddNode("extra")
	c.MustAddEdge("t", "extra")
	if g.HasNode("extra") || g.NumEdges() != 4 {
		t.Error("clone mutation leaked")
	}
}

func TestCriticalPathChain(t *testing.T) {
	g := chain(t)
	w := map[string]float64{"a": 1, "b": 2, "c": 3}
	path, total, err := CriticalPath(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 || len(path) != 3 || path[0] != "a" || path[2] != "c" {
		t.Errorf("chain critical path = %v (%v)", path, total)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond(t)
	w := map[string]float64{"s": 1, "m1": 10, "m2": 3, "t": 1}
	path, total, err := CriticalPath(g, w)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s", "m1", "t"}
	if total != 12 || !equalPath(path, want) {
		t.Errorf("diamond critical path = %v (%v), want %v (12)", path, total, want)
	}
	// Flip the weights: the other branch wins.
	w["m1"], w["m2"] = 3, 10
	path, _, _ = CriticalPath(g, w)
	if !equalPath(path, []string{"s", "m2", "t"}) {
		t.Errorf("flipped critical path = %v", path)
	}
}

func TestCriticalPathTieDeterminism(t *testing.T) {
	g := diamond(t)
	w := map[string]float64{"s": 1, "m1": 5, "m2": 5, "t": 1}
	p1, _, _ := CriticalPath(g, w)
	p2, _, _ := CriticalPath(g, w)
	if !equalPath(p1, p2) {
		t.Error("ties must resolve deterministically")
	}
	if !equalPath(p1, []string{"s", "m1", "t"}) {
		t.Errorf("tie should favour earlier insertion: %v", p1)
	}
}

func TestCriticalPathErrors(t *testing.T) {
	g := chain(t)
	if _, _, err := CriticalPath(g, map[string]float64{"zz": 1}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown weight err = %v", err)
	}
	if _, _, err := CriticalPath(g, map[string]float64{"a": -1}); err == nil {
		t.Error("negative weight should error")
	}
	// Missing weights default to zero and still work.
	path, total, err := CriticalPath(g, nil)
	if err != nil || total != 0 || len(path) == 0 {
		t.Errorf("nil weights: %v %v %v", path, total, err)
	}
}

func TestPathWeightRuntimeSum(t *testing.T) {
	w := map[string]float64{"a": 1, "b": 2, "c": 4}
	if got := PathWeight([]string{"a", "c"}, w); got != 5 {
		t.Errorf("PathWeight = %v", got)
	}
	got, err := RuntimeSum([]string{"a", "b", "c"}, "a", "c", w)
	if err != nil || got != 7 {
		t.Errorf("RuntimeSum full = %v (%v)", got, err)
	}
	got, err = RuntimeSum([]string{"a", "b", "c"}, "b", "b", w)
	if err != nil || got != 2 {
		t.Errorf("RuntimeSum single = %v (%v)", got, err)
	}
	if _, err := RuntimeSum([]string{"a", "b"}, "x", "b", w); err == nil {
		t.Error("missing start should error")
	}
	if _, err := RuntimeSum([]string{"a", "b"}, "a", "x", w); err == nil {
		t.Error("missing end should error")
	}
	if _, err := RuntimeSum([]string{"a", "b"}, "b", "a", w); err == nil {
		t.Error("reversed anchors should error")
	}
}

func TestFindDetourSubpathsDiamond(t *testing.T) {
	g := diamond(t)
	w := map[string]float64{"s": 1, "m1": 10, "m2": 3, "t": 1}
	critical := []string{"s", "m1", "t"}
	sps, err := FindDetourSubpaths(g, critical, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(sps) != 1 {
		t.Fatalf("subpaths = %v, want exactly the m2 detour", sps)
	}
	sp := sps[0]
	if sp.Start != "s" || sp.End != "t" || !equalPath(sp.Nodes, []string{"s", "m2", "t"}) {
		t.Errorf("subpath = %+v", sp)
	}
	if got := sp.Interior(); len(got) != 1 || got[0] != "m2" {
		t.Errorf("Interior = %v", got)
	}
	if !strings.Contains(sp.String(), "m2") {
		t.Errorf("String = %q", sp.String())
	}
}

func TestFindDetourSubpathsScatter(t *testing.T) {
	// start -> split -> {c1..c4} -> end, critical through c1.
	g := New()
	g.MustAddNode("start")
	g.MustAddNode("split")
	for _, id := range []string{"c1", "c2", "c3", "c4"} {
		g.MustAddNode(id)
	}
	g.MustAddNode("end")
	g.MustAddEdge("start", "split")
	for _, id := range []string{"c1", "c2", "c3", "c4"} {
		g.MustAddEdge("split", id)
		g.MustAddEdge(id, "end")
	}
	w := map[string]float64{"start": 1, "split": 2, "c1": 10, "c2": 9, "c3": 8, "c4": 7, "end": 1}
	critical, _, err := CriticalPath(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPath(critical, []string{"start", "split", "c1", "end"}) {
		t.Fatalf("critical = %v", critical)
	}
	sps, err := FindDetourSubpaths(g, critical, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(sps) != 3 {
		t.Fatalf("want 3 detours, got %v", sps)
	}
	// Ordered by descending interior weight: c2, c3, c4.
	if sps[0].Nodes[1] != "c2" || sps[1].Nodes[1] != "c3" || sps[2].Nodes[1] != "c4" {
		t.Errorf("detour order: %v", sps)
	}
	for _, sp := range sps {
		if sp.Start != "split" || sp.End != "end" {
			t.Errorf("anchors: %+v", sp)
		}
	}
}

func TestFindDetourSubpathsMultiHop(t *testing.T) {
	// s -> a -> t critical; s -> x -> y -> t detour with two interior hops.
	g := New()
	for _, id := range []string{"s", "a", "x", "y", "t"} {
		g.MustAddNode(id)
	}
	g.MustAddEdge("s", "a")
	g.MustAddEdge("a", "t")
	g.MustAddEdge("s", "x")
	g.MustAddEdge("x", "y")
	g.MustAddEdge("y", "t")
	w := map[string]float64{"s": 1, "a": 20, "x": 2, "y": 3, "t": 1}
	critical := []string{"s", "a", "t"}
	sps, err := FindDetourSubpaths(g, critical, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(sps) != 1 || !equalPath(sps[0].Nodes, []string{"s", "x", "y", "t"}) {
		t.Errorf("multi-hop detour = %v", sps)
	}
}

func TestFindDetourSubpathsErrors(t *testing.T) {
	g := diamond(t)
	if _, err := FindDetourSubpaths(g, []string{"nope"}, nil); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown critical err = %v", err)
	}
	if _, err := FindDetourSubpaths(g, []string{"s", "s"}, nil); err == nil {
		t.Error("repeated critical node should error")
	}
}

func TestOffPathNodes(t *testing.T) {
	g := diamond(t)
	off := OffPathNodes(g, []string{"s", "m1", "t"})
	if len(off) != 1 || off[0] != "m2" {
		t.Errorf("OffPathNodes = %v", off)
	}
}

func TestDOT(t *testing.T) {
	g := diamond(t)
	out := DOT(g, map[string]float64{"s": 1000}, []string{"s", "m1", "t"})
	for _, want := range []string{"digraph", `"s" ->`, "1000ms", "style=bold", "penwidth=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q in:\n%s", want, out)
		}
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(rng *rand.Rand) (*Graph, map[string]float64) {
	g := New()
	w := map[string]float64{}
	layers := 2 + rng.IntN(4)
	var prev []string
	id := 0
	for l := 0; l < layers; l++ {
		width := 1 + rng.IntN(3)
		var cur []string
		for i := 0; i < width; i++ {
			name := string(rune('a'+l)) + string(rune('0'+i))
			_ = id
			g.MustAddNode(name)
			w[name] = float64(rng.IntN(100))
			cur = append(cur, name)
		}
		for _, c := range cur {
			if len(prev) > 0 {
				// connect to at least one predecessor to stay connected
				g.MustAddEdge(prev[rng.IntN(len(prev))], c)
				for _, p := range prev {
					if rng.Float64() < 0.3 {
						_ = g.AddEdge(p, c) // ignore duplicate errors
					}
				}
			}
		}
		prev = cur
	}
	return g, w
}

// Property: the critical path's weight is >= the weight of any random
// source-to-sink walk, and equals the DP total.
func TestQuickCriticalPathDominates(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 200; trial++ {
		g, w := randomDAG(rng)
		path, total, err := CriticalPath(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if got := PathWeight(path, w); got != total {
			t.Fatalf("total %v != path weight %v", total, got)
		}
		// Random greedy walks never beat the critical path.
		for k := 0; k < 20; k++ {
			cur := g.Sources()[rng.IntN(len(g.Sources()))]
			walk := []string{cur}
			for {
				succ := g.Succ(cur)
				if len(succ) == 0 {
					break
				}
				cur = succ[rng.IntN(len(succ))]
				walk = append(walk, cur)
			}
			if PathWeight(walk, w) > total {
				t.Fatalf("walk %v (%v) beats critical %v (%v)", walk, PathWeight(walk, w), path, total)
			}
		}
		// Edges of the critical path must exist.
		for i := 1; i < len(path); i++ {
			found := false
			for _, s := range g.Succ(path[i-1]) {
				if s == path[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("critical path uses non-edge %s->%s", path[i-1], path[i])
			}
		}
	}
}

// Property: every detour subpath starts and ends on the critical path, with
// all interior nodes off it, and its node sequence follows real edges.
func TestQuickSubpathInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for trial := 0; trial < 200; trial++ {
		g, w := randomDAG(rng)
		critical, _, err := CriticalPath(g, w)
		if err != nil {
			t.Fatal(err)
		}
		onCP := map[string]bool{}
		for _, id := range critical {
			onCP[id] = true
		}
		sps, err := FindDetourSubpaths(g, critical, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range sps {
			if !onCP[sp.Start] || !onCP[sp.End] {
				t.Fatalf("anchors off critical path: %+v", sp)
			}
			for _, n := range sp.Interior() {
				if onCP[n] {
					t.Fatalf("interior node %q on critical path: %+v", n, sp)
				}
			}
			for i := 1; i < len(sp.Nodes); i++ {
				found := false
				for _, s := range g.Succ(sp.Nodes[i-1]) {
					if s == sp.Nodes[i] {
						found = true
					}
				}
				if !found {
					t.Fatalf("subpath uses non-edge %s->%s", sp.Nodes[i-1], sp.Nodes[i])
				}
			}
		}
	}
}

// Property (quick harness): topological order respects all edges.
func TestQuickTopoRespectsEdges(t *testing.T) {
	f := func(seed1, seed2 uint64) bool {
		rng := rand.New(rand.NewPCG(seed1, seed2))
		g, _ := randomDAG(rng)
		topo, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range topo {
			pos[id] = i
		}
		for _, u := range g.Nodes() {
			for _, v := range g.Succ(u) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func equalPath(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
