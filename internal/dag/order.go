package dag

import (
	"fmt"
	"sort"
)

// Move records one node changing position during an incremental order
// repair. Consumers that mirror the order in dense arrays (the workflow
// plan) apply the moves to relocate their rows.
type Move struct {
	ID       string
	From, To int
}

// Order maintains a topological order of a Graph under mutation using
// Pearce–Kelly local repair: inserting an edge that already agrees with the
// order costs nothing, and a violating insert reorders only the nodes
// between the two endpoints (the affected region) instead of re-running a
// full topological sort.
//
// Positions are stable: nodes keep their slot until an edge insert forces a
// local reorder, and removals leave a reusable hole rather than shifting
// everyone behind them. That stability is what lets a compiled execution
// plan key its dense arrays by position.
//
// The Order observes a Graph it does not own. Callers must report every
// mutation (NodeAdded / NodeRemoved / EdgeAdded / EdgeRemoved); EdgeAdded
// may be called before or after the edge is inserted into the Graph — the
// repair only reads edges that already exist.
type Order struct {
	g   *Graph
	ord []string       // position -> node ID; "" marks a hole
	pos map[string]int // node ID -> position
	fre []int          // hole positions available for reuse (LIFO)
}

// NewOrder builds an order for g from a fresh topological sort.
func NewOrder(g *Graph) (*Order, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	return NewOrderSeeded(g, topo), nil
}

// NewOrderSeeded builds an order from a known-valid topological order of g
// (for callers that already paid for TopoSort). The slice is copied.
func NewOrderSeeded(g *Graph, topo []string) *Order {
	o := &Order{
		g:   g,
		ord: append(make([]string, 0, len(topo)), topo...),
		pos: make(map[string]int, len(topo)),
	}
	for i, id := range topo {
		o.pos[id] = i
	}
	return o
}

// Len returns the number of live nodes in the order.
func (o *Order) Len() int { return len(o.pos) }

// Cap returns the number of position slots, holes included.
func (o *Order) Cap() int { return len(o.ord) }

// Pos returns the position of id and whether it is present.
func (o *Order) Pos(id string) (int, bool) {
	p, ok := o.pos[id]
	return p, ok
}

// At returns the node at position i, or "" for a hole.
func (o *Order) At(i int) string { return o.ord[i] }

// Slice returns the live nodes in topological order (a fresh copy).
func (o *Order) Slice() []string {
	out := make([]string, 0, len(o.pos))
	for _, id := range o.ord {
		if id != "" {
			out = append(out, id)
		}
	}
	return out
}

// NodeAdded assigns a position to a newly inserted node and returns it. A
// node with no edges is consistent at any position, so holes are reused
// before the order grows.
func (o *Order) NodeAdded(id string) int {
	var p int
	if n := len(o.fre); n > 0 {
		p = o.fre[n-1]
		o.fre = o.fre[:n-1]
	} else {
		p = len(o.ord)
		o.ord = append(o.ord, "")
	}
	o.ord[p] = id
	o.pos[id] = p
	return p
}

// NodeRemoved vacates a node's position, leaving a reusable hole, and
// returns the vacated position (-1 if the node was unknown). Removing a
// node never invalidates the order of the remaining nodes.
func (o *Order) NodeRemoved(id string) int {
	p, ok := o.pos[id]
	if !ok {
		return -1
	}
	o.ord[p] = ""
	delete(o.pos, id)
	o.fre = append(o.fre, p)
	return p
}

// EdgeRemoved is a no-op: deleting an edge cannot invalidate a valid
// topological order. It exists so mutation call sites stay symmetric.
func (o *Order) EdgeRemoved(from, to string) {}

// EdgeAdded repairs the order for a new edge from → to and returns the
// position moves it performed (nil when the order already agrees). It
// returns ErrCycle — without touching the order — when the edge would close
// a directed cycle.
//
// This is the Pearce–Kelly algorithm: with lb = pos(to) and ub = pos(from),
// the affected region is the position window [lb, ub]. A forward DFS from
// `to` (bounded by ub) collects deltaF, the in-window descendants; hitting
// `from` proves a cycle. A backward DFS from `from` (bounded by lb)
// collects deltaB, the in-window ancestors. Reassigning the union's
// positions — deltaB first, then deltaF, each in their existing relative
// order — restores a valid order while every node outside the two deltas
// keeps its slot.
func (o *Order) EdgeAdded(from, to string) ([]Move, error) {
	ub, ok := o.pos[from]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	lb, ok := o.pos[to]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if from == to {
		return nil, fmt.Errorf("%w: %q", ErrSelfLoop, from)
	}
	if lb > ub {
		return nil, nil // already consistent
	}

	// Forward DFS from `to`, restricted to positions <= ub.
	deltaF := []string{to}
	inF := map[string]bool{to: true}
	stack := []string{to}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range o.g.succ[n] {
			if s == from {
				return nil, fmt.Errorf("%w: inserting %q -> %q", ErrCycle, from, to)
			}
			if p, ok := o.pos[s]; ok && p <= ub && !inF[s] {
				inF[s] = true
				deltaF = append(deltaF, s)
				stack = append(stack, s)
			}
		}
	}

	// Backward DFS from `from`, restricted to positions >= lb.
	deltaB := []string{from}
	inB := map[string]bool{from: true}
	stack = append(stack[:0], from)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range o.g.pred[n] {
			if pp, ok := o.pos[p]; ok && pp >= lb && !inB[p] {
				inB[p] = true
				deltaB = append(deltaB, p)
				stack = append(stack, p)
			}
		}
	}

	// Sort each delta by current position, pool the vacated slots, and
	// reassign: ancestors first, descendants after.
	sort.Slice(deltaB, func(i, j int) bool { return o.pos[deltaB[i]] < o.pos[deltaB[j]] })
	sort.Slice(deltaF, func(i, j int) bool { return o.pos[deltaF[i]] < o.pos[deltaF[j]] })
	slots := make([]int, 0, len(deltaB)+len(deltaF))
	for _, id := range deltaB {
		slots = append(slots, o.pos[id])
	}
	for _, id := range deltaF {
		slots = append(slots, o.pos[id])
	}
	sort.Ints(slots)

	seq := append(deltaB, deltaF...)
	var moves []Move
	for i, id := range seq {
		if oldP, newP := o.pos[id], slots[i]; oldP != newP {
			o.pos[id] = newP
			moves = append(moves, Move{ID: id, From: oldP, To: newP})
		}
	}
	// The permutation stays inside the pooled slots: rewrite exactly those.
	for i, id := range seq {
		o.ord[slots[i]] = id
	}
	return moves, nil
}

// Verify checks that the order is a valid topological order of the observed
// graph: every live graph node holds exactly one position and every edge
// points forward. It is O(V + E) and intended for tests and differential
// harnesses.
func (o *Order) Verify() error {
	if len(o.pos) != len(o.g.order) {
		return fmt.Errorf("dag: order tracks %d nodes, graph has %d", len(o.pos), len(o.g.order))
	}
	for i, id := range o.ord {
		if id == "" {
			continue
		}
		if p, ok := o.pos[id]; !ok || p != i {
			return fmt.Errorf("dag: order slot %d holds %q but pos says %d", i, id, p)
		}
		if _, ok := o.g.index[id]; !ok {
			return fmt.Errorf("dag: order holds %q which is not in the graph", id)
		}
	}
	for _, id := range o.g.order {
		p, ok := o.pos[id]
		if !ok {
			return fmt.Errorf("dag: graph node %q missing from order", id)
		}
		for _, s := range o.g.succ[id] {
			sp, ok := o.pos[s]
			if !ok {
				return fmt.Errorf("dag: successor %q of %q missing from order", s, id)
			}
			if sp <= p {
				return fmt.Errorf("dag: order violated: %q (pos %d) -> %q (pos %d)", id, p, s, sp)
			}
		}
	}
	return nil
}
