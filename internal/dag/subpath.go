package dag

import (
	"fmt"
	"sort"
)

// Subpath is a detour branch that leaves the critical path at Start and
// rejoins it at End. Nodes contains the full sequence including both
// anchors, matching the pseudocode of Algorithm 1, where already-scheduled
// nodes (at minimum the two anchors) are popped and their runtime subtracted
// from the sub-SLO window.
type Subpath struct {
	Start string
	End   string
	Nodes []string
}

// Interior returns the off-critical nodes of the subpath (everything except
// the two anchors).
func (s Subpath) Interior() []string {
	if len(s.Nodes) <= 2 {
		return nil
	}
	return append([]string(nil), s.Nodes[1:len(s.Nodes)-1]...)
}

// String renders the subpath as "A -> x -> y -> B".
func (s Subpath) String() string {
	out := ""
	for i, id := range s.Nodes {
		if i > 0 {
			out += " -> "
		}
		out += id
	}
	return out
}

// FindDetourSubpaths enumerates the paper's find_detour_subpath(G, L): all
// simple paths that depart from a critical-path node, traverse only
// off-critical interior nodes, and rejoin the critical path downstream.
//
// The result is ordered for the scheduler: descending interior weight (the
// heaviest, most SLO-threatening branch first), then by the anchors'
// position on the critical path. Overlapping branches that share interior
// nodes each appear; Algorithm 1's scheduled flags make the overlap safe
// (a function is only ever configured once).
func FindDetourSubpaths(g *Graph, critical []string, weights map[string]float64) ([]Subpath, error) {
	onCP := make(map[string]bool, len(critical))
	cpIndex := make(map[string]int, len(critical))
	for i, id := range critical {
		if !g.HasNode(id) {
			return nil, fmt.Errorf("%w: critical node %q", ErrUnknownNode, id)
		}
		if onCP[id] {
			return nil, fmt.Errorf("dag: critical path repeats node %q", id)
		}
		onCP[id] = true
		cpIndex[id] = i
	}

	var out []Subpath
	var walk func(anchor string, node string, trail []string)
	walk = func(anchor, node string, trail []string) {
		for _, next := range g.succ[node] {
			if onCP[next] {
				// Rejoined the critical path: emit anchor..trail..next.
				// Only forward rejoins are valid in a DAG workflow; a rejoin
				// at or before the anchor would contradict acyclicity given
				// the anchor precedes the detour, but guard anyway. A direct
				// edge to the anchor's immediate critical successor is the
				// critical path itself, not a detour; direct edges that skip
				// ahead ("bypass" edges) are real detours with an empty
				// interior.
				directCPEdge := len(trail) == 0 && cpIndex[next] == cpIndex[anchor]+1
				if cpIndex[next] > cpIndex[anchor] && !directCPEdge {
					nodes := make([]string, 0, len(trail)+2)
					nodes = append(nodes, anchor)
					nodes = append(nodes, trail...)
					nodes = append(nodes, next)
					out = append(out, Subpath{Start: anchor, End: next, Nodes: nodes})
				}
				continue
			}
			// Stay off-critical; simple-path check against the trail.
			seen := false
			for _, t := range trail {
				if t == next {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			walk(anchor, next, append(trail, next))
		}
	}
	for _, anchor := range critical {
		walk(anchor, anchor, nil)
	}

	sort.SliceStable(out, func(i, j int) bool {
		wi := PathWeight(out[i].Interior(), weights)
		wj := PathWeight(out[j].Interior(), weights)
		if wi != wj {
			return wi > wj
		}
		if cpIndex[out[i].Start] != cpIndex[out[j].Start] {
			return cpIndex[out[i].Start] < cpIndex[out[j].Start]
		}
		return cpIndex[out[i].End] < cpIndex[out[j].End]
	})
	return out, nil
}

// OffPathNodes returns the nodes of g that are not on the given path, in
// insertion order. Useful for asserting full scheduling coverage.
func OffPathNodes(g *Graph, path []string) []string {
	on := make(map[string]bool, len(path))
	for _, id := range path {
		on[id] = true
	}
	var out []string
	for _, id := range g.Nodes() {
		if !on[id] {
			out = append(out, id)
		}
	}
	return out
}
