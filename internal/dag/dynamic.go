package dag

import (
	"container/heap"
	"errors"
	"fmt"
)

// Dynamic couples a Graph with an incrementally maintained topological
// order (Pearce–Kelly, see Order) and an incrementally maintained
// critical-path labelling. Under topology churn — node insert/delete, edge
// insert/delete, weight updates — it keeps both consistent by recomputing
// only the affected cone (the mutated nodes and their descendants whose
// longest-path distance actually changed) instead of re-running TopoSort
// and CriticalPath from scratch.
//
// The per-node recomputation applies exactly the same recurrence and
// tie-breaking as CriticalPath, so the distances, predecessor choices, and
// extracted path are identical — not merely equivalent — to a full
// recompute on the same graph. The differential harness in
// internal/testutil asserts this across thousands of seeded mutations.
//
// Dynamic takes ownership of the Graph passed to NewDynamic: all further
// mutations must go through Dynamic's methods. It is not safe for
// concurrent use.
type Dynamic struct {
	g   *Graph
	ord *Order

	w     map[string]float64 // node weight (missing entries were 0 at build)
	dist  map[string]float64 // longest source→node path weight, inclusive
	bpred map[string]string  // argmax predecessor (ties: lowest insertion index)
	sinks map[string]bool    // nodes with no successors

	dirty   map[string]bool // nodes whose dist/bpred must be recomputed
	scratch posHeap
}

// posHeap orders pending recomputations by topological position so each
// node is finalized after all of its predecessors.
type posItem struct {
	pos int
	id  string
}
type posHeap []posItem

func (h posHeap) Len() int            { return len(h) }
func (h posHeap) Less(i, j int) bool  { return h[i].pos < h[j].pos }
func (h posHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *posHeap) Push(x interface{}) { *h = append(*h, x.(posItem)) }
func (h *posHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewDynamic builds the incremental structure over g with the given node
// weights (missing entries count as zero, as in CriticalPath). The graph
// must be a non-empty DAG. Dynamic takes ownership of both g and weights.
func NewDynamic(g *Graph, weights map[string]float64) (*Dynamic, error) {
	ord, err := NewOrder(g)
	if err != nil {
		return nil, err
	}
	if weights == nil {
		weights = make(map[string]float64)
	}
	for id, w := range weights {
		if !g.HasNode(id) {
			return nil, fmt.Errorf("%w: weight for %q", ErrUnknownNode, id)
		}
		if w < 0 {
			return nil, fmt.Errorf("dag: negative weight %v for %q", w, id)
		}
	}
	d := &Dynamic{
		g:     g,
		ord:   ord,
		w:     weights,
		dist:  make(map[string]float64, g.NumNodes()),
		bpred: make(map[string]string, g.NumNodes()),
		sinks: make(map[string]bool),
		dirty: make(map[string]bool),
	}
	for _, id := range ord.Slice() {
		d.recompute(id)
		if len(g.succ[id]) == 0 {
			d.sinks[id] = true
		}
	}
	return d, nil
}

// Graph returns the underlying graph. Callers must treat it as read-only;
// mutations that bypass Dynamic's methods desynchronize the incremental
// state.
func (d *Dynamic) Graph() *Graph { return d.g }

// Order returns the maintained topological order of the live nodes.
func (d *Dynamic) Order() []string { return d.ord.Slice() }

// VerifyOrder checks the maintained order against the graph (O(V+E)).
func (d *Dynamic) VerifyOrder() error { return d.ord.Verify() }

// recompute re-derives dist and bpred for one node from its predecessors,
// mirroring CriticalPath's loop (first predecessor wins outright; later
// ones need a strictly larger distance or an equal distance with a lower
// insertion index). It returns whether dist changed.
func (d *Dynamic) recompute(id string) bool {
	best := 0.0
	bestPred := ""
	for _, p := range d.g.pred[id] {
		if bestPred == "" || d.dist[p] > best ||
			(d.dist[p] == best && d.g.index[p] < d.g.index[bestPred]) {
			best = d.dist[p]
			bestPred = p
		}
	}
	nd := best + d.w[id]
	changed := d.dist[id] != nd
	d.dist[id] = nd
	if bestPred != "" {
		d.bpred[id] = bestPred
	} else {
		delete(d.bpred, id)
	}
	return changed
}

// flush drains the dirty set in topological-position order, recomputing
// each affected node and propagating to successors only when a distance
// actually changed — the "affected cone" of the mutations since the last
// query.
func (d *Dynamic) flush() {
	if len(d.dirty) == 0 {
		return
	}
	h := &d.scratch
	*h = (*h)[:0]
	inHeap := make(map[string]bool, len(d.dirty))
	for id := range d.dirty {
		if p, ok := d.ord.Pos(id); ok {
			heap.Push(h, posItem{pos: p, id: id})
			inHeap[id] = true
		}
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(posItem)
		delete(inHeap, it.id)
		if d.recompute(it.id) {
			for _, s := range d.g.succ[it.id] {
				if !inHeap[s] {
					if p, ok := d.ord.Pos(s); ok {
						heap.Push(h, posItem{pos: p, id: s})
						inHeap[s] = true
					}
				}
			}
		}
	}
	clear(d.dirty)
}

// AddNode inserts a weighted node (no edges yet).
func (d *Dynamic) AddNode(id string, weight float64) error {
	if weight < 0 {
		return fmt.Errorf("dag: negative weight %v for %q", weight, id)
	}
	if err := d.g.AddNode(id); err != nil {
		return err
	}
	d.ord.NodeAdded(id)
	d.w[id] = weight
	d.dist[id] = weight
	d.sinks[id] = true
	return nil
}

// RemoveNode deletes a node and its incident edges, marking the former
// successors for recomputation.
func (d *Dynamic) RemoveNode(id string) error {
	if !d.g.HasNode(id) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	succs := append([]string(nil), d.g.succ[id]...)
	preds := append([]string(nil), d.g.pred[id]...)
	if err := d.g.RemoveNode(id); err != nil {
		return err
	}
	d.ord.NodeRemoved(id)
	delete(d.w, id)
	delete(d.dist, id)
	delete(d.bpred, id)
	delete(d.sinks, id)
	delete(d.dirty, id)
	for _, s := range succs {
		d.dirty[s] = true
	}
	for _, p := range preds {
		if len(d.g.succ[p]) == 0 {
			d.sinks[p] = true
		}
	}
	return nil
}

// AddEdge inserts an edge, repairing the order locally. A cycle-closing
// edge is rejected with ErrCycle and nothing is mutated.
func (d *Dynamic) AddEdge(from, to string) error {
	if !d.g.HasNode(from) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if !d.g.HasNode(to) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if from == to {
		return fmt.Errorf("%w: %q", ErrSelfLoop, from)
	}
	for _, s := range d.g.succ[from] {
		if s == to {
			return fmt.Errorf("%w: %q -> %q", ErrDuplicateEdge, from, to)
		}
	}
	if _, err := d.ord.EdgeAdded(from, to); err != nil {
		return err
	}
	if err := d.g.AddEdge(from, to); err != nil {
		return err
	}
	delete(d.sinks, from)
	d.dirty[to] = true
	return nil
}

// RemoveEdge deletes an edge and marks the target for recomputation.
func (d *Dynamic) RemoveEdge(from, to string) error {
	if err := d.g.RemoveEdge(from, to); err != nil {
		return err
	}
	d.ord.EdgeRemoved(from, to)
	if len(d.g.succ[from]) == 0 {
		d.sinks[from] = true
	}
	d.dirty[to] = true
	return nil
}

// SetWeight updates a node weight.
func (d *Dynamic) SetWeight(id string, weight float64) error {
	if !d.g.HasNode(id) {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if weight < 0 {
		return fmt.Errorf("dag: negative weight %v for %q", weight, id)
	}
	d.w[id] = weight
	d.dirty[id] = true
	return nil
}

// CriticalPath returns the maximum-weight source→sink path and its weight,
// flushing any pending recomputation first. The result is identical to
// CriticalPath(g, weights) on the current graph.
func (d *Dynamic) CriticalPath() ([]string, float64, error) {
	if d.g.NumNodes() == 0 {
		return nil, 0, ErrEmpty
	}
	d.flush()

	// Best sink: maximum distance, ties to the earliest-inserted node —
	// the same winner the full recompute's insertion-order scan picks.
	end := ""
	bestDist := -1.0
	for id := range d.sinks {
		dd := d.dist[id]
		if dd > bestDist || (dd == bestDist && (end == "" || d.g.index[id] < d.g.index[end])) {
			bestDist = dd
			end = id
		}
	}
	if end == "" {
		return nil, 0, errors.New("dag: no sink found")
	}

	var rev []string
	for id := end; ; {
		rev = append(rev, id)
		p, ok := d.bpred[id]
		if !ok {
			break
		}
		id = p
	}
	path := make([]string, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path, bestDist, nil
}
