package dag

import (
	"errors"
	"fmt"
)

// CriticalPath returns the maximum-weight source→sink path of the graph
// under the given node weights (the paper's find_critical_path). Weights are
// per-node (function runtimes); missing entries count as zero. The second
// return value is the path's total weight. Ties resolve deterministically in
// favour of earlier-inserted nodes.
func CriticalPath(g *Graph, weights map[string]float64) ([]string, float64, error) {
	topo, err := g.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	for id, w := range weights {
		if !g.HasNode(id) {
			return nil, 0, fmt.Errorf("%w: weight for %q", ErrUnknownNode, id)
		}
		if w < 0 {
			return nil, 0, fmt.Errorf("dag: negative weight %v for %q", w, id)
		}
	}

	dist := make(map[string]float64, len(topo))
	prev := make(map[string]string, len(topo))
	for _, id := range topo {
		best := 0.0
		bestPred := ""
		for _, p := range g.pred[id] {
			if bestPred == "" || dist[p] > best ||
				(dist[p] == best && g.index[p] < g.index[bestPred]) {
				best = dist[p]
				bestPred = p
			}
		}
		dist[id] = best + weights[id]
		if bestPred != "" {
			prev[id] = bestPred
		}
	}

	// Pick the best sink.
	var end string
	bestDist := -1.0
	for _, id := range g.Sinks() {
		if dist[id] > bestDist {
			bestDist = dist[id]
			end = id
		}
	}
	if end == "" {
		return nil, 0, errors.New("dag: no sink found")
	}

	var rev []string
	for id := end; ; {
		rev = append(rev, id)
		p, ok := prev[id]
		if !ok {
			break
		}
		id = p
	}
	path := make([]string, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path, bestDist, nil
}

// PathWeight sums the node weights along path.
func PathWeight(path []string, weights map[string]float64) float64 {
	s := 0.0
	for _, id := range path {
		s += weights[id]
	}
	return s
}

// RuntimeSum is the paper's runtime_sum(path, start, end): the total weight
// of the nodes of path from start to end inclusive. It errors if either
// anchor is missing from the path or appears in the wrong order.
func RuntimeSum(path []string, start, end string, weights map[string]float64) (float64, error) {
	si, ei := -1, -1
	for i, id := range path {
		if id == start && si == -1 {
			si = i
		}
		if id == end {
			ei = i
		}
	}
	if si == -1 {
		return 0, fmt.Errorf("dag: runtime_sum start %q not on path", start)
	}
	if ei == -1 {
		return 0, fmt.Errorf("dag: runtime_sum end %q not on path", end)
	}
	if ei < si {
		return 0, fmt.Errorf("dag: runtime_sum end %q precedes start %q", end, start)
	}
	s := 0.0
	for _, id := range path[si : ei+1] {
		s += weights[id]
	}
	return s, nil
}
