package dag

import (
	"testing"
)

// bench10k builds the shared 10k-node, ~40k-edge layered-random benchmark
// graph once per process.
var bench10k = func() *Graph { return layeredRandomDAG(10_000, 3, 42) }()

func BenchmarkTopoSort10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench10k.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bench10k.Clone()
	}
}

func BenchmarkCriticalPathFull10k(b *testing.B) {
	weights := make(map[string]float64, bench10k.NumNodes())
	for i, id := range bench10k.Nodes() {
		weights[id] = float64(1 + i%97)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CriticalPath(bench10k, weights); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOrderEdgeInsert10k measures one incremental edge insert+remove
// cycle (Pearce–Kelly repair) against the 10k-node graph, the operation a
// full TopoSort would otherwise pay for on every spec edit.
func BenchmarkOrderEdgeInsert10k(b *testing.B) {
	g := bench10k.Clone()
	o, err := NewOrder(g)
	if err != nil {
		b.Fatal(err)
	}
	ids := g.Nodes()
	u, v := ids[len(ids)/2], ids[len(ids)/2+7]
	if g.HasPath(u, v) || g.HasPath(v, u) {
		// Walk forward until an unrelated pair is found.
		for off := 8; off < 100; off++ {
			v = ids[len(ids)/2+off]
			if !g.HasPath(u, v) && !g.HasPath(v, u) {
				break
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.EdgeAdded(u, v); err != nil {
			b.Fatal(err)
		}
		g.MustAddEdge(u, v)
		if err := g.RemoveEdge(u, v); err != nil {
			b.Fatal(err)
		}
		o.EdgeRemoved(u, v)
	}
}

// BenchmarkDynamicCriticalPath10k measures an incremental reweight +
// critical-path query against the full recompute above.
func BenchmarkDynamicCriticalPath10k(b *testing.B) {
	g := bench10k.Clone()
	weights := make(map[string]float64, g.NumNodes())
	for i, id := range g.Nodes() {
		weights[id] = float64(1 + i%97)
	}
	d, err := NewDynamic(g, weights)
	if err != nil {
		b.Fatal(err)
	}
	ids := d.Graph().Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := ids[i%len(ids)]
		if err := d.SetWeight(id, float64(1+i%89)); err != nil {
			b.Fatal(err)
		}
		if _, _, err := d.CriticalPath(); err != nil {
			b.Fatal(err)
		}
	}
}
