package dag

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. Node weights, when
// provided, are appended to labels as runtimes in milliseconds; nodes on the
// highlight path are drawn bold.
func DOT(g *Graph, weights map[string]float64, highlight []string) string {
	hl := make(map[string]bool, len(highlight))
	for _, id := range highlight {
		hl[id] = true
	}
	var b strings.Builder
	b.WriteString("digraph workflow {\n  rankdir=LR;\n  node [shape=box];\n")
	for _, id := range g.Nodes() {
		label := id
		if w, ok := weights[id]; ok {
			label = fmt.Sprintf("%s\\n%.0fms", id, w)
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if hl[id] {
			attrs += ", style=bold, color=red"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", id, attrs)
	}
	for _, id := range g.Nodes() {
		for _, s := range g.Succ(id) {
			style := ""
			if hl[id] && hl[s] {
				style = " [color=red, penwidth=2]"
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", id, s, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
