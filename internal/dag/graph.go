// Package dag implements the weighted directed-acyclic-graph substrate the
// Graph-Centric Scheduler operates on: construction and validation of
// workflow DAGs, topological ordering, critical-path extraction on
// node-weighted graphs, detour sub-path enumeration, and the runtime-sum
// window computation of Algorithm 1.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Common construction and query errors.
var (
	ErrDuplicateNode = errors.New("dag: duplicate node")
	ErrUnknownNode   = errors.New("dag: unknown node")
	ErrSelfLoop      = errors.New("dag: self loop")
	ErrDuplicateEdge = errors.New("dag: duplicate edge")
	ErrCycle         = errors.New("dag: graph contains a cycle")
	ErrEmpty         = errors.New("dag: graph is empty")
)

// Graph is a mutable DAG with string node IDs. Node weights are supplied
// externally (as measured runtimes) when querying, so the same topology can
// be re-weighted between profiling rounds without rebuilding.
type Graph struct {
	order []string // node insertion order, for deterministic iteration
	index map[string]int
	succ  map[string][]string
	pred  map[string][]string
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return NewWithCapacity(0)
}

// NewWithCapacity returns an empty graph with internal maps and slices
// pre-sized for n nodes, avoiding incremental rehashing when the final size
// is known up front (10k-node synthetic workloads).
func NewWithCapacity(n int) *Graph {
	return &Graph{
		order: make([]string, 0, n),
		index: make(map[string]int, n),
		succ:  make(map[string][]string, n),
		pred:  make(map[string][]string, n),
	}
}

// AddNode inserts a node. Adding an existing ID returns ErrDuplicateNode.
func (g *Graph) AddNode(id string) error {
	if id == "" {
		return errors.New("dag: empty node id")
	}
	if _, ok := g.index[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	g.index[id] = len(g.order)
	g.order = append(g.order, id)
	return nil
}

// MustAddNode is AddNode that panics on error; intended for static workflow
// definitions whose shape is fixed at compile time.
func (g *Graph) MustAddNode(id string) {
	if err := g.AddNode(id); err != nil {
		panic(err)
	}
}

// AddEdge inserts a directed edge from → to. Both endpoints must exist.
func (g *Graph) AddEdge(from, to string) error {
	if _, ok := g.index[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if _, ok := g.index[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	if from == to {
		return fmt.Errorf("%w: %q", ErrSelfLoop, from)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("%w: %q -> %q", ErrDuplicateEdge, from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from, to string) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.index[id]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.order) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns the node IDs in insertion order (a copy).
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.order...)
}

// Succ returns the successors of id in insertion order (a copy).
func (g *Graph) Succ(id string) []string {
	return append([]string(nil), g.succ[id]...)
}

// Pred returns the predecessors of id in insertion order (a copy).
func (g *Graph) Pred(id string) []string {
	return append([]string(nil), g.pred[id]...)
}

// Sources returns nodes with no predecessors, in insertion order.
func (g *Graph) Sources() []string {
	var out []string
	for _, id := range g.order {
		if len(g.pred[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Sinks returns nodes with no successors, in insertion order.
func (g *Graph) Sinks() []string {
	var out []string
	for _, id := range g.order {
		if len(g.succ[id]) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Clone returns a deep copy of the graph. The copy is built directly from
// the internal representation — pre-sized maps, no duplicate-edge scans — so
// cloning a 10k-node graph costs one pass over nodes and edges instead of
// the quadratic-in-degree AddEdge path.
func (g *Graph) Clone() *Graph {
	out := NewWithCapacity(len(g.order))
	out.order = append(out.order, g.order...)
	for id, i := range g.index {
		out.index[id] = i
	}
	for _, id := range g.order {
		if s := g.succ[id]; len(s) > 0 {
			out.succ[id] = append(make([]string, 0, len(s)), s...)
		}
		if p := g.pred[id]; len(p) > 0 {
			out.pred[id] = append(make([]string, 0, len(p)), p...)
		}
	}
	out.edges = g.edges
	return out
}

// removeString splices the first occurrence of v out of s, preserving order.
func removeString(s []string, v string) []string {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// RemoveEdge deletes the directed edge from → to. It returns ErrUnknownNode
// if either endpoint does not exist and an error if the edge is absent.
func (g *Graph) RemoveEdge(from, to string) error {
	if _, ok := g.index[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, from)
	}
	if _, ok := g.index[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, to)
	}
	found := false
	for _, s := range g.succ[from] {
		if s == to {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("dag: no edge %q -> %q", from, to)
	}
	g.succ[from] = removeString(g.succ[from], to)
	g.pred[to] = removeString(g.pred[to], from)
	g.edges--
	return nil
}

// RemoveNode deletes a node and every edge incident to it. Insertion order
// (and therefore the deterministic tie-breaking index) of the remaining
// nodes is preserved; the operation is O(n + deg).
func (g *Graph) RemoveNode(id string) error {
	pos, ok := g.index[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	for _, s := range g.succ[id] {
		g.pred[s] = removeString(g.pred[s], id)
		g.edges--
	}
	for _, p := range g.pred[id] {
		g.succ[p] = removeString(g.succ[p], id)
		g.edges--
	}
	delete(g.succ, id)
	delete(g.pred, id)
	delete(g.index, id)
	g.order = append(g.order[:pos], g.order[pos+1:]...)
	for i := pos; i < len(g.order); i++ {
		g.index[g.order[i]] = i
	}
	return nil
}

// OutDegree returns the number of successors of id (0 for unknown nodes).
func (g *Graph) OutDegree(id string) int { return len(g.succ[id]) }

// InDegree returns the number of predecessors of id (0 for unknown nodes).
func (g *Graph) InDegree(id string) int { return len(g.pred[id]) }

// TopoSort returns a topological order of the nodes (Kahn's algorithm with
// insertion-order tie-breaking, so the result is deterministic). It returns
// ErrCycle if the graph is cyclic and ErrEmpty if it has no nodes.
//
// The traversal runs entirely on insertion indices — one indegree slice and
// one sorted ready slice of ints — so no per-node map operations or string
// hashing happen on this path (hot for every Runner construction).
func (g *Graph) TopoSort() ([]string, error) {
	n := len(g.order)
	if n == 0 {
		return nil, ErrEmpty
	}
	indeg := make([]int, n)
	for i, id := range g.order {
		indeg[i] = len(g.pred[id])
	}
	// ready is kept sorted by insertion index for determinism.
	ready := make([]int, 0, n)
	for i := range g.order {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]string, 0, n)
	for len(ready) > 0 {
		i := ready[0]
		ready = ready[1:]
		id := g.order[i]
		out = append(out, id)
		for _, s := range g.succ[id] {
			si := g.index[s]
			indeg[si]--
			if indeg[si] == 0 {
				ready = insertByIndex(ready, si)
			}
		}
	}
	if len(out) != n {
		return nil, ErrCycle
	}
	return out, nil
}

func insertByIndex(ready []int, i int) []int {
	pos := sort.Search(len(ready), func(j int) bool { return ready[j] > i })
	ready = append(ready, 0)
	copy(ready[pos+1:], ready[pos:])
	ready[pos] = i
	return ready
}

// Validate checks that the graph is non-empty, acyclic, and that every node
// is reachable in the undirected sense from the first source (i.e. the
// workflow is one connected component).
func (g *Graph) Validate() error {
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	if len(g.Sources()) == 0 {
		return errors.New("dag: no source node")
	}
	if len(g.Sinks()) == 0 {
		return errors.New("dag: no sink node")
	}
	// Undirected connectivity check.
	seen := make(map[string]bool, len(g.order))
	stack := []string{g.order[0]}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		stack = append(stack, g.succ[id]...)
		stack = append(stack, g.pred[id]...)
	}
	if len(seen) != len(g.order) {
		return errors.New("dag: graph is disconnected")
	}
	return nil
}

// HasPath reports whether a directed path exists from src to dst.
func (g *Graph) HasPath(src, dst string) bool {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return false
	}
	if src == dst {
		return true
	}
	seen := map[string]bool{src: true}
	stack := []string{src}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succ[id] {
			if s == dst {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}
