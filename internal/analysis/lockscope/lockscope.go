// Package lockscope checks the serving layer's lock-hygiene invariant:
// no searching, store I/O, event publishing, or workflow evaluation
// while a mutex is held. The two deadlock classes this encodes were
// found the hard way — a batch run attaching to a singleflight while
// the coalescer's mutex was held (PR 5), and an event hook publishing
// into a bounded bus from under a service lock (PR 7); both only
// surfaced under load. The one sanctioned exception is a mutex that
// *owns* the callee — the runner-pool shards, where the shard mutex is
// exactly what makes a non-thread-safe Runner usable — and such sites
// carry an //aarc:locked <reason> marker.
//
// The analysis is a conservative per-function walk: it tracks
// mu.Lock()/RLock() ... mu.Unlock()/RUnlock() pairs (including the
// defer-unlock idiom) through straight-line code and into branches, and
// flags target calls made anywhere a lock is statically held. Bodies
// of `go` statements run on their own goroutine and are walked with an
// empty lock set.
package lockscope

import (
	"go/ast"
	"go/types"

	"aarc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "flag search/store/publish/evaluate calls made while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				walkStmts(pass, fd.Body.List, map[string]bool{})
			}
		}
	}
	return nil
}

// lockCall classifies a call as Lock/RLock (+1), Unlock/RUnlock (-1)
// on a sync mutex, returning the printed receiver expression as the
// lock's identity.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (key string, dir int) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil || fn.Signature().Recv() == nil {
		return "", 0
	}
	if pkg := fn.Pkg(); pkg == nil || pkg.Path() != "sync" {
		return "", 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	key = types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, +1
	case "Unlock", "RUnlock":
		return key, -1
	}
	return "", 0
}

// walkStmts interprets a statement list, threading the set of held
// locks. Branch bodies get copies: a lock released on one path is
// conservatively still considered held on the other.
func walkStmts(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		walkStmt(pass, s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func walkStmt(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, dir := lockCall(pass, call); dir != 0 {
				if dir > 0 {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		checkExpr(pass, s.X, held)
	case *ast.DeferStmt:
		if key, dir := lockCall(pass, s.Call); dir != 0 {
			if dir < 0 {
				// defer mu.Unlock(): held for the rest of the
				// function; nothing to update.
				return
			}
			held[key] = true
			return
		}
		checkExpr(pass, s.Call, held)
	case *ast.GoStmt:
		// New goroutine: does not inherit the caller's locks. The
		// spawn expression's arguments are evaluated here, though.
		for _, arg := range s.Call.Args {
			checkExpr(pass, arg, held)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			walkStmts(pass, lit.Body.List, map[string]bool{})
		}
	case *ast.BlockStmt:
		walkStmts(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		checkExpr(pass, s.Cond, held)
		walkStmts(pass, s.Body.List, copyHeld(held))
		if s.Else != nil {
			walkStmt(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			checkExpr(pass, s.Cond, held)
		}
		walkStmts(pass, s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		checkExpr(pass, s.X, held)
		walkStmts(pass, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			checkExpr(pass, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			checkExpr(pass, rhs, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			checkExpr(pass, r, held)
		}
	default:
		// DeclStmt, SendStmt, IncDec, Branch...: scan for calls.
		checkNode(pass, stmt, held)
	}
}

// checkExpr flags target calls in an expression evaluated while held
// locks exist. Function literals are walked with the same lock set:
// a literal built under a lock is overwhelmingly invoked under it
// (sort.Slice callbacks, inline wrappers).
func checkExpr(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	checkNode(pass, e, held)
}

func checkNode(pass *analysis.Pass, n ast.Node, held map[string]bool) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, dir := lockCall(pass, call); dir != 0 {
			_ = key // nested lock ops inside expressions are rare; ignore.
			return true
		}
		checkTarget(pass, call, held)
		return true
	})
}

// checkTarget reports a diagnostic if call is one of the forbidden
// operations and no //aarc:locked waiver covers it.
func checkTarget(pass *analysis.Pass, call *ast.CallExpr, held map[string]bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil || fn.Signature().Recv() == nil {
		return
	}
	recvPkg := ""
	if p := fn.Pkg(); p != nil {
		recvPkg = p.Name()
	}
	var what string
	switch fn.Name() {
	case "Search":
		what = "a search"
	case "Publish":
		if recvPkg != "event" {
			return
		}
		what = "an event publish"
	case "Get", "Put", "Delete", "Keys", "Warm":
		if recvPkg != "store" {
			return
		}
		what = "store I/O"
	case "Evaluate", "MeanEvaluate":
		if recvPkg != "workflow" {
			return
		}
		what = "a workflow evaluation"
	default:
		return
	}
	if m, ok := pass.Markers().At(pass.Fset, call.Pos(), "locked"); ok {
		if m.Arg == "" {
			pass.Reportf(call.Pos(), "//aarc:locked marker needs a reason")
		}
		return
	}
	pass.Reportf(call.Pos(), "%s while holding mutex %s can deadlock or serialize the serving path; move it outside the critical section or mark //aarc:locked <reason>", what, heldNames(held))
}

func heldNames(held map[string]bool) string {
	// Deterministic, and there is almost always exactly one.
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	if len(held) > 1 {
		return best + " (and others)"
	}
	return best
}
