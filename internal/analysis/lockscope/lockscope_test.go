package lockscope_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	analysistest.Run(t, "../testdata", lockscope.Analyzer, "lockscope/svc")
}
