// Package unitchecker makes a multichecker binary usable with
//
//	go vet -vettool=$(which aarcvet) ./...
//
// It speaks cmd/go's vet tool protocol using only the standard
// library (the x/tools implementation is unavailable offline):
//
//   - `tool -flags` prints the supported flags as a JSON array; cmd/go
//     queries this once to validate the flags it forwards.
//   - `tool -V=full` prints "<exe> version devel buildID=<hash>"; cmd/go
//     folds the line into its action cache key, so rebuilding the tool
//     invalidates cached vet results.
//   - `tool [flags] <file>.cfg` analyzes one package. The cfg file is
//     JSON describing the package: its Go files, and an ImportMap plus
//     PackageFile table pointing every import at the compiler's export
//     data in the build cache. Type-checking imports through that table
//     (go/importer's gc lookup mode) is what lets the tool run without
//     re-type-checking the world — the same trick x/tools/go/analysis/
//     unitchecker uses.
//
// Diagnostics print to stderr as file:line:col: message and the tool
// exits 2, which cmd/go reports per package.
//
// # Facts
//
// Analyzers with Facts set export one JSON summary per package; the
// vetx files cmd/go threads between vet actions carry them. A vetx
// file is JSON of the form
//
//	{"<analyzer>": {"<pkgpath>": <fact>, ...}, ...}
//
// and each package's vetx merges its direct dependencies' facts with
// its own, so reading the direct imports' vetx files (the PackageVetx
// table) yields the transitive closure — the same scheme x/tools
// uses with gob. VetxOnly passes over in-module dependencies do a
// full parse+typecheck and run just the fact analyzers with
// diagnostics discarded; VetxOnly passes over the standard library
// only forward merged dependency facts, since no project analyzer
// mines facts from the stdlib.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"aarc/internal/analysis"
)

// Config mirrors the JSON cmd/go writes for each vetted package. Field
// names are fixed by the protocol.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vettool entry point for the given analyzers.
// It handles the -flags/-V=full handshakes, per-analyzer enable flags,
// and one <file>.cfg argument.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := flag.Bool("json", false, "emit JSON output")
	flag.Var(versionFlag{}, "V", "print version and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, false, a.Doc)
	}
	flag.Parse()

	if *printFlags {
		// cmd/go parses this to learn which flags it may forward.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		flag.VisitAll(func(f *flag.Flag) {
			b, ok := f.Value.(interface{ IsBoolFlag() bool })
			out = append(out, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
		})
		data, err := json.Marshal(out)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		return
	}

	// Standard vet semantics: naming any analyzer flag runs only the
	// named ones; naming none runs all.
	var explicit bool
	flag.Visit(func(f *flag.Flag) {
		if _, ok := enabled[f.Name]; ok {
			explicit = true
		}
	})
	run := analyzers
	if explicit {
		run = nil
		for _, a := range analyzers {
			if *enabled[a.Name] {
				run = append(run, a)
			}
		}
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking %s directly is unsupported; use "go vet -vettool=$(which %s)" or "go run ./cmd/aarcvet -- [-fix] ./..."`, progname, progname)
	}
	os.Exit(Run(args[0], run, *jsonOut, os.Stdout, os.Stderr))
}

// factMap is the decoded form of a vetx file: analyzer name →
// package path → that analyzer's summary of that package.
type factMap = map[string]map[string]json.RawMessage

// readDepFacts merges the vetx files of the package's direct imports.
// Empty and legacy (zero-byte) files contribute nothing.
func readDepFacts(cfg *Config) factMap {
	merged := factMap{}
	for _, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		var fm factMap
		if json.Unmarshal(data, &fm) != nil {
			continue
		}
		for analyzer, perPkg := range fm {
			dst := merged[analyzer]
			if dst == nil {
				dst = map[string]json.RawMessage{}
				merged[analyzer] = dst
			}
			for path, fact := range perPkg {
				dst[path] = fact
			}
		}
	}
	return merged
}

func writeVetx(cfg *Config, facts factMap) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// parseFiles parses the package's Go files with comments (markers and
// facts both need them).
func parseFiles(fset *token.FileSet, cfg *Config) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// runFacts runs the fact analyzers over an already-typechecked package
// with diagnostics discarded, merging each one's exported summary into
// facts under the package's import path.
func runFacts(factAnalyzers []*analysis.Analyzer, facts factMap, cfg *Config,
	fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) {
	for _, a := range factAnalyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			Dir:        cfg.Dir,
			ModuleRoot: findModuleRoot(cfg.Dir),
			Report:     func(analysis.Diagnostic) {},
			Facts:      facts[a.Name],
		}
		name := a.Name
		pass.ExportFact = func(v any) {
			raw, err := json.Marshal(v)
			if err != nil {
				return
			}
			if facts[name] == nil {
				facts[name] = map[string]json.RawMessage{}
			}
			facts[name][cfg.ImportPath] = raw
		}
		_ = a.Run(pass) // fact passes are best-effort; the real run reports errors
	}
}

// Run vets the package described by cfgFile and returns the process
// exit code: 0 clean, 1 operational error, 2 diagnostics found.
func Run(cfgFile string, analyzers []*analysis.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	var factAnalyzers []*analysis.Analyzer
	for _, a := range analyzers {
		if a.Facts {
			factAnalyzers = append(factAnalyzers, a)
		}
	}
	facts := readDepFacts(cfg)

	// Facts-only pass over a dependency: compute in-module facts (the
	// stdlib yields none), forward the merged map, skip diagnostics.
	if cfg.VetxOnly {
		if len(factAnalyzers) > 0 && inModule(cfg) {
			fset := token.NewFileSet()
			if files, err := parseFiles(fset, cfg); err == nil {
				if pkg, info, err := typecheck(fset, cfg, files); err == nil {
					runFacts(factAnalyzers, facts, cfg, fset, files, pkg, info)
				}
			}
		}
		if err := writeVetx(cfg, facts); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 1
	}

	pkg, info, err := typecheck(fset, cfg, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "%s: type-checking %s: %v\n", filepath.Base(os.Args[0]), cfg.ImportPath, err)
		return 1
	}

	type finding struct {
		analyzer string
		diag     analysis.Diagnostic
	}
	var findings []finding
	exit := 0
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			Dir:        cfg.Dir,
			ModuleRoot: findModuleRoot(cfg.Dir),
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			findings = append(findings, finding{name, d})
		}
		if a.Facts {
			pass.Facts = facts[a.Name]
			pass.ExportFact = func(v any) {
				raw, err := json.Marshal(v)
				if err != nil {
					return
				}
				if facts[name] == nil {
					facts[name] = map[string]json.RawMessage{}
				}
				facts[name][cfg.ImportPath] = raw
			}
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(stderr, "%s: %s: %v\n", cfg.ImportPath, a.Name, err)
			exit = 1
		}
	}

	// Driver-level marker hygiene: an //aarc: comment of unknown kind
	// is a finding — a typoed waiver must fail loudly, not silently
	// waive nothing.
	for _, m := range analysis.IndexMarkers(fset, files).Unknown() {
		findings = append(findings, finding{"markers", analysis.Diagnostic{
			Pos:     m.Pos,
			Message: fmt.Sprintf("unknown marker //aarc:%s (known kinds: detached, sorted, locked, errpath, canonical, lockorder, nilok, leaky, coldalloc, hotpath)", m.Name),
		}})
	}

	if err := writeVetx(cfg, facts); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	sort.SliceStable(findings, func(i, j int) bool {
		return findings[i].diag.Pos < findings[j].diag.Pos
	})
	if jsonOut {
		// {"pkg": {"analyzer": [{"posn": ..., "message": ...}]}}
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, f := range findings {
			byAnalyzer[f.analyzer] = append(byAnalyzer[f.analyzer],
				jsonDiag{fset.Position(f.diag.Pos).String(), f.diag.Message})
		}
		tree := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
		data, _ := json.MarshalIndent(tree, "", "\t")
		fmt.Fprintf(stdout, "%s\n", data)
		return exit
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		line := fmt.Sprintf("%s: %s", fset.Position(f.diag.Pos), f.diag.Message)
		if seen[line] {
			continue
		}
		seen[line] = true
		fmt.Fprintln(stderr, line)
		exit = 2
	}
	return exit
}

func readConfig(name string) (*Config, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", name, err)
	}
	return cfg, nil
}

// typecheck loads the package from cfg, resolving imports through the
// export-data files cmd/go listed in PackageFile.
func typecheck(fset *token.FileSet, cfg *Config, files []*ast.File) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: langVersion(cfg.GoVersion),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// langVersion trims a toolchain version like "go1.24.0" to the
// language version form go/types accepts ("go1.24").
func langVersion(v string) string {
	if !strings.HasPrefix(v, "go") {
		return ""
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// inModule reports whether the package described by cfg belongs to
// the module being vetted, i.e. its import path sits under the module
// path declared by the go.mod above its source directory. Standard
// library packages resolve to GOROOT/src's `module std`, whose import
// paths do not carry the module prefix, so they are excluded — which
// is exactly what the facts pass wants: computing lock-order or
// allocation facts for all of net/http's dependency cone would
// multiply vet time by orders of magnitude for findings we could not
// act on anyway. (cfg.Standard cannot answer this: it lists the
// package's standard *imports*, not whether the package itself is
// standard.)
func inModule(cfg *Config) bool {
	root := findModuleRoot(cfg.Dir)
	if root == "" {
		return false
	}
	path := modulePath(filepath.Join(root, "go.mod"))
	if path == "" || path == "std" || path == "cmd" {
		return false
	}
	return cfg.ImportPath == path || strings.HasPrefix(cfg.ImportPath, path+"/")
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) string {
	data, err := os.ReadFile(file)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

func findModuleRoot(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// versionFlag implements -V=full: the printed line must start with the
// executable path (cmd/go compares it against the -vettool argument)
// and, being a "devel" version, end in a buildID field derived from
// the binary so rebuilds bust cmd/go's vet result cache.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%x\n", exe, h[:12])
	os.Exit(0)
	return nil
}
