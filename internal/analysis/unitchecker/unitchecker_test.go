package unitchecker_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolProtocol is the end-to-end check of the whole stack: build
// the real aarcvet binary, point `go vet -vettool` at a throwaway
// module seeded with a detcanon violation, and require the diagnostic
// to surface through cmd/go with a non-zero exit. This is the same
// path scripts/lint.sh and CI use.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to cmd/go")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}

	moduleRoot, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}

	tmp := t.TempDir()
	vettool := filepath.Join(tmp, "aarcvet")
	build := exec.Command(goTool, "build", "-o", vettool, "aarc/cmd/aarcvet")
	build.Dir = moduleRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building aarcvet: %v\n%s", err, out)
	}

	// A one-package module whose Fingerprint stamps wall-clock time —
	// the seeded violation detcanon exists to catch.
	mod := filepath.Join(tmp, "mod")
	if err := os.MkdirAll(mod, 0o777); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(mod, "go.mod"), "module vetprobe\n\ngo 1.21\n")
	writeFile(t, filepath.Join(mod, "fingerprint.go"), `package vetprobe

import (
	"fmt"
	"time"
)

func Fingerprint(body []byte) string {
	return fmt.Sprintf("%d-%x", time.Now().UnixNano(), body)
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet exited 0 on a seeded time.Now violation; output:\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now in canonicalization path Fingerprint") {
		t.Fatalf("diagnostic did not surface through the vet protocol; output:\n%s", out)
	}

	// Fix the violation and the same invocation must go green: the
	// non-zero exit above was the finding, not protocol breakage.
	writeFile(t, filepath.Join(mod, "fingerprint.go"), `package vetprobe

import "fmt"

func Fingerprint(body []byte) string {
	return fmt.Sprintf("%x", body)
}
`)
	vet = exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
