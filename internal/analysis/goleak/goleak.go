// Package goleak is the static complement to testutil.VerifyNoLeaks:
// it flags `go` statements that launch a goroutine with no reachable
// stop signal. A goroutine is considered stoppable when something can
// make it return:
//
//   - it can observe a context.Context (one flows in as an argument,
//     or the body references one);
//   - it blocks on a channel receive (<-ch, range over a channel, or
//     a select receive case) — whoever closes that channel stops it;
//   - it provably terminates on its own: a loop-free body runs off
//     its end.
//
// Anything else — the classic `go func() { for { work() } }()` — keeps
// running after Close and fails VerifyNoLeaks only if a test happens
// to exercise the spawn site; this check moves that to build time. For
// callees in other packages the analysis is signature-based: a
// parameter (or call-site argument) of context or channel type counts
// as the stop signal. The waiver is //aarc:leaky <reason>.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aarc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "flag goroutines launched without a reachable stop signal (no context, channel receive, or terminating body)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil
	}

	// Local declarations, so `go s.loop()` can be judged by loop's body
	// rather than its signature.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if stoppable(pass, decls, gs) {
				return true
			}
			if m, ok := pass.Markers().At(pass.Fset, gs.Pos(), "leaky"); ok {
				if m.Arg == "" {
					pass.Reportf(gs.Pos(), "//aarc:leaky marker needs a reason")
				}
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine has no reachable stop signal (no context, channel receive, or terminating body); thread a ctx or done channel through it or mark //aarc:leaky <reason>")
			return true
		})
	}
	return nil
}

// stoppable decides whether the spawned goroutine can be stopped (or
// stops by itself).
func stoppable(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) bool {
	// A context or channel handed in at the spawn site is a stop
	// signal regardless of what we know about the callee.
	for _, arg := range gs.Call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && isSignalType(t) {
			return true
		}
	}

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyStoppable(pass, decls, lit.Body, 0)
	}

	if fn := analysis.FuncOf(pass.TypesInfo, gs.Call); fn != nil {
		return fnStoppable(pass, decls, fn, 0)
	}

	// A dynamic call (go f() through a func value): judge by the func
	// value's signature.
	if sig, ok := pass.TypesInfo.TypeOf(gs.Call.Fun).(*types.Signature); ok {
		return signatureHasSignal(sig)
	}
	return false
}

func fnStoppable(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, fn *types.Func, depth int) bool {
	if sig := fn.Signature(); sig != nil && signatureHasSignal(sig) {
		return true
	}
	if fd, ok := decls[fn]; ok {
		return bodyStoppable(pass, decls, fd.Body, depth)
	}
	// Cross-package callee without a signal in its signature: assumed
	// to leak (its own package can restructure or waive).
	return false
}

// bodyStoppable scans a spawned body for a stop signal or guaranteed
// termination. depth bounds the one-hop expansion of in-package
// helpers the body delegates to.
func bodyStoppable(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, body *ast.BlockStmt, depth int) bool {
	hasLoop := false
	hasSignal := false
	var callees []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			// Ranging over a channel is itself a receive.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					hasSignal = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hasSignal = true
			}
		case *ast.Ident:
			if t := pass.TypesInfo.TypeOf(n); t != nil && isContextType(t) {
				hasSignal = true
			}
		case *ast.CallExpr:
			if fn := analysis.FuncOf(pass.TypesInfo, n); fn != nil {
				callees = append(callees, fn)
			}
		case *ast.FuncLit:
			return false // a nested literal is its own goroutine problem only if spawned
		}
		return true
	})
	if hasSignal {
		return true
	}
	if !hasLoop {
		return true // straight-line body terminates on its own
	}
	// A looping body with no direct signal may delegate the blocking
	// to a helper (`for { if d.step() { return } }` where step selects
	// on a done channel). The helper must itself observe a signal —
	// merely terminating is not enough, the loop around it still
	// spins. Expand in-package callees one level.
	if depth < 1 {
		for _, fn := range callees {
			if helperHasSignal(pass, decls, fn) {
				return true
			}
		}
	}
	return false
}

// helperHasSignal reports whether a callee can observe a stop signal:
// its signature takes one, or its (in-package) body references a
// context, receives from a channel, or ranges over one.
func helperHasSignal(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, fn *types.Func) bool {
	if sig := fn.Signature(); sig != nil && signatureHasSignal(sig) {
		return true
	}
	fd, ok := decls[fn]
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if t := pass.TypesInfo.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		case *ast.FuncLit:
			return false
		}
		return !found
	})
	return found
}

// signatureHasSignal reports whether any parameter (or the receiver)
// is context- or channel-typed.
func signatureHasSignal(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isSignalType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isSignalType(t types.Type) bool {
	if isContextType(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
