package goleak_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "../testdata", goleak.Analyzer, "goleak/a")
}
