// Package regversion checks that search.Register version literals move
// when method code moves. A method's version is part of every cached
// recommendation's fingerprint (PR 4): bumping it orphans stale
// entries, and *not* bumping it after a behavior change silently serves
// wrong answers from cache — the worst failure mode the serving stack
// has, because nothing errors. The check pins each registered method in
// internal/search/version.lock as (version, source hash); vetting a
// method package recomputes the hash and fails if the package changed
// without the version literal changing with it. `aarcvet -fix`
// regenerates the manifest, and refuses to re-pin a changed package
// whose version literal was not bumped.
package regversion

import (
	"go/ast"
	"go/constant"

	"aarc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "regversion",
	Doc:  "flag search.Register version literals that are stale relative to version.lock",
	Run:  run,
}

// registerCall is one search.Register(name, version, factory) site.
type registerCall struct {
	call    *ast.CallExpr
	method  string
	version int
	constOK bool
}

// registerCalls extracts every search.Register call in the package.
func registerCalls(pass *analysis.Pass) []registerCall {
	var out []registerCall
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "Register" || fn.Pkg() == nil || fn.Pkg().Name() != "search" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			rc := registerCall{call: call}
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				rc.method = constant.StringVal(tv.Value)
			}
			if tv, ok := pass.TypesInfo.Types[call.Args[1]]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(tv.Value); exact {
					rc.version = int(v)
					rc.constOK = true
				}
			}
			out = append(out, rc)
			return true
		})
	}
	return out
}

func run(pass *analysis.Pass) error {
	calls := registerCalls(pass)
	if len(calls) == 0 {
		return nil
	}

	files := make([]string, 0, len(pass.Files))
	for _, f := range pass.Files {
		files = append(files, pass.Fset.Position(f.Package).Filename)
	}
	hash, err := HashPackage(files)
	if err != nil {
		return err
	}

	path := ManifestPath(pass.Dir, pass.ModuleRoot)
	var manifest Manifest
	if path != "" && fileExists(path) {
		manifest, err = ReadManifest(path)
		if err != nil {
			return err
		}
	}

	for _, rc := range calls {
		if rc.method == "" || !rc.constOK {
			pass.Reportf(rc.call.Pos(), "search.Register needs constant name and version arguments for version pinning")
			continue
		}
		entry, pinned := manifest[rc.method]
		switch {
		case !pinned:
			pass.Reportf(rc.call.Pos(), "method %q has no pin in version.lock; run `aarcvet -fix ./...` to record it", rc.method)
		case entry.Version != rc.version:
			pass.Reportf(rc.call.Pos(), "method %q registers version %d but version.lock pins %d; bump the literal and run `aarcvet -fix ./...`", rc.method, rc.version, entry.Version)
		case entry.Hash != hash:
			pass.Reportf(rc.call.Pos(), "method %q package source changed since version.lock was recorded but still registers version %d; bump the version so stale cached recommendations self-invalidate, then run `aarcvet -fix ./...`", rc.method, rc.version)
		}
	}
	return nil
}
