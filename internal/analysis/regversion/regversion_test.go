package regversion_test

import (
	"path/filepath"
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/regversion"
)

func TestRegversion(t *testing.T) {
	pinFixture(t, "../testdata/src/regversion/pinned", "pinned")
	analysistest.Run(t, "../testdata", regversion.Analyzer,
		"regversion/unpinned", // no manifest in scope
		"regversion/mismatch", // manifest pins a different version
		"regversion/stale",    // version matches, source hash drifted
		"regversion/pinned",   // fully in sync: silent
	)
}

// pinFixture regenerates the negative fixture's version.lock from its
// current source hash, so the "in sync" case stays in sync no matter
// how the fixture is edited.
func pinFixture(t *testing.T, dir, method string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("globbing %s: files=%v err=%v", dir, files, err)
	}
	hash, err := regversion.HashPackage(files)
	if err != nil {
		t.Fatal(err)
	}
	m := regversion.Manifest{method: {Version: 1, Hash: hash}}
	if err := regversion.WriteManifest(filepath.Join(dir, "version.lock"), m); err != nil {
		t.Fatal(err)
	}
}
