package regversion

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"strconv"
)

// Fix implements `aarcvet -fix [packages]`: it scans the named
// packages (default ./...) for search.Register calls, recomputes each
// method package's source hash, and rewrites the version.lock
// manifest. A package whose source changed while its version literal
// did not is refused — the whole point of the pin is that code changes
// force a visible version bump — so the workflow on a vet failure is:
// bump the literal in search.Register, then run -fix.
//
// Fix works syntactically (go/parser only): it runs offline, before
// the tree necessarily compiles, and a Register version is required to
// be a literal or a package-local integer constant anyway (the
// analyzer enforces constness on the type-checked tree).
func Fix(args []string, stdout, stderr io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "aarcvet -fix: %v\n", err)
		return 1
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "aarcvet -fix: no packages match %v\n", patterns)
		return 1
	}

	moduleRoot := pkgs[0].Root
	path := filepath.Join(moduleRoot, ManifestRel)
	old := Manifest{}
	if fileExists(path) {
		if old, err = ReadManifest(path); err != nil {
			fmt.Fprintf(stderr, "aarcvet -fix: %v\n", err)
			return 1
		}
	}

	next := Manifest{}
	refused := false
	for _, p := range pkgs {
		methods, err := scanRegistrations(p)
		if err != nil {
			fmt.Fprintf(stderr, "aarcvet -fix: %s: %v\n", p.ImportPath, err)
			return 1
		}
		if len(methods) == 0 {
			continue
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		hash, err := HashPackage(files)
		if err != nil {
			fmt.Fprintf(stderr, "aarcvet -fix: %s: %v\n", p.ImportPath, err)
			return 1
		}
		for method, version := range methods {
			if prev, ok := old[method]; ok && prev.Hash != hash && prev.Version == version {
				fmt.Fprintf(stderr, "aarcvet -fix: refusing to re-pin %q: %s changed but still registers version %d; bump the version literal first\n",
					method, p.ImportPath, version)
				refused = true
				continue
			}
			next[method] = Entry{Version: version, Hash: hash}
		}
	}
	if refused {
		return 1
	}
	if err := WriteManifest(path, next); err != nil {
		fmt.Fprintf(stderr, "aarcvet -fix: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "aarcvet -fix: wrote %s (%d methods)\n", path, len(next))
	return 0
}

// listPackage is the slice of `go list -json` output Fix needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Root       string
	Module     *struct{ Dir string }
	GoFiles    []string
}

func listPackages(patterns []string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, patterns...)...)
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list: %v: %s", err, ee.Stderr)
		}
		return nil, err
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Module != nil && p.Module.Dir != "" {
			p.Root = p.Module.Dir
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// scanRegistrations finds search.Register("name", <version>, ...)
// calls in a package syntactically, resolving identifier versions
// against package-local integer constants.
func scanRegistrations(p listPackage) (map[string]int, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	consts := map[string]int{}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					if v, ok := intLit(vs.Values[i]); ok {
						consts[name.Name] = v
					}
				}
			}
		}
	}

	methods := map[string]int{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isRegisterCallee(call.Fun, f.Name.Name) {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if v, ok := intLit(call.Args[1]); ok {
				methods[name] = v
			} else if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
				if v, ok := consts[id.Name]; ok {
					methods[name] = v
				}
			}
			return true
		})
	}
	return methods, nil
}

func isRegisterCallee(fun ast.Expr, pkgName string) bool {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Register"
	case *ast.Ident:
		return fun.Name == "Register" && pkgName == "search"
	}
	return false
}

func intLit(e ast.Expr) (int, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return v, true
}
