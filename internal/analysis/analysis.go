// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface: an Analyzer owns a name,
// a doc string and a Run function; a Pass hands Run one type-checked
// package and a Report sink. The build environment for this repository
// is offline (no module proxy), so vendoring x/tools is not an option;
// this package keeps the same shape — Analyzer, Pass, Diagnostic,
// Reportf — so the project analyzers under internal/analysis/... would
// port to the real framework by changing one import path.
//
// Facts are supported in a simplified form: an Analyzer that sets
// Facts exports one JSON-serializable summary per package via
// Pass.ExportFact, and reads its dependencies' summaries from
// Pass.Facts, keyed by package path. The unitchecker carries them
// between packages in the vetx files cmd/go already schedules for
// fact propagation; analysistest emulates the same flow over fixture
// imports. Unlike x/tools there are no per-object facts — one blob
// per (analyzer, package) is enough for call-graph summaries, and it
// keeps the encoding trivial.
//
// Deliberately omitted relative to x/tools: Requires/ResultOf (no
// analyzer depends on another), SuggestedFixes (aarcvet -fix handles
// the one generated artifact, the regversion manifest), and the
// inspector (packages are small; ast.Inspect is fine).
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -<name> enable
	// flags, and // want comments. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's help text; the first line is the summary.
	Doc string

	// Run applies the check to one package. Diagnostics go through
	// pass.Report; the error return is for operational failures
	// (cannot read a manifest, not "found a violation").
	Run func(*Pass) error

	// Facts declares that this analyzer exports a per-package summary
	// (via Pass.ExportFact) and wants its dependencies' summaries
	// (Pass.Facts). Fact-less analyzers leave it false and skip the
	// propagation passes entirely.
	Facts bool
}

func (a *Analyzer) String() string { return a.Name }

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dir is the package's directory on disk.
	Dir string

	// ModuleRoot is the nearest ancestor of Dir containing go.mod,
	// or "" when unknown (analysistest fixtures). Analyzers that read
	// repo-level artifacts (regversion's version.lock) resolve paths
	// against it, falling back to Dir.
	ModuleRoot string

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// Facts holds this analyzer's summaries for the packages this one
	// transitively imports, keyed by package path. Populated only for
	// analyzers with Facts set; nil otherwise (and in drivers that do
	// not propagate facts).
	Facts map[string]json.RawMessage

	// ExportFact records v — which must marshal cleanly to JSON — as
	// this analyzer's summary of this package, for Pass.Facts of the
	// packages that import it. Calling it twice overwrites; nil in
	// drivers that do not propagate facts.
	ExportFact func(v any)

	markers *MarkerIndex
}

// ImportFact unmarshals the analyzer's summary of pkgPath into out,
// reporting whether one was present.
func (p *Pass) ImportFact(pkgPath string, out any) bool {
	raw, ok := p.Facts[pkgPath]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Markers lazily builds and returns the package's //aarc: marker index.
func (p *Pass) Markers() *MarkerIndex {
	if p.markers == nil {
		p.markers = IndexMarkers(p.Fset, p.Files)
	}
	return p.markers
}

// FuncOf resolves the called function (or method) of a call expression,
// seeing through parentheses. It returns nil for calls through function
// values, conversions, and built-ins.
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgPathOf returns the import path of the package a function belongs
// to ("" for builtins/universe).
func PkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsTestFile reports whether the file's name on disk ends in _test.go.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Package).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
