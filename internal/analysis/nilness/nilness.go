// Package nilness is the stdlib-only port of the SSA-based nilness
// check DESIGN.md §13 used to gate out: a forward dataflow analysis
// over the flow package's CFG that tracks, per local variable, whether
// it is definitely nil, definitely non-nil, or unknown, refining along
// branch edges (`if x == nil` makes x nil on the true edge and non-nil
// on the false edge). It reports only *guaranteed* misuse — a
// dereference, map write, or call through a variable that is provably
// nil on some path — never "might be nil", which keeps it quiet enough
// to run with no baseline.
//
// Tracked variables are the function's own: parameters and locals of
// pointer, map, function, chan, slice, or interface type declared in
// the body under analysis. Variables whose address is taken or that a
// function literal captures go permanently unknown — anything could
// write to them. The waiver is //aarc:nilok <reason>.
package nilness

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aarc/internal/analysis"
	"aarc/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flag guaranteed-nil dereferences, nil map writes, and calls through nil function values",
	Run:  run,
}

// state is one variable's abstract nilness.
type state uint8

const (
	unknown state = iota // could be anything (top)
	isNil
	nonNil
)

func join(a, b state) state {
	if a == b {
		return a
	}
	return unknown
}

// env maps tracked variables to states. nil env = unreached (bottom).
type env map[*types.Var]state

type envLattice struct{}

func (envLattice) Bottom() env { return nil }

func (envLattice) Join(a, b env) env {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(env, len(a))
	for v, s := range a {
		if sb, ok := b[v]; ok {
			out[v] = join(s, sb)
		} else {
			out[v] = s // declared on one path only: scope keeps uses legal
		}
	}
	for v, s := range b {
		if _, ok := a[v]; !ok {
			out[v] = s
		}
	}
	return out
}

func (envLattice) Equal(a, b env) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for v, s := range a {
		if sb, ok := b[v]; !ok || sb != s {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			var sig *types.Signature
			if fn != nil {
				sig = fn.Signature()
			}
			checkFunc(pass, fd.Body, sig)
			// Function literals get their own analysis; variables they
			// capture from here are untracked there.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					litSig, _ := pass.TypesInfo.Types[lit].Type.(*types.Signature)
					checkFunc(pass, lit.Body, litSig)
				}
				return true
			})
		}
	}
	return nil
}

// checker carries one function's analysis context.
type checker struct {
	pass    *analysis.Pass
	body    *ast.BlockStmt
	tracked map[*types.Var]bool
	escaped map[*types.Var]bool
	seen    map[token.Pos]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, sig *types.Signature) {
	c := &checker{
		pass:    pass,
		body:    body,
		tracked: map[*types.Var]bool{},
		escaped: map[*types.Var]bool{},
		seen:    map[token.Pos]bool{},
	}

	entry := env{}
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if v := sig.Params().At(i); c.nilable(v.Type()) {
				c.tracked[v] = true
				entry[v] = unknown
			}
		}
		if recv := sig.Recv(); recv != nil && c.nilable(recv.Type()) {
			c.tracked[recv] = true
			entry[recv] = unknown
		}
	}
	// Locals declared in this body, plus the escape analysis: &x and
	// closure captures pin a variable at unknown forever.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Defs[n].(*types.Var); ok && c.nilable(v.Type()) && !v.IsField() {
				c.tracked[v] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						c.escaped[v] = true
					}
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						c.escaped[v] = true
					}
				}
			}
		case *ast.FuncLit:
			// Everything the literal mentions from outside it escapes.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						c.escaped[v] = true
					}
				}
				return true
			})
			return true
		}
		return true
	})

	g := flow.New(body)
	res := flow.Analysis[env]{
		Lattice:  envLattice{},
		Entry:    entry,
		Transfer: c.transfer,
		Edge:     c.refine,
	}.Forward(g)

	// Report pass: replay each block from its fixpoint in-state,
	// checking every expression before applying the statement's
	// effects (the write to a nil map happens before the map becomes
	// anything else).
	for _, b := range g.Blocks {
		cur := res.In[b.Index]
		if cur == nil && b.Index != 0 {
			continue // unreached
		}
		if cur == nil {
			cur = env{}
		}
		for _, s := range b.Stmts {
			c.checkStmt(s, cur)
			cur = c.apply(s, cur)
		}
		if b.Cond != nil {
			c.checkExpr(b.Cond, cur)
		}
	}
}

// nilable reports whether the type has a nil zero value worth
// tracking.
func (c *checker) nilable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Signature, *types.Chan, *types.Slice, *types.Interface:
		return true
	}
	return false
}

// transfer applies a block's statements to the incoming environment.
func (c *checker) transfer(b *flow.Block, in env) env {
	if in == nil && b.Index != 0 {
		return nil // unreached stays bottom
	}
	cur := in
	for _, s := range b.Stmts {
		cur = c.apply(s, cur)
	}
	return cur
}

// apply returns the environment after one (CFG-simple) statement.
func (c *checker) apply(s ast.Stmt, in env) env {
	switch s := s.(type) {
	case *ast.AssignStmt:
		out := copyEnv(in)
		for i, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := c.varOf(id)
			if v == nil {
				continue
			}
			if len(s.Lhs) == len(s.Rhs) {
				out[v] = c.eval(s.Rhs[i], in)
			} else {
				out[v] = unknown // multi-value unpack
			}
		}
		return out
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return in
		}
		out := copyEnv(in)
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				v := c.varOf(id)
				if v == nil {
					continue
				}
				switch {
				case len(vs.Values) == len(vs.Names):
					out[v] = c.eval(vs.Values[i], in)
				case len(vs.Values) == 0:
					out[v] = isNil // var m map[...]...: zero value
				default:
					out[v] = unknown
				}
			}
		}
		return out
	case *ast.RangeStmt:
		out := copyEnv(in)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e == nil {
				continue
			}
			if id, ok := e.(*ast.Ident); ok {
				if v := c.varOf(id); v != nil {
					out[v] = unknown
				}
			}
		}
		return out
	}
	return in
}

func copyEnv(in env) env {
	out := make(env, len(in)+1)
	for v, s := range in {
		out[v] = s
	}
	return out
}

// varOf resolves an identifier to a tracked, unescaped variable.
func (c *checker) varOf(id *ast.Ident) *types.Var {
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !c.tracked[v] || c.escaped[v] {
		return nil
	}
	return v
}

// eval classifies the nilness of an expression's value.
func (c *checker) eval(e ast.Expr, in env) state {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[e].(*types.Nil); isBuiltin {
				return isNil
			}
		}
		if v := c.varOf(e); v != nil {
			if s, ok := in[v]; ok {
				return s
			}
		}
		return unknown
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return nonNil
		}
	case *ast.CompositeLit, *ast.FuncLit:
		return nonNil
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new":
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return nonNil
				}
			}
		}
	}
	return unknown
}

// refine sharpens the state along a branch edge when the condition is
// a nil comparison on a tracked variable.
func (c *checker) refine(from, to *flow.Block, out env) env {
	if from.Cond == nil || len(from.Succs) != 2 || out == nil {
		return out
	}
	bin, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	var id *ast.Ident
	if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && c.isNilIdent(bin.Y) {
		id = x
	} else if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && c.isNilIdent(bin.X) {
		id = y
	}
	if id == nil {
		return out
	}
	v := c.varOf(id)
	if v == nil {
		return out
	}
	onTrue := from.Succs[0] == to
	s := isNil
	if (bin.Op == token.EQL) != onTrue {
		s = nonNil
	}
	refined := copyEnv(out)
	refined[v] = s
	return refined
}

func (c *checker) isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Nil)
	return isBuiltin
}

// checkStmt reports guaranteed-nil misuse in one statement under env.
func (c *checker) checkStmt(s ast.Stmt, cur env) {
	// The range statement sits whole in its head block but its body's
	// statements live in their own blocks with their own states; only
	// the header expression is checked here.
	if rs, ok := s.(*ast.RangeStmt); ok {
		c.checkExpr(rs.X, cur)
		return
	}
	// Nil map write: m[k] = v with m provably nil.
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(ix.X).(*ast.Ident)
			if !ok {
				continue
			}
			v := c.varOf(id)
			if v == nil || cur[v] != isNil {
				continue
			}
			if _, isMap := v.Type().Underlying().(*types.Map); isMap {
				c.report(ix.Pos(), "write to nil map %s", id.Name)
			}
		}
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed separately
		}
		if e, ok := n.(ast.Expr); ok {
			c.checkOneExpr(e, cur)
		}
		return true
	})
}

func (c *checker) checkExpr(e ast.Expr, cur env) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if x, ok := n.(ast.Expr); ok {
			c.checkOneExpr(x, cur)
		}
		return true
	})
}

// checkOneExpr reports nil misuse at a single expression node.
func (c *checker) checkOneExpr(e ast.Expr, cur env) {
	switch e := e.(type) {
	case *ast.StarExpr:
		if v, id := c.nilVar(e.X, cur); v != nil {
			c.report(e.Pos(), "nil dereference of %s", id.Name)
		}
	case *ast.SelectorExpr:
		// x.f with x a provably nil pointer. (Selection on a package
		// name or a value receiver resolves varOf to nil.)
		if v, id := c.nilVar(e.X, cur); v != nil {
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				c.report(e.Pos(), "nil dereference of %s.%s", id.Name, e.Sel.Name)
			}
		}
	case *ast.CallExpr:
		if v, id := c.nilVar(e.Fun, cur); v != nil {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				c.report(e.Pos(), "call of nil function %s", id.Name)
			}
		}
	case *ast.IndexExpr:
		// Reading a nil map yields the zero value legally; indexing a
		// nil slice or array pointer panics.
		if v, id := c.nilVar(e.X, cur); v != nil {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				c.report(e.Pos(), "index of nil slice %s", id.Name)
			}
		}
	}
}

// nilVar resolves e to a tracked variable that is provably nil here.
func (c *checker) nilVar(e ast.Expr, cur env) (*types.Var, *ast.Ident) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v := c.varOf(id)
	if v == nil || cur[v] != isNil {
		return nil, nil
	}
	return v, id
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.seen[pos] {
		return
	}
	c.seen[pos] = true
	if m, ok := c.pass.Markers().At(c.pass.Fset, pos, "nilok"); ok {
		if m.Arg == "" {
			c.pass.Reportf(pos, "//aarc:nilok marker needs a reason")
		}
		return
	}
	c.pass.Reportf(pos, format+" (guaranteed on this path); add a nil check or mark //aarc:nilok <reason>", args...)
}
