package nilness_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/nilness"
)

func TestNilness(t *testing.T) {
	analysistest.Run(t, "../testdata", nilness.Analyzer, "nilness/a")
}
