package shadow_test

import (
	"testing"

	"aarc/internal/analysis/analysistest"
	"aarc/internal/analysis/shadow"
)

func TestShadow(t *testing.T) {
	analysistest.Run(t, "../testdata", shadow.Analyzer, "shadow/sh")
}
