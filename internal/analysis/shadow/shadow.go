// Package shadow is a local reimplementation of the stock (non-default)
// vet shadow analyzer: it flags declarations that shadow a same-typed
// variable from an enclosing function scope when the outer variable is
// still used after the inner scope closes — the pattern where a write
// to the inner variable was almost certainly meant for the outer one.
//
// The x/tools original is unavailable offline (see internal/analysis's
// package comment), so this follows the same shape: build a use-span
// for every variable, then report an inner declaration only when the
// shadowed variable's span extends past the shadowing scope's end.
// Idiomatic short-lived shadows (`if err := f(); err != nil {...}`
// with no later use of the outer err) are deliberately not reported.
// The SSA-based stock analyzers (nilness, unusedwrite) have no
// stdlib-only equivalent and are gated out of the suite entirely.
package shadow

import (
	"go/ast"
	"go/token"
	"go/types"

	"aarc/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "shadow",
	Doc:  "flag shadowed variables whose outer binding is used after the shadow's scope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// span[obj] = furthest position at which obj is referenced.
	span := make(map[types.Object]token.Pos)
	grow := func(id *ast.Ident, obj types.Object) {
		if obj == nil {
			return
		}
		if end := id.End(); end > span[obj] {
			span[obj] = end
		}
	}
	for id, obj := range pass.TypesInfo.Uses {
		grow(id, obj)
	}
	for id, obj := range pass.TypesInfo.Defs {
		grow(id, obj)
	}

	// Like the x/tools original, only short variable declarations and
	// var statements are shadow candidates — never parameters, named
	// results, or range variables, whose same-name nesting is idiom
	// (func(b *testing.B) inside b.Run, nested loop indices).
	candidates := make(map[*ast.Ident]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							candidates[id] = true
						}
					}
				}
			case *ast.GenDecl:
				if n.Tok == token.VAR {
					for _, spec := range n.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, id := range vs.Names {
								candidates[id] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	for id, obj := range pass.TypesInfo.Defs {
		if !candidates[id] {
			continue
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" || id.Name == "err" {
			// err shadows are pervasive Go idiom; vet's original keeps
			// them too, but this tree treats wrapped-error locals as
			// style, not a bug signal.
			continue
		}
		inner := v.Parent()
		if inner == nil || inner == pass.Pkg.Scope() {
			continue
		}
		// Look outward, stopping before file/package scope: only
		// function-local shadowing is interesting.
		_, shadowed := lookupParent(inner, id.Name, id.Pos())
		outer, ok := shadowed.(*types.Var)
		if !ok || outer.IsField() {
			continue
		}
		if outer.Parent() == nil || isFileOrPackageScope(pass, outer.Parent()) {
			continue
		}
		if !types.Identical(outer.Type(), v.Type()) {
			continue
		}
		// Report only when the outer variable is referenced after the
		// inner scope ends — i.e. the shadow can actually have masked
		// a write the later code observes.
		if span[outer] > inner.End() {
			pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s; the outer variable is used after this scope",
				id.Name, pass.Fset.Position(outer.Pos()))
		}
	}
	return nil
}

// lookupParent finds what the identifier would bind to in the scope
// chain above its own declaration scope.
func lookupParent(inner *types.Scope, name string, pos token.Pos) (*types.Scope, types.Object) {
	parent := inner.Parent()
	if parent == nil {
		return nil, nil
	}
	return parent.LookupParent(name, pos)
}

func isFileOrPackageScope(pass *analysis.Pass, s *types.Scope) bool {
	if s == pass.Pkg.Scope() || s == types.Universe {
		return true
	}
	for _, f := range pass.Files {
		if pass.TypesInfo.Scopes[f] == s {
			return true
		}
	}
	return false
}
