package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestUnknownMarkers(t *testing.T) {
	src := `package p

//aarc:locked shard lock owns the runner
func a() {}

//aarc:lokced typo of locked
func b() {}

//aarc:hotpath
func c() {}

//aarc:frobnicate made-up kind
func d() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "m.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	idx := IndexMarkers(fset, []*ast.File{f})

	unknown := idx.Unknown()
	if len(unknown) != 2 {
		t.Fatalf("Unknown() = %v, want 2 entries (lokced, frobnicate)", unknown)
	}
	if unknown[0].Name != "lokced" || unknown[1].Name != "frobnicate" {
		t.Errorf("Unknown() order/content = %q, %q; want lokced then frobnicate",
			unknown[0].Name, unknown[1].Name)
	}
	for _, m := range unknown {
		if !m.Pos.IsValid() {
			t.Errorf("marker %q has no position", m.Name)
		}
	}

	// The known markers must not be flagged, and every analyzer kind
	// must be in the vocabulary.
	for _, kind := range []string{
		"detached", "sorted", "locked", "errpath", "canonical",
		"lockorder", "nilok", "leaky", "coldalloc", "hotpath",
	} {
		if !KnownMarkers[kind] {
			t.Errorf("KnownMarkers missing %q", kind)
		}
	}
}

func TestMarkerAt(t *testing.T) {
	src := `package p

func a() {
	x() //aarc:locked same line
	//aarc:locked line above
	y()
	z()
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "m.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	idx := IndexMarkers(fset, []*ast.File{f})

	find := func(line int) (Marker, bool) {
		// Build a pos on the requested line via the file's line table.
		tf := fset.File(f.Pos())
		return idx.At(fset, tf.LineStart(line), "locked")
	}
	if m, ok := find(4); !ok || m.Arg != "same line" {
		t.Errorf("line 4: marker = %+v, %v; want same-line hit", m, ok)
	}
	if m, ok := find(6); !ok || m.Arg != "line above" {
		t.Errorf("line 6: marker = %+v, %v; want line-above hit", m, ok)
	}
	if _, ok := find(7); ok {
		t.Error("line 7: unexpected marker hit")
	}
}
